// Interrupt-driven firmware: timer-paced UART transmission.
//
// The Figure-1 platform includes the interrupt system; this example
// shows it in use. A timer interrupt fires periodically; its handler
// sends the next byte of a ROM string over the UART (if the shifter is
// ready) and returns with ERET. The main loop meanwhile does
// foreground work — counting — until the message is out. Energy comes
// along for free through the layer-1 power model.
#include <cstdio>

#include "bench_util.h"
#include "power/tl1_power_model.h"
#include "soc/smartcard.h"

using namespace sct;

int main() {
  const auto& table = bench::characterizedTable();

  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  power::Tl1PowerModel pm(table);
  card.bus().addObserver(pm);

  card.loadProgram(soc::assemble(R"(
      # Foreground: enable a periodic timer interrupt, then count until
      # the ISR signals completion via RAM flag at 0x08000004.
      li   $s0, 0x10000000   # IRQ controller
      li   $s1, 0x10000100   # timer 0
      li   $s2, 0x10000200   # UART
      li   $s3, 0x08000000   # RAM: +0 = work counter, +4 = done flag
      la   $s4, msg          # next byte to send

      addiu $t0, $zero, 1
      sw   $t0, 4($s0)       # unmask timer line
      addiu $t0, $zero, 24
      sw   $t0, 4($s1)       # COMPARE: fire every 24 ticks
      addiu $t0, $zero, 1
      sw   $t0, 8($s1)       # enable timer

    foreground:
      lw   $t0, 0($s3)       # foreground work: counter++
      addiu $t0, $t0, 1
      sw   $t0, 0($s3)
      lw   $t1, 4($s3)
      beqz $t1, foreground
      break

      .org 0x200             # interrupt vector
    isr:
      sw   $zero, 12($s1)    # clear timer match
      addiu $t2, $zero, 1
      sw   $t2, 0($s0)       # ack controller line 0
      # re-arm: COMPARE = COUNT + 24
      lw   $t2, 0($s1)
      addiu $t2, $t2, 24
      andi $t2, $t2, 0xFFFF
      sw   $t2, 4($s1)
      # send next byte if the UART is ready
      lw   $t2, 4($s2)
      andi $t2, $t2, 1
      beqz $t2, isr_out      # shifter busy: try next interrupt
      lbu  $t3, 0($s4)
      bnez $t3, send
      addiu $t3, $zero, 1    # end of string: set the done flag
      sw   $t3, 4($s3)
      sw   $zero, 8($s1)     # disable the timer
      b    isr_out
    send:
      sw   $t3, 0($s2)
      addiu $s4, $s4, 1
    isr_out:
      eret

    msg: .asciz "irq-driven uart!"
  )",
                                 soc::memmap::kRomBase));

  if (!card.run(1'000'000) || card.cpu().faulted()) {
    std::printf("firmware failed!\n");
    return 1;
  }

  std::printf("UART transmitted: \"%s\"\n",
              card.uart().transmitted().c_str());
  std::printf("interrupts taken:  %llu\n",
              static_cast<unsigned long long>(
                  card.cpu().interruptsTaken()));
  std::printf("foreground loops:  %u (work continued between bytes)\n",
              card.ram().peekWord(soc::memmap::kRamBase));
  std::printf("total cycles:      %llu, bus energy %.1f pJ\n",
              static_cast<unsigned long long>(card.cpu().stats().cycles),
              pm.totalEnergy_fJ() / 1e3);
  return 0;
}
