// Intermittent-power exploration CLI: run the backup-scheme × field
// profile grid over the fork-based sweep and print the forward
// progress / recharge economics of every cell as a table — which
// backup policy finishes the transaction fastest under which field,
// and what the checkpointing overhead costs in wall time and fJ.
//
//   eh_sweep [blocks] [threads]
//     blocks   crypto blocks in the workload (default 16)
//     threads  sweep workers (default 0 = hardware pool, 1 = serial)
//
// Add --stats to dump the merged obs counters as JSON after the table.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eh/sweep.h"
#include "obs/stats.h"
#include "trace/report.h"

namespace {

using sct::trace::Table;

std::string kcyc(std::uint64_t cycles) {
  return Table::num(static_cast<double>(cycles) / 1000.0, 1);
}

} // namespace

int main(int argc, char** argv) {
  unsigned blocks = 16;
  unsigned threads = 0;
  bool wantStats = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats") {
      wantStats = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: eh_sweep [blocks] [threads] [--stats]\n";
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() > 0) blocks = std::strtoul(positional[0].c_str(), nullptr, 10);
  if (positional.size() > 1) threads = std::strtoul(positional[1].c_str(), nullptr, 10);
  if (blocks == 0) blocks = 1;

  const sct::power::SignalEnergyTable& table = sct::bench::characterizedTable();

  std::cout << "Intermittent-power sweep: " << blocks
            << "-block crypto transaction, scheme x field grid\n"
            << "(boot prelude amortized via ckpt::ForkRunner; threads="
            << threads << ")\n\n";

  const sct::eh::SweepRunner sweep(table, blocks);
  const std::vector<sct::eh::SweepVariant> grid = sct::eh::defaultGrid();
  const std::vector<sct::eh::SweepOutcome> outcomes =
      sweep.run(grid, threads);

  std::cout << "Boot snapshot: " << sweep.snapshot().saveToBuffer().size()
            << " bytes shared by " << grid.size() << " variants\n\n";

  Table out({"scheme", "field", "done", "wall kcyc", "duty", "brownout",
             "backup", "restore", "death", "replay kcyc", "dead kcyc",
             "backup fJ", "harvest fJ"});
  sct::obs::StatsRegistry stats;
  for (const sct::eh::SweepOutcome& o : outcomes) {
    const sct::eh::RunResult& r = o.result;
    out.addRow({o.variant.scheme, o.variant.profile,
                r.completed ? "yes" : "NO", kcyc(r.wallCycles),
                Table::pct(r.dutyCycle()), std::to_string(r.brownouts),
                std::to_string(r.backups), std::to_string(r.restores),
                std::to_string(r.hardDeaths), kcyc(r.replayedCycles),
                kcyc(r.deadCycles), Table::num(r.backupEnergy_fJ / 1e6, 2),
                Table::num(r.harvested_fJ / 1e6, 2)});
    sct::eh::publishRunObs(r, stats);
  }
  out.print(std::cout);
  std::cout << "\n(wall/replay/dead in kilocycles; energies in nJ-equivalent "
               "1e6 fJ; duty = powered forward progress / wall)\n";

  // Per-segment attribution for the first browned-out cell: where the
  // energy went between two power losses (the obs::LedgerView delta).
  for (const sct::eh::SweepOutcome& o : outcomes) {
    if (o.result.brownouts == 0 || o.result.segments.size() < 2) continue;
    std::cout << "\nSegments of " << o.variant.scheme << "/"
              << o.variant.profile << " (first "
              << std::min<std::size_t>(o.result.segments.size(), 6)
              << " of " << o.result.segments.size() << "):\n";
    Table seg({"segment", "wall kcyc", "sim kcyc", "bus fJ"});
    std::size_t shown = 0;
    for (const sct::eh::Segment& s : o.result.segments) {
      if (++shown > 6) break;
      seg.addRow({std::to_string(shown),
                  kcyc(s.wallEnd - s.wallStart),
                  kcyc(s.simEnd - s.simStart),
                  Table::num(s.energy.total, 1)});
    }
    seg.print(std::cout);
    break;
  }

  if (wantStats) {
    std::cout << "\n";
    stats.writeJson(std::cout);
    std::cout << "\n";
  }

  bool allProgressed = true;
  for (const sct::eh::SweepOutcome& o : outcomes) {
    allProgressed = allProgressed &&
                    (o.result.completed || o.result.progressWord > 0);
  }
  return allProgressed ? 0 : 1;
}
