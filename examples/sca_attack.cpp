// End-to-end differential power analysis against the smart-card crypto
// coprocessor — the paper's power-aware design loop run from the
// attacker's chair.
//
// The program boots the TL1 platform once, forks a few hundred
// measured encryptions from the boot snapshot (random plaintexts,
// shared key), streams their ROI-windowed power traces into a corpus
// file, and then runs the correlation attack: 256 guesses for one byte
// of the round-0 key word, ranked by peak Pearson correlation between
// the predicted datapath toggles and the measured samples. It does the
// whole thing twice — once against the unprotected device, once with
// the coprocessor's boolean masking countermeasure switched on — and
// prints the rank-vs-trace-count curves side by side: the unprotected
// key byte falls out after a few hundred traces; the masked one does
// not.
//
//   ./sca_attack [traces] [noise_sigma_fJ]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "power/coeff_table.h"
#include "sca/analyzer.h"
#include "sca/corpus.h"
#include "sca/corpus_runner.h"
#include "sim/parallel_runner.h"

using namespace sct;

namespace {

power::SignalEnergyTable syntheticTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  1.5 + 0.25 * static_cast<double>(i));
  }
  return t;
}

sca::CorpusConfig baseConfig(std::uint64_t traces, double sigma) {
  sca::CorpusConfig cfg;
  cfg.traces = traces;
  cfg.noiseSigma_fJ = sigma;
  cfg.leak.hdCoeff_fJ = 0.8;
  return cfg;
}

std::vector<std::uint64_t> checkpoints(std::uint64_t traces) {
  std::vector<std::uint64_t> cps;
  for (std::uint64_t c = 50; c < traces; c += 50) cps.push_back(c);
  return cps;
}

sca::AttackResult attack(const std::string& path, unsigned threads,
                         std::uint64_t traces) {
  sca::AttackConfig cfg;
  cfg.byteIndex = 0;
  cfg.threads = threads;
  cfg.rankCheckpoints = checkpoints(traces);
  sca::DpaAnalyzer analyzer(cfg);
  return analyzer.analyze(path);
}

void printCurve(const char* title, const sca::AttackResult& r) {
  std::printf("\n%s\n", title);
  std::printf("  %8s  %6s  %10s  %12s  %12s\n", "traces", "rank",
              "best", "best |r|", "correct |r|");
  for (const sca::RankPoint& p : r.curve) {
    std::printf("  %8llu  %6u  0x%02X %s  %12.4f  %12.4f\n",
                static_cast<unsigned long long>(p.traces), p.rank,
                p.bestGuess, p.rank == 0 ? "<= key" : "      ",
                p.bestScore, p.correctScore);
  }
}

} // namespace

int main(int argc, char** argv) {
  const std::uint64_t traces =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 600;
  const double sigma = argc > 2 ? std::strtod(argv[2], nullptr) : 2.0;
  const unsigned threads = sim::ParallelRunner::defaultThreadCount();

  const power::SignalEnergyTable table = syntheticTable();

  std::printf("== SPA/DPA attack demo: %llu traces, noise sigma %.2f fJ, "
              "%u threads ==\n",
              static_cast<unsigned long long>(traces), sigma, threads);

  // --- Unprotected device --------------------------------------------
  sca::CorpusConfig plain = baseConfig(traces, sigma);
  sca::CorpusRunner plainRunner(table, plain);
  const std::string plainPath = "sca_unprotected.sctcorp";
  const sca::GenerateStats ps = plainRunner.generate(plainPath, threads);
  std::printf("\ngenerated %llu unprotected traces (%llu bytes, %s)\n",
              static_cast<unsigned long long>(ps.traces),
              static_cast<unsigned long long>(ps.bytes), plainPath.c_str());

  const sca::AttackResult pr = attack(plainPath, threads, traces);
  printCurve("-- unprotected --", pr);

  // --- Masked device -------------------------------------------------
  sca::CorpusConfig masked = baseConfig(traces, sigma);
  masked.leak.maskRounds = true;
  sca::CorpusRunner maskedRunner(table, masked);
  const std::string maskedPath = "sca_masked.sctcorp";
  const sca::GenerateStats ms = maskedRunner.generate(maskedPath, threads);
  std::printf("\ngenerated %llu masked traces (%llu bytes, %s)\n",
              static_cast<unsigned long long>(ms.traces),
              static_cast<unsigned long long>(ms.bytes), maskedPath.c_str());

  const sca::AttackResult mr = attack(maskedPath, threads, traces);
  printCurve("-- masked --", mr);

  // --- Verdict -------------------------------------------------------
  const std::uint64_t rec = sca::tracesToRecovery(pr);
  std::printf("\ncorrect round-0 key byte: 0x%02X\n", pr.correctGuess);
  if (rec != 0) {
    std::printf("unprotected: RECOVERED from %llu traces on\n",
                static_cast<unsigned long long>(rec));
  } else {
    std::printf("unprotected: not recovered (%llu traces insufficient)\n",
                static_cast<unsigned long long>(traces));
  }
  const std::uint64_t mrec = sca::tracesToRecovery(mr);
  if (mrec != 0) {
    std::printf("masked:      recovered from %llu traces on "
                "(masking defeated?!)\n",
                static_cast<unsigned long long>(mrec));
  } else {
    std::printf("masked:      NOT recovered at %llu traces — the "
                "countermeasure holds\n",
                static_cast<unsigned long long>(traces));
  }

  const bool demoOk = rec != 0 && mrec == 0;
  std::printf("\n%s\n", demoOk ? "attack demo: OK"
                               : "attack demo: UNEXPECTED OUTCOME");
  return demoOk ? 0 : 1;
}
