// Java Card VM HW/SW interface exploration (paper, Section 4.3).
//
// The wallet applet (credit + debit sequence) runs against each
// hardware-stack interface alternative; the example prints the cost of
// every configuration and recommends the cheapest one — the design
// decision the paper's exploration flow exists to support.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "jcvm/applets.h"
#include "jcvm/exploration.h"
#include "trace/report.h"

using namespace sct;

int main() {
  const auto& table = bench::characterizedTable();

  // A wallet session: credit 120, then the caller inspects the result.
  const jcvm::JcProgram applet = jcvm::applets::wallet(500, 30000);
  const std::vector<jcvm::JcShort> args{1, 120};

  const auto functional = jcvm::evaluateFunctional(applet, args);
  std::printf("wallet applet, functional model (Figure 7a): result=%d, "
              "%llu bytecodes, %llu stack ops, zero bus cost\n\n",
              functional.result,
              static_cast<unsigned long long>(functional.bytecodes),
              static_cast<unsigned long long>(functional.stackOps));

  std::printf("refined model (Figure 7b) across interface "
              "alternatives:\n\n");
  std::vector<jcvm::ExplorationResult> results;
  trace::Table t({"Config", "Bus txns", "Cycles", "Energy (pJ)",
                  "fJ/bytecode"});
  for (const jcvm::InterfaceConfig& cfg : jcvm::defaultConfigSpace()) {
    const auto r = jcvm::evaluateInterface(applet, args, cfg, table);
    if (!r.ok || r.result != functional.result) {
      std::printf("  %s: FAILED refinement check!\n", cfg.name.c_str());
      continue;
    }
    results.push_back(r);
    t.addRow({r.config, std::to_string(r.busTransactions),
              std::to_string(r.busCycles),
              trace::Table::num(r.energy_fJ / 1e3, 1),
              trace::Table::num(r.energyPerBytecode_fJ(), 1)});
  }
  t.print(std::cout);

  const auto best = std::min_element(
      results.begin(), results.end(),
      [](const auto& a, const auto& b) { return a.energy_fJ < b.energy_fJ; });
  if (best != results.end()) {
    std::printf("\nrecommendation: '%s' — lowest bus energy for this "
                "applet (%.1f pJ)\n",
                best->config.c_str(), best->energy_fJ / 1e3);
  }
  return 0;
}
