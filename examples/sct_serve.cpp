// sct_serve — the card-farm daemon.
//
// Boots the smart-card platform ONCE to a golden quiesce-point
// snapshot, then serves APDU session jobs from a pool of card
// instances recycled from that snapshot, sharded across a
// work-stealing scheduler. Jobs are newline-delimited JSON on stdin
// (or a unix socket); each finished session streams one result line
// with its energy totals and per-bundle/per-class attribution.
//
//   sct_serve [--workers N] [--socket PATH] [--table fixed] < jobs.ndjson
//
//   --workers N   pool threads (default: hardware / SCT_THREADS)
//   --socket P    listen on unix socket P instead of stdin
//   --table T     "characterized" (default): coefficients from the
//                 layer-0 characterization run, the table the bench
//                 harness uses; "fixed": a deterministic synthetic
//                 table (fast startup — used by the regression tests)
//
// Job:    {"id":"s1","scenario":"auth","seed":7,"fidelity":"tl1"}
// Result: {"event":"result","id":"s1","energy_fJ":...,"by_class":...}
// On SIGINT/SIGTERM: pending jobs are dropped, in-flight sessions
// drain, a {"event":"done",...} summary flushes, exit code 0.
//
// Scenarios: auth, wrong_pin, challenge, mixed (serve/scenario.h).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "power/coeff_table.h"
#include "serve/daemon.h"

namespace {

volatile std::sig_atomic_t gStop = 0;

void onSignal(int) { gStop = 1; }

sct::power::SignalEnergyTable fixedTable() {
  sct::power::SignalEnergyTable t;
  for (std::size_t i = 0; i < sct::bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<sct::bus::SignalId>(i),
                  1.5 + 0.25 * static_cast<double>(i));
  }
  return t;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--socket PATH] "
               "[--table fixed|characterized] < jobs.ndjson\n",
               argv0);
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  sct::serve::DaemonOptions options;
  bool fixed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      options.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--socket" && i + 1 < argc) {
      options.socketPath = argv[++i];
    } else if (arg == "--table" && i + 1 < argc) {
      const std::string t = argv[++i];
      if (t == "fixed") fixed = true;
      else if (t != "characterized") return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = onSignal;
  // No SA_RESTART: the read/poll loop must wake to see the stop flag.
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  const sct::power::SignalEnergyTable table =
      fixed ? fixedTable() : sct::bench::characterizedTable();
  return sct::serve::runDaemon(options, table, stdin, stdout, &gStop);
}
