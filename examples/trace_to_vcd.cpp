// Tool-style workflow: record → replay → waveform.
//
//  1. Run firmware on the layer-1 SoC and record its bus transactions
//     (the paper's "traced the bus transactions" step).
//  2. Save the trace and the characterized coefficients to files.
//  3. Reload the trace, replay it on the layer-0 reference bus, and
//     dump a VCD waveform of all EC interface signals for a waveform
//     browser.
//
// Usage: trace_to_vcd [output-directory]   (default: current directory)
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "trace/vcd.h"

using namespace sct;

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : ".";

  // --- 1. Record ------------------------------------------------------
  const trace::BusTrace& recorded = bench::firmwareTrace();
  std::printf("recorded %zu transactions from the SoC firmware run\n",
              recorded.size());

  // --- 2. Save artifacts ----------------------------------------------
  const std::string tracePath = outDir + "/firmware.bustrace";
  {
    std::ofstream os(tracePath);
    recorded.save(os);
  }
  const std::string coeffPath = outDir + "/ec_coefficients.txt";
  {
    std::ofstream os(coeffPath);
    bench::characterizedTable().save(os);
  }
  std::printf("wrote %s and %s\n", tracePath.c_str(), coeffPath.c_str());

  // --- 3. Reload and replay onto the reference bus with a VCD dump ----
  trace::BusTrace reloaded;
  {
    std::ifstream is(tracePath);
    reloaded = trace::BusTrace::load(is);
  }
  const std::string vcdPath = outDir + "/ecbus.vcd";
  std::ofstream vcdFile(vcdPath);
  trace::VcdWriter vcd(vcdFile, /*clockPeriodPs=*/30'000);

  bench::ReplayPlatform<ref::GlBus> platform(bench::energyModel());
  platform.loadImage(bench::workloadFirmware());
  platform.ecbus.addFrameListener(vcd);
  const std::uint64_t cycles =
      platform.replay(trace::compressGaps(reloaded, 6));

  std::printf("replayed %zu transactions in %llu cycles; wrote %llu "
              "frames to %s\n",
              reloaded.size(), static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(vcd.framesWritten()),
              vcdPath.c_str());
  std::printf("reference energy of the replay: %.2f nJ\n",
              platform.ecbus.energy().total_fJ / 1e6);
  std::printf("\nopen %s in GTKWave (or any VCD viewer) to inspect the "
              "EC protocol cycle by cycle.\n",
              vcdPath.c_str());
  return 0;
}
