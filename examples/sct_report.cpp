// sct-report: one simulation, every observability surface.
//
//  1. Characterize signal-energy coefficients on the layer-0 reference.
//  2. Run a mixed workload on the layer-1 bus with the full obs stack
//     attached: StatsRegistry (clock + bus + kernel + master counters),
//     EnergyLedger (per-bundle / per-class / per-slave attribution,
//     bit-identical to the power model's total) and TraceRecorder.
//  3. Print paper-style attribution tables, dump the registry as JSON,
//     and optionally write a Chrome trace_event file for Perfetto.
//
// Usage: sct_report [trace.json]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "hier/roi_trigger.h"
#include "obs/ledger.h"
#include "obs/stats.h"
#include "obs/trace_json.h"
#include "power/budget.h"
#include "power/characterizer.h"
#include "power/profile.h"
#include "power/tl1_power_model.h"
#include "ref/gl_bus.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"
#include "trace/replay_master.h"
#include "trace/report.h"
#include "trace/workloads.h"

using namespace sct;

namespace {

bus::SlaveControl ramCtl() {
  bus::SlaveControl c;
  c.base = 0x0000;
  c.size = 0x2000;
  return c;
}

bus::SlaveControl eepromCtl() {
  bus::SlaveControl c;
  c.base = 0x8000;
  c.size = 0x2000;
  c.addrWait = 1;
  c.readWait = 2;
  c.writeWait = 3;
  c.burstBeatWait = 1;
  return c;
}

std::vector<trace::TargetRegion> regions() {
  return {trace::TargetRegion{0x0000, 0x2000, true, true, true},
          trace::TargetRegion{0x8000, 0x2000, true, true, true}};
}

/// ROI-windowed per-region current statistics: one AddressWatchTrigger
/// per target region gates which cycles are "that region's", the same
/// way the sca corpus factory gates its crypto capture. Only the
/// min/mean/peak reduction is kept — SPA inspection of a region's draw
/// without exporting the full per-cycle trace.
class RegionRoiProfiler final : public bus::Tl1Observer {
 public:
  struct Region {
    std::string name;
    hier::AddressWatchTrigger trigger;
    std::vector<double> roiEnergy_fJ;  ///< One entry per armed cycle.
  };

  RegionRoiProfiler(const power::Tl1PowerModel& pm,
                    std::uint64_t holdCycles)
      : pm_(pm), holdCycles_(holdCycles) {}

  void addRegion(std::string name, bus::Address base, bus::Address size) {
    regions_.push_back(Region{
        std::move(name),
        hier::AddressWatchTrigger({{base, size}}, holdCycles_),
        {}});
  }

  void busCycleBegin(std::uint64_t cycle) override { cycle_ = cycle; }
  void addressPhase(const bus::AddressPhaseInfo& info) override {
    if (!info.accepted || info.request == nullptr) return;
    for (Region& r : regions_) r.trigger.onSubmit(*info.request, cycle_);
  }
  void busCycleEnd(std::uint64_t cycle) override {
    const double e = pm_.energyLastCycle_fJ();
    for (Region& r : regions_) {
      if (r.trigger.armed(cycle)) r.roiEnergy_fJ.push_back(e);
    }
  }

  const std::vector<Region>& regions() const { return regions_; }

 private:
  const power::Tl1PowerModel& pm_;
  std::uint64_t holdCycles_;
  std::uint64_t cycle_ = 0;
  std::vector<Region> regions_;
};

power::SignalEnergyTable characterize() {
  ref::ParasiticDb parasitics = ref::ParasiticDb::makeDefault();
  static const ref::TransitionEnergyModel model(parasitics,
                                                ref::ProcessParams{});
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 30'000);
  ref::GlBus refBus(clock, "refbus", model);
  bus::MemorySlave ram("ram", ramCtl());
  bus::MemorySlave eeprom("eeprom", eepromCtl());
  refBus.attach(ram);
  refBus.attach(eeprom);
  power::Characterizer ch(model);
  refBus.addFrameListener(ch);
  const trace::BusTrace training =
      trace::characterizationTrace(1, 800, regions());
  trace::ReplayMaster trainer(clock, "trainer", refBus, refBus, training);
  trainer.runToCompletion();
  return ch.buildTable();
}

} // namespace

int main(int argc, char** argv) {
  const power::SignalEnergyTable table = characterize();

  // --- The instrumented layer-1 system -------------------------------
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 30'000);
  bus::Tl1Bus ecbus(clock, "ecbus");
  bus::MemorySlave ram("ram", ramCtl());
  bus::MemorySlave eeprom("eeprom", eepromCtl());
  ecbus.attach(ram);
  ecbus.attach(eeprom);
  power::Tl1PowerModel pm(table);
  ecbus.addObserver(pm);
  power::PowerProfile profile(30'000);
  power::Tl1ProfileRecorder profRec(pm, profile);
  ecbus.addObserver(profRec);
  // After the power model: the ROI profiler reads the cycle's final
  // energy, exactly like the profile recorder above.
  RegionRoiProfiler roi(pm, /*holdCycles=*/8);
  roi.addRegion("ram", 0x0000, 0x2000);
  roi.addRegion("eeprom", 0x8000, 0x2000);
  ecbus.addObserver(roi);

  obs::StatsRegistry reg;
  obs::EnergyLedger ledger;
  obs::TraceRecorder rec(1u << 15);
  clock.attachObs(reg, &rec);
  ecbus.attachObs(reg, &rec);
  pm.attachLedger(ledger);

  const trace::BusTrace workload = trace::randomMix(
      42, 400, regions(), trace::MixRatios{3, 2, 2, 1, 2}, /*issueGapMax=*/3);
  trace::ReplayMaster master(clock, "master", ecbus, ecbus, workload);
  master.runToCompletion();
  master.publishObs(reg);
  kernel.publishObs(reg);
  pm.publishObs(reg);  // power.packed_lane_cycles

  // --- ISS dispatch-loop counters ------------------------------------
  // A short firmware run on the full SoC so the decoded-block cache
  // counters (iss.block_hits / iss.block_misses / iss.invalidations)
  // show up in the registry next to the bus-level numbers.
  {
    soc::SmartCardSoC<bus::Tl1Bus> soc{soc::SocConfig{}};
    soc.loadProgram(soc::assemble(R"(
          li    $s0, 0x08000000
          li    $s1, 200
        loop:
          addu  $t0, $t0, $s1
          xor   $t0, $t0, $s1
          addiu $s1, $s1, -1
          bne   $s1, $zero, loop
          sw    $t0, 0($s0)
          break
    )",
                                  soc::memmap::kRomBase));
    if (!soc.run()) std::fprintf(stderr, "warning: ISS demo did not halt\n");
    soc.cpu().publishObs(reg);
  }

  // --- Paper-style attribution tables --------------------------------
  const double total = ledger.total_fJ();
  std::printf("total energy: %.1f fJ over %llu bus cycles "
              "(ledger reconciles model total bit-identically: %s)\n\n",
              total,
              static_cast<unsigned long long>(ecbus.stats().cycles),
              ledger.total_fJ() == pm.totalEnergy_fJ() ? "yes" : "NO");

  {
    trace::Table t({"class", "energy [fJ]", "share"});
    for (std::size_t c = 0; c < obs::kTxClassCount; ++c) {
      const auto cls = static_cast<obs::TxClass>(c);
      t.addRow({obs::txClassName(cls),
                trace::Table::num(ledger.byClass_fJ(cls)),
                trace::Table::pct(total > 0 ? ledger.byClass_fJ(cls) / total
                                            : 0.0)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  {
    trace::Table t({"slave", "energy [fJ]", "share"});
    const char* names[] = {"ram", "eeprom"};
    for (int s = 0; s < 2; ++s) {
      t.addRow({names[s], trace::Table::num(ledger.bySlave_fJ(s)),
                trace::Table::pct(total > 0 ? ledger.bySlave_fJ(s) / total
                                            : 0.0)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  {
    trace::Table t({"signal bundle", "energy [fJ]", "share"});
    for (const bus::SignalInfo& s : bus::kSignalTable) {
      t.addRow({std::string(s.name),
                trace::Table::num(ledger.byBundle_fJ(s.id)),
                trace::Table::pct(total > 0 ? ledger.byBundle_fJ(s.id) / total
                                            : 0.0)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // --- Rolling current vs deployment budgets --------------------------
  // The same smoothed-draw view the eh brownout detector consumes live,
  // replayed over the recorded profile: peak rolling current against
  // each deployment class the paper names.
  {
    trace::Table t({"deployment class", "budget [mA]", "peak [mA]",
                    "mean [mA]", "verdict"});
    for (const power::SupplySpec& spec :
         {power::gsm5V(), power::iso7816Class3V(), power::contactless()}) {
      power::RollingCurrent rc(spec, 30'000);
      rc.feed(profile);
      t.addRow({spec.name, trace::Table::num(spec.maxCurrent_mA),
                trace::Table::num(rc.peakCurrent_mA(), 4),
                trace::Table::num(rc.meanCurrent_mA(), 4),
                rc.peakCurrent_mA() <= spec.maxCurrent_mA ? "within"
                                                          : "OVER"});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // --- ROI-windowed per-region current --------------------------------
  // SPA-style inspection without the full trace: per address region,
  // the current over cycles its ROI trigger is armed — minimum and
  // peak over 16-cycle windows of ROI time, mean over all ROI cycles.
  {
    const power::SupplySpec spec = power::gsm5V();
    const double periodPs = 30'000.0;
    const double chipScale = 120.0;
    const auto toCurrent_mA = [&](double perCycle_fJ) {
      return perCycle_fJ * chipScale / periodPs / (spec.vdd * 1000.0);
    };
    constexpr std::size_t kWin = 16;
    trace::Table t({"region", "roi cycles", "min [mA]", "mean [mA]",
                    "peak [mA]"});
    for (const RegionRoiProfiler::Region& r : roi.regions()) {
      const std::vector<double>& e = r.roiEnergy_fJ;
      double sum = 0.0;
      for (const double v : e) sum += v;
      double minWin = 0.0;
      double peakWin = 0.0;
      if (e.size() >= kWin) {
        double win = 0.0;
        for (std::size_t i = 0; i < kWin; ++i) win += e[i];
        minWin = peakWin = win;
        for (std::size_t i = kWin; i < e.size(); ++i) {
          win += e[i] - e[i - kWin];
          minWin = std::min(minWin, win);
          peakWin = std::max(peakWin, win);
        }
      }
      t.addRow({r.name, std::to_string(e.size()),
                trace::Table::num(toCurrent_mA(minWin / kWin), 4),
                trace::Table::num(
                    e.empty() ? 0.0
                              : toCurrent_mA(sum /
                                             static_cast<double>(e.size())),
                    4),
                trace::Table::num(toCurrent_mA(peakWin / kWin), 4)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // --- Registry JSON --------------------------------------------------
  reg.gauge("energy.total_fJ").set(total);
  std::cout << "registry snapshot:\n";
  reg.writeJson(std::cout);
  std::cout << "\n";

  // --- Chrome trace (Perfetto / chrome://tracing) ---------------------
  if (argc > 1) {
    std::ofstream os(argv[1]);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    rec.writeJson(os);
    std::printf("wrote %zu timeline events (%llu dropped) to %s\n",
                rec.size(), static_cast<unsigned long long>(rec.dropped()),
                argv[1]);
  } else {
    std::printf("timeline: %zu events recorded (%llu dropped); "
                "pass a filename to write Chrome trace JSON\n",
                rec.size(), static_cast<unsigned long long>(rec.dropped()));
  }
  return 0;
}
