// Power-analysis view: cycle-accurate energy profiles of crypto
// traffic (the paper's second motivation — "power analysis like simple
// power analysis (SPA), or differential power analysis (DPA)"; the
// layer-1 model's cycle-accurate energy interface exists so such
// profiles can be estimated early).
//
// The same crypto-coprocessor firmware runs twice with different data
// blocks; the example prints both per-cycle profiles around the
// key-loading phase and quantifies the data-dependent difference an
// SPA attacker would integrate over.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "power/profile.h"
#include "power/tl1_power_model.h"
#include "soc/smartcard.h"
#include "trace/report.h"

using namespace sct;

namespace {

power::PowerProfile runCrypto(const std::string& d0, const std::string& d1,
                              const power::SignalEnergyTable& table) {
  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  power::Tl1PowerModel pm(table);
  power::PowerProfile profile(30'000);
  power::Tl1ProfileRecorder recorder(pm, profile);
  card.bus().addObserver(pm);
  card.bus().addObserver(recorder);

  const std::string firmware = R"(
    li   $s0, 0x10000400
    li   $t0, 0x0F1E2D3C
    sw   $t0, 0($s0)
    li   $t0, 0x4B5A6978
    sw   $t0, 4($s0)
    li   $t0, 0x8796A5B4
    sw   $t0, 8($s0)
    li   $t0, 0xC3D2E1F0
    sw   $t0, 12($s0)
    li   $t0, )" + d0 + R"(
    sw   $t0, 0x10($s0)
    li   $t0, )" + d1 + R"(
    sw   $t0, 0x14($s0)
    addiu $t0, $zero, 1
    sw   $t0, 0x18($s0)
  busy:
    lw   $t1, 0x1C($s0)
    bne  $t1, $zero, busy
    lw   $t2, 0x10($s0)
    lw   $t3, 0x14($s0)
    break
  )";
  card.loadProgram(soc::assemble(firmware, soc::memmap::kRomBase));
  card.run();
  return profile;
}

} // namespace

int main() {
  const auto& table = bench::characterizedTable();

  // Two plaintexts with very different Hamming weights.
  const power::PowerProfile a =
      runCrypto("0x00000000", "0x00000001", table);
  const power::PowerProfile b =
      runCrypto("0xFFFFFFFF", "0xFFFFFFFE", table);

  std::printf("cycle-accurate power profiles (layer 1), crypto firmware "
              "with two plaintexts:\n\n");
  trace::Table t({"Cycle", "P(A) fJ", "P(B) fJ", "|diff|", "Trace"});
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double ea = a.samples()[i].energy_fJ;
    const double eb = b.samples()[i].energy_fJ;
    const double diff = ea > eb ? ea - eb : eb - ea;
    if (ea < 1.0 && eb < 1.0) continue;  // Skip idle cycles.
    t.addRow({std::to_string(i + 1), trace::Table::num(ea, 0),
              trace::Table::num(eb, 0), trace::Table::num(diff, 0),
              std::string(static_cast<std::size_t>(diff / 400.0), '^')});
  }
  t.print(std::cout);

  double leak = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d =
        a.samples()[i].energy_fJ - b.samples()[i].energy_fJ;
    leak += d > 0 ? d : -d;
  }
  std::printf("\ntotal energy: A = %.1f pJ, B = %.1f pJ\n",
              a.total_fJ() / 1e3, b.total_fJ() / 1e3);
  std::printf("integrated |profile difference| = %.1f pJ — the "
              "data-dependent signal an SPA/DPA attacker exploits.\n",
              leak / 1e3);
  std::printf("profile variance: A = %.0f fJ^2, B = %.0f fJ^2 (flatter "
              "profiles leak less)\n",
              a.energyVariance_fJ2(), b.energyVariance_fJ2());
  std::printf("\nThis is why the paper requires \"estimation of power "
              "consumption over time\": countermeasures can be checked "
              "at the transaction level, before silicon.\n");
  return 0;
}
