// Quickstart: the energy-aware bus in ~100 lines.
//
//  1. Build a clocked system: kernel, clock, layer-1 EC bus, a memory
//     slave.
//  2. Characterize energy coefficients on the layer-0 reference bus
//     (one-time per platform).
//  3. Attach the layer-1 power model and run transactions.
//  4. Read the paper's power interface: energy of the last cycle, and
//     energy since the last call.
#include <cstdio>

#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "power/characterizer.h"
#include "power/tl1_power_model.h"
#include "ref/gl_bus.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

using namespace sct;

int main() {
  // --- A memory window: 16 KiB RAM at 0x0000, zero wait states -------
  bus::SlaveControl ramCtl;
  ramCtl.base = 0x0000;
  ramCtl.size = 0x4000;

  // --- Step 1: characterize coefficients on the layer-0 reference ----
  ref::ParasiticDb parasitics = ref::ParasiticDb::makeDefault();
  ref::TransitionEnergyModel energyModel(parasitics, ref::ProcessParams{});
  power::SignalEnergyTable table;
  {
    sim::Kernel kernel;
    sim::Clock clock(kernel, "clk", 30'000);  // 33 MHz, picoseconds.
    ref::GlBus refBus(clock, "refbus", energyModel);
    bus::MemorySlave ram("ram", ramCtl);
    refBus.attach(ram);
    power::Characterizer characterizer(energyModel);
    refBus.addFrameListener(characterizer);

    const trace::TargetRegion region{0x0000, 0x4000, true, true, true};
    const trace::BusTrace training = trace::characterizationTrace(
        /*seed=*/1, /*count=*/500, std::vector{region});
    trace::ReplayMaster trainer(clock, "trainer", refBus, refBus, training);
    trainer.runToCompletion();
    table = characterizer.buildTable();
    std::printf("characterized %u signals; EB_A = %.1f fJ/transition\n",
                static_cast<unsigned>(bus::kSignalCount),
                table.coeff_fJ(bus::SignalId::EB_A));
  }

  // --- Step 2: a layer-1 system with the energy model attached -------
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 30'000);
  bus::Tl1Bus ecbus(clock, "ecbus");
  bus::MemorySlave ram("ram", ramCtl);
  ecbus.attach(ram);
  power::Tl1PowerModel power(table);
  ecbus.addObserver(power);

  // --- Step 3: drive transactions through the non-blocking interface -
  bus::Tl1Request write;
  write.kind = bus::Kind::Write;
  write.address = 0x100;
  write.data[0] = 0xCAFEBABE;
  bus::Tl1Request burst;
  burst.kind = bus::Kind::Read;
  burst.address = 0x100;
  burst.beats = 4;  // A cache-line-sized burst.

  // Submit on a rising edge, poll until Ok/Error (the EC discipline).
  auto drive = [&](bus::Tl1Request& req) {
    bus::BusStatus s = req.kind == bus::Kind::Write ? ecbus.write(req)
                                                    : ecbus.read(req);
    while (s != bus::BusStatus::Ok && s != bus::BusStatus::Error) {
      clock.runCycles(1);
      s = req.kind == bus::Kind::Write ? ecbus.write(req)
                                       : ecbus.read(req);
    }
    std::printf("  %-5s @0x%03llx -> %s, cycle-energy interface says "
                "%.1f fJ in the last cycle\n",
                std::string(bus::toString(req.kind)).c_str(),
                static_cast<unsigned long long>(req.address),
                std::string(bus::toString(s)).c_str(),
                power.energyLastCycle_fJ());
  };

  std::printf("\ndriving transactions:\n");
  drive(write);
  drive(burst);
  std::printf("burst read returned 0x%08x (wrote 0xCAFEBABE)\n",
              burst.data[0]);

  // --- Step 4: the paper's power interface ----------------------------
  std::printf("\nenergy since last call: %.1f fJ\n",
              power.energySinceLastCall_fJ());
  std::printf("total energy:           %.1f fJ over %llu bus cycles\n",
              power.totalEnergy_fJ(),
              static_cast<unsigned long long>(ecbus.stats().cycles));
  return 0;
}
