// Low-power bus-encoding exploration CLI: run the codec × workload
// grid over the fork-based sweep and print the energy-per-transaction
// economics of every cell — which encoding pays off on which traffic,
// and what the invert-line control overhead costs.
//
//   enc_sweep [threads]
//     threads  sweep workers (default 0 = hardware pool, 1 = serial)
//
// The run double-checks the subsystem's two headline contracts and
// fails (nonzero exit) if either breaks:
//  * the outcome table is bit-identical between threads=1 and the
//    worker pool (fork-based restore determinism), and
//  * bus-invert reduces data-bus transitions on the random-data
//    "crypto" workload relative to the identity codec.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bus/memory_slave.h"
#include "enc/sweep.h"
#include "power/characterizer.h"
#include "ref/energy.h"
#include "ref/gl_bus.h"
#include "ref/parasitics.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "trace/replay_master.h"
#include "trace/report.h"
#include "trace/workloads.h"

namespace {

using sct::trace::Table;

/// Characterize a coefficient table on the layer-0 reference platform
/// (self-contained: the example does not link the bench harness).
sct::power::SignalEnergyTable characterize() {
  using namespace sct;
  static const ref::ParasiticDb db = ref::ParasiticDb::makeDefault();
  static const ref::TransitionEnergyModel model(db, ref::ProcessParams{});
  sim::Kernel kernel;
  sim::Clock clk(kernel, "clk", 10);
  ref::GlBus bus(clk, "ecbus_gl", model);
  bus::SlaveControl ctl;
  ctl.base = 0x0000;
  ctl.size = 0x4000;
  bus::MemorySlave mem("ram", ctl);
  bus.attach(mem);
  power::Characterizer ch(model);
  bus.addFrameListener(ch);
  const std::vector<trace::TargetRegion> regions = {
      {0x0000, 0x4000, true, true, true}};
  const trace::BusTrace training =
      trace::characterizationTrace(42, 400, regions);
  trace::ReplayMaster master(clk, "master", bus, bus, training);
  master.runToCompletion();
  return ch.buildTable();
}

bool identical(const sct::enc::EncOutcome& a, const sct::enc::EncOutcome& b) {
  return a.variant.codec == b.variant.codec &&
         a.variant.workload == b.variant.workload &&
         a.transactions == b.transactions && a.cycles == b.cycles &&
         a.total_fJ == b.total_fJ && a.perTxn_fJ == b.perTxn_fJ &&
         a.dataBus_fJ == b.dataBus_fJ && a.addrBus_fJ == b.addrBus_fJ &&
         a.dataTransitions == b.dataTransitions &&
         a.addrTransitions == b.addrTransitions;
}

const sct::enc::EncOutcome* find(const std::vector<sct::enc::EncOutcome>& all,
                                 const std::string& codec,
                                 const std::string& workload) {
  for (const sct::enc::EncOutcome& o : all) {
    if (o.variant.codec == codec && o.variant.workload == workload) return &o;
  }
  return nullptr;
}

} // namespace

int main(int argc, char** argv) {
  using namespace sct;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: enc_sweep [threads]\n";
      return 0;
    }
    threads = static_cast<unsigned>(std::strtoul(arg.c_str(), nullptr, 10));
  }

  const power::SignalEnergyTable table = characterize();

  std::cout << "Low-power bus-encoding sweep: codec x workload grid\n"
            << "(boot prelude amortized via ckpt::ForkRunner; threads="
            << threads << ")\n\n";

  const enc::SweepRunner sweep(table);
  const std::vector<enc::EncVariant> grid = enc::defaultGrid();
  const std::vector<enc::EncOutcome> outcomes = sweep.run(grid, threads);

  std::cout << "Boot snapshot: " << sweep.snapshot().saveToBuffer().size()
            << " bytes shared by " << grid.size() << " variants\n";

  // Contract 1: the sweep is bit-identical at any worker count.
  const std::vector<enc::EncOutcome> reference = sweep.run(grid, 1);
  bool bitIdentical = outcomes.size() == reference.size();
  for (std::size_t i = 0; bitIdentical && i < outcomes.size(); ++i) {
    bitIdentical = identical(outcomes[i], reference[i]);
  }
  std::cout << "Worker-pool vs serial outcomes: "
            << (bitIdentical ? "bit-identical" : "MISMATCH") << "\n\n";

  for (const std::string& wl : enc::workloadNames()) {
    const enc::EncOutcome* id = find(outcomes, "identity", wl);
    if (id == nullptr) continue;
    std::cout << "Workload \"" << wl << "\" (" << id->transactions
              << " transactions, " << id->cycles << " bus cycles):\n";
    Table t({"codec", "fJ/txn", "vs identity", "data trans", "addr trans",
             "data fJ", "addr fJ"});
    for (const std::string& codec : enc::codecNames()) {
      const enc::EncOutcome* o = find(outcomes, codec, wl);
      if (o == nullptr) continue;
      t.addRow({codec, Table::num(o->perTxn_fJ, 1),
                Table::pct(o->perTxn_fJ / id->perTxn_fJ, 1),
                std::to_string(o->dataTransitions),
                std::to_string(o->addrTransitions),
                Table::num(o->dataBus_fJ, 1), Table::num(o->addrBus_fJ, 1)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(data trans/fJ include the EB_Inv control-line overhead; "
               "with SCT_OBS=OFF the fJ splits read 0 and the transition "
               "columns carry the comparison)\n\n";

  // Contract 2: bus-invert earns its keep on random data.
  const enc::EncOutcome* idCrypto = find(outcomes, "identity", "crypto");
  const enc::EncOutcome* biCrypto = find(outcomes, "bus-invert", "crypto");
  bool invertWins = idCrypto != nullptr && biCrypto != nullptr &&
                    biCrypto->dataTransitions < idCrypto->dataTransitions;
  if (idCrypto != nullptr && biCrypto != nullptr) {
    std::cout << "bus-invert on \"crypto\": "
              << idCrypto->dataTransitions << " -> "
              << biCrypto->dataTransitions
              << " data-bus transitions (incl. EB_Inv), "
              << (invertWins ? "reduction confirmed" : "NO reduction")
              << "\n";
  }

  return bitIdentical && invertWins ? 0 : 1;
}
