// Boot-once / fork-many exploration (src/ckpt).
//
// A configuration sweep re-simulates the same firmware under several
// variants, and every job pays the identical SoC boot prefix. This
// example boots the Figure-1 platform once, checkpoints it at the
// boot-complete quiesce point, then forks each sweep variant from the
// shared snapshot — and cross-checks one variant against a
// boot-from-scratch run to show the fork is bit-identical. The same
// snapshot is also written to disk and read back, which is all a
// cross-process consumer (or the tests/ckpt golden file) needs.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bus/tl1_bus.h"
#include "ckpt/checkpoint.h"
#include "ckpt/fork_runner.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"

using namespace sct;

namespace {

using Soc = soc::SmartCardSoC<bus::Tl1Bus>;

// Boot: checksum a window of EEPROM into RAM (the expensive shared
// prefix). phase2: the short per-variant measured phase — sum 1..p for
// a parameter the harness pokes into RAM.
constexpr const char* kFirmware = R"(
    li    $s0, 0x0A000000   # EEPROM
    li    $s2, 0x08000000   # RAM
    addiu $t2, $zero, 0
    lw    $t6, 0($s2)       # boot loop length (poked below)
  boot:
    lw    $t4, 0($s0)
    addu  $t2, $t2, $t4
    xor   $t2, $t2, $t6
    addiu $s0, $s0, 4
    andi  $t5, $s0, 0xFFC
    bne   $t5, $zero, nowrap
    li    $s0, 0x0A000000
  nowrap:
    addiu $t6, $t6, -1
    bne   $t6, $zero, boot
    sw    $t2, 4($s2)
    break

  phase2:
    li    $s2, 0x08000000
    lw    $t3, 16($s2)      # variant parameter
    addiu $t2, $zero, 0
  ploop:
    addu  $t2, $t2, $t3
    addiu $t3, $t3, -1
    bne   $t3, $zero, ploop
    sw    $t2, 20($s2)
    break
)";

const soc::AssembledProgram& firmware() {
  static const auto prog = soc::assemble(kFirmware, soc::memmap::kRomBase);
  return prog;
}

void boot(Soc& s) {
  std::vector<std::uint8_t> eeprom(4096);
  for (std::size_t i = 0; i < eeprom.size(); ++i) {
    eeprom[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  s.loadData(soc::memmap::kEepromBase, eeprom.data(), eeprom.size());
  s.loadProgram(firmware());
  s.ram().pokeWord(soc::memmap::kRamBase, 2000);
  s.run();
}

struct VariantResult {
  bus::Word sum = 0;
  std::uint64_t cycles = 0;
};

VariantResult runVariant(Soc& s, std::size_t i) {
  s.ram().pokeWord(soc::memmap::kRamBase + 16,
                   static_cast<bus::Word>(8 + 4 * i));
  s.cpu().reset(firmware().label("phase2"));
  s.run();
  return {s.ram().peekWord(soc::memmap::kRamBase + 20), s.clock().cycle()};
}

double seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

} // namespace

int main() {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kVariants = 8;

  // --- Boot once, snapshot at the quiesce point -----------------------
  const auto t0 = Clock::now();
  ckpt::ForkRunner runner([] {
    Soc parent{soc::SocConfig{}};
    boot(parent);
    std::printf("parent booted: %llu cycles, RAM checksum 0x%08x\n",
                static_cast<unsigned long long>(parent.clock().cycle()),
                parent.ram().peekWord(soc::memmap::kRamBase + 4));
    return parent.checkpoint();
  });
  const auto t1 = Clock::now();

  // The snapshot is plain framed bytes — a file round-trip is free.
  runner.snapshot().saveFile("fork_sweep_boot.sctck");
  const auto fromDisk = ckpt::Snapshot::loadFile("fork_sweep_boot.sctck");
  std::printf("snapshot: %zu sections, %zu bytes on disk\n",
              fromDisk.sections().size(), fromDisk.serialize().size());

  // --- Fork the sweep from the shared snapshot ------------------------
  std::vector<VariantResult> forked(kVariants);
  runner.runForks(kVariants, /*threads=*/1,
                  [&](const ckpt::Snapshot& snap, std::size_t i) {
                    Soc s{soc::SocConfig{}};
                    s.restore(snap);
                    forked[i] = runVariant(s, i);
                  });
  const auto t2 = Clock::now();

  // --- Cross-check one variant against boot-from-scratch --------------
  Soc scratch{soc::SocConfig{}};
  boot(scratch);
  const VariantResult ref = runVariant(scratch, kVariants / 2);
  const auto t3 = Clock::now();
  const bool identical = ref.sum == forked[kVariants / 2].sum &&
                         ref.cycles == forked[kVariants / 2].cycles;

  std::printf("\n%-10s %-12s %s\n", "variant", "sweep sum", "final cycle");
  for (std::size_t i = 0; i < kVariants; ++i) {
    std::printf("%-10zu 0x%08x   %llu\n", i, forked[i].sum,
                static_cast<unsigned long long>(forked[i].cycles));
  }
  std::printf("\nfork vs boot-from-scratch (variant %zu): %s\n",
              kVariants / 2, identical ? "bit-identical" : "MISMATCH!");

  const double bootCost = seconds(t2, t3);  // One boot + one variant.
  const double forkSweep = seconds(t0, t2); // Boot once + N forks.
  std::printf("boot-per-job sweep would cost ~%.1f ms; fork sweep took "
              "%.1f ms (boot paid once, %.1f ms)\n",
              1e3 * bootCost * static_cast<double>(kVariants),
              1e3 * forkSweep, 1e3 * seconds(t0, t1));
  std::remove("fork_sweep_boot.sctck");
  return identical ? 0 : 1;
}
