// Full smart-card SoC bring-up: the Figure-1 platform boots firmware
// that exercises memories and peripherals, once on the layer-1 bus and
// once on the layer-0 reference bus — demonstrating bit- and
// cycle-identical execution across abstraction layers plus the energy
// numbers that come with each.
#include <cstdio>

#include "bench_util.h"
#include "power/budget.h"
#include "power/profile.h"
#include "power/tl1_power_model.h"
#include "soc/smartcard.h"

using namespace sct;

namespace {

constexpr const char* kFirmware = R"(
  # Boot: greet over the UART, checksum 16 flash words into RAM,
  # mix in 2 TRNG words, store the result to EEPROM.

    li   $s0, 0x10000200       # UART
    addiu $t0, $zero, 0x6F     # 'o'
    jal  putc
    addiu $t0, $zero, 0x6B     # 'k'
    jal  putc

    li   $s1, 0x0C000040       # flash constants
    addiu $t3, $zero, 16
    addiu $t4, $zero, 0
  sum:
    lw   $t5, 0($s1)
    addu $t4, $t4, $t5
    addiu $s1, $s1, 4
    addiu $t3, $t3, -1
    bne  $t3, $zero, sum

    li   $s1, 0x10000300       # TRNG
    lw   $t5, 0($s1)
    xor  $t4, $t4, $t5
    lw   $t5, 0($s1)
    xor  $t4, $t4, $t5

    li   $s1, 0x0A000010       # EEPROM
    sw   $t4, 0($s1)
    li   $s1, 0x08000010       # and RAM, for checking
    sw   $t4, 0($s1)
    break

  putc:
    lw   $t1, 4($s0)
    andi $t1, $t1, 1
    beq  $t1, $zero, putc
    sw   $t0, 0($s0)
    jr   $ra
)";

} // namespace

int main() {
  const auto& table = bench::characterizedTable();
  const auto firmware = soc::assemble(kFirmware, soc::memmap::kRomBase);

  // --- Layer 1: fast transaction-level simulation with estimation ----
  soc::SmartCardSoC<bus::Tl1Bus> tl1{soc::SocConfig{}};
  power::Tl1PowerModel pm(table);
  power::PowerProfile profile(30'000);
  power::Tl1ProfileRecorder profileRec(pm, profile);
  tl1.bus().addObserver(pm);
  tl1.bus().addObserver(profileRec);
  trace::fillRealistic(tl1.flash().data(), tl1.flash().sizeBytes(), 77);
  tl1.loadProgram(firmware);
  const bool ok1 = tl1.run();

  // --- Layer 0: the signal-accurate reference -------------------------
  soc::SmartCardSoC<ref::GlBus> gl{soc::SocConfig{}, bench::energyModel()};
  trace::fillRealistic(gl.flash().data(), gl.flash().sizeBytes(), 77);
  gl.loadProgram(firmware);
  const bool ok0 = gl.run();

  std::printf("boot %s on both layers; UART says \"%s\" / \"%s\"\n",
              ok1 && ok0 ? "succeeded" : "FAILED",
              tl1.uart().transmitted().c_str(),
              gl.uart().transmitted().c_str());

  std::printf("\nexecution (layer 1 vs layer 0):\n");
  std::printf("  cycles        %8llu vs %llu %s\n",
              static_cast<unsigned long long>(tl1.cpu().stats().cycles),
              static_cast<unsigned long long>(gl.cpu().stats().cycles),
              tl1.cpu().stats().cycles == gl.cpu().stats().cycles
                  ? "(identical)"
                  : "(MISMATCH!)");
  std::printf("  instructions  %8llu vs %llu\n",
              static_cast<unsigned long long>(
                  tl1.cpu().stats().instructions),
              static_cast<unsigned long long>(gl.cpu().stats().instructions));
  std::printf("  checksum      0x%08x vs 0x%08x %s\n",
              tl1.ram().peekWord(soc::memmap::kRamBase + 0x10),
              gl.ram().peekWord(soc::memmap::kRamBase + 0x10),
              tl1.ram().peekWord(soc::memmap::kRamBase + 0x10) ==
                      gl.ram().peekWord(soc::memmap::kRamBase + 0x10)
                  ? "(identical)"
                  : "(MISMATCH!)");

  std::printf("\ncore statistics (layer 1):\n");
  std::printf("  CPI                  %.2f\n", tl1.cpu().stats().cpi());
  std::printf("  I-cache hit rate     %.1f%%\n",
              100.0 * tl1.cpu().icache().stats().hitRate());
  std::printf("  D-cache hit rate     %.1f%%\n",
              100.0 * tl1.cpu().dcache().stats().hitRate());
  std::printf("  bus transactions     %llu (%llu fetch bursts)\n",
              static_cast<unsigned long long>(
                  tl1.bus().stats().transactions()),
              static_cast<unsigned long long>(
                  tl1.bus().stats().instrTransactions));

  std::printf("\nenergy:\n");
  std::printf("  layer-1 estimate     %.1f pJ\n", pm.totalEnergy_fJ() / 1e3);
  std::printf("  layer-0 reference    %.1f pJ (incl. %.1f pJ baseline)\n",
              gl.bus().energy().total_fJ / 1e3,
              gl.bus().energy().baseline_fJ / 1e3);
  std::printf("  estimation error     %+.1f%%\n",
              100.0 * (pm.totalEnergy_fJ() - gl.bus().energy().total_fJ) /
                  gl.bus().energy().total_fJ);

  const power::BudgetChecker budget(power::contactless(), 120.0);
  const power::BudgetReport report = budget.check(profile, 64);
  std::printf("\ncontactless budget (%s): peak %.4f mA of %.1f mA — %s\n",
              budget.spec().name.c_str(), report.peakCurrent_mA,
              budget.spec().maxCurrent_mA,
              report.ok() ? "within budget" : "VIOLATION");
  return ok1 && ok0 ? 0 : 1;
}
