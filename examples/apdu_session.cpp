// A complete smart-card session, with energy accounting.
//
// The simulated card runs an ISO 7816-style APDU applet (soc/apdu.h);
// the host verifies the PIN, requests a challenge, has the card compute
// the authentication cryptogram on its crypto coprocessor, and closes
// the session — while the layer-1 power model accounts for every bus
// cycle. The per-command energy figures at the end are exactly what the
// paper's methodology is for: power-aware design decisions on firmware
// and interfaces, long before silicon.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "power/tl1_power_model.h"
#include "soc/apdu.h"
#include "trace/report.h"

using namespace sct;
using soc::apdu::Command;
using soc::apdu::Response;

int main() {
  const auto& table = bench::characterizedTable();
  constexpr std::uint8_t kPin[4] = {0x31, 0x41, 0x59, 0x26};

  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  power::Tl1PowerModel pm(table);
  card.bus().addObserver(pm);
  card.loadProgram(soc::apdu::cardApplet(kPin));
  soc::apdu::Session session(card);

  trace::Table log({"Command", "SW", "Data", "Cycles", "Energy (pJ)"});
  std::uint64_t lastCycles = 0;
  auto note = [&](const char* name, const Response& r,
                  const std::string& data) {
    const std::uint64_t cycles = card.cpu().stats().cycles;
    char sw[8];
    std::snprintf(sw, sizeof sw, "%04X", r.sw);
    log.addRow({name, sw, data, std::to_string(cycles - lastCycles),
                trace::Table::num(pm.energySinceLastCall_fJ() / 1e3, 1)});
    lastCycles = cycles;
  };
  auto hex = [](const std::vector<std::uint8_t>& v) {
    std::string s;
    char b[4];
    for (std::uint8_t x : v) {
      std::snprintf(b, sizeof b, "%02X", x);
      s += b;
    }
    return s.empty() ? std::string("-") : s;
  };

  // --- 1. VERIFY with a wrong PIN, then the right one -----------------
  Response r;
  Command verify;
  verify.ins = soc::apdu::kInsVerify;
  verify.data = {0x00, 0x00, 0x00, 0x00};
  session.exchange(verify, 0, r);
  note("VERIFY (wrong PIN)", r, "-");

  verify.data = {0x31, 0x41, 0x59, 0x26};
  session.exchange(verify, 0, r);
  note("VERIFY", r, "-");

  // --- 2. GET CHALLENGE ------------------------------------------------
  Command challenge;
  challenge.ins = soc::apdu::kInsGetChallenge;
  Response c;
  session.exchange(challenge, 4, c);
  note("GET CHALLENGE", c, hex(c.data));

  // --- 3. INTERNAL AUTHENTICATE ---------------------------------------
  Command auth;
  auth.ins = soc::apdu::kInsInternalAuth;
  auth.data = {c.data[0], c.data[1], c.data[2], c.data[3],
               0xDE, 0xAD, 0xBE, 0xEF};
  Response a;
  session.exchange(auth, 8, a);
  note("INTERNAL AUTHENTICATE", a, hex(a.data));

  // Host-side check of the cryptogram.
  std::uint32_t d0 = 0;
  std::uint32_t d1 = 0;
  std::memcpy(&d0, auth.data.data(), 4);
  std::memcpy(&d1, auth.data.data() + 4, 4);
  soc::CryptoCoprocessor::encryptBlock(soc::apdu::kAuthKey, d0, d1);
  std::uint32_t r0 = 0;
  std::uint32_t r1 = 0;
  std::memcpy(&r0, a.data.data(), 4);
  std::memcpy(&r1, a.data.data() + 4, 4);

  // --- 4. End of session -------------------------------------------------
  Command bye;
  bye.cla = soc::apdu::kClaEndSession;
  session.exchange(bye, 0, r);
  note("END SESSION", r, "-");

  std::printf("APDU session against the simulated card:\n\n");
  log.print(std::cout);
  std::printf("\ncryptogram verified on the host: %s\n",
              (r0 == d0 && r1 == d1) ? "MATCH" : "MISMATCH!");
  std::printf("session total: %llu cycles, %.1f pJ bus energy\n",
              static_cast<unsigned long long>(card.cpu().stats().cycles),
              pm.totalEnergy_fJ() / 1e3);
  return 0;
}
