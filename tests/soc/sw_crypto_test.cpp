#include "soc/sw_crypto.h"

#include <gtest/gtest.h>

#include "bus/tl1_bus.h"
#include "soc/peripherals.h"
#include "soc/smartcard.h"

namespace sct::soc {
namespace {

using Soc = SmartCardSoC<bus::Tl1Bus>;

TEST(SwCryptoTest, MatchesTheCoprocessorCipher) {
  Soc soc{SocConfig{}};
  soc.loadProgram(swEncryptProgram(/*blocks=*/2));

  const std::uint32_t key[4] = {0x01234567, 0x89ABCDEF, 0xFEDCBA98,
                                0x76543210};
  for (unsigned i = 0; i < 4; ++i) {
    soc.ram().pokeWord(memmap::kRamBase + 4 * i, key[i]);
  }
  const std::uint32_t plain[4] = {0xDEADBEEF, 0x00C0FFEE, 0x11111111,
                                  0x22222222};
  for (unsigned i = 0; i < 4; ++i) {
    soc.ram().pokeWord(memmap::kRamBase + 0x20 + 4 * i, plain[i]);
  }

  ASSERT_TRUE(soc.run(2'000'000));
  ASSERT_FALSE(soc.cpu().faulted());

  for (unsigned b = 0; b < 2; ++b) {
    std::uint32_t d0 = plain[2 * b];
    std::uint32_t d1 = plain[2 * b + 1];
    CryptoCoprocessor::encryptBlock(key, d0, d1);
    EXPECT_EQ(soc.ram().peekWord(memmap::kRamBase + 0x20 + 8 * b), d0)
        << "block " << b;
    EXPECT_EQ(soc.ram().peekWord(memmap::kRamBase + 0x24 + 8 * b), d1)
        << "block " << b;
  }
}

TEST(SwCryptoTest, SoftwareCostsFarMoreCyclesThanTheCoprocessor) {
  // The motivation for the coprocessor, quantified.
  Soc sw{SocConfig{}};
  sw.loadProgram(swEncryptProgram(1));
  sw.ram().pokeWord(memmap::kRamBase + 0x20, 0xCAFEBABE);
  sw.ram().pokeWord(memmap::kRamBase + 0x24, 0xDEADBEEF);
  ASSERT_TRUE(sw.run(2'000'000));
  const auto swCycles = sw.cpu().stats().cycles;

  Soc hw{SocConfig{}};
  hw.loadProgram(assemble(R"(
      li   $s0, 0x10000400
      li   $t0, 0xCAFEBABE
      sw   $t0, 0x10($s0)
      li   $t0, 0xDEADBEEF
      sw   $t0, 0x14($s0)
      addiu $t0, $zero, 1
      sw   $t0, 0x18($s0)
    busy:
      lw   $t1, 0x1C($s0)
      bne  $t1, $zero, busy
      lw   $t2, 0x10($s0)
      break
  )",
                          memmap::kRomBase));
  ASSERT_TRUE(hw.run());
  const auto hwCycles = hw.cpu().stats().cycles;

  EXPECT_GT(swCycles, 5 * hwCycles);
}

TEST(CpuMultDivTest, MultiplySignedAndUnsigned) {
  Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    li    $t0, 100000
    li    $t1, 100000
    multu $t0, $t1       # 10^10 = 0x2540BE400
    mflo  $s0            # 0x540BE400
    mfhi  $s1            # 0x2
    addiu $t2, $zero, -3
    addiu $t3, $zero, 7
    mult  $t2, $t3       # -21
    mflo  $s2
    mfhi  $s3            # sign extension: 0xFFFFFFFF
    break
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  EXPECT_EQ(soc.cpu().reg(16), 0x540BE400u);
  EXPECT_EQ(soc.cpu().reg(17), 0x2u);
  EXPECT_EQ(soc.cpu().reg(18), static_cast<std::uint32_t>(-21));
  EXPECT_EQ(soc.cpu().reg(19), 0xFFFFFFFFu);
}

TEST(CpuMultDivTest, DivideQuotientAndRemainder) {
  Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    addiu $t0, $zero, 47
    addiu $t1, $zero, 5
    divu  $t0, $t1
    mflo  $s0            # 9
    mfhi  $s1            # 2
    addiu $t0, $zero, -47
    div   $t0, $t1
    mflo  $s2            # -9
    mfhi  $s3            # -2
    break
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  EXPECT_EQ(soc.cpu().reg(16), 9u);
  EXPECT_EQ(soc.cpu().reg(17), 2u);
  EXPECT_EQ(soc.cpu().reg(18), static_cast<std::uint32_t>(-9));
  EXPECT_EQ(soc.cpu().reg(19), static_cast<std::uint32_t>(-2));
}

TEST(CpuMultDivTest, DivideByZeroLeavesHiLoUnchanged) {
  Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    addiu $t0, $zero, 5
    mtlo  $t0
    mthi  $t0
    div   $t0, $zero
    mflo  $s0
    mfhi  $s1
    break
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  EXPECT_FALSE(soc.cpu().faulted());
  EXPECT_EQ(soc.cpu().reg(16), 5u);
  EXPECT_EQ(soc.cpu().reg(17), 5u);
}

TEST(CpuMultDivTest, MthiMtloRoundTrip) {
  Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    li   $t0, 0xABCD1234
    mtlo $t0
    mflo $s0
    li   $t1, 0x55AA55AA
    mthi $t1
    mfhi $s1
    break
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  EXPECT_EQ(soc.cpu().reg(16), 0xABCD1234u);
  EXPECT_EQ(soc.cpu().reg(17), 0x55AA55AAu);
}

} // namespace
} // namespace sct::soc
