// Randomized cross-check of the instruction-set simulator.
//
// Straight-line programs of random ALU and memory instructions execute
// on the full SoC (through caches and the EC bus) and on a golden
// functional executor written directly against the MIPS semantics.
// The architectural state (registers, HI/LO, RAM words) must agree —
// this catches decode, sign-extension, lane and store-buffer bugs that
// hand-written cases miss.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "bus/tl1_bus.h"
#include "sim/random.h"
#include "soc/isa.h"
#include "soc/smartcard.h"

namespace sct::soc {
namespace {

constexpr bus::Address kRam = memmap::kRamBase;
constexpr std::size_t kRamWindow = 256;  // Bytes touched by the programs.

/// Golden functional model: executes the same words with no timing, no
/// caches, directly on an array-backed memory.
struct GoldenCpu {
  std::array<std::uint32_t, 32> regs{};
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  std::array<std::uint8_t, kRamWindow> ram{};

  std::uint32_t loadWord(std::uint32_t offset) const {
    std::uint32_t w = 0;
    std::memcpy(&w, &ram[offset & ~3u], 4);
    return w;
  }

  void run(const std::vector<std::uint32_t>& words) {
    for (std::uint32_t w : words) {
      const DecodedInstr d = decode(w);
      const auto rs = regs[d.rs];
      const auto rt = regs[d.rt];
      auto wr = [&](unsigned r, std::uint32_t v) {
        if (r != 0) regs[r] = v;
      };
      switch (d.op) {
        case Op::Addu: wr(d.rd, rs + rt); break;
        case Op::Subu: wr(d.rd, rs - rt); break;
        case Op::And: wr(d.rd, rs & rt); break;
        case Op::Or: wr(d.rd, rs | rt); break;
        case Op::Xor: wr(d.rd, rs ^ rt); break;
        case Op::Nor: wr(d.rd, ~(rs | rt)); break;
        case Op::Slt:
          wr(d.rd, static_cast<std::int32_t>(rs) <
                       static_cast<std::int32_t>(rt));
          break;
        case Op::Sltu: wr(d.rd, rs < rt); break;
        case Op::Sll: wr(d.rd, rt << d.shamt); break;
        case Op::Srl: wr(d.rd, rt >> d.shamt); break;
        case Op::Sra:
          wr(d.rd, static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(rt) >> d.shamt));
          break;
        case Op::Sllv: wr(d.rd, rt << (rs & 31)); break;
        case Op::Srlv: wr(d.rd, rt >> (rs & 31)); break;
        case Op::Srav:
          wr(d.rd, static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(rt) >> (rs & 31)));
          break;
        case Op::Mult: {
          const std::int64_t p =
              static_cast<std::int64_t>(static_cast<std::int32_t>(rs)) *
              static_cast<std::int32_t>(rt);
          lo = static_cast<std::uint32_t>(p);
          hi = static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >>
                                          32);
          break;
        }
        case Op::Multu: {
          const std::uint64_t p = static_cast<std::uint64_t>(rs) * rt;
          lo = static_cast<std::uint32_t>(p);
          hi = static_cast<std::uint32_t>(p >> 32);
          break;
        }
        case Op::Div:
          if (rt != 0) {
            lo = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(rs) /
                static_cast<std::int32_t>(rt));
            hi = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(rs) %
                static_cast<std::int32_t>(rt));
          }
          break;
        case Op::Divu:
          if (rt != 0) {
            lo = rs / rt;
            hi = rs % rt;
          }
          break;
        case Op::Mfhi: wr(d.rd, hi); break;
        case Op::Mflo: wr(d.rd, lo); break;
        case Op::Mthi: hi = rs; break;
        case Op::Mtlo: lo = rs; break;
        case Op::Addiu:
          wr(d.rt, rs + static_cast<std::uint32_t>(d.simm));
          break;
        case Op::Andi: wr(d.rt, rs & d.uimm); break;
        case Op::Ori: wr(d.rt, rs | d.uimm); break;
        case Op::Xori: wr(d.rt, rs ^ d.uimm); break;
        case Op::Slti:
          wr(d.rt, static_cast<std::int32_t>(rs) < d.simm);
          break;
        case Op::Sltiu:
          wr(d.rt, rs < static_cast<std::uint32_t>(d.simm));
          break;
        case Op::Lui: wr(d.rt, d.uimm << 16); break;
        case Op::Lw: {
          const std::uint32_t a =
              rs + static_cast<std::uint32_t>(d.simm) -
              static_cast<std::uint32_t>(kRam);
          wr(d.rt, loadWord(a));
          break;
        }
        case Op::Lb:
        case Op::Lbu: {
          const std::uint32_t a =
              rs + static_cast<std::uint32_t>(d.simm) -
              static_cast<std::uint32_t>(kRam);
          const std::uint8_t b = ram[a];
          wr(d.rt, d.op == Op::Lb
                       ? static_cast<std::uint32_t>(
                             static_cast<std::int32_t>(
                                 static_cast<std::int8_t>(b)))
                       : b);
          break;
        }
        case Op::Lh:
        case Op::Lhu: {
          const std::uint32_t a =
              (rs + static_cast<std::uint32_t>(d.simm) -
               static_cast<std::uint32_t>(kRam)) &
              ~1u;
          std::uint16_t h = 0;
          std::memcpy(&h, &ram[a], 2);
          wr(d.rt, d.op == Op::Lh
                       ? static_cast<std::uint32_t>(
                             static_cast<std::int32_t>(
                                 static_cast<std::int16_t>(h)))
                       : h);
          break;
        }
        case Op::Sw: {
          const std::uint32_t a =
              (rs + static_cast<std::uint32_t>(d.simm) -
               static_cast<std::uint32_t>(kRam)) &
              ~3u;
          std::memcpy(&ram[a], &rt, 4);
          break;
        }
        case Op::Sh: {
          const std::uint32_t a =
              (rs + static_cast<std::uint32_t>(d.simm) -
               static_cast<std::uint32_t>(kRam)) &
              ~1u;
          const std::uint16_t h = static_cast<std::uint16_t>(rt);
          std::memcpy(&ram[a], &h, 2);
          break;
        }
        case Op::Sb: {
          const std::uint32_t a =
              rs + static_cast<std::uint32_t>(d.simm) -
              static_cast<std::uint32_t>(kRam);
          ram[a] = static_cast<std::uint8_t>(rt);
          break;
        }
        default:
          break;  // Program generator never emits other ops.
      }
    }
  }
};

/// Generate a random straight-line program over registers $8..$15 and
/// the RAM window. $16 holds the RAM base and is never clobbered.
std::vector<std::uint32_t> randomProgram(std::uint64_t seed,
                                         std::size_t count) {
  sim::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> words;
  auto reg = [&] { return 8 + static_cast<unsigned>(rng.below(8)); };
  auto offset = [&] {
    return static_cast<std::uint16_t>(rng.below(kRamWindow - 4) & ~0x3ull);
  };
  // Seed the registers with random values.
  for (unsigned r = 8; r < 16; ++r) {
    const std::uint32_t v = rng.next32();
    words.push_back(encodeI(0x0F, 0, r, static_cast<std::uint16_t>(v >> 16)));
    words.push_back(
        encodeI(0x0D, r, r, static_cast<std::uint16_t>(v & 0xFFFF)));
  }
  for (std::size_t i = 0; i < count; ++i) {
    switch (rng.below(18)) {
      case 0: words.push_back(encodeR(0, reg(), reg(), reg(), 0, 0x21)); break;
      case 1: words.push_back(encodeR(0, reg(), reg(), reg(), 0, 0x23)); break;
      case 2: words.push_back(encodeR(0, reg(), reg(), reg(), 0, 0x24)); break;
      case 3: words.push_back(encodeR(0, reg(), reg(), reg(), 0, 0x26)); break;
      case 4: words.push_back(encodeR(0, reg(), reg(), reg(), 0, 0x2B)); break;
      case 5:
        words.push_back(encodeR(0, 0, reg(), reg(),
                                static_cast<unsigned>(rng.below(32)), 0x02));
        break;
      case 6:
        words.push_back(encodeR(0, 0, reg(), reg(),
                                static_cast<unsigned>(rng.below(32)), 0x03));
        break;
      case 7:
        words.push_back(encodeI(0x09, reg(), reg(),
                                static_cast<std::uint16_t>(rng.next())));
        break;
      case 8:
        words.push_back(encodeI(0x0C, reg(), reg(),
                                static_cast<std::uint16_t>(rng.next())));
        break;
      case 9: words.push_back(encodeR(0, reg(), reg(), 0, 0, 0x18)); break;
      case 10: words.push_back(encodeR(0, reg(), reg(), 0, 0, 0x19)); break;
      case 11: words.push_back(encodeR(0, reg(), reg(), 0, 0, 0x1A)); break;
      case 12: words.push_back(encodeR(0, 0, 0, reg(), 0, 0x10)); break;
      case 13: words.push_back(encodeR(0, 0, 0, reg(), 0, 0x12)); break;
      case 14: words.push_back(encodeI(0x23, 16, reg(), offset())); break;
      case 15: words.push_back(encodeI(0x2B, 16, reg(), offset())); break;
      case 16:
        words.push_back(encodeI(0x24, 16, reg(),
                                static_cast<std::uint16_t>(
                                    rng.below(kRamWindow - 1))));
        break;
      default:
        words.push_back(encodeI(0x28, 16, reg(),
                                static_cast<std::uint16_t>(
                                    rng.below(kRamWindow - 1))));
        break;
    }
  }
  words.push_back(kBreak);
  return words;
}

class CpuRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuRandomTest, MatchesGoldenExecutor) {
  const auto words = randomProgram(GetParam(), 300);

  // Run on the full SoC.
  SmartCardSoC<bus::Tl1Bus> soc{SocConfig{}};
  AssembledProgram prog;
  prog.origin = memmap::kRomBase;
  prog.words = words;
  soc.loadProgram(prog);
  soc.cpu().setReg(16, static_cast<std::uint32_t>(kRam));
  ASSERT_TRUE(soc.run(2'000'000));
  ASSERT_FALSE(soc.cpu().faulted());

  // Run on the golden executor (skip the BREAK terminator).
  GoldenCpu golden;
  golden.regs[16] = static_cast<std::uint32_t>(kRam);
  golden.run({words.begin(), words.end() - 1});

  for (unsigned r = 8; r < 16; ++r) {
    EXPECT_EQ(soc.cpu().reg(r), golden.regs[r]) << "$" << r;
  }
  EXPECT_EQ(soc.cpu().hi(), golden.hi);
  EXPECT_EQ(soc.cpu().lo(), golden.lo);
  for (std::uint32_t off = 0; off < kRamWindow; off += 4) {
    EXPECT_EQ(soc.ram().peekWord(kRam + off), golden.loadWord(off))
        << "ram+0x" << std::hex << off;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));

} // namespace
} // namespace sct::soc
