#include "soc/isa.h"

#include <gtest/gtest.h>

namespace sct::soc {
namespace {

TEST(IsaTest, DecodeRType) {
  // addu $3, $1, $2
  const auto d = decode(encodeR(0, 1, 2, 3, 0, 0x21));
  EXPECT_EQ(d.op, Op::Addu);
  EXPECT_EQ(d.rs, 1);
  EXPECT_EQ(d.rt, 2);
  EXPECT_EQ(d.rd, 3);
}

TEST(IsaTest, DecodeShift) {
  // sll $5, $4, 7
  const auto d = decode(encodeR(0, 0, 4, 5, 7, 0x00));
  EXPECT_EQ(d.op, Op::Sll);
  EXPECT_EQ(d.rt, 4);
  EXPECT_EQ(d.rd, 5);
  EXPECT_EQ(d.shamt, 7);
}

TEST(IsaTest, DecodeITypeSignExtension) {
  // addiu $2, $1, -4
  const auto d = decode(encodeI(0x09, 1, 2, 0xFFFC));
  EXPECT_EQ(d.op, Op::Addiu);
  EXPECT_EQ(d.simm, -4);
  EXPECT_EQ(d.uimm, 0xFFFCu);
}

TEST(IsaTest, DecodeLoadsAndStores) {
  EXPECT_EQ(decode(encodeI(0x23, 1, 2, 8)).op, Op::Lw);
  EXPECT_EQ(decode(encodeI(0x20, 1, 2, 8)).op, Op::Lb);
  EXPECT_EQ(decode(encodeI(0x24, 1, 2, 8)).op, Op::Lbu);
  EXPECT_EQ(decode(encodeI(0x21, 1, 2, 8)).op, Op::Lh);
  EXPECT_EQ(decode(encodeI(0x25, 1, 2, 8)).op, Op::Lhu);
  EXPECT_EQ(decode(encodeI(0x2B, 1, 2, 8)).op, Op::Sw);
  EXPECT_EQ(decode(encodeI(0x29, 1, 2, 8)).op, Op::Sh);
  EXPECT_EQ(decode(encodeI(0x28, 1, 2, 8)).op, Op::Sb);
}

TEST(IsaTest, DecodeBranchesAndJumps) {
  EXPECT_EQ(decode(encodeI(0x04, 1, 2, 16)).op, Op::Beq);
  EXPECT_EQ(decode(encodeI(0x05, 1, 2, 16)).op, Op::Bne);
  EXPECT_EQ(decode(encodeI(0x06, 1, 0, 16)).op, Op::Blez);
  EXPECT_EQ(decode(encodeI(0x07, 1, 0, 16)).op, Op::Bgtz);
  EXPECT_EQ(decode(encodeI(0x01, 1, 0, 16)).op, Op::Bltz);
  EXPECT_EQ(decode(encodeI(0x01, 1, 1, 16)).op, Op::Bgez);
  EXPECT_EQ(decode(encodeJ(0x02, 0x100)).op, Op::J);
  EXPECT_EQ(decode(encodeJ(0x03, 0x100)).op, Op::Jal);
  EXPECT_EQ(decode(encodeJ(0x02, 0x100)).target, 0x100u);
}

TEST(IsaTest, DecodeSystem) {
  EXPECT_EQ(decode(kSyscall).op, Op::Syscall);
  EXPECT_EQ(decode(kBreak).op, Op::Break);
}

TEST(IsaTest, NopIsSllZero) {
  const auto d = decode(kNop);
  EXPECT_EQ(d.op, Op::Sll);
  EXPECT_EQ(d.rd, 0);
}

TEST(IsaTest, InvalidOpcodeDetected) {
  EXPECT_EQ(decode(0xFC000000).op, Op::Invalid);
  EXPECT_EQ(decode(encodeR(0, 0, 0, 0, 0, 0x3F)).op, Op::Invalid);
}

TEST(IsaTest, MnemonicsAreUnique) {
  EXPECT_EQ(mnemonic(Op::Addu), "addu");
  EXPECT_EQ(mnemonic(Op::Lw), "lw");
  EXPECT_EQ(mnemonic(Op::Invalid), "invalid");
}

} // namespace
} // namespace sct::soc
