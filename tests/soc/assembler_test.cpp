#include "soc/assembler.h"

#include <gtest/gtest.h>

#include "soc/isa.h"

namespace sct::soc {
namespace {

TEST(AssemblerTest, RegisterNames) {
  EXPECT_EQ(parseRegister("$0"), 0u);
  EXPECT_EQ(parseRegister("$31"), 31u);
  EXPECT_EQ(parseRegister("$zero"), 0u);
  EXPECT_EQ(parseRegister("$t0"), 8u);
  EXPECT_EQ(parseRegister("$s0"), 16u);
  EXPECT_EQ(parseRegister("$sp"), 29u);
  EXPECT_EQ(parseRegister("$ra"), 31u);
  EXPECT_THROW(parseRegister("$bogus"), AsmError);
  EXPECT_THROW(parseRegister("$32"), AsmError);
  EXPECT_THROW(parseRegister("t0"), AsmError);
}

TEST(AssemblerTest, BasicRType) {
  const auto p = assemble("addu $3, $1, $2\n");
  ASSERT_EQ(p.words.size(), 1u);
  EXPECT_EQ(p.words[0], encodeR(0, 1, 2, 3, 0, 0x21));
}

TEST(AssemblerTest, ImmediateAndShift) {
  const auto p = assemble(R"(
    addiu $t0, $zero, 42
    sll $t1, $t0, 4
    ori $t2, $t0, 0xFF
  )");
  ASSERT_EQ(p.words.size(), 3u);
  EXPECT_EQ(p.words[0], encodeI(0x09, 0, 8, 42));
  EXPECT_EQ(p.words[1], encodeR(0, 0, 8, 9, 4, 0x00));
  EXPECT_EQ(p.words[2], encodeI(0x0D, 8, 10, 0xFF));
}

TEST(AssemblerTest, NegativeImmediate) {
  const auto p = assemble("addiu $t0, $t0, -4\n");
  EXPECT_EQ(p.words[0], encodeI(0x09, 8, 8, 0xFFFC));
}

TEST(AssemblerTest, MemoryOperands) {
  const auto p = assemble(R"(
    lw $t0, 8($sp)
    sw $t0, -4($s0)
    lbu $t1, ($a0)
  )");
  EXPECT_EQ(p.words[0], encodeI(0x23, 29, 8, 8));
  EXPECT_EQ(p.words[1], encodeI(0x2B, 16, 8, 0xFFFC));
  EXPECT_EQ(p.words[2], encodeI(0x24, 4, 9, 0));
}

TEST(AssemblerTest, LabelsAndBranches) {
  const auto p = assemble(R"(
    loop:
      addiu $t0, $t0, -1
      bne $t0, $zero, loop
      break
  )");
  ASSERT_EQ(p.words.size(), 3u);
  // bne at address 4 branching to 0: offset = (0 - 8) / 4 = -2.
  EXPECT_EQ(p.words[1], encodeI(0x05, 8, 0, 0xFFFE));
  EXPECT_EQ(p.label("loop"), 0u);
}

TEST(AssemblerTest, ForwardBranch) {
  const auto p = assemble(R"(
    beq $zero, $zero, done
    nop
    done: break
  )");
  // beq at 0 to 8: offset = (8 - 4) / 4 = 1.
  EXPECT_EQ(p.words[0], encodeI(0x04, 0, 0, 1));
}

TEST(AssemblerTest, LiExpandsToLuiOri) {
  const auto p = assemble("li $t0, 0x12345678\n");
  ASSERT_EQ(p.words.size(), 2u);
  EXPECT_EQ(p.words[0], encodeI(0x0F, 0, 8, 0x1234));
  EXPECT_EQ(p.words[1], encodeI(0x0D, 8, 8, 0x5678));
}

TEST(AssemblerTest, PseudoMoveAndNop) {
  const auto p = assemble("move $t0, $s0\nnop\n");
  EXPECT_EQ(p.words[0], encodeR(0, 16, 0, 8, 0, 0x25));
  EXPECT_EQ(p.words[1], kNop);
}

TEST(AssemblerTest, JumpToLabel) {
  const auto p = assemble(R"(
      nop
    target:
      j target
  )",
                          0x1000);
  EXPECT_EQ(p.origin, 0x1000u);
  EXPECT_EQ(p.label("target"), 0x1004u);
  EXPECT_EQ(p.words[1], encodeJ(0x02, 0x1004 >> 2));
}

TEST(AssemblerTest, OrgAndWordDirectives) {
  const auto p = assemble(R"(
    .org 0x100
    start:
      lw $t0, 0($zero)
    data:
      .word 0xDEADBEEF, 42
  )");
  EXPECT_EQ(p.origin, 0x100u);
  EXPECT_EQ(p.label("start"), 0x100u);
  EXPECT_EQ(p.label("data"), 0x104u);
  EXPECT_EQ(p.words[1], 0xDEADBEEFu);
  EXPECT_EQ(p.words[2], 42u);
}

TEST(AssemblerTest, SpaceDirectiveReserves) {
  const auto p = assemble(R"(
    .space 8
    after: break
  )");
  EXPECT_EQ(p.label("after"), 8u);
  EXPECT_EQ(p.words.size(), 3u);
}

TEST(AssemblerTest, CommentsAreIgnored) {
  const auto p = assemble(R"(
    # full-line comment
    nop   # trailing comment
    nop   ; semicolon comment
  )");
  EXPECT_EQ(p.words.size(), 2u);
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus $t0\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(AssemblerTest, RejectsOutOfRangeImmediate) {
  EXPECT_THROW(assemble("addiu $t0, $zero, 70000\n"), AsmError);
}

TEST(AssemblerTest, RejectsUnknownLabel) {
  EXPECT_THROW(assemble("j nowhere\n"), AsmError);
}

TEST(AssemblerTest, ShiftVariableOperandOrder) {
  // sllv rd, rt, rs — shift rt left by rs.
  const auto p = assemble("sllv $t2, $t0, $t1\n");
  EXPECT_EQ(p.words[0], encodeR(0, 9, 8, 10, 0, 0x04));
}

TEST(AssemblerTest, RoundTripThroughDecoder) {
  const auto p = assemble(R"(
    addu $1, $2, $3
    subu $4, $5, $6
    lw $t0, 4($t1)
    sw $t0, 8($t1)
    beq $1, $2, 0x0
    jal 0x40
    jr $ra
    syscall
  )");
  const Op expected[] = {Op::Addu, Op::Subu, Op::Lw,      Op::Sw,
                         Op::Beq,  Op::Jal,  Op::Jr,      Op::Syscall};
  ASSERT_EQ(p.words.size(), std::size(expected));
  for (std::size_t i = 0; i < p.words.size(); ++i) {
    EXPECT_EQ(decode(p.words[i]).op, expected[i]) << i;
  }
}

} // namespace
} // namespace sct::soc
