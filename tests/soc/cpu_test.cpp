#include "soc/cpu.h"

#include <gtest/gtest.h>

#include "bus/tl1_bus.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"

namespace sct::soc {
namespace {

using Soc = SmartCardSoC<bus::Tl1Bus>;

Soc makeSoc() { return Soc(SocConfig{}); }

void runProgram(Soc& soc, const std::string& src,
                std::uint64_t maxCycles = 200000) {
  soc.loadProgram(assemble(src, memmap::kRomBase));
  ASSERT_TRUE(soc.run(maxCycles)) << "program did not halt";
}

TEST(CpuTest, ArithmeticAndLogic) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    addiu $t0, $zero, 21
    addu  $t1, $t0, $t0     # 42
    subu  $t2, $t1, $t0     # 21
    ori   $t3, $zero, 0xF0
    andi  $t4, $t3, 0x3C    # 0x30
    xor   $t5, $t3, $t4     # 0xC0
    nor   $t6, $zero, $zero # 0xFFFFFFFF
    break
  )");
  EXPECT_FALSE(soc.cpu().faulted());
  EXPECT_EQ(soc.cpu().reg(9), 42u);
  EXPECT_EQ(soc.cpu().reg(10), 21u);
  EXPECT_EQ(soc.cpu().reg(12), 0x30u);
  EXPECT_EQ(soc.cpu().reg(13), 0xC0u);
  EXPECT_EQ(soc.cpu().reg(14), 0xFFFFFFFFu);
}

TEST(CpuTest, SetLessThanSignedAndUnsigned) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    addiu $t0, $zero, -1
    addiu $t1, $zero, 1
    slt   $t2, $t0, $t1   # -1 < 1 -> 1
    sltu  $t3, $t0, $t1   # 0xFFFFFFFF < 1 -> 0
    slti  $t4, $t0, 0     # 1
    sltiu $t5, $t1, 2     # 1
    break
  )");
  EXPECT_EQ(soc.cpu().reg(10), 1u);
  EXPECT_EQ(soc.cpu().reg(11), 0u);
  EXPECT_EQ(soc.cpu().reg(12), 1u);
  EXPECT_EQ(soc.cpu().reg(13), 1u);
}

TEST(CpuTest, ShiftsIncludingArithmetic) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $t0, 0x80000000
    sra  $t1, $t0, 4      # 0xF8000000
    srl  $t2, $t0, 4      # 0x08000000
    addiu $t3, $zero, 3
    sllv $t4, $t3, $t3    # 3 << 3 = 24
    break
  )");
  EXPECT_EQ(soc.cpu().reg(9), 0xF8000000u);
  EXPECT_EQ(soc.cpu().reg(10), 0x08000000u);
  EXPECT_EQ(soc.cpu().reg(12), 24u);
}

TEST(CpuTest, LoopWithBranch) {
  auto soc = makeSoc();
  runProgram(soc, R"(
      addiu $t0, $zero, 10
      addiu $t1, $zero, 0
    loop:
      addu  $t1, $t1, $t0
      addiu $t0, $t0, -1
      bne   $t0, $zero, loop
      break
  )");
  EXPECT_EQ(soc.cpu().reg(9), 55u);  // 10+9+...+1.
}

TEST(CpuTest, RamLoadStoreRoundTrip) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $s0, 0x08000000   # RAM base
    li   $t0, 0xCAFEBABE
    sw   $t0, 0x10($s0)
    lw   $t1, 0x10($s0)
    break
  )");
  EXPECT_EQ(soc.cpu().reg(9), 0xCAFEBABEu);
  EXPECT_EQ(soc.ram().peekWord(memmap::kRamBase + 0x10), 0xCAFEBABEu);
}

TEST(CpuTest, ByteAndHalfAccessesWithSignExtension) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $s0, 0x08000000
    li   $t0, 0x80FF7F01
    sw   $t0, 0($s0)
    lb   $t1, 3($s0)   # 0x80 -> sign-extended
    lbu  $t2, 3($s0)   # 0x80
    lh   $t3, 2($s0)   # 0x80FF -> sign-extended
    lhu  $t4, 2($s0)   # 0x80FF
    lbu  $t5, 0($s0)   # 0x01
    break
  )");
  EXPECT_EQ(soc.cpu().reg(9), 0xFFFFFF80u);
  EXPECT_EQ(soc.cpu().reg(10), 0x80u);
  EXPECT_EQ(soc.cpu().reg(11), 0xFFFF80FFu);
  EXPECT_EQ(soc.cpu().reg(12), 0x80FFu);
  EXPECT_EQ(soc.cpu().reg(13), 0x01u);
}

TEST(CpuTest, SubWordStores) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $s0, 0x08000000
    li   $t0, 0x11223344
    sw   $t0, 0($s0)
    addiu $t1, $zero, 0xAA
    sb   $t1, 1($s0)
    addiu $t2, $zero, 0xBBCC
    sh   $t2, 2($s0)
    lw   $t3, 0($s0)
    break
  )");
  EXPECT_EQ(soc.cpu().reg(11), 0xBBCCAA44u);
}

TEST(CpuTest, FunctionCallWithJalAndJr) {
  auto soc = makeSoc();
  runProgram(soc, R"(
      addiu $a0, $zero, 7
      jal   double
      move  $s0, $v0
      break
    double:
      addu  $v0, $a0, $a0
      jr    $ra
  )");
  EXPECT_EQ(soc.cpu().reg(16), 14u);
}

TEST(CpuTest, JalrLinksToCustomRegister) {
  auto soc = makeSoc();
  runProgram(soc, R"(
      la    $t0, target
      jalr  $s1, $t0
      break
    target:
      addiu $v0, $zero, 99
      jr    $s1
  )");
  EXPECT_EQ(soc.cpu().reg(2), 99u);
}

TEST(CpuTest, RegisterZeroStaysZero) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    addiu $zero, $zero, 55
    move  $t0, $zero
    break
  )");
  EXPECT_EQ(soc.cpu().reg(8), 0u);
}

TEST(CpuTest, InstructionFetchesAreBursts) {
  auto soc = makeSoc();
  runProgram(soc, R"(
      addiu $t0, $zero, 100
    loop:
      addiu $t0, $t0, -1
      bne   $t0, $zero, loop
      break
  )");
  const auto& stats = soc.bus().stats();
  EXPECT_GT(stats.instrTransactions, 0u);
  // The loop body fits one cache line: after the first refill the loop
  // runs from the I-cache, so fetch transactions stay tiny.
  EXPECT_LT(stats.instrTransactions, 6u);
  EXPECT_GT(soc.cpu().icache().stats().hitRate(), 0.9);
}

TEST(CpuTest, DataCacheRefillsAsBursts) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $s0, 0x08000000
    lw   $t0, 0($s0)    # Miss: 4-beat refill.
    lw   $t1, 4($s0)    # Hit.
    lw   $t2, 8($s0)    # Hit.
    break
  )");
  EXPECT_EQ(soc.cpu().dcache().stats().misses, 1u);
  EXPECT_EQ(soc.cpu().dcache().stats().hits, 2u);
}

TEST(CpuTest, UncachedSfrAccessBypassesCache) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $s0, 0x10000300   # TRNG base
    lw   $t0, 0($s0)       # DATA
    lw   $t1, 0($s0)       # DATA again: fresh value, no caching
    lw   $t2, 4($s0)       # STATUS = 1
    break
  )");
  EXPECT_EQ(soc.cpu().reg(10), 1u);
  EXPECT_EQ(soc.trng().wordsDrawn(), 2u);
  EXPECT_NE(soc.cpu().reg(8), soc.cpu().reg(9));
}

TEST(CpuTest, StoreBufferOverlapsExecution) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $s0, 0x0A000000   # EEPROM: slow writes
    addiu $t0, $zero, 1
    sw   $t0, 0($s0)
    addiu $t1, $zero, 2    # Executes while the write drains
    addiu $t2, $zero, 3
    break
  )");
  EXPECT_EQ(soc.cpu().reg(9), 2u);
  EXPECT_EQ(soc.eeprom().peekWord(memmap::kEepromBase), 1u);
}

TEST(CpuTest, ReadAfterWriteToSlowMemoryIsNotReordered) {
  // EEPROM writes take many cycles; the EC interface would happily
  // complete a later read first (the spec's read/write reordering).
  // The core must stall the load until the overlapping store drained.
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $s0, 0x0A000000   # EEPROM: writeWait 3 + dynamic stretch
    li   $t0, 0xCAFED00D
    sw   $t0, 0x40($s0)
    lw   $t1, 0x40($s0)    # Must observe the store.
    break
  )");
  EXPECT_EQ(soc.cpu().reg(9), 0xCAFED00Du);
  EXPECT_GT(soc.cpu().stats().storeStallCycles, 0u);
}

TEST(CpuTest, IndependentLoadMayOvertakeSlowStore) {
  // A load from a *different* address is allowed to bypass the slow
  // store — the performance point of the separate read/write paths.
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $s0, 0x0A000000
    li   $s1, 0x08000000
    li   $t0, 0x11112222
    sw   $t0, 0($s1)       # Prime RAM.
    lw   $t2, 0($s1)       # Drain (same address: stalls until done).
    li   $t0, 0x33334444
    sw   $t0, 0x40($s0)    # Slow EEPROM store...
    lw   $t1, 0($s1)       # ...bypassed by this RAM load.
    break
  )");
  EXPECT_EQ(soc.cpu().reg(9), 0x11112222u);
  EXPECT_EQ(soc.eeprom().peekWord(0x0A000040), 0x33334444u);
}

TEST(CpuTest, WriteToRomFaults) {
  auto soc = makeSoc();
  soc.loadProgram(assemble(R"(
    addiu $t0, $zero, 1
    sw    $t0, 0x100($zero)  # ROM is not writable
    nop
    nop
    break
  )",
                           memmap::kRomBase));
  soc.run(100000);
  EXPECT_TRUE(soc.cpu().faulted());
}

TEST(CpuTest, UnmappedLoadFaults) {
  auto soc = makeSoc();
  soc.loadProgram(assemble(R"(
    li  $s0, 0x20000000
    lw  $t0, 0($s0)
    break
  )",
                           memmap::kRomBase));
  soc.run(100000);
  EXPECT_TRUE(soc.cpu().faulted());
}

TEST(CpuTest, InvalidOpcodeFaults) {
  auto soc = makeSoc();
  soc.loadProgram(assemble(".word 0xFC000000\n", memmap::kRomBase));
  soc.run(100000);
  EXPECT_TRUE(soc.cpu().faulted());
}

TEST(CpuTest, CpiReflectsCacheLocality) {
  auto soc = makeSoc();
  runProgram(soc, R"(
      addiu $t0, $zero, 200
    loop:
      addiu $t0, $t0, -1
      bne   $t0, $zero, loop
      break
  )");
  // Tight cached loop: CPI close to 1.
  EXPECT_LT(soc.cpu().stats().cpi(), 1.3);
  EXPECT_GT(soc.cpu().stats().instructions, 400u);
}

TEST(CpuTest, HaltDrainsStoreBuffer) {
  auto soc = makeSoc();
  runProgram(soc, R"(
    li   $s0, 0x0A000000
    addiu $t0, $zero, 77
    sw   $t0, 0x20($s0)
    break
  )");
  // halted() implies the EEPROM write completed.
  EXPECT_EQ(soc.eeprom().peekWord(memmap::kEepromBase + 0x20), 77u);
}

} // namespace
} // namespace sct::soc
