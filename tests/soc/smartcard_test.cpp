// Full-SoC integration tests: firmware running on the complete Figure-1
// platform, over both the layer-1 bus and the layer-0 reference bus.
#include "soc/smartcard.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "bus/tl1_bus.h"
#include "power/characterizer.h"
#include "power/tl1_power_model.h"
#include "ref/gl_bus.h"
#include "soc/assembler.h"

namespace sct::soc {
namespace {

using Tl1Soc = SmartCardSoC<bus::Tl1Bus>;
using GlSoc = SmartCardSoC<ref::GlBus>;

// Firmware: print "OK" over the UART, honouring the TX-ready handshake.
constexpr const char* kUartProgram = R"(
    li   $s0, 0x10000200   # UART base
    addiu $t0, $zero, 0x4F # 'O'
    jal  putc
    addiu $t0, $zero, 0x4B # 'K'
    jal  putc
    break
  putc:
    lw   $t1, 4($s0)       # STATUS
    andi $t1, $t1, 1
    beq  $t1, $zero, putc
    sw   $t0, 0($s0)
    jr   $ra
)";

// Firmware: encrypt one block on the coprocessor, store result in RAM.
constexpr const char* kCryptoProgram = R"(
    li   $s0, 0x10000400   # Crypto base
    li   $t0, 0x01234567
    sw   $t0, 0($s0)       # KEY0
    li   $t0, 0x89ABCDEF
    sw   $t0, 4($s0)       # KEY1
    li   $t0, 0xFEDCBA98
    sw   $t0, 8($s0)       # KEY2
    li   $t0, 0x76543210
    sw   $t0, 12($s0)      # KEY3
    li   $t0, 0xDEADBEEF
    sw   $t0, 0x10($s0)    # DATA0
    li   $t0, 0x00C0FFEE
    sw   $t0, 0x14($s0)    # DATA1
    addiu $t0, $zero, 1
    sw   $t0, 0x18($s0)    # CTRL = encrypt
  wait:
    lw   $t1, 0x1C($s0)    # STATUS
    bne  $t1, $zero, wait
    lw   $t2, 0x10($s0)
    lw   $t3, 0x14($s0)
    li   $s1, 0x08000000
    sw   $t2, 0($s1)
    sw   $t3, 4($s1)
    break
)";

TEST(SmartCardTest, BootsAndPrintsOverUart) {
  Tl1Soc soc{SocConfig{}};
  soc.loadProgram(assemble(kUartProgram, memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  EXPECT_FALSE(soc.cpu().faulted());
  EXPECT_EQ(soc.uart().transmitted(), "OK");
}

TEST(SmartCardTest, CryptoFirmwareMatchesReferenceCipher) {
  Tl1Soc soc{SocConfig{}};
  soc.loadProgram(assemble(kCryptoProgram, memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  ASSERT_FALSE(soc.cpu().faulted());
  const std::uint32_t key[4] = {0x01234567, 0x89ABCDEF, 0xFEDCBA98,
                                0x76543210};
  std::uint32_t d0 = 0xDEADBEEF;
  std::uint32_t d1 = 0x00C0FFEE;
  CryptoCoprocessor::encryptBlock(key, d0, d1);
  EXPECT_EQ(soc.ram().peekWord(memmap::kRamBase), d0);
  EXPECT_EQ(soc.ram().peekWord(memmap::kRamBase + 4), d1);
  EXPECT_EQ(soc.crypto().operations(), 1u);
}

TEST(SmartCardTest, TimerFirmwareObservesMatch) {
  Tl1Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    li   $s0, 0x10000100   # Timer base
    addiu $t0, $zero, 20
    sw   $t0, 4($s0)       # COMPARE = 20
    addiu $t0, $zero, 1
    sw   $t0, 8($s0)       # CTRL.enable
  poll:
    lw   $t1, 12($s0)      # STATUS
    beq  $t1, $zero, poll
    lw   $s1, 0($s0)       # COUNT at match time
    break
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  EXPECT_FALSE(soc.cpu().faulted());
  EXPECT_GE(soc.cpu().reg(17), 20u);
}

TEST(SmartCardTest, SameFirmwareSameResultOnLayer0Bus) {
  Tl1Soc tl1{SocConfig{}};
  GlSoc gl{SocConfig{}, sct::testbench::energyModel()};
  const auto prog = assemble(kCryptoProgram, memmap::kRomBase);
  tl1.loadProgram(prog);
  gl.loadProgram(prog);
  ASSERT_TRUE(tl1.run());
  ASSERT_TRUE(gl.run());
  // Bit-identical results and cycle-identical execution.
  EXPECT_EQ(tl1.ram().peekWord(memmap::kRamBase),
            gl.ram().peekWord(memmap::kRamBase));
  EXPECT_EQ(tl1.cpu().stats().cycles, gl.cpu().stats().cycles);
  EXPECT_EQ(tl1.cpu().stats().instructions, gl.cpu().stats().instructions);
  EXPECT_GT(gl.bus().energy().total_fJ, 0.0);
}

TEST(SmartCardTest, EnergyEstimationOnRunningFirmware) {
  // End-to-end: characterize on the layer-0 SoC, estimate on the
  // layer-1 SoC running the same firmware.
  GlSoc gl{SocConfig{}, sct::testbench::energyModel()};
  power::Characterizer ch(sct::testbench::energyModel());
  gl.bus().addFrameListener(ch);
  const auto prog = assemble(kCryptoProgram, memmap::kRomBase);
  gl.loadProgram(prog);
  ASSERT_TRUE(gl.run());

  Tl1Soc tl1{SocConfig{}};
  power::Tl1PowerModel pm(ch.buildTable());
  tl1.bus().addObserver(pm);
  tl1.loadProgram(prog);
  ASSERT_TRUE(tl1.run());

  const double ref = gl.bus().energy().total_fJ;
  const double est = pm.totalEnergy_fJ();
  EXPECT_GT(est, 0.0);
  // Same workload the coefficients came from: estimate within ~20 %.
  EXPECT_GT(est, 0.8 * ref);
  EXPECT_LT(est, 1.2 * ref);
}

TEST(SmartCardTest, EepromWritesAreSlowerThanRam) {
  auto timeOf = [](const char* target) {
    Tl1Soc soc{SocConfig{}};
    std::string src = R"(
      li   $s0, )" + std::string(target) + R"(
      addiu $t0, $zero, 32
    loop:
      sw   $t0, 0($s0)
    drain:
      addiu $t0, $t0, -1
      bne  $t0, $zero, loop
      break
    )";
    soc.loadProgram(assemble(src, memmap::kRomBase));
    soc.run();
    return soc.cpu().stats().cycles;
  };
  EXPECT_GT(timeOf("0x0A000000"), timeOf("0x08000000"));
}

TEST(SmartCardTest, ProgramLoadsIntoFlashToo) {
  Tl1Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    addiu $v0, $zero, 7
    break
  )",
                           memmap::kFlashBase));
  ASSERT_TRUE(soc.run());
  EXPECT_EQ(soc.cpu().reg(2), 7u);
}

TEST(SmartCardTest, TwoTimersRunIndependently) {
  Tl1Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    li   $s0, 0x10000100   # timer 0
    li   $s1, 0x10000500   # timer 1
    addiu $t0, $zero, 1
    sw   $t0, 8($s0)       # enable T0, prescaler 0
    addiu $t0, $zero, 0x101
    sw   $t0, 8($s1)       # enable T1, prescaler 1 (half rate)
    addiu $t1, $zero, 64
  wait:
    addiu $t1, $t1, -1
    bne  $t1, $zero, wait
    lw   $s2, 0($s0)       # COUNT0
    lw   $s3, 0($s1)       # COUNT1
    break
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  const auto c0 = soc.cpu().reg(18);
  const auto c1 = soc.cpu().reg(19);
  EXPECT_GT(c0, 0u);
  EXPECT_GT(c1, 0u);
  // Timer 1 runs at half rate; the enable skew and the gap between the
  // two uncached COUNT reads allow a few ticks of slack.
  EXPECT_NEAR(static_cast<double>(c0) / 2.0, static_cast<double>(c1), 5.0);
}

TEST(SmartCardTest, LoadOutsideAnyMemoryThrows) {
  Tl1Soc soc{SocConfig{}};
  const std::uint8_t data[4] = {};
  EXPECT_THROW(soc.loadData(0x30000000, data, 4), std::out_of_range);
}

} // namespace
} // namespace sct::soc
