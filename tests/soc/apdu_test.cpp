// End-to-end APDU session tests: the card applet serving VERIFY /
// GET CHALLENGE / INTERNAL AUTHENTICATE over the UART.
#include "soc/apdu.h"

#include <gtest/gtest.h>

#include <cstring>

#include "bus/tl1_bus.h"
#include "soc/peripherals.h"

namespace sct::soc::apdu {
namespace {

using Soc = SmartCardSoC<bus::Tl1Bus>;

constexpr std::uint8_t kPin[4] = {0x12, 0x34, 0x56, 0x78};

struct ApduFixture : ::testing::Test {
  Soc card{SocConfig{}};
  Session<Soc> session{card};

  ApduFixture() { card.loadProgram(cardApplet(kPin)); }

  Response verify(const std::vector<std::uint8_t>& pin) {
    Command cmd;
    cmd.ins = kInsVerify;
    cmd.data = pin;
    Response r;
    EXPECT_TRUE(session.exchange(cmd, 0, r));
    return r;
  }
};

TEST_F(ApduFixture, VerifyCorrectPin) {
  const Response r = verify({0x12, 0x34, 0x56, 0x78});
  EXPECT_EQ(r.sw, kSwOk);
}

TEST_F(ApduFixture, VerifyWrongPinRejected) {
  const Response r = verify({0x12, 0x34, 0x56, 0x79});
  EXPECT_EQ(r.sw, kSwPinWrong);
}

TEST_F(ApduFixture, GetChallengeReturnsFourBytes) {
  Command cmd;
  cmd.ins = kInsGetChallenge;
  Response a;
  ASSERT_TRUE(session.exchange(cmd, 4, a));
  EXPECT_EQ(a.sw, kSwOk);
  ASSERT_EQ(a.data.size(), 4u);
  Response b;
  ASSERT_TRUE(session.exchange(cmd, 4, b));
  EXPECT_NE(a.data, b.data);  // Fresh entropy per challenge.
}

TEST_F(ApduFixture, InternalAuthRequiresVerification) {
  Command cmd;
  cmd.ins = kInsInternalAuth;
  cmd.data = {1, 2, 3, 4, 5, 6, 7, 8};
  Response r;
  ASSERT_TRUE(session.exchange(cmd, 0, r));
  EXPECT_EQ(r.sw, kSwNotVerified);
}

TEST_F(ApduFixture, InternalAuthProducesTheExpectedCryptogram) {
  ASSERT_EQ(verify({0x12, 0x34, 0x56, 0x78}).sw, kSwOk);

  Command cmd;
  cmd.ins = kInsInternalAuth;
  cmd.data = {0xA0, 0xA1, 0xA2, 0xA3, 0xB0, 0xB1, 0xB2, 0xB3};
  Response r;
  ASSERT_TRUE(session.exchange(cmd, 8, r));
  EXPECT_EQ(r.sw, kSwOk);
  ASSERT_EQ(r.data.size(), 8u);

  // Host-side verification of the cryptogram.
  std::uint32_t d0 = 0;
  std::uint32_t d1 = 0;
  std::memcpy(&d0, cmd.data.data(), 4);
  std::memcpy(&d1, cmd.data.data() + 4, 4);
  CryptoCoprocessor::encryptBlock(kAuthKey, d0, d1);
  std::uint32_t r0 = 0;
  std::uint32_t r1 = 0;
  std::memcpy(&r0, r.data.data(), 4);
  std::memcpy(&r1, r.data.data() + 4, 4);
  EXPECT_EQ(r0, d0);
  EXPECT_EQ(r1, d1);
}

TEST_F(ApduFixture, UnknownInstructionRejected) {
  Command cmd;
  cmd.ins = 0x42;
  Response r;
  ASSERT_TRUE(session.exchange(cmd, 0, r));
  EXPECT_EQ(r.sw, kSwInsNotSupported);
}

TEST_F(ApduFixture, WrongPinBlocksAuthentication) {
  ASSERT_EQ(verify({9, 9, 9, 9}).sw, kSwPinWrong);
  Command cmd;
  cmd.ins = kInsInternalAuth;
  cmd.data = {1, 2, 3, 4, 5, 6, 7, 8};
  Response r;
  ASSERT_TRUE(session.exchange(cmd, 0, r));
  EXPECT_EQ(r.sw, kSwNotVerified);
}

TEST_F(ApduFixture, EndSessionHaltsTheCard) {
  Command bye;
  bye.cla = kClaEndSession;
  Response r;
  ASSERT_TRUE(session.exchange(bye, 0, r));
  EXPECT_EQ(r.sw, kSwOk);
  card.clock().runCycles(64);
  EXPECT_TRUE(card.cpu().halted());
  EXPECT_FALSE(card.cpu().faulted());
}

TEST_F(ApduFixture, FullSessionScript) {
  EXPECT_EQ(verify({0x12, 0x34, 0x56, 0x78}).sw, kSwOk);
  Command chal;
  chal.ins = kInsGetChallenge;
  Response c;
  ASSERT_TRUE(session.exchange(chal, 4, c));
  EXPECT_EQ(c.sw, kSwOk);
  Command auth;
  auth.ins = kInsInternalAuth;
  auth.data = {c.data[0], c.data[1], c.data[2], c.data[3], 0, 0, 0, 0};
  Response a;
  ASSERT_TRUE(session.exchange(auth, 8, a));
  EXPECT_EQ(a.sw, kSwOk);
  Command bye;
  bye.cla = kClaEndSession;
  Response r;
  ASSERT_TRUE(session.exchange(bye, 0, r));
  EXPECT_EQ(r.sw, kSwOk);
}

} // namespace
} // namespace sct::soc::apdu
