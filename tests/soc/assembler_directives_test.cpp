// Tests for the extended assembler features: data directives and the
// extra pseudo-instructions.
#include <gtest/gtest.h>

#include "bus/tl1_bus.h"
#include "soc/assembler.h"
#include "soc/isa.h"
#include "soc/smartcard.h"

namespace sct::soc {
namespace {

TEST(AsmDirectivesTest, ByteDirectivePacksLittleEndian) {
  const auto p = assemble(R"(
    data: .byte 0x11, 0x22, 0x33, 0x44, 0x55
  )");
  ASSERT_EQ(p.words.size(), 2u);
  EXPECT_EQ(p.words[0], 0x44332211u);
  EXPECT_EQ(p.words[1], 0x00000055u);
}

TEST(AsmDirectivesTest, ByteRangeChecked) {
  EXPECT_THROW(assemble(".byte 300\n"), AsmError);
  EXPECT_NO_THROW(assemble(".byte -128, 255\n"));
}

TEST(AsmDirectivesTest, AsciiAndAsciz) {
  const auto p = assemble(R"(
    msg: .asciz "Hi!"
  )");
  ASSERT_EQ(p.words.size(), 1u);
  EXPECT_EQ(p.words[0], 0x00216948u);  // 'H' 'i' '!' '\0'.
}

TEST(AsmDirectivesTest, AsciiWithCommaAndEscapes) {
  const auto p = assemble(R"(
    .ascii "a,b\n"
  )");
  ASSERT_EQ(p.words.size(), 1u);
  EXPECT_EQ(p.words[0],
            (0x0Au << 24) | ('b' << 16) | (',' << 8) | 'a');
}

TEST(AsmDirectivesTest, AsciiRequiresQuotes) {
  EXPECT_THROW(assemble(".ascii hello\n"), AsmError);
}

TEST(AsmDirectivesTest, LabelsAfterStringsStayAligned) {
  const auto p = assemble(R"(
    .ascii "abcde"     # 5 bytes -> 2 words
    after: break
  )");
  EXPECT_EQ(p.label("after"), 8u);
  EXPECT_EQ(decode(p.words[2]).op, Op::Break);
}

TEST(AsmDirectivesTest, BeqzBnezPseudo) {
  const auto p = assemble(R"(
      beqz $t0, out
      bnez $t1, out
    out: break
  )");
  // Offsets relative to pc+4: beqz at 0 -> (8-4)/4 = 1, bnez at 4 -> 0.
  EXPECT_EQ(p.words[0], encodeI(0x04, 8, 0, 1));
  EXPECT_EQ(p.words[1], encodeI(0x05, 9, 0, 0));
}

TEST(AsmDirectivesTest, NegPseudo) {
  const auto p = assemble("neg $t0, $t1\n");
  EXPECT_EQ(p.words[0], encodeR(0, 0, 9, 8, 0, 0x23));
}

TEST(AsmDirectivesTest, StringDataReadableByFirmware) {
  // Firmware prints an .asciz string from ROM over the UART.
  SmartCardSoC<bus::Tl1Bus> soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
      li   $s0, 0x10000200
      la   $s1, msg
    next:
      lbu  $t0, 0($s1)
      beqz $t0, done
    wait:
      lw   $t1, 4($s0)
      andi $t1, $t1, 1
      beqz $t1, wait
      sw   $t0, 0($s0)
      addiu $s1, $s1, 1
      b    next
    done:
      break
    msg: .asciz "card ok"
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  EXPECT_FALSE(soc.cpu().faulted());
  EXPECT_EQ(soc.uart().transmitted(), "card ok");
}

} // namespace
} // namespace sct::soc
