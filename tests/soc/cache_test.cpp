#include "soc/cache.h"

#include <gtest/gtest.h>

namespace sct::soc {
namespace {

TEST(CacheTest, RejectsBadGeometry) {
  EXPECT_THROW(Cache(1000, 16), std::invalid_argument);
  EXPECT_THROW(Cache(1024, 12), std::invalid_argument);
  EXPECT_THROW(Cache(8, 16), std::invalid_argument);
}

TEST(CacheTest, MissThenHitAfterFill) {
  Cache c(256, 16);
  bus::Word out = 0;
  EXPECT_FALSE(c.lookupWord(0x100, out));
  const bus::Word line[4] = {10, 11, 12, 13};
  c.fillLine(0x100, line);
  EXPECT_TRUE(c.lookupWord(0x100, out));
  EXPECT_EQ(out, 10u);
  EXPECT_TRUE(c.lookupWord(0x108, out));
  EXPECT_EQ(out, 12u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheTest, ConflictEviction) {
  Cache c(64, 16);  // 4 lines: 0x100 and 0x140 conflict.
  const bus::Word a[4] = {1, 1, 1, 1};
  const bus::Word b[4] = {2, 2, 2, 2};
  c.fillLine(0x100, a);
  EXPECT_TRUE(c.contains(0x100));
  c.fillLine(0x140, b);
  EXPECT_FALSE(c.contains(0x100));
  bus::Word out = 0;
  EXPECT_TRUE(c.lookupWord(0x140, out));
  EXPECT_EQ(out, 2u);
}

TEST(CacheTest, LineBaseAlignment) {
  Cache c(256, 16);
  EXPECT_EQ(c.lineBase(0x123), 0x120u);
  EXPECT_EQ(c.lineBase(0x120), 0x120u);
}

TEST(CacheTest, WriteThroughUpdateOnlyIfPresent) {
  Cache c(256, 16);
  const bus::Word line[4] = {0xAAAAAAAA, 0, 0, 0};
  c.fillLine(0x40, line);
  c.updateIfPresent(0x40, 0x000000BB, 0x1);
  bus::Word out = 0;
  c.lookupWord(0x40, out);
  EXPECT_EQ(out, 0xAAAAAABBu);
  // Absent line: no allocation.
  c.updateIfPresent(0x200, 0xFF, 0xF);
  EXPECT_FALSE(c.contains(0x200));
}

TEST(CacheTest, InvalidateSingleAndAll) {
  Cache c(256, 16);
  const bus::Word line[4] = {5, 5, 5, 5};
  c.fillLine(0x10, line);
  c.fillLine(0x20, line);
  c.invalidate(0x10);
  EXPECT_FALSE(c.contains(0x10));
  EXPECT_TRUE(c.contains(0x20));
  c.invalidateAll();
  EXPECT_FALSE(c.contains(0x20));
}

TEST(CacheTest, HitRateComputation) {
  Cache c(256, 16);
  EXPECT_DOUBLE_EQ(c.stats().hitRate(), 0.0);
  const bus::Word line[4] = {};
  c.fillLine(0x0, line);
  bus::Word out;
  c.lookupWord(0x0, out);
  c.lookupWord(0x0, out);
  c.lookupWord(0x80, out);  // Miss.
  EXPECT_NEAR(c.stats().hitRate(), 2.0 / 3.0, 1e-12);
}

} // namespace
} // namespace sct::soc
