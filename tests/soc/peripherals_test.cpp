#include "soc/peripherals.h"

#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/kernel.h"

namespace sct::soc {
namespace {

bus::SlaveControl window(bus::Address base) {
  bus::SlaveControl c;
  c.base = base;
  c.size = 0x100;
  return c;
}

struct PeripheralFixture : ::testing::Test {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
};

// --- Timer -----------------------------------------------------------------

TEST_F(PeripheralFixture, TimerCountsWhenEnabled) {
  Timer t(clk, "timer", window(0x1000));
  clk.runCycles(5);
  EXPECT_EQ(t.count(), 0u);  // Disabled.
  bus::Word out = 0;
  t.writeBeat(0x1008, bus::AccessSize::Word, 0xF, 1);  // CTRL.enable.
  clk.runCycles(5);
  t.readBeat(0x1000, bus::AccessSize::Word, out);
  EXPECT_EQ(out, 5u);
}

TEST_F(PeripheralFixture, TimerPrescalerDividesRate) {
  Timer t(clk, "timer", window(0x1000));
  // Enable with prescaler 3: one tick per 4 cycles.
  t.writeBeat(0x1008, bus::AccessSize::Word, 0xF, 1 | (3 << 8));
  clk.runCycles(8);
  EXPECT_EQ(t.count(), 2u);
}

TEST_F(PeripheralFixture, TimerCompareRaisesInterrupt) {
  InterruptController irqc("irqc", window(0x2000));
  Timer t(clk, "timer", window(0x1000), &irqc, 0);
  irqc.writeBeat(0x2004, bus::AccessSize::Word, 0xF, 0x1);  // Enable line 0.
  t.writeBeat(0x1004, bus::AccessSize::Word, 0xF, 3);       // COMPARE = 3.
  t.writeBeat(0x1008, bus::AccessSize::Word, 0xF, 1);       // Enable.
  clk.runCycles(3);
  EXPECT_TRUE(t.matched());
  EXPECT_EQ(irqc.pending(), 0x1u);
  // Clear via STATUS write and W1C of the controller.
  t.writeBeat(0x100C, bus::AccessSize::Word, 0xF, 1);
  irqc.writeBeat(0x2000, bus::AccessSize::Word, 0xF, 0x1);
  EXPECT_FALSE(t.matched());
  EXPECT_EQ(irqc.pending(), 0u);
}

TEST_F(PeripheralFixture, TimerCountIsReadOnly) {
  Timer t(clk, "timer", window(0x1000));
  EXPECT_EQ(t.writeBeat(0x1000, bus::AccessSize::Word, 0xF, 99),
            bus::BusStatus::Error);
}

// --- InterruptController ----------------------------------------------------

TEST_F(PeripheralFixture, InterruptMaskGatesPending) {
  InterruptController irqc("irqc", window(0x2000));
  irqc.raise(3);
  EXPECT_EQ(irqc.pending(), 0u);  // Masked by default.
  irqc.writeBeat(0x2004, bus::AccessSize::Word, 0xF, 0x8);
  EXPECT_EQ(irqc.pending(), 0x8u);
  bus::Word out = 0;
  irqc.readBeat(0x2000, bus::AccessSize::Word, out);
  EXPECT_EQ(out, 0x8u);
}

// --- UART --------------------------------------------------------------------

TEST_F(PeripheralFixture, UartTransmitsAndGoesBusy) {
  Uart u(clk, "uart", window(0x3000), /*cyclesPerByte=*/4);
  bus::Word status = 0;
  u.readBeat(0x3004, bus::AccessSize::Word, status);
  EXPECT_EQ(status & 1u, 1u);  // TX ready.
  u.writeBeat(0x3000, bus::AccessSize::Word, 0xF, 'H');
  u.readBeat(0x3004, bus::AccessSize::Word, status);
  EXPECT_EQ(status & 1u, 0u);  // Busy while shifting.
  clk.runCycles(4);
  u.readBeat(0x3004, bus::AccessSize::Word, status);
  EXPECT_EQ(status & 1u, 1u);
  u.writeBeat(0x3000, bus::AccessSize::Word, 0xF, 'i');
  clk.runCycles(4);
  EXPECT_EQ(u.transmitted(), "Hi");
}

TEST_F(PeripheralFixture, UartReceivePath) {
  Uart u(clk, "uart", window(0x3000));
  bus::Word status = 0;
  u.readBeat(0x3004, bus::AccessSize::Word, status);
  EXPECT_EQ(status & 2u, 0u);
  u.injectReceive('X');
  u.readBeat(0x3004, bus::AccessSize::Word, status);
  EXPECT_EQ(status & 2u, 2u);
  bus::Word data = 0;
  u.readBeat(0x3000, bus::AccessSize::Word, data);
  EXPECT_EQ(data, static_cast<bus::Word>('X'));
  u.readBeat(0x3004, bus::AccessSize::Word, status);
  EXPECT_EQ(status & 2u, 0u);
}

// --- TRNG ---------------------------------------------------------------------

TEST_F(PeripheralFixture, TrngProducesVaryingWords) {
  Trng t("trng", window(0x4000));
  bus::Word a = 0;
  bus::Word b = 0;
  t.readBeat(0x4000, bus::AccessSize::Word, a);
  t.readBeat(0x4000, bus::AccessSize::Word, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.wordsDrawn(), 2u);
  bus::Word status = 0;
  t.readBeat(0x4004, bus::AccessSize::Word, status);
  EXPECT_EQ(status, 1u);
}

TEST_F(PeripheralFixture, TrngIsDeterministicPerSeed) {
  Trng a("a", window(0x4000), 7);
  Trng b("b", window(0x4000), 7);
  bus::Word va = 0;
  bus::Word vb = 0;
  a.readBeat(0x4000, bus::AccessSize::Word, va);
  b.readBeat(0x4000, bus::AccessSize::Word, vb);
  EXPECT_EQ(va, vb);
}

// --- Crypto coprocessor ---------------------------------------------------------

TEST_F(PeripheralFixture, CryptoEncryptDecryptRoundTrip) {
  const std::uint32_t key[4] = {0x01234567, 0x89ABCDEF, 0xFEDCBA98,
                                0x76543210};
  std::uint32_t d0 = 0xDEADBEEF;
  std::uint32_t d1 = 0x00C0FFEE;
  CryptoCoprocessor::encryptBlock(key, d0, d1);
  EXPECT_NE(d0, 0xDEADBEEFu);
  CryptoCoprocessor::decryptBlock(key, d0, d1);
  EXPECT_EQ(d0, 0xDEADBEEFu);
  EXPECT_EQ(d1, 0x00C0FFEEu);
}

TEST_F(PeripheralFixture, CryptoCipherDependsOnKeyAndData) {
  const std::uint32_t k1[4] = {1, 2, 3, 4};
  const std::uint32_t k2[4] = {1, 2, 3, 5};
  std::uint32_t a0 = 42;
  std::uint32_t a1 = 0;
  std::uint32_t b0 = 42;
  std::uint32_t b1 = 0;
  CryptoCoprocessor::encryptBlock(k1, a0, a1);
  CryptoCoprocessor::encryptBlock(k2, b0, b1);
  EXPECT_TRUE(a0 != b0 || a1 != b1);
}

TEST_F(PeripheralFixture, CryptoRegistersDriveTheEngine) {
  CryptoCoprocessor c(clk, "crypto", window(0x5000), /*cyclesPerRound=*/1);
  const std::uint32_t key[4] = {0xA, 0xB, 0xC, 0xD};
  for (unsigned i = 0; i < 4; ++i) {
    c.writeBeat(0x5000 + 4 * i, bus::AccessSize::Word, 0xF, key[i]);
  }
  c.writeBeat(0x5010, bus::AccessSize::Word, 0xF, 0x1111);
  c.writeBeat(0x5014, bus::AccessSize::Word, 0xF, 0x2222);
  c.writeBeat(0x5018, bus::AccessSize::Word, 0xF, 1);  // Encrypt.
  EXPECT_TRUE(c.busy());
  bus::Word status = 1;
  clk.runCycles(16);  // 16 rounds x 1 cycle.
  c.readBeat(0x501C, bus::AccessSize::Word, status);
  EXPECT_EQ(status, 0u);
  std::uint32_t e0 = 0x1111;
  std::uint32_t e1 = 0x2222;
  CryptoCoprocessor::encryptBlock(key, e0, e1);
  bus::Word r0 = 0;
  bus::Word r1 = 0;
  c.readBeat(0x5010, bus::AccessSize::Word, r0);
  c.readBeat(0x5014, bus::AccessSize::Word, r1);
  EXPECT_EQ(r0, e0);
  EXPECT_EQ(r1, e1);
  EXPECT_EQ(c.operations(), 1u);
}

TEST_F(PeripheralFixture, CryptoRaisesInterruptWhenDone) {
  InterruptController irqc("irqc", window(0x2000));
  CryptoCoprocessor c(clk, "crypto", window(0x5000), 1, &irqc, 1);
  irqc.writeBeat(0x2004, bus::AccessSize::Word, 0xF, 0x2);
  c.writeBeat(0x5018, bus::AccessSize::Word, 0xF, 1);
  clk.runCycles(16);
  EXPECT_EQ(irqc.pending(), 0x2u);
}

TEST_F(PeripheralFixture, CryptoDataReadWhileBusyStalls) {
  CryptoCoprocessor c(clk, "crypto", window(0x5000), 1);
  c.writeBeat(0x5018, bus::AccessSize::Word, 0xF, 1);
  bus::Word out = 0;
  EXPECT_EQ(c.readBeat(0x5010, bus::AccessSize::Word, out),
            bus::BusStatus::Wait);
}

} // namespace
} // namespace sct::soc
