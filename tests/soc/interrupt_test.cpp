// Interrupt system tests: timer and crypto interrupts vector the core,
// handlers acknowledge and return with ERET.
#include <gtest/gtest.h>

#include "bus/tl1_bus.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"

namespace sct::soc {
namespace {

using Soc = SmartCardSoC<bus::Tl1Bus>;

// Main program: enable the timer interrupt, spin incrementing a loop
// counter until the ISR has fired 3 times. ISR at the vector: ack the
// timer + controller, bump the RAM counter at 0x08000000, eret.
constexpr const char* kTimerIrqProgram = R"(
    li   $s0, 0x10000000   # IRQ controller
    addiu $t0, $zero, 1
    sw   $t0, 4($s0)       # ENABLE line 0 (timer)
    li   $s1, 0x10000100   # timer
    addiu $t0, $zero, 8
    sw   $t0, 4($s1)       # COMPARE = 8
    addiu $t0, $zero, 1
    sw   $t0, 8($s1)       # CTRL.enable
    li   $s2, 0x08000000   # counter in RAM
  spin:
    lw   $t1, 0($s2)
    addiu $t2, $zero, 3
    bne  $t1, $t2, spin
    break

    .org 0x200             # interrupt vector
  isr:
    lw   $t3, 12($s1)      # read timer STATUS
    sw   $zero, 12($s1)    # clear timer match flag
    addiu $t3, $zero, 1
    sw   $t3, 0($s0)       # W1C the controller line
    lw   $t3, 0($s2)
    addiu $t3, $t3, 1
    sw   $t3, 0($s2)       # counter++
    addiu $t4, $zero, 0
    sw   $t4, 4($s1)       # COMPARE = 0... re-arm below
    lw   $t4, 0($s1)       # COUNT
    addiu $t4, $t4, 8
    andi $t4, $t4, 0xFFFF
    sw   $t4, 4($s1)       # next COMPARE = COUNT + 8
    eret
)";

TEST(InterruptTest, TimerInterruptVectorsAndReturns) {
  Soc soc{SocConfig{}};
  soc.loadProgram(assemble(kTimerIrqProgram, memmap::kRomBase));
  ASSERT_TRUE(soc.run(1'000'000));
  EXPECT_FALSE(soc.cpu().faulted());
  // The ISR re-arms itself, so one extra interrupt may land between
  // the counter reaching 3 and the main loop noticing it.
  EXPECT_GE(soc.ram().peekWord(memmap::kRamBase), 3u);
  EXPECT_LE(soc.ram().peekWord(memmap::kRamBase), 4u);
  EXPECT_GE(soc.cpu().interruptsTaken(), 3u);
  EXPECT_FALSE(soc.cpu().inInterruptHandler());
}

TEST(InterruptTest, MaskedInterruptDoesNotFire) {
  Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    li   $s1, 0x10000100
    addiu $t0, $zero, 4
    sw   $t0, 4($s1)       # COMPARE = 4
    addiu $t0, $zero, 1
    sw   $t0, 8($s1)       # enable timer, but ENABLE mask stays 0
    addiu $t1, $zero, 64
  wait:
    addiu $t1, $t1, -1
    bne  $t1, $zero, wait
    break
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  EXPECT_EQ(soc.cpu().interruptsTaken(), 0u);
  EXPECT_TRUE(soc.timer().matched());  // The event happened, masked off.
}

TEST(InterruptTest, CryptoCompletionInterrupt) {
  Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    li   $s0, 0x10000000
    addiu $t0, $zero, 2
    sw   $t0, 4($s0)       # ENABLE line 1 (crypto)
    li   $s1, 0x10000400
    addiu $t0, $zero, 1
    sw   $t0, 0x18($s1)    # CTRL = encrypt
    li   $s2, 0x08000000
  spin:
    lw   $t1, 0($s2)
    beq  $t1, $zero, spin
    break

    .org 0x200
  isr:
    addiu $t3, $zero, 2
    sw   $t3, 0($s0)       # ack controller line 1
    addiu $t3, $zero, 1
    sw   $t3, 0($s2)       # flag completion
    eret
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run(1'000'000));
  EXPECT_FALSE(soc.cpu().faulted());
  EXPECT_EQ(soc.cpu().interruptsTaken(), 1u);
  EXPECT_EQ(soc.crypto().operations(), 1u);
}

TEST(InterruptTest, NoNestedDispatchInsideHandler) {
  // The ISR spins long enough for a second timer match; the core must
  // not re-enter the vector until ERET.
  Soc soc{SocConfig{}};
  soc.loadProgram(assemble(R"(
    li   $s0, 0x10000000
    addiu $t0, $zero, 1
    sw   $t0, 4($s0)
    li   $s1, 0x10000100
    addiu $t0, $zero, 4
    sw   $t0, 4($s1)       # COMPARE = 4
    addiu $t0, $zero, 1
    sw   $t0, 8($s1)
    li   $s2, 0x08000000
  spin:
    lw   $t1, 0($s2)
    beq  $t1, $zero, spin
    break

    .org 0x200
  isr:
    addiu $t5, $zero, 40   # Dawdle: > one timer period.
  dawdle:
    addiu $t5, $t5, -1
    bne  $t5, $zero, dawdle
    sw   $zero, 12($s1)    # clear timer flag
    addiu $t3, $zero, 1
    sw   $t3, 0($s0)       # ack line
    sw   $t3, 0($s2)       # flag done (stop main loop)
    addiu $t4, $zero, 0
    sw   $t4, 8($s1)       # disable timer
    eret
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run(1'000'000));
  EXPECT_EQ(soc.cpu().interruptsTaken(), 1u);
}

TEST(InterruptTest, EretOutsideHandlerIsJustAJump) {
  Soc soc{SocConfig{}};
  // epc is 0 after reset: eret jumps to 0 = program start; use a flag
  // to terminate the second pass.
  soc.loadProgram(assemble(R"(
    li   $s2, 0x08000000
    lw   $t0, 0($s2)
    bne  $t0, $zero, done
    addiu $t0, $zero, 1
    sw   $t0, 0($s2)
    eret                   # epc == 0: back to start
  done:
    break
  )",
                           memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  EXPECT_FALSE(soc.cpu().faulted());
}

} // namespace
} // namespace sct::soc
