// The trace-corpus format contract: lossless roundtrip, a golden file
// pinning the byte layout (SCT_REGEN_GOLDEN=1 regenerates), and the
// full refusal matrix — bad magic, version skew, truncation at every
// prefix, trailing bytes, corrupt sample payloads. The format is the
// interchange between the trace factory and the attack harness; a
// silent decode error would corrupt an analysis without a trace, so
// every malformed input must land in a CorpusError naming the problem.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sca/corpus.h"
#include "sim/rng.h"

namespace sct {
namespace {

const std::string kGoldenPath =
    std::string(SCT_TEST_DATA_DIR) + "/sca/golden_tiny.sctcorp";

bool regenRequested() {
  const char* env = std::getenv("SCT_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void writeFile(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// EXPECT_THROW plus a substring check on the message.
template <typename Fn>
void expectRefusal(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected CorpusError containing '" << needle << "'";
  } catch (const sca::CorpusError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

/// Drain a corpus file completely (forces every decode path).
std::vector<sca::TraceRecord> drain(const std::string& path) {
  sca::TraceCorpusReader reader(path);
  std::vector<sca::TraceRecord> out;
  sca::TraceRecord rec;
  while (reader.next(rec)) out.push_back(rec);
  return out;
}

/// The pinned tiny corpus: three 8-sample traces with every field
/// exercised (negative deltas, zero samples, large jumps), derived
/// from fixed hashes so the bytes never depend on anything but the
/// format code itself.
void writeTinyCorpus(const std::string& path) {
  sca::CorpusHeader hdr;
  hdr.samplesPerTrace = 8;
  hdr.quantDenom = 64;
  sca::TraceCorpusWriter writer(path, hdr);
  for (std::uint64_t i = 0; i < 3; ++i) {
    sca::TraceRecord rec;
    for (int k = 0; k < 4; ++k) {
      rec.meta.key[k] =
          static_cast<std::uint32_t>(sim::hash64(1, i, static_cast<std::uint64_t>(k)));
    }
    rec.meta.plaintext[0] = static_cast<std::uint32_t>(sim::hash64(2, i, 0));
    rec.meta.plaintext[1] = static_cast<std::uint32_t>(sim::hash64(2, i, 1));
    rec.meta.ciphertext[0] = static_cast<std::uint32_t>(sim::hash64(3, i, 0));
    rec.meta.ciphertext[1] = static_cast<std::uint32_t>(sim::hash64(3, i, 1));
    rec.meta.noiseSeed = sim::hash64(4, i);
    rec.samples = {0,
                   static_cast<std::int64_t>(100 + 10 * i),
                   -64,
                   1 << 20,
                   (1 << 20) + 1,
                   0,
                   static_cast<std::int64_t>(i),
                   -1};
    writer.append(rec);
  }
  writer.close();
}

TEST(ScaCorpus, RoundtripPreservesEverything) {
  const std::string path = tempPath("sca_roundtrip.sctcorp");
  sca::CorpusHeader hdr;
  hdr.samplesPerTrace = 16;
  hdr.quantDenom = 32;

  std::vector<sca::TraceRecord> written;
  {
    sca::TraceCorpusWriter writer(path, hdr);
    sim::SplitMix64 rng(0xC0FFEE);
    for (std::uint64_t i = 0; i < 20; ++i) {
      sca::TraceRecord rec;
      for (std::uint32_t& k : rec.meta.key) {
        k = static_cast<std::uint32_t>(rng());
      }
      for (std::uint32_t& p : rec.meta.plaintext) {
        p = static_cast<std::uint32_t>(rng());
      }
      for (std::uint32_t& c : rec.meta.ciphertext) {
        c = static_cast<std::uint32_t>(rng());
      }
      rec.meta.noiseSeed = rng();
      for (unsigned s = 0; s < hdr.samplesPerTrace; ++s) {
        // Signed, wildly varying samples: the zigzag-varint path must
        // cope with sign flips and multi-byte deltas.
        rec.samples.push_back(static_cast<std::int64_t>(rng() % 100000) -
                              50000);
      }
      written.push_back(rec);
      writer.append(rec);
    }
    EXPECT_EQ(writer.tracesWritten(), 20u);
    writer.close();
    EXPECT_EQ(writer.bytesWritten(), readFile(path).size());
  }

  sca::TraceCorpusReader reader(path);
  EXPECT_EQ(reader.header().samplesPerTrace, 16u);
  EXPECT_EQ(reader.header().quantDenom, 32u);
  EXPECT_EQ(reader.header().traceCount, 20u);

  const std::vector<sca::TraceRecord> got = drain(path);
  ASSERT_EQ(got.size(), written.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(i);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(got[i].meta.key[k], written[i].meta.key[k]);
    }
    for (int k = 0; k < 2; ++k) {
      EXPECT_EQ(got[i].meta.plaintext[k], written[i].meta.plaintext[k]);
      EXPECT_EQ(got[i].meta.ciphertext[k], written[i].meta.ciphertext[k]);
    }
    EXPECT_EQ(got[i].meta.noiseSeed, written[i].meta.noiseSeed);
    EXPECT_EQ(got[i].samples, written[i].samples);
  }
}

TEST(ScaCorpus, EncodeTraceRejectsWrongSampleCount) {
  sca::TraceRecord rec;
  rec.samples = {1, 2, 3};
  expectRefusal([&] { sca::encodeTrace(rec, 8); }, "3 samples");
}

TEST(ScaCorpus, AppendAfterCloseIsRejected) {
  const std::string path = tempPath("sca_closed.sctcorp");
  sca::CorpusHeader hdr;
  hdr.samplesPerTrace = 1;
  sca::TraceCorpusWriter writer(path, hdr);
  sca::TraceRecord rec;
  rec.samples = {7};
  writer.append(rec);
  writer.close();
  expectRefusal([&] { writer.append(rec); }, "already closed");
}

TEST(ScaCorpus, GoldenTinyCorpusIsByteStable) {
  const std::string fresh = tempPath("sca_golden_fresh.sctcorp");
  writeTinyCorpus(fresh);
  if (regenRequested()) {
    writeTinyCorpus(kGoldenPath);
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }
  const std::vector<std::uint8_t> expected = readFile(kGoldenPath);
  const std::vector<std::uint8_t> actual = readFile(fresh);
  ASSERT_FALSE(expected.empty());
  // Byte-for-byte: any layout change must be deliberate (bump
  // kCorpusFormatVersion, regenerate with SCT_REGEN_GOLDEN=1).
  EXPECT_EQ(actual, expected);
  // And the golden file itself must decode.
  EXPECT_EQ(drain(kGoldenPath).size(), 3u);
}

TEST(ScaCorpusNegative, MissingFileIsRejected) {
  expectRefusal([&] { sca::TraceCorpusReader r(tempPath("nope.sctcorp")); },
                "cannot open corpus");
}

TEST(ScaCorpusNegative, BadMagicIsRejected) {
  const std::string path = tempPath("sca_badmagic.sctcorp");
  writeTinyCorpus(path);
  std::vector<std::uint8_t> bytes = readFile(path);
  bytes[0] ^= 0xFF;
  writeFile(path, bytes);
  expectRefusal([&] { sca::TraceCorpusReader r(path); }, "bad magic");
}

TEST(ScaCorpusNegative, VersionSkewIsRejected) {
  const std::string path = tempPath("sca_badver.sctcorp");
  writeTinyCorpus(path);
  std::vector<std::uint8_t> bytes = readFile(path);
  bytes[8] = 0x7F;  // u32 version straight after the 8-byte magic (LE).
  writeFile(path, bytes);
  expectRefusal([&] { sca::TraceCorpusReader r(path); },
                "unsupported corpus format version 127");
}

TEST(ScaCorpusNegative, ZeroQuantDenomIsRejected) {
  const std::string path = tempPath("sca_badquant.sctcorp");
  writeTinyCorpus(path);
  std::vector<std::uint8_t> bytes = readFile(path);
  for (int i = 0; i < 4; ++i) bytes[16 + i] = 0;  // quantDenom field.
  writeFile(path, bytes);
  expectRefusal([&] { sca::TraceCorpusReader r(path); },
                "quantDenom is zero");
}

TEST(ScaCorpusNegative, EveryTruncationPointIsRejected) {
  const std::string path = tempPath("sca_full.sctcorp");
  writeTinyCorpus(path);
  const std::vector<std::uint8_t> bytes = readFile(path);
  const std::string cut = tempPath("sca_cut.sctcorp");
  // Chopping the stream anywhere short of complete must throw — the
  // reader may not accept a partial header, metadata block or payload.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    SCOPED_TRACE(n);
    writeFile(cut, std::vector<std::uint8_t>(bytes.begin(),
                                             bytes.begin() + n));
    EXPECT_THROW(drain(cut), sca::CorpusError);
  }
}

TEST(ScaCorpusNegative, TrailingBytesAreRejected) {
  const std::string path = tempPath("sca_trailing.sctcorp");
  writeTinyCorpus(path);
  std::vector<std::uint8_t> bytes = readFile(path);
  bytes.push_back(0xAB);
  writeFile(path, bytes);
  expectRefusal([&] { drain(path); }, "trailing bytes after trace 3");
}

TEST(ScaCorpusNegative, SurplusPayloadBytesAreRejected) {
  const std::string path = tempPath("sca_surplus.sctcorp");
  // One trace, one sample of value 0 (one payload byte)... but the
  // record claims two payload bytes, so one is left over after the
  // last sample decodes.
  sca::CorpusHeader hdr;
  hdr.samplesPerTrace = 1;
  {
    sca::TraceCorpusWriter writer(path, hdr);
    sca::TraceRecord rec;
    rec.samples = {0};
    writer.append(rec);
    writer.close();
  }
  std::vector<std::uint8_t> bytes = readFile(path);
  // Header (32) + key/pt/ct/seed meta (40) then u32 payloadBytes:
  // patch 1 -> 2 and append the surplus byte.
  ASSERT_EQ(bytes[32 + 40], 1u);
  bytes[32 + 40] = 2;
  bytes.push_back(0x00);
  writeFile(path, bytes);
  expectRefusal([&] { drain(path); }, "surplus payload bytes");
}

TEST(ScaCorpusNegative, PayloadEndingMidVarintIsRejected) {
  const std::string path = tempPath("sca_midvarint.sctcorp");
  sca::CorpusHeader hdr;
  hdr.samplesPerTrace = 1;
  {
    sca::TraceCorpusWriter writer(path, hdr);
    sca::TraceRecord rec;
    rec.samples = {0};
    writer.append(rec);
    writer.close();
  }
  std::vector<std::uint8_t> bytes = readFile(path);
  // Set the continuation bit on the only payload byte (header 32 +
  // fixed per-trace block 44): the varint now promises a byte the
  // payload does not contain.
  bytes[32 + 44] |= 0x80;
  writeFile(path, bytes);
  expectRefusal([&] { drain(path); }, "mid-varint");
}

} // namespace
} // namespace sct
