// The CryptoCoprocessor datapath leak model: the side-channel the sca
// subsystem measures. Contracts pinned here:
//  * the leak model NEVER changes functional behaviour — ciphertext,
//    timing and operation count are identical with it off, on, and
//    masked;
//  * with it on, the engine emits exactly the per-round Hamming
//    distance of the (l, r) state trajectory times the coefficient,
//    on the tick each round completes (reference trajectory recomputed
//    here from the public sbox() and the documented round function);
//  * a mid-operation checkpoint/restore continues the emission stream
//    bit-identically (the schedule is derived state — rebuilt from the
//    restored latches, never serialized);
//  * masking changes the emission stream but nothing else.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "ckpt/checkpoint.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "soc/peripherals.h"

namespace sct::soc {
namespace {

bus::SlaveControl window(bus::Address base) {
  bus::SlaveControl c;
  c.base = base;
  c.size = 0x100;
  return c;
}

std::uint32_t rotl(std::uint32_t v, unsigned k) {
  return k == 0 ? v : (v << k) | (v >> (32 - k));
}

std::uint32_t substituteRef(std::uint32_t v) {
  std::uint32_t r = 0;
  for (unsigned b = 0; b < 4; ++b) {
    r |= static_cast<std::uint32_t>(CryptoCoprocessor::sbox(
             static_cast<std::uint8_t>(v >> (8 * b))))
         << (8 * b);
  }
  return r;
}

std::uint32_t roundKeyRef(const std::uint32_t key[4], unsigned round) {
  return rotl(key[round & 3] ^ (0x9E3779B9u * (round + 1)), round % 31);
}

std::uint32_t feistelRef(std::uint32_t half, std::uint32_t rk) {
  return rotl(substituteRef(half ^ rk), 5) ^ (half >> 3);
}

/// Reference per-round state-register Hamming distances for one
/// encryption — what an unmasked device must emit.
std::vector<unsigned> referenceHd(const std::uint32_t key[4],
                                  std::uint32_t d0, std::uint32_t d1) {
  std::uint32_t l = d0;
  std::uint32_t r = d1;
  std::vector<unsigned> hd;
  for (unsigned round = 0; round < CryptoCoprocessor::kRounds; ++round) {
    const std::uint32_t pl = l;
    const std::uint32_t pr = r;
    const std::uint32_t t = r;
    r = l ^ feistelRef(r, roundKeyRef(key, round));
    l = t;
    hd.push_back(static_cast<unsigned>(std::popcount(pl ^ l)) +
                 static_cast<unsigned>(std::popcount(pr ^ r)));
  }
  return hd;
}

constexpr std::uint32_t kKey[4] = {0x01234567, 0x89ABCDEF, 0xFEDCBA98,
                                   0x76543210};
constexpr std::uint32_t kPt0 = 0xDEADBEEF;
constexpr std::uint32_t kPt1 = 0x00C0FFEE;

struct LeakFixture : ::testing::Test {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};

  void loadOperands(CryptoCoprocessor& c, bus::Address base,
                    std::uint32_t d0, std::uint32_t d1) {
    for (unsigned i = 0; i < 4; ++i) {
      c.writeBeat(base + 4 * i, bus::AccessSize::Word, 0xF, kKey[i]);
    }
    c.writeBeat(base + 0x10, bus::AccessSize::Word, 0xF, d0);
    c.writeBeat(base + 0x14, bus::AccessSize::Word, 0xF, d1);
  }

  /// Start mode (1 = encrypt, 2 = decrypt) and collect the internal
  /// energy emitted on every tick until idle.
  std::vector<double> runCollect(CryptoCoprocessor& c, bus::Address base,
                                 bus::Word mode) {
    c.writeBeat(base + 0x18, bus::AccessSize::Word, 0xF, mode);
    std::vector<double> leak;
    while (c.busy()) {
      clk.runCycles(1);
      leak.push_back(c.internalEnergyLastCycle_fJ());
    }
    return leak;
  }
};

TEST_F(LeakFixture, LeakModelDoesNotChangeCiphertextTimingOrCount) {
  bus::Word ct[3][2];
  std::size_t cycles[3];
  for (int variant = 0; variant < 3; ++variant) {
    CryptoCoprocessor c(clk, "crypto", window(0x5000), /*cyclesPerRound=*/2);
    if (variant == 1) c.setLeakModel({0.8, false, 0});
    if (variant == 2) c.setLeakModel({0.8, true, 0xFEED});
    loadOperands(c, 0x5000, kPt0, kPt1);
    cycles[variant] = runCollect(c, 0x5000, 1).size();
    c.readBeat(0x5010, bus::AccessSize::Word, ct[variant][0]);
    c.readBeat(0x5014, bus::AccessSize::Word, ct[variant][1]);
    EXPECT_EQ(c.operations(), 1u);
  }
  // Off, unmasked leak, masked leak: functionally indistinguishable.
  for (int variant = 1; variant < 3; ++variant) {
    EXPECT_EQ(ct[variant][0], ct[0][0]);
    EXPECT_EQ(ct[variant][1], ct[0][1]);
    EXPECT_EQ(cycles[variant], cycles[0]);
  }
  std::uint32_t e0 = kPt0;
  std::uint32_t e1 = kPt1;
  CryptoCoprocessor::encryptBlock(kKey, e0, e1);
  EXPECT_EQ(ct[0][0], e0);
  EXPECT_EQ(ct[0][1], e1);
}

TEST_F(LeakFixture, UnmaskedLeakIsTheRoundTrajectoryHammingDistance) {
  CryptoCoprocessor c(clk, "crypto", window(0x5000), /*cyclesPerRound=*/1);
  const double coeff = 0.75;
  c.setLeakModel({coeff, false, 0});
  loadOperands(c, 0x5000, kPt0, kPt1);
  const std::vector<double> leak = runCollect(c, 0x5000, 1);

  const std::vector<unsigned> hd = referenceHd(kKey, kPt0, kPt1);
  ASSERT_EQ(leak.size(), hd.size());  // One round per cycle.
  for (std::size_t i = 0; i < hd.size(); ++i) {
    SCOPED_TRACE(i);
    // coefficient x small integer: exact in IEEE double.
    EXPECT_EQ(leak[i], coeff * static_cast<double>(hd[i]));
  }
  // Idle cycles emit nothing.
  clk.runCycles(1);
  EXPECT_EQ(c.internalEnergyLastCycle_fJ(), 0.0);
}

TEST_F(LeakFixture, MultiCycleRoundsEmitOnRoundBoundariesOnly) {
  CryptoCoprocessor c(clk, "crypto", window(0x5000), /*cyclesPerRound=*/2);
  c.setLeakModel({1.0, false, 0});
  loadOperands(c, 0x5000, kPt0, kPt1);
  const std::vector<double> leak = runCollect(c, 0x5000, 1);
  const std::vector<unsigned> hd = referenceHd(kKey, kPt0, kPt1);
  ASSERT_EQ(leak.size(), 2 * hd.size());
  for (std::size_t i = 0; i < leak.size(); ++i) {
    SCOPED_TRACE(i);
    if (i % 2 == 0) {
      EXPECT_EQ(leak[i], 0.0);  // Mid-round cycle.
    } else {
      EXPECT_EQ(leak[i], static_cast<double>(hd[i / 2]));
    }
  }
}

TEST_F(LeakFixture, DecryptLeaksTheReverseTrajectory) {
  // Decryption walks the same (l, r) recurrence with the round keys
  // reversed; its round-0 state diff must equal the encrypt
  // trajectory's LAST round diff (symmetric HD, reversed order).
  std::uint32_t c0 = kPt0;
  std::uint32_t c1 = kPt1;
  CryptoCoprocessor::encryptBlock(kKey, c0, c1);

  CryptoCoprocessor c(clk, "crypto", window(0x5000), /*cyclesPerRound=*/1);
  c.setLeakModel({1.0, false, 0});
  loadOperands(c, 0x5000, c0, c1);
  const std::vector<double> leak = runCollect(c, 0x5000, 2);

  const std::vector<unsigned> hd = referenceHd(kKey, kPt0, kPt1);
  ASSERT_EQ(leak.size(), hd.size());
  for (std::size_t i = 0; i < hd.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(leak[i], static_cast<double>(hd[hd.size() - 1 - i]));
  }
  // And the decryption actually decrypted.
  bus::Word d0 = 0;
  bus::Word d1 = 0;
  c.readBeat(0x5010, bus::AccessSize::Word, d0);
  c.readBeat(0x5014, bus::AccessSize::Word, d1);
  EXPECT_EQ(d0, kPt0);
  EXPECT_EQ(d1, kPt1);
}

TEST_F(LeakFixture, MaskingChangesTheLeakStreamOnly) {
  std::vector<double> plain;
  std::vector<double> masked;
  std::vector<double> masked2;
  bus::Word ctPlain = 0;
  bus::Word ctMasked = 0;
  {
    CryptoCoprocessor c(clk, "crypto", window(0x5000), 1);
    c.setLeakModel({1.0, false, 0});
    loadOperands(c, 0x5000, kPt0, kPt1);
    plain = runCollect(c, 0x5000, 1);
    c.readBeat(0x5010, bus::AccessSize::Word, ctPlain);
  }
  {
    CryptoCoprocessor c(clk, "crypto", window(0x5000), 1);
    c.setLeakModel({1.0, true, 0xFEED});
    loadOperands(c, 0x5000, kPt0, kPt1);
    masked = runCollect(c, 0x5000, 1);
    c.readBeat(0x5010, bus::AccessSize::Word, ctMasked);
  }
  {
    CryptoCoprocessor c(clk, "crypto", window(0x5000), 1);
    c.setLeakModel({1.0, true, 0xBEEF});
    loadOperands(c, 0x5000, kPt0, kPt1);
    masked2 = runCollect(c, 0x5000, 1);
  }
  EXPECT_EQ(ctMasked, ctPlain);
  EXPECT_NE(masked, plain);    // The countermeasure rerandomizes...
  EXPECT_NE(masked2, masked);  // ...differently for every mask seed.
}

TEST_F(LeakFixture, MidOperationRestoreContinuesTheLeakStream) {
  const CryptoCoprocessor::LeakConfig cfg{0.5, true, 0xFEED};

  // Reference: one uninterrupted operation.
  CryptoCoprocessor ref(clk, "crypto", window(0x5000), 2);
  ref.setLeakModel(cfg);
  loadOperands(ref, 0x5000, kPt0, kPt1);
  const std::vector<double> whole = runCollect(ref, 0x5000, 1);

  // Interrupted: same operation, checkpointed 7 cycles in.
  CryptoCoprocessor first(clk, "crypto", window(0x5000), 2);
  first.setLeakModel(cfg);
  loadOperands(first, 0x5000, kPt0, kPt1);
  first.writeBeat(0x5018, bus::AccessSize::Word, 0xF, 1);
  std::vector<double> interrupted;
  for (int i = 0; i < 7; ++i) {
    clk.runCycles(1);
    interrupted.push_back(first.internalEnergyLastCycle_fJ());
  }
  ckpt::CheckpointRegistry reg;
  reg.add("crypto", first);
  const ckpt::Snapshot snap = reg.saveAll();

  // Restore into a FRESH device (leak config is a model knob the
  // restorer supplies; the schedule itself is rebuilt from the
  // checkpointed latches).
  CryptoCoprocessor second(clk, "crypto", window(0x5000), 2);
  second.setLeakModel(cfg);
  ckpt::CheckpointRegistry reg2;
  reg2.add("crypto", second);
  reg2.loadAll(snap);
  EXPECT_TRUE(second.busy());
  while (second.busy()) {
    clk.runCycles(1);
    interrupted.push_back(second.internalEnergyLastCycle_fJ());
  }

  ASSERT_EQ(interrupted.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(interrupted[i], whole[i]);  // Bit-identical continuation.
  }
  // The restored device finishes the cipher correctly, too.
  bus::Word d0 = 0;
  std::uint32_t e0 = kPt0;
  std::uint32_t e1 = kPt1;
  CryptoCoprocessor::encryptBlock(kKey, e0, e1);
  second.readBeat(0x5010, bus::AccessSize::Word, d0);
  EXPECT_EQ(d0, e0);
}

} // namespace
} // namespace sct::soc
