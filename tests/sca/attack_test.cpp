// The headline contracts of the sca subsystem, asserted end-to-end:
//  * a CPA attack on an UNPROTECTED device recovers the round-0 key
//    byte (rank 0) within the corpus, and stays recovered;
//  * the SAME attack on the SAME corpus size against the MASKED device
//    does not recover it — the countermeasure measurably works;
//  * the corpus file is byte-identical whether generated with 1 thread
//    or many (the SCT_THREADS contract);
//  * the analyzer ranking is bit-identical for any chunk size and any
//    thread count (exact integer accumulators);
//  * trace metadata is faithful: plaintexts follow the documented
//    derivation and ciphertexts match the software reference cipher.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "power/coeff_table.h"
#include "sca/analyzer.h"
#include "sca/corpus.h"
#include "sca/corpus_runner.h"
#include "soc/peripherals.h"

namespace sct {
namespace {

power::SignalEnergyTable fixedTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  1.5 + 0.25 * static_cast<double>(i));
  }
  return t;
}

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// The validated operating point: 0.8 fJ/bit of datapath leak under
/// 2 fJ of Gaussian-ish noise — the unprotected attack converges in a
/// few hundred traces.
sca::CorpusConfig baseConfig(std::uint64_t traces) {
  sca::CorpusConfig cfg;
  cfg.traces = traces;
  cfg.noiseSigma_fJ = 2.0;
  cfg.leak.hdCoeff_fJ = 0.8;
  return cfg;
}

sca::AttackConfig attackConfig() {
  sca::AttackConfig cfg;
  cfg.byteIndex = 0;
  cfg.threads = 2;
  cfg.rankCheckpoints = {100, 200, 300, 400};
  return cfg;
}

TEST(ScaAttack, UnprotectedDeviceLeaksItsKeyByte) {
  const std::string path = tempPath("sca_unprot.sctcorp");
  sca::CorpusRunner runner(fixedTable(), baseConfig(500));
  const sca::GenerateStats stats = runner.generate(path, 4);
  EXPECT_EQ(stats.traces, 500u);

  const sca::AttackResult r = sca::DpaAnalyzer(attackConfig()).analyze(path);
  EXPECT_EQ(r.correctGuess,
            sca::DpaAnalyzer::roundZeroKeyByte(sca::CorpusConfig{}.key, 0));
  // The attack converged: correct guess ranked first at the end...
  EXPECT_EQ(r.finalRank, 0u);
  EXPECT_EQ(r.bestGuess, r.correctGuess);
  // ...and from some checkpoint within the corpus onward.
  const std::uint64_t rec = sca::tracesToRecovery(r);
  EXPECT_NE(rec, 0u);
  EXPECT_LE(rec, 500u);
}

TEST(ScaAttack, MaskingDefeatsTheSameAttack) {
  const std::string path = tempPath("sca_masked.sctcorp");
  sca::CorpusConfig cfg = baseConfig(500);
  cfg.leak.maskRounds = true;
  sca::CorpusRunner runner(fixedTable(), cfg);
  runner.generate(path, 4);

  const sca::AttackResult r = sca::DpaAnalyzer(attackConfig()).analyze(path);
  // Identical corpus size, identical analyzer — but the masked leak
  // carries no usable correlation: the correct byte is NOT ranked
  // first and the curve never settles on it.
  EXPECT_NE(r.finalRank, 0u);
  EXPECT_EQ(sca::tracesToRecovery(r), 0u);
}

TEST(ScaAttack, DifferenceOfMeansModeAlsoRecovers) {
  const std::string path = tempPath("sca_dom.sctcorp");
  sca::CorpusRunner runner(fixedTable(), baseConfig(500));
  runner.generate(path, 4);

  sca::AttackConfig cfg = attackConfig();
  cfg.mode = sca::AttackMode::DifferenceOfMeans;
  const sca::AttackResult r = sca::DpaAnalyzer(cfg).analyze(path);
  EXPECT_EQ(r.finalRank, 0u);
}

TEST(ScaAttack, CorpusBytesAreIdenticalAcrossThreadCounts) {
  sca::CorpusConfig cfg = baseConfig(48);
  cfg.batchTraces = 16;
  sca::CorpusRunner runner(fixedTable(), cfg);

  const std::string p1 = tempPath("sca_t1.sctcorp");
  const std::string p4 = tempPath("sca_t4.sctcorp");
  runner.generate(p1, 1);  // Sequential reference.
  runner.generate(p4, 4);
  const std::vector<std::uint8_t> b1 = readFile(p1);
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(readFile(p4), b1);

  // And a separately booted runner reproduces the same bytes, too.
  sca::CorpusRunner runner2(fixedTable(), cfg);
  const std::string p2 = tempPath("sca_reboot.sctcorp");
  runner2.generate(p2, 2);
  EXPECT_EQ(readFile(p2), b1);
}

TEST(ScaAttack, RankingIsIndependentOfChunkSizeAndThreads) {
  const std::string path = tempPath("sca_chunks.sctcorp");
  sca::CorpusRunner runner(fixedTable(), baseConfig(200));
  runner.generate(path, 4);

  const auto analyzeWith = [&](std::uint64_t chunk, unsigned threads) {
    sca::AttackConfig cfg;
    cfg.chunkTraces = chunk;
    cfg.threads = threads;
    cfg.rankCheckpoints = {50, 100, 150};
    return sca::DpaAnalyzer(cfg).analyze(path);
  };

  const sca::AttackResult ref = analyzeWith(256, 1);
  for (const auto& [chunk, threads] :
       std::vector<std::pair<std::uint64_t, unsigned>>{
           {17, 4}, {64, 3}, {1, 2}, {200, 8}}) {
    SCOPED_TRACE(chunk);
    const sca::AttackResult alt = analyzeWith(chunk, threads);
    // Exact double equality: the integer moments make the scores
    // bit-identical, not just close.
    for (unsigned g = 0; g < 256; ++g) EXPECT_EQ(alt.scores[g], ref.scores[g]);
    ASSERT_EQ(alt.curve.size(), ref.curve.size());
    for (std::size_t i = 0; i < ref.curve.size(); ++i) {
      EXPECT_EQ(alt.curve[i].traces, ref.curve[i].traces);
      EXPECT_EQ(alt.curve[i].rank, ref.curve[i].rank);
      EXPECT_EQ(alt.curve[i].bestGuess, ref.curve[i].bestGuess);
      EXPECT_EQ(alt.curve[i].bestScore, ref.curve[i].bestScore);
    }
  }
}

TEST(ScaAttack, TraceMetadataIsFaithful) {
  sca::CorpusConfig cfg = baseConfig(8);
  sca::CorpusRunner runner(fixedTable(), cfg);
  const sca::TraceRecord rec = runner.runOne(5);

  std::uint32_t pt[2];
  sca::CorpusRunner::plaintextFor(cfg, 5, pt);
  EXPECT_EQ(rec.meta.plaintext[0], pt[0]);
  EXPECT_EQ(rec.meta.plaintext[1], pt[1]);
  EXPECT_EQ(rec.meta.noiseSeed, sca::CorpusRunner::noiseSeedFor(cfg, 5));

  // The ciphertext the firmware read back over the bus matches the
  // software reference cipher — the whole HW path executed for real.
  std::uint32_t e0 = pt[0];
  std::uint32_t e1 = pt[1];
  soc::CryptoCoprocessor::encryptBlock(cfg.key, e0, e1);
  EXPECT_EQ(rec.meta.ciphertext[0], e0);
  EXPECT_EQ(rec.meta.ciphertext[1], e1);

  EXPECT_EQ(rec.samples.size(), cfg.samplesPerTrace);

  // Re-capturing the same index reproduces the identical trace.
  const sca::TraceRecord again = runner.runOne(5);
  EXPECT_EQ(again.samples, rec.samples);
}

TEST(ScaAttack, AnalyzerRefusesAnEmptyCorpus) {
  const std::string path = tempPath("sca_empty.sctcorp");
  sca::CorpusHeader hdr;
  hdr.samplesPerTrace = 4;
  sca::TraceCorpusWriter writer(path, hdr);
  writer.close();
  EXPECT_THROW(sca::DpaAnalyzer(attackConfig()).analyze(path),
               sca::CorpusError);
}

} // namespace
} // namespace sct
