#include "trace/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sct::trace {
namespace {

TEST(ReportTest, PrintsAlignedColumns) {
  Table t({"Model", "Cycles", "Error"});
  t.addRow({"Gate-level", "1000", "-"});
  t.addRow({"TL layer 1", "1000", "0.0%"});
  std::stringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("Gate-level"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Header and both rows plus separator: 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(ReportTest, PercentFormatting) {
  EXPECT_EQ(Table::pct(0.123), "12.3%");
  EXPECT_EQ(Table::pct(-0.078), "-7.8%");
  EXPECT_EQ(Table::pct(0.147, 1, /*forceSign=*/true), "+14.7%");
  EXPECT_EQ(Table::pct(0.005, 1, true), "+0.5%");
}

TEST(ReportTest, NumberFormatting) {
  EXPECT_EQ(Table::num(85.3), "85.3");
  EXPECT_EQ(Table::num(1.52, 2), "1.52");
  EXPECT_EQ(Table::num(100.0, 0), "100");
}

TEST(ReportTest, RowsShorterThanHeaderAreFine) {
  Table t({"A", "B", "C"});
  t.addRow({"x"});
  std::stringstream ss;
  EXPECT_NO_THROW(t.print(ss));
}

} // namespace
} // namespace sct::trace
