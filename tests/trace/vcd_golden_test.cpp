// Golden-file roundtrip of the VCD writer: a small deterministic
// layer-1-shaped workload replayed on the layer-0 reference bus (the
// layer the VCD writer taps) must reproduce tests/trace/golden_tl1.vcd
// byte for byte. Any change to signal coding, header shape or frame
// emission shows up as a diff against a file a human can open in a
// waveform viewer. Regenerate the golden (rewrites the source tree):
//   SCT_REGEN_GOLDEN=1 build/tests/test_trace
//     --gtest_filter=VcdGoldenTest.MatchesCheckedInGolden
#include "trace/vcd.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "../testbench.h"
#include "trace/workloads.h"

namespace sct::trace {
namespace {

const char* goldenPath() { return SCT_TEST_DATA_DIR "/trace/golden_tl1.vcd"; }

/// Small fixed workload: one of each transaction class, both slaves.
BusTrace goldenTrace() {
  BusTrace t;
  auto add = [&](bus::Kind kind, bus::Address addr, unsigned beats,
                 std::uint32_t data) {
    TraceEntry e;
    e.kind = kind;
    e.address = addr;
    e.beats = beats;
    for (unsigned b = 0; b < beats; ++b) e.writeData[b] = data + b;
    t.append(e);
  };
  add(bus::Kind::Write, 0x0100, 1, 0xCAFEBABE);
  add(bus::Kind::Read, 0x0100, 1, 0);
  add(bus::Kind::Write, 0x8010, 4, 0x11111111);
  add(bus::Kind::Read, 0x8010, 4, 0);
  add(bus::Kind::InstrFetch, 0x0040, 2, 0);
  return t;
}

std::string renderVcd() {
  testbench::RefBench tb;
  std::stringstream ss;
  VcdWriter vcd(ss, /*clockPeriodPs=*/10);
  tb.bus.addFrameListener(vcd);
  tb.run(goldenTrace());
  return ss.str();
}

TEST(VcdGoldenTest, MatchesCheckedInGolden) {
  const std::string got = renderVcd();
  ASSERT_FALSE(got.empty());

  if (std::getenv("SCT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(goldenPath(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << goldenPath();
    out << got;
    GTEST_SKIP() << "regenerated " << goldenPath();
  }

  std::ifstream in(goldenPath(), std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                  << " — run with SCT_REGEN_GOLDEN=1 to create it";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str());
}

TEST(VcdGoldenTest, DeterministicAcrossRuns) {
  EXPECT_EQ(renderVcd(), renderVcd());
}

} // namespace
} // namespace sct::trace
