#include "trace/bus_trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sct::trace {
namespace {

using bus::Kind;

TEST(BusTraceTest, AppendAndTotals) {
  BusTrace t;
  TraceEntry r;
  r.kind = Kind::Read;
  r.address = 0x10;
  t.append(r);
  TraceEntry w;
  w.kind = Kind::Write;
  w.address = 0x20;
  w.beats = 4;
  t.append(w);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.totalBeats(), 5u);
  EXPECT_EQ(t.countOf(Kind::Read), 1u);
  EXPECT_EQ(t.countOf(Kind::Write), 1u);
  EXPECT_EQ(t.countOf(Kind::InstrFetch), 0u);
}

TEST(BusTraceTest, AppendTraceWithOffsetShiftsIssueCycles) {
  BusTrace a;
  TraceEntry e;
  e.issueCycle = 5;
  a.append(e);
  BusTrace b;
  b.append(a, 100);
  EXPECT_EQ(b[0].issueCycle, 105u);
}

TEST(BusTraceTest, SaveLoadRoundTrip) {
  BusTrace t;
  TraceEntry r;
  r.issueCycle = 3;
  r.kind = Kind::Read;
  r.address = 0x1234;
  r.size = bus::AccessSize::Half;
  t.append(r);
  TraceEntry w;
  w.issueCycle = 7;
  w.kind = Kind::Write;
  w.address = 0xABC0;
  w.beats = 4;
  w.writeData = {1, 2, 3, 0xFFFFFFFF};
  t.append(w);
  TraceEntry i;
  i.kind = Kind::InstrFetch;
  i.address = 0x400;
  i.beats = 4;
  t.append(i);

  std::stringstream ss;
  t.save(ss);
  const BusTrace loaded = BusTrace::load(ss);
  EXPECT_EQ(t, loaded);
}

TEST(BusTraceTest, LoadRejectsGarbage) {
  std::stringstream ss("0 X 0x10 4 1\n");
  EXPECT_THROW(BusTrace::load(ss), std::runtime_error);
  std::stringstream ss2("0 R 0x10 3 1\n");
  EXPECT_THROW(BusTrace::load(ss2), std::runtime_error);
  std::stringstream ss3("0 W 0x10 4 1\n");  // Missing write data.
  EXPECT_THROW(BusTrace::load(ss3), std::runtime_error);
  std::stringstream ss4("0 R 0x10 4 9\n");  // Bad beat count.
  EXPECT_THROW(BusTrace::load(ss4), std::runtime_error);
}

TEST(BusTraceTest, ByteCountOfEntries) {
  TraceEntry e;
  e.size = bus::AccessSize::Byte;
  EXPECT_EQ(e.byteCount(), 1u);
  e.size = bus::AccessSize::Word;
  e.beats = 4;
  EXPECT_EQ(e.byteCount(), 16u);
}

} // namespace
} // namespace sct::trace
