#include <gtest/gtest.h>

#include "trace/workloads.h"

namespace sct::trace {
namespace {

BusTrace traceWithGaps(std::initializer_list<std::uint64_t> cycles) {
  BusTrace t;
  for (std::uint64_t c : cycles) {
    TraceEntry e;
    e.kind = bus::Kind::Read;
    e.address = 0x100;
    e.issueCycle = c;
    t.append(e);
  }
  return t;
}

TEST(CompressGapsTest, CapsLongGapsKeepsShortOnes) {
  const BusTrace in = traceWithGaps({0, 2, 100, 103});
  const BusTrace out = compressGaps(in, 6);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].issueCycle, 0u);
  EXPECT_EQ(out[1].issueCycle, 2u);   // Gap 2 kept.
  EXPECT_EQ(out[2].issueCycle, 8u);   // Gap 98 capped to 6.
  EXPECT_EQ(out[3].issueCycle, 11u);  // Gap 3 kept.
}

TEST(CompressGapsTest, ZeroMaxGapMakesBackToBack) {
  const BusTrace in = traceWithGaps({5, 10, 200});
  const BusTrace out = compressGaps(in, 0);
  EXPECT_EQ(out[0].issueCycle, 0u);
  EXPECT_EQ(out[1].issueCycle, 0u);
  EXPECT_EQ(out[2].issueCycle, 0u);
}

TEST(CompressGapsTest, AlreadyDenseTraceUnchangedInShape) {
  const BusTrace in = traceWithGaps({0, 1, 2, 3});
  const BusTrace out = compressGaps(in, 10);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].issueCycle, in[i].issueCycle);
  }
}

TEST(CompressGapsTest, NonMonotonicInputIsTreatedAsBackToBack) {
  BusTrace in = traceWithGaps({10, 5});
  const BusTrace out = compressGaps(in, 4);
  EXPECT_EQ(out[1].issueCycle, out[0].issueCycle);
}

TEST(CompressGapsTest, PayloadFieldsSurvive) {
  BusTrace in;
  TraceEntry e;
  e.kind = bus::Kind::Write;
  e.address = 0xABC0;
  e.beats = 4;
  e.writeData = {1, 2, 3, 4};
  e.issueCycle = 77;
  in.append(e);
  const BusTrace out = compressGaps(in, 3);
  EXPECT_EQ(out[0].kind, e.kind);
  EXPECT_EQ(out[0].address, e.address);
  EXPECT_EQ(out[0].writeData, e.writeData);
}

TEST(CompressGapsTest, EmptyTrace) {
  EXPECT_TRUE(compressGaps(BusTrace{}, 5).empty());
}

} // namespace
} // namespace sct::trace
