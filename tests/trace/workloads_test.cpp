#include "trace/workloads.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "../testbench.h"

namespace sct::trace {
namespace {

using bus::Kind;

TEST(WorkloadsTest, VerificationSuiteCoversSpecExamples) {
  const auto suite = verificationSuite(testbench::fastRegion(),
                                       testbench::waitedRegion());
  ASSERT_GE(suite.size(), 7u);
  bool sawBurst = false;
  bool sawSubword = false;
  bool sawFetch = false;
  for (const NamedTrace& nt : suite) {
    EXPECT_FALSE(nt.trace.empty()) << nt.name;
    for (const TraceEntry& e : nt.trace.entries()) {
      if (e.beats > 1) sawBurst = true;
      if (e.size != bus::AccessSize::Word) sawSubword = true;
      if (e.kind == Kind::InstrFetch) sawFetch = true;
    }
  }
  EXPECT_TRUE(sawBurst);
  EXPECT_TRUE(sawSubword);
  EXPECT_TRUE(sawFetch);
}

TEST(WorkloadsTest, VerificationTraceRunsCleanlyOnLayer1) {
  testbench::Tl1Bench tb;
  const BusTrace t = verificationTrace(testbench::fastRegion(),
                                       testbench::waitedRegion());
  trace::ReplayMaster m(tb.clk, "m", tb.bus, tb.bus, t);
  m.runToCompletion();
  EXPECT_TRUE(m.done());
  EXPECT_EQ(m.stats().errors, 0u);
}

TEST(WorkloadsTest, RandomMixRespectsCountAndRegions) {
  const auto regions = testbench::bothRegions();
  const BusTrace t = randomMix(1, 500, regions);
  EXPECT_EQ(t.size(), 500u);
  for (const TraceEntry& e : t.entries()) {
    const bool inFast = e.address < 0x2000;
    const bool inWaited = e.address >= 0x8000 && e.address < 0xA000;
    EXPECT_TRUE(inFast || inWaited);
    EXPECT_EQ(e.address % 4, 0u);
    if (e.beats > 1) {
      EXPECT_LE(e.address + 16,
                inFast ? 0x2000u : 0xA000u);
    }
  }
}

TEST(WorkloadsTest, MixRatiosAreHonoured) {
  const auto regions = testbench::bothRegions();
  MixRatios mix;
  mix.singleRead = 1;
  mix.singleWrite = 0;
  mix.burstRead = 0;
  mix.burstWrite = 0;
  const BusTrace t = randomMix(2, 200, regions, mix);
  for (const TraceEntry& e : t.entries()) {
    EXPECT_EQ(e.kind, Kind::Read);
    EXPECT_EQ(e.beats, 1u);
  }
}

TEST(WorkloadsTest, DeterministicPerSeed) {
  const auto regions = testbench::bothRegions();
  EXPECT_EQ(randomMix(42, 100, regions), randomMix(42, 100, regions));
  EXPECT_NE(randomMix(42, 100, regions), randomMix(43, 100, regions));
}

TEST(WorkloadsTest, IssueGapsAreBounded) {
  const auto regions = testbench::bothRegions();
  const BusTrace t = randomMix(3, 100, regions, MixRatios{}, 5);
  std::uint64_t prev = 0;
  for (const TraceEntry& e : t.entries()) {
    EXPECT_GE(e.issueCycle, prev);
    EXPECT_LE(e.issueCycle - prev, 5u);
    prev = e.issueCycle;
  }
}

TEST(WorkloadsTest, InvalidArgumentsThrow) {
  EXPECT_THROW(randomMix(1, 10, {}), std::invalid_argument);
  const auto regions = testbench::bothRegions();
  MixRatios zero;
  zero.singleRead = zero.singleWrite = zero.burstRead = zero.burstWrite = 0;
  EXPECT_THROW(randomMix(1, 10, regions, zero), std::invalid_argument);
}

TEST(WorkloadsTest, CharacterizationTraceIncludesAllClasses) {
  const auto regions = testbench::bothRegions();
  const BusTrace t = characterizationTrace(4, 600, regions);
  EXPECT_GT(t.countOf(Kind::Read), 0u);
  EXPECT_GT(t.countOf(Kind::Write), 0u);
  EXPECT_GT(t.countOf(Kind::InstrFetch), 0u);
  bool sawBurst = false;
  bool sawSingle = false;
  for (const TraceEntry& e : t.entries()) {
    (e.beats > 1 ? sawBurst : sawSingle) = true;
  }
  EXPECT_TRUE(sawBurst);
  EXPECT_TRUE(sawSingle);
}

} // namespace
} // namespace sct::trace
