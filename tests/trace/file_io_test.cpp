// On-disk round trips for the persistable artifacts: bus traces and
// coefficient tables (the files a platform vendor would ship).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "../testbench.h"
#include "power/coeff_table.h"
#include "trace/bus_trace.h"
#include "trace/workloads.h"

namespace sct {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("sct_test_" + std::to_string(::getpid()));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(FileIoTest, BusTraceFileRoundTrip) {
  TempDir tmp;
  const auto original = trace::randomMix(
      3, 150, testbench::bothRegions(), trace::MixRatios{}, 4);
  const fs::path file = tmp.path / "workload.bustrace";
  {
    std::ofstream os(file);
    ASSERT_TRUE(os.good());
    original.save(os);
  }
  std::ifstream is(file);
  ASSERT_TRUE(is.good());
  const auto loaded = trace::BusTrace::load(is);
  EXPECT_EQ(original, loaded);
}

TEST(FileIoTest, LoadedTraceReplaysIdentically) {
  TempDir tmp;
  const auto original = trace::randomMix(
      7, 100, testbench::bothRegions(), trace::MixRatios{}, 2);
  const fs::path file = tmp.path / "workload.bustrace";
  {
    std::ofstream os(file);
    original.save(os);
  }
  std::ifstream is(file);
  const auto loaded = trace::BusTrace::load(is);

  testbench::Tl1Bench a;
  testbench::Tl1Bench b;
  EXPECT_EQ(a.run(original), b.run(loaded));
}

TEST(FileIoTest, CoefficientTableFileRoundTrip) {
  TempDir tmp;
  power::SignalEnergyTable table;
  double v = 100.0;
  for (const auto& info : bus::kSignalTable) {
    table.setCoeff_fJ(info.id, v);
    v *= 1.5;
  }
  const fs::path file = tmp.path / "coeffs.txt";
  {
    std::ofstream os(file);
    table.save(os);
  }
  std::ifstream is(file);
  EXPECT_EQ(power::SignalEnergyTable::load(is), table);
}

TEST(FileIoTest, EmptyTraceFileLoadsEmptyTrace) {
  TempDir tmp;
  const fs::path file = tmp.path / "empty.bustrace";
  { std::ofstream os(file); }
  std::ifstream is(file);
  EXPECT_TRUE(trace::BusTrace::load(is).empty());
}

} // namespace
} // namespace sct
