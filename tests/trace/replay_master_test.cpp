#include "trace/replay_master.h"

#include <gtest/gtest.h>

#include <cstring>

#include "../testbench.h"
#include "trace/workloads.h"

namespace sct::trace {
namespace {

using bus::Kind;
using testbench::Tl1Bench;
using testbench::Tl2Bench;

TEST(ReplayMasterTest, CompletesAllEntriesInOrder) {
  Tl1Bench tb;
  BusTrace t;
  for (unsigned i = 0; i < 10; ++i) {
    TraceEntry e;
    e.kind = Kind::Write;
    e.address = 4 * i;
    e.writeData[0] = 0x100 + i;
    t.append(e);
  }
  ReplayMaster m(tb.clk, "m", tb.bus, tb.bus, t);
  m.runToCompletion();
  EXPECT_TRUE(m.done());
  EXPECT_EQ(m.stats().completed, 10u);
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_EQ(tb.fast.peekWord(4 * i), 0x100u + i);
  }
}

TEST(ReplayMasterTest, ReadResultsAreRecorded) {
  Tl1Bench tb;
  tb.fast.pokeWord(0x50, 0xAB);
  BusTrace t;
  TraceEntry e;
  e.kind = Kind::Read;
  e.address = 0x50;
  t.append(e);
  ReplayMaster m(tb.clk, "m", tb.bus, tb.bus, t);
  m.runToCompletion();
  EXPECT_EQ(m.requests()[0].data[0], 0xABu);
}

TEST(ReplayMasterTest, HonoursIssueCycles) {
  Tl1Bench tb;
  BusTrace t;
  TraceEntry e;
  e.kind = Kind::Read;
  e.address = 0x0;
  e.issueCycle = 20;
  t.append(e);
  ReplayMaster m(tb.clk, "m", tb.bus, tb.bus, t);
  const std::uint64_t elapsed = m.runToCompletion();
  EXPECT_GE(elapsed, 21u);
  EXPECT_GE(m.requests()[0].acceptCycle, 20u);
}

TEST(ReplayMasterTest, CountsErrors) {
  Tl1Bench tb;
  BusTrace t;
  TraceEntry bad;
  bad.kind = Kind::Read;
  bad.address = 0x70000;  // Unmapped.
  t.append(bad);
  TraceEntry good;
  good.kind = Kind::Read;
  good.address = 0x0;
  t.append(good);
  ReplayMaster m(tb.clk, "m", tb.bus, tb.bus, t);
  m.runToCompletion();
  EXPECT_EQ(m.stats().completed, 2u);
  EXPECT_EQ(m.stats().errors, 1u);
}

TEST(ReplayMasterTest, InFlightWindowStallsIssue) {
  Tl1Bench tb;
  // 8 reads against the waited slave with window 2: issue must stall.
  BusTrace t;
  for (unsigned i = 0; i < 8; ++i) {
    TraceEntry e;
    e.kind = Kind::Read;
    e.address = 0x8000 + 4 * i;
    t.append(e);
  }
  ReplayMaster narrow(tb.clk, "m", tb.bus, tb.bus, t, /*maxInFlight=*/2);
  narrow.runToCompletion();
  EXPECT_TRUE(narrow.done());
  EXPECT_EQ(narrow.stats().errors, 0u);
}

TEST(ReplayMasterTest, WindowWiderThanBusLimitStillCompletes) {
  Tl1Bench tb;
  BusTrace t;
  for (unsigned i = 0; i < 12; ++i) {
    TraceEntry e;
    e.kind = Kind::Read;
    e.address = 0x8000 + 4 * i;  // Waited slave: backlog builds up.
    t.append(e);
  }
  ReplayMaster wide(tb.clk, "m", tb.bus, tb.bus, t, /*maxInFlight=*/16);
  wide.runToCompletion();
  EXPECT_TRUE(wide.done());
  EXPECT_GT(wide.stats().issueStallCycles, 0u);  // EC limit of 4 hit.
}

TEST(Tl2ReplayMasterTest, CompletesAndTransfersData) {
  Tl2Bench tb;
  tb.fast.pokeWord(0x60, 0xFEEDF00D);
  BusTrace t;
  TraceEntry rd;
  rd.kind = Kind::Read;
  rd.address = 0x60;
  t.append(rd);
  TraceEntry wr;
  wr.kind = Kind::Write;
  wr.address = 0x70;
  wr.beats = 4;
  wr.writeData = {1, 2, 3, 4};
  t.append(wr);
  Tl2ReplayMaster m(tb.clk, "m", tb.bus, t);
  m.runToCompletion();
  EXPECT_TRUE(m.done());
  bus::Word v = 0;
  std::memcpy(&v, m.buffer(0).data(), 4);
  EXPECT_EQ(v, 0xFEEDF00Du);
  EXPECT_EQ(tb.fast.peekWord(0x78), 3u);
}

TEST(Tl2ReplayMasterTest, SameTraceSameResultsAsLayer1) {
  const auto workload =
      randomMix(11, 80, testbench::bothRegions(), MixRatios{});
  Tl1Bench b1;
  ReplayMaster m1(b1.clk, "m1", b1.bus, b1.bus, workload);
  m1.runToCompletion();
  Tl2Bench b2;
  Tl2ReplayMaster m2(b2.clk, "m2", b2.bus, workload);
  m2.runToCompletion();
  // Final memory contents must agree between the layers.
  for (bus::Address a = 0; a < 0x2000; a += 4) {
    ASSERT_EQ(b1.fast.peekWord(a), b2.fast.peekWord(a)) << std::hex << a;
  }
  for (bus::Address a = 0x8000; a < 0xA000; a += 4) {
    ASSERT_EQ(b1.waited.peekWord(a), b2.waited.peekWord(a)) << std::hex << a;
  }
}

} // namespace
} // namespace sct::trace
