#include "trace/vcd.h"

#include <gtest/gtest.h>

#include <sstream>

#include "../testbench.h"
#include "trace/workloads.h"

namespace sct::trace {
namespace {

TEST(VcdTest, HeaderDeclaresAllSignals) {
  std::stringstream ss;
  VcdWriter vcd(ss, 10);
  const std::string out = ss.str();
  EXPECT_NE(out.find("$timescale 1ps $end"), std::string::npos);
  for (const auto& info : bus::kSignalTable) {
    EXPECT_NE(out.find(std::string(info.name)), std::string::npos)
        << info.name;
  }
  EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
}

TEST(VcdTest, DumpsValueChanges) {
  testbench::RefBench tb;
  std::stringstream ss;
  VcdWriter vcd(ss, 10);
  tb.bus.addFrameListener(vcd);
  BusTrace t;
  TraceEntry e;
  e.kind = bus::Kind::Write;
  e.address = 0x100;
  e.writeData[0] = 0xFFFFFFFF;
  t.append(e);
  tb.run(t);
  const std::string out = ss.str();
  EXPECT_GT(vcd.framesWritten(), 0u);
  // Timestamped sections and vector values must appear.
  EXPECT_NE(out.find("#10"), std::string::npos);
  EXPECT_NE(out.find("b"), std::string::npos);
}

TEST(VcdTest, QuietCyclesEmitNoTimestamps) {
  testbench::RefBench tb;
  std::stringstream ss;
  VcdWriter vcd(ss, 10);
  tb.bus.addFrameListener(vcd);
  // First frame dumps everything; later idle frames add nothing.
  tb.clk.runCycles(5);
  const std::string out = ss.str();
  EXPECT_EQ(out.find("#30"), std::string::npos);
  EXPECT_EQ(vcd.framesWritten(), 5u);
}

} // namespace
} // namespace sct::trace
