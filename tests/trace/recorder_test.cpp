#include "trace/recorder.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct::trace {
namespace {

TEST(TraceRecorderTest, RecordsReplayableTrace) {
  const auto original =
      randomMix(5, 60, testbench::bothRegions(), MixRatios{}, 2);
  testbench::Tl1Bench source;
  TraceRecorder rec;
  source.bus.addObserver(rec);
  source.run(original);
  const BusTrace captured = rec.take();
  ASSERT_EQ(captured.size(), original.size());
  for (std::size_t i = 0; i < captured.size(); ++i) {
    EXPECT_EQ(captured[i].kind, original[i].kind) << i;
    EXPECT_EQ(captured[i].address, original[i].address) << i;
    EXPECT_EQ(captured[i].beats, original[i].beats) << i;
  }
}

TEST(TraceRecorderTest, IssueCyclesAreNormalized) {
  BusTrace t;
  TraceEntry e;
  e.kind = bus::Kind::Read;
  e.address = 0x0;
  e.issueCycle = 50;
  t.append(e);
  testbench::Tl1Bench tb;
  TraceRecorder rec;
  tb.bus.addObserver(rec);
  tb.run(t);
  ASSERT_EQ(rec.trace().size(), 1u);
  EXPECT_EQ(rec.trace()[0].issueCycle, 0u);
}

TEST(TraceRecorderTest, WriteDataIsCaptured) {
  BusTrace t;
  TraceEntry e;
  e.kind = bus::Kind::Write;
  e.address = 0x10;
  e.beats = 4;
  e.writeData = {0xA, 0xB, 0xC, 0xD};
  t.append(e);
  testbench::Tl1Bench tb;
  TraceRecorder rec;
  tb.bus.addObserver(rec);
  tb.run(t);
  ASSERT_EQ(rec.trace().size(), 1u);
  EXPECT_EQ(rec.trace()[0].writeData, e.writeData);
}

TEST(TraceRecorderTest, ReplayedCaptureIsCycleFaithful) {
  // Recording a replayed trace and replaying the recording again must
  // take the same number of cycles (fixed-point property).
  const auto original =
      randomMix(9, 80, testbench::bothRegions(), MixRatios{}, 3);
  testbench::Tl1Bench first;
  TraceRecorder rec;
  first.bus.addObserver(rec);
  const std::uint64_t c1 = first.run(original);
  testbench::Tl1Bench second;
  const std::uint64_t c2 = second.run(rec.take());
  EXPECT_EQ(c1, c2);
}

} // namespace
} // namespace sct::trace
