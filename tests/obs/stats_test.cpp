// StatsRegistry / Snapshot behaviour: stable handles, create-or-get,
// histogram bucketing, name-sorted deterministic snapshots, JSON shape
// and cross-registry merging (the exploration sweep's aggregation
// path).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/stats.h"

namespace sct::obs {
namespace {

TEST(StatsRegistryTest, CreateOrGetReturnsSameHandle) {
  StatsRegistry reg;
  Counter& a = reg.counter("bus.txns");
  Counter& b = reg.counter("bus.txns");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(StatsRegistryTest, HandlesStayValidAcrossGrowth) {
  StatsRegistry reg;
  Counter& first = reg.counter("first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i));
    reg.gauge("g" + std::to_string(i));
    reg.histogram("h" + std::to_string(i), {1, 2});
  }
  first.add(5);
  EXPECT_EQ(reg.counter("first").value(), 5u);
}

TEST(StatsRegistryTest, GaugeSetAndAdd) {
  StatsRegistry reg;
  Gauge& g = reg.gauge("energy");
  g.set(2.5);
  g.add(1.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
}

TEST(HistogramTest, BucketsByInclusiveUpperBound) {
  Histogram h({1, 4, 16});
  for (std::uint64_t v : {0u, 1u, 2u, 4u, 5u, 16u, 17u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 4 + 5 + 16 + 17 + 1000);
  const auto& buckets = h.bucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow.
  EXPECT_EQ(buckets[0], 2u);  // 0, 1
  EXPECT_EQ(buckets[1], 2u);  // 2, 4
  EXPECT_EQ(buckets[2], 2u);  // 5, 16
  EXPECT_EQ(buckets[3], 2u);  // 17, 1000 (overflow)
}

TEST(SnapshotTest, SortedByNameAndFindable) {
  StatsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(0.5);
  Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "alpha");
  EXPECT_EQ(snap.entries[1].name, "mid");
  EXPECT_EQ(snap.entries[2].name, "zeta");
  const SnapshotEntry* e = snap.find("alpha");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 2u);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(SnapshotTest, JsonShape) {
  StatsRegistry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {2}).record(1);
  std::ostringstream os;
  reg.writeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("{\"stats\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"c\",\"type\":\"counter\",\"value\":7"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"g\",\"type\":\"gauge\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[2],\"buckets\":[1,0]"), std::string::npos);
}

TEST(SnapshotTest, DeterministicAcrossIdenticalRuns) {
  auto build = [] {
    StatsRegistry reg;
    reg.counter("b.two").add(2);
    reg.counter("a.one").add(1);
    reg.histogram("c.h", {1, 2}).record(2);
    std::ostringstream os;
    reg.writeJson(os);
    return os.str();
  };
  EXPECT_EQ(build(), build());
}

TEST(MergeTest, SumsMatchingEntriesAppendsNew) {
  StatsRegistry a;
  a.counter("shared").add(1);
  a.histogram("h", {1, 2}).record(1);
  StatsRegistry b;
  b.counter("shared").add(2);
  b.counter("only_b").add(5);
  b.histogram("h", {1, 2}).record(2);

  Snapshot into = a.snapshot();
  merge(into, b.snapshot());
  ASSERT_EQ(into.entries.size(), 3u);
  EXPECT_EQ(into.find("shared")->count, 3u);
  EXPECT_EQ(into.find("only_b")->count, 5u);
  const SnapshotEntry* h = into.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 1u);
}

} // namespace
} // namespace sct::obs
