// LedgerView: the streamable per-session form of the attribution data.
// snapshot-before / snapshot-after / delta is how the serve daemon
// reports each session's energy split while the ledger keeps
// accumulating, and merge() is the fleet-aggregation fold.
#include <gtest/gtest.h>

#include <cstddef>

#include "bus/ec_signals.h"
#include "obs/ledger.h"

namespace sct {
namespace {

using obs::EnergyLedger;
using obs::LedgerView;
using obs::TxClass;

TEST(LedgerView, ViewCopiesEveryAccumulator) {
  EnergyLedger led;
  led.add(bus::SignalId::EB_A, TxClass::InstrRead, 0, 0, 1.5);
  led.add(bus::SignalId::EB_WData, TxClass::Write, 2, 1, 2.25);
  led.add(bus::SignalId::EB_RData, TxClass::DataRead, -1, 3, 0.125);

  const LedgerView v = led.view();
  EXPECT_EQ(v.total, led.total_fJ());
  EXPECT_EQ(v.byBundle[static_cast<std::size_t>(bus::SignalId::EB_A)], 1.5);
  EXPECT_EQ(v.byClass[static_cast<std::size_t>(TxClass::Write)], 2.25);
  // Slave -1 (decode miss) lands in slot 0.
  EXPECT_EQ(v.bySlave[0], 0.125);
  EXPECT_EQ(v.byMaster[1], 2.25);
}

TEST(LedgerView, DeltaIsolatesTheSessionWindow) {
  EnergyLedger led;
  led.add(bus::SignalId::EB_A, TxClass::InstrRead, 0, 0, 10.0);
  const LedgerView before = led.view();

  led.add(bus::SignalId::EB_A, TxClass::InstrRead, 0, 0, 3.0);
  led.add(bus::SignalId::EB_Write, TxClass::Write, 1, 0, 4.0);
  const LedgerView after = led.view();

  const LedgerView d = obs::delta(after, before);
  EXPECT_EQ(d.total, 7.0);
  EXPECT_EQ(d.byBundle[static_cast<std::size_t>(bus::SignalId::EB_A)], 3.0);
  EXPECT_EQ(d.byBundle[static_cast<std::size_t>(bus::SignalId::EB_Write)], 4.0);
  EXPECT_EQ(d.byClass[static_cast<std::size_t>(TxClass::Write)], 4.0);
  EXPECT_EQ(d.bySlave[2], 4.0);
}

TEST(LedgerView, DeltaOfIdenticalViewsIsZero) {
  EnergyLedger led;
  led.add(bus::SignalId::EB_WData, TxClass::Write, 0, 0, 5.0);
  const LedgerView v = led.view();
  EXPECT_EQ(obs::delta(v, v), LedgerView{});
}

TEST(LedgerView, MergeAccumulatesComponentWise) {
  EnergyLedger a;
  a.add(bus::SignalId::EB_A, TxClass::InstrRead, 0, 0, 1.0);
  EnergyLedger b;
  b.add(bus::SignalId::EB_A, TxClass::InstrRead, 0, 0, 2.0);
  b.add(bus::SignalId::EB_RData, TxClass::DataRead, 1, 1, 8.0);

  LedgerView sum = a.view();
  obs::merge(sum, b.view());
  EXPECT_EQ(sum.total, 11.0);
  EXPECT_EQ(sum.byBundle[static_cast<std::size_t>(bus::SignalId::EB_A)], 3.0);
  EXPECT_EQ(sum.byBundle[static_cast<std::size_t>(bus::SignalId::EB_RData)], 8.0);
  EXPECT_EQ(sum.bySlave[2], 8.0);
}

TEST(LedgerView, DeferredContributionsAppearAfterCommit) {
  // The TL1 path accumulates splits immediately but the total only at
  // commitCycle — view() is specified for quiesce points, where the
  // two agree. Pin the agreement down.
  EnergyLedger led;
  led.addDeferred(bus::SignalId::EB_A, TxClass::InstrRead, 0, 0, 2.0);
  led.addDeferred(bus::SignalId::EB_WData, TxClass::Write, 0, 0, 3.0);
  led.commitCycle();
  const LedgerView v = led.view();
  EXPECT_EQ(v.total, 5.0);
  EXPECT_EQ(v.byBundle[static_cast<std::size_t>(bus::SignalId::EB_A)], 2.0);
}

} // namespace
} // namespace sct
