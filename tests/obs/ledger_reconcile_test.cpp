// Energy-attribution ledger reconciliation (the obs subsystem's core
// correctness contract): for both power models, on every workload of
// the equivalence suite plus dense random mixes, the ledger total must
// be BIT-IDENTICAL to the model's own accumulator — same bits, not
// "close" — and to the sum the interval interface hands out. The
// dimensional splits (by transaction class, by slave, by bundle) must
// each re-sum to the total up to floating-point reassociation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "../testbench.h"
#include "bus/ec_signals.h"
#include "obs/ledger.h"
#include "power/characterizer.h"
#include "power/tl1_power_model.h"
#include "power/tl2_power_model.h"
#include "trace/workloads.h"

namespace sct {
namespace {

using power::SignalEnergyTable;
using testbench::Tl1Bench;
using testbench::Tl2Bench;

const SignalEnergyTable& characterizedTable() {
  static const SignalEnergyTable table = [] {
    testbench::RefBench tb;
    power::Characterizer ch(testbench::energyModel());
    tb.bus.addFrameListener(ch);
    tb.run(trace::characterizationTrace(1234, 800, testbench::bothRegions()));
    return ch.buildTable();
  }();
  return table;
}

std::uint64_t bitsOf(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Bit-identical, not approximately equal.
void expectSameBits(double a, double b, const std::string& what) {
  EXPECT_EQ(bitsOf(a), bitsOf(b)) << what << ": " << a << " vs " << b;
}

double sumByClass(const obs::EnergyLedger& ledger) {
  double s = 0.0;
  for (std::size_t c = 0; c < obs::kTxClassCount; ++c) {
    s += ledger.byClass_fJ(static_cast<obs::TxClass>(c));
  }
  return s;
}

double sumBySlave(const obs::EnergyLedger& ledger) {
  double s = 0.0;
  for (int slave = -1;
       slave < static_cast<int>(obs::EnergyLedger::kSlaveSlots) - 1; ++slave) {
    s += ledger.bySlave_fJ(slave);
  }
  return s;
}

double sumByBundle(const obs::EnergyLedger& ledger) {
  double s = 0.0;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    s += ledger.byBundle_fJ(static_cast<bus::SignalId>(i));
  }
  return s;
}

void expectSplitsResum(const obs::EnergyLedger& ledger) {
  const double total = ledger.total_fJ();
  const double tol = 1e-9 * (total == 0.0 ? 1.0 : total);
  EXPECT_NEAR(sumByClass(ledger), total, tol);
  EXPECT_NEAR(sumBySlave(ledger), total, tol);
  EXPECT_NEAR(sumByBundle(ledger), total, tol);
}

void checkTl1(const trace::BusTrace& t, const std::string& what) {
  Tl1Bench tb;
  power::Tl1PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  obs::EnergyLedger ledger;
  pm.attachLedger(ledger);
  tb.run(t);
  expectSameBits(ledger.total_fJ(), pm.totalEnergy_fJ(), what + " (total)");
  expectSameBits(ledger.total_fJ(), pm.energySinceLastCall_fJ(),
                 what + " (interval)");
  expectSplitsResum(ledger);
}

void checkTl2(const trace::BusTrace& t, const std::string& what) {
  Tl2Bench tb;
  power::Tl2PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  obs::EnergyLedger ledger;
  pm.attachLedger(ledger);
  tb.run(t);
  expectSameBits(ledger.total_fJ(), pm.totalEnergy_fJ(), what + " (total)");
  expectSameBits(ledger.total_fJ(), pm.energySinceLastCall_fJ(),
                 what + " (interval)");
  expectSplitsResum(ledger);
}

TEST(LedgerReconcileTest, Tl1VerificationSuite) {
  for (const trace::NamedTrace& nt : trace::verificationSuite(
           testbench::fastRegion(), testbench::waitedRegion())) {
    checkTl1(nt.trace, "tl1 " + nt.name);
  }
}

TEST(LedgerReconcileTest, Tl2VerificationSuite) {
  for (const trace::NamedTrace& nt : trace::verificationSuite(
           testbench::fastRegion(), testbench::waitedRegion())) {
    checkTl2(nt.trace, "tl2 " + nt.name);
  }
}

TEST(LedgerReconcileTest, Tl1RandomMixes) {
  for (std::uint64_t seed : {7u, 99u, 4242u}) {
    checkTl1(trace::randomMix(seed, 300, testbench::bothRegions(),
                              trace::MixRatios{2, 2, 1, 1, 1}, 3),
             "tl1 mix seed " + std::to_string(seed));
  }
}

TEST(LedgerReconcileTest, Tl2RandomMixes) {
  for (std::uint64_t seed : {7u, 99u, 4242u}) {
    checkTl2(trace::randomMix(seed, 300, testbench::bothRegions(),
                              trace::MixRatios{2, 2, 1, 1, 1}, 3),
             "tl2 mix seed " + std::to_string(seed));
  }
}

TEST(LedgerReconcileTest, Tl1AttributesClassesAndSlaves) {
  Tl1Bench tb;
  power::Tl1PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  obs::EnergyLedger ledger;
  pm.attachLedger(ledger, /*master=*/1);
  tb.run(trace::randomMix(5, 200, testbench::bothRegions(),
                          trace::MixRatios{1, 1, 1, 1, 1}, 0));
  // All classes active in this mix, both slaves decoded, master 1 only.
  EXPECT_GT(ledger.byClass_fJ(obs::TxClass::InstrRead), 0.0);
  EXPECT_GT(ledger.byClass_fJ(obs::TxClass::DataRead), 0.0);
  EXPECT_GT(ledger.byClass_fJ(obs::TxClass::Write), 0.0);
  EXPECT_GT(ledger.bySlave_fJ(0), 0.0);
  EXPECT_GT(ledger.bySlave_fJ(1), 0.0);
  // Dimensional accumulators associate per-contribution, the total per
  // cycle — a single master matches the total up to reassociation only.
  EXPECT_NEAR(ledger.byMaster_fJ(1), ledger.total_fJ(),
              1e-9 * ledger.total_fJ());
  EXPECT_EQ(ledger.byMaster_fJ(0), 0.0);
}

TEST(LedgerReconcileTest, ResetClearsEverything) {
  obs::EnergyLedger ledger;
  ledger.add(bus::SignalId::EB_A, obs::TxClass::Write, 0, 0, 2.0);
  ledger.reset();
  EXPECT_EQ(ledger.total_fJ(), 0.0);
  EXPECT_EQ(ledger.byClass_fJ(obs::TxClass::Write), 0.0);
}

} // namespace
} // namespace sct
