// Timeline recorder: ring-buffer semantics, Chrome trace_event JSON
// shape, and — the acceptance criterion — TL2 spans carrying exactly
// the cycle numbers the bus hands its observers, even though spans are
// emitted from the resolved schedule rather than from per-cycle
// bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "../testbench.h"
#include "bus/ec_interfaces.h"
#include "obs/trace_json.h"
#include "trace/workloads.h"

namespace sct {
namespace {

TEST(TraceRecorderTest, SpanAndInstantFields) {
  obs::TraceRecorder rec(8);
  rec.span("tl1", "read", 10, 14, obs::Track::Bus,
           obs::TraceArg{"addr", 0x80}, obs::TraceArg{"beats", 4});
  rec.instant("clock", "warp", 20, obs::Track::Clock,
              obs::TraceArg{"cycles", 7});
  ASSERT_EQ(rec.size(), 2u);
  const obs::TraceRecorder::Event& s = rec.event(0);
  EXPECT_EQ(s.ts, 10u);
  EXPECT_EQ(s.dur, 4u);
  EXPECT_EQ(s.phase, 'X');
  const obs::TraceRecorder::Event& i = rec.event(1);
  EXPECT_EQ(i.ts, 20u);
  EXPECT_EQ(i.phase, 'i');
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDrops) {
  obs::TraceRecorder rec(2);
  for (std::uint64_t c = 0; c < 5; ++c) {
    rec.instant("t", "e", c, obs::Track::Kernel);
  }
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 3u);
  EXPECT_EQ(rec.event(0).ts, 3u);  // Oldest survivor is the 4th push.
  EXPECT_EQ(rec.event(1).ts, 4u);

  std::ostringstream os;
  rec.writeJson(os);
  EXPECT_NE(os.str().find("\"droppedEvents\":3"), std::string::npos);
}

TEST(TraceRecorderTest, JsonShape) {
  obs::TraceRecorder rec(8);
  rec.span("tl2", "read", 3, 5, obs::Track::Bus, obs::TraceArg{"addr", 16});
  rec.instant("clock", "park", 7, obs::Track::Clock);
  std::ostringstream os;
  rec.writeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":3,\"dur\":2"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"addr\":16}"), std::string::npos);
  // Instants are thread-scoped ('s':'t') and carry no duration.
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":7,\"s\":\"t\""), std::string::npos);
  // Crude structural sanity: balanced braces and brackets.
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

/// Records the bus cycle at which every TL2 phase callback fires.
struct PhaseCycleLog final : bus::Tl2Observer {
  explicit PhaseCycleLog(bus::Tl2Bus& bus) : bus(bus) {}
  void addressPhaseDone(const bus::Tl2PhaseInfo& info) override {
    addrCycles.push_back(bus.cycle());
    addrLens.push_back(info.cycles);
  }
  void dataPhaseDone(const bus::Tl2PhaseInfo& info) override {
    dataCycles.push_back(bus.cycle());
    dataLens.push_back(info.cycles);
  }
  bus::Tl2Bus& bus;
  std::vector<std::uint64_t> addrCycles, dataCycles;
  std::vector<unsigned> addrLens, dataLens;
};

TEST(TraceRecorderTest, Tl2SpansMatchObserverCallbackCycles) {
  testbench::Tl2Bench tb;
  PhaseCycleLog log(tb.bus);
  tb.bus.addObserver(log);  // Forces every boundary onto its own edge.
  obs::StatsRegistry reg;
  obs::TraceRecorder rec(1u << 14);
  tb.bus.attachObs(reg, &rec);

  const trace::BusTrace t = trace::randomMix(
      17, 120, testbench::bothRegions(), trace::MixRatios{2, 2, 1, 1, 1},
      /*issueGapMax=*/4);
  trace::Tl2ReplayMaster master(tb.clk, "master", tb.bus, t);
  master.runToCompletion();
  ASSERT_TRUE(master.done());
  EXPECT_EQ(rec.dropped(), 0u);

  std::vector<const obs::TraceRecorder::Event*> addrSpans, dataSpans, txSpans;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const obs::TraceRecorder::Event& e = rec.event(i);
    if (e.track == obs::Track::AddrPhase) addrSpans.push_back(&e);
    if (e.track == obs::Track::DataPhase) dataSpans.push_back(&e);
    if (e.track == obs::Track::Bus) txSpans.push_back(&e);
  }

  // Every phase span ends exactly at the cycle the matching observer
  // callback saw, and covers exactly the callback's phase length.
  ASSERT_EQ(addrSpans.size(), log.addrCycles.size());
  for (std::size_t i = 0; i < addrSpans.size(); ++i) {
    EXPECT_EQ(addrSpans[i]->ts + addrSpans[i]->dur, log.addrCycles[i])
        << "addr span " << i;
    EXPECT_EQ(addrSpans[i]->dur + 1, log.addrLens[i]) << "addr span " << i;
  }
  ASSERT_EQ(dataSpans.size(), log.dataCycles.size());
  for (std::size_t i = 0; i < dataSpans.size(); ++i) {
    EXPECT_EQ(dataSpans[i]->ts + dataSpans[i]->dur, log.dataCycles[i])
        << "data span " << i;
    EXPECT_EQ(dataSpans[i]->dur + 1, log.dataLens[i]) << "data span " << i;
  }

  // Transaction spans mirror the request records: the multiset of
  // (accept, finish) pairs is identical (emission order on same-cycle
  // ties is a unit-scheduling detail, so compare sorted).
  ASSERT_EQ(txSpans.size(), t.size());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fromSpans, fromReqs;
  for (const obs::TraceRecorder::Event* e : txSpans) {
    fromSpans.emplace_back(e->ts, e->ts + e->dur);
  }
  for (const bus::Tl2Request& r : master.requests()) {
    fromReqs.emplace_back(r.acceptCycle, r.finishCycle);
  }
  std::sort(fromSpans.begin(), fromSpans.end());
  std::sort(fromReqs.begin(), fromReqs.end());
  EXPECT_EQ(fromSpans, fromReqs);
}

TEST(TraceRecorderTest, Tl2SpanCyclesIdenticalWithAndWithoutObserver) {
  // Without an observer the event-driven bus retires boundaries lazily
  // after clock warps; the spans must still carry the exact schedule.
  auto collect = [](bool withObserver) {
    testbench::Tl2Bench tb;
    PhaseCycleLog log(tb.bus);
    if (withObserver) tb.bus.addObserver(log);
    obs::StatsRegistry reg;
    obs::TraceRecorder rec(1u << 14);
    tb.bus.attachObs(reg, &rec);
    tb.run(trace::randomMix(23, 100, testbench::bothRegions(),
                            trace::MixRatios{2, 2, 1, 1, 1}, 5));
    // Sorted (track, ts, dur) triples: emission order on same-cycle
    // ties may differ between eager and lazy retirement, the cycle
    // numbers themselves may not.
    std::vector<std::array<std::uint64_t, 3>> cycles;
    for (std::size_t i = 0; i < rec.size(); ++i) {
      const obs::TraceRecorder::Event& e = rec.event(i);
      cycles.push_back({static_cast<std::uint64_t>(e.track), e.ts, e.dur});
    }
    std::sort(cycles.begin(), cycles.end());
    return cycles;
  };
  EXPECT_EQ(collect(false), collect(true));
}

TEST(TraceRecorderTest, ClockEmitsWarpInstants) {
  testbench::Tl2Bench tb;
  obs::StatsRegistry reg;
  obs::TraceRecorder rec(1u << 14);
  tb.clk.attachObs(reg, &rec);
  // Sparse issue gaps leave dead cycles for the clock to warp over.
  tb.run(trace::randomMix(29, 60, testbench::bothRegions(),
                          trace::MixRatios{}, 8));
  EXPECT_GT(reg.counter("clk.warps").value(), 0u);
  bool sawWarpInstant = false;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const obs::TraceRecorder::Event& e = rec.event(i);
    if (e.phase == 'i' && std::string(e.name) == "warp") sawWarpInstant = true;
  }
  EXPECT_TRUE(sawWarpInstant);
}

} // namespace
} // namespace sct
