// The no-encoder contract (satellite of ROADMAP item 4): a bus with no
// codec installed and a bus with the IdentityCodec installed are the
// SAME simulation — elapsed cycles, read payloads, bus statistics,
// per-signal transition counts, model energy (exact double equality),
// memory digests, and the serialized checkpoint bytes all match, and
// the EB_Inv sideband never toggles. This is what lets SCT_ENC=OFF (or
// codec-less) builds keep every existing golden output byte-identical.
//
// The functional half of the contract covers every concrete codec: the
// decode(encode(x)) routing in the bus means payloads, memory images
// and replay statistics must be unchanged by ANY codec — only the wire
// activity (and therefore the energy) may move. Bus-invert must move
// it DOWN on a random-data workload.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "../testbench.h"
#include "bus/bus_codec.h"
#include "bus/ec_signals.h"
#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "ckpt/checkpoint.h"
#include "enc/codecs.h"
#include "obs/ledger.h"
#include "power/tl1_power_model.h"
#include "sim/random.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct::enc {
namespace {

using trace::BusTrace;

power::SignalEnergyTable distinctTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  1.5 + 0.25 * static_cast<double>(i));
  }
  return t;
}

void fillRandom(std::uint8_t* bytes, std::size_t n, std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::uint8_t>(rng.next32());
  }
}

// Uniform random write data and uniform random memory images: maximum
// switching activity, the workload bus-invert exists for.
BusTrace randomDataTrace(std::uint64_t seed) {
  trace::MixRatios mix;
  mix.singleRead = 2;
  mix.singleWrite = 2;
  mix.burstRead = 1;
  mix.burstWrite = 1;
  mix.instrFetch = 1;
  return trace::randomMixStyled(seed, 400, testbench::bothRegions(), mix,
                                /*issueGapMax=*/2,
                                trace::DataStyle::Random);
}

struct EncPlatform {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  bus::Tl1Bus bus{clk, "ecbus"};
  bus::MemorySlave fast{"ram", testbench::fastCtl()};
  bus::MemorySlave waited{"eeprom", testbench::waitedCtl()};
  power::Tl1PowerModel pm{distinctTable()};
  obs::EnergyLedger ledger;
  trace::ReplayMaster master;

  EncPlatform(const BusTrace& t, bus::BusCodec* codec)
      : master(clk, "master", bus, bus, t) {
    bus.attach(fast);
    bus.attach(waited);
    fillRandom(fast.data(), fast.sizeBytes(), 11);
    fillRandom(waited.data(), waited.sizeBytes(), 22);
    pm.attachLedger(ledger);
    bus.addObserver(pm);
    if (codec != nullptr) bus.setCodec(codec);
  }

  void registerAll(ckpt::CheckpointRegistry& reg) {
    reg.add("kernel", kernel);
    reg.add("clk", clk);
    reg.add("ecbus", bus);
    reg.add("ram", fast);
    reg.add("eeprom", waited);
    reg.add("master", master);
    reg.add("pm", pm);
    reg.add("ledger", ledger);
  }
};

struct RunResult {
  std::uint64_t finalCycle = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t readBeats = 0;
  std::uint64_t writeBeats = 0;
  std::vector<std::array<bus::Word, 4>> payloads;
  std::array<std::uint64_t, bus::kSignalCount> transitions{};
  double pmTotal = 0.0;
  std::uint64_t fastDigest = 0;
  std::uint64_t waitedDigest = 0;
};

RunResult collect(EncPlatform& p) {
  RunResult r;
  r.finalCycle = p.clk.cycle();
  r.completed = p.master.stats().completed;
  r.errors = p.master.stats().errors;
  r.readBeats = p.bus.stats().readBeats;
  r.writeBeats = p.bus.stats().writeBeats;
  for (const bus::Tl1Request& q : p.master.requests()) {
    r.payloads.push_back({q.data[0], q.data[1], q.data[2], q.data[3]});
  }
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    r.transitions[i] = p.pm.transitions(static_cast<bus::SignalId>(i));
  }
  r.pmTotal = p.pm.totalEnergy_fJ();
  r.fastDigest = p.fast.imageDigest();
  r.waitedDigest = p.waited.imageDigest();
  return r;
}

std::uint64_t dataBusTransitions(const RunResult& r) {
  return r.transitions[static_cast<std::size_t>(bus::SignalId::EB_RData)] +
         r.transitions[static_cast<std::size_t>(bus::SignalId::EB_WData)] +
         r.transitions[static_cast<std::size_t>(bus::SignalId::EB_Inv)];
}

void expectFunctionalEqual(const RunResult& codec, const RunResult& plain) {
  EXPECT_EQ(codec.finalCycle, plain.finalCycle);
  EXPECT_EQ(codec.completed, plain.completed);
  EXPECT_EQ(codec.errors, plain.errors);
  EXPECT_EQ(codec.readBeats, plain.readBeats);
  EXPECT_EQ(codec.writeBeats, plain.writeBeats);
  ASSERT_EQ(codec.payloads.size(), plain.payloads.size());
  for (std::size_t i = 0; i < plain.payloads.size(); ++i) {
    EXPECT_EQ(codec.payloads[i], plain.payloads[i]) << "request " << i;
  }
  EXPECT_EQ(codec.fastDigest, plain.fastDigest);
  EXPECT_EQ(codec.waitedDigest, plain.waitedDigest);
}

TEST(NoEncoderFastPath, IdentityCodecIsByteIdenticalToNoCodec) {
  const BusTrace t = randomDataTrace(0x1D);

  EncPlatform plain(t, nullptr);
  plain.master.runToCompletion();
  ASSERT_TRUE(plain.master.done());
  const RunResult want = collect(plain);

  IdentityCodec identity;
  EncPlatform withId(t, &identity);
  withId.master.runToCompletion();
  ASSERT_TRUE(withId.master.done());
  const RunResult got = collect(withId);

  expectFunctionalEqual(got, want);
  // The identity codec is not just functionally equal — the wire-level
  // simulation is the same simulation: every transition counter and
  // every energy double matches exactly.
  EXPECT_EQ(got.transitions, want.transitions);
  EXPECT_EQ(got.pmTotal, want.pmTotal);
  // The EB_Inv sideband never toggles without an inverting codec.
  EXPECT_EQ(
      got.transitions[static_cast<std::size_t>(bus::SignalId::EB_Inv)], 0u);
  EXPECT_EQ(
      want.transitions[static_cast<std::size_t>(bus::SignalId::EB_Inv)], 0u);

  // And the checkpoint bytes agree — the codec leaves no trace in any
  // serialized section.
  ckpt::CheckpointRegistry plainReg;
  plain.registerAll(plainReg);
  ckpt::CheckpointRegistry idReg;
  withId.registerAll(idReg);
  EXPECT_EQ(plainReg.saveAll().serialize(), idReg.saveAll().serialize());
}

TEST(CodecEquivalence, EveryCodecPreservesFunctionalOutputs) {
  const BusTrace t = randomDataTrace(0x2E);

  EncPlatform plain(t, nullptr);
  plain.master.runToCompletion();
  const RunResult want = collect(plain);

  for (const std::string& name : codecNames()) {
    SCOPED_TRACE(name);
    const std::unique_ptr<bus::BusCodec> codec = makeCodec(name);
    EncPlatform p(t, codec.get());
    p.master.runToCompletion();
    ASSERT_TRUE(p.master.done());
    expectFunctionalEqual(collect(p), want);
  }
}

TEST(CodecEquivalence, BusInvertReducesDataBusTransitionsOnRandomData) {
  const BusTrace t = randomDataTrace(0x3F);

  EncPlatform plain(t, nullptr);
  plain.master.runToCompletion();
  const RunResult base = collect(plain);

  BusInvertCodec bi;
  EncPlatform inverted(t, &bi);
  inverted.master.runToCompletion();
  const RunResult got = collect(inverted);

  expectFunctionalEqual(got, base);
  // The sideband is actually exercised...
  EXPECT_GT(
      got.transitions[static_cast<std::size_t>(bus::SignalId::EB_Inv)], 0u);
  // ...and the data-bus activity (INCLUDING the invert-line overhead)
  // drops: on uniform random words the expected per-beat cost falls
  // from 16 toggles to ~13.2.
  EXPECT_LT(dataBusTransitions(got), dataBusTransitions(base));
  // Address activity is untouched by a data-bus codec.
  EXPECT_EQ(got.transitions[static_cast<std::size_t>(bus::SignalId::EB_A)],
            base.transitions[static_cast<std::size_t>(bus::SignalId::EB_A)]);
}

} // namespace
} // namespace sct::enc
