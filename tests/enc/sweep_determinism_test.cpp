// The codec x workload sweep's headline contracts:
//
//  * threads=1 (sequential reference order) and threads=0 (worker
//    pool) produce BIT-IDENTICAL outcome tables — every energy double
//    and every counter — because each variant restores the same boot
//    snapshot into a freshly constructed platform.
//  * the fork-based sweep equals the boot-per-variant reference
//    (runFromBoot): restoring the snapshot is indistinguishable from
//    re-running the boot, per the ckpt restore-equivalence guarantee.
//  * bus-invert actually earns its keep on the random-data crypto
//    workload: fewer data-bus transitions than the identity codec, and
//    (in SCT_OBS builds, where the ledger splits are live) less
//    data-bus energy.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "enc/sweep.h"
#include "power/coeff_table.h"

namespace sct::enc {
namespace {

power::SignalEnergyTable distinctTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  1.5 + 0.25 * static_cast<double>(i));
  }
  return t;
}

const SweepRunner& runner() {
  static const SweepRunner r(distinctTable());
  return r;
}

void expectOutcomeIdentical(const EncOutcome& a, const EncOutcome& b) {
  EXPECT_EQ(a.variant.codec, b.variant.codec);
  EXPECT_EQ(a.variant.workload, b.variant.workload);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.total_fJ, b.total_fJ);
  EXPECT_EQ(a.perTxn_fJ, b.perTxn_fJ);
  EXPECT_EQ(a.dataBus_fJ, b.dataBus_fJ);
  EXPECT_EQ(a.addrBus_fJ, b.addrBus_fJ);
  EXPECT_EQ(a.dataTransitions, b.dataTransitions);
  EXPECT_EQ(a.addrTransitions, b.addrTransitions);
}

const EncOutcome& find(const std::vector<EncOutcome>& all,
                       const std::string& codec,
                       const std::string& workload) {
  for (const EncOutcome& o : all) {
    if (o.variant.codec == codec && o.variant.workload == workload) return o;
  }
  ADD_FAILURE() << "missing variant " << codec << "/" << workload;
  static const EncOutcome empty;
  return empty;
}

TEST(EncSweep, GridCoversEveryCodecWorkloadPair) {
  const auto grid = defaultGrid();
  EXPECT_EQ(grid.size(), codecNames().size() * workloadNames().size());
}

TEST(EncSweep, ThreadPoolIsBitIdenticalToSequential) {
  const auto grid = defaultGrid();
  const auto seq = runner().run(grid, 1);
  const auto pool = runner().run(grid, 0);
  ASSERT_EQ(seq.size(), grid.size());
  ASSERT_EQ(pool.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(grid[i].codec + "/" + grid[i].workload);
    expectOutcomeIdentical(pool[i], seq[i]);
  }
}

TEST(EncSweep, ForkedVariantsEqualBootPerVariantReference) {
  // Restoring the boot snapshot must be indistinguishable from booting
  // again: spot-check one stateful codec, one address codec and the
  // identity reference against the from-scratch path.
  const std::vector<EncVariant> sample = {
      {"identity", "jcvm"},
      {"bus-invert", "crypto"},
      {"gray-addr", "memcpy"},
  };
  const auto forked = runner().run(sample, 1);
  ASSERT_EQ(forked.size(), sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    SCOPED_TRACE(sample[i].codec + "/" + sample[i].workload);
    expectOutcomeIdentical(forked[i], runner().runFromBoot(sample[i]));
  }
}

TEST(EncSweep, OutcomesAreWellFormed) {
  const auto all = runner().run(defaultGrid(), 1);
  for (const EncOutcome& o : all) {
    SCOPED_TRACE(o.variant.codec + "/" + o.variant.workload);
    EXPECT_GT(o.transactions, 0u);
    EXPECT_GT(o.cycles, 0u);
    EXPECT_GT(o.total_fJ, 0.0);
    EXPECT_GT(o.perTxn_fJ, 0.0);
    EXPECT_GT(o.dataTransitions, 0u);
    EXPECT_GT(o.addrTransitions, 0u);
  }
}

TEST(EncSweep, BusInvertBeatsIdentityOnRandomDataCrypto) {
  const auto all = runner().run(defaultGrid(), 1);
  const EncOutcome& id = find(all, "identity", "crypto");
  const EncOutcome& bi = find(all, "bus-invert", "crypto");
  // Same workload phase, same cycle count — only the wire activity
  // differs.
  EXPECT_EQ(bi.transactions, id.transactions);
  EXPECT_EQ(bi.cycles, id.cycles);
  EXPECT_LT(bi.dataTransitions, id.dataTransitions);
  // The ledger splits are live only in SCT_OBS builds; when compiled
  // out both sides are zero and the energy claim is covered by the
  // transition counters above.
  if (id.dataBus_fJ > 0.0 || bi.dataBus_fJ > 0.0) {
    EXPECT_LT(bi.dataBus_fJ, id.dataBus_fJ);
  }
  // A data-bus codec leaves the address bus alone.
  EXPECT_EQ(bi.addrTransitions, id.addrTransitions);
}

} // namespace
} // namespace sct::enc
