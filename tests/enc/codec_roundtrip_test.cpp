// Codec algebra contracts: every codec is exactly invertible on both
// data channels and on the address bus (the bus routes slave decoding
// through decode(encode(x)), so these round trips are what keeps the
// functional suites passing with a codec installed), the gray code
// moves exactly one wire per stride step, bus-invert respects its
// majority threshold, and the stateful bus-invert codec checkpoints
// through a CheckpointRegistry bit-identically mid-stream.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "bus/bus_codec.h"
#include "bus/ec_types.h"
#include "ckpt/checkpoint.h"
#include "enc/codecs.h"
#include "sim/random.h"

namespace sct::enc {
namespace {

using bus::EncodedWord;
using bus::Word;

TEST(GrayCode, ToFromInverseExhaustive16) {
  for (std::uint64_t v = 0; v < 0x10000; ++v) {
    EXPECT_EQ(fromGray(toGray(v)), v);
  }
}

TEST(GrayCode, ToFromInverseFuzz64) {
  sim::Xoshiro256 rng(0xC0DE);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next();
    EXPECT_EQ(fromGray(toGray(v)), v);
    EXPECT_EQ(toGray(fromGray(v)), v);
  }
}

TEST(GrayCode, AdjacentCodesDifferInOneBit) {
  for (std::uint64_t v = 0; v < 4096; ++v) {
    EXPECT_EQ(std::popcount(toGray(v) ^ toGray(v + 1)), 1) << v;
  }
}

TEST(CodecRoundtrip, AllCodecsInvertDataAndAddresses) {
  for (const std::string& name : codecNames()) {
    SCOPED_TRACE(name);
    const std::unique_ptr<bus::BusCodec> codec = makeCodec(name);
    sim::Xoshiro256 rng(0xF0F0 + name.size());
    for (int i = 0; i < 5000; ++i) {
      // Commit between draws so stateful codecs (bus-invert) walk a
      // real history rather than encoding against a frozen state.
      const Word w = rng.next32();
      const EncodedWord ew = codec->encodeWrite(w);
      EXPECT_EQ(codec->decodeWrite(ew), w);
      codec->commitWrite(ew);

      const Word r = rng.next32();
      const EncodedWord er = codec->encodeRead(r);
      EXPECT_EQ(codec->decodeRead(er), r);
      codec->commitRead(er);

      const bus::Address a = rng.next() & bus::kAddressMask;
      EXPECT_EQ(codec->decodeAddress(codec->encodeAddress(a)), a);
    }
  }
}

TEST(CodecRoundtrip, FactoryRejectsUnknownNames) {
  EXPECT_THROW(makeCodec("huffman"), std::invalid_argument);
}

TEST(GrayAddressCodec, StrideStepsToggleExactlyOneWire) {
  // The whole point of granular gray addressing: a sequential stream
  // with the granularity stride costs one EB_A transition per step.
  const GrayAddressCodec codec(4);
  for (bus::Address a = 0x1000; a < 0x1000 + 64 * 16; a += 16) {
    const std::uint64_t cur = codec.encodeAddress(a);
    const std::uint64_t nxt = codec.encodeAddress(a + 16);
    EXPECT_EQ(std::popcount(cur ^ nxt), 1) << std::hex << a;
  }
}

TEST(GrayAddressCodec, LowBitsPassThrough) {
  const GrayAddressCodec codec(4);
  for (bus::Address a : {bus::Address{0x1230}, bus::Address{0x1234},
                         bus::Address{0xFFFF'FFF7}}) {
    EXPECT_EQ(codec.encodeAddress(a) & 0xF, a & 0xF);
  }
}

TEST(BusInvertCodec, InvertsOnlyAboveMajorityThreshold) {
  BusInvertCodec codec;  // lastWrite starts at 0.
  // 17 toggles against 0 -> invert; driven word is the complement.
  const Word heavy = 0x0001'FFFF;
  const EncodedWord e = codec.encodeWrite(heavy);
  EXPECT_TRUE(e.invert);
  EXPECT_EQ(e.wire, static_cast<Word>(~heavy));
  // Exactly 16 toggles is a tie: plain binary must win (the EB_Inv
  // line itself would have to toggle, so ties never invert).
  const Word half = 0x0000'FFFF;
  const EncodedWord t = codec.encodeWrite(half);
  EXPECT_FALSE(t.invert);
  EXPECT_EQ(t.wire, half);
}

TEST(BusInvertCodec, PeekIsSideEffectFree) {
  // The bus re-peeks the encoding on every Wait-stretched poll cycle;
  // repeated peeks without a commit must agree.
  BusInvertCodec codec;
  const Word w = 0xDEAD'BEEF;
  const EncodedWord first = codec.encodeWrite(w);
  for (int i = 0; i < 4; ++i) {
    const EncodedWord again = codec.encodeWrite(w);
    EXPECT_EQ(again.wire, first.wire);
    EXPECT_EQ(again.invert, first.invert);
  }
  EXPECT_EQ(codec.lastWrite(), 0u);  // still the reset value
}

TEST(BusInvertCodec, ChannelsKeepIndependentHistories) {
  BusInvertCodec codec;
  codec.commitWrite({0xFFFF'FFFF, false});
  // The write history moved; the read history is still 0, so the same
  // payload encodes differently per channel.
  const Word w = 0xFFFF'FF00;  // 8 toggles vs all-ones, 24 vs zero
  EXPECT_FALSE(codec.encodeWrite(w).invert);
  EXPECT_TRUE(codec.encodeRead(w).invert);
}

TEST(LimitedWeightCodec, BoundsDrivenWeightAt16) {
  LimitedWeightCodec codec;
  sim::Xoshiro256 rng(0x11F7);
  for (int i = 0; i < 5000; ++i) {
    const Word w = rng.next32();
    const EncodedWord e = codec.encodeWrite(w);
    EXPECT_LE(std::popcount(e.wire), 16);
    EXPECT_EQ(codec.decodeWrite(e), w);
  }
}

TEST(BusInvertCkpt, MidStreamRestoreContinuesBitIdentical) {
  // Reference: one codec walks 400 draws uninterrupted. Probe: a
  // second codec walks the first 200, checkpoints through a registry,
  // and a THIRD (fresh) codec restores the snapshot and walks the
  // remaining 200. The restored codec's encodings must match the
  // reference exactly — the invert decision depends on the last driven
  // word, so any lost history shows up immediately.
  const auto draws = [] {
    std::vector<Word> v;
    sim::Xoshiro256 rng(0xB1B1);
    for (int i = 0; i < 400; ++i) v.push_back(rng.next32());
    return v;
  }();

  BusInvertCodec ref;
  std::vector<EncodedWord> want;
  for (const Word w : draws) {
    const EncodedWord e = ref.encodeWrite(w);
    ref.commitWrite(e);
    const EncodedWord r = ref.encodeRead(~w);
    ref.commitRead(r);
    want.push_back(e);
  }

  BusInvertCodec part;
  for (int i = 0; i < 200; ++i) {
    part.commitWrite(part.encodeWrite(draws[i]));
    part.commitRead(part.encodeRead(~draws[i]));
  }
  ckpt::CheckpointRegistry saveReg;
  saveReg.add("codec", part, part.ckptVersion());
  const ckpt::Snapshot snap = saveReg.saveAll();

  BusInvertCodec cont;
  ckpt::CheckpointRegistry loadReg;
  loadReg.add("codec", cont, cont.ckptVersion());
  loadReg.loadAll(snap);
  EXPECT_EQ(cont.lastWrite(), part.lastWrite());
  EXPECT_EQ(cont.lastRead(), part.lastRead());
  for (int i = 200; i < 400; ++i) {
    const EncodedWord e = cont.encodeWrite(draws[i]);
    EXPECT_EQ(e.wire, want[static_cast<std::size_t>(i)].wire) << i;
    EXPECT_EQ(e.invert, want[static_cast<std::size_t>(i)].invert) << i;
    cont.commitWrite(e);
    cont.commitRead(cont.encodeRead(~draws[i]));
  }
}

} // namespace
} // namespace sct::enc
