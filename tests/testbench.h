// Shared test fixtures: a small smart-card-like memory map (one
// zero-wait RAM window, one waited EEPROM-like window) instantiated for
// each bus layer, plus the shared parasitic database and energy model.
#ifndef SCT_TESTS_TESTBENCH_H
#define SCT_TESTS_TESTBENCH_H

#include <cstdint>
#include <vector>

#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "bus/tl2_bus.h"
#include "ref/energy.h"
#include "ref/gl_bus.h"
#include "ref/parasitics.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct::testbench {

inline const ref::ParasiticDb& parasitics() {
  static const ref::ParasiticDb db = ref::ParasiticDb::makeDefault();
  return db;
}

inline const ref::TransitionEnergyModel& energyModel() {
  static const ref::TransitionEnergyModel model(parasitics(),
                                                ref::ProcessParams{});
  return model;
}

inline bus::SlaveControl fastCtl() {
  bus::SlaveControl c;
  c.base = 0x0000;
  c.size = 0x2000;
  return c;
}

inline bus::SlaveControl waitedCtl() {
  bus::SlaveControl c;
  c.base = 0x8000;
  c.size = 0x2000;
  c.addrWait = 1;
  c.readWait = 2;
  c.writeWait = 3;
  c.burstBeatWait = 1;
  return c;
}

inline trace::TargetRegion fastRegion() {
  return trace::TargetRegion{0x0000, 0x2000, true, true, true};
}

inline trace::TargetRegion waitedRegion() {
  return trace::TargetRegion{0x8000, 0x2000, true, true, true};
}

inline std::vector<trace::TargetRegion> bothRegions() {
  return {fastRegion(), waitedRegion()};
}

/// Layer-1 testbench: clock + bus + the two memory slaves.
struct Tl1Bench {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  bus::Tl1Bus bus{clk, "ecbus"};
  bus::MemorySlave fast{"ram", fastCtl()};
  bus::MemorySlave waited{"eeprom", waitedCtl()};

  Tl1Bench() {
    bus.attach(fast);
    bus.attach(waited);
  }

  /// Replay a trace to completion; returns elapsed cycles.
  std::uint64_t run(const trace::BusTrace& t) {
    trace::ReplayMaster master(clk, "master", bus, bus, t);
    return master.runToCompletion();
  }
};

struct Tl2Bench {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  bus::Tl2Bus bus{clk, "ecbus_tl2"};
  bus::MemorySlave fast{"ram", fastCtl()};
  bus::MemorySlave waited{"eeprom", waitedCtl()};

  Tl2Bench() {
    bus.attach(fast);
    bus.attach(waited);
  }

  std::uint64_t run(const trace::BusTrace& t) {
    trace::Tl2ReplayMaster master(clk, "master", bus, t);
    return master.runToCompletion();
  }
};

struct RefBench {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  ref::GlBus bus{clk, "ecbus_gl", energyModel()};
  bus::MemorySlave fast{"ram", fastCtl()};
  bus::MemorySlave waited{"eeprom", waitedCtl()};

  RefBench() {
    bus.attach(fast);
    bus.attach(waited);
  }

  std::uint64_t run(const trace::BusTrace& t) {
    trace::ReplayMaster master(clk, "master", bus, bus, t);
    return master.runToCompletion();
  }
};

} // namespace sct::testbench

#endif // SCT_TESTS_TESTBENCH_H
