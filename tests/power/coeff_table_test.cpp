#include "power/coeff_table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sct::power {
namespace {

using bus::SignalId;

TEST(CoeffTableTest, DefaultsToZero) {
  SignalEnergyTable t;
  for (const auto& info : bus::kSignalTable) {
    EXPECT_DOUBLE_EQ(t.coeff_fJ(info.id), 0.0);
  }
}

TEST(CoeffTableTest, SetAndGet) {
  SignalEnergyTable t;
  t.setCoeff_fJ(SignalId::EB_A, 123.5);
  EXPECT_DOUBLE_EQ(t.coeff_fJ(SignalId::EB_A), 123.5);
  EXPECT_DOUBLE_EQ(t.energyFor(SignalId::EB_A, 4), 494.0);
}

TEST(CoeffTableTest, SaveLoadRoundTrip) {
  SignalEnergyTable t;
  double v = 10.0;
  for (const auto& info : bus::kSignalTable) {
    t.setCoeff_fJ(info.id, v);
    v += 3.25;
  }
  std::stringstream ss;
  t.save(ss);
  const SignalEnergyTable loaded = SignalEnergyTable::load(ss);
  EXPECT_EQ(t, loaded);
}

TEST(CoeffTableTest, LoadSkipsCommentsAndBlankLines) {
  std::stringstream ss("# comment\n\nEB_A 42.5\n");
  const SignalEnergyTable t = SignalEnergyTable::load(ss);
  EXPECT_DOUBLE_EQ(t.coeff_fJ(SignalId::EB_A), 42.5);
  EXPECT_DOUBLE_EQ(t.coeff_fJ(SignalId::EB_RData), 0.0);
}

TEST(CoeffTableTest, InvertLineRoundTripsThroughTextFormat) {
  // The EB_Inv codec sideband is a first-class bundle: it must appear
  // in the saved table text and survive a load like any data signal
  // (a coefficient database written before the bundle existed still
  // loads — missing signals keep their current value).
  SignalEnergyTable t;
  t.setCoeff_fJ(SignalId::EB_Inv, 7.75);
  std::stringstream ss;
  t.save(ss);
  EXPECT_NE(ss.str().find("EB_Inv 7.75"), std::string::npos);
  const SignalEnergyTable loaded = SignalEnergyTable::load(ss);
  EXPECT_DOUBLE_EQ(loaded.coeff_fJ(SignalId::EB_Inv), 7.75);
}

TEST(CoeffTableTest, LoadRejectsUnknownSignal) {
  std::stringstream ss("EB_BOGUS 1.0\n");
  EXPECT_THROW(SignalEnergyTable::load(ss), std::runtime_error);
}

TEST(CoeffTableTest, LoadRejectsMalformedLine) {
  std::stringstream ss("EB_A notanumber\n");
  EXPECT_THROW(SignalEnergyTable::load(ss), std::runtime_error);
}

} // namespace
} // namespace sct::power
