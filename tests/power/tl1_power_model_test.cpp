#include "power/tl1_power_model.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "power/characterizer.h"
#include "trace/workloads.h"

namespace sct::power {
namespace {

using bus::SignalId;
using testbench::RefBench;
using testbench::Tl1Bench;

/// Characterize once on the standard training workload.
const SignalEnergyTable& characterizedTable() {
  static const SignalEnergyTable table = [] {
    RefBench tb;
    Characterizer ch(testbench::energyModel());
    tb.bus.addFrameListener(ch);
    tb.run(trace::characterizationTrace(1234, 800,
                                        testbench::bothRegions()));
    return ch.buildTable();
  }();
  return table;
}

TEST(Tl1PowerModelTest, AccumulatesEnergyOnTraffic) {
  Tl1Bench tb;
  Tl1PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  tb.run(trace::randomMix(5, 50, testbench::bothRegions()));
  EXPECT_GT(pm.totalEnergy_fJ(), 0.0);
  EXPECT_GT(pm.transitions(SignalId::EB_A), 0u);
}

TEST(Tl1PowerModelTest, EnergyLastCycleTracksActivity) {
  Tl1Bench tb;
  Tl1PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);

  // Run a couple of idle cycles: no transitions, no energy.
  tb.clk.runCycles(3);
  EXPECT_DOUBLE_EQ(pm.energyLastCycle_fJ(), 0.0);

  trace::BusTrace t;
  trace::TraceEntry e;
  e.kind = bus::Kind::Write;
  e.address = 0x100;
  e.writeData[0] = 0xFFFFFFFF;
  t.append(e);
  trace::ReplayMaster master(tb.clk, "m", tb.bus, tb.bus, t);
  master.runToCompletion();
  EXPECT_GT(pm.totalEnergy_fJ(), 0.0);
}

TEST(Tl1PowerModelTest, IntervalMethodResetsMarker) {
  Tl1Bench tb;
  Tl1PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  tb.run(trace::randomMix(6, 20, testbench::bothRegions()));
  const double first = pm.energySinceLastCall_fJ();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(pm.energySinceLastCall_fJ(), 0.0);
  tb.run(trace::randomMix(7, 20, testbench::bothRegions()));
  EXPECT_GT(pm.energySinceLastCall_fJ(), 0.0);
}

TEST(Tl1PowerModelTest, TransitionCountsMatchReferenceExactly) {
  // The adapter reconstructs the layer-0 frames bit-exactly, so its
  // per-bundle transition counts must equal the reference counts.
  const auto workload =
      trace::randomMix(77, 200, testbench::bothRegions(),
                       trace::MixRatios{}, 2);
  Tl1Bench tl1;
  Tl1PowerModel pm(characterizedTable());
  tl1.bus.addObserver(pm);
  tl1.run(workload);

  RefBench gl;
  gl.run(workload);

  for (const auto& info : bus::kSignalTable) {
    EXPECT_EQ(pm.transitions(info.id),
              gl.bus.energy().transitions[static_cast<std::size_t>(
                  info.id)])
        << info.name;
  }
}

TEST(Tl1PowerModelTest, UnderestimatesReferenceOnSparserWorkload) {
  // Table 2 shape: with coefficients characterized on a dense training
  // mix, layer-1 estimation on a sparser verification workload loses
  // the per-cycle baseline of the extra idle cycles -> energy below the
  // reference.
  const auto workload = trace::verificationTrace(
      testbench::fastRegion(), testbench::waitedRegion());

  Tl1Bench tl1;
  Tl1PowerModel pm(characterizedTable());
  tl1.bus.addObserver(pm);
  tl1.run(workload);

  RefBench gl;
  gl.run(workload);

  const double ref = gl.bus.energy().total_fJ;
  const double est = pm.totalEnergy_fJ();
  EXPECT_LT(est, ref);
  EXPECT_GT(est, 0.5 * ref) << "error should stay within tens of percent";
}

TEST(Tl1PowerModelTest, EnergyScalesWithHammingWeight) {
  auto energyOfWrite = [](bus::Word value) {
    Tl1Bench tb;
    Tl1PowerModel pm(characterizedTable());
    tb.bus.addObserver(pm);
    trace::BusTrace t;
    trace::TraceEntry e;
    e.kind = bus::Kind::Write;
    e.address = 0x40;
    e.writeData[0] = value;
    t.append(e);
    trace::ReplayMaster m(tb.clk, "m", tb.bus, tb.bus, t);
    m.runToCompletion();
    return pm.totalEnergy_fJ();
  };
  EXPECT_GT(energyOfWrite(0xFFFFFFFF), energyOfWrite(0x00000001));
}

} // namespace
} // namespace sct::power
