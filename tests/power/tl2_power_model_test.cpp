#include "power/tl2_power_model.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "power/characterizer.h"
#include "power/tl1_power_model.h"
#include "trace/workloads.h"

namespace sct::power {
namespace {

using bus::SignalId;
using testbench::RefBench;
using testbench::Tl1Bench;
using testbench::Tl2Bench;

const SignalEnergyTable& characterizedTable() {
  static const SignalEnergyTable table = [] {
    RefBench tb;
    Characterizer ch(testbench::energyModel());
    tb.bus.addFrameListener(ch);
    tb.run(trace::characterizationTrace(1234, 800,
                                        testbench::bothRegions()));
    return ch.buildTable();
  }();
  return table;
}

TEST(Tl2PowerModelTest, AccumulatesEnergyPerPhase) {
  Tl2Bench tb;
  Tl2PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  tb.run(trace::randomMix(5, 50, testbench::bothRegions()));
  EXPECT_GT(pm.totalEnergy_fJ(), 0.0);
  EXPECT_GT(pm.estimatedTransitions(SignalId::EB_A), 0.0);
  EXPECT_GT(pm.estimatedTransitions(SignalId::EB_AValid), 0.0);
}

TEST(Tl2PowerModelTest, IntervalInterfaceOnly) {
  Tl2Bench tb;
  Tl2PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  tb.run(trace::randomMix(6, 30, testbench::bothRegions()));
  const double first = pm.energySinceLastCall_fJ();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(pm.energySinceLastCall_fJ(), 0.0);
}

TEST(Tl2PowerModelTest, OverestimatesControlStrobesOnStreamingBursts) {
  // A streaming burst holds RdVal high at layers 0/1 (2 transitions per
  // burst); layer 2 charges one pulse per beat (8 transitions).
  trace::BusTrace t;
  trace::TraceEntry e;
  e.kind = bus::Kind::Read;
  e.address = 0x0;
  e.beats = 4;
  t.append(e);

  Tl2Bench tl2;
  Tl2PowerModel pm2(characterizedTable());
  tl2.bus.addObserver(pm2);
  tl2.run(t);

  Tl1Bench tl1;
  Tl1PowerModel pm1(characterizedTable());
  tl1.bus.addObserver(pm1);
  tl1.run(t);

  EXPECT_DOUBLE_EQ(pm2.estimatedTransitions(SignalId::EB_RdVal), 8.0);
  EXPECT_EQ(pm1.transitions(SignalId::EB_RdVal), 2u);
}

TEST(Tl2PowerModelTest, OverestimatesReferenceOnMixedWorkload) {
  // Table 2 shape: layer 2 lands above the reference (and above layer
  // 1) because of its per-phase control-signal and correlated-data
  // over-counts. Memories carry realistic (program-like) contents, as
  // in the paper's RTL-traced assembly workload.
  auto workload = trace::verificationTrace(testbench::fastRegion(),
                                           testbench::waitedRegion());
  trace::MixRatios mix;
  mix.instrFetch = 2;
  workload.append(
      trace::randomMixStyled(555, 120, testbench::bothRegions(), mix, 1,
                             trace::DataStyle::Realistic),
      160);
  auto fill = [](auto& bench) {
    trace::fillRealistic(bench.fast.data(), bench.fast.sizeBytes(), 99);
    trace::fillRealistic(bench.waited.data(), bench.waited.sizeBytes(), 77);
  };

  RefBench gl;
  fill(gl);
  gl.run(workload);
  Tl1Bench tl1;
  fill(tl1);
  Tl1PowerModel pm1(characterizedTable());
  tl1.bus.addObserver(pm1);
  tl1.run(workload);
  Tl2Bench tl2;
  fill(tl2);
  Tl2PowerModel pm2(characterizedTable());
  tl2.bus.addObserver(pm2);
  tl2.run(workload);

  const double ref = gl.bus.energy().total_fJ;
  EXPECT_GT(pm2.totalEnergy_fJ(), ref);
  EXPECT_GT(pm2.totalEnergy_fJ(), pm1.totalEnergy_fJ());
  EXPECT_LT(pm2.totalEnergy_fJ(), 2.0 * ref)
      << "error should stay within tens of percent";
}

TEST(Tl2PowerModelTest, ErrorTransactionChargesErrorLines) {
  Tl2Bench tb;
  Tl2PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  trace::BusTrace t;
  trace::TraceEntry e;
  e.kind = bus::Kind::Read;
  e.address = 0x30000;  // Unmapped.
  t.append(e);
  tb.run(t);
  EXPECT_DOUBLE_EQ(pm.estimatedTransitions(SignalId::EB_RBErr), 2.0);
}

TEST(Tl2PowerModelTest, WriteDataChargedPerBeatAgainstIdleBus) {
  Tl2Bench tb;
  Tl2PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  trace::BusTrace t;
  trace::TraceEntry e;
  e.kind = bus::Kind::Write;
  e.address = 0x0;
  e.beats = 4;
  e.writeData = {0x0000000F, 0x000000FF, 0x000000FF, 0x00000000};
  t.append(e);
  tb.run(t);
  // Per-beat popcounts: 4 + 8 + 8 + 0 — no inter-beat correlation.
  EXPECT_DOUBLE_EQ(pm.estimatedTransitions(SignalId::EB_WData), 20.0);
}

TEST(Tl2PowerModelTest, PhasesAreChargedWithoutCrossTransactionState) {
  Tl2Bench tb;
  Tl2PowerModel pm(characterizedTable());
  tb.bus.addObserver(pm);
  trace::BusTrace t;
  for (int i = 0; i < 3; ++i) {
    trace::TraceEntry rd;
    rd.kind = bus::Kind::Read;
    rd.address = 0x8010;  // Same address three times.
    t.append(rd);
  }
  tb.run(t);
  // Layer 0/1 would see the address bus toggle only once; the
  // phase-on-its-own model charges popcount(0x8010) = 2 per phase.
  EXPECT_DOUBLE_EQ(pm.estimatedTransitions(SignalId::EB_A), 6.0);
  // One write qualifier never driven, byte enables 0xF each phase.
  EXPECT_DOUBLE_EQ(pm.estimatedTransitions(SignalId::EB_Write), 0.0);
  EXPECT_DOUBLE_EQ(pm.estimatedTransitions(SignalId::EB_BE), 12.0);
}

} // namespace
} // namespace sct::power
