#include "power/characterizer.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "trace/workloads.h"

namespace sct::power {
namespace {

using bus::SignalId;
using testbench::RefBench;

TEST(CharacterizerTest, ProducesPositiveCoefficientsForActiveSignals) {
  RefBench tb;
  Characterizer ch(testbench::energyModel());
  tb.bus.addFrameListener(ch);
  const auto regions = testbench::bothRegions();
  tb.run(trace::characterizationTrace(42, 400, regions));

  const SignalEnergyTable table = ch.buildTable();
  for (const SignalId id : {SignalId::EB_A, SignalId::EB_RData,
                            SignalId::EB_WData, SignalId::EB_AValid,
                            SignalId::EB_ARdy, SignalId::EB_RdVal,
                            SignalId::EB_WDRdy, SignalId::EB_Last}) {
    EXPECT_GT(table.coeff_fJ(id), 0.0) << bus::signalName(id);
  }
}

TEST(CharacterizerTest, CoefficientAbsorbsCouplingSlopesAndHazards) {
  // The characterized average must exceed the plain mean ½CV² of the
  // bundle because it folds in coupling, short-circuit and hazard
  // energy (the per-cycle baseline deliberately stays out — it has no
  // transition to be attributed to).
  RefBench tb;
  Characterizer ch(testbench::energyModel());
  tb.bus.addFrameListener(ch);
  tb.run(trace::characterizationTrace(7, 400, testbench::bothRegions()));
  const SignalEnergyTable table = ch.buildTable();

  const auto& model = testbench::energyModel();
  const double meanHalfCV2 =
      model.halfCV2(testbench::parasitics().bundleCSelf_fF(SignalId::EB_A) /
                    bus::signalWidth(SignalId::EB_A));
  EXPECT_GT(table.coeff_fJ(SignalId::EB_A), meanHalfCV2);
}

TEST(CharacterizerTest, QuietSignalsFallBackToAnalyticEstimate) {
  RefBench tb;
  Characterizer ch(testbench::energyModel());
  tb.bus.addFrameListener(ch);
  // Read-only workload: EB_WData and EB_WBErr never toggle.
  trace::MixRatios readsOnly;
  readsOnly.singleWrite = 0;
  readsOnly.burstWrite = 0;
  tb.run(trace::randomMix(1, 100, testbench::bothRegions(), readsOnly));
  const SignalEnergyTable table = ch.buildTable();
  EXPECT_EQ(
      ch.accumulated().transitions[static_cast<std::size_t>(
          SignalId::EB_WData)],
      0u);
  EXPECT_GT(table.coeff_fJ(SignalId::EB_WData), 0.0);
}

TEST(CharacterizerTest, InvertLineGetsAnalyticFallbackCoefficient) {
  // The layer-0 reference bus drives no codec, so the EB_Inv sideband
  // never toggles during characterization — yet a codec-enabled TL1
  // run needs a nonzero coefficient for it, or bus-invert's control
  // overhead would be free energy-wise. The analytic ½CV² fallback
  // covers it from the parasitic database (the sideband wires are in
  // the database like any other bundle).
  RefBench tb;
  Characterizer ch(testbench::energyModel());
  tb.bus.addFrameListener(ch);
  tb.run(trace::characterizationTrace(17, 200, testbench::bothRegions()));
  EXPECT_EQ(ch.accumulated().transitions[static_cast<std::size_t>(
                SignalId::EB_Inv)],
            0u);
  const SignalEnergyTable table = ch.buildTable();
  EXPECT_GT(table.coeff_fJ(SignalId::EB_Inv), 0.0);
}

TEST(CharacterizerTest, DeterministicAcrossRuns) {
  auto runOnce = [] {
    RefBench tb;
    Characterizer ch(testbench::energyModel());
    tb.bus.addFrameListener(ch);
    tb.run(trace::characterizationTrace(99, 200, testbench::bothRegions()));
    return ch.buildTable();
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(CharacterizerTest, ResetClearsAccumulation) {
  RefBench tb;
  Characterizer ch(testbench::energyModel());
  tb.bus.addFrameListener(ch);
  tb.run(trace::characterizationTrace(3, 50, testbench::bothRegions()));
  EXPECT_GT(ch.accumulated().cycles, 0u);
  ch.reset();
  EXPECT_EQ(ch.accumulated().cycles, 0u);
  EXPECT_DOUBLE_EQ(ch.accumulated().total_fJ, 0.0);
}

} // namespace
} // namespace sct::power
