#include "power/budget.h"

#include <gtest/gtest.h>

namespace sct::power {
namespace {

PowerProfile flatProfile(std::size_t cycles, double fJPerCycle,
                         sim::Time periodPs = 30'000) {
  PowerProfile p(periodPs);
  for (std::size_t i = 0; i < cycles; ++i) {
    p.addSample(i, fJPerCycle);
  }
  return p;
}

TEST(BudgetTest, PresetsMatchTheStandards) {
  EXPECT_DOUBLE_EQ(gsm5V().maxPower_uW(), 50'000.0);  // 10 mA x 5 V.
  EXPECT_DOUBLE_EQ(iso7816Class3V().maxPower_uW(), 22'500.0);
  EXPECT_NEAR(contactless().maxPower_uW(), 5'100.0, 1.0);
}

TEST(BudgetTest, FlatProfileCurrents) {
  // 300 fJ per 30000 ps cycle = 0.01 µW bus share; x120 chip scale =
  // 1.2 µW; at 5 V that is 0.24 µA.
  const PowerProfile p = flatProfile(256, 300.0);
  BudgetChecker checker(gsm5V(), 120.0);
  const BudgetReport r = checker.check(p, 64);
  EXPECT_NEAR(r.meanCurrent_mA, 0.00024, 1e-6);
  EXPECT_NEAR(r.peakCurrent_mA, 0.00024, 1e-6);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.headroom, 1000.0);
  EXPECT_EQ(r.totalWindows, 4u);
}

TEST(BudgetTest, ViolationsAreCounted) {
  // A profile with one hot window: 5 mW-equivalent bus activity.
  PowerProfile p(30'000);
  for (std::size_t i = 0; i < 128; ++i) {
    // Window 1 (samples 64..127) burns 100x more.
    p.addSample(i, i < 64 ? 100.0 : 3'000'000.0);
  }
  BudgetChecker checker(contactless(), 120.0);
  const BudgetReport r = checker.check(p, 64);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violatingWindows, 1u);
  EXPECT_EQ(r.totalWindows, 2u);
  EXPECT_LT(r.headroom, 1.0);
}

TEST(BudgetTest, PeakWindowDominatesMean) {
  PowerProfile p(30'000);
  for (std::size_t i = 0; i < 128; ++i) {
    p.addSample(i, i < 64 ? 0.0 : 1000.0);
  }
  BudgetChecker checker(gsm5V(), 1.0);
  const BudgetReport r = checker.check(p, 64);
  EXPECT_GT(r.peakCurrent_mA, r.meanCurrent_mA * 1.9);
}

TEST(BudgetTest, EmptyProfileIsSafe) {
  PowerProfile p(30'000);
  BudgetChecker checker(gsm5V());
  const BudgetReport r = checker.check(p);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.totalWindows, 0u);
}

TEST(BudgetTest, ChipScaleScalesLinearly) {
  const PowerProfile p = flatProfile(64, 500.0);
  const BudgetReport a = BudgetChecker(gsm5V(), 100.0).check(p, 64);
  const BudgetReport b = BudgetChecker(gsm5V(), 200.0).check(p, 64);
  EXPECT_NEAR(b.meanCurrent_mA, 2.0 * a.meanCurrent_mA, 1e-12);
  EXPECT_NEAR(b.peakCurrent_mA, 2.0 * a.peakCurrent_mA, 1e-12);
}

} // namespace
} // namespace sct::power
