#include "power/budget.h"

#include <gtest/gtest.h>

namespace sct::power {
namespace {

PowerProfile flatProfile(std::size_t cycles, double fJPerCycle,
                         sim::Time periodPs = 30'000) {
  PowerProfile p(periodPs);
  for (std::size_t i = 0; i < cycles; ++i) {
    p.addSample(i, fJPerCycle);
  }
  return p;
}

TEST(BudgetTest, PresetsMatchTheStandards) {
  EXPECT_DOUBLE_EQ(gsm5V().maxPower_uW(), 50'000.0);  // 10 mA x 5 V.
  EXPECT_DOUBLE_EQ(iso7816Class3V().maxPower_uW(), 22'500.0);
  EXPECT_NEAR(contactless().maxPower_uW(), 5'100.0, 1.0);
}

TEST(BudgetTest, FlatProfileCurrents) {
  // 300 fJ per 30000 ps cycle = 0.01 µW bus share; x120 chip scale =
  // 1.2 µW; at 5 V that is 0.24 µA.
  const PowerProfile p = flatProfile(256, 300.0);
  BudgetChecker checker(gsm5V(), 120.0);
  const BudgetReport r = checker.check(p, 64);
  EXPECT_NEAR(r.meanCurrent_mA, 0.00024, 1e-6);
  EXPECT_NEAR(r.peakCurrent_mA, 0.00024, 1e-6);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.headroom, 1000.0);
  EXPECT_EQ(r.totalWindows, 4u);
}

TEST(BudgetTest, ViolationsAreCounted) {
  // A profile with one hot window: 5 mW-equivalent bus activity.
  PowerProfile p(30'000);
  for (std::size_t i = 0; i < 128; ++i) {
    // Window 1 (samples 64..127) burns 100x more.
    p.addSample(i, i < 64 ? 100.0 : 3'000'000.0);
  }
  BudgetChecker checker(contactless(), 120.0);
  const BudgetReport r = checker.check(p, 64);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violatingWindows, 1u);
  EXPECT_EQ(r.totalWindows, 2u);
  EXPECT_LT(r.headroom, 1.0);
}

TEST(BudgetTest, PeakWindowDominatesMean) {
  PowerProfile p(30'000);
  for (std::size_t i = 0; i < 128; ++i) {
    p.addSample(i, i < 64 ? 0.0 : 1000.0);
  }
  BudgetChecker checker(gsm5V(), 1.0);
  const BudgetReport r = checker.check(p, 64);
  EXPECT_GT(r.peakCurrent_mA, r.meanCurrent_mA * 1.9);
}

TEST(BudgetTest, EmptyProfileIsSafe) {
  PowerProfile p(30'000);
  BudgetChecker checker(gsm5V());
  const BudgetReport r = checker.check(p);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.totalWindows, 0u);
}

TEST(BudgetTest, ChipScaleScalesLinearly) {
  const PowerProfile p = flatProfile(64, 500.0);
  const BudgetReport a = BudgetChecker(gsm5V(), 100.0).check(p, 64);
  const BudgetReport b = BudgetChecker(gsm5V(), 200.0).check(p, 64);
  EXPECT_NEAR(b.meanCurrent_mA, 2.0 * a.meanCurrent_mA, 1e-12);
  EXPECT_NEAR(b.peakCurrent_mA, 2.0 * a.peakCurrent_mA, 1e-12);
}

// ---------------------------------------------------------------------
// RollingCurrent: the incremental (per-committed-cycle) counterpart of
// BudgetChecker::check, consumed live by the eh brownout detector.

TEST(RollingCurrent, WindowEdgeEvictsOldestExactly) {
  RollingCurrent rc(gsm5V(), 30'000, /*chipScale=*/1.0, /*window=*/4);
  rc.addCycle(1.0);
  rc.addCycle(2.0);
  rc.addCycle(3.0);
  EXPECT_EQ(rc.cycles(), 3u);
  // Partial window: divide by the samples actually present, not by 4.
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 6.0 / 3.0);
  rc.addCycle(4.0);
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 10.0 / 4.0);
  // 5th sample evicts the 1.0: window is now {2,3,4,5}.
  rc.addCycle(5.0);
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 14.0 / 4.0);
  // 6th evicts the 2.0.
  rc.addCycle(6.0);
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 18.0 / 4.0);
  EXPECT_EQ(rc.cycles(), 6u);
  EXPECT_EQ(rc.windowCycles(), 4u);
}

TEST(RollingCurrent, CurrentsFollowTheRepoConvention) {
  // 3000 fJ per 30'000 ps cycle = 0.1 µW; at 5 V that is 0.02 µA.
  RollingCurrent rc(gsm5V(), 30'000, 1.0, 8);
  for (int i = 0; i < 8; ++i) rc.addCycle(3000.0);
  EXPECT_DOUBLE_EQ(rc.current_mA(), 0.1 / (5.0 * 1000.0));
  EXPECT_DOUBLE_EQ(rc.meanCurrent_mA(), rc.current_mA());
  EXPECT_DOUBLE_EQ(rc.peakCurrent_mA(), rc.current_mA());
  EXPECT_FALSE(rc.overBudget());
}

TEST(RollingCurrent, PeakHoldsAfterTheBurstPasses) {
  RollingCurrent rc(contactless(), 30'000, 1.0, 4);
  for (int i = 0; i < 4; ++i) rc.addCycle(100.0);
  const double calm = rc.current_mA();
  for (int i = 0; i < 4; ++i) rc.addCycle(10'000.0);
  const double burst = rc.current_mA();
  EXPECT_GT(burst, calm);
  for (int i = 0; i < 8; ++i) rc.addCycle(100.0);
  // The rolling value decays back; the peak remembers the burst.
  EXPECT_DOUBLE_EQ(rc.current_mA(), calm);
  EXPECT_DOUBLE_EQ(rc.peakCurrent_mA(), burst);
  // Whole-run mean sits between the two.
  EXPECT_GT(rc.meanCurrent_mA(), calm);
  EXPECT_LT(rc.meanCurrent_mA(), burst);
}

TEST(RollingCurrent, ChipScaleAppliesPerSample) {
  RollingCurrent rc(gsm5V(), 30'000, /*chipScale=*/120.0, 4);
  rc.addCycle(10.0);
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 1200.0);
}

TEST(RollingCurrent, FeedReplaysAProfile) {
  const PowerProfile p = flatProfile(10, 500.0);
  RollingCurrent fed(gsm5V(), 30'000, 1.0, 4);
  fed.feed(p);
  RollingCurrent manual(gsm5V(), 30'000, 1.0, 4);
  for (int i = 0; i < 10; ++i) manual.addCycle(500.0);
  EXPECT_EQ(fed.cycles(), manual.cycles());
  EXPECT_DOUBLE_EQ(fed.current_mA(), manual.current_mA());
  EXPECT_DOUBLE_EQ(fed.peakCurrent_mA(), manual.peakCurrent_mA());
}

TEST(RollingCurrent, DegenerateWindowAndEmptyStateAreSafe) {
  RollingCurrent rc(gsm5V(), 30'000, 1.0, /*window=*/0);  // clamped to 1
  EXPECT_EQ(rc.windowCycles(), 1u);
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 0.0);
  EXPECT_DOUBLE_EQ(rc.current_mA(), 0.0);
  EXPECT_DOUBLE_EQ(rc.meanCurrent_mA(), 0.0);
  rc.addCycle(42.0);
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 42.0);
  rc.addCycle(8.0);  // window of 1: immediately replaced
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 8.0);
}

TEST(RollingCurrent, ResetWindowForgetsRecentButKeepsLifetime) {
  RollingCurrent rc(gsm5V(), 30'000, 1.0, 4);
  for (int i = 0; i < 6; ++i) rc.addCycle(1000.0);
  EXPECT_GT(rc.current_mA(), 0.0);
  const double peak = rc.peakCurrent_mA();
  const double mean = rc.meanCurrent_mA();
  // A power outage: the windowed view restarts from empty...
  rc.resetWindow();
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 0.0);
  EXPECT_DOUBLE_EQ(rc.current_mA(), 0.0);
  // ...while the lifetime counters survive.
  EXPECT_EQ(rc.cycles(), 6u);
  EXPECT_DOUBLE_EQ(rc.peakCurrent_mA(), peak);
  EXPECT_DOUBLE_EQ(rc.meanCurrent_mA(), mean);
  // Refilling averages over the samples present, exactly like a fresh
  // instance.
  rc.addCycle(500.0);
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 500.0);
  rc.addCycle(1500.0);
  EXPECT_DOUBLE_EQ(rc.windowMeanEnergy_fJ(), 1000.0);
}

TEST(RollingCurrent, OverBudgetTracksTheSpec) {
  // contactless: 1.7 mA at 3 V -> 5100 µW -> 5100 fJ/ps; with 30'000 ps
  // cycles the budget is 1.53e8 fJ per cycle. Feed double that.
  RollingCurrent rc(contactless(), 30'000, 1.0, 2);
  rc.addCycle(2.0 * 5100.0 * 30'000.0);
  EXPECT_TRUE(rc.overBudget());
  rc.addCycle(0.0);
  rc.addCycle(0.0);
  EXPECT_FALSE(rc.overBudget());
}

} // namespace
} // namespace sct::power
