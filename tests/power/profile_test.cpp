#include "power/profile.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "power/characterizer.h"
#include "trace/workloads.h"

namespace sct::power {
namespace {

TEST(PowerProfileTest, TotalsAndMeanPower) {
  PowerProfile p(/*clockPeriodPs=*/10);
  p.addSample(1, 100.0);
  p.addSample(2, 300.0);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.total_fJ(), 400.0);
  // 400 fJ over 2 cycles * 10 ps = 20 µW.
  EXPECT_DOUBLE_EQ(p.meanPower_uW(), 20.0);
  EXPECT_DOUBLE_EQ(p.peakPower_uW(), 30.0);
}

TEST(PowerProfileTest, EmptyProfileIsSafe) {
  PowerProfile p(10);
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.meanPower_uW(), 0.0);
  EXPECT_DOUBLE_EQ(p.peakPower_uW(), 0.0);
  EXPECT_DOUBLE_EQ(p.energyVariance_fJ2(), 0.0);
}

TEST(PowerProfileTest, WindowedEnergySumsChunks) {
  PowerProfile p(10);
  for (int i = 1; i <= 7; ++i) p.addSample(i, 10.0);
  const auto w = p.windowedEnergy_fJ(3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 30.0);
  EXPECT_DOUBLE_EQ(w[1], 30.0);
  EXPECT_DOUBLE_EQ(w[2], 10.0);  // Tail window.
  EXPECT_TRUE(p.windowedEnergy_fJ(0).empty());
}

TEST(PowerProfileTest, VarianceDetectsFlatVsSpiky) {
  PowerProfile flat(10);
  PowerProfile spiky(10);
  for (int i = 0; i < 10; ++i) {
    flat.addSample(i, 50.0);
    spiky.addSample(i, i % 2 == 0 ? 0.0 : 100.0);
  }
  EXPECT_DOUBLE_EQ(flat.energyVariance_fJ2(), 0.0);
  EXPECT_GT(spiky.energyVariance_fJ2(), 0.0);
}

TEST(PowerProfileTest, WindowedModeBoundsStoredSamples) {
  PowerProfile p(/*clockPeriodPs=*/10, /*windowCycles=*/4);
  p.reserve(8);
  for (std::uint64_t c = 0; c < 10; ++c) p.addSample(c, 10.0);
  // 10 cycles at window 4 -> windows starting at 0, 4, 8.
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.samples()[0].cycle, 0u);
  EXPECT_DOUBLE_EQ(p.samples()[0].energy_fJ, 40.0);
  EXPECT_EQ(p.samples()[1].cycle, 4u);
  EXPECT_DOUBLE_EQ(p.samples()[1].energy_fJ, 40.0);
  EXPECT_EQ(p.samples()[2].cycle, 8u);
  EXPECT_DOUBLE_EQ(p.samples()[2].energy_fJ, 20.0);  // Partial tail.
  // Totals and mean power track recorded cycles, not stored windows.
  EXPECT_DOUBLE_EQ(p.total_fJ(), 100.0);
  EXPECT_EQ(p.sampledCycles(), 10u);
  EXPECT_DOUBLE_EQ(p.meanPower_uW(), 100.0 / (10.0 * 10.0));
}

TEST(PowerProfileTest, WindowedModeHandlesCycleGaps) {
  PowerProfile p(10, 8);
  p.addSample(3, 1.0);
  p.addSample(5, 2.0);   // Same window as cycle 3.
  p.addSample(40, 4.0);  // Warp: far later window.
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.samples()[0].cycle, 0u);
  EXPECT_DOUBLE_EQ(p.samples()[0].energy_fJ, 3.0);
  EXPECT_EQ(p.samples()[1].cycle, 40u);
  EXPECT_DOUBLE_EQ(p.samples()[1].energy_fJ, 4.0);
}

TEST(PowerProfileTest, WindowOfOneKeepsCycleAccurateBehaviour) {
  PowerProfile a(10);
  PowerProfile b(10, 1);
  for (std::uint64_t c = 0; c < 5; ++c) {
    a.addSample(c, static_cast<double>(c));
    b.addSample(c, static_cast<double>(c));
  }
  EXPECT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.total_fJ(), b.total_fJ());
  EXPECT_DOUBLE_EQ(a.meanPower_uW(), b.meanPower_uW());
}

TEST(PowerProfileTest, ClearResetsSampledCycles) {
  PowerProfile p(10, 2);
  p.addSample(0, 1.0);
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.sampledCycles(), 0u);
  EXPECT_DOUBLE_EQ(p.meanPower_uW(), 0.0);
}

TEST(PowerProfileTest, RecorderCapturesOneSamplePerBusCycle) {
  testbench::Tl1Bench tb;
  testbench::RefBench glForTable;
  Characterizer ch(testbench::energyModel());
  glForTable.bus.addFrameListener(ch);
  glForTable.run(trace::characterizationTrace(1, 200,
                                              testbench::bothRegions()));
  Tl1PowerModel pm(ch.buildTable());
  PowerProfile profile(10);
  Tl1ProfileRecorder rec(pm, profile);
  tb.bus.addObserver(pm);
  tb.bus.addObserver(rec);

  const std::uint64_t cycles =
      tb.run(trace::randomMix(2, 30, testbench::bothRegions()));
  EXPECT_EQ(profile.size(), cycles);
  EXPECT_GT(profile.total_fJ(), 0.0);
  EXPECT_NEAR(profile.total_fJ(), pm.totalEnergy_fJ(), 1e-9);
}

TEST(PowerProfileTest, ClearResets) {
  PowerProfile p(10);
  p.addSample(0, 5.0);
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.total_fJ(), 0.0);
}

} // namespace
} // namespace sct::power
