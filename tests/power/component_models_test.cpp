#include "power/component_models.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "bus/tl1_bus.h"
#include "power/characterizer.h"
#include "power/tl1_power_model.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"
#include "trace/workloads.h"

namespace sct::power {
namespace {

const SignalEnergyTable& table() {
  static const SignalEnergyTable t = [] {
    testbench::RefBench tb;
    Characterizer ch(testbench::energyModel());
    tb.bus.addFrameListener(ch);
    tb.run(trace::characterizationTrace(1234, 500,
                                        testbench::bothRegions()));
    return ch.buildTable();
  }();
  return t;
}

TEST(ComponentModelsTest, CountersDriveTheModels) {
  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  Tl1PowerModel pm(table());
  card.bus().addObserver(pm);
  card.loadProgram(soc::assemble(R"(
    li   $s0, 0x10000300   # TRNG: draw 3 words
    lw   $t0, 0($s0)
    lw   $t0, 0($s0)
    lw   $t0, 0($s0)
    li   $s0, 0x10000200   # UART: send 2 bytes
    addiu $t0, $zero, 0x41
    sw   $t0, 0($s0)
  w1: lw   $t1, 4($s0)
    andi $t1, $t1, 1
    beq  $t1, $zero, w1
    sw   $t0, 0($s0)
    break
  )",
                                 soc::memmap::kRomBase));
  ASSERT_TRUE(card.run());

  ComponentCoefficients c;
  auto report = SocEnergyReport::forSoc(card, pm, c);
  // 3 TRNG words + 2 UART bytes, no crypto, timers disabled.
  EXPECT_DOUBLE_EQ(report.componentEnergy_fJ(),
                   3 * c.trngWord_fJ + 2 * c.uartByte_fJ);
  EXPECT_GT(report.busEnergy_fJ(), 0.0);
  EXPECT_DOUBLE_EQ(report.totalEnergy_fJ(),
                   report.busEnergy_fJ() + report.componentEnergy_fJ());
}

TEST(ComponentModelsTest, BreakdownSharesSumToOne) {
  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  Tl1PowerModel pm(table());
  card.bus().addObserver(pm);
  card.loadProgram(soc::assemble(R"(
    li   $s0, 0x10000400   # one crypto operation
    addiu $t0, $zero, 1
    sw   $t0, 0x18($s0)
  w:  lw   $t1, 0x1C($s0)
    bne  $t1, $zero, w
    break
  )",
                                 soc::memmap::kRomBase));
  ASSERT_TRUE(card.run());

  const auto report = SocEnergyReport::forSoc(card, pm);
  double shares = 0.0;
  bool sawCrypto = false;
  for (const auto& line : report.breakdown()) {
    shares += line.share;
    if (line.name == "crypto" && line.energy_fJ > 0.0) sawCrypto = true;
  }
  EXPECT_NEAR(shares, 1.0, 1e-9);
  EXPECT_TRUE(sawCrypto);
}

TEST(ComponentModelsTest, IntervalInterfaceDeltas) {
  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  ComponentCoefficients c;
  TrngEnergyModel model(card.trng(), c);
  EXPECT_DOUBLE_EQ(model.energySinceLastCall_fJ(), 0.0);
  bus::Word out = 0;
  card.trng().readBeat(soc::memmap::kTrngBase, bus::AccessSize::Word, out);
  EXPECT_DOUBLE_EQ(model.energySinceLastCall_fJ(), c.trngWord_fJ);
  EXPECT_DOUBLE_EQ(model.energySinceLastCall_fJ(), 0.0);
}

TEST(ComponentModelsTest, TimerTicksAccumulateEnergy) {
  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  ComponentCoefficients c;
  TimerEnergyModel model(card.timer(), c);
  bus::Word unused = 0;
  (void)unused;
  // Enable the timer directly and run some cycles.
  card.timer().writeBeat(soc::memmap::kTimerBase + 8, bus::AccessSize::Word,
                         0xF, 1);
  card.clock().runCycles(10);
  EXPECT_DOUBLE_EQ(model.totalEnergy_fJ(), 10 * c.timerTick_fJ);
}

} // namespace
} // namespace sct::power
