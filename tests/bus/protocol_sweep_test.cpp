// Parameterized protocol sweeps: latency formulas and cross-layer
// equality over the full (addrWait × dataWait × burstBeatWait × beats)
// grid — the systematic version of the hand-picked latency tests.
#include <gtest/gtest.h>

#include <tuple>

#include "../testbench.h"
#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "bus/tl2_bus.h"
#include "ref/gl_bus.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "trace/replay_master.h"

namespace sct::bus {
namespace {

// (addrWait, dataWait, burstBeatWait, beats)
using Params = std::tuple<unsigned, unsigned, unsigned, unsigned>;

class ProtocolSweepTest : public ::testing::TestWithParam<Params> {
 protected:
  SlaveControl makeCtl() const {
    const auto [aw, dw, bw, beats] = GetParam();
    (void)beats;
    SlaveControl c;
    c.base = 0x0;
    c.size = 0x1000;
    c.addrWait = aw;
    c.readWait = dw;
    c.writeWait = dw;
    c.burstBeatWait = bw;
    return c;
  }

  trace::BusTrace isolatedRead() const {
    const auto beats = std::get<3>(GetParam());
    trace::BusTrace t;
    trace::TraceEntry e;
    e.kind = Kind::Read;
    e.address = 0x100;
    e.beats = static_cast<std::uint8_t>(beats);
    t.append(e);
    return t;
  }

  trace::BusTrace backToBack(unsigned n) const {
    const auto beats = std::get<3>(GetParam());
    trace::BusTrace t;
    for (unsigned i = 0; i < n; ++i) {
      trace::TraceEntry e;
      e.kind = i % 2 == 0 ? Kind::Read : Kind::Write;
      e.address = 0x100 + 16 * i;
      e.beats = static_cast<std::uint8_t>(beats);
      if (e.kind == Kind::Write) {
        for (unsigned b = 0; b < beats; ++b) e.writeData[b] = i * 97 + b;
      }
      t.append(e);
    }
    return t;
  }
};

TEST_P(ProtocolSweepTest, Tl1IsolatedLatencyFormula) {
  const auto [aw, dw, bw, beats] = GetParam();
  sim::Kernel kernel;
  sim::Clock clk(kernel, "clk", 10);
  Tl1Bus bus(clk, "bus");
  MemorySlave mem("mem", makeCtl());
  bus.attach(mem);
  const trace::BusTrace t = isolatedRead();
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  const std::uint64_t elapsed = m.runToCompletion();
  // submit + aw + dw + beats-1 beats with bw gaps + pickup.
  EXPECT_EQ(elapsed, 2u + aw + dw + (beats - 1) * (1 + bw));
}

TEST_P(ProtocolSweepTest, Layer0MatchesTl1OnTheGrid) {
  const trace::BusTrace t = backToBack(12);
  sim::Kernel k1;
  sim::Clock c1(k1, "clk", 10);
  Tl1Bus tl1(c1, "tl1");
  MemorySlave m1("mem", makeCtl());
  tl1.attach(m1);
  trace::ReplayMaster r1(c1, "m", tl1, tl1, t);
  const std::uint64_t cyclesTl1 = r1.runToCompletion();

  sim::Kernel k0;
  sim::Clock c0(k0, "clk", 10);
  ref::GlBus gl(c0, "gl", testbench::energyModel());
  MemorySlave m0("mem", makeCtl());
  gl.attach(m0);
  trace::ReplayMaster r0(c0, "m", gl, gl, t);
  const std::uint64_t cyclesGl = r0.runToCompletion();

  EXPECT_EQ(cyclesTl1, cyclesGl);
}

TEST_P(ProtocolSweepTest, Tl2NeverUndercutsTl1OnStaticWaits) {
  const trace::BusTrace t = backToBack(12);
  sim::Kernel k1;
  sim::Clock c1(k1, "clk", 10);
  Tl1Bus tl1(c1, "tl1");
  MemorySlave m1("mem", makeCtl());
  tl1.attach(m1);
  trace::ReplayMaster r1(c1, "m", tl1, tl1, t);
  const std::uint64_t cyclesTl1 = r1.runToCompletion();

  sim::Kernel k2;
  sim::Clock c2(k2, "clk", 10);
  Tl2Bus tl2(c2, "tl2");
  MemorySlave m2("mem", makeCtl());
  tl2.attach(m2);
  trace::Tl2ReplayMaster r2(c2, "m", tl2, t);
  const std::uint64_t cyclesTl2 = r2.runToCompletion();

  EXPECT_GE(cyclesTl2, cyclesTl1);
  // The pipeline-fill penalty is bounded by one cycle per data-unit
  // idle period; for this workload that is at most the transaction
  // count.
  EXPECT_LE(cyclesTl2, cyclesTl1 + 12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolSweepTest,
    ::testing::Combine(::testing::Values(0u, 1u, 3u),   // addrWait
                       ::testing::Values(0u, 2u, 5u),   // dataWait
                       ::testing::Values(0u, 1u),       // burstBeatWait
                       ::testing::Values(1u, 2u, 4u))); // beats

} // namespace
} // namespace sct::bus
