#include "bus/tl2_bridge.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "bus/memory_slave.h"
#include "bus_test_util.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct::bus {
namespace {

struct BridgeFixture : ::testing::Test {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  BridgedTl2Bus bus{clk, "bridged"};
  MemorySlave ram{"ram", testbench::fastCtl()};
  MemorySlave waited{"eeprom", testbench::waitedCtl()};

  BridgeFixture() {
    bus.attach(ram);
    bus.attach(waited);
  }
};

TEST_F(BridgeFixture, SingleReadThroughTheBridge) {
  ram.pokeWord(0x40, 0xFEEDC0DE);
  trace::BusTrace t;
  trace::TraceEntry e;
  e.kind = Kind::Read;
  e.address = 0x40;
  t.append(e);
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  EXPECT_TRUE(m.done());
  EXPECT_EQ(m.requests()[0].data[0], 0xFEEDC0DEu);
}

TEST_F(BridgeFixture, BurstRoundTrip) {
  trace::BusTrace t;
  trace::TraceEntry wr;
  wr.kind = Kind::Write;
  wr.address = 0x80;
  wr.beats = 4;
  wr.writeData = {1, 2, 3, 4};
  t.append(wr);
  trace::TraceEntry rd;
  rd.kind = Kind::Read;
  rd.address = 0x80;
  rd.beats = 4;
  t.append(rd);
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  EXPECT_EQ(m.requests()[1].data, (std::array<Word, 4>{1, 2, 3, 4}));
}

TEST_F(BridgeFixture, SubWordLaneBehaviourMatchesLayer1) {
  ram.pokeWord(0x10, 0xAABBCCDD);
  trace::BusTrace t;
  trace::TraceEntry byteRead;
  byteRead.kind = Kind::Read;
  byteRead.address = 0x12;  // Lane 2: byte 0xBB.
  byteRead.size = AccessSize::Byte;
  t.append(byteRead);
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  // Lane presentation: the byte sits at bits [23:16].
  EXPECT_EQ((m.requests()[0].data[0] >> 16) & 0xFF, 0xBBu);
}

TEST_F(BridgeFixture, SubWordWriteMergesCorrectly) {
  ram.pokeWord(0x20, 0x11223344);
  trace::BusTrace t;
  trace::TraceEntry sb;
  sb.kind = Kind::Write;
  sb.address = 0x21;  // Lane 1.
  sb.size = AccessSize::Byte;
  sb.writeData[0] = 0x0000EE00;  // Lane-aligned, as a core drives it.
  t.append(sb);
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  EXPECT_EQ(ram.peekWord(0x20), 0x1122EE44u);
}

TEST_F(BridgeFixture, ErrorsPropagate) {
  trace::BusTrace t;
  trace::TraceEntry e;
  e.kind = Kind::Read;
  e.address = 0x40000;  // Unmapped.
  t.append(e);
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  EXPECT_EQ(m.stats().errors, 1u);
  EXPECT_EQ(bus.pendingCount(), 0u);
}

TEST_F(BridgeFixture, RandomWorkloadMatchesLayer1Results) {
  const auto workload =
      trace::randomMix(31, 120, testbench::bothRegions(),
                       trace::MixRatios{}, 2);
  trace::ReplayMaster m2(clk, "m2", bus, bus, workload);
  m2.runToCompletion();

  testbench::Tl1Bench tl1;
  trace::ReplayMaster m1(tl1.clk, "m1", tl1.bus, tl1.bus, workload);
  m1.runToCompletion();

  for (bus::Address a = 0; a < 0x2000; a += 4) {
    ASSERT_EQ(ram.peekWord(a), tl1.fast.peekWord(a)) << std::hex << a;
  }
  for (std::size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(m2.requests()[i].result, m1.requests()[i].result) << i;
  }
}

TEST_F(BridgeFixture, DrainedTracksInFlightAndResetIsDeterministic) {
  EXPECT_TRUE(bus.bridge().drained());
  bus.bridge().reset();  // Reset of an idle bridge is a no-op.

  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x8000;  // Waited window: several cycles in flight.
  BusStatus st = BusStatus::Wait;
  const auto submit = clk.onRising([&] { st = bus.read(req); });
  clk.runCycles(1);
  clk.removeHandler(submit);
  ASSERT_EQ(st, BusStatus::Request);
  EXPECT_FALSE(bus.bridge().drained());
  EXPECT_EQ(bus.pendingCount(), 1u);

  // Let the lower transaction complete; sync() posts the payload as
  // Finished and releases the slot — drained() again, before pickup.
  clk.runCycles(12);
  bus.bridge().sync();
  EXPECT_TRUE(bus.bridge().drained());
  EXPECT_EQ(req.stage, Tl1Stage::Finished);

  // reset() on the drained bridge must leave it fully reusable.
  bus.bridge().reset();
  const auto pickup = clk.onRising([&] { st = bus.read(req); });
  clk.runCycles(1);
  clk.removeHandler(pickup);
  EXPECT_EQ(st, BusStatus::Ok);
  EXPECT_EQ(req.stage, Tl1Stage::Idle);

  ram.pokeWord(0x100, 0x5EED5EED);
  trace::BusTrace t;
  trace::TraceEntry e;
  e.kind = Kind::Read;
  e.address = 0x100;
  t.append(e);
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  EXPECT_EQ(m.requests()[0].data[0], 0x5EED5EEDu);
}

TEST_F(BridgeFixture, AbandonedPayloadSlotIsNotAnsweredStale) {
  // Regression: a master that abandons an in-flight payload
  // (Tl1Request::reset()) and reuses the same object must get the NEW
  // transaction's result, never the stale slot's. The bridge finishes
  // the abandoned lower transaction out first (Wait), then re-enters
  // the payload as a fresh submit.
  ram.pokeWord(0x200, 0x0DDF00D5);
  waited.pokeWord(0x8040, 0x0BADF00D);

  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x8040;  // Slow read, soon abandoned.
  BusStatus st = BusStatus::Wait;
  std::uint64_t waits = 0;
  int phase = 0;
  const auto id = clk.onRising([&] {
    if (phase == 0) {
      ASSERT_EQ(bus.read(req), BusStatus::Request);
      phase = 1;
      return;
    }
    if (phase == 1) {
      req.reset();  // Abandon mid-flight...
      req.kind = Kind::Read;
      req.address = 0x200;  // ...and reuse the object for a fast read.
      phase = 2;
    }
    st = bus.read(req);
    if (st == BusStatus::Wait && req.stage == Tl1Stage::Idle) ++waits;
    if (st == BusStatus::Ok || st == BusStatus::Error) clk.requestBreak();
  });
  clk.runCycles(200);
  clk.removeHandler(id);

  EXPECT_EQ(st, BusStatus::Ok);
  EXPECT_EQ(req.data[0], 0x0DDF00D5u) << "must not see the stale 0x8040 data";
  EXPECT_GT(waits, 0u) << "abandoned slot must drain before reuse";
  EXPECT_EQ(bus.pendingCount(), 0u);
}

TEST_F(BridgeFixture, DecodeErrorsMatchDirectTl2BusAcrossAllClasses) {
  // Unmapped addresses must error identically whether the master sits
  // on the bridged Tl1 interface or drives the Tl2 bus directly.
  for (const Kind kind : {Kind::Read, Kind::Write, Kind::InstrFetch}) {
    trace::BusTrace t;
    trace::TraceEntry e;
    e.kind = kind;
    e.address = 0x40000;  // Unmapped.
    t.append(e);
    trace::ReplayMaster m(clk, "m", bus, bus, t);
    m.runToCompletion();
    EXPECT_TRUE(m.done());
    EXPECT_EQ(m.stats().errors, 1u) << "kind " << static_cast<int>(kind);
    EXPECT_EQ(m.requests()[0].result, BusStatus::Error);
    EXPECT_EQ(bus.pendingCount(), 0u);
  }

  testbench::Tl2Bench direct;
  std::uint8_t buf[4] = {};
  Tl2Request d;
  d.kind = Kind::Read;
  d.address = 0x40000;
  d.data = buf;
  d.bytes = 4;
  EXPECT_EQ(testutil::driveOne(direct.clk, direct.bus, d), BusStatus::Error);
}

TEST(BridgedSocTest, FirmwareRunsIdenticallyAtLayer2Timing) {
  // The full SoC on the bridged layer-2 bus: same results, slightly
  // more (estimated) cycles than layer 1.
  constexpr const char* kProgram = R"(
      li   $s0, 0x08000000
      addiu $t0, $zero, 20
      addiu $t1, $zero, 0
    loop:
      addu $t1, $t1, $t0
      sw   $t1, 0($s0)
      lw   $t2, 0($s0)
      addiu $s0, $s0, 4
      addiu $t0, $t0, -1
      bne  $t0, $zero, loop
      break
  )";
  soc::SmartCardSoC<Tl1Bus> l1{soc::SocConfig{}};
  l1.loadProgram(soc::assemble(kProgram, soc::memmap::kRomBase));
  ASSERT_TRUE(l1.run());

  soc::SmartCardSoC<BridgedTl2Bus> l2{soc::SocConfig{}};
  l2.loadProgram(soc::assemble(kProgram, soc::memmap::kRomBase));
  ASSERT_TRUE(l2.run());
  ASSERT_FALSE(l2.cpu().faulted());

  for (unsigned i = 0; i < 20; ++i) {
    EXPECT_EQ(l2.ram().peekWord(soc::memmap::kRamBase + 4 * i),
              l1.ram().peekWord(soc::memmap::kRamBase + 4 * i));
  }
  EXPECT_GE(l2.cpu().stats().cycles, l1.cpu().stats().cycles);
  const double drift =
      static_cast<double>(l2.cpu().stats().cycles) /
      static_cast<double>(l1.cpu().stats().cycles);
  EXPECT_LT(drift, 1.6) << "layer-2 timing should stay in the same band";
}

} // namespace
} // namespace sct::bus
