#include "bus/decoder.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bus/memory_slave.h"

namespace sct::bus {
namespace {

SlaveControl window(Address base, Address size) {
  SlaveControl c;
  c.base = base;
  c.size = size;
  return c;
}

TEST(DecoderTest, DecodesRegisteredWindows) {
  AddressDecoder d;
  MemorySlave rom("rom", window(0x0000, 0x1000));
  MemorySlave ram("ram", window(0x2000, 0x800));
  EXPECT_EQ(d.attach(rom), 0);
  EXPECT_EQ(d.attach(ram), 1);
  EXPECT_EQ(d.decode(0x0000), 0);
  EXPECT_EQ(d.decode(0x0FFF), 0);
  EXPECT_EQ(d.decode(0x1000), -1);
  EXPECT_EQ(d.decode(0x2000), 1);
  EXPECT_EQ(d.decode(0x27FF), 1);
  EXPECT_EQ(d.decode(0x2800), -1);
}

TEST(DecoderTest, RejectsOverlaps) {
  AddressDecoder d;
  MemorySlave a("a", window(0x1000, 0x1000));
  MemorySlave b("b", window(0x1800, 0x1000));
  d.attach(a);
  EXPECT_THROW(d.attach(b), std::invalid_argument);
}

TEST(DecoderTest, RejectsContainedOverlap) {
  AddressDecoder d;
  MemorySlave a("a", window(0x1000, 0x1000));
  MemorySlave b("b", window(0x1400, 0x100));
  d.attach(a);
  EXPECT_THROW(d.attach(b), std::invalid_argument);
}

TEST(DecoderTest, AdjacentWindowsAreFine) {
  AddressDecoder d;
  MemorySlave a("a", window(0x1000, 0x1000));
  MemorySlave b("b", window(0x2000, 0x1000));
  d.attach(a);
  EXPECT_NO_THROW(d.attach(b));
}

TEST(DecoderTest, RejectsWindowBeyond36Bits) {
  AddressDecoder d;
  SlaveControl c = window(kAddressMask - 0x10, 0x100);
  EXPECT_THROW(
      {
        MemorySlave s("s", c);
        d.attach(s);
      },
      std::invalid_argument);
}

TEST(DecoderTest, DecodeMasksTo36Bits) {
  AddressDecoder d;
  MemorySlave a("a", window(0x1000, 0x1000));
  d.attach(a);
  // Bit 36 and above are ignored by the decoder.
  EXPECT_EQ(d.decode((Address{1} << 36) | 0x1000), 0);
}

TEST(DecoderTest, SelectMaskIsOneHot) {
  EXPECT_EQ(AddressDecoder::selectMask(-1), 0u);
  EXPECT_EQ(AddressDecoder::selectMask(0), 0x1u);
  EXPECT_EQ(AddressDecoder::selectMask(3), 0x8u);
  EXPECT_EQ(AddressDecoder::selectMask(7), 0x80u);
  EXPECT_EQ(AddressDecoder::selectMask(12), 0x80u);  // Saturates.
}

TEST(DecoderTest, SlaveAccessors) {
  AddressDecoder d;
  MemorySlave a("a", window(0x0, 0x100));
  d.attach(a);
  EXPECT_EQ(d.slaveCount(), 1u);
  EXPECT_EQ(d.slave(0).name(), "a");
}

} // namespace
} // namespace sct::bus
