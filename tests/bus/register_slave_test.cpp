#include "bus/register_slave.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sct::bus {
namespace {

SlaveControl window(Address base, Address size) {
  SlaveControl c;
  c.base = base;
  c.size = size;
  return c;
}

TEST(RegisterSlaveTest, StorageRegisterRoundTrip) {
  RegisterSlave s("sfr", window(0x8000, 0x100));
  Word reg = 0;
  s.defineStorageRegister(0x10, "DATA", reg);
  EXPECT_EQ(s.writeBeat(0x8010, AccessSize::Word, 0xF, 0x12345678),
            BusStatus::Ok);
  EXPECT_EQ(reg, 0x12345678u);
  Word out = 0;
  EXPECT_EQ(s.readBeat(0x8010, AccessSize::Word, out), BusStatus::Ok);
  EXPECT_EQ(out, 0x12345678u);
}

TEST(RegisterSlaveTest, HandlersAreInvoked) {
  RegisterSlave s("sfr", window(0, 0x100));
  int reads = 0;
  Word lastWrite = 0;
  s.defineRegister(
      0x0, "CTRL", [&] { ++reads; return Word{0xA5}; },
      [&](Word v) { lastWrite = v; });
  Word out = 0;
  EXPECT_EQ(s.readBeat(0x0, AccessSize::Word, out), BusStatus::Ok);
  EXPECT_EQ(out, 0xA5u);
  EXPECT_EQ(reads, 1);
  EXPECT_EQ(s.writeBeat(0x0, AccessSize::Word, 0xF, 0x42), BusStatus::Ok);
  EXPECT_EQ(lastWrite, 0x42u);
}

TEST(RegisterSlaveTest, UnmappedOffsetErrors) {
  RegisterSlave s("sfr", window(0, 0x100));
  Word reg = 0;
  s.defineStorageRegister(0x0, "R0", reg);
  Word out = 0;
  EXPECT_EQ(s.readBeat(0x4, AccessSize::Word, out), BusStatus::Error);
  EXPECT_EQ(s.writeBeat(0x8, AccessSize::Word, 0xF, 1), BusStatus::Error);
}

TEST(RegisterSlaveTest, WriteOnlyRegisterErrorsOnRead) {
  RegisterSlave s("sfr", window(0, 0x100));
  Word sink = 0;
  s.defineRegister(0x0, "WO", nullptr, [&](Word v) { sink = v; });
  Word out = 0;
  EXPECT_EQ(s.readBeat(0x0, AccessSize::Word, out), BusStatus::Error);
  EXPECT_EQ(s.writeBeat(0x0, AccessSize::Word, 0xF, 7), BusStatus::Ok);
  EXPECT_EQ(sink, 7u);
}

TEST(RegisterSlaveTest, SubWordWriteMergesWithCurrentValue) {
  RegisterSlave s("sfr", window(0, 0x100));
  Word reg = 0xAABBCCDD;
  s.defineStorageRegister(0x0, "R0", reg);
  // Byte write to lane 1.
  EXPECT_EQ(s.writeBeat(0x1, AccessSize::Byte,
                        byteEnables(AccessSize::Byte, 0x1), 0x0000EE00),
            BusStatus::Ok);
  EXPECT_EQ(reg, 0xAABBEEDDu);
}

TEST(RegisterSlaveTest, DuplicateOffsetThrows) {
  RegisterSlave s("sfr", window(0, 0x100));
  Word a = 0;
  Word b = 0;
  s.defineStorageRegister(0x0, "A", a);
  EXPECT_THROW(s.defineStorageRegister(0x0, "B", b), std::invalid_argument);
}

TEST(RegisterSlaveTest, MisalignedOrOutOfWindowDefinitionThrows) {
  RegisterSlave s("sfr", window(0, 0x10));
  Word r = 0;
  EXPECT_THROW(s.defineStorageRegister(0x2, "X", r), std::invalid_argument);
  EXPECT_THROW(s.defineStorageRegister(0x10, "Y", r), std::invalid_argument);
}

TEST(RegisterSlaveTest, StretchInjectsWaits) {
  RegisterSlave s("copro", window(0, 0x100));
  Word reg = 0;
  s.defineStorageRegister(0x0, "R0", reg);
  s.stretchNextBeats(2);
  Word out = 0;
  EXPECT_EQ(s.readBeat(0x0, AccessSize::Word, out), BusStatus::Wait);
  EXPECT_EQ(s.readBeat(0x0, AccessSize::Word, out), BusStatus::Wait);
  EXPECT_EQ(s.readBeat(0x0, AccessSize::Word, out), BusStatus::Ok);
}

TEST(RegisterSlaveTest, BlockTransfersWalkRegisters) {
  RegisterSlave s("sfr", window(0, 0x100));
  Word r0 = 0x11111111;
  Word r1 = 0x22222222;
  s.defineStorageRegister(0x0, "R0", r0);
  s.defineStorageRegister(0x4, "R1", r1);
  std::uint8_t buf[8] = {};
  EXPECT_TRUE(s.readBlock(0x0, buf, 8));
  EXPECT_EQ(buf[0], 0x11);
  EXPECT_EQ(buf[4], 0x22);
  const std::uint8_t wr[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(s.writeBlock(0x0, wr, 8));
  EXPECT_EQ(r0, 0x04030201u);
  EXPECT_EQ(r1, 0x08070605u);
}

TEST(RegisterSlaveTest, BlockTransferFailsOnGap) {
  RegisterSlave s("sfr", window(0, 0x100));
  Word r0 = 0;
  s.defineStorageRegister(0x0, "R0", r0);
  std::uint8_t buf[8] = {};
  EXPECT_FALSE(s.readBlock(0x0, buf, 8));  // 0x4 is unmapped.
}

} // namespace
} // namespace sct::bus
