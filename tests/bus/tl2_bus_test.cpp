#include "bus/tl2_bus.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "bus_test_util.h"
#include "sim/clock.h"
#include "sim/kernel.h"

namespace sct::bus {
namespace {

using testutil::driveAll;
using testutil::driveOne;

SlaveControl window(Address base, Address size, unsigned aw = 0,
                    unsigned rw = 0, unsigned ww = 0, unsigned bw = 0) {
  SlaveControl c;
  c.base = base;
  c.size = size;
  c.addrWait = aw;
  c.readWait = rw;
  c.writeWait = ww;
  c.burstBeatWait = bw;
  return c;
}

struct Tl2Fixture : public ::testing::Test {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  Tl2Bus bus{clk, "ecbus_tl2"};
};

TEST_F(Tl2Fixture, IsolatedReadCostsOnePipelineFillCycleOverLayerOne) {
  MemorySlave ram("ram", window(0x1000, 0x1000));
  bus.attach(ram);
  ram.pokeWord(0x1010, 0xCAFEBABE);
  Word value = 0;
  Tl2Request req;
  req.kind = Kind::Read;
  req.address = 0x1010;
  req.data = reinterpret_cast<std::uint8_t*>(&value);
  req.bytes = 4;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, req, &elapsed), BusStatus::Ok);
  EXPECT_EQ(value, 0xCAFEBABEu);
  // Layer 1 takes 2 cycles; the idle data unit picks the transaction
  // up one estimated cycle after the address phase.
  EXPECT_EQ(elapsed, 3u);
}

TEST_F(Tl2Fixture, WritePointerPassing) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  Word value = 0x12345678;
  Tl2Request req;
  req.kind = Kind::Write;
  req.address = 0x40;
  req.data = reinterpret_cast<std::uint8_t*>(&value);
  req.bytes = 4;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Ok);
  EXPECT_EQ(ram.peekWord(0x40), 0x12345678u);
}

TEST_F(Tl2Fixture, BurstIsASingleTransaction) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  for (Address a = 0; a < 16; a += 4) {
    ram.pokeWord(a, static_cast<Word>(0xA0 + a));
  }
  std::array<std::uint8_t, 16> buf{};
  Tl2Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  req.data = buf.data();
  req.bytes = 16;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, req, &elapsed), BusStatus::Ok);
  EXPECT_EQ(elapsed, 6u);  // Layer 1's 4-beat burst (5) + pipeline fill.
  EXPECT_EQ(bus.stats().readTransactions, 1u);
  Word w = 0;
  std::memcpy(&w, &buf[8], 4);
  EXPECT_EQ(w, 0xA8u);
}

TEST_F(Tl2Fixture, WaitStatesFromControlAreEstimated) {
  MemorySlave ram("ram", window(0, 0x1000, /*aw=*/1, /*rw=*/2, /*ww=*/3,
                                /*bw=*/1));
  bus.attach(ram);
  std::array<std::uint8_t, 16> buf{};
  Tl2Request rd;
  rd.kind = Kind::Read;
  rd.address = 0x0;
  rd.data = buf.data();
  rd.bytes = 16;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, rd, &elapsed), BusStatus::Ok);
  // Address phase: aw+1 = 2 cycles; data phase rw + 4 beats + 3*bw = 9
  // cycles starting one cycle after the address phase; +1 pickup edge.
  EXPECT_EQ(elapsed, 12u);
}

TEST_F(Tl2Fixture, InstructionBitTravelsOnReadInterface) {
  MemorySlave rom("rom", window(0, 0x1000));
  bus.attach(rom);
  rom.pokeWord(0x80, 0xDEAD0001);
  Word v = 0;
  Tl2Request req;
  req.kind = Kind::InstrFetch;
  req.address = 0x80;
  req.data = reinterpret_cast<std::uint8_t*>(&v);
  req.bytes = 4;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Ok);
  EXPECT_EQ(v, 0xDEAD0001u);
  EXPECT_EQ(bus.stats().instrTransactions, 1u);
}

TEST_F(Tl2Fixture, InterfaceKindMismatchThrows) {
  Tl2Request req;
  req.kind = Kind::Write;
  EXPECT_THROW(bus.read(req), std::logic_error);
  req.kind = Kind::Read;
  EXPECT_THROW(bus.write(req), std::logic_error);
}

TEST_F(Tl2Fixture, NullPointerRejected) {
  Tl2Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  req.data = nullptr;
  req.bytes = 4;
  EXPECT_EQ(bus.read(req), BusStatus::Error);
}

TEST_F(Tl2Fixture, BadSizeRejected) {
  Word v = 0;
  Tl2Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  req.data = reinterpret_cast<std::uint8_t*>(&v);
  req.bytes = 3;
  EXPECT_EQ(bus.read(req), BusStatus::Error);
}

TEST_F(Tl2Fixture, DecodeMissFinishesWithError) {
  MemorySlave ram("ram", window(0x1000, 0x100));
  bus.attach(ram);
  Word v = 0;
  Tl2Request req;
  req.kind = Kind::Read;
  req.address = 0x9000;
  req.data = reinterpret_cast<std::uint8_t*>(&v);
  req.bytes = 4;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Error);
  EXPECT_EQ(bus.stats().errors, 1u);
}

TEST_F(Tl2Fixture, AccessRightViolationFinishesWithError) {
  SlaveControl c = window(0, 0x1000);
  c.canWrite = false;
  MemorySlave rom("rom", c);
  bus.attach(rom);
  Word v = 1;
  Tl2Request req;
  req.kind = Kind::Write;
  req.address = 0x0;
  req.data = reinterpret_cast<std::uint8_t*>(&v);
  req.bytes = 4;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Error);
}

TEST_F(Tl2Fixture, OutstandingLimitIsFourPerClass) {
  MemorySlave ram("ram", window(0, 0x1000, 0, /*rw=*/8));
  bus.attach(ram);
  std::array<Word, 6> vals{};
  std::vector<Tl2Request> reqs(6);
  int accepted = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].kind = Kind::Read;
    reqs[i].address = 0x0;
    reqs[i].data = reinterpret_cast<std::uint8_t*>(&vals[i]);
    reqs[i].bytes = 4;
    if (bus.read(reqs[i]) == BusStatus::Request) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
}

TEST_F(Tl2Fixture, ReadWriteOverlapKeepsParallelUnits) {
  // The same scenario as the layer-1 test
  // ReadAndWritePhasesRunInParallel (elapsed 5 there): layer 2 keeps
  // the parallel read/write units and loses only the pipeline-fill
  // cycle — the paper's systematic small over-estimation.
  MemorySlave ram("ram", window(0, 0x1000, 0, /*rw=*/2, /*ww=*/2));
  bus.attach(ram);
  Word rv = 0;
  Word wv = 0xBEEF;
  Tl2Request rd;
  rd.kind = Kind::Read;
  rd.address = 0x0;
  rd.data = reinterpret_cast<std::uint8_t*>(&rv);
  rd.bytes = 4;
  Tl2Request wr;
  wr.kind = Kind::Write;
  wr.address = 0x100;
  wr.data = reinterpret_cast<std::uint8_t*>(&wv);
  wr.bytes = 4;
  const std::uint64_t elapsed = driveAll(clk, bus, {&rd, &wr});
  EXPECT_GT(elapsed, 5u);  // Strictly worse than layer 1.
  EXPECT_EQ(elapsed, 6u);
}

TEST_F(Tl2Fixture, DynamicStretchIsInvisibleToLayer2) {
  // Layer 1 sees the EEPROM's dynamic write stretch; layer 2 sampled
  // only the static control wait states — an under-estimation source.
  MemorySlave eeprom("eeprom", window(0, 0x1000));
  eeprom.setExtraWritePerBeat(3);
  bus.attach(eeprom);
  Word v = 0x5A;
  Tl2Request wr;
  wr.kind = Kind::Write;
  wr.address = 0x10;
  wr.data = reinterpret_cast<std::uint8_t*>(&v);
  wr.bytes = 4;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, wr, &elapsed), BusStatus::Ok);
  EXPECT_EQ(elapsed, 3u);  // Layer 1 takes 5 for the same transfer.
  EXPECT_EQ(eeprom.peekWord(0x10), 0x5Au);
}

TEST_F(Tl2Fixture, BackToBackReadsLoseOnlyThePipelineFillCycle) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  std::array<Word, 4> vals{};
  std::vector<Tl2Request> reqs(4);
  std::vector<Tl2Request*> ptrs;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].kind = Kind::Read;
    reqs[i].address = 4 * i;
    reqs[i].data = reinterpret_cast<std::uint8_t*>(&vals[i]);
    reqs[i].bytes = 4;
    ptrs.push_back(&reqs[i]);
  }
  const std::uint64_t elapsed = driveAll(clk, bus, ptrs);
  EXPECT_EQ(elapsed, reqs.size() + 2);  // Layer 1: N + 1.
}

// Observer integration.
struct RecordingTl2Observer : Tl2Observer {
  std::vector<Tl2PhaseInfo> addr;
  std::vector<Tl2PhaseInfo> data;
  void addressPhaseDone(const Tl2PhaseInfo& i) override {
    addr.push_back(i);
  }
  void dataPhaseDone(const Tl2PhaseInfo& i) override { data.push_back(i); }
};

TEST_F(Tl2Fixture, ObserverSeesPhaseCompletionsOnly) {
  MemorySlave ram("ram", window(0, 0x1000, /*aw=*/2, /*rw=*/1));
  bus.attach(ram);
  RecordingTl2Observer obs;
  bus.addObserver(obs);
  Word v = 0;
  Tl2Request req;
  req.kind = Kind::Read;
  req.address = 0x30;
  req.data = reinterpret_cast<std::uint8_t*>(&v);
  req.bytes = 4;
  driveOne(clk, bus, req);
  ASSERT_EQ(obs.addr.size(), 1u);  // One event per phase, not per cycle.
  ASSERT_EQ(obs.data.size(), 1u);
  EXPECT_EQ(obs.addr[0].cycles, 3u);  // aw + 1.
  EXPECT_EQ(obs.data[0].cycles, 2u);  // rw + 1 beat.
  EXPECT_EQ(obs.data[0].bytes, 4u);
  EXPECT_EQ(obs.data[0].data, reinterpret_cast<std::uint8_t*>(&v));
}

/// Detaches itself — and optionally a later-registered peer — from
/// inside its first addressPhaseDone callback.
struct DetachingTl2Observer : Tl2Observer {
  DetachingTl2Observer(Tl2Bus& bus, Tl2Observer* peer)
      : bus(bus), peer(peer) {}
  void addressPhaseDone(const Tl2PhaseInfo&) override {
    ++addrCalls;
    bus.removeObserver(*this);
    if (peer != nullptr) bus.removeObserver(*peer);
  }
  void dataPhaseDone(const Tl2PhaseInfo&) override { ++dataCalls; }
  Tl2Bus& bus;
  Tl2Observer* peer;
  int addrCalls = 0;
  int dataCalls = 0;
};

TEST_F(Tl2Fixture, ObserverDetachDuringCallbackIsSafe) {
  // Removal mid-notification must not invalidate the iteration and
  // must take effect immediately: the removed observers see nothing
  // further, not even the rest of the current phase's fan-out.
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  RecordingTl2Observer before;  // Registered first: unaffected.
  RecordingTl2Observer after;   // Registered last: detached by proxy.
  DetachingTl2Observer det(bus, &after);
  bus.addObserver(before);
  bus.addObserver(det);
  bus.addObserver(after);

  Word v = 0;
  Tl2Request req;
  req.kind = Kind::Read;
  req.address = 0x10;
  req.data = reinterpret_cast<std::uint8_t*>(&v);
  req.bytes = 4;
  driveOne(clk, bus, req);

  EXPECT_EQ(before.addr.size(), 1u);
  EXPECT_EQ(before.data.size(), 1u);
  EXPECT_EQ(det.addrCalls, 1);  // Self-removed: no further callbacks.
  EXPECT_EQ(det.dataCalls, 0);
  EXPECT_TRUE(after.addr.empty());  // Removed before its turn.
  EXPECT_TRUE(after.data.empty());

  // The survivor keeps receiving phases on later transactions.
  Tl2Request req2 = req;
  req2.reset();
  req2.address = 0x20;
  driveOne(clk, bus, req2);
  EXPECT_EQ(before.addr.size(), 2u);
  EXPECT_EQ(before.data.size(), 2u);
  EXPECT_EQ(det.addrCalls, 1);
  EXPECT_TRUE(after.addr.empty());
}

/// Attaches a peer from inside its first addressPhaseDone callback.
struct AttachingTl2Observer : Tl2Observer {
  AttachingTl2Observer(Tl2Bus& bus, Tl2Observer& late) : bus(bus), late(late) {}
  void addressPhaseDone(const Tl2PhaseInfo&) override {
    if (!attached) {
      attached = true;
      bus.addObserver(late);
    }
  }
  Tl2Bus& bus;
  Tl2Observer& late;
  bool attached = false;
};

TEST_F(Tl2Fixture, ObserverAttachDuringCallbackStartsNextPhase) {
  // An addition mid-notification is first served from the next phase
  // on — it must not be invoked for the phase being fanned out.
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  RecordingTl2Observer late;
  AttachingTl2Observer att(bus, late);
  bus.addObserver(att);

  Word v = 0;
  Tl2Request req;
  req.kind = Kind::Read;
  req.address = 0x40;
  req.data = reinterpret_cast<std::uint8_t*>(&v);
  req.bytes = 4;
  driveOne(clk, bus, req);

  EXPECT_TRUE(late.addr.empty());  // Missed the triggering address phase.
  EXPECT_EQ(late.data.size(), 1u);  // Present from the data phase on.
}

TEST_F(Tl2Fixture, StatsAccumulate) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  std::array<std::uint8_t, 16> buf{};
  Tl2Request rd;
  rd.kind = Kind::Read;
  rd.address = 0x0;
  rd.data = buf.data();
  rd.bytes = 16;
  Tl2Request wr;
  wr.kind = Kind::Write;
  wr.address = 0x20;
  wr.data = buf.data();
  wr.bytes = 4;
  driveAll(clk, bus, {&rd, &wr});
  EXPECT_EQ(bus.stats().bytesRead, 16u);
  EXPECT_EQ(bus.stats().bytesWritten, 4u);
  EXPECT_EQ(bus.stats().transactions(), 2u);
}

} // namespace
} // namespace sct::bus
