#include "bus/memory_slave.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace sct::bus {
namespace {

SlaveControl window(Address base, Address size) {
  SlaveControl c;
  c.base = base;
  c.size = size;
  return c;
}

TEST(MemorySlaveTest, WordWriteThenRead) {
  MemorySlave m("ram", window(0x1000, 0x100));
  EXPECT_EQ(m.writeBeat(0x1010, AccessSize::Word, 0xF, 0xCAFEBABE),
            BusStatus::Ok);
  Word out = 0;
  EXPECT_EQ(m.readBeat(0x1010, AccessSize::Word, out), BusStatus::Ok);
  EXPECT_EQ(out, 0xCAFEBABEu);
}

TEST(MemorySlaveTest, ByteLanesHonourByteEnables) {
  MemorySlave m("ram", window(0, 0x100));
  m.writeBeat(0x10, AccessSize::Word, 0xF, 0x11223344);
  // Write one byte into lane 2 only.
  m.writeBeat(0x12, AccessSize::Byte, byteEnables(AccessSize::Byte, 0x12),
              0x00AA0000);
  Word out = 0;
  m.readBeat(0x10, AccessSize::Word, out);
  EXPECT_EQ(out, 0x11AA3344u);
}

TEST(MemorySlaveTest, HalfWordMerge) {
  MemorySlave m("ram", window(0, 0x100));
  m.writeBeat(0x20, AccessSize::Word, 0xF, 0xAABBCCDD);
  m.writeBeat(0x22, AccessSize::Half, byteEnables(AccessSize::Half, 0x22),
              0x12340000);
  Word out = 0;
  m.readBeat(0x20, AccessSize::Word, out);
  EXPECT_EQ(out, 0x1234CCDDu);
}

TEST(MemorySlaveTest, ReadReturnsWholeWordLane) {
  MemorySlave m("ram", window(0, 0x100));
  m.writeBeat(0x30, AccessSize::Word, 0xF, 0xDEADBEEF);
  // A byte read still drives the full word on the read bus; the master
  // extracts the lane.
  Word out = 0;
  EXPECT_EQ(m.readBeat(0x31, AccessSize::Byte, out), BusStatus::Ok);
  EXPECT_EQ(out, 0xDEADBEEFu);
}

TEST(MemorySlaveTest, OutOfWindowIsError) {
  MemorySlave m("ram", window(0x100, 0x10));
  Word out = 0;
  EXPECT_EQ(m.readBeat(0x0FF, AccessSize::Word, out), BusStatus::Error);
  EXPECT_EQ(m.readBeat(0x110, AccessSize::Word, out), BusStatus::Error);
  EXPECT_EQ(m.writeBeat(0x110, AccessSize::Word, 0xF, 0), BusStatus::Error);
}

TEST(MemorySlaveTest, BlockTransferRoundTrip) {
  MemorySlave m("ram", window(0x200, 0x100));
  std::array<std::uint8_t, 16> in{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  EXPECT_TRUE(m.writeBlock(0x210, in.data(), in.size()));
  std::array<std::uint8_t, 16> out{};
  EXPECT_TRUE(m.readBlock(0x210, out.data(), out.size()));
  EXPECT_EQ(in, out);
}

TEST(MemorySlaveTest, BlockTransferOutOfWindowFails) {
  MemorySlave m("ram", window(0x200, 0x10));
  std::array<std::uint8_t, 16> buf{};
  EXPECT_FALSE(m.readBlock(0x208, buf.data(), buf.size()));
  EXPECT_FALSE(m.writeBlock(0x1F8, buf.data(), buf.size()));
}

TEST(MemorySlaveTest, WriteStretchInsertsWaits) {
  MemorySlave m("eeprom", window(0, 0x100));
  m.setExtraWritePerBeat(2);
  EXPECT_EQ(m.writeBeat(0x0, AccessSize::Word, 0xF, 1), BusStatus::Wait);
  EXPECT_EQ(m.writeBeat(0x0, AccessSize::Word, 0xF, 1), BusStatus::Wait);
  EXPECT_EQ(m.writeBeat(0x0, AccessSize::Word, 0xF, 1), BusStatus::Ok);
  // The stretch restarts for the next beat.
  EXPECT_EQ(m.writeBeat(0x4, AccessSize::Word, 0xF, 2), BusStatus::Wait);
}

TEST(MemorySlaveTest, BackdoorLoadAndPeek) {
  MemorySlave m("rom", window(0x1000, 0x100));
  const std::array<std::uint8_t, 4> img{0x78, 0x56, 0x34, 0x12};
  m.load(0x1020, img.data(), img.size());
  EXPECT_EQ(m.peekWord(0x1020), 0x12345678u);
  m.pokeWord(0x1024, 0xA5A5A5A5);
  EXPECT_EQ(m.peekWord(0x1024), 0xA5A5A5A5u);
  EXPECT_THROW(m.peekWord(0x10FE), std::out_of_range);
  EXPECT_THROW(m.load(0x0FFF, img.data(), img.size()), std::out_of_range);
}

TEST(MemorySlaveTest, ZeroInitialized) {
  MemorySlave m("ram", window(0, 0x40));
  for (Address a = 0; a < 0x40; a += 4) EXPECT_EQ(m.peekWord(a), 0u);
}

} // namespace
} // namespace sct::bus
