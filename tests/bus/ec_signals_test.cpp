#include "bus/ec_signals.h"

#include <gtest/gtest.h>

namespace sct::bus {
namespace {

TEST(EcSignalsTest, TableIsConsistentWithEnum) {
  for (std::size_t i = 0; i < kSignalCount; ++i) {
    EXPECT_EQ(static_cast<std::size_t>(kSignalTable[i].id), i);
  }
}

TEST(EcSignalsTest, BusWidthsMatchTheEcInterface) {
  // 36-bit address, 32-bit separated read and write data buses.
  EXPECT_EQ(signalWidth(SignalId::EB_A), 36u);
  EXPECT_EQ(signalWidth(SignalId::EB_RData), 32u);
  EXPECT_EQ(signalWidth(SignalId::EB_WData), 32u);
  EXPECT_EQ(signalWidth(SignalId::EB_BE), 4u);
}

TEST(EcSignalsTest, SeparateErrorIndicationsExist) {
  EXPECT_EQ(signalName(SignalId::EB_RBErr), "EB_RBErr");
  EXPECT_EQ(signalName(SignalId::EB_WBErr), "EB_WBErr");
}

TEST(EcSignalsTest, MasksMatchWidths) {
  EXPECT_EQ(signalMask(SignalId::EB_Instr), 0x1u);
  EXPECT_EQ(signalMask(SignalId::EB_BE), 0xFu);
  EXPECT_EQ(signalMask(SignalId::EB_A), 0xFFFFFFFFFull);
  EXPECT_EQ(signalMask(SignalId::EB_RData), 0xFFFFFFFFull);
}

TEST(EcSignalsTest, TotalWireCount) {
  // 36+1+1+1+4+1+1+32+1+1+32+1+1+1+8+2 = 124 wires (the trailing 2
  // is the EB_Inv codec invert sideband — one line per channel).
  EXPECT_EQ(totalWireCount(), 124u);
}

TEST(EcSignalsTest, FrameMasksStoredValues) {
  SignalFrame f;
  f.set(SignalId::EB_BE, 0xFF);  // Only 4 bits defined.
  EXPECT_EQ(f.get(SignalId::EB_BE), 0xFu);
  f.set(SignalId::EB_A, ~std::uint64_t{0});
  EXPECT_EQ(f.get(SignalId::EB_A), kSignalTable[0].width == 36
                                       ? 0xFFFFFFFFFull
                                       : f.get(SignalId::EB_A));
}

TEST(EcSignalsTest, FrameDefaultsToZero) {
  SignalFrame f;
  for (std::size_t i = 0; i < kSignalCount; ++i) {
    EXPECT_EQ(f.get(static_cast<SignalId>(i)), 0u);
  }
}

TEST(EcSignalsTest, FrameEquality) {
  SignalFrame a;
  SignalFrame b;
  EXPECT_EQ(a, b);
  a.set(SignalId::EB_WData, 0xDEADBEEF);
  EXPECT_NE(a, b);
}

TEST(EcSignalsTest, HammingDistance) {
  EXPECT_EQ(hammingDistance(SignalId::EB_RData, 0x0, 0xF), 4u);
  EXPECT_EQ(hammingDistance(SignalId::EB_RData, 0xFF, 0xFF), 0u);
  EXPECT_EQ(hammingDistance(SignalId::EB_Instr, 0, 1), 1u);
  // Out-of-bundle bits are masked off.
  EXPECT_EQ(hammingDistance(SignalId::EB_BE, 0x10, 0x00), 0u);
}

} // namespace
} // namespace sct::bus
