// Failure injection: a slave that errors mid-transaction. The layers
// must agree on the outcome, the error must land on the right bus
// error line, and the models must stay live afterwards.
#include <gtest/gtest.h>

#include "../testbench.h"
#include "bus/ec_interfaces.h"
#include "bus/tl1_bus.h"
#include "bus/tl2_bus.h"
#include "ref/gl_bus.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "trace/replay_master.h"

namespace sct::bus {
namespace {

/// Memory-backed slave that raises a bus error on the Nth beat of the
/// Kth transaction (per direction), then behaves normally again.
class FaultInjectingSlave final : public EcSlave {
 public:
  FaultInjectingSlave(const SlaveControl& control, unsigned failOnBeat,
                      unsigned failOnCall)
      : control_(control),
        backing_("backing", control),
        failOnBeat_(failOnBeat),
        failOnCall_(failOnCall) {}

  std::string_view name() const override { return "faulty"; }
  const SlaveControl& control() const override { return control_; }

  BusStatus readBeat(Address addr, AccessSize size, Word& out) override {
    if (shouldFail(readBeats_)) return BusStatus::Error;
    ++readBeats_;
    return backing_.readBeat(addr, size, out);
  }

  BusStatus writeBeat(Address addr, AccessSize size, std::uint8_t be,
                      Word in) override {
    if (shouldFail(writeBeats_)) return BusStatus::Error;
    ++writeBeats_;
    return backing_.writeBeat(addr, size, be, in);
  }

  bool readBlock(Address addr, std::uint8_t* dst, std::size_t n) override {
    // Layer 2 sees the whole transfer as one call; a beat fault inside
    // the window fails the block.
    if (blockCalls_++ == failOnCall_) return false;
    return backing_.readBlock(addr, dst, n);
  }

  bool writeBlock(Address addr, const std::uint8_t* src,
                  std::size_t n) override {
    if (blockCalls_++ == failOnCall_) return false;
    return backing_.writeBlock(addr, src, n);
  }

 private:
  bool shouldFail(std::uint64_t& beatCounter) {
    const bool fail = beatCounter == failOnBeat_ && !fired_;
    if (fail) {
      fired_ = true;
      ++beatCounter;
    }
    return fail;
  }

  SlaveControl control_;
  MemorySlave backing_;
  std::uint64_t readBeats_ = 0;
  std::uint64_t writeBeats_ = 0;
  std::uint64_t blockCalls_ = 0;
  unsigned failOnBeat_;
  unsigned failOnCall_;
  bool fired_ = false;
};

SlaveControl window() {
  SlaveControl c;
  c.base = 0x0;
  c.size = 0x1000;
  return c;
}

trace::BusTrace burstsThenSingles() {
  trace::BusTrace t;
  trace::TraceEntry burst;
  burst.kind = Kind::Read;
  burst.address = 0x100;
  burst.beats = 4;
  t.append(burst);
  trace::TraceEntry single;
  single.kind = Kind::Read;
  single.address = 0x200;
  t.append(single);
  trace::TraceEntry wr;
  wr.kind = Kind::Write;
  wr.address = 0x300;
  wr.writeData[0] = 7;
  t.append(wr);
  return t;
}

TEST(FaultInjectionTest, MidBurstErrorTerminatesTransaction) {
  sim::Kernel kernel;
  sim::Clock clk(kernel, "clk", 10);
  Tl1Bus bus(clk, "bus");
  FaultInjectingSlave slave(window(), /*failOnBeat=*/2, /*failOnCall=*/99);
  bus.attach(slave);
  const trace::BusTrace t = burstsThenSingles();
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  ASSERT_TRUE(m.done());
  EXPECT_EQ(m.requests()[0].result, BusStatus::Error);
  EXPECT_EQ(m.requests()[0].beatsDone, 2u);  // Beats 0 and 1 landed.
  // The bus recovered: the following transactions succeed.
  EXPECT_EQ(m.requests()[1].result, BusStatus::Ok);
  EXPECT_EQ(m.requests()[2].result, BusStatus::Ok);
  EXPECT_EQ(bus.stats().readBusErrors, 1u);
  EXPECT_EQ(bus.stats().writeBusErrors, 0u);
}

TEST(FaultInjectionTest, Layer0AgreesWithLayer1OnMidBurstError) {
  const trace::BusTrace t = burstsThenSingles();
  sim::Kernel k1;
  sim::Clock c1(k1, "clk", 10);
  Tl1Bus tl1(c1, "tl1");
  FaultInjectingSlave s1(window(), 2, 99);
  tl1.attach(s1);
  trace::ReplayMaster m1(c1, "m", tl1, tl1, t);
  const std::uint64_t cycles1 = m1.runToCompletion();

  sim::Kernel k0;
  sim::Clock c0(k0, "clk", 10);
  ref::GlBus gl(c0, "gl", testbench::energyModel());
  FaultInjectingSlave s0(window(), 2, 99);
  gl.attach(s0);
  trace::ReplayMaster m0(c0, "m", gl, gl, t);
  const std::uint64_t cycles0 = m0.runToCompletion();

  EXPECT_EQ(cycles1, cycles0);
  for (std::size_t i = 0; i < m1.requests().size(); ++i) {
    EXPECT_EQ(m1.requests()[i].result, m0.requests()[i].result) << i;
  }
  EXPECT_EQ(gl.stats().readBusErrors, 1u);
}

TEST(FaultInjectionTest, Layer2BlockFaultYieldsErrorResult) {
  sim::Kernel kernel;
  sim::Clock clk(kernel, "clk", 10);
  Tl2Bus bus(clk, "bus");
  FaultInjectingSlave slave(window(), 99, /*failOnCall=*/0);
  bus.attach(slave);
  // Reads only: block-transfer order is then the issue order.
  trace::BusTrace t;
  trace::TraceEntry burst;
  burst.kind = Kind::Read;
  burst.address = 0x100;
  burst.beats = 4;
  t.append(burst);
  trace::TraceEntry single;
  single.kind = Kind::Read;
  single.address = 0x200;
  t.append(single);
  trace::Tl2ReplayMaster m(clk, "m", bus, t);
  m.runToCompletion();
  ASSERT_TRUE(m.done());
  EXPECT_EQ(m.requests()[0].result, BusStatus::Error);
  EXPECT_EQ(m.requests()[1].result, BusStatus::Ok);
  EXPECT_EQ(bus.stats().errors, 1u);
}

TEST(FaultInjectionTest, WriteErrorLandsOnWriteErrorLine) {
  sim::Kernel kernel;
  sim::Clock clk(kernel, "clk", 10);
  Tl1Bus bus(clk, "bus");
  FaultInjectingSlave slave(window(), /*failOnBeat=*/0, 99);
  bus.attach(slave);
  trace::BusTrace t;
  trace::TraceEntry wr;
  wr.kind = Kind::Write;
  wr.address = 0x10;
  wr.writeData[0] = 1;
  t.append(wr);
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  EXPECT_EQ(bus.stats().writeBusErrors, 1u);
  EXPECT_EQ(bus.stats().readBusErrors, 0u);
}

} // namespace
} // namespace sct::bus
