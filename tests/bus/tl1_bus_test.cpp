#include "bus/tl1_bus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "bus/memory_slave.h"
#include "bus_test_util.h"
#include "sim/clock.h"
#include "sim/kernel.h"

namespace sct::bus {
namespace {

using testutil::driveAll;
using testutil::driveOne;

SlaveControl window(Address base, Address size, unsigned aw = 0,
                    unsigned rw = 0, unsigned ww = 0, unsigned bw = 0) {
  SlaveControl c;
  c.base = base;
  c.size = size;
  c.addrWait = aw;
  c.readWait = rw;
  c.writeWait = ww;
  c.burstBeatWait = bw;
  return c;
}

struct Tl1Fixture : public ::testing::Test {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  Tl1Bus bus{clk, "ecbus"};
};

TEST_F(Tl1Fixture, SingleZeroWaitReadTakesTwoCycles) {
  MemorySlave ram("ram", window(0x1000, 0x1000));
  bus.attach(ram);
  ram.pokeWord(0x1010, 0xCAFEBABE);

  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x1010;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, req, &elapsed), BusStatus::Ok);
  EXPECT_EQ(req.data[0], 0xCAFEBABEu);
  // Submit edge + same-cycle addr/data completion + pickup edge.
  EXPECT_EQ(elapsed, 2u);
}

TEST_F(Tl1Fixture, WriteRoundTrip) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);

  Tl1Request wr;
  wr.kind = Kind::Write;
  wr.address = 0x20;
  wr.data[0] = 0x12345678;
  EXPECT_EQ(driveOne(clk, bus, wr), BusStatus::Ok);
  EXPECT_EQ(ram.peekWord(0x20), 0x12345678u);
}

TEST_F(Tl1Fixture, AddressWaitStatesStretchLatency) {
  MemorySlave ram("ram", window(0, 0x1000, /*aw=*/2));
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, req, &elapsed), BusStatus::Ok);
  EXPECT_EQ(elapsed, 4u);  // 2 + addrWait.
}

TEST_F(Tl1Fixture, ReadWaitStatesStretchLatency) {
  MemorySlave ram("ram", window(0, 0x1000, 0, /*rw=*/3));
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, req, &elapsed), BusStatus::Ok);
  EXPECT_EQ(elapsed, 5u);  // 2 + readWait.
}

TEST_F(Tl1Fixture, BurstReadLatency) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  for (Address a = 0; a < 16; a += 4) {
    ram.pokeWord(a, static_cast<Word>(0x100 + a));
  }
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  req.beats = 4;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, req, &elapsed), BusStatus::Ok);
  EXPECT_EQ(elapsed, 5u);  // 2 + 3 extra beats.
  for (unsigned b = 0; b < 4; ++b) {
    EXPECT_EQ(req.data[b], 0x100u + 4 * b);
  }
}

TEST_F(Tl1Fixture, BurstBeatWaitStates) {
  MemorySlave ram("ram", window(0, 0x1000, 0, 0, 0, /*bw=*/1));
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  req.beats = 4;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, req, &elapsed), BusStatus::Ok);
  EXPECT_EQ(elapsed, 8u);  // 2 + 3 * (1 + beatWait).
}

TEST_F(Tl1Fixture, InstrFetchUsesInstructionInterface) {
  MemorySlave rom("rom", window(0, 0x1000));
  bus.attach(rom);
  rom.pokeWord(0x40, 0xAABBCCDD);
  Tl1Request req;
  req.kind = Kind::InstrFetch;
  req.address = 0x40;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Ok);
  EXPECT_EQ(req.data[0], 0xAABBCCDDu);
  EXPECT_EQ(bus.stats().instrTransactions, 1u);
}

TEST_F(Tl1Fixture, KindInterfaceMismatchThrows) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::Write;
  EXPECT_THROW(bus.read(req), std::logic_error);
  EXPECT_THROW(bus.fetch(req), std::logic_error);
}

TEST_F(Tl1Fixture, DecodeMissIsBusError) {
  MemorySlave ram("ram", window(0x1000, 0x100));
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x5000;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Error);
  EXPECT_EQ(bus.stats().readBusErrors, 1u);
  EXPECT_EQ(bus.stats().writeBusErrors, 0u);
}

TEST_F(Tl1Fixture, WriteErrorLandsOnWriteBus) {
  MemorySlave ram("ram", window(0x1000, 0x100));
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::Write;
  req.address = 0x5000;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Error);
  EXPECT_EQ(bus.stats().writeBusErrors, 1u);
  EXPECT_EQ(bus.stats().readBusErrors, 0u);
}

TEST_F(Tl1Fixture, AccessRightViolationIsError) {
  SlaveControl c = window(0, 0x1000);
  c.canWrite = false;
  MemorySlave rom("rom", c);
  bus.attach(rom);
  Tl1Request req;
  req.kind = Kind::Write;
  req.address = 0x10;
  req.data[0] = 1;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Error);
  EXPECT_EQ(rom.peekWord(0x10), 0u);
}

TEST_F(Tl1Fixture, ExecRightViolationIsError) {
  SlaveControl c = window(0, 0x1000);
  c.canExec = false;
  MemorySlave ram("ram", c);
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::InstrFetch;
  req.address = 0x10;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Error);
}

TEST_F(Tl1Fixture, BurstCrossingWindowEndIsError) {
  MemorySlave ram("ram", window(0, 0x10));
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x8;
  req.beats = 4;  // Bytes 0x8..0x17 exceed the 0x10 window.
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Error);
}

TEST_F(Tl1Fixture, MisalignedRequestRejectedImmediately) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x2;
  req.size = AccessSize::Word;
  EXPECT_EQ(bus.read(req), BusStatus::Error);
  EXPECT_EQ(req.stage, Tl1Stage::Idle);  // Never entered the queues.
}

TEST_F(Tl1Fixture, InvalidBeatCountRejected) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  req.beats = 5;
  EXPECT_EQ(bus.read(req), BusStatus::Error);
}

TEST_F(Tl1Fixture, BackToBackReadsPipelineAtOnePerCycle) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  std::vector<Tl1Request> reqs(4);
  std::vector<Tl1Request*> ptrs;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].kind = Kind::Read;
    reqs[i].address = 4 * i;
    ptrs.push_back(&reqs[i]);
  }
  const std::uint64_t elapsed = driveAll(clk, bus, ptrs);
  EXPECT_EQ(elapsed, reqs.size() + 1);  // One data beat per cycle.
}

TEST_F(Tl1Fixture, ReadAndWritePhasesRunInParallel) {
  // One read and one write, both with 2 data wait states: layer 1
  // overlaps the read phase and the write phase, so the pair costs the
  // same as the slower of the two plus the pipelined address phase.
  MemorySlave ram("ram", window(0, 0x1000, 0, /*rw=*/2, /*ww=*/2));
  bus.attach(ram);
  Tl1Request rd;
  rd.kind = Kind::Read;
  rd.address = 0x0;
  Tl1Request wr;
  wr.kind = Kind::Write;
  wr.address = 0x100;
  wr.data[0] = 0xBEEF;
  const std::uint64_t elapsed = driveAll(clk, bus, {&rd, &wr});
  // Read: addr in cycle 1, beat in cycle 3. Write: addr in cycle 2,
  // beat in cycle 4 (waits in 2 and 3, overlapping the read phase).
  // Pickup of the write result in cycle 5.
  EXPECT_EQ(elapsed, 5u);
  EXPECT_EQ(rd.result, BusStatus::Ok);
  EXPECT_EQ(wr.result, BusStatus::Ok);
}

TEST_F(Tl1Fixture, OutstandingLimitIsFourPerClass) {
  MemorySlave ram("ram", window(0, 0x1000, 0, /*rw=*/8));
  bus.attach(ram);
  std::vector<Tl1Request> reqs(6);
  int accepted = 0;
  int waited = 0;
  for (auto& r : reqs) {
    r.kind = Kind::Read;
    r.address = 0x0;
    const BusStatus s = bus.read(r);
    if (s == BusStatus::Request) ++accepted;
    if (s == BusStatus::Wait) ++waited;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(waited, 2);
}

TEST_F(Tl1Fixture, LimitsAreIndependentPerClass) {
  MemorySlave ram("ram", window(0, 0x1000, 0, 4, 4));
  bus.attach(ram);
  std::vector<Tl1Request> rd(4);
  std::vector<Tl1Request> wr(4);
  std::vector<Tl1Request> in(4);
  for (auto& r : rd) {
    r.kind = Kind::Read;
    EXPECT_EQ(bus.read(r), BusStatus::Request);
  }
  for (auto& r : wr) {
    r.kind = Kind::Write;
    EXPECT_EQ(bus.write(r), BusStatus::Request);
  }
  for (auto& r : in) {
    r.kind = Kind::InstrFetch;
    EXPECT_EQ(bus.fetch(r), BusStatus::Request);
  }
}

TEST_F(Tl1Fixture, DynamicSlaveStretchExtendsDataPhase) {
  MemorySlave eeprom("eeprom", window(0, 0x1000));
  eeprom.setExtraWritePerBeat(3);
  bus.attach(eeprom);
  Tl1Request wr;
  wr.kind = Kind::Write;
  wr.address = 0x10;
  wr.data[0] = 0x5A;
  std::uint64_t elapsed = 0;
  EXPECT_EQ(driveOne(clk, bus, wr, &elapsed), BusStatus::Ok);
  EXPECT_EQ(elapsed, 5u);  // 2 + 3 dynamic wait cycles.
  EXPECT_EQ(eeprom.peekWord(0x10), 0x5Au);
}

TEST_F(Tl1Fixture, PayloadIsReusableAfterCompletion) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  ram.pokeWord(0x0, 0x11);
  ram.pokeWord(0x4, 0x22);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Ok);
  EXPECT_EQ(req.data[0], 0x11u);
  req.reset();
  req.address = 0x4;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Ok);
  EXPECT_EQ(req.data[0], 0x22u);
}

TEST_F(Tl1Fixture, StatsCountTransactionsAndBytes) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  Tl1Request rd;
  rd.kind = Kind::Read;
  rd.address = 0x0;
  rd.beats = 4;
  Tl1Request wr;
  wr.kind = Kind::Write;
  wr.address = 0x100;
  driveAll(clk, bus, {&rd, &wr});
  EXPECT_EQ(bus.stats().readTransactions, 1u);
  EXPECT_EQ(bus.stats().writeTransactions, 1u);
  EXPECT_EQ(bus.stats().bytesRead, 16u);
  EXPECT_EQ(bus.stats().bytesWritten, 4u);
  EXPECT_EQ(bus.stats().readBeats, 4u);
  EXPECT_EQ(bus.stats().writeBeats, 1u);
}

TEST_F(Tl1Fixture, IdleReflectsInFlightWork) {
  MemorySlave ram("ram", window(0, 0x1000, 0, 4));
  bus.attach(ram);
  EXPECT_TRUE(bus.idle());
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x0;
  bus.read(req);
  EXPECT_FALSE(bus.idle());
  driveOne(clk, bus, req);
  EXPECT_TRUE(bus.idle());
}

// Observer integration: verify phase events fire with correct payloads.
struct RecordingObserver : Tl1Observer {
  std::vector<AddressPhaseInfo> addr;
  std::vector<DataBeatInfo> reads;
  std::vector<DataBeatInfo> writes;
  void addressPhase(const AddressPhaseInfo& i) override { addr.push_back(i); }
  void readBeat(const DataBeatInfo& i) override { reads.push_back(i); }
  void writeBeat(const DataBeatInfo& i) override { writes.push_back(i); }
};

TEST_F(Tl1Fixture, ObserverSeesAddressPhaseEveryActiveCycle) {
  MemorySlave ram("ram", window(0, 0x1000, /*aw=*/2));
  bus.attach(ram);
  RecordingObserver obs;
  bus.addObserver(obs);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x10;
  driveOne(clk, bus, req);
  ASSERT_EQ(obs.addr.size(), 3u);  // 1 + 2 wait cycles.
  EXPECT_FALSE(obs.addr[0].accepted);
  EXPECT_FALSE(obs.addr[1].accepted);
  EXPECT_TRUE(obs.addr[2].accepted);
  EXPECT_EQ(obs.addr[0].address, 0x10u);
}

TEST_F(Tl1Fixture, ObserverSeesBurstBeats) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  RecordingObserver obs;
  bus.addObserver(obs);
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x20;
  req.beats = 4;
  driveOne(clk, bus, req);
  ASSERT_EQ(obs.reads.size(), 4u);
  for (unsigned b = 0; b < 4; ++b) {
    EXPECT_EQ(obs.reads[b].address, 0x20u + 4 * b);
    EXPECT_EQ(obs.reads[b].beatIndex, b);
    EXPECT_EQ(obs.reads[b].last, b == 3);
  }
}

TEST_F(Tl1Fixture, OutstandingTotalMatchesIdleAcrossTheTransactionLife) {
  MemorySlave slow("eeprom", window(0x8000, 0x1000, 1, 2, 3, 1));
  bus.attach(slow);
  EXPECT_EQ(bus.outstandingTotal(), 0u);
  EXPECT_TRUE(bus.idle());

  // Three classes in flight at once: the total counts all of them.
  Tl1Request rd, wr, in;
  rd.kind = Kind::Read;
  rd.address = 0x8000;
  wr.kind = Kind::Write;
  wr.address = 0x8040;
  wr.data[0] = 0x1;
  in.kind = Kind::InstrFetch;
  in.address = 0x8080;
  std::uint64_t maxOutstanding = 0;
  bool sawBusyNonIdle = false;
  const auto probe = clk.onRising([&] {
    maxOutstanding = std::max(maxOutstanding, bus.outstandingTotal());
    // The assert inside outstandingTotal() cross-checks the queue view
    // every call; here we just confirm the public coupling.
    sawBusyNonIdle = sawBusyNonIdle ||
                     (bus.outstandingTotal() > 0 && !bus.idle());
  });
  driveAll(clk, bus, {&rd, &wr, &in});
  clk.removeHandler(probe);

  EXPECT_EQ(rd.result, BusStatus::Ok);
  EXPECT_EQ(wr.result, BusStatus::Ok);
  EXPECT_EQ(in.result, BusStatus::Ok);
  EXPECT_GE(maxOutstanding, 3u);
  EXPECT_TRUE(sawBusyNonIdle);
  EXPECT_EQ(bus.outstandingTotal(), 0u);
  EXPECT_TRUE(bus.idle());
}

TEST_F(Tl1Fixture, SuspendParksTheProcessAndResumeRestoresService) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  ram.pokeWord(0x40, 0x600DBEEF);

  ASSERT_TRUE(bus.idle());
  bus.suspendProcess();
  EXPECT_TRUE(bus.suspended());
  const std::uint64_t cyclesBefore = bus.stats().cycles;
  clk.runCycles(50);  // A parked process counts no cycles.
  EXPECT_EQ(bus.stats().cycles, cyclesBefore);

  bus.resumeProcess();
  EXPECT_FALSE(bus.suspended());
  Tl1Request req;
  req.kind = Kind::Read;
  req.address = 0x40;
  EXPECT_EQ(driveOne(clk, bus, req), BusStatus::Ok);
  EXPECT_EQ(req.data[0], 0x600DBEEFu);
}

TEST_F(Tl1Fixture, ObserverRemovalStopsEvents) {
  MemorySlave ram("ram", window(0, 0x1000));
  bus.attach(ram);
  RecordingObserver obs;
  bus.addObserver(obs);
  Tl1Request a;
  a.kind = Kind::Read;
  a.address = 0x0;
  driveOne(clk, bus, a);
  const std::size_t count = obs.reads.size();
  bus.removeObserver(obs);
  a.reset();
  driveOne(clk, bus, a);
  EXPECT_EQ(obs.reads.size(), count);
}

} // namespace
} // namespace sct::bus
