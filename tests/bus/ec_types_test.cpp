#include "bus/ec_types.h"

#include <gtest/gtest.h>

namespace sct::bus {
namespace {

TEST(EcTypesTest, AddressMaskIs36Bits) {
  EXPECT_EQ(kAddressMask, 0xFFFFFFFFFull);
}

TEST(EcTypesTest, ByteEnablesForByteAccess) {
  EXPECT_EQ(byteEnables(AccessSize::Byte, 0x100), 0x1);
  EXPECT_EQ(byteEnables(AccessSize::Byte, 0x101), 0x2);
  EXPECT_EQ(byteEnables(AccessSize::Byte, 0x102), 0x4);
  EXPECT_EQ(byteEnables(AccessSize::Byte, 0x103), 0x8);
}

TEST(EcTypesTest, ByteEnablesForHalfAccess) {
  EXPECT_EQ(byteEnables(AccessSize::Half, 0x100), 0x3);
  EXPECT_EQ(byteEnables(AccessSize::Half, 0x102), 0xC);
}

TEST(EcTypesTest, ByteEnablesForWordAccess) {
  EXPECT_EQ(byteEnables(AccessSize::Word, 0x100), 0xF);
}

TEST(EcTypesTest, Alignment) {
  EXPECT_TRUE(isAligned(AccessSize::Byte, 0x101));
  EXPECT_TRUE(isAligned(AccessSize::Half, 0x102));
  EXPECT_FALSE(isAligned(AccessSize::Half, 0x101));
  EXPECT_TRUE(isAligned(AccessSize::Word, 0x104));
  EXPECT_FALSE(isAligned(AccessSize::Word, 0x102));
}

TEST(EcTypesTest, KindPredicates) {
  EXPECT_TRUE(isRead(Kind::InstrFetch));
  EXPECT_TRUE(isRead(Kind::Read));
  EXPECT_FALSE(isRead(Kind::Write));
}

TEST(EcTypesTest, ToStringCoversAllValues) {
  EXPECT_EQ(toString(Kind::InstrFetch), "instr");
  EXPECT_EQ(toString(Kind::Read), "read");
  EXPECT_EQ(toString(Kind::Write), "write");
  EXPECT_EQ(toString(BusStatus::Request), "request");
  EXPECT_EQ(toString(BusStatus::Wait), "wait");
  EXPECT_EQ(toString(BusStatus::Ok), "ok");
  EXPECT_EQ(toString(BusStatus::Error), "error");
  EXPECT_EQ(toString(AccessSize::Byte), "byte");
  EXPECT_EQ(toString(AccessSize::Half), "half");
  EXPECT_EQ(toString(AccessSize::Word), "word");
}

TEST(EcTypesTest, SlaveControlContains) {
  SlaveControl c;
  c.base = 0x1000;
  c.size = 0x100;
  EXPECT_FALSE(c.contains(0xFFF));
  EXPECT_TRUE(c.contains(0x1000));
  EXPECT_TRUE(c.contains(0x10FF));
  EXPECT_FALSE(c.contains(0x1100));
  EXPECT_EQ(c.end(), 0x1100u);
}

TEST(EcTypesTest, SlaveControlAccessRights) {
  SlaveControl c;
  c.canRead = true;
  c.canWrite = false;
  c.canExec = true;
  EXPECT_TRUE(c.allows(Kind::Read));
  EXPECT_FALSE(c.allows(Kind::Write));
  EXPECT_TRUE(c.allows(Kind::InstrFetch));
}

} // namespace
} // namespace sct::bus
