// Shared helpers for driving bus models in unit tests: simple masters
// that submit requests on rising clock edges and poll until completion,
// as a real EC master would.
#ifndef SCT_TESTS_BUS_TEST_UTIL_H
#define SCT_TESTS_BUS_TEST_UTIL_H

#include <cstdint>
#include <vector>

#include "bus/tl1_bus.h"
#include "bus/tl2_bus.h"
#include "sim/clock.h"

namespace sct::bus::testutil {

inline BusStatus invoke(Tl1Bus& bus, Tl1Request& req) {
  switch (req.kind) {
    case Kind::InstrFetch: return bus.fetch(req);
    case Kind::Read: return bus.read(req);
    case Kind::Write: return bus.write(req);
  }
  return BusStatus::Error;
}

inline BusStatus invoke(Tl2Bus& bus, Tl2Request& req) {
  return req.kind == Kind::Write ? bus.write(req) : bus.read(req);
}

/// Drives a set of requests to completion, submitting all of them on the
/// first rising edge (retrying while the bus answers Wait on accept) and
/// polling each until Ok/Error. Returns elapsed cycles from the first
/// submission edge to the cycle the last result was picked up.
template <typename Bus, typename Request>
std::uint64_t driveAll(sim::Clock& clk, Bus& bus,
                       std::vector<Request*> reqs,
                       std::uint64_t maxCycles = 100000) {
  const std::uint64_t start = clk.cycle();
  std::size_t done = 0;
  std::vector<bool> finished(reqs.size(), false);
  const auto id = clk.onRising([&] {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (finished[i]) continue;
      const BusStatus s = invoke(bus, *reqs[i]);
      if (s == BusStatus::Ok || s == BusStatus::Error) {
        finished[i] = true;
        ++done;
      }
    }
  });
  while (done < reqs.size() && clk.cycle() - start < maxCycles) {
    clk.runCycles(1);
  }
  clk.removeHandler(id);
  return clk.cycle() - start;
}

template <typename Bus, typename Request>
std::uint64_t driveAll(sim::Clock& clk, Bus& bus,
                       std::initializer_list<Request*> reqs,
                       std::uint64_t maxCycles = 100000) {
  return driveAll(clk, bus, std::vector<Request*>(reqs), maxCycles);
}

/// Convenience for a single request; returns the final status.
template <typename Bus, typename Request>
BusStatus driveOne(sim::Clock& clk, Bus& bus, Request& req,
                   std::uint64_t* elapsed = nullptr,
                   std::uint64_t maxCycles = 100000) {
  const std::uint64_t cycles =
      driveAll(clk, bus, std::vector<Request*>{&req}, maxCycles);
  if (elapsed != nullptr) *elapsed = cycles;
  return req.result;
}

} // namespace sct::bus::testutil

#endif // SCT_TESTS_BUS_TEST_UTIL_H
