#include "sim/random.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace sct::sim {
namespace {

TEST(RandomTest, DeterministicForEqualSeeds) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, BelowStaysInBound) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(RandomTest, RangeIsInclusive) {
  Xoshiro256 r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.range(3, 6));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5, 6}));
}

TEST(RandomTest, ChanceZeroAndCertain) {
  Xoshiro256 r(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0, 10));
    EXPECT_TRUE(r.chance(10, 10));
  }
}

TEST(RandomTest, BitsLookBalanced) {
  Xoshiro256 r(99);
  std::array<int, 64> ones{};
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    std::uint64_t v = r.next();
    for (int b = 0; b < 64; ++b) {
      if (v & (std::uint64_t{1} << b)) ++ones[static_cast<std::size_t>(b)];
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(ones[static_cast<std::size_t>(b)], n / 2 - n / 8);
    EXPECT_LT(ones[static_cast<std::size_t>(b)], n / 2 + n / 8);
  }
}

} // namespace
} // namespace sct::sim
