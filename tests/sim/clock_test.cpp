#include "sim/clock.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace sct::sim {
namespace {

TEST(ClockTest, RejectsBadPeriods) {
  Kernel k;
  EXPECT_THROW(Clock(k, "clk", 0), std::invalid_argument);
  EXPECT_THROW(Clock(k, "clk", 3), std::invalid_argument);
}

TEST(ClockTest, RisingThenFallingWithinEachCycle) {
  Kernel k;
  Clock clk(k, "clk", 10);
  std::vector<char> order;
  clk.onRising([&] { order.push_back('R'); });
  clk.onFalling([&] { order.push_back('F'); });
  clk.runCycles(3);
  EXPECT_EQ(order, (std::vector<char>{'R', 'F', 'R', 'F', 'R', 'F'}));
  EXPECT_EQ(clk.cycle(), 3u);
}

TEST(ClockTest, EdgeTimestampsFollowThePeriod) {
  Kernel k;
  Clock clk(k, "clk", 10);
  std::vector<Time> rises;
  std::vector<Time> falls;
  clk.onRising([&] { rises.push_back(k.now()); });
  clk.onFalling([&] { falls.push_back(k.now()); });
  clk.runCycles(3);
  EXPECT_EQ(rises, (std::vector<Time>{10, 20, 30}));
  EXPECT_EQ(falls, (std::vector<Time>{15, 25, 35}));
}

TEST(ClockTest, PriorityOrdersHandlersWithinEdge) {
  Kernel k;
  Clock clk(k, "clk", 10);
  std::vector<int> order;
  clk.onRising([&] { order.push_back(2); }, /*priority=*/5);
  clk.onRising([&] { order.push_back(1); }, /*priority=*/-5);
  clk.runCycles(1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ClockTest, EqualPriorityKeepsRegistrationOrder) {
  Kernel k;
  Clock clk(k, "clk", 10);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    clk.onRising([&order, i] { order.push_back(i); });
  }
  clk.runCycles(1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ClockTest, RemoveHandlerTakesEffect) {
  Kernel k;
  Clock clk(k, "clk", 10);
  int a = 0;
  int b = 0;
  const auto id = clk.onRising([&] { ++a; });
  clk.onRising([&] { ++b; });
  clk.runCycles(2);
  clk.removeHandler(id);
  clk.runCycles(2);
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 4);
}

TEST(ClockTest, RemoveFromInsideHandlerStopsFutureCycles) {
  Kernel k;
  Clock clk(k, "clk", 10);
  int count = 0;
  Clock::HandlerId id = 0;
  id = clk.onRising([&] {
    ++count;
    if (count == 3) clk.removeHandler(id);
  });
  clk.onFalling([] {});  // Keeps the clock alive independently.
  clk.runCycles(6);
  EXPECT_EQ(count, 3);
}

TEST(ClockTest, ClockStopsWhenNoHandlersRemain) {
  Kernel k;
  Clock clk(k, "clk", 10);
  int count = 0;
  Clock::HandlerId id = 0;
  id = clk.onRising([&] {
    ++count;
    if (count == 2) clk.removeHandler(id);
  });
  k.run();  // Terminates: the clock stops rescheduling itself.
  EXPECT_EQ(count, 2);
}

TEST(ClockTest, HaltAndResume) {
  Kernel k;
  Clock clk(k, "clk", 10);
  int count = 0;
  clk.onRising([&] { ++count; });
  clk.runCycles(2);
  clk.halt();
  k.runUntil(k.now() + 100);
  EXPECT_EQ(count, 2);
  clk.resume();
  clk.runCycles(2);
  EXPECT_EQ(count, 4);
}

TEST(ClockTest, RunCyclesCountsWholeCycles) {
  Kernel k;
  Clock clk(k, "clk", 8);
  int rising = 0;
  int falling = 0;
  clk.onRising([&] { ++rising; });
  clk.onFalling([&] { ++falling; });
  clk.runCycles(5);
  EXPECT_EQ(rising, 5);
  EXPECT_EQ(falling, 5);
}

} // namespace
} // namespace sct::sim
