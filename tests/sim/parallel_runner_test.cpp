// ParallelRunner: independent simulations fanned out over workers must
// produce results identical to a sequential sweep, keyed by task index.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/parallel_runner.h"

namespace {

using namespace sct;

// A small self-contained simulation parameterized by index: run a clock
// for (10 + i) cycles with a counting handler and report (cycles, time).
std::pair<std::uint64_t, sim::Time> miniSim(std::size_t i) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 10);
  std::uint64_t ticks = 0;
  clk.onRising([&] { ++ticks; });
  clk.runCycles(10 + i);
  return {ticks, k.now()};
}

TEST(ParallelRunner, DefaultThreadCountIsPositive) {
  EXPECT_GE(sim::ParallelRunner::defaultThreadCount(), 1u);
}

TEST(ParallelRunner, SubmitWaitRunsEveryTask) {
  sim::ParallelRunner pool(3);
  EXPECT_EQ(pool.threadCount(), 3u);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 50);
  // The pool is reusable after wait().
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 51);
}

TEST(ParallelRunner, RunIndexedMatchesSequentialSweep) {
  constexpr std::size_t kTasks = 24;

  std::vector<std::pair<std::uint64_t, sim::Time>> sequential(kTasks);
  sim::ParallelRunner::runIndexed(kTasks, 1, [&](std::size_t i) {
    sequential[i] = miniSim(i);
  });

  for (unsigned threads : {2u, 4u, 7u}) {
    std::vector<std::pair<std::uint64_t, sim::Time>> parallel(kTasks);
    sim::ParallelRunner::runIndexed(kTasks, threads, [&](std::size_t i) {
      parallel[i] = miniSim(i);
    });
    EXPECT_EQ(parallel, sequential) << threads << " threads";
  }

  // Spot-check the simulations did real work.
  EXPECT_EQ(sequential[0].first, 10u);
  EXPECT_EQ(sequential[kTasks - 1].first, 10u + kTasks - 1);
}

TEST(ParallelRunner, RunIndexedHandlesZeroTasks) {
  bool called = false;
  sim::ParallelRunner::runIndexed(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

} // namespace
