// The kernel's periodic fast path (inline activations driving
// sim::Clock) against the reference behaviour (every activation routed
// through the general event queue via Kernel::setEventQueueOnly). The
// two paths must be indistinguishable: same dispatch order, same
// timestamps, same cycle counts — including under handler add/remove,
// halt/resume and aperiodic events colliding with clock edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "sim/kernel.h"

namespace {

using namespace sct;

// Deterministic generator so the fast and reference runs replay the
// exact same decision sequence.
struct Lcg {
  std::uint64_t s;
  std::uint32_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(s >> 33);
  }
  std::uint32_t below(std::uint32_t n) { return next() % n; }
};

struct RunLog {
  std::vector<std::string> events;
  std::uint64_t cycles = 0;
  sim::Time endTime = 0;
};

std::string stamp(const char* tag, std::uint64_t cycle, sim::Time now) {
  return std::string(tag) + std::to_string(cycle) + "@" + std::to_string(now);
}

// Clock edges interleaved with aperiodic events at colliding times and
// distinct priorities, handlers registered and removed mid-run, plus a
// halt/resume in the middle.
RunLog structuredScenario(bool queueOnly) {
  sim::Kernel k;
  k.setEventQueueOnly(queueOnly);
  sim::Clock clk(k, "clk", 10);
  RunLog log;

  clk.onRising([&] { log.events.push_back(stamp("R", clk.cycle(), k.now())); });
  clk.onFalling(
      [&] { log.events.push_back(stamp("F", clk.cycle(), k.now())); });

  // Aperiodic events colliding with the first edges: priorities below,
  // equal to, and above the clock's (0), plus one mid-phase.
  for (int prio : {-1, 0, 1}) {
    k.scheduleAt(10, [&log, prio, &k] {
      log.events.push_back("E" + std::to_string(prio) + "@" +
                           std::to_string(k.now()));
    }, prio);
  }
  k.scheduleAt(12, [&log, &k] {
    log.events.push_back("mid@" + std::to_string(k.now()));
  });

  // A handler that adds another handler on cycle 3 and removes itself
  // on cycle 5.
  sim::Clock::HandlerId selfId = clk.onRising([&, firstRun = true]() mutable {
    if (clk.cycle() == 3 && firstRun) {
      firstRun = false;
      clk.onFalling([&] {
        log.events.push_back(stamp("f2_", clk.cycle(), k.now()));
      });
    }
    if (clk.cycle() == 5) clk.removeHandler(selfId);
    log.events.push_back(stamp("r2_", clk.cycle(), k.now()));
  });

  // Halt on cycle 6; an aperiodic event resumes two periods later.
  clk.onRising([&] {
    if (clk.cycle() == 6) {
      clk.halt();
      k.schedule(20, [&] {
        log.events.push_back("resume@" + std::to_string(k.now()));
        clk.resume();
      });
    }
  });

  // runUntil (not runCycles): the halt parks the clock until the
  // aperiodic resume event fires, which runCycles would never dispatch.
  k.runUntil(150);
  log.cycles = clk.cycle();
  log.endTime = k.now();
  return log;
}

// Randomized stress: handlers schedule bursts of aperiodic events at
// pseudorandom offsets and priorities; occasionally a one-shot handler
// registers and later removes itself.
RunLog stressScenario(bool queueOnly, std::uint64_t seed) {
  sim::Kernel k;
  k.setEventQueueOnly(queueOnly);
  sim::Clock clk(k, "clk", 10);
  RunLog log;
  Lcg rng{seed};

  clk.onFalling(
      [&] { log.events.push_back(stamp("F", clk.cycle(), k.now())); });
  clk.onRising([&] {
    log.events.push_back(stamp("R", clk.cycle(), k.now()));
    const std::uint32_t burst = rng.below(3);
    for (std::uint32_t i = 0; i < burst; ++i) {
      const sim::Time offset = rng.below(25);
      const int prio = static_cast<int>(rng.below(3)) - 1;
      k.schedule(offset, [&log, &k] {
        log.events.push_back("e@" + std::to_string(k.now()));
      }, prio);
    }
    if (rng.below(8) == 0) {
      auto id = std::make_shared<sim::Clock::HandlerId>();
      *id = clk.onFalling([&, id, left = 1 + rng.below(3)]() mutable {
        log.events.push_back(stamp("x", clk.cycle(), k.now()));
        if (--left == 0) clk.removeHandler(*id);
      });
    }
  });

  clk.runCycles(60);
  // Pick up stragglers scheduled past the last edge (bounded: the
  // clock re-arms forever, so a plain run() would never return).
  k.runUntil(700);
  log.cycles = clk.cycle();
  log.endTime = k.now();
  return log;
}

TEST(KernelFastpath, StructuredScenarioMatchesEventQueueReference) {
  const RunLog fast = structuredScenario(false);
  const RunLog reference = structuredScenario(true);
  EXPECT_EQ(fast.events, reference.events);
  EXPECT_EQ(fast.cycles, reference.cycles);
  EXPECT_EQ(fast.endTime, reference.endTime);
  // Sanity: the scenario actually exercised the interesting parts.
  EXPECT_GE(fast.cycles, 12u);
  EXPECT_NE(std::find(fast.events.begin(), fast.events.end(), "resume@80"),
            fast.events.end());
}

TEST(KernelFastpath, StressScenariosMatchEventQueueReference) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234567ULL}) {
    const RunLog fast = stressScenario(false, seed);
    const RunLog reference = stressScenario(true, seed);
    EXPECT_EQ(fast.events, reference.events) << "seed " << seed;
    EXPECT_EQ(fast.cycles, reference.cycles) << "seed " << seed;
    EXPECT_EQ(fast.endTime, reference.endTime) << "seed " << seed;
    EXPECT_GE(fast.cycles, 60u);
  }
}

// Direct check of the fast path's tie-breaking: an activation armed
// between two same-time, same-priority queue events dispatches between
// them, because the sequence number is allocated at arm time from the
// shared counter.
struct Probe final : sim::PeriodicProcess {
  std::vector<std::string>* log = nullptr;
  void fire() override { log->push_back("periodic"); }
};

TEST(KernelFastpath, ActivationSequencedWithQueueEvents) {
  sim::Kernel k;
  std::vector<std::string> log;
  Probe probe;
  probe.log = &log;
  const auto id = k.addPeriodic(probe);

  k.scheduleAt(100, [&] { log.push_back("before"); });
  k.armPeriodic(id, 100);
  k.scheduleAt(100, [&] { log.push_back("after"); });
  k.run();

  EXPECT_EQ(log, (std::vector<std::string>{"before", "periodic", "after"}));
  EXPECT_TRUE(k.empty());
  EXPECT_EQ(k.now(), 100u);
}

TEST(KernelFastpath, DisarmCancelsActivationOnBothPaths) {
  for (bool queueOnly : {false, true}) {
    sim::Kernel k;
    k.setEventQueueOnly(queueOnly);
    std::vector<std::string> log;
    Probe probe;
    probe.log = &log;
    const auto id = k.addPeriodic(probe);

    k.armPeriodic(id, 50);
    EXPECT_TRUE(k.periodicArmed(id));
    k.disarmPeriodic(id);
    EXPECT_FALSE(k.periodicArmed(id));
    // Re-arm at a different time: only the new activation fires.
    k.armPeriodic(id, 70);
    k.run();
    EXPECT_EQ(log.size(), 1u) << "queueOnly " << queueOnly;
    EXPECT_EQ(k.now(), 70u) << "queueOnly " << queueOnly;
  }
}

} // namespace
