// Clock re-entrancy and edge cases beyond the basic contract tests.
#include <gtest/gtest.h>

#include "sim/clock.h"

namespace sct::sim {
namespace {

TEST(ClockReentrancyTest, HandlerMayRegisterAnotherHandler) {
  Kernel k;
  Clock clk(k, "clk", 10);
  int nested = 0;
  bool registered = false;
  clk.onRising([&] {
    if (!registered) {
      registered = true;
      clk.onRising([&] { ++nested; });
    }
  });
  clk.runCycles(3);
  // The nested handler runs on the cycles after its registration.
  EXPECT_GE(nested, 2);
}

TEST(ClockReentrancyTest, HandlerMayRemoveALaterHandler) {
  Kernel k;
  Clock clk(k, "clk", 10);
  int second = 0;
  Clock::HandlerId secondId = 0;
  clk.onRising([&] { clk.removeHandler(secondId); });
  secondId = clk.onRising([&] { ++second; });
  clk.runCycles(3);
  // Removed from within the same edge before it ever ran.
  EXPECT_EQ(second, 0);
}

TEST(ClockReentrancyTest, KernelDrainsWhenAllHandlersRemoveThemselves) {
  Kernel k;
  Clock clk(k, "clk", 10);
  Clock::HandlerId a = 0;
  Clock::HandlerId b = 0;
  int runsA = 0;
  int runsB = 0;
  a = clk.onRising([&] {
    ++runsA;
    clk.removeHandler(a);
  });
  b = clk.onFalling([&] {
    ++runsB;
    clk.removeHandler(b);
  });
  k.run();  // Must terminate.
  EXPECT_EQ(runsA, 1);
  EXPECT_EQ(runsB, 1);
  EXPECT_TRUE(k.empty());
}

TEST(ClockReentrancyTest, HaltInsideHandlerStopsAfterCurrentCycle) {
  Kernel k;
  Clock clk(k, "clk", 10);
  int rising = 0;
  int falling = 0;
  clk.onRising([&] {
    if (++rising == 2) clk.halt();
  });
  clk.onFalling([&] { ++falling; });
  k.run();
  EXPECT_EQ(rising, 2);
  EXPECT_EQ(falling, 2);  // The halting cycle still completes.
}

TEST(ClockReentrancyTest, TwoClocksShareOneKernel) {
  Kernel k;
  Clock fast(k, "fast", 10);
  Clock slow(k, "slow", 30);
  int fastTicks = 0;
  int slowTicks = 0;
  fast.onRising([&] { ++fastTicks; });
  slow.onRising([&] { ++slowTicks; });
  k.runUntil(95);
  EXPECT_EQ(fastTicks, 9);
  EXPECT_EQ(slowTicks, 3);
}

} // namespace
} // namespace sct::sim
