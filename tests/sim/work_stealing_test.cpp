// WorkStealingPool: every submitted task runs exactly once, imbalanced
// batches are rebalanced by steal-half, cancelPending drops exactly the
// not-yet-started tasks, and the runIndexed helper matches a sequential
// sweep — the contract the serve dispatcher is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "sim/work_stealing.h"

namespace sct {
namespace {

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce) {
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> ran(kTasks);
  {
    sim::WorkStealingPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran, i] { ran[i].fetch_add(1); });
    }
    pool.wait();
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "task " << i;
  }
}

TEST(WorkStealingPool, WaitIsReusableAcrossBatches) {
  sim::WorkStealingPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 40; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 40 * (batch + 1));
  }
}

TEST(WorkStealingPool, ImbalancedPinningGetsStolen) {
  // Pin a blocker plus kTasks tasks onto worker 0's deque. Owners pop
  // FIFO, so whichever worker takes the blocker parks on it — and the
  // tasks queued behind it can then ONLY complete by being stolen
  // (steal-half takes from the back, so a thief can never lift the
  // blocker past the queued tasks). Waiting for all tasks BEFORE
  // releasing the blocker makes steals > 0 a certainty, not a timing
  // accident — it is the rebalancing mechanism the serve throughput
  // scaling relies on.
  sim::WorkStealingPool pool(4);
  std::atomic<bool> release{false};
  std::atomic<int> count{0};
  pool.submitTo(0, [&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  constexpr int kTasks = 16;
  for (int i = 0; i < kTasks; ++i) {
    pool.submitTo(0, [&count] { count.fetch_add(1); });
  }
  for (int spin = 0; count.load() < kTasks && spin < 60000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(count.load(), kTasks) << "pinned tasks never got stolen";
  release = true;
  pool.wait();
  EXPECT_GT(pool.steals(), 0u);
  EXPECT_GT(pool.stolenTasks(), 0u);
  EXPECT_LE(pool.stolenTasks(), static_cast<std::uint64_t>(kTasks) + 1);
}

TEST(WorkStealingPool, SingleThreadNeverSteals) {
  sim::WorkStealingPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(WorkStealingPool, CurrentWorkerIdentity) {
  sim::WorkStealingPool pool(2);
  EXPECT_EQ(pool.currentWorker(), sim::WorkStealingPool::kNotAWorker);
  std::atomic<bool> sawValidId{true};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &sawValidId] {
      const unsigned id = pool.currentWorker();
      if (id >= pool.threadCount()) sawValidId = false;
    });
  }
  pool.wait();
  EXPECT_TRUE(sawValidId.load());
}

TEST(WorkStealingPool, CancelPendingDropsOnlyUnstartedTasks) {
  sim::WorkStealingPool pool(2);
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  // Two blockers occupy both workers; everything behind them is
  // cancellable.
  for (int i = 0; i < 2; ++i) {
    pool.submitTo(static_cast<unsigned>(i), [&] {
      started.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (started.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  constexpr int kQueued = 30;
  std::atomic<int> lateRuns{0};
  for (int i = 0; i < kQueued; ++i) {
    pool.submit([&lateRuns] { lateRuns.fetch_add(1); });
  }
  const std::size_t dropped = pool.cancelPending();
  release = true;
  pool.wait();
  // The blockers finished; every queued task either ran before the
  // cancel (none could — both workers were blocked) or was dropped.
  EXPECT_EQ(dropped, static_cast<std::size_t>(kQueued));
  EXPECT_EQ(lateRuns.load(), 0);
}

TEST(WorkStealingPool, RunIndexedMatchesSequential) {
  constexpr std::size_t kCount = 257;
  std::vector<std::uint64_t> seq(kCount, 0);
  sim::WorkStealingPool::runIndexed(kCount, 1, [&](std::size_t i) {
    seq[i] = i * i + 7;
  });
  std::vector<std::uint64_t> par(kCount, 0);
  sim::WorkStealingPool::runIndexed(kCount, 4, [&](std::size_t i) {
    par[i] = i * i + 7;
  });
  EXPECT_EQ(par, seq);
}

} // namespace
} // namespace sct
