#include <gtest/gtest.h>

#include "sim/module.h"
#include "sim/time.h"

namespace sct::sim {
namespace {

TEST(TimeTest, UnitHelpers) {
  EXPECT_EQ(picoseconds(5), 5u);
  EXPECT_EQ(nanoseconds(3), 3'000u);
  EXPECT_EQ(microseconds(2), 2'000'000u);
  EXPECT_EQ(milliseconds(1), 1'000'000'000u);
}

TEST(TimeTest, PeriodFromMHz) {
  EXPECT_EQ(periodFromMHz(1), 1'000'000u);
  EXPECT_EQ(periodFromMHz(10), 100'000u);
  EXPECT_EQ(periodFromMHz(50), 20'000u);
}

TEST(ModuleTest, NameAndKernelBinding) {
  Kernel k;
  struct Dummy : Module {
    using Module::Module;
  } m(k, "dut.bus");
  EXPECT_EQ(m.name(), "dut.bus");
  EXPECT_EQ(&m.kernel(), &k);
  k.runUntil(123);
  EXPECT_EQ(m.now(), 123u);
}

} // namespace
} // namespace sct::sim
