#include "sim/kernel.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace sct::sim {
namespace {

TEST(KernelTest, StartsAtTimeZeroAndEmpty) {
  Kernel k;
  EXPECT_EQ(k.now(), 0u);
  EXPECT_TRUE(k.empty());
  EXPECT_EQ(k.run(), 0u);
}

TEST(KernelTest, DispatchesInTimestampOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule(30, [&] { order.push_back(3); });
  k.schedule(10, [&] { order.push_back(1); });
  k.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(k.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 30u);
}

TEST(KernelTest, SimultaneousEventsKeepInsertionOrder) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    k.schedule(100, [&order, i] { order.push_back(i); });
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(KernelTest, PriorityBreaksTimestampTies) {
  Kernel k;
  std::vector<int> order;
  k.schedule(100, [&] { order.push_back(2); }, /*priority=*/1);
  k.schedule(100, [&] { order.push_back(1); }, /*priority=*/0);
  k.schedule(100, [&] { order.push_back(0); }, /*priority=*/-1);
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(KernelTest, CallbacksMayScheduleFurtherEvents) {
  Kernel k;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 10) k.schedule(5, chain);
  };
  k.schedule(0, chain);
  k.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(k.now(), 45u);
}

TEST(KernelTest, RunUntilAdvancesTimeWithoutEvents) {
  Kernel k;
  EXPECT_EQ(k.runUntil(500), 0u);
  EXPECT_EQ(k.now(), 500u);
}

TEST(KernelTest, RunUntilStopsAtBoundary) {
  Kernel k;
  int fired = 0;
  k.schedule(100, [&] { ++fired; });
  k.schedule(200, [&] { ++fired; });
  k.schedule(300, [&] { ++fired; });
  EXPECT_EQ(k.runUntil(200), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(k.now(), 200u);
  EXPECT_EQ(k.pendingEvents(), 1u);
}

TEST(KernelTest, StopEndsRunEarly) {
  Kernel k;
  int fired = 0;
  k.schedule(10, [&] {
    ++fired;
    k.stop();
  });
  k.schedule(20, [&] { ++fired; });
  k.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.pendingEvents(), 1u);
  // A fresh run resumes.
  k.run();
  EXPECT_EQ(fired, 2);
}

TEST(KernelTest, StepDispatchesBoundedEventCount) {
  Kernel k;
  int fired = 0;
  for (int i = 0; i < 5; ++i) k.schedule(10 * (i + 1), [&] { ++fired; });
  EXPECT_EQ(k.step(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(k.step(100), 3u);
}

TEST(KernelTest, SchedulingInThePastThrows) {
  Kernel k;
  k.schedule(100, [] {});
  k.run();
  EXPECT_THROW(k.scheduleAt(50, [] {}), std::invalid_argument);
}

TEST(KernelTest, EmptyCallbackThrows) {
  Kernel k;
  EXPECT_THROW(k.schedule(10, Kernel::Callback{}), std::invalid_argument);
}

TEST(KernelTest, ResetClearsQueueAndTime) {
  Kernel k;
  k.schedule(100, [] {});
  k.runUntil(40);
  k.reset();
  EXPECT_EQ(k.now(), 0u);
  EXPECT_TRUE(k.empty());
}

TEST(KernelTest, DispatchedEventCounterAccumulates) {
  Kernel k;
  for (int i = 0; i < 7; ++i) k.schedule(i + 1, [] {});
  k.run();
  EXPECT_EQ(k.dispatchedEvents(), 7u);
}

} // namespace
} // namespace sct::sim
