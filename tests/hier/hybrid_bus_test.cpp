// HybridBus + FidelityController unit tests: switch protocol (quiesce,
// deferral, drain backpressure, Finished pickup across a switch), the
// ROI triggers, and region/counter bookkeeping.
#include "hier/hybrid_bus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>

#include "../testbench.h"
#include "bus/memory_slave.h"
#include "hier/fidelity_controller.h"
#include "hier/roi_trigger.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct::hier {
namespace {

struct HybridFixture : ::testing::Test {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  HybridBus bus{clk, "ecbus"};
  bus::MemorySlave ram{"ram", testbench::fastCtl()};
  bus::MemorySlave waited{"eeprom", testbench::waitedCtl()};

  HybridFixture() {
    bus.attach(ram);
    bus.attach(waited);
  }

  /// Run rising-edge callback `fn` each cycle until it returns true;
  /// returns the cycles consumed (fails the test at `max`).
  template <typename F>
  std::uint64_t driveUntil(F&& fn, std::uint64_t max = 2000) {
    bool done = false;
    const auto id = clk.onRising([&] { done = done || fn(); });
    std::uint64_t n = 0;
    while (!done && n < max) {
      clk.runCycles(1);
      ++n;
    }
    clk.removeHandler(id);
    EXPECT_LT(n, max) << "driveUntil did not converge";
    return n;
  }
};

TEST_F(HybridFixture, StartsEventDrivenWithTl1Parked) {
  EXPECT_EQ(bus.active(), Fidelity::Tl2);
  EXPECT_TRUE(bus.tl1().suspended());
  EXPECT_FALSE(bus.switchPending());
  EXPECT_TRUE(bus.quiesced());

  HybridBus t1{clk, "ecbus1", Fidelity::Tl1};
  EXPECT_EQ(t1.active(), Fidelity::Tl1);
  EXPECT_FALSE(t1.tl1().suspended());
}

TEST_F(HybridFixture, AttachAgreesOnSelectIndices) {
  bus::MemorySlave extra{"extra", [] {
                           bus::SlaveControl c;
                           c.base = 0x4000;
                           c.size = 0x1000;
                           return c;
                         }()};
  EXPECT_EQ(bus.attach(extra), 2);
  EXPECT_EQ(bus.tl1().decoder().decode(0x4000), 2);
  EXPECT_EQ(bus.tl2().decoder().decode(0x4000), 2);
}

TEST_F(HybridFixture, TransactionsCompleteOnBothLayers) {
  for (const Fidelity f : {Fidelity::Tl2, Fidelity::Tl1}) {
    bus.requestSwitch(f);
    ASSERT_TRUE(f == bus.active() || bus.tryCompleteSwitch());
    trace::BusTrace t;
    trace::TraceEntry wr;
    wr.kind = bus::Kind::Write;
    wr.address = f == Fidelity::Tl1 ? 0x100u : 0x200u;
    wr.writeData[0] = 0xC0FFEE00u + static_cast<unsigned>(f);
    t.append(wr);
    trace::TraceEntry rd;
    rd.kind = bus::Kind::Read;
    rd.address = wr.address;
    t.append(rd);
    trace::ReplayMaster m(clk, "m", bus, bus, t);
    m.runToCompletion();
    ASSERT_TRUE(m.done());
    EXPECT_EQ(m.stats().errors, 0u);
    EXPECT_EQ(m.requests()[1].data[0], wr.writeData[0]);
    EXPECT_EQ(ram.peekWord(wr.address), wr.writeData[0]);
  }
  EXPECT_EQ(bus.tl1().stats().transactions(), 2u);
  EXPECT_EQ(bus.tl2().stats().transactions(), 2u);
}

TEST_F(HybridFixture, SwitchWhenIdleCompletesImmediately) {
  bus.requestSwitch(Fidelity::Tl1);
  EXPECT_TRUE(bus.switchPending());
  EXPECT_TRUE(bus.tryCompleteSwitch());
  EXPECT_EQ(bus.active(), Fidelity::Tl1);
  EXPECT_FALSE(bus.tl1().suspended());
  EXPECT_EQ(bus.switches(), 1u);

  // Requesting the active fidelity cancels a pending request.
  bus.requestSwitch(Fidelity::Tl2);
  bus.requestSwitch(Fidelity::Tl1);
  EXPECT_FALSE(bus.switchPending());
  EXPECT_FALSE(bus.tryCompleteSwitch());
  EXPECT_EQ(bus.switches(), 1u);
}

TEST_F(HybridFixture, SwitchDefersUntilInFlightDrainsAndRefusesNewWork) {
  // Open a transaction on the event-driven layer (waited slave: several
  // cycles of latency), then ask for TL1 mid-flight.
  bus::Tl1Request req;
  req.kind = bus::Kind::Read;
  req.address = 0x8000;
  bus::BusStatus st = bus::BusStatus::Wait;
  driveUntil([&] {
    st = bus.read(req);
    return true;
  });
  ASSERT_EQ(st, bus::BusStatus::Request);

  bus.requestSwitch(Fidelity::Tl1);
  EXPECT_FALSE(bus.tryCompleteSwitch()) << "must defer while in flight";
  EXPECT_EQ(bus.active(), Fidelity::Tl2);

  // Fresh submissions are refused while the drain is pending.
  bus::Tl1Request fresh;
  fresh.kind = bus::Kind::Read;
  fresh.address = 0x0;
  bus::BusStatus freshSt = bus::BusStatus::Ok;
  driveUntil([&] {
    freshSt = bus.read(fresh);
    return true;
  });
  EXPECT_EQ(freshSt, bus::BusStatus::Wait);
  EXPECT_EQ(fresh.stage, bus::Tl1Stage::Idle);
  EXPECT_EQ(bus.drainWaitAnswers(), 1u);

  // The in-flight transaction still completes; then the switch goes
  // through.
  driveUntil([&] {
    st = bus.read(req);
    return st == bus::BusStatus::Ok;
  });
  EXPECT_TRUE(bus.tryCompleteSwitch());
  EXPECT_EQ(bus.active(), Fidelity::Tl1);
}

TEST_F(HybridFixture, FinishedPickupSurvivesTheSwitch) {
  ram.pokeWord(0x40, 0xFEEDC0DE);
  bus::Tl1Request req;
  req.kind = bus::Kind::Read;
  req.address = 0x40;
  driveUntil([&] { return bus.read(req) == bus::BusStatus::Request; });
  // Let the lower transaction finish, then bring the bridge current:
  // quiesced() syncs, posting the payload as Finished.
  clk.runCycles(8);
  ASSERT_TRUE(bus.quiesced());
  ASSERT_EQ(req.stage, bus::Tl1Stage::Finished);

  // A posted-but-unpicked result must not block the switch...
  bus.requestSwitch(Fidelity::Tl1);
  EXPECT_TRUE(bus.tryCompleteSwitch());
  EXPECT_EQ(bus.active(), Fidelity::Tl1);

  // ...and the pickup is served on the other layer.
  bus::BusStatus st = bus::BusStatus::Wait;
  driveUntil([&] {
    st = bus.read(req);
    return true;
  });
  EXPECT_EQ(st, bus::BusStatus::Ok);
  EXPECT_EQ(req.data[0], 0xFEEDC0DEu);
  EXPECT_EQ(req.stage, bus::Tl1Stage::Idle);
}

// --------------------------------------------------------------------------
// Triggers
// --------------------------------------------------------------------------

TEST(RoiTriggerTest, AddressWatchArmsOnHitsAndExpires) {
  AddressWatchTrigger t({{0x8000, 0x100}}, /*holdCycles=*/16);
  EXPECT_FALSE(t.wantsRoi(0));

  bus::Tl1Request miss;
  miss.address = 0x100;
  t.onSubmit(miss, 5);
  EXPECT_FALSE(t.wantsRoi(5));
  EXPECT_EQ(t.hits(), 0u);

  bus::Tl1Request hit;
  hit.address = 0x8004;
  t.onSubmit(hit, 10);
  EXPECT_EQ(t.hits(), 1u);
  EXPECT_TRUE(t.wantsRoi(10));
  EXPECT_TRUE(t.wantsRoi(25));
  EXPECT_EQ(t.nextDecisionCycle(10), 26u);
  EXPECT_FALSE(t.wantsRoi(26));
  EXPECT_EQ(t.nextDecisionCycle(26), sim::Clock::kNeverWake);

  // A burst ending inside the window counts as a hit.
  bus::Tl1Request burst;
  burst.address = 0x7FF8;
  burst.beats = 4;
  t.onSubmit(burst, 40);
  EXPECT_EQ(t.hits(), 2u);
  EXPECT_TRUE(t.wantsRoi(41));
}

TEST(RoiTriggerTest, CycleWindowFollowsTheSchedule) {
  CycleWindowTrigger t({{30, 40}, {10, 20}});
  EXPECT_FALSE(t.wantsRoi(0));
  EXPECT_EQ(t.nextDecisionCycle(0), 10u);
  EXPECT_TRUE(t.wantsRoi(10));
  EXPECT_EQ(t.nextDecisionCycle(10), 20u);
  EXPECT_TRUE(t.wantsRoi(19));
  EXPECT_FALSE(t.wantsRoi(20));
  EXPECT_EQ(t.nextDecisionCycle(20), 30u);
  EXPECT_TRUE(t.wantsRoi(35));
  EXPECT_FALSE(t.wantsRoi(40));
  EXPECT_EQ(t.nextDecisionCycle(40), sim::Clock::kNeverWake);
}

TEST(RoiTriggerTest, EnergyBudgetTripsOnSustainedDraw) {
  // gsm5V: 10 mA at 5 V = 50 mW. chipScale 1, 10 ps cycles, window 10:
  // the 80 % threshold needs >= 40000 uW * 100 ps = 4e6 fJ per window.
  EnergyBudgetTrigger t(power::gsm5V(), /*clockPeriodPs=*/10,
                        /*chipScale=*/1.0, /*windowCycles=*/10,
                        /*triggerFraction=*/0.8, /*holdCycles=*/20);
  t.onEnergy(1.0e6, 3);
  EXPECT_FALSE(t.wantsRoi(10));  // Window closes quiet: 1e6 < 4e6.
  EXPECT_EQ(t.windowsTripped(), 0u);

  t.onEnergy(5.0e6, 15);
  EXPECT_TRUE(t.wantsRoi(20));  // Hot window: armed until 40.
  EXPECT_EQ(t.windowsTripped(), 1u);
  EXPECT_TRUE(t.wantsRoi(39));
  EXPECT_FALSE(t.wantsRoi(45));
}

// --------------------------------------------------------------------------
// Controller
// --------------------------------------------------------------------------

TEST_F(HybridFixture, ScopeGuardsSwitchAndRecordRegions) {
  FidelityController ctrl(clk, bus);
  EXPECT_EQ(bus.active(), Fidelity::Tl2);

  clk.runCycles(10);
  {
    RoiScope roi(ctrl);
    EXPECT_EQ(bus.active(), Fidelity::Tl1);
    {
      RoiScope nested(ctrl);  // Depth counts; no extra switch.
      EXPECT_EQ(ctrl.scopeDepth(), 2u);
    }
    EXPECT_EQ(bus.active(), Fidelity::Tl1);
    clk.runCycles(25);
  }
  EXPECT_EQ(bus.active(), Fidelity::Tl2);
  clk.runCycles(5);
  ctrl.finalize();

  EXPECT_EQ(ctrl.switches(), 2u);
  EXPECT_EQ(ctrl.roiCycles(), 25u);
  ASSERT_EQ(ctrl.regions().size(), 3u);
  EXPECT_EQ(ctrl.regions()[0].fidelity, Fidelity::Tl2);
  EXPECT_EQ(ctrl.regions()[1].fidelity, Fidelity::Tl1);
  EXPECT_EQ(ctrl.regions()[2].fidelity, Fidelity::Tl2);
  EXPECT_EQ(ctrl.regions()[1].toCycle - ctrl.regions()[1].fromCycle, 25u);
  // Regions tile the run.
  EXPECT_EQ(ctrl.regions()[0].fromCycle, 0u);
  EXPECT_EQ(ctrl.regions()[1].fromCycle, ctrl.regions()[0].toCycle);
  EXPECT_EQ(ctrl.regions()[2].fromCycle, ctrl.regions()[1].toCycle);
  EXPECT_EQ(ctrl.regions()[2].toCycle, clk.cycle());
}

TEST_F(HybridFixture, CycleWindowScheduleDrivesSwitchesDuringReplay) {
  FidelityController ctrl(clk, bus);
  CycleWindowTrigger windows({{40, 120}, {200, 280}});
  ctrl.addTrigger(windows);

  const auto workload = trace::randomMix(7, 300, testbench::bothRegions(),
                                         trace::MixRatios{}, 3);
  trace::ReplayMaster m(clk, "m", bus, bus, workload);
  m.runToCompletion();
  ASSERT_TRUE(m.done());
  EXPECT_EQ(m.stats().errors, 0u);
  ctrl.finalize();

  EXPECT_GE(ctrl.switches(), 2u);
  EXPECT_GT(ctrl.roiCycles(), 0u);
  EXPECT_EQ(ctrl.roiCycles() + [&] {
    std::uint64_t tl2 = 0;
    for (const auto& r : ctrl.regions()) {
      if (r.fidelity == Fidelity::Tl2) tl2 += r.toCycle - r.fromCycle;
    }
    return tl2;
  }(), clk.cycle());
  // Regions alternate and tile the run.
  for (std::size_t i = 1; i < ctrl.regions().size(); ++i) {
    EXPECT_NE(ctrl.regions()[i].fidelity, ctrl.regions()[i - 1].fidelity);
    EXPECT_EQ(ctrl.regions()[i].fromCycle, ctrl.regions()[i - 1].toCycle);
  }
  // Both layers carried part of the workload.
  EXPECT_GT(bus.tl1().stats().transactions(), 0u);
  EXPECT_GT(bus.tl2().stats().transactions(), 0u);
  EXPECT_EQ(bus.tl1().stats().transactions() +
                bus.tl2().stats().transactions(),
            workload.size());
}

TEST_F(HybridFixture, AddressWatchPullsCryptoTrafficIntoTl1) {
  FidelityController ctrl(clk, bus);
  AddressWatchTrigger watch({{0x8000, 0x100}}, /*holdCycles=*/32);
  ctrl.addTrigger(watch);

  // Fast-region traffic first, then a burst into the watched window.
  trace::BusTrace t;
  for (int i = 0; i < 20; ++i) {
    trace::TraceEntry e;
    e.kind = bus::Kind::Read;
    e.address = 0x100 + 4 * static_cast<bus::Address>(i);
    e.issueCycle = static_cast<std::uint64_t>(2 * i);
    t.append(e);
  }
  for (int i = 0; i < 8; ++i) {
    trace::TraceEntry e;
    e.kind = bus::Kind::Write;
    e.address = 0x8000 + 4 * static_cast<bus::Address>(i);
    e.writeData[0] = 0xA0 + static_cast<bus::Word>(i);
    e.issueCycle = 60 + static_cast<std::uint64_t>(i);
    t.append(e);
  }
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  ASSERT_TRUE(m.done());
  clk.runCycles(60);  // Let the hold expire and the bus switch back.
  ctrl.finalize();

  EXPECT_GT(watch.hits(), 0u);
  EXPECT_GE(ctrl.switches(), 2u);
  EXPECT_GT(ctrl.roiCycles(), 0u);
  EXPECT_EQ(bus.active(), Fidelity::Tl2);
  EXPECT_EQ(waited.peekWord(0x8000), 0xA0u);
  // The watched-window writes themselves ran cycle-true (the first one
  // trips the trigger; the switch lands before the re-armed window's
  // later writes are done).
  EXPECT_GT(bus.tl1().stats().writeTransactions, 0u);
}

#if SCT_OBS_ENABLED
TEST_F(HybridFixture, ObsCountersAndDrainWaitArePublished) {
  FidelityController ctrl(clk, bus);
  obs::StatsRegistry reg;
  obs::TraceRecorder rec(256);
  ctrl.attachObs(reg, &rec);

  clk.runCycles(3);
  ctrl.enterRoi();
  clk.runCycles(12);
  ctrl.exitRoi();
  clk.runCycles(3);
  ctrl.finalize();

  EXPECT_EQ(reg.counter("hier.switches").value(), 2u);
  EXPECT_EQ(reg.counter("hier.roi_cycles").value(), 12u);
  EXPECT_EQ(reg.counter("hier.drain_wait_cycles").value(),
            ctrl.drainWaitCycles());
  std::size_t instants = 0;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const auto& e = rec.event(i);
    if (e.phase == 'i' && std::string_view(e.cat) == "hier") ++instants;
  }
  EXPECT_EQ(instants, 2u);
}
#endif

} // namespace
} // namespace sct::hier
