// SmartCardSoC instantiated over the adaptive-fidelity bus: the MIPS
// core and firmware run unchanged, a hybrid bus pinned at TL1 is
// cycle-identical to the plain layer-1 SoC, and an address watchpoint
// on the crypto coprocessor's SFR window pulls the encryption into
// cycle-true mode automatically.
#include <gtest/gtest.h>

#include <cstdint>

#include "hier/fidelity_controller.h"
#include "hier/hybrid_bus.h"
#include "soc/smartcard.h"

namespace sct::hier {
namespace {

using soc::SocConfig;
using soc::assemble;
namespace memmap = soc::memmap;

using Tl1Soc = soc::SmartCardSoC<bus::Tl1Bus>;
using HybridSoc = soc::SmartCardSoC<HybridBus>;

// Same firmware as tests/soc/smartcard_test.cpp: encrypt one block on
// the coprocessor, store the result in RAM.
constexpr const char* kCryptoProgram = R"(
    li   $s0, 0x10000400   # Crypto base
    li   $t0, 0x01234567
    sw   $t0, 0($s0)       # KEY0
    li   $t0, 0x89ABCDEF
    sw   $t0, 4($s0)       # KEY1
    li   $t0, 0xFEDCBA98
    sw   $t0, 8($s0)       # KEY2
    li   $t0, 0x76543210
    sw   $t0, 12($s0)      # KEY3
    li   $t0, 0xDEADBEEF
    sw   $t0, 0x10($s0)    # DATA0
    li   $t0, 0x00C0FFEE
    sw   $t0, 0x14($s0)    # DATA1
    addiu $t0, $zero, 1
    sw   $t0, 0x18($s0)    # CTRL = encrypt
  wait:
    lw   $t1, 0x1C($s0)    # STATUS
    bne  $t1, $zero, wait
    lw   $t2, 0x10($s0)
    lw   $t3, 0x14($s0)
    li   $s1, 0x08000000
    sw   $t2, 0($s1)
    sw   $t3, 4($s1)
    break
)";

void expectCipherResult(HybridSoc& soc) {
  const std::uint32_t key[4] = {0x01234567, 0x89ABCDEF, 0xFEDCBA98,
                                0x76543210};
  std::uint32_t d0 = 0xDEADBEEF;
  std::uint32_t d1 = 0x00C0FFEE;
  soc::CryptoCoprocessor::encryptBlock(key, d0, d1);
  EXPECT_EQ(soc.ram().peekWord(memmap::kRamBase), d0);
  EXPECT_EQ(soc.ram().peekWord(memmap::kRamBase + 4), d1);
  EXPECT_EQ(soc.crypto().operations(), 1u);
}

TEST(HybridSocTest, FirmwareRunsUnchangedOnTheEventDrivenLayer) {
  HybridSoc soc{SocConfig{}};
  EXPECT_EQ(soc.bus().active(), Fidelity::Tl2);
  soc.loadProgram(assemble(kCryptoProgram, memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  ASSERT_FALSE(soc.cpu().faulted());
  expectCipherResult(soc);
}

TEST(HybridSocTest, PinnedTl1HybridIsCycleIdenticalToPlainTl1Soc) {
  Tl1Soc plain{SocConfig{}};
  HybridSoc hybrid{SocConfig{}, Fidelity::Tl1};
  const auto prog = assemble(kCryptoProgram, memmap::kRomBase);
  plain.loadProgram(prog);
  hybrid.loadProgram(prog);
  ASSERT_TRUE(plain.run());
  ASSERT_TRUE(hybrid.run());
  ASSERT_FALSE(hybrid.cpu().faulted());
  EXPECT_EQ(hybrid.cpu().stats().cycles, plain.cpu().stats().cycles);
  EXPECT_EQ(hybrid.cpu().stats().instructions,
            plain.cpu().stats().instructions);
  EXPECT_EQ(hybrid.ram().peekWord(memmap::kRamBase),
            plain.ram().peekWord(memmap::kRamBase));
  EXPECT_EQ(hybrid.bus().tl1().stats().transactions(),
            plain.bus().stats().transactions());
  EXPECT_EQ(hybrid.bus().tl2().stats().transactions(), 0u);
}

TEST(HybridSocTest, CryptoWatchpointPullsTheEncryptionIntoTl1) {
  HybridSoc soc{SocConfig{}};
  FidelityController ctrl(soc.clock(), soc.bus());
  AddressWatchTrigger watch({{memmap::kCryptoBase, memmap::kSfrWindow}},
                            /*holdCycles=*/32);
  ctrl.addTrigger(watch);

  soc.loadProgram(assemble(kCryptoProgram, memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  ASSERT_FALSE(soc.cpu().faulted());
  ctrl.finalize();

  expectCipherResult(soc);
  EXPECT_GT(watch.hits(), 0u);
  EXPECT_GE(ctrl.switches(), 1u);
  EXPECT_GT(ctrl.roiCycles(), 0u);
  // The crypto SFR accesses themselves ran on the cycle-true layer
  // (everything after the drain that the first watch hit started).
  EXPECT_GT(soc.bus().tl1().stats().transactions(), 0u);
  EXPECT_GT(soc.bus().tl2().stats().transactions(), 0u);
}

} // namespace
} // namespace sct::hier
