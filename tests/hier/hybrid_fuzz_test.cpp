// Seeded fuzz: random workloads replayed under random fidelity-switch
// schedules. Whatever the schedule — pure TL1, pure TL2, or arbitrary
// window sets forcing switches at arbitrary drain points — the
// functional outcome is conserved: every transaction completes exactly
// once, read payloads are identical, the final slave memory images are
// identical, and the two layers' transaction counts sum to the trace
// size.
//
// The workload keeps reads and writes in disjoint regions (reads +
// fetches from a preloaded read-only window, writes to a write-only
// window): the layer-1 bus services its read and write queues
// concurrently, so a read may overtake an older write in timing; with
// disjoint windows that reordering can never change data, and the
// invariant holds for every schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "../testbench.h"
#include "hier/fidelity_controller.h"
#include "hier/hybrid_bus.h"
#include "sim/rng.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct::hier {
namespace {

constexpr std::size_t kTxns = 300;
constexpr bus::Address kImageBytes = 0x2000;

std::vector<trace::TargetRegion> fuzzRegions() {
  return {
      trace::TargetRegion{0x0000, 0x2000, /*read=*/true, /*write=*/false,
                          /*exec=*/true},
      trace::TargetRegion{0x8000, 0x2000, /*read=*/false, /*write=*/true,
                          /*exec=*/false},
  };
}

trace::BusTrace fuzzTrace(std::uint64_t seed) {
  trace::MixRatios mix;
  mix.instrFetch = 1;
  return trace::randomMix(seed, kTxns, fuzzRegions(), mix, /*issueGapMax=*/3);
}

std::vector<std::uint8_t> romImage(std::uint64_t seed) {
  std::vector<std::uint8_t> bytes(kImageBytes);
  trace::fillRealistic(bytes.data(), bytes.size(), seed);
  return bytes;
}

/// One complete replay under a given switch schedule. An empty window
/// set means "pinned": no controller is attached and the bus stays at
/// `initial` for the whole run (a controller with no active ROI would
/// immediately steer to TL2).
struct RunResult {
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t switches = 0;
  std::uint64_t tl1Txns = 0;
  std::uint64_t tl2Txns = 0;
  std::vector<bus::Word> payloads;
  std::vector<std::uint8_t> fastImage;
  std::vector<std::uint8_t> waitedImage;
  std::uint64_t fastDigest = 0;
  std::uint64_t waitedDigest = 0;
};

RunResult runSchedule(std::uint64_t workloadSeed, Fidelity initial,
                      std::vector<CycleWindowTrigger::Window> windows) {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  HybridBus bus{clk, "ecbus", initial};
  bus::MemorySlave fast{"rom", testbench::fastCtl()};
  bus::MemorySlave waited{"eeprom", testbench::waitedCtl()};
  bus.attach(fast);
  bus.attach(waited);
  const auto image = romImage(workloadSeed);
  fast.load(0x0000, image.data(), image.size());

  const bool pinned = windows.empty();
  std::optional<FidelityController> ctrl;
  CycleWindowTrigger trigger(std::move(windows));
  if (!pinned) {
    ctrl.emplace(clk, bus);
    ctrl->addTrigger(trigger);
  }

  const auto trace = fuzzTrace(workloadSeed);
  trace::ReplayMaster m(clk, "m", bus, bus, trace);
  m.runToCompletion();
  EXPECT_TRUE(m.done());
  if (ctrl) ctrl->finalize();

  RunResult r;
  r.completed = m.stats().completed;
  r.errors = m.stats().errors;
  r.switches = bus.switches();
  r.tl1Txns = bus.tl1().stats().transactions();
  r.tl2Txns = bus.tl2().stats().transactions();
  for (const auto& req : m.requests()) {
    for (unsigned b = 0; b < req.beats; ++b) r.payloads.push_back(req.data[b]);
  }
  r.fastImage.assign(fast.data(), fast.data() + kImageBytes);
  r.waitedImage.assign(waited.data(), waited.data() + kImageBytes);
  r.fastDigest = fast.imageDigest();
  r.waitedDigest = waited.imageDigest();
  return r;
}

TEST(HybridFuzz, AnySwitchScheduleConservesTheWorkload) {
  for (const std::uint64_t workloadSeed : {11u, 29u, 71u}) {
    SCOPED_TRACE("workload seed " + std::to_string(workloadSeed));

    const RunResult ref =
        runSchedule(workloadSeed, Fidelity::Tl1, {});  // Pure cycle-true.
    EXPECT_EQ(ref.completed, kTxns);
    EXPECT_EQ(ref.errors, 0u);
    EXPECT_EQ(ref.tl1Txns, kTxns);
    EXPECT_EQ(ref.tl2Txns, 0u);

    const RunResult tl2 = runSchedule(workloadSeed, Fidelity::Tl2, {});
    EXPECT_EQ(tl2.tl2Txns, kTxns);
    EXPECT_EQ(tl2.switches, 0u);

    std::vector<RunResult> runs{tl2};
    sim::SplitMix64 rng(sim::hash64(workloadSeed, 13));
    for (int schedule = 0; schedule < 4; ++schedule) {
      // Random window set over the plausible run length; adjacent
      // windows may touch or nest — the trigger treats them as a union.
      std::vector<CycleWindowTrigger::Window> windows;
      std::uint64_t at = rng() % 40;
      const int count = 1 + static_cast<int>(rng() % 4);
      for (int w = 0; w < count; ++w) {
        const std::uint64_t len = 20 + rng() % 150;
        windows.push_back({at, at + len});
        at += len + rng() % 120;
      }
      const Fidelity initial = (rng() & 1) != 0 ? Fidelity::Tl1 : Fidelity::Tl2;
      runs.push_back(runSchedule(workloadSeed, initial, std::move(windows)));
    }

    bool anySwitched = false;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      SCOPED_TRACE("schedule " + std::to_string(i));
      const RunResult& r = runs[i];
      EXPECT_EQ(r.completed, ref.completed);
      EXPECT_EQ(r.errors, 0u);
      EXPECT_EQ(r.tl1Txns + r.tl2Txns, kTxns)
          << "every transaction rides exactly one layer";
      EXPECT_EQ(r.payloads, ref.payloads);
      EXPECT_EQ(r.fastImage, ref.fastImage);
      EXPECT_EQ(r.waitedImage, ref.waitedImage);
      EXPECT_EQ(r.fastDigest, ref.fastDigest)
          << "imageDigest disagrees with the byte-for-byte comparison";
      EXPECT_EQ(r.waitedDigest, ref.waitedDigest);
      anySwitched = anySwitched || r.switches > 0;
    }
    EXPECT_TRUE(anySwitched) << "fuzz never exercised a mid-run switch";
  }
}

} // namespace
} // namespace sct::hier
