// The adaptive-fidelity headline invariant: inside ROI windows, the
// hybrid bus is *bit-identical* to a pure layer-1 run over the same
// transactions — elapsed cycles, signal-frame transition counts,
// accumulated energy, per-region attribution, ledger totals and the
// cycle-resolved power profile. Outside the ROIs the hybrid run does
// unrelated event-driven background traffic through the TL2 layer,
// which must not perturb any of the above: the suspended TL1 power
// model sees no callbacks, so its FP addition sequence is exactly the
// pure run's.
//
// Construction: N random-mix ROI segments over the fast region
// (back-to-back issue), each bracketed by enterRoi()/exitRoi() with two
// idle settle cycles so the trailing strobe deassertion books into the
// region (see fidelity_controller.h). Between segments, background
// traffic targets only the waited region, keeping the ROI-visible
// memory identical to the pure reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../testbench.h"
#include "bus/ec_signals.h"
#include "hier/fidelity_controller.h"
#include "hier/hybrid_bus.h"
#include "obs/ledger.h"
#include "power/profile.h"
#include "power/tl1_power_model.h"
#include "power/tl2_power_model.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct::hier {
namespace {

using bus::SignalId;

power::SignalEnergyTable distinctTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<SignalId>(i),
                  7.25 + 1.0 / static_cast<double>(3 * i + 1));
  }
  return t;
}

trace::BusTrace roiSegment(std::uint64_t seed) {
  // Back-to-back issue inside the fast region only: the pure reference
  // replays the same segments with the same in-flight timing.
  return trace::randomMix(seed, 60, std::vector{testbench::fastRegion()},
                          trace::MixRatios{}, /*issueGapMax=*/0);
}

trace::BusTrace backgroundSegment(std::uint64_t seed) {
  return trace::randomMix(seed, 40, std::vector{testbench::waitedRegion()},
                          trace::MixRatios{}, /*issueGapMax=*/2);
}

constexpr std::uint64_t kSegments = 4;

struct SegmentRecord {
  std::uint64_t elapsed = 0;
  double cumulativeEnergy_fJ = 0.0;
  double delta_fJ = 0.0;
  std::vector<bus::Word> readWords;
};

TEST(HybridEquivalence, RoiWindowsAreBitIdenticalToPureTl1) {
  const auto table = distinctTable();

  // ---- Pure layer-1 reference: the ROI segments back to back. ----
  testbench::Tl1Bench pure;
  power::Tl1PowerModel purePm(table);
  obs::EnergyLedger pureLedger;
  purePm.attachLedger(pureLedger);
  pure.bus.addObserver(purePm);
  power::PowerProfile pureProfile(10);
  power::Tl1ProfileRecorder pureRecorder(purePm, pureProfile);
  pure.bus.addObserver(pureRecorder);

  std::vector<SegmentRecord> pureSeg(kSegments);
  for (std::uint64_t s = 0; s < kSegments; ++s) {
    const double before = purePm.totalEnergy_fJ();
    const auto t = roiSegment(101 + s);
    trace::ReplayMaster m(pure.clk, "roi", pure.bus, pure.bus, t);
    pureSeg[s].elapsed = m.runToCompletion();
    EXPECT_TRUE(m.done());
    pure.clk.runCycles(2);  // Settle: trailing strobe deassertion.
    pureSeg[s].cumulativeEnergy_fJ = purePm.totalEnergy_fJ();
    pureSeg[s].delta_fJ = purePm.totalEnergy_fJ() - before;
    for (const auto& r : m.requests()) pureSeg[s].readWords.push_back(r.data[0]);
  }

  // ---- Hybrid run: same segments as ROIs, TL2 background between. ----
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  HybridBus hb{clk, "ecbus"};
  bus::MemorySlave fast{"ram", testbench::fastCtl()};
  bus::MemorySlave waited{"eeprom", testbench::waitedCtl()};
  hb.attach(fast);
  hb.attach(waited);

  power::Tl1PowerModel pm1(table);
  obs::EnergyLedger ledger1;
  pm1.attachLedger(ledger1);
  hb.tl1().addObserver(pm1);
  power::Tl2PowerModel pm2(table);
  hb.tl2().addObserver(pm2);

  FidelityController ctrl(clk, hb);
  ctrl.attachPower(pm1, pm2);
  power::PowerProfile profile(10);
  ctrl.attachProfile(profile);

  std::vector<SegmentRecord> hybSeg(kSegments);
  for (std::uint64_t s = 0; s < kSegments; ++s) {
    {
      RoiScope roi(ctrl);
      ASSERT_EQ(hb.active(), Fidelity::Tl1)
          << "quiesced entry must switch immediately";
      const auto t = roiSegment(101 + s);
      trace::ReplayMaster m(clk, "roi", hb, hb, t);
      hybSeg[s].elapsed = m.runToCompletion();
      EXPECT_TRUE(m.done());
      clk.runCycles(2);
      hybSeg[s].cumulativeEnergy_fJ = pm1.totalEnergy_fJ();
      for (const auto& r : m.requests())
        hybSeg[s].readWords.push_back(r.data[0]);
    }
    ASSERT_EQ(hb.active(), Fidelity::Tl2);
    const auto bgTrace = backgroundSegment(900 + s);
    trace::ReplayMaster bg(clk, "bg", hb, hb, bgTrace);
    bg.runToCompletion();
    EXPECT_TRUE(bg.done());
  }
  ctrl.finalize();

  // ---- Per-segment timing, payloads, cumulative energy: bitwise. ----
  double prevCumulative = 0.0;
  for (std::uint64_t s = 0; s < kSegments; ++s) {
    SCOPED_TRACE("segment " + std::to_string(s));
    EXPECT_EQ(hybSeg[s].elapsed, pureSeg[s].elapsed);
    EXPECT_EQ(hybSeg[s].readWords, pureSeg[s].readWords);
    EXPECT_EQ(hybSeg[s].cumulativeEnergy_fJ, pureSeg[s].cumulativeEnergy_fJ);
    prevCumulative = hybSeg[s].cumulativeEnergy_fJ;
  }
  EXPECT_EQ(pm1.totalEnergy_fJ(), purePm.totalEnergy_fJ());
  EXPECT_EQ(ledger1.total_fJ(), pureLedger.total_fJ());
  (void)prevCumulative;

  // ---- Signal-level equivalence: transitions and the final frame. ----
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    const auto id = static_cast<SignalId>(i);
    EXPECT_EQ(pm1.transitions(id), purePm.transitions(id))
        << bus::signalName(id);
    EXPECT_EQ(pm1.frame().get(id), purePm.frame().get(id))
        << bus::signalName(id);
  }

  // ---- TL1 bus statistics: the suspended layer counted nothing. ----
  EXPECT_EQ(hb.tl1().stats().cycles, pure.bus.stats().cycles);
  EXPECT_EQ(hb.tl1().stats().busyCycles, pure.bus.stats().busyCycles);
  EXPECT_EQ(hb.tl1().stats().transactions(), pure.bus.stats().transactions());
  EXPECT_EQ(hb.tl1().stats().readBeats, pure.bus.stats().readBeats);
  EXPECT_EQ(hb.tl1().stats().writeBeats, pure.bus.stats().writeBeats);
  EXPECT_EQ(hb.tl1().stats().bytesRead, pure.bus.stats().bytesRead);
  EXPECT_EQ(hb.tl1().stats().bytesWritten, pure.bus.stats().bytesWritten);

  // ---- ROI-visible memory identical (background never writes it). ----
  for (bus::Address a = 0; a < 0x2000; a += 4) {
    ASSERT_EQ(fast.peekWord(a), pure.fast.peekWord(a)) << "addr " << a;
  }

  // ---- Region attribution: TL1 region energies == pure deltas. ----
  std::vector<const FidelityController::Region*> tl1Regions;
  for (const auto& r : ctrl.regions()) {
    if (r.fidelity == Fidelity::Tl1) tl1Regions.push_back(&r);
  }
  ASSERT_EQ(tl1Regions.size(), kSegments);
  for (std::uint64_t s = 0; s < kSegments; ++s) {
    SCOPED_TRACE("region " + std::to_string(s));
    EXPECT_EQ(tl1Regions[s]->energy_fJ, pureSeg[s].delta_fJ);
    EXPECT_EQ(tl1Regions[s]->toCycle - tl1Regions[s]->fromCycle,
              pureSeg[s].elapsed + 2);
  }
  EXPECT_EQ(ctrl.switches(), 2 * kSegments);
  EXPECT_EQ(ctrl.roiCycles(), [&] {
    std::uint64_t sum = 0;
    for (const auto* r : tl1Regions) sum += r->toCycle - r->fromCycle;
    return sum;
  }());

  // ---- Stitched profile: the ROI samples are the pure run's samples,
  // in order; TL2 regions contribute one aggregate sample each at
  // their closing boundary, keeping the series monotone in time.
  // Per-cycle samples are stamped with the cycle number as seen at the
  // rising edge, i.e. (fromCycle, toCycle] of the enclosing region. ----
  auto inTl1Region = [&](std::uint64_t cycle) {
    for (const auto* r : tl1Regions) {
      if (cycle > r->fromCycle && cycle <= r->toCycle) return true;
    }
    return false;
  };
  std::vector<double> hybridRoiSamples;
  double tl2Aggregate_fJ = 0.0;
  std::uint64_t lastCycle = 0;
  for (const auto& smp : profile.samples()) {
    EXPECT_GE(smp.cycle, lastCycle) << "profile must stay monotone";
    lastCycle = smp.cycle;
    if (inTl1Region(smp.cycle)) {
      hybridRoiSamples.push_back(smp.energy_fJ);
    } else {
      tl2Aggregate_fJ += smp.energy_fJ;
    }
  }
  ASSERT_EQ(hybridRoiSamples.size(), pureProfile.samples().size());
  for (std::size_t i = 0; i < hybridRoiSamples.size(); ++i) {
    EXPECT_EQ(hybridRoiSamples[i], pureProfile.samples()[i].energy_fJ)
        << "sample " << i;
  }
  // The aggregates carry (within FP re-association of the region
  // deltas) the whole TL2 model energy.
  EXPECT_NEAR(tl2Aggregate_fJ, pm2.totalEnergy_fJ(),
              1e-9 * (1.0 + pm2.totalEnergy_fJ()));
  EXPECT_GT(pm2.totalEnergy_fJ(), 0.0);
}

} // namespace
} // namespace sct::hier
