// Communication-refinement tests: the interpreter must behave
// identically whether the operand stack is the functional model or the
// hardware stack reached through the master adapter and the TLM bus —
// and the exploration harness must expose the cost differences between
// interface alternatives (paper, Section 4.3).
#include <gtest/gtest.h>

#include "../testbench.h"
#include "bus/tl1_bus.h"
#include "jcvm/applets.h"
#include "jcvm/exploration.h"
#include "jcvm/master_adapter.h"
#include "power/characterizer.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "trace/workloads.h"

namespace sct::jcvm {
namespace {

const power::SignalEnergyTable& table() {
  static const power::SignalEnergyTable t = [] {
    testbench::RefBench tb;
    power::Characterizer ch(testbench::energyModel());
    tb.bus.addFrameListener(ch);
    tb.run(trace::characterizationTrace(1234, 800,
                                        testbench::bothRegions()));
    return ch.buildTable();
  }();
  return t;
}

struct AdapterFixture : ::testing::Test {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  bus::Tl1Bus bus{clk, "ecbus"};
  FunctionalStack backend;

  HwStackMasterAdapter makeAdapter(SfrOrganization org,
                                   HwStackSlave& slave) {
    bus.attach(slave);
    HwStackMasterAdapter::Config c;
    c.base = slave.control().base;
    c.organization = org;
    return HwStackMasterAdapter(clk, bus, c);
  }

  bus::SlaveControl window() {
    bus::SlaveControl c;
    c.base = 0x9000;
    c.size = 0x100;
    return c;
  }
};

TEST_F(AdapterFixture, PushPopThroughTheBus) {
  HwStackSlave hw("hw", window(), SfrOrganization::Combined, backend);
  auto adapter = makeAdapter(SfrOrganization::Combined, hw);
  EXPECT_TRUE(adapter.push(123));
  EXPECT_TRUE(adapter.push(-45));
  EXPECT_EQ(adapter.depth(), 2u);
  EXPECT_EQ(backend.depth(), 2u);  // Really landed in the HW stack.
  JcShort v = 0;
  EXPECT_TRUE(adapter.pop(v));
  EXPECT_EQ(v, -45);
  EXPECT_TRUE(adapter.pop(v));
  EXPECT_EQ(v, 123);
  EXPECT_EQ(adapter.transport().busTransactions, 4u);
  EXPECT_GT(adapter.transport().busCycles, 0u);
}

TEST_F(AdapterFixture, UnderflowDetectedWithoutBusTraffic) {
  HwStackSlave hw("hw", window(), SfrOrganization::Combined, backend);
  auto adapter = makeAdapter(SfrOrganization::Combined, hw);
  JcShort v = 0;
  EXPECT_FALSE(adapter.pop(v));
  EXPECT_EQ(adapter.transport().busTransactions, 0u);
  EXPECT_EQ(adapter.stats().underflowAttempts, 1u);
}

TEST_F(AdapterFixture, PackedModeHalvesTransactions) {
  HwStackSlave hw("hw", window(), SfrOrganization::Packed, backend);
  auto adapter = makeAdapter(SfrOrganization::Packed, hw);
  for (JcShort i = 0; i < 8; ++i) adapter.push(i);
  JcShort v = 0;
  JcShort sum = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(adapter.pop(v));
    sum = static_cast<JcShort>(sum + v);
  }
  EXPECT_EQ(sum, 28);
  // 8 pushes + 8 pops through pair transfers: well under 16 singles.
  EXPECT_LT(adapter.transport().busTransactions, 10u);
}

TEST_F(AdapterFixture, PackedModePreservesLifoOrder) {
  HwStackSlave hw("hw", window(), SfrOrganization::Packed, backend);
  auto adapter = makeAdapter(SfrOrganization::Packed, hw);
  // Interleave pushes and pops to stress the held-value window.
  adapter.push(1);
  adapter.push(2);
  adapter.push(3);
  JcShort v = 0;
  adapter.pop(v);
  EXPECT_EQ(v, 3);
  adapter.push(4);
  adapter.push(5);
  const JcShort expect[] = {5, 4, 2, 1};
  for (JcShort e : expect) {
    ASSERT_TRUE(adapter.pop(v));
    EXPECT_EQ(v, e);
  }
  EXPECT_EQ(adapter.depth(), 0u);
}

TEST_F(AdapterFixture, StatusPollCostsExtraTransactions) {
  HwStackSlave hw("hw", window(), SfrOrganization::Combined, backend);
  bus.attach(hw);
  HwStackMasterAdapter::Config c;
  c.base = 0x9000;
  c.organization = SfrOrganization::Combined;
  c.shadowDepth = false;
  HwStackMasterAdapter adapter(clk, bus, c);
  adapter.push(1);
  const auto before = adapter.transport().busTransactions;
  adapter.depth();
  EXPECT_EQ(adapter.transport().busTransactions, before + 1);
}

class OrgParamTest : public ::testing::TestWithParam<SfrOrganization> {};

TEST_P(OrgParamTest, RefinedInterpreterMatchesFunctionalModel) {
  // The headline refinement property: same applet, same results,
  // through every SFR organization.
  const struct {
    JcProgram program;
    std::vector<JcShort> args;
  } cases[] = {
      {applets::sumLoop(), {25}},
      {applets::fibonacci(), {15}},
      {applets::wallet(100, 500), {1, 77}},
      {applets::arrayChecksum(), {9}},
  };
  for (const auto& tc : cases) {
    const auto functional = evaluateFunctional(tc.program, tc.args);
    InterfaceConfig cfg;
    cfg.name = "test";
    cfg.organization = GetParam();
    const auto refined =
        evaluateInterface(tc.program, tc.args, cfg, table());
    ASSERT_TRUE(functional.ok);
    ASSERT_TRUE(refined.ok);
    EXPECT_EQ(refined.result, functional.result);
    EXPECT_EQ(refined.bytecodes, functional.bytecodes);
    EXPECT_GT(refined.busTransactions, 0u);
    EXPECT_GT(refined.energy_fJ, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Organizations, OrgParamTest,
                         ::testing::Values(SfrOrganization::Separate,
                                           SfrOrganization::Combined,
                                           SfrOrganization::Packed));

TEST(ExplorationTest, PackedBeatsSeparateOnStackyWorkload) {
  const auto program = applets::sumLoop();
  InterfaceConfig separate;
  separate.organization = SfrOrganization::Separate;
  InterfaceConfig packed;
  packed.organization = SfrOrganization::Packed;
  const auto rSep = evaluateInterface(program, {40}, separate, table());
  const auto rPack = evaluateInterface(program, {40}, packed, table());
  EXPECT_LT(rPack.busTransactions, rSep.busTransactions);
  EXPECT_LT(rPack.energy_fJ, rSep.energy_fJ);
  EXPECT_LT(rPack.busCycles, rSep.busCycles);
}

TEST(ExplorationTest, SlowSlaveCostsCyclesNotTransactions) {
  const auto program = applets::fibonacci();
  InterfaceConfig fast;
  InterfaceConfig slow;
  slow.slaveDataWait = 3;
  const auto rFast = evaluateInterface(program, {12}, fast, table());
  const auto rSlow = evaluateInterface(program, {12}, slow, table());
  EXPECT_EQ(rFast.busTransactions, rSlow.busTransactions);
  EXPECT_GT(rSlow.busCycles, rFast.busCycles);
}

TEST(ExplorationTest, DefaultSpaceEvaluatesCleanly) {
  const auto program = applets::wallet(50, 200);
  for (const InterfaceConfig& cfg : defaultConfigSpace()) {
    const auto r = evaluateInterface(program, {1, 25}, cfg, table());
    EXPECT_TRUE(r.ok) << cfg.name;
    EXPECT_EQ(r.result, 75) << cfg.name;
  }
}

} // namespace
} // namespace sct::jcvm
