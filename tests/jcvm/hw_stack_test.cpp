// Slave-adapter tests: SFR accesses restored into stack interface calls.
#include "jcvm/hw_stack.h"

#include <gtest/gtest.h>

namespace sct::jcvm {
namespace {

bus::SlaveControl window(bus::Address base = 0x8000) {
  bus::SlaveControl c;
  c.base = base;
  c.size = 0x100;
  return c;
}

TEST(HwStackTest, SeparateOrganizationPushPop) {
  FunctionalStack backend;
  HwStackSlave hw("hw", window(), SfrOrganization::Separate, backend);
  EXPECT_EQ(hw.writeBeat(0x8000, bus::AccessSize::Word, 0xF, 41),
            bus::BusStatus::Ok);
  EXPECT_EQ(hw.writeBeat(0x8000, bus::AccessSize::Word, 0xF, 42),
            bus::BusStatus::Ok);
  bus::Word depth = 0;
  hw.readBeat(0x8008, bus::AccessSize::Word, depth);
  EXPECT_EQ(depth, 2u);
  bus::Word v = 0;
  hw.readBeat(0x8004, bus::AccessSize::Word, v);
  EXPECT_EQ(v, 42u);
  hw.readBeat(0x8004, bus::AccessSize::Word, v);
  EXPECT_EQ(v, 41u);
}

TEST(HwStackTest, CombinedOrganizationSharesDataRegister) {
  FunctionalStack backend;
  HwStackSlave hw("hw", window(), SfrOrganization::Combined, backend);
  hw.writeBeat(0x8000, bus::AccessSize::Word, 0xF, 7);
  bus::Word status = 0;
  hw.readBeat(0x8004, bus::AccessSize::Word, status);
  EXPECT_EQ(status & 0xFF, 1u);
  bus::Word v = 0;
  hw.readBeat(0x8000, bus::AccessSize::Word, v);
  EXPECT_EQ(v, 7u);
}

TEST(HwStackTest, PackedPairTransfersKeepOrder) {
  FunctionalStack backend;
  HwStackSlave hw("hw", window(), SfrOrganization::Packed, backend);
  // Pair write: low short pushed first, high ends on top.
  hw.writeBeat(0x8000, bus::AccessSize::Word, 0xF,
               (bus::Word{0x0022} << 16) | 0x0011);
  EXPECT_EQ(backend.depth(), 2u);
  // Pair read: top in the high half.
  bus::Word v = 0;
  hw.readBeat(0x8000, bus::AccessSize::Word, v);
  EXPECT_EQ(v >> 16, 0x0022u);
  EXPECT_EQ(v & 0xFFFF, 0x0011u);
  EXPECT_EQ(backend.depth(), 0u);
}

TEST(HwStackTest, PackedSingleFallbackRegister) {
  FunctionalStack backend;
  HwStackSlave hw("hw", window(), SfrOrganization::Packed, backend);
  hw.writeBeat(0x8004, bus::AccessSize::Word, 0xF, 99);
  EXPECT_EQ(backend.depth(), 1u);
  bus::Word v = 0;
  hw.readBeat(0x8004, bus::AccessSize::Word, v);
  EXPECT_EQ(v, 99u);
}

TEST(HwStackTest, NegativeShortsRoundTrip) {
  FunctionalStack backend;
  HwStackSlave hw("hw", window(), SfrOrganization::Combined, backend);
  hw.writeBeat(0x8000, bus::AccessSize::Word, 0xF, 0xFFFB);  // -5.
  JcShort popped = 0;
  backend.pop(popped);
  EXPECT_EQ(popped, -5);
}

TEST(HwStackTest, UnderflowSetsStatusFlag) {
  FunctionalStack backend;
  HwStackSlave hw("hw", window(), SfrOrganization::Combined, backend);
  bus::Word v = 0;
  hw.readBeat(0x8000, bus::AccessSize::Word, v);  // Pop empty stack.
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(hw.underflowSeen());
  bus::Word status = 0;
  hw.readBeat(0x8004, bus::AccessSize::Word, status);
  EXPECT_TRUE(status & kHwStackErrUnderflow);
}

TEST(HwStackTest, OverflowSetsStatusFlag) {
  FunctionalStack backend(2);
  HwStackSlave hw("hw", window(), SfrOrganization::Combined, backend);
  hw.writeBeat(0x8000, bus::AccessSize::Word, 0xF, 1);
  hw.writeBeat(0x8000, bus::AccessSize::Word, 0xF, 2);
  hw.writeBeat(0x8000, bus::AccessSize::Word, 0xF, 3);
  EXPECT_TRUE(hw.overflowSeen());
}

TEST(HwStackTest, ResetClearsStackAndFlags) {
  FunctionalStack backend;
  HwStackSlave hw("hw", window(), SfrOrganization::Combined, backend);
  hw.writeBeat(0x8000, bus::AccessSize::Word, 0xF, 5);
  bus::Word v = 0;
  hw.readBeat(0x8000, bus::AccessSize::Word, v);
  hw.readBeat(0x8000, bus::AccessSize::Word, v);  // Underflow.
  hw.writeBeat(0x8008, bus::AccessSize::Word, 0xF, 1);  // CTRL reset.
  EXPECT_EQ(backend.depth(), 0u);
  EXPECT_FALSE(hw.underflowSeen());
}

} // namespace
} // namespace sct::jcvm
