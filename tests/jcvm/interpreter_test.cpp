#include "jcvm/interpreter.h"

#include <gtest/gtest.h>

#include "jcvm/applets.h"

namespace sct::jcvm {
namespace {

struct VmFixture : ::testing::Test {
  FunctionalStack stack;
  Firewall firewall;

  JcShort runProgram(const JcProgram& p, std::vector<JcShort> args = {},
                     bool expectOk = true,
                     VmError expectedError = VmError::None) {
    MemoryManager memory(p.staticFieldCount);
    Interpreter vm(p, stack, memory, firewall);
    const bool ok = vm.run(args);
    EXPECT_EQ(ok, expectOk);
    EXPECT_EQ(vm.error(), expectedError);
    return vm.result();
  }
};

JcProgram singleMethod(const std::function<void(ProgramBuilder&)>& body,
                       std::uint8_t args = 0, std::uint8_t locals = 4) {
  ProgramBuilder b;
  b.beginMethod("m", args, locals);
  body(b);
  b.endMethod();
  return b.build();
}

TEST_F(VmFixture, ArithmeticChain) {
  const auto p = singleMethod([](ProgramBuilder& b) {
    b.emitS8(Bc::Bspush, 6);
    b.emitS8(Bc::Bspush, 7);
    b.emit(Bc::Smul);     // 42
    b.emitS8(Bc::Bspush, 2);
    b.emit(Bc::Sdiv);     // 21
    b.emitS8(Bc::Bspush, 9);
    b.emit(Bc::Ssub);     // 12
    b.emit(Bc::Sneg);     // -12
    b.emit(Bc::Sreturn);
  });
  EXPECT_EQ(runProgram(p), -12);
}

TEST_F(VmFixture, BitwiseAndShifts) {
  const auto p = singleMethod([](ProgramBuilder& b) {
    b.emitS16(Bc::Sspush, 0x0F0F);
    b.emitS16(Bc::Sspush, 0x00FF);
    b.emit(Bc::Sand);     // 0x000F
    b.emitS8(Bc::Bspush, 4);
    b.emit(Bc::Sshl);     // 0x00F0
    b.emitS16(Bc::Sspush, 0x0F00);
    b.emit(Bc::Sor);      // 0x0FF0
    b.emitS16(Bc::Sspush, 0x0110);
    b.emit(Bc::Sxor);     // 0x0EE0
    b.emit(Bc::Sreturn);
  });
  EXPECT_EQ(runProgram(p), 0x0EE0);
}

TEST_F(VmFixture, DupSwapPop) {
  const auto p = singleMethod([](ProgramBuilder& b) {
    b.emitS8(Bc::Bspush, 3);
    b.emitS8(Bc::Bspush, 5);
    b.emit(Bc::Swap);     // 5, 3 (3 on top)
    b.emit(Bc::Dup);      // 5, 3, 3
    b.emit(Bc::Sadd);     // 5, 6
    b.emit(Bc::Smul);     // 30
    b.emit(Bc::Sreturn);
  });
  EXPECT_EQ(runProgram(p), 30);
}

TEST_F(VmFixture, LocalsAndSinc) {
  const auto p = singleMethod([](ProgramBuilder& b) {
    b.emitS8(Bc::Bspush, 10);
    b.emitU8(Bc::Sstore, 1);
    b.sinc(1, 5);
    b.sinc(1, -3);
    b.emitU8(Bc::Sload, 1);
    b.emit(Bc::Sreturn);
  });
  EXPECT_EQ(runProgram(p), 12);
}

TEST_F(VmFixture, SumLoopApplet) {
  EXPECT_EQ(runProgram(applets::sumLoop(), {10}), 55);
  EXPECT_EQ(runProgram(applets::sumLoop(), {100}), 5050);
  EXPECT_EQ(runProgram(applets::sumLoop(), {0}), 0);
}

TEST_F(VmFixture, FibonacciApplet) {
  EXPECT_EQ(runProgram(applets::fibonacci(), {0}), 0);
  EXPECT_EQ(runProgram(applets::fibonacci(), {1}), 1);
  EXPECT_EQ(runProgram(applets::fibonacci(), {10}), 55);
  EXPECT_EQ(runProgram(applets::fibonacci(), {20}), 6765);
}

TEST_F(VmFixture, WalletCreditAndDebit) {
  EXPECT_EQ(runProgram(applets::wallet(100, 1000), {1, 50}), 150);
  EXPECT_EQ(runProgram(applets::wallet(100, 1000), {2, 30}), 70);
  // Credit clamps at the limit.
  EXPECT_EQ(runProgram(applets::wallet(900, 1000), {1, 500}), 1000);
  // Overdraft refused.
  EXPECT_EQ(runProgram(applets::wallet(10, 1000), {2, 50}), 10);
}

TEST_F(VmFixture, ArrayChecksumApplet) {
  // sum of i*i for i in 0..5 = 0+1+4+9+16+25 = 55.
  EXPECT_EQ(runProgram(applets::arrayChecksum(), {6}), 55);
}

TEST_F(VmFixture, GcdApplet) {
  EXPECT_EQ(runProgram(applets::gcd(), {48, 36}), 12);
  EXPECT_EQ(runProgram(applets::gcd(), {17, 5}), 1);
  EXPECT_EQ(runProgram(applets::gcd(), {100, 0}), 100);
  EXPECT_EQ(runProgram(applets::gcd(), {7, 7}), 7);
}

TEST_F(VmFixture, BubbleSortApplet) {
  // Descending fill n..1, sorted ascending: arr[k] == k + 1.
  EXPECT_EQ(runProgram(applets::bubbleSort(), {8, 0}), 1);
  EXPECT_EQ(runProgram(applets::bubbleSort(), {8, 7}), 8);
  EXPECT_EQ(runProgram(applets::bubbleSort(), {8, 3}), 4);
  EXPECT_EQ(runProgram(applets::bubbleSort(), {1, 0}), 1);
}

TEST_F(VmFixture, FirewallViolationIsTrapped) {
  runProgram(applets::firewallViolator(), {}, false,
             VmError::FirewallViolation);
  EXPECT_GT(firewall.violations(), 0u);
}

TEST_F(VmFixture, DivisionByZeroFaults) {
  const auto p = singleMethod([](ProgramBuilder& b) {
    b.emitS8(Bc::Bspush, 1);
    b.emitS8(Bc::Bspush, 0);
    b.emit(Bc::Sdiv);
    b.emit(Bc::Sreturn);
  });
  runProgram(p, {}, false, VmError::ArithmeticError);
}

TEST_F(VmFixture, StackUnderflowFaults) {
  const auto p = singleMethod([](ProgramBuilder& b) {
    b.emit(Bc::Pop);
    b.emit(Bc::Return);
  });
  runProgram(p, {}, false, VmError::StackUnderflow);
}

TEST_F(VmFixture, BadLocalIndexFaults) {
  const auto p = singleMethod(
      [](ProgramBuilder& b) {
        b.emitU8(Bc::Sload, 9);
        b.emit(Bc::Sreturn);
      },
      0, 2);
  runProgram(p, {}, false, VmError::BadLocalIndex);
}

TEST_F(VmFixture, ArrayBoundsFault) {
  const auto p = singleMethod([](ProgramBuilder& b) {
    b.emitS8(Bc::Bspush, 4);
    b.emit(Bc::Newarray);
    b.emitS8(Bc::Bspush, 7);   // Index out of bounds.
    b.emit(Bc::Saload);
    b.emit(Bc::Sreturn);
  });
  runProgram(p, {}, false, VmError::ArrayIndexOutOfBounds);
}

TEST_F(VmFixture, NullArrayFault) {
  const auto p = singleMethod([](ProgramBuilder& b) {
    b.emitS8(Bc::Bspush, 0);  // Null reference.
    b.emitS8(Bc::Bspush, 0);
    b.emit(Bc::Saload);
    b.emit(Bc::Sreturn);
  });
  runProgram(p, {}, false, VmError::NullOrBadArray);
}

TEST_F(VmFixture, InfiniteLoopHitsStepLimit) {
  const auto p = singleMethod([](ProgramBuilder& b) {
    b.defineLabel("spin");
    b.branch(Bc::Goto, "spin");
  });
  MemoryManager memory(0);
  Interpreter vm(p, stack, memory, firewall);
  EXPECT_FALSE(vm.run({}, /*maxSteps=*/1000));
  EXPECT_EQ(vm.error(), VmError::StepLimitExceeded);
}

TEST_F(VmFixture, NestedInvocationReturnsThroughStack) {
  ProgramBuilder b;
  b.beginMethod("entry", 1, 1);
  b.emitU8(Bc::Sload, 0);
  b.invoke(1, 1);            // triple(x)
  b.emitS8(Bc::Bspush, 1);
  b.emit(Bc::Sadd);
  b.emit(Bc::Sreturn);
  b.endMethod();
  b.beginMethod("triple", 1, 1);
  b.emitU8(Bc::Sload, 0);
  b.emitS8(Bc::Bspush, 3);
  b.emit(Bc::Smul);
  b.emit(Bc::Sreturn);
  b.endMethod();
  const auto p = b.build();
  EXPECT_EQ(runProgram(p, {5}), 16);
}

TEST_F(VmFixture, CallDepthLimitFaults) {
  ProgramBuilder b;
  b.beginMethod("recurse", 0, 0);
  b.invoke(0, 0);
  b.emit(Bc::Return);
  b.endMethod();
  const auto p = b.build();
  MemoryManager memory(0);
  Interpreter vm(p, stack, memory, firewall, /*maxCallDepth=*/8);
  EXPECT_FALSE(vm.run());
  EXPECT_EQ(vm.error(), VmError::CallDepthExceeded);
}

TEST_F(VmFixture, StatsCountActivity) {
  const auto p = applets::sumLoop();
  MemoryManager memory(p.staticFieldCount);
  Interpreter vm(p, stack, memory, firewall);
  ASSERT_TRUE(vm.run({20}));
  EXPECT_GT(vm.stats().bytecodesExecuted, 100u);
  EXPECT_GT(vm.stats().stackOps, 100u);
  EXPECT_GT(vm.stats().branchesTaken, 19u);
}

TEST_F(VmFixture, StackIsResetBetweenRuns) {
  const auto p = applets::sumLoop();
  MemoryManager memory(p.staticFieldCount);
  Interpreter vm(p, stack, memory, firewall);
  ASSERT_TRUE(vm.run({5}));
  ASSERT_TRUE(vm.run({7}));
  EXPECT_EQ(vm.result(), 28);
  EXPECT_EQ(stack.depth(), 0u);
}

} // namespace
} // namespace sct::jcvm
