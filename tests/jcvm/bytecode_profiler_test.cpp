#include "jcvm/bytecode_profiler.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "jcvm/applets.h"
#include "jcvm/exploration.h"
#include "power/characterizer.h"
#include "trace/workloads.h"

namespace sct::jcvm {
namespace {

const power::SignalEnergyTable& table() {
  static const power::SignalEnergyTable t = [] {
    testbench::RefBench tb;
    power::Characterizer ch(testbench::energyModel());
    tb.bus.addFrameListener(ch);
    tb.run(trace::characterizationTrace(1234, 500,
                                        testbench::bothRegions()));
    return ch.buildTable();
  }();
  return t;
}

TEST(BytecodeProfilerTest, AttributionCoversAllEnergy) {
  std::vector<BytecodeEnergyProfiler::Entry> ranking;
  InterfaceConfig cfg;
  const auto r = evaluateInterface(applets::sumLoop(), {30}, cfg, table(),
                                   &ranking);
  ASSERT_TRUE(r.ok);
  double attributed = 0.0;
  std::uint64_t counted = 0;
  for (const auto& e : ranking) {
    attributed += e.energy_fJ;
    counted += e.count;
  }
  // Everything except the pre-run setup (the stack-reset transaction
  // issued before the first bytecode) is attributed.
  EXPECT_LE(attributed, r.energy_fJ);
  EXPECT_LT(r.energy_fJ - attributed, 10'000.0)
      << "only the session-setup energy may be unattributed";
  EXPECT_EQ(counted, r.bytecodes);
}

TEST(BytecodeProfilerTest, RankingIsSortedDescending) {
  std::vector<BytecodeEnergyProfiler::Entry> ranking;
  InterfaceConfig cfg;
  evaluateInterface(applets::fibonacci(), {15}, cfg, table(), &ranking);
  ASSERT_FALSE(ranking.empty());
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].energy_fJ, ranking[i].energy_fJ);
  }
}

TEST(BytecodeProfilerTest, StackFreeBytecodesAreCheap) {
  std::vector<BytecodeEnergyProfiler::Entry> ranking;
  InterfaceConfig cfg;
  evaluateInterface(applets::sumLoop(), {30}, cfg, table(), &ranking);
  double sincCost = 0.0;
  double sloadCost = 0.0;
  for (const auto& e : ranking) {
    if (e.op == Bc::Sinc) sincCost = e.energyPerExecution_fJ();
    if (e.op == Bc::Sload) sloadCost = e.energyPerExecution_fJ();
  }
  // Sinc touches only locals (no operand stack, no bus); Sload pushes.
  EXPECT_LT(sincCost, sloadCost);
}

TEST(BytecodeProfilerTest, ProfilerIsOptIn) {
  InterfaceConfig cfg;
  const auto r =
      evaluateInterface(applets::sumLoop(), {10}, cfg, table(), nullptr);
  EXPECT_TRUE(r.ok);  // No observer attached, still runs.
}

} // namespace
} // namespace sct::jcvm
