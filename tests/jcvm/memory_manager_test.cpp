#include "jcvm/memory_manager.h"

#include <gtest/gtest.h>

namespace sct::jcvm {
namespace {

TEST(MemoryManagerTest, StaticFieldsReadWrite) {
  MemoryManager m(4);
  EXPECT_EQ(m.staticFieldCount(), 4u);
  EXPECT_TRUE(m.writeStatic(2, -77));
  JcShort v = 0;
  EXPECT_TRUE(m.readStatic(2, v));
  EXPECT_EQ(v, -77);
  EXPECT_FALSE(m.readStatic(4, v));
  EXPECT_FALSE(m.writeStatic(9, 1));
}

TEST(MemoryManagerTest, ArrayAllocationAndAccess) {
  MemoryManager m(0, 64);
  const ArrayRef a = m.allocArray(10, 1);
  ASSERT_NE(a, 0);
  std::uint16_t len = 0;
  EXPECT_TRUE(m.arrayLength(a, len));
  EXPECT_EQ(len, 10u);
  EXPECT_EQ(m.arrayOwner(a), 1u);
  EXPECT_TRUE(m.writeArray(a, 9, 42));
  JcShort v = 0;
  EXPECT_TRUE(m.readArray(a, 9, v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(m.readArray(a, 10, v));
  EXPECT_FALSE(m.writeArray(a, 10, 0));
}

TEST(MemoryManagerTest, ArraysAreZeroInitialized) {
  MemoryManager m(0, 64);
  const ArrayRef a = m.allocArray(8, 0);
  for (std::uint16_t i = 0; i < 8; ++i) {
    JcShort v = 1;
    EXPECT_TRUE(m.readArray(a, i, v));
    EXPECT_EQ(v, 0);
  }
}

TEST(MemoryManagerTest, HeapExhaustionReturnsNull) {
  MemoryManager m(0, 16);
  EXPECT_NE(m.allocArray(10, 0), 0);
  EXPECT_EQ(m.allocArray(10, 0), 0);  // 10 + 10 > 16.
  EXPECT_NE(m.allocArray(6, 0), 0);
  EXPECT_EQ(m.heapUsedShorts(), 16u);
}

TEST(MemoryManagerTest, ZeroLengthAllocationRejected) {
  MemoryManager m(0, 16);
  EXPECT_EQ(m.allocArray(0, 0), 0);
}

TEST(MemoryManagerTest, NullRefQueries) {
  MemoryManager m(0, 16);
  std::uint16_t len = 0;
  EXPECT_FALSE(m.arrayLength(0, len));
  JcShort v = 0;
  EXPECT_FALSE(m.readArray(0, 0, v));
  EXPECT_EQ(m.arrayOwner(0), kJcreContext);
}

TEST(MemoryManagerTest, MultipleArraysAreDisjoint) {
  MemoryManager m(0, 64);
  const ArrayRef a = m.allocArray(4, 0);
  const ArrayRef b = m.allocArray(4, 0);
  m.writeArray(a, 0, 11);
  m.writeArray(b, 0, 22);
  JcShort va = 0;
  JcShort vb = 0;
  m.readArray(a, 0, va);
  m.readArray(b, 0, vb);
  EXPECT_EQ(va, 11);
  EXPECT_EQ(vb, 22);
}

TEST(FirewallTest, SharedContextIsAlwaysAccessible) {
  Firewall f;
  EXPECT_TRUE(f.allows(5, kJcreContext));
  EXPECT_TRUE(f.allows(kJcreContext, kJcreContext));
}

TEST(FirewallTest, CrossContextDenied) {
  Firewall f;
  EXPECT_TRUE(f.allows(1, 1));
  EXPECT_FALSE(f.allows(1, 2));
  EXPECT_FALSE(f.allows(2, 1));
}

TEST(FirewallTest, CountersTrackChecks) {
  Firewall f;
  f.recordCheck(true);
  f.recordCheck(false);
  f.recordCheck(true);
  EXPECT_EQ(f.checks(), 3u);
  EXPECT_EQ(f.violations(), 1u);
}

} // namespace
} // namespace sct::jcvm
