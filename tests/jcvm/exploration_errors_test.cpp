// Exploration-harness error paths: failing applets must be reported,
// not mask as results.
#include <gtest/gtest.h>

#include "../testbench.h"
#include "jcvm/applets.h"
#include "jcvm/exploration.h"
#include "power/characterizer.h"
#include "trace/workloads.h"

namespace sct::jcvm {
namespace {

const power::SignalEnergyTable& table() {
  static const power::SignalEnergyTable t = [] {
    testbench::RefBench tb;
    power::Characterizer ch(testbench::energyModel());
    tb.bus.addFrameListener(ch);
    tb.run(trace::characterizationTrace(1234, 400,
                                        testbench::bothRegions()));
    return ch.buildTable();
  }();
  return t;
}

TEST(ExplorationErrorsTest, FunctionalHarnessReportsVmErrors) {
  const auto r = evaluateFunctional(applets::firewallViolator(), {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, VmError::FirewallViolation);
}

TEST(ExplorationErrorsTest, RefinedHarnessReportsVmErrors) {
  InterfaceConfig cfg;
  const auto r =
      evaluateInterface(applets::firewallViolator(), {}, cfg, table());
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, VmError::FirewallViolation);
}

TEST(ExplorationErrorsTest, DivisionByZeroSurfacesThroughTheHarness) {
  // gcd(0, 0): first iteration divides by zero? gcd loop exits when
  // b == 0 — so gcd(0,0) returns 0 cleanly. Use explicit bad input: a
  // program dividing by its argument.
  ProgramBuilder b;
  b.beginMethod("div", 1, 1);
  b.emitS8(Bc::Bspush, 10);
  b.emitU8(Bc::Sload, 0);
  b.emit(Bc::Sdiv);
  b.emit(Bc::Sreturn);
  b.endMethod();
  const auto program = b.build();

  InterfaceConfig cfg;
  const auto ok = evaluateInterface(program, {2}, cfg, table());
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.result, 5);
  const auto bad = evaluateInterface(program, {0}, cfg, table());
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, VmError::ArithmeticError);
}

TEST(ExplorationErrorsTest, StatsStillReportedOnFailure) {
  InterfaceConfig cfg;
  const auto r =
      evaluateInterface(applets::firewallViolator(), {}, cfg, table());
  EXPECT_GT(r.bytecodes, 0u);  // The getstatic executed before the trap.
}

} // namespace
} // namespace sct::jcvm
