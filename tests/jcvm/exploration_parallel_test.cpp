// evaluateInterfaces(): the parallel configuration sweep must return
// exactly what a sequential evaluateInterface() loop returns, in
// configuration order, at any thread count.
#include <gtest/gtest.h>

#include <vector>

#include "../testbench.h"
#include "jcvm/applets.h"
#include "jcvm/exploration.h"
#include "power/characterizer.h"
#include "trace/workloads.h"

namespace sct::jcvm {
namespace {

const power::SignalEnergyTable& table() {
  static const power::SignalEnergyTable t = [] {
    testbench::RefBench tb;
    power::Characterizer ch(testbench::energyModel());
    tb.bus.addFrameListener(ch);
    tb.run(trace::characterizationTrace(1234, 400,
                                        testbench::bothRegions()));
    return ch.buildTable();
  }();
  return t;
}

void expectSameResult(const ExplorationResult& a, const ExplorationResult& b) {
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.bytecodes, b.bytecodes);
  EXPECT_EQ(a.stackOps, b.stackOps);
  EXPECT_EQ(a.busTransactions, b.busTransactions);
  EXPECT_EQ(a.busCycles, b.busCycles);
  EXPECT_EQ(a.bytesOnBus, b.bytesOnBus);
  EXPECT_EQ(a.energy_fJ, b.energy_fJ);  // Bit-identical, not approximate.
}

TEST(ExplorationParallelTest, SweepMatchesSequentialAtAnyThreadCount) {
  const JcProgram program = applets::sumLoop();
  const std::vector<JcShort> args{25};
  const std::vector<InterfaceConfig> space = defaultConfigSpace();

  std::vector<ExplorationResult> sequential;
  sequential.reserve(space.size());
  for (const InterfaceConfig& cfg : space) {
    sequential.push_back(evaluateInterface(program, args, cfg, table()));
  }

  for (unsigned threads : {1u, 2u, 5u}) {
    const std::vector<ExplorationResult> swept =
        evaluateInterfaces(program, args, space, table(), threads);
    ASSERT_EQ(swept.size(), sequential.size()) << threads << " threads";
    for (std::size_t i = 0; i < swept.size(); ++i) {
      SCOPED_TRACE(testing::Message() << threads << " threads, config "
                                      << space[i].name);
      expectSameResult(swept[i], sequential[i]);
    }
  }
}

TEST(ExplorationParallelTest, SweepResultsAreMeaningful) {
  const std::vector<InterfaceConfig> space = defaultConfigSpace();
  const std::vector<ExplorationResult> swept =
      evaluateInterfaces(applets::sumLoop(), {10}, space, table(), 2);
  for (const ExplorationResult& r : swept) {
    EXPECT_TRUE(r.ok) << r.config;
    EXPECT_GT(r.busTransactions, 0u) << r.config;
    EXPECT_GT(r.energy_fJ, 0.0) << r.config;
  }
}

} // namespace
} // namespace sct::jcvm
