#include "jcvm/bytecode.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sct::jcvm {
namespace {

TEST(BytecodeTest, OperandWidths) {
  EXPECT_EQ(operandBytes(Bc::Nop), 0u);
  EXPECT_EQ(operandBytes(Bc::Bspush), 1u);
  EXPECT_EQ(operandBytes(Bc::Sspush), 2u);
  EXPECT_EQ(operandBytes(Bc::Sinc), 2u);
  EXPECT_EQ(operandBytes(Bc::Goto), 2u);
  EXPECT_EQ(operandBytes(Bc::Invokestatic), 2u);
  EXPECT_EQ(operandBytes(Bc::Sreturn), 0u);
}

TEST(BytecodeTest, MnemonicsFollowJavaCardNames) {
  EXPECT_EQ(mnemonic(Bc::Sspush), "sspush");
  EXPECT_EQ(mnemonic(Bc::IfScmplt), "if_scmplt");
  EXPECT_EQ(mnemonic(Bc::Getstatic), "getstatic_s");
}

TEST(ProgramBuilderTest, EmitsBytesInOrder) {
  ProgramBuilder b;
  b.beginMethod("m", 0, 0);
  b.emitS8(Bc::Bspush, -3);
  b.emitS16(Bc::Sspush, 0x1234);
  b.emit(Bc::Sreturn);
  b.endMethod();
  const JcProgram p = b.build();
  ASSERT_EQ(p.code.size(), 6u);
  EXPECT_EQ(p.code[0], static_cast<std::uint8_t>(Bc::Bspush));
  EXPECT_EQ(p.code[1], 0xFD);
  EXPECT_EQ(p.code[2], static_cast<std::uint8_t>(Bc::Sspush));
  EXPECT_EQ(p.code[3], 0x12);
  EXPECT_EQ(p.code[4], 0x34);
}

TEST(ProgramBuilderTest, BranchFixupsResolve) {
  ProgramBuilder b;
  b.beginMethod("m", 0, 0);
  b.branch(Bc::Goto, "end");   // At 0, operand at 1..2.
  b.emit(Bc::Nop);             // At 3.
  b.defineLabel("end");        // At 4.
  b.emit(Bc::Return);
  b.endMethod();
  const JcProgram p = b.build();
  // Relative to the opcode byte at 0: offset = 4.
  EXPECT_EQ(p.code[1], 0x00);
  EXPECT_EQ(p.code[2], 0x04);
}

TEST(ProgramBuilderTest, BackwardBranch) {
  ProgramBuilder b;
  b.beginMethod("m", 0, 0);
  b.defineLabel("top");  // 0.
  b.emit(Bc::Nop);       // 0.
  b.branch(Bc::Goto, "top");  // Opcode at 1; offset = 0 - 1 = -1.
  b.endMethod();
  const JcProgram p = b.build();
  EXPECT_EQ(p.code[2], 0xFF);
  EXPECT_EQ(p.code[3], 0xFF);
}

TEST(ProgramBuilderTest, UndefinedLabelThrows) {
  ProgramBuilder b;
  b.beginMethod("m", 0, 0);
  b.branch(Bc::Goto, "nowhere");
  b.endMethod();
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(ProgramBuilderTest, UnclosedMethodThrows) {
  ProgramBuilder b;
  b.beginMethod("m", 0, 0);
  EXPECT_THROW(b.build(), std::runtime_error);
  EXPECT_THROW(b.beginMethod("n", 0, 0), std::runtime_error);
}

TEST(ProgramBuilderTest, MaxLocalsMustCoverArgs) {
  ProgramBuilder b;
  EXPECT_THROW(b.beginMethod("m", 3, 2), std::runtime_error);
}

TEST(ProgramBuilderTest, MethodTableRecordsOffsets) {
  ProgramBuilder b;
  b.beginMethod("first", 0, 1, 7);
  b.emit(Bc::Return);
  b.endMethod();
  b.beginMethod("second", 1, 2);
  b.emit(Bc::Return);
  b.endMethod();
  const JcProgram p = b.build();
  ASSERT_EQ(p.methods.size(), 2u);
  EXPECT_EQ(p.methods[0].offset, 0u);
  EXPECT_EQ(p.methods[0].context, 7u);
  EXPECT_EQ(p.methods[1].offset, 1u);
  EXPECT_EQ(p.methods[1].argCount, 1u);
}

TEST(ProgramBuilderTest, StaticFieldsTrackContexts) {
  ProgramBuilder b;
  EXPECT_EQ(b.addStaticField(0), 0u);
  EXPECT_EQ(b.addStaticField(5), 1u);
  b.beginMethod("m", 0, 0);
  b.emit(Bc::Return);
  b.endMethod();
  const JcProgram p = b.build();
  EXPECT_EQ(p.staticFieldCount, 2u);
  EXPECT_EQ(p.fieldContext(0), 0u);
  EXPECT_EQ(p.fieldContext(1), 5u);
  EXPECT_EQ(p.fieldContext(99), 0u);  // Default context.
}

} // namespace
} // namespace sct::jcvm
