// The optimized layer-1 energy hot path against a naive reference.
//
// Tl1PowerModel::busCycleEnd was restructured for speed: early-out on
// unchanged frames, XOR + popcount Hamming distances, and direct
// indexing of the flat coefficient array instead of an energyFor() call
// per signal. None of that may change the numbers: this test replays
// random-mix workloads with the production model and an independently
// written naive observer (per-signal energyFor, no early-out) attached
// to the same bus, and requires bit-identical accumulated energy and
// transition counts.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "../testbench.h"
#include "bus/ec_signals.h"
#include "power/tl1_power_model.h"
#include "trace/workloads.h"

namespace sct {
namespace {

using bus::SignalId;
using testbench::Tl1Bench;

/// Straight-line reimplementation of the layer-1 TL-to-RTL adapter the
/// way the original (pre-fast-path) code computed it: reconstruct the
/// signal frame from the bus phases, then walk every signal, take
/// hammingDistance and price it with energyFor — unconditionally.
struct NaiveTl1Energy final : bus::Tl1Observer {
  explicit NaiveTl1Energy(const power::SignalEnergyTable& table)
      : table(table) {}

  void busCycleBegin(std::uint64_t) override {
    next = prev;
    next.set(SignalId::EB_AValid, 0);
    next.set(SignalId::EB_ARdy, 0);
    next.set(SignalId::EB_RdVal, 0);
    next.set(SignalId::EB_RBErr, 0);
    next.set(SignalId::EB_WDRdy, 0);
    next.set(SignalId::EB_WBErr, 0);
    next.set(SignalId::EB_Last, 0);
  }

  void addressPhase(const bus::AddressPhaseInfo& info) override {
    next.set(SignalId::EB_A, info.address);
    next.set(SignalId::EB_Instr, info.kind == bus::Kind::InstrFetch);
    next.set(SignalId::EB_Write, info.kind == bus::Kind::Write);
    next.set(SignalId::EB_Burst, info.beats > 1);
    next.set(SignalId::EB_BE, info.byteEnables);
    next.set(SignalId::EB_AValid, 1);
    next.set(SignalId::EB_Sel,
             info.error ? 0 : bus::AddressDecoder::selectMask(info.slave));
    if (info.accepted && !info.error) next.set(SignalId::EB_ARdy, 1);
  }

  void readBeat(const bus::DataBeatInfo& info) override {
    if (info.error) {
      next.set(SignalId::EB_RBErr, 1);
      next.set(SignalId::EB_Last, 1);
      return;
    }
    next.set(SignalId::EB_RData, info.data);
    next.set(SignalId::EB_RdVal, 1);
    if (info.last) next.set(SignalId::EB_Last, 1);
  }

  void writeBeat(const bus::DataBeatInfo& info) override {
    if (info.error) {
      next.set(SignalId::EB_WBErr, 1);
      next.set(SignalId::EB_Last, 1);
      return;
    }
    next.set(SignalId::EB_WData, info.data);
    next.set(SignalId::EB_WDRdy, 1);
    if (info.last) next.set(SignalId::EB_Last, 1);
  }

  void busCycleEnd(std::uint64_t) override {
    double e = 0.0;
    for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
      const SignalId id = static_cast<SignalId>(i);
      const unsigned n = bus::hammingDistance(id, prev.get(id), next.get(id));
      transitions[i] += n;
      e += table.energyFor(id, static_cast<double>(n));
    }
    total_fJ += e;
    prev = next;
  }

  power::SignalEnergyTable table;
  bus::SignalFrame prev;
  bus::SignalFrame next;
  std::array<std::uint64_t, bus::kSignalCount> transitions{};
  double total_fJ = 0.0;
};

power::SignalEnergyTable distinctTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    // Distinct, irrational-ish coefficients so a reordering or a
    // dropped term cannot cancel out.
    t.setCoeff_fJ(static_cast<SignalId>(i),
                  7.25 + 1.0 / static_cast<double>(3 * i + 1));
  }
  return t;
}

class PowerEquivalenceSeedTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PowerEquivalenceSeedTest, FastPathEnergyBitIdenticalToNaive) {
  const auto table = distinctTable();
  trace::MixRatios mix;
  mix.instrFetch = 1;
  const trace::BusTrace workload =
      trace::randomMix(GetParam(), 400, testbench::bothRegions(), mix,
                       /*issueGapMax=*/3);

  Tl1Bench bench;
  power::Tl1PowerModel fast(table);
  power::Tl1PowerModel scalar(table);
  scalar.setPackedCounting(false);  // Force the scalar dirty-walk.
  NaiveTl1Energy naive(table);
  bench.bus.addObserver(fast);
  bench.bus.addObserver(scalar);
  bench.bus.addObserver(naive);
  bench.run(workload);

  // Bit-identical, not approximately equal: the fast path must perform
  // the same additions in the same order.
  EXPECT_EQ(fast.totalEnergy_fJ(), naive.total_fJ) << "seed " << GetParam();
  EXPECT_GT(fast.totalEnergy_fJ(), 0.0);
  // The packed-lane counting (wide XOR over the whole frame on busy
  // cycles) and the per-bundle scalar walk must agree term for term.
  EXPECT_EQ(fast.totalEnergy_fJ(), scalar.totalEnergy_fJ())
      << "seed " << GetParam();
  // Whether any cycle of a given random mix crosses kPackedLaneThreshold
  // is workload-dependent; PackedPathExercised below guarantees coverage
  // on a mix dense enough to take the wide pass.
  EXPECT_EQ(scalar.packedLaneCycles(), 0u);
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    EXPECT_EQ(fast.transitions(static_cast<SignalId>(i)),
              naive.transitions[i])
        << "signal " << bus::signalName(static_cast<SignalId>(i));
    EXPECT_EQ(fast.transitions(static_cast<SignalId>(i)),
              scalar.transitions(static_cast<SignalId>(i)))
        << "signal " << bus::signalName(static_cast<SignalId>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, PowerEquivalenceSeedTest,
                         ::testing::Values(3u, 17u, 99u, 2024u));

// Coverage guarantee for the packed-lane pass: a back-to-back mix of
// every transaction kind keeps flipping the address-phase control
// bundles (EB_Instr/EB_Write/EB_Burst/EB_BE) on top of the
// address/data traffic, so busy cycles dirty enough of the frame to
// cross kPackedLaneThreshold — and the wide pass must still price
// exactly the scalar walk's term sequence. (A single-kind workload
// does not qualify: its control bundles hold steady and busy cycles
// stay under the threshold, which is why the per-seed test above
// makes no packed-coverage claim.)
TEST(PowerEquivalenceTest, PackedPathExercised) {
  const auto table = distinctTable();
  trace::MixRatios mix;
  mix.instrFetch = 1;
  const trace::BusTrace workload =
      trace::randomMix(3u, 400, testbench::bothRegions(), mix,
                       /*issueGapMax=*/0);

  Tl1Bench bench;
  power::Tl1PowerModel fast(table);
  power::Tl1PowerModel scalar(table);
  scalar.setPackedCounting(false);
  NaiveTl1Energy naive(table);
  bench.bus.addObserver(fast);
  bench.bus.addObserver(scalar);
  bench.bus.addObserver(naive);
  bench.run(workload);

  EXPECT_GT(fast.packedLaneCycles(), 0u);
  EXPECT_EQ(scalar.packedLaneCycles(), 0u);
  EXPECT_EQ(fast.totalEnergy_fJ(), naive.total_fJ);
  EXPECT_EQ(fast.totalEnergy_fJ(), scalar.totalEnergy_fJ());
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    EXPECT_EQ(fast.transitions(static_cast<SignalId>(i)),
              naive.transitions[i])
        << "signal " << bus::signalName(static_cast<SignalId>(i));
  }
}

} // namespace
} // namespace sct
