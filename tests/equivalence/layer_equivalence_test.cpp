// Cross-layer equivalence properties.
//
// These tests establish the paper's Table 1 claims as checked
// invariants of the codebase:
//  * the layer-1 model is cycle-identical to the layer-0 (gate-level
//    substitute) model on arbitrary workloads — "0 % timing error";
//  * the layer-1 power adapter reconstructs the layer-0 signal frames
//    bit-exactly, so its only energy error is the coefficient
//    abstraction;
//  * the layer-2 model is a slight, bounded over-estimate of layer-1
//    timing on static-wait workloads (the "+0.5 %" shape).
#include <gtest/gtest.h>

#include <vector>

#include "../testbench.h"
#include "bus/ec_signals.h"
#include "power/tl1_power_model.h"
#include "ref/gl_bus.h"
#include "trace/workloads.h"

namespace sct {
namespace {

using bus::Kind;
using bus::SignalFrame;
using testbench::RefBench;
using testbench::Tl1Bench;
using testbench::Tl2Bench;
using trace::BusTrace;

/// Collects the frame reconstructed by the layer-1 power adapter after
/// each bus cycle (register after the power model!).
struct Tl1FrameCollector : bus::Tl1Observer {
  explicit Tl1FrameCollector(const power::Tl1PowerModel& pm) : pm_(pm) {}
  void busCycleEnd(std::uint64_t) override { frames.push_back(pm_.frame()); }
  std::vector<SignalFrame> frames;

 private:
  const power::Tl1PowerModel& pm_;
};

struct GlFrameCollector : ref::FrameListener {
  void onFrame(std::uint64_t, const SignalFrame&, const SignalFrame& next,
               const ref::GlitchCounts&, const ref::CycleEnergy&) override {
    frames.push_back(next);
  }
  std::vector<SignalFrame> frames;
};

class EquivalenceSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceSeedTest, Layer1CycleCountEqualsLayer0) {
  const auto regions = testbench::bothRegions();
  trace::MixRatios mix;
  mix.instrFetch = 1;
  const BusTrace workload =
      trace::randomMix(GetParam(), 300, regions, mix, /*issueGapMax=*/3);

  Tl1Bench tl1;
  RefBench gl;
  const std::uint64_t cyclesTl1 = tl1.run(workload);
  const std::uint64_t cyclesGl = gl.run(workload);
  EXPECT_EQ(cyclesTl1, cyclesGl) << "seed " << GetParam();
}

TEST_P(EquivalenceSeedTest, Layer1FramesEqualLayer0Frames) {
  const auto regions = testbench::bothRegions();
  const BusTrace workload =
      trace::randomMix(GetParam() + 1000, 150, regions, trace::MixRatios{},
                       /*issueGapMax=*/2);

  power::SignalEnergyTable dummy;  // Coefficients irrelevant for frames.
  Tl1Bench tl1;
  power::Tl1PowerModel pm(dummy);
  Tl1FrameCollector tl1Frames(pm);
  tl1.bus.addObserver(pm);
  tl1.bus.addObserver(tl1Frames);

  RefBench gl;
  GlFrameCollector glFrames;
  gl.bus.addFrameListener(glFrames);

  tl1.run(workload);
  gl.run(workload);

  ASSERT_EQ(tl1Frames.frames.size(), glFrames.frames.size());
  for (std::size_t i = 0; i < glFrames.frames.size(); ++i) {
    ASSERT_EQ(tl1Frames.frames[i], glFrames.frames[i])
        << "first divergent frame at cycle " << i + 1;
  }
}

TEST_P(EquivalenceSeedTest, ReadDataAgreesAcrossLayers) {
  const auto regions = testbench::bothRegions();
  const BusTrace workload =
      trace::randomMix(GetParam() + 2000, 100, regions, trace::MixRatios{});

  Tl1Bench tl1;
  RefBench gl;
  trace::ReplayMaster m1(tl1.clk, "m1", tl1.bus, tl1.bus, workload);
  trace::ReplayMaster m0(gl.clk, "m0", gl.bus, gl.bus, workload);
  m1.runToCompletion();
  m0.runToCompletion();
  ASSERT_EQ(m1.requests().size(), m0.requests().size());
  for (std::size_t i = 0; i < m1.requests().size(); ++i) {
    EXPECT_EQ(m1.requests()[i].result, m0.requests()[i].result);
    EXPECT_EQ(m1.requests()[i].data, m0.requests()[i].data) << "entry " << i;
  }
}

TEST_P(EquivalenceSeedTest, Layer2IsABoundedOverestimateOfLayer1) {
  const auto regions = testbench::bothRegions();
  trace::MixRatios mix;
  mix.instrFetch = 1;
  const BusTrace workload =
      trace::randomMix(GetParam() + 3000, 400, regions, mix,
                       /*issueGapMax=*/4);

  Tl1Bench tl1;
  Tl2Bench tl2;
  const double c1 = static_cast<double>(tl1.run(workload));
  const double c2 = static_cast<double>(tl2.run(workload));
  EXPECT_GE(c2, c1) << "layer 2 must not undercut layer 1 on static waits";
  EXPECT_LT((c2 - c1) / c1, 0.05)
      << "layer-2 timing error should stay in the few-percent band";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceSeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(EquivalenceVerificationSuite, CycleEqualityOnEverySpecExample) {
  const auto suite =
      trace::verificationSuite(testbench::fastRegion(),
                               testbench::waitedRegion());
  for (const trace::NamedTrace& nt : suite) {
    Tl1Bench tl1;
    RefBench gl;
    EXPECT_EQ(tl1.run(nt.trace), gl.run(nt.trace)) << nt.name;
  }
}

TEST(EquivalenceVerificationSuite, FrameEqualityOnEverySpecExample) {
  const auto suite =
      trace::verificationSuite(testbench::fastRegion(),
                               testbench::waitedRegion());
  power::SignalEnergyTable dummy;
  for (const trace::NamedTrace& nt : suite) {
    Tl1Bench tl1;
    power::Tl1PowerModel pm(dummy);
    Tl1FrameCollector tl1Frames(pm);
    tl1.bus.addObserver(pm);
    tl1.bus.addObserver(tl1Frames);
    RefBench gl;
    GlFrameCollector glFrames;
    gl.bus.addFrameListener(glFrames);
    tl1.run(nt.trace);
    gl.run(nt.trace);
    ASSERT_EQ(tl1Frames.frames.size(), glFrames.frames.size()) << nt.name;
    for (std::size_t i = 0; i < glFrames.frames.size(); ++i) {
      ASSERT_EQ(tl1Frames.frames[i], glFrames.frames[i])
          << nt.name << " cycle " << i + 1;
    }
  }
}

TEST(EquivalenceErrors, ErrorTransactionsAgreeAcrossLayers) {
  BusTrace t;
  trace::TraceEntry miss;
  miss.kind = Kind::Read;
  miss.address = 0x30000;  // Unmapped.
  t.append(miss);
  trace::TraceEntry violation;
  violation.kind = Kind::Write;
  violation.address = 0x8000;
  t.append(violation);

  // Make the waited window read-only in both benches.
  Tl1Bench tl1bench;
  RefBench glbench;
  // (The shared benches have writable windows; use the unmapped miss and
  //  compare latency/err counts only.)
  trace::ReplayMaster m1(tl1bench.clk, "m1", tl1bench.bus, tl1bench.bus, t);
  trace::ReplayMaster m0(glbench.clk, "m0", glbench.bus, glbench.bus, t);
  const std::uint64_t e1 = m1.runToCompletion();
  const std::uint64_t e0 = m0.runToCompletion();
  EXPECT_EQ(e1, e0);
  EXPECT_EQ(m1.stats().errors, m0.stats().errors);
}

TEST(EquivalenceErrors, InterleavedErrorsKeepFramesIdentical) {
  // Decode misses mixed into live traffic: error strobes, select-line
  // clearing and same-cycle data beats must reconstruct identically.
  BusTrace t;
  sim::Xoshiro256 rng(4242);
  for (unsigned i = 0; i < 120; ++i) {
    trace::TraceEntry e;
    const auto roll = rng.below(10);
    e.kind = roll < 2 ? Kind::Write : Kind::Read;
    e.beats = rng.chance(1, 3) ? 4 : 1;
    if (rng.chance(1, 5)) {
      e.address = 0x40000 + 16 * i;  // Unmapped: bus error.
    } else {
      e.address = (rng.chance(1, 2) ? 0x0000 : 0x8000) + (16 * i) % 0x1F00;
    }
    if (e.kind == Kind::Write) {
      for (unsigned b = 0; b < e.beats; ++b) e.writeData[b] = rng.next32();
    }
    t.append(e);
  }

  power::SignalEnergyTable dummy;
  Tl1Bench tl1;
  power::Tl1PowerModel pm(dummy);
  Tl1FrameCollector tl1Frames(pm);
  tl1.bus.addObserver(pm);
  tl1.bus.addObserver(tl1Frames);
  RefBench gl;
  GlFrameCollector glFrames;
  gl.bus.addFrameListener(glFrames);

  const std::uint64_t c1 = tl1.run(t);
  const std::uint64_t c0 = gl.run(t);
  EXPECT_EQ(c1, c0);
  ASSERT_EQ(tl1Frames.frames.size(), glFrames.frames.size());
  for (std::size_t i = 0; i < glFrames.frames.size(); ++i) {
    ASSERT_EQ(tl1Frames.frames[i], glFrames.frames[i]) << "cycle " << i + 1;
  }
}

TEST(EquivalenceDynamicWaits, DynamicStretchKeepsLayer0And1InLockstep) {
  // EEPROM-style dynamic write stretch is visible to layers 0 and 1
  // (they interact with the slave every cycle) and must keep them
  // cycle-identical even though layer 2 cannot see it at all.
  BusTrace t;
  for (unsigned i = 0; i < 5; ++i) {
    trace::TraceEntry e;
    e.kind = Kind::Write;
    e.address = 0x100 + 4 * i;
    e.writeData[0] = 0xA0 + i;
    t.append(e);
  }
  Tl1Bench tl1;
  tl1.fast.setExtraWritePerBeat(2);
  RefBench gl;
  gl.fast.setExtraWritePerBeat(2);
  const std::uint64_t c1 = tl1.run(t);
  const std::uint64_t c0 = gl.run(t);
  EXPECT_EQ(c1, c0);

  Tl2Bench tl2;
  tl2.fast.setExtraWritePerBeat(2);
  EXPECT_LT(tl2.run(t), c1) << "layer 2 cannot see dynamic stretches";
}

} // namespace
} // namespace sct
