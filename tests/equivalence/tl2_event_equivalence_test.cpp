// TL2 fast-path equivalence: the event-driven schedule against the
// per-cycle reference.
//
// The layer-2 bus resolves its whole phase schedule at accept time and
// parks between boundaries (tl2_bus.h); the original per-cycle
// countdown survives behind setPerCycleProcess as the reference
// implementation. These tests drive the SAME workloads through both
// paths and require bit-identical results everywhere a master, an
// observer or a power model could look:
//  * Tl2BusStats and ReplayStats, field by field,
//  * per-request result/slave/phase lengths/accept/finish cycles,
//  * read-result payloads and final slave memory images,
//  * the cycle number of every observer callback,
//  * Tl2PowerModel interval samples and accumulated energy (exact
//    double equality — the callback sequence is the same, so the
//    floating-point operation order must be too).
// Workloads sweep the interesting regimes: dense mixes (unit backlog),
// sparse issue gaps (dead-cycle warp), decode misses, wait-state
// combinations, and single-class floods that saturate the
// kMaxOutstandingPerClass backpressure.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "../testbench.h"
#include "bus/memory_slave.h"
#include "bus/tl2_bus.h"
#include "power/tl2_power_model.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct {
namespace {

using bus::Kind;
using trace::BusTrace;

/// Distinct per-signal coefficients so a transition miscount on any
/// bundle shows up in the energy totals.
power::SignalEnergyTable variedTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  0.75 + 0.125 * static_cast<double>(i));
  }
  return t;
}

struct PhaseRecord {
  std::uint64_t cycle = 0;  ///< Bus cycle the callback fired on.
  bool dataPhase = false;
  Kind kind = Kind::Read;
  bus::Address address = 0;
  std::size_t bytes = 0;
  unsigned beats = 0;
  unsigned cycles = 0;
  int slave = -1;
  bool error = false;
  std::uint64_t payloadSum = 0;  ///< Checksum of *data (pointers differ).

  bool operator==(const PhaseRecord&) const = default;
};

/// Records every observer callback together with the cycle it fired on.
struct PhaseLogger final : bus::Tl2Observer {
  explicit PhaseLogger(const bus::Tl2Bus& bus) : bus_(bus) {}

  void addressPhaseDone(const bus::Tl2PhaseInfo& i) override {
    log.push_back(make(i, false));
  }
  void dataPhaseDone(const bus::Tl2PhaseInfo& i) override {
    log.push_back(make(i, true));
  }

  std::vector<PhaseRecord> log;

 private:
  PhaseRecord make(const bus::Tl2PhaseInfo& i, bool data) const {
    PhaseRecord r;
    r.cycle = bus_.cycle();
    r.dataPhase = data;
    r.kind = i.kind;
    r.address = i.address;
    r.bytes = i.bytes;
    r.beats = i.beats;
    r.cycles = i.cycles;
    r.slave = i.slave;
    r.error = i.error;
    if (i.data != nullptr) {
      std::uint64_t sum = 1469598103934665603ull;
      for (std::size_t b = 0; b < i.bytes; ++b) {
        sum = (sum ^ i.data[b]) * 1099511628211ull;
      }
      r.payloadSum = sum;
    }
    return r;
  }

  const bus::Tl2Bus& bus_;
};

/// Samples the power model's interval method after every data phase —
/// the platform sampling pattern — so the interval stream itself is
/// pinned, not just the final total.
struct IntervalSampler final : bus::Tl2Observer {
  explicit IntervalSampler(power::Tl2PowerModel& pm) : pm_(pm) {}
  void dataPhaseDone(const bus::Tl2PhaseInfo&) override {
    samples.push_back(pm_.energySinceLastCall_fJ());
  }
  std::vector<double> samples;

 private:
  power::Tl2PowerModel& pm_;
};

struct RequestSnap {
  bus::BusStatus result = bus::BusStatus::Wait;
  int slave = -1;
  unsigned addrCycles = 0;
  unsigned dataCycles = 0;
  std::uint64_t acceptCycle = 0;
  std::uint64_t finishCycle = 0;

  bool operator==(const RequestSnap&) const = default;
};

struct RunResult {
  std::uint64_t elapsed = 0;
  bus::Tl2BusStats bus;
  trace::ReplayStats replay;
  std::vector<RequestSnap> requests;
  std::vector<std::array<std::uint8_t, 16>> readData;
  std::vector<PhaseRecord> phases;
  std::vector<double> intervals;
  double total_fJ = 0.0;
  std::vector<std::uint8_t> fastImage;
  std::vector<std::uint8_t> waitedImage;
};

/// The Tl2Bench platform with a configurable slow-window control block
/// and preloaded, realistic memory contents (read payloads matter).
struct Platform {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  bus::Tl2Bus bus{clk, "ecbus_tl2"};
  bus::MemorySlave fast{"ram", testbench::fastCtl()};
  bus::MemorySlave waited;

  Platform(bool perCycle, const bus::SlaveControl& slowCtl)
      : waited("eeprom", slowCtl) {
    bus.setPerCycleProcess(perCycle);
    bus.attach(fast);
    bus.attach(waited);
    trace::fillRealistic(fast.data(), fast.sizeBytes(), 11);
    trace::fillRealistic(waited.data(), waited.sizeBytes(), 22);
  }
};

RunResult run(const BusTrace& t, bool perCycle,
              const bus::SlaveControl& slowCtl, bool withObservers = true) {
  Platform p(perCycle, slowCtl);
  power::Tl2PowerModel pm(variedTable());
  PhaseLogger logger(p.bus);
  IntervalSampler sampler(pm);
  if (withObservers) {
    p.bus.addObserver(pm);
    p.bus.addObserver(logger);
    p.bus.addObserver(sampler);
  }

  trace::Tl2ReplayMaster master(p.clk, "master", p.bus, t);
  RunResult r;
  r.elapsed = master.runToCompletion();
  r.bus = p.bus.stats();
  r.replay = master.stats();
  for (const bus::Tl2Request& q : master.requests()) {
    r.requests.push_back({q.result, q.slave, q.addrCycles, q.dataCycles,
                          q.acceptCycle, q.finishCycle});
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::Write) r.readData.push_back(master.buffer(i));
  }
  r.phases = std::move(logger.log);
  r.intervals = std::move(sampler.samples);
  r.total_fJ = pm.totalEnergy_fJ();
  r.fastImage.assign(p.fast.data(), p.fast.data() + p.fast.sizeBytes());
  r.waitedImage.assign(p.waited.data(),
                       p.waited.data() + p.waited.sizeBytes());
  return r;
}

void expectBusStatsEqual(const bus::Tl2BusStats& ev,
                         const bus::Tl2BusStats& pc) {
  EXPECT_EQ(ev.cycles, pc.cycles);
  EXPECT_EQ(ev.busyCycles, pc.busyCycles);
  EXPECT_EQ(ev.instrTransactions, pc.instrTransactions);
  EXPECT_EQ(ev.readTransactions, pc.readTransactions);
  EXPECT_EQ(ev.writeTransactions, pc.writeTransactions);
  EXPECT_EQ(ev.errors, pc.errors);
  EXPECT_EQ(ev.bytesRead, pc.bytesRead);
  EXPECT_EQ(ev.bytesWritten, pc.bytesWritten);
}

void expectReplayStatsEqual(const trace::ReplayStats& ev,
                            const trace::ReplayStats& pc) {
  EXPECT_EQ(ev.completed, pc.completed);
  EXPECT_EQ(ev.errors, pc.errors);
  EXPECT_EQ(ev.issueStallCycles, pc.issueStallCycles);
  EXPECT_EQ(ev.finishCycle, pc.finishCycle);
}

/// `ev` = event-driven run, `pc` = per-cycle reference run.
void expectIdentical(const RunResult& ev, const RunResult& pc) {
  EXPECT_EQ(ev.elapsed, pc.elapsed);
  expectBusStatsEqual(ev.bus, pc.bus);
  expectReplayStatsEqual(ev.replay, pc.replay);

  ASSERT_EQ(ev.requests.size(), pc.requests.size());
  for (std::size_t i = 0; i < pc.requests.size(); ++i) {
    const RequestSnap& a = ev.requests[i];
    const RequestSnap& b = pc.requests[i];
    EXPECT_EQ(a.result, b.result) << "request " << i;
    EXPECT_EQ(a.slave, b.slave) << "request " << i;
    EXPECT_EQ(a.addrCycles, b.addrCycles) << "request " << i;
    EXPECT_EQ(a.dataCycles, b.dataCycles) << "request " << i;
    EXPECT_EQ(a.acceptCycle, b.acceptCycle) << "request " << i;
    EXPECT_EQ(a.finishCycle, b.finishCycle) << "request " << i;
  }

  ASSERT_EQ(ev.readData.size(), pc.readData.size());
  for (std::size_t i = 0; i < pc.readData.size(); ++i) {
    EXPECT_EQ(ev.readData[i], pc.readData[i]) << "read payload " << i;
  }

  ASSERT_EQ(ev.phases.size(), pc.phases.size());
  for (std::size_t i = 0; i < pc.phases.size(); ++i) {
    EXPECT_EQ(ev.phases[i], pc.phases[i])
        << "callback " << i << ": event cycle " << ev.phases[i].cycle
        << " vs per-cycle " << pc.phases[i].cycle;
  }

  ASSERT_EQ(ev.intervals.size(), pc.intervals.size());
  for (std::size_t i = 0; i < pc.intervals.size(); ++i) {
    EXPECT_EQ(ev.intervals[i], pc.intervals[i]) << "interval sample " << i;
  }
  EXPECT_EQ(ev.total_fJ, pc.total_fJ);

  EXPECT_EQ(ev.fastImage, pc.fastImage);
  EXPECT_EQ(ev.waitedImage, pc.waitedImage);
}

trace::MixRatios fullMix() {
  trace::MixRatios mix;
  mix.instrFetch = 1;
  return mix;
}

class Tl2EventSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Tl2EventSeedTest, DenseMixBitIdentical) {
  const auto regions = testbench::bothRegions();
  const BusTrace t = trace::randomMix(GetParam(), 400, regions, fullMix(),
                                      /*issueGapMax=*/0);
  expectIdentical(run(t, /*perCycle=*/false, testbench::waitedCtl()),
                  run(t, /*perCycle=*/true, testbench::waitedCtl()));
}

TEST_P(Tl2EventSeedTest, SparseIssueGapsBitIdentical) {
  // Long idle spans between transactions: the regime where the
  // event-driven clock warps over dead cycles.
  const auto regions = testbench::bothRegions();
  const BusTrace t = trace::randomMix(GetParam() + 5000, 150, regions,
                                      fullMix(), /*issueGapMax=*/120);
  expectIdentical(run(t, false, testbench::waitedCtl()),
                  run(t, true, testbench::waitedCtl()));
}

TEST_P(Tl2EventSeedTest, DecodeMissesBitIdentical) {
  // A third region outside every slave window: those transactions
  // error out of the address phase (no data phase, missFinishCycles_
  // path in event mode).
  auto regions = testbench::bothRegions();
  regions.push_back(trace::TargetRegion{0x40000, 0x1000, true, true, true});
  const BusTrace t = trace::randomMix(GetParam() + 9000, 300, regions,
                                      fullMix(), /*issueGapMax=*/2);
  expectIdentical(run(t, false, testbench::waitedCtl()),
                  run(t, true, testbench::waitedCtl()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Tl2EventSeedTest,
                         ::testing::Values(1u, 2u, 3u, 42u));

TEST(Tl2EventEquivalence, WaitStateSweep) {
  // {addrWait, readWait, writeWait, burstBeatWait} combinations on the
  // slow window, including zero-wait and strongly asymmetric cases.
  const std::array<std::array<unsigned, 4>, 6> combos = {{
      {0, 0, 0, 0},
      {1, 0, 0, 0},
      {0, 3, 1, 0},
      {2, 1, 4, 1},
      {3, 5, 2, 2},
      {0, 0, 7, 3},
  }};
  const auto regions = testbench::bothRegions();
  for (std::size_t i = 0; i < combos.size(); ++i) {
    bus::SlaveControl ctl = testbench::waitedCtl();
    ctl.addrWait = combos[i][0];
    ctl.readWait = combos[i][1];
    ctl.writeWait = combos[i][2];
    ctl.burstBeatWait = combos[i][3];
    const BusTrace t = trace::randomMix(900 + i, 200, regions, fullMix(),
                                        /*issueGapMax=*/1);
    SCOPED_TRACE("wait combo " + std::to_string(i));
    expectIdentical(run(t, false, ctl), run(t, true, ctl));
  }
}

TEST(Tl2EventEquivalence, PerClassSaturation) {
  // Back-to-back floods of a single class: in-flight reaches
  // kMaxOutstandingPerClass and issue sees backpressure, so the
  // event-mode stall accounting must agree with the per-cycle count.
  const auto regions = testbench::bothRegions();
  for (int cls = 0; cls < 4; ++cls) {
    trace::MixRatios mix;
    mix.singleRead = cls == 0;
    mix.singleWrite = cls == 1;
    mix.burstRead = 0;
    mix.burstWrite = cls == 2;
    mix.instrFetch = cls == 3;
    const BusTrace t = trace::randomMix(7700 + static_cast<unsigned>(cls),
                                        250, regions, mix, /*issueGapMax=*/0);
    SCOPED_TRACE("class " + std::to_string(cls));
    expectIdentical(run(t, false, testbench::waitedCtl()),
                    run(t, true, testbench::waitedCtl()));
  }
}

TEST(Tl2EventEquivalence, ObserverFreeLazyRetirementAgrees) {
  // With no observer attached the event-driven bus never wakes its
  // clock handler; every stage transition and statistic is retired
  // lazily from the interface entry points. Results must still be
  // bit-identical to per-cycle processing.
  const auto regions = testbench::bothRegions();
  const BusTrace t =
      trace::randomMix(77, 300, regions, fullMix(), /*issueGapMax=*/2);
  expectIdentical(run(t, false, testbench::waitedCtl(), false),
                  run(t, true, testbench::waitedCtl(), false));
}

/// One mid-run snapshot of everything an external probe can see.
struct MidRunSnap {
  std::uint64_t cycle = 0;
  bool idle = false;
  bus::Tl2BusStats bus;
  std::uint64_t completed = 0;
  std::uint64_t issueStallCycles = 0;
};

std::vector<MidRunSnap> chunkedRun(const BusTrace& t, bool perCycle) {
  Platform p(perCycle, testbench::waitedCtl());
  trace::Tl2ReplayMaster master(p.clk, "master", p.bus, t);
  std::vector<MidRunSnap> snaps;
  while (!master.done()) {
    master.runToCompletion(/*maxCycles=*/37);
    MidRunSnap s;
    s.cycle = p.clk.cycle();
    s.idle = p.bus.idle();
    s.bus = p.bus.stats();
    s.completed = master.stats().completed;
    s.issueStallCycles = master.stats().issueStallCycles;
    snaps.push_back(s);
  }
  return snaps;
}

TEST(Tl2EventEquivalence, MidRunStatsQueriesAgree) {
  // stats()/idle() polled every 37 cycles while transactions are in
  // flight: the lazy counters must be brought current at the query
  // cycle, not only at completion.
  const auto regions = testbench::bothRegions();
  const BusTrace t =
      trace::randomMix(31, 200, regions, fullMix(), /*issueGapMax=*/4);
  const auto ev = chunkedRun(t, false);
  const auto pc = chunkedRun(t, true);
  ASSERT_EQ(ev.size(), pc.size());
  for (std::size_t i = 0; i < pc.size(); ++i) {
    SCOPED_TRACE("snapshot " + std::to_string(i));
    EXPECT_EQ(ev[i].cycle, pc[i].cycle);
    EXPECT_EQ(ev[i].idle, pc[i].idle);
    expectBusStatsEqual(ev[i].bus, pc[i].bus);
    EXPECT_EQ(ev[i].completed, pc[i].completed);
    EXPECT_EQ(ev[i].issueStallCycles, pc[i].issueStallCycles);
  }
}

struct AttachRunResult {
  std::vector<PhaseRecord> phases;
  std::vector<double> intervals;
  double total_fJ = 0.0;
  bus::Tl2BusStats bus;
  std::uint64_t finishCycle = 0;
};

AttachRunResult attachMidRun(const BusTrace& t, bool perCycle) {
  Platform p(perCycle, testbench::waitedCtl());
  power::Tl2PowerModel pm(variedTable());
  PhaseLogger logger(p.bus);
  IntervalSampler sampler(pm);
  trace::Tl2ReplayMaster master(p.clk, "master", p.bus, t);
  master.runToCompletion(/*maxCycles=*/61);
  p.bus.addObserver(pm);
  p.bus.addObserver(logger);
  p.bus.addObserver(sampler);
  master.runToCompletion();
  AttachRunResult r;
  r.phases = std::move(logger.log);
  r.intervals = std::move(sampler.samples);
  r.total_fJ = pm.totalEnergy_fJ();
  r.bus = p.bus.stats();
  r.finishCycle = master.stats().finishCycle;
  return r;
}

TEST(Tl2EventEquivalence, ObserverAttachMidRunAgrees) {
  // 61 cycles run observer-free (event mode: boundaries retired
  // lazily), then a power model attaches. Phases completed before the
  // attach are never reported in either mode; everything after must
  // match cycle for cycle and joule for joule.
  const auto regions = testbench::bothRegions();
  const BusTrace t =
      trace::randomMix(53, 200, regions, fullMix(), /*issueGapMax=*/1);
  const AttachRunResult ev = attachMidRun(t, false);
  const AttachRunResult pc = attachMidRun(t, true);

  ASSERT_EQ(ev.phases.size(), pc.phases.size());
  for (std::size_t i = 0; i < pc.phases.size(); ++i) {
    EXPECT_EQ(ev.phases[i], pc.phases[i]) << "callback " << i;
  }
  ASSERT_EQ(ev.intervals.size(), pc.intervals.size());
  for (std::size_t i = 0; i < pc.intervals.size(); ++i) {
    EXPECT_EQ(ev.intervals[i], pc.intervals[i]) << "interval sample " << i;
  }
  EXPECT_EQ(ev.total_fJ, pc.total_fJ);
  expectBusStatsEqual(ev.bus, pc.bus);
  EXPECT_EQ(ev.finishCycle, pc.finishCycle);
}

} // namespace
} // namespace sct
