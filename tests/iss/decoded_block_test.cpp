// The decoded-block dispatch path against decode-on-fetch.
//
// MipsCore can decode each basic block once into a cached superblock
// and re-execute from the pre-resolved entries. That is a pure
// dispatch-loop optimization: architectural state, cycle counts, cache
// statistics, memory images and the bus-level energy trace must all be
// bit-identical to the decode-every-fetch baseline. This suite runs a
// program corpus on two SoCs differing only in
// CpuConfig::decodedBlockCache and compares everything, including an
// icache-conflict program that thrashes the line underlying a cached
// block so the generation-based invalidation actually fires.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "iss_testutil.h"
#include "power/coeff_table.h"
#include "power/tl1_power_model.h"
#include "soc/assembler.h"

namespace sct::soc {
namespace {

using isstest::Soc;
using isstest::configFor;
using isstest::expectIdenticalOutcome;

power::SignalEnergyTable distinctTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    // Distinct coefficients so a reordered or dropped energy term in
    // the cached run cannot cancel out.
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  7.25 + 1.0 / static_cast<double>(3 * i + 1));
  }
  return t;
}

struct NamedProgram {
  const char* name;
  std::string src;
};

// Two subroutines exactly one icache size (4096 bytes) apart: they map
// to the same direct-mapped line, so every call evicts the other's
// line while decoded blocks for both stay in their slots. Correctness
// then rests on the per-line generation check rejecting the stale
// block after each refill.
std::string conflictSource() {
  std::string src = R"(
        li    $s0, 0x08000000
        li    $s1, 40
    main:
        jal   near
        jal   far
        addiu $s1, $s1, -1
        bne   $s1, $zero, main
        sw    $t0, 0($s0)
        break
    near:
        addiu $t0, $t0, 1
        jr    $ra
  )";
  // Pad so `far` begins 4096 bytes (1024 words) after `near`: `near`
  // itself is 2 instructions, so insert 1022 nops.
  for (int i = 0; i < 1022; ++i) src += "    nop\n";
  src += R"(
    far:
        addiu $t0, $t0, 3
        jr    $ra
  )";
  return src;
}

std::vector<NamedProgram> programs() {
  return {
      {"tight_loop", R"(
          li    $s0, 0x08000000
          li    $s1, 500
          addiu $t0, $zero, 0
        loop:
          addu  $t0, $t0, $s1
          xor   $t0, $t0, $s1
          sll   $t1, $t0, 3
          or    $t0, $t0, $t1
          addiu $s1, $s1, -1
          bne   $s1, $zero, loop
          sw    $t0, 0($s0)
          break
      )"},
      {"branch_mix", R"(
          li    $s0, 0x08000000
          li    $s1, 120
          addiu $t0, $zero, 0
          addiu $t5, $zero, 7
        loop:
          slt   $t2, $t0, $s1
          beq   $t2, $zero, even
          addiu $t0, $t0, 3
        even:
          andi  $t3, $s1, 1
          bne   $t3, $zero, odd
          addiu $t0, $t0, 1
          j     next
        odd:
          mult  $t0, $t5
          mflo  $t4
          xor   $t0, $t0, $t4
          div   $t0, $t5
          mfhi  $t0
        next:
          addiu $s1, $s1, -1
          bgtz  $s1, loop
          sw    $t0, 0($s0)
          break
      )"},
      {"calls", R"(
          li    $s0, 0x08000000
          li    $s1, 60
          addiu $t0, $zero, 0
        loop:
          jal   twist
          addiu $s1, $s1, -1
          bne   $s1, $zero, loop
          sw    $t0, 0($s0)
          break
        twist:
          addu  $t0, $t0, $s1
          sll   $t1, $t0, 1
          xor   $t0, $t0, $t1
          jr    $ra
      )"},
      {"mem_traffic", R"(
          li    $s0, 0x08000000
          li    $s2, 0x0A000000
          li    $s1, 48
          addiu $t0, $zero, 0
        loop:
          sw    $s1, 0x40($s0)
          lw    $t1, 0x40($s0)
          sb    $s1, 0x80($s0)
          lbu   $t2, 0x80($s0)
          sh    $s1, 0x84($s0)
          lhu   $t3, 0x84($s0)
          lw    $t4, 0($s2)
          addu  $t0, $t0, $t1
          addu  $t0, $t0, $t2
          addu  $t0, $t0, $t3
          addu  $t0, $t0, $t4
          addiu $s1, $s1, -1
          bne   $s1, $zero, loop
          sw    $t0, 0($s0)
          break
      )"},
      {"icache_conflict", conflictSource()},
  };
}

TEST(DecodedBlockEquivalence, CorpusBitIdenticalIncludingEnergy) {
  const auto table = distinctTable();
  for (const NamedProgram& p : programs()) {
    SCOPED_TRACE(p.name);
    Soc cached{configFor(true)};
    Soc plain{configFor(false)};
    power::Tl1PowerModel pmCached(table);
    power::Tl1PowerModel pmPlain(table);
    cached.bus().addObserver(pmCached);
    plain.bus().addObserver(pmPlain);

    const AssembledProgram prog = assemble(p.src, memmap::kRomBase);
    cached.loadProgram(prog);
    plain.loadProgram(prog);
    ASSERT_TRUE(cached.run(2'000'000));
    ASSERT_TRUE(plain.run(2'000'000));
    ASSERT_FALSE(cached.cpu().faulted());

    expectIdenticalOutcome(cached, plain);
    EXPECT_EQ(pmCached.totalEnergy_fJ(), pmPlain.totalEnergy_fJ());
    EXPECT_GT(pmCached.totalEnergy_fJ(), 0.0);
    for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
      EXPECT_EQ(pmCached.transitions(static_cast<bus::SignalId>(i)),
                pmPlain.transitions(static_cast<bus::SignalId>(i)))
          << "signal " << i;
    }

    // Dispatch accounting: with the cache on, every executed
    // instruction is either a block hit or the miss that built its
    // block; loops must actually hit. Dispatches can exceed retired
    // instructions because a RAW-hazard load re-dispatches until the
    // write buffer drains (exactly like the re-fetch in the baseline).
    const BlockCacheStats& bs = cached.cpu().blockCacheStats();
    EXPECT_GT(bs.hits, 0u);
    EXPECT_GT(bs.builds, 0u);
    EXPECT_GE(bs.hits + bs.misses, cached.cpu().stats().instructions);
    EXPECT_EQ(plain.cpu().blockCacheStats().hits, 0u);
    EXPECT_EQ(plain.cpu().blockCacheStats().builds, 0u);
  }
}

TEST(DecodedBlockEquivalence, ConflictProgramInvalidatesThroughLineFills) {
  Soc cached{configFor(true)};
  cached.loadProgram(assemble(conflictSource(), memmap::kRomBase));
  ASSERT_TRUE(cached.run(2'000'000));
  // The two conflicting subroutines evict each other's line on every
  // outer iteration; each refill bumps the line generation, so their
  // cached blocks go stale and must be rebuilt, not blindly re-hit.
  EXPECT_GT(cached.cpu().blockCacheStats().builds, 40u);
  EXPECT_GT(cached.cpu().icache().stats().misses, 40u);
}

TEST(DecodedBlockEquivalence, ResetRerunMatchesColdRun) {
  // reset() must flush decoded blocks along with the caches: a rerun
  // from reset is bit-identical to the cold first run.
  Soc soc{configFor(true)};
  soc.loadProgram(assemble(programs()[0].src, memmap::kRomBase));
  ASSERT_TRUE(soc.run(2'000'000));
  const std::uint32_t result1 = soc.cpu().reg(8);
  const CpuStats first = soc.cpu().stats();
  ASSERT_GT(soc.cpu().blockCacheStats().hits, 0u);

  soc.cpu().reset(memmap::kRomBase);
  ASSERT_TRUE(soc.run(2'000'000));
  EXPECT_EQ(soc.cpu().reg(8), result1);
  EXPECT_EQ(soc.cpu().stats().cycles, first.cycles);
  EXPECT_EQ(soc.cpu().stats().instructions, first.instructions);
  EXPECT_EQ(soc.cpu().stats().ifetchStallCycles, first.ifetchStallCycles);
}

} // namespace
} // namespace sct::soc
