// Self-modifying code and external image mutation vs the decoded-block
// cache.
//
// A decoded block caches pre-resolved instructions; both mutation paths
// into instruction memory must knock it out:
//  - the core's own store path (`sw` into a cached block's range) via
//    the per-store icache invalidation that bumps the line generation;
//  - MemorySlave backdoor writes (DMA-style image mutation, the path a
//    JCVM-style loader takes when it bypasses the data port) via
//    MipsCore::invalidateICacheRange.
// In both cases the cached core must stay bit-identical to the
// decode-on-fetch baseline driven through the exact same sequence.
#include <gtest/gtest.h>

#include "iss_testutil.h"
#include "soc/assembler.h"
#include "soc/isa.h"

namespace sct::soc {
namespace {

using isstest::Soc;
using isstest::configFor;
using isstest::expectIdenticalOutcome;

// addiu $t0, $t0, 9 — the replacement for the patch-site instruction.
constexpr std::uint32_t kPatchedAddiu = encodeI(0x09, 8, 8, 9);

// Two passes over a patch site that starts as `addiu $t0, $t0, 5`.
// Pass one executes the original (warming the decoded block), then
// stores a replacement encoding over it and loads it back — the load
// RAW-stalls on the write buffer, so the store has drained before the
// refetch. Pass two must execute the patched instruction: $t0 ends at
// 5 + 9 = 14. The program runs from RAM so its own stores can reach it.
constexpr const char* kSmcProgram = R"(
      li    $s0, 0x08000000
      addiu $s3, $zero, 2
      addiu $t0, $zero, 0
  again:
  patch:
      addiu $t0, $t0, 5
      addiu $s3, $s3, -1
      beq   $s3, $zero, done
      lw    $t1, 0x100($s0)
      li    $t2, patch
      sw    $t1, 0($t2)
      lw    $t3, 0($t2)
      j     again
  done:
      break
)";

TEST(SmcRegression, StorePathPatchReexecutesAndMatchesBaseline) {
  Soc cached{configFor(true)};
  Soc plain{configFor(false)};
  const AssembledProgram prog = assemble(kSmcProgram, memmap::kRamBase);
  for (Soc* s : {&cached, &plain}) {
    s->loadProgram(prog);
    // Replacement encoding parked in RAM for the program to pick up.
    s->ram().pokeWord(memmap::kRamBase + 0x100, kPatchedAddiu);
    ASSERT_TRUE(s->run(2'000'000));
    ASSERT_FALSE(s->cpu().faulted());
    // Original pass adds 5, patched pass adds 9.
    EXPECT_EQ(s->cpu().reg(8), 14u);
  }
  expectIdenticalOutcome(cached, plain);
  // The store into the cached block's line must have registered as an
  // invalidation, not gone unnoticed.
  EXPECT_GE(cached.cpu().blockCacheStats().invalidations, 1u);
}

// Spin a hook instruction in a tight loop, patch it mid-run through the
// memory backdoor (plus the required invalidateICacheRange call), and
// let the run finish. The cached core and the decode-on-fetch core see
// the patch take effect on exactly the same iteration.
constexpr const char* kBackdoorProgram = R"(
      li    $s0, 0x08000000
      li    $s1, 2000
      addiu $t2, $zero, 0
  spin:
  hook:
      addiu $t0, $zero, 5
      addu  $t2, $t2, $t0
      addiu $s1, $s1, -1
      bne   $s1, $zero, spin
      sw    $t2, 0x204($s0)
      break
)";

TEST(SmcRegression, BackdoorMutationWithRangeInvalidateMatchesBaseline) {
  Soc cached{configFor(true)};
  Soc plain{configFor(false)};
  const AssembledProgram prog = assemble(kBackdoorProgram, memmap::kRamBase);
  const bus::Address hook = prog.label("hook");

  for (Soc* s : {&cached, &plain}) {
    s->loadProgram(prog);
    // Part-way through the spin loop (well before 2000 iterations
    // drain), mutate the hook instruction behind the core's back.
    s->clock().runCycles(3000);
    ASSERT_FALSE(s->cpu().halted());
    s->ram().pokeWord(hook, kPatchedAddiu);
    s->cpu().invalidateICacheRange(hook, 4);
    ASSERT_TRUE(s->run(2'000'000));
    ASSERT_FALSE(s->cpu().faulted());
  }

  expectIdenticalOutcome(cached, plain);
  // The patch landed mid-run: the accumulator mixes 5s and 9s, so it
  // can match neither the all-original nor the all-patched total.
  const std::uint32_t acc = cached.cpu().reg(10);
  EXPECT_NE(acc, 2000u * 5u);
  EXPECT_NE(acc, 2000u * 9u);
  EXPECT_GE(cached.cpu().blockCacheStats().invalidations, 1u);
}

} // namespace
} // namespace sct::soc
