// Shared harness for the decoded-block ISS suites: build two SoCs that
// differ only in CpuConfig::decodedBlockCache and require bit-identical
// outcomes from both.
#ifndef SCT_TESTS_ISS_ISS_TESTUTIL_H
#define SCT_TESTS_ISS_ISS_TESTUTIL_H

#include <gtest/gtest.h>

#include "bus/tl1_bus.h"
#include "soc/smartcard.h"

namespace sct::soc::isstest {

using Soc = SmartCardSoC<bus::Tl1Bus>;

inline SocConfig configFor(bool decodedBlocks) {
  SocConfig cfg;
  cfg.cpu.decodedBlockCache = decodedBlocks;
  return cfg;
}

/// The decoded-block path must be indistinguishable from
/// decode-on-fetch: architectural state, cycle counts, stall
/// accounting, cache statistics and memory images all bit-identical.
inline void expectIdenticalOutcome(Soc& cached, Soc& plain) {
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(cached.cpu().reg(r), plain.cpu().reg(r)) << "reg " << r;
  }
  EXPECT_EQ(cached.cpu().pc(), plain.cpu().pc());
  EXPECT_EQ(cached.cpu().hi(), plain.cpu().hi());
  EXPECT_EQ(cached.cpu().lo(), plain.cpu().lo());
  EXPECT_EQ(cached.cpu().halted(), plain.cpu().halted());
  EXPECT_EQ(cached.cpu().faulted(), plain.cpu().faulted());

  const CpuStats& a = cached.cpu().stats();
  const CpuStats& b = plain.cpu().stats();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.ifetchStallCycles, b.ifetchStallCycles);
  EXPECT_EQ(a.loadStallCycles, b.loadStallCycles);
  EXPECT_EQ(a.storeStallCycles, b.storeStallCycles);

  EXPECT_EQ(cached.cpu().icache().stats().hits,
            plain.cpu().icache().stats().hits);
  EXPECT_EQ(cached.cpu().icache().stats().misses,
            plain.cpu().icache().stats().misses);
  EXPECT_EQ(cached.cpu().dcache().stats().hits,
            plain.cpu().dcache().stats().hits);
  EXPECT_EQ(cached.cpu().dcache().stats().misses,
            plain.cpu().dcache().stats().misses);

  EXPECT_EQ(cached.ram().imageDigest(), plain.ram().imageDigest());
  EXPECT_EQ(cached.eeprom().imageDigest(), plain.eeprom().imageDigest());
}

} // namespace sct::soc::isstest

#endif // SCT_TESTS_ISS_ISS_TESTUTIL_H
