// The card-farm core contracts:
//  * scenario scripts are deterministic in (name, seed) and end with
//    the end-of-session command,
//  * the golden boot snapshot carries the power model and ledger
//    sections on top of the platform's own,
//  * recycling an instance from the golden snapshot makes repeated
//    sessions BIT-IDENTICAL (energy doubles compared exactly),
//  * the engine serves a job set at threads=1 and threads=8 with
//    identical per-session result lines (the serve determinism
//    headline), and
//  * protocol errors come back as error lines, not crashes.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bus/ec_signals.h"
#include "power/coeff_table.h"
#include "serve/card_instance.h"
#include "serve/daemon.h"
#include "serve/json.h"
#include "serve/scenario.h"

namespace sct {
namespace {

power::SignalEnergyTable fixedTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  1.5 + 0.25 * static_cast<double>(i));
  }
  return t;
}

// ---------------------------------------------------------------------
// Scenarios

TEST(ServeScenario, KnownNamesExpandAndEndTheSession) {
  for (const char* name : {"auth", "wrong_pin", "challenge", "mixed"}) {
    SCOPED_TRACE(name);
    EXPECT_TRUE(serve::knownScenario(name));
    const std::vector<serve::Step> steps = serve::buildScenario(name, 42);
    ASSERT_FALSE(steps.empty());
    EXPECT_EQ(steps.back().cmd.cla, soc::apdu::kClaEndSession);
  }
  EXPECT_FALSE(serve::knownScenario("bogus"));
  EXPECT_TRUE(serve::buildScenario("bogus", 0).empty());
}

TEST(ServeScenario, SameSeedSameScript) {
  const auto a = serve::buildScenario("mixed", 123);
  const auto b = serve::buildScenario("mixed", 123);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cmd.encode(), b[i].cmd.encode());
    EXPECT_EQ(a[i].expectSw, b[i].expectSw);
  }
  // A different seed varies the mix (the PRNG actually feeds it).
  const auto c = serve::buildScenario("mixed", 124);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].cmd.encode() != c[i].cmd.encode();
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------
// Golden snapshot + recycle

TEST(ServeCard, GoldenSnapshotCarriesPowerSections) {
  const ckpt::Snapshot golden = serve::CardInstance::bootGolden(fixedTable());
  EXPECT_NE(golden.find("pm"), nullptr);
  EXPECT_NE(golden.find("ledger"), nullptr);
  EXPECT_NE(golden.find("cpu"), nullptr);
  EXPECT_NE(golden.find("ecbus"), nullptr);
  EXPECT_EQ(golden.sections().size(), 16u);
}

TEST(ServeCard, RecycledSessionsAreBitIdentical) {
  const power::SignalEnergyTable table = fixedTable();
  const ckpt::Snapshot golden = serve::CardInstance::bootGolden(table);
  const std::vector<serve::Step> steps = serve::buildScenario("auth", 7);

  serve::CardInstance card(table);
  card.recycle(golden);
  const serve::SessionOutcome first = card.runSession(steps);
  ASSERT_TRUE(first.ok);
  EXPECT_TRUE(first.expected);
  if (obs::kEnabled) {
    EXPECT_GT(first.energy.total, 0.0);
  }

  // Serve more sessions on the SAME instance — a different scenario in
  // between to dirty the state — recycling before each. The repeat of
  // the first session must match bit for bit (exact double equality
  // via LedgerView::operator==).
  card.recycle(golden);
  const serve::SessionOutcome other =
      card.runSession(serve::buildScenario("mixed", 99));
  ASSERT_TRUE(other.ok);

  card.recycle(golden);
  const serve::SessionOutcome again = card.runSession(steps);
  EXPECT_EQ(again.ok, first.ok);
  EXPECT_EQ(again.sw, first.sw);
  EXPECT_EQ(again.cycles, first.cycles);
  EXPECT_EQ(again.instructions, first.instructions);
  EXPECT_EQ(again.energy, first.energy);

  // And a freshly constructed instance adopting the same golden
  // produces the same session too (worker-count independence).
  serve::CardInstance fresh(table);
  fresh.recycle(golden);
  const serve::SessionOutcome onFresh = fresh.runSession(steps);
  EXPECT_EQ(onFresh.sw, first.sw);
  EXPECT_EQ(onFresh.cycles, first.cycles);
  EXPECT_EQ(onFresh.energy, first.energy);
}

// ---------------------------------------------------------------------
// Engine

/// Collects lines keyed by job id. Sinks run under the engine's emit
/// lock, so the map needs no extra synchronization during a run.
struct Collector {
  std::map<std::string, std::string> byId;

  serve::ServeEngine::Sink sinkFor(const std::string& id) {
    return [this, id](const std::string& line) { byId[id] = line; };
  }
};

std::vector<serve::Job> jobMix() {
  std::vector<serve::Job> jobs;
  const char* names[] = {"auth", "wrong_pin", "challenge", "mixed"};
  for (int i = 0; i < 12; ++i) {
    serve::Job j;
    j.id = "j" + std::to_string(i);
    j.scenario = names[i % 4];
    j.seed = static_cast<std::uint64_t>(100 + i);
    jobs.push_back(j);
  }
  return jobs;
}

std::map<std::string, std::string> serveAll(unsigned workers) {
  serve::ServeEngine engine(fixedTable(), workers);
  Collector out;
  for (const serve::Job& j : jobMix()) {
    engine.submitJob(j, out.sinkFor(j.id));
  }
  engine.drain();
  EXPECT_EQ(engine.completed(), 12u);
  return out.byId;
}

TEST(ServeEngine, ThreadCountDoesNotChangeAnyResultLine) {
  // The acceptance headline: same job set, threads=1 vs threads=8,
  // per-session result lines identical as STRINGS — which, with
  // %.17g emission, means the energy doubles are bit-identical.
  const std::map<std::string, std::string> sequential = serveAll(1);
  const std::map<std::string, std::string> threaded = serveAll(8);
  ASSERT_EQ(sequential.size(), 12u);
  EXPECT_EQ(threaded, sequential);
}

TEST(ServeEngine, ResultLinesAreValidJsonWithAttribution) {
  serve::ServeEngine engine(fixedTable(), 2);
  Collector out;
  serve::Job job;
  job.id = "probe";
  job.scenario = "auth";
  job.seed = 5;
  engine.submitJob(job, out.sinkFor(job.id));
  engine.drain();

  const serve::JsonValue v = serve::parseJson(out.byId.at("probe"));
  EXPECT_EQ(v.find("event")->asString(), "result");
  EXPECT_EQ(v.find("scenario")->asString(), "auth");
  EXPECT_TRUE(v.find("ok")->asBool());
  EXPECT_TRUE(v.find("expected")->asBool());
  if (obs::kEnabled) {
    EXPECT_GT(v.find("energy_fJ")->asNumber(), 0.0);
  }
  EXPECT_GT(v.find("cycles")->asNumber(), 0.0);
  // Per-class and per-bundle attribution are complete.
  EXPECT_EQ(v.find("by_class")->asObject().size(), obs::kTxClassCount);
  EXPECT_EQ(v.find("by_bundle")->asObject().size(), bus::kSignalCount);
  EXPECT_EQ(v.find("by_slave")->asArray().size(), obs::kLedgerSlaveSlots);
  EXPECT_EQ(v.find("by_master")->asArray().size(), obs::kLedgerMasterSlots);
  // The dimensional splits cross-sum to the total (same accumulation
  // order per dimension, so plain summation reproduces it here).
  double classSum = 0.0;
  for (const auto& [name, val] : v.find("by_class")->asObject()) {
    classSum += val.asNumber();
  }
  EXPECT_NEAR(classSum, v.find("energy_fJ")->asNumber(),
              1e-9 * classSum + 1e-12);
}

TEST(ServeEngine, ProtocolErrorsComeBackAsErrorLines) {
  serve::ServeEngine engine(fixedTable(), 1);
  std::vector<std::string> lines;
  const serve::ServeEngine::Sink sink = [&lines](const std::string& line) {
    lines.push_back(line);
  };
  engine.submitLine("this is not json", sink);
  engine.submitLine("{\"id\":\"x\"}", sink);                      // No scenario.
  engine.submitLine("{\"id\":\"y\",\"scenario\":\"nope\"}", sink);
  engine.submitLine(
      "{\"id\":\"z\",\"scenario\":\"auth\",\"fidelity\":\"tl2\"}", sink);
  engine.drain();
  ASSERT_EQ(lines.size(), 4u);
  for (const std::string& line : lines) {
    const serve::JsonValue v = serve::parseJson(line);
    EXPECT_EQ(v.find("event")->asString(), "error");
  }
  EXPECT_EQ(engine.errors(), 4u);
  EXPECT_EQ(engine.completed(), 0u);
}

} // namespace
} // namespace sct
