// The serve protocol's JSON layer: strict parsing of job lines and
// lossless emission of result lines.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "serve/json.h"

namespace sct {
namespace {

using serve::JsonError;
using serve::JsonValue;
using serve::parseJson;

TEST(ServeJson, ParsesAJobLine) {
  const JsonValue v = parseJson(
      R"({"id":"s1","scenario":"auth","seed":7,"fidelity":"tl1"})");
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("id")->asString(), "s1");
  EXPECT_EQ(v.find("scenario")->asString(), "auth");
  EXPECT_EQ(v.find("seed")->asNumber(), 7.0);
  EXPECT_EQ(v.find("fidelity")->asString(), "tl1");
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(ServeJson, ParsesNestedStructures) {
  const JsonValue v = parseJson(
      R"({"a":[1,2.5,-3e2,true,false,null],"b":{"c":"x"}})");
  const auto& arr = v.find("a")->asArray();
  ASSERT_EQ(arr.size(), 6u);
  EXPECT_EQ(arr[0].asNumber(), 1.0);
  EXPECT_EQ(arr[1].asNumber(), 2.5);
  EXPECT_EQ(arr[2].asNumber(), -300.0);
  EXPECT_TRUE(arr[3].asBool());
  EXPECT_FALSE(arr[4].asBool());
  EXPECT_EQ(arr[5].kind(), JsonValue::Kind::Null);
  EXPECT_EQ(v.find("b")->find("c")->asString(), "x");
}

TEST(ServeJson, StringEscapes) {
  const JsonValue v =
      parseJson(R"({"s":"a\"b\\c\/\b\f\n\r\tAé"})");
  EXPECT_EQ(v.find("s")->asString(), "a\"b\\c/\b\f\n\r\tA\xC3\xA9");
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(parseJson(""), JsonError);
  EXPECT_THROW(parseJson("{"), JsonError);
  EXPECT_THROW(parseJson("{\"a\":}"), JsonError);
  EXPECT_THROW(parseJson("{} trailing"), JsonError);
  EXPECT_THROW(parseJson("{\"a\":1,}"), JsonError);
  EXPECT_THROW(parseJson("\"unterminated"), JsonError);
  EXPECT_THROW(parseJson("{\"a\":01x}"), JsonError);
  EXPECT_THROW(parseJson("nul"), JsonError);
}

TEST(ServeJson, WriterEscapesStrings) {
  std::string out;
  serve::appendJsonString(out, "a\"b\\c\n\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\u0001\"");
  // What the writer emits, the parser reads back unchanged.
  EXPECT_EQ(parseJson(out).asString(), "a\"b\\c\n\x01");
}

TEST(ServeJson, NumbersSurviveRoundTripBitExact) {
  // %.17g is lossless for doubles: the determinism suite compares
  // result lines as strings, so the energy values must not wobble.
  const double values[] = {0.0, 1.0 / 3.0, 11923.75, 1e-300,
                           123456789.123456789,
                           std::numeric_limits<double>::denorm_min()};
  for (const double v : values) {
    std::string out;
    serve::appendJsonNumber(out, v);
    const double back = parseJson(out).asNumber();
    EXPECT_EQ(std::memcmp(&back, &v, sizeof(double)), 0) << out;
  }
  std::string inf;
  serve::appendJsonNumber(inf, std::numeric_limits<double>::infinity());
  EXPECT_EQ(inf, "null");
}

} // namespace
} // namespace sct
