// Graceful-shutdown regression on the REAL daemon binary.
//
// Spawns sct_serve (path injected by CMake as SCT_SERVE_BIN), feeds it
// a batch of jobs over a pipe held open so the daemon stays mid-batch,
// SIGTERMs it once results start flowing, and then verifies the
// contract: the process exits 0, every output line is complete valid
// JSON (no truncation — results are emitted with one atomic write
// each), the stream ends with exactly one {"event":"done"} summary,
// and the summary's completed count matches the result lines actually
// seen.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "serve/json.h"

namespace sct {
namespace {

struct DaemonRun {
  pid_t pid = -1;
  int toChild = -1;    ///< Write end of the daemon's stdin.
  int fromChild = -1;  ///< Read end of the daemon's stdout.
};

DaemonRun spawnDaemon() {
  int inPipe[2];
  int outPipe[2];
  if (pipe(inPipe) != 0 || pipe(outPipe) != 0) {
    ADD_FAILURE() << "pipe(): " << std::strerror(errno);
    return {};
  }
  const pid_t pid = fork();
  if (pid == 0) {
    dup2(inPipe[0], STDIN_FILENO);
    dup2(outPipe[1], STDOUT_FILENO);
    close(inPipe[0]);
    close(inPipe[1]);
    close(outPipe[0]);
    close(outPipe[1]);
    execl(SCT_SERVE_BIN, SCT_SERVE_BIN, "--workers", "2", "--table",
          "fixed", static_cast<char*>(nullptr));
    _exit(127);
  }
  close(inPipe[0]);
  close(outPipe[1]);
  DaemonRun run;
  run.pid = pid;
  run.toChild = inPipe[1];
  run.fromChild = outPipe[0];
  return run;
}

/// Read until EOF (the child closing stdout on exit).
std::string readAll(int fd) {
  std::string out;
  char chunk[4096];
  while (true) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      out.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return out;
}

TEST(ServeShutdown, SigtermMidBatchDrainsCleanly) {
  DaemonRun run = spawnDaemon();
  ASSERT_GT(run.pid, 0);

  // Enough jobs that the daemon is still working when the signal
  // lands; the pipe stays open so stdin never reaches EOF.
  std::string jobs;
  for (int i = 0; i < 400; ++i) {
    jobs += "{\"id\":\"k" + std::to_string(i) +
            "\",\"scenario\":\"auth\",\"seed\":" + std::to_string(i) + "}\n";
  }
  ASSERT_EQ(write(run.toChild, jobs.data(), jobs.size()),
            static_cast<ssize_t>(jobs.size()));

  // Wait until at least one result line came out (the daemon booted
  // its golden snapshot and is mid-batch), then pull the plug.
  std::string out;
  char chunk[4096];
  const int kBootTimeoutMs = 120000;
  int waited = 0;
  while (out.find('\n') == std::string::npos && waited < kBootTimeoutMs) {
    struct pollfd p;
    p.fd = run.fromChild;
    p.events = POLLIN;
    p.revents = 0;
    const int pr = poll(&p, 1, 100);
    waited += 100;
    if (pr <= 0) continue;
    const ssize_t n = read(run.fromChild, chunk, sizeof(chunk));
    if (n > 0) out.append(chunk, static_cast<std::size_t>(n));
  }
  ASSERT_NE(out.find('\n'), std::string::npos)
      << "daemon produced no results before the timeout";

  ASSERT_EQ(kill(run.pid, SIGTERM), 0);
  out += readAll(run.fromChild);
  close(run.fromChild);
  close(run.toChild);

  int status = 0;
  ASSERT_EQ(waitpid(run.pid, &status, 0), run.pid);
  EXPECT_TRUE(WIFEXITED(status)) << "daemon did not exit (killed?)";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "graceful shutdown must exit 0";

  // Every line complete and parseable; exactly one trailing summary.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n') << "output ends mid-line";
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = out.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(out.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_FALSE(lines.empty());

  std::size_t results = 0;
  std::size_t dones = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    SCOPED_TRACE("line " + std::to_string(i));
    serve::JsonValue v;
    ASSERT_NO_THROW(v = serve::parseJson(lines[i]))
        << "truncated/corrupt line: " << lines[i];
    const std::string event = v.find("event")->asString();
    if (event == "result") {
      ++results;
      EXPECT_LT(i, lines.size() - 1) << "result after the done summary";
    } else if (event == "done") {
      ++dones;
      EXPECT_EQ(i, lines.size() - 1) << "done must be the final line";
      EXPECT_EQ(v.find("completed")->asNumber(),
                static_cast<double>(results));
      // The signal landed mid-batch: queued jobs were dropped rather
      // than silently discarded.
      EXPECT_GE(v.find("dropped")->asNumber(), 0.0);
    }
  }
  EXPECT_GT(results, 0u);
  EXPECT_EQ(dones, 1u);
}

} // namespace
} // namespace sct
