#include "ref/energy.h"

#include <gtest/gtest.h>

namespace sct::ref {
namespace {

using bus::SignalFrame;
using bus::SignalId;

struct EnergyTest : ::testing::Test {
  ParasiticDb db = ParasiticDb::makeDefault();
  ProcessParams params;
  TransitionEnergyModel model{db, params};
  GlitchCounts noGlitch{};
};

TEST_F(EnergyTest, QuietCycleCostsOnlyBaseline) {
  SignalFrame f;
  const CycleEnergy e = model.cycleEnergy(f, f, noGlitch);
  EXPECT_NEAR(e.total_fJ, params.baselinePerCycle_fJ, 1e-9);
}

TEST_F(EnergyTest, BaselineIsSeparateFromSwitching) {
  SignalFrame f;
  const CycleEnergy e = model.cycleEnergy(f, f, noGlitch);
  EXPECT_DOUBLE_EQ(e.baseline_fJ, params.baselinePerCycle_fJ);
  for (double v : e.perSignal_fJ) {
    EXPECT_DOUBLE_EQ(v, 0.0);  // No switching on a quiet cycle.
  }
}

TEST_F(EnergyTest, MoreTogglesMoreEnergy) {
  SignalFrame zero;
  SignalFrame one;
  one.set(SignalId::EB_RData, 0x1);
  SignalFrame many;
  many.set(SignalId::EB_RData, 0xFFFF);
  const double e1 = model.cycleEnergy(zero, one, noGlitch).total_fJ;
  const double e16 = model.cycleEnergy(zero, many, noGlitch).total_fJ;
  EXPECT_GT(e16, e1);
  // Roughly proportional to the toggle count (within wire variation).
  EXPECT_GT(e16, 8 * (e1 - params.baselinePerCycle_fJ));
}

TEST_F(EnergyTest, SwitchingEnergyIsPlausibleHalfCV2) {
  // One toggle on EB_RData bit 0: ½CV² with C in [180,340] fF at 1.8 V
  // gives 292..551 fJ before slope/direction factors.
  SignalFrame zero;
  SignalFrame one;
  one.set(SignalId::EB_RData, 0x1);
  const double e = model.cycleEnergy(zero, one, noGlitch).total_fJ -
                   params.baselinePerCycle_fJ;
  EXPECT_GT(e, 200.0);
  EXPECT_LT(e, 900.0);  // Includes coupling to the quiet neighbour.
}

TEST_F(EnergyTest, RisingCostsMoreThanFalling) {
  SignalFrame zero;
  SignalFrame one;
  one.set(SignalId::EB_Instr, 1);
  const double rise = model.cycleEnergy(zero, one, noGlitch).total_fJ;
  const double fall = model.cycleEnergy(one, zero, noGlitch).total_fJ;
  EXPECT_GT(rise, fall);
}

TEST_F(EnergyTest, OppositeToggleOfNeighboursCostsMoreThanSameDirection) {
  // Bits 0 and 1 of EB_WData: same-direction vs opposite-direction.
  SignalFrame from;
  from.set(SignalId::EB_WData, 0b01);
  SignalFrame sameDir;  // 01 -> 10 is opposite (bit0 falls, bit1 rises).
  sameDir.set(SignalId::EB_WData, 0b10);
  SignalFrame bothUpFrom;
  bothUpFrom.set(SignalId::EB_WData, 0b00);
  SignalFrame bothUpTo;
  bothUpTo.set(SignalId::EB_WData, 0b11);
  const double opposite =
      model.cycleEnergy(from, sameDir, noGlitch).total_fJ;
  const double same =
      model.cycleEnergy(bothUpFrom, bothUpTo, noGlitch).total_fJ;
  // Opposite transition has 1 rise + 1 fall like... compare coupling:
  // both cases toggle two wires; the Miller term only hits `opposite`.
  EXPECT_GT(opposite, same - (params.riseFactor - params.fallFactor) *
                                 model.halfCV2(340.0));
}

TEST_F(EnergyTest, GlitchesAddEnergy) {
  SignalFrame f;
  GlitchCounts g{};
  g[static_cast<std::size_t>(SignalId::EB_Sel)] = 3.0;
  const double quiet = model.cycleEnergy(f, f, noGlitch).total_fJ;
  const double glitchy = model.cycleEnergy(f, f, g).total_fJ;
  EXPECT_GT(glitchy, quiet);
}

TEST_F(EnergyTest, AccumulatorTracksTotalsAndTransitions) {
  EnergyAccumulator acc;
  SignalFrame a;
  SignalFrame b;
  b.set(SignalId::EB_A, 0xFF);
  const CycleEnergy e = model.cycleEnergy(a, b, noGlitch);
  acc.add(e, a, b);
  acc.add(model.cycleEnergy(b, b, noGlitch), b, b);
  EXPECT_EQ(acc.cycles, 2u);
  EXPECT_EQ(acc.transitions[static_cast<std::size_t>(SignalId::EB_A)], 8u);
  EXPECT_GT(acc.total_fJ, e.total_fJ);
}

TEST_F(EnergyTest, AccumulatorResolvesTransitionDirections) {
  EnergyAccumulator acc;
  SignalFrame a;
  a.set(SignalId::EB_WData, 0b1100);
  SignalFrame b;
  b.set(SignalId::EB_WData, 0b1010);  // Bit1 rises, bit2 falls.
  acc.add(model.cycleEnergy(a, b, noGlitch), a, b);
  const auto i = static_cast<std::size_t>(SignalId::EB_WData);
  EXPECT_EQ(acc.transitions[i], 2u);
  EXPECT_EQ(acc.risingTransitions[i], 1u);
  EXPECT_EQ(acc.fallingTransitions[i], 1u);
  // Rising + falling always equals the total.
  acc.add(model.cycleEnergy(b, a, noGlitch), b, a);
  EXPECT_EQ(acc.risingTransitions[i] + acc.fallingTransitions[i],
            acc.transitions[i]);
}

TEST_F(EnergyTest, PerSignalSplitsSumToTotal) {
  SignalFrame a;
  SignalFrame b;
  b.set(SignalId::EB_A, 0x123456);
  b.set(SignalId::EB_WData, 0xDEADBEEF);
  b.set(SignalId::EB_AValid, 1);
  GlitchCounts g{};
  g[static_cast<std::size_t>(SignalId::EB_Sel)] = 1.5;
  const CycleEnergy e = model.cycleEnergy(a, b, g);
  double sum = e.baseline_fJ;
  for (double v : e.perSignal_fJ) sum += v;
  EXPECT_NEAR(sum, e.total_fJ, 1e-9);
}

} // namespace
} // namespace sct::ref
