#include "ref/gl_bus.h"

#include <gtest/gtest.h>

#include "../testbench.h"
#include "trace/bus_trace.h"

namespace sct::ref {
namespace {

using bus::Kind;
using bus::SignalId;
using testbench::RefBench;
using trace::BusTrace;
using trace::TraceEntry;

TraceEntry entry(Kind kind, bus::Address addr, std::uint8_t beats = 1,
                 bus::Word w0 = 0) {
  TraceEntry e;
  e.kind = kind;
  e.address = addr;
  e.beats = beats;
  e.writeData[0] = w0;
  return e;
}

TEST(GlBusTest, SingleReadCompletesAndReturnsData) {
  RefBench tb;
  tb.fast.pokeWord(0x10, 0xCAFEBABE);
  BusTrace t;
  t.append(entry(Kind::Read, 0x10));
  trace::ReplayMaster master(tb.clk, "m", tb.bus, tb.bus, t);
  const std::uint64_t elapsed = master.runToCompletion();
  EXPECT_TRUE(master.done());
  EXPECT_EQ(master.stats().errors, 0u);
  EXPECT_EQ(master.requests()[0].data[0], 0xCAFEBABEu);
  EXPECT_EQ(elapsed, 2u);  // Same isolated latency as layer 1.
}

TEST(GlBusTest, WriteLandsInMemory) {
  RefBench tb;
  BusTrace t;
  t.append(entry(Kind::Write, 0x20, 1, 0x12345678));
  tb.run(t);
  EXPECT_EQ(tb.fast.peekWord(0x20), 0x12345678u);
}

TEST(GlBusTest, FramesShowAddressAndStrobes) {
  RefBench tb;
  struct Collector : FrameListener {
    std::vector<bus::SignalFrame> frames;
    void onFrame(std::uint64_t, const bus::SignalFrame&,
                 const bus::SignalFrame& next, const GlitchCounts&,
                 const CycleEnergy&) override {
      frames.push_back(next);
    }
  } col;
  tb.bus.addFrameListener(col);
  BusTrace t;
  t.append(entry(Kind::Read, 0x40));
  tb.run(t);
  ASSERT_GE(col.frames.size(), 2u);
  // Cycle 1: address phase + data beat in the same cycle.
  const bus::SignalFrame& f1 = col.frames[0];
  EXPECT_EQ(f1.get(SignalId::EB_A), 0x40u);
  EXPECT_EQ(f1.get(SignalId::EB_AValid), 1u);
  EXPECT_EQ(f1.get(SignalId::EB_ARdy), 1u);
  EXPECT_EQ(f1.get(SignalId::EB_RdVal), 1u);
  EXPECT_EQ(f1.get(SignalId::EB_Last), 1u);
  EXPECT_EQ(f1.get(SignalId::EB_Sel), 0x1u);
  // Next cycle: strobes deassert, address holds.
  const bus::SignalFrame& f2 = col.frames[1];
  EXPECT_EQ(f2.get(SignalId::EB_A), 0x40u);
  EXPECT_EQ(f2.get(SignalId::EB_AValid), 0u);
  EXPECT_EQ(f2.get(SignalId::EB_RdVal), 0u);
}

TEST(GlBusTest, EnergyAccumulatesOnActivity) {
  RefBench tb;
  BusTrace t;
  for (unsigned i = 0; i < 8; ++i) {
    t.append(entry(Kind::Write, 0x100 + 4 * i, 1, 0xFFFFFFFF));
  }
  tb.run(t);
  const EnergyAccumulator& acc = tb.bus.energy();
  EXPECT_GT(acc.cycles, 0u);
  EXPECT_GT(acc.total_fJ, 0.0);
  EXPECT_GT(acc.transitions[static_cast<std::size_t>(SignalId::EB_WData)],
            0u);
}

TEST(GlBusTest, DecodeMissDrivesErrorLine) {
  RefBench tb;
  struct ErrWatcher : FrameListener {
    bool sawRBErr = false;
    void onFrame(std::uint64_t, const bus::SignalFrame&,
                 const bus::SignalFrame& next, const GlitchCounts&,
                 const CycleEnergy&) override {
      sawRBErr = sawRBErr || next.get(SignalId::EB_RBErr) == 1;
    }
  } watcher;
  tb.bus.addFrameListener(watcher);
  BusTrace t;
  t.append(entry(Kind::Read, 0x40000));  // Unmapped.
  trace::ReplayMaster master(tb.clk, "m", tb.bus, tb.bus, t);
  master.runToCompletion();
  EXPECT_EQ(master.stats().errors, 1u);
  EXPECT_TRUE(watcher.sawRBErr);
}

TEST(GlBusTest, AddressChangeProducesDecoderGlitches) {
  RefBench tb;
  struct GlitchWatcher : FrameListener {
    double selGlitches = 0.0;
    void onFrame(std::uint64_t, const bus::SignalFrame&,
                 const bus::SignalFrame&, const GlitchCounts& g,
                 const CycleEnergy&) override {
      selGlitches += g[static_cast<std::size_t>(SignalId::EB_Sel)];
    }
  } watcher;
  tb.bus.addFrameListener(watcher);
  BusTrace t;
  t.append(entry(Kind::Read, 0x0));
  t.append(entry(Kind::Read, 0x1FFC));  // Many address bits flip.
  tb.run(t);
  EXPECT_GT(watcher.selGlitches, 0.0);
}

TEST(GlBusTest, BurstReadStreamsBeats) {
  RefBench tb;
  for (unsigned i = 0; i < 4; ++i) {
    tb.fast.pokeWord(0x80 + 4 * i, 0x1000 + i);
  }
  BusTrace t;
  t.append(entry(Kind::Read, 0x80, 4));
  trace::ReplayMaster master(tb.clk, "m", tb.bus, tb.bus, t);
  const std::uint64_t elapsed = master.runToCompletion();
  EXPECT_EQ(elapsed, 5u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(master.requests()[0].data[i], 0x1000u + i);
  }
  EXPECT_EQ(tb.bus.stats().readBeats, 4u);
}

TEST(GlBusTest, WaitedSlaveMatchesLayer1Latency) {
  RefBench tb;
  BusTrace t;
  t.append(entry(Kind::Read, 0x8000));
  trace::ReplayMaster master(tb.clk, "m", tb.bus, tb.bus, t);
  // waitedCtl: aw=1, rw=2 -> 1 + 2 + 1 beat + 1 pickup = 5.
  EXPECT_EQ(master.runToCompletion(), 5u);
}

TEST(GlBusTest, StatsMatchWorkload) {
  RefBench tb;
  BusTrace t;
  t.append(entry(Kind::Read, 0x0));
  t.append(entry(Kind::Write, 0x4, 1, 7));
  t.append(entry(Kind::InstrFetch, 0x100, 4));
  tb.run(t);
  EXPECT_EQ(tb.bus.stats().readTransactions, 1u);
  EXPECT_EQ(tb.bus.stats().writeTransactions, 1u);
  EXPECT_EQ(tb.bus.stats().instrTransactions, 1u);
  EXPECT_EQ(tb.bus.stats().bytesRead, 4u + 16u);
  EXPECT_EQ(tb.bus.stats().bytesWritten, 4u);
}

} // namespace
} // namespace sct::ref
