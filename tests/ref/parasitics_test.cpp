#include "ref/parasitics.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sct::ref {
namespace {

using bus::SignalId;

TEST(ParasiticsTest, DeterministicForEqualSeeds) {
  const ParasiticDb a = ParasiticDb::makeDefault(7);
  const ParasiticDb b = ParasiticDb::makeDefault(7);
  for (const auto& info : bus::kSignalTable) {
    for (unsigned bit = 0; bit < info.width; ++bit) {
      EXPECT_DOUBLE_EQ(a.wire(info.id, bit).cSelf_fF,
                       b.wire(info.id, bit).cSelf_fF);
    }
  }
}

TEST(ParasiticsTest, CoversEveryWire) {
  const ParasiticDb db = ParasiticDb::makeDefault();
  EXPECT_EQ(db.wireCount(), bus::totalWireCount());
}

TEST(ParasiticsTest, ValuesWithinGeometryRanges) {
  const ParasiticDb db = ParasiticDb::makeDefault();
  for (const auto& info : bus::kSignalTable) {
    for (unsigned bit = 0; bit < info.width; ++bit) {
      const WireParasitics& w = db.wire(info.id, bit);
      EXPECT_GT(w.cSelf_fF, 0.0);
      EXPECT_LT(w.cSelf_fF, 400.0);
      EXPECT_GE(w.cCouple_fF, 0.0);
      EXPECT_GT(w.r_kOhm, 0.0);
    }
  }
}

TEST(ParasiticsTest, LongBusesAreHeavierThanControl) {
  const ParasiticDb db = ParasiticDb::makeDefault();
  const double addr = db.bundleCSelf_fF(SignalId::EB_A) /
                      bus::signalWidth(SignalId::EB_A);
  const double ctrl = db.bundleCSelf_fF(SignalId::EB_AValid);
  EXPECT_GT(addr, ctrl);
}

TEST(ParasiticsTest, LastBitHasNoUpperNeighbourCoupling) {
  const ParasiticDb db = ParasiticDb::makeDefault();
  for (const auto& info : bus::kSignalTable) {
    EXPECT_DOUBLE_EQ(db.wire(info.id, info.width - 1).cCouple_fF, 0.0);
  }
}

TEST(ParasiticsTest, OutOfRangeBitThrows) {
  const ParasiticDb db = ParasiticDb::makeDefault();
  EXPECT_THROW(db.wire(SignalId::EB_Instr, 1), std::out_of_range);
  EXPECT_THROW(db.wire(SignalId::EB_A, 36), std::out_of_range);
}

TEST(ParasiticsTest, SlopeClassFollowsResistance) {
  const ParasiticDb db = ParasiticDb::makeDefault();
  for (const auto& info : bus::kSignalTable) {
    for (unsigned bit = 0; bit < info.width; ++bit) {
      const WireParasitics& w = db.wire(info.id, bit);
      if (w.r_kOhm < 0.7) {
        EXPECT_EQ(w.slope, SlopeClass::Fast);
      } else if (w.r_kOhm < 1.5) {
        EXPECT_EQ(w.slope, SlopeClass::Medium);
      } else {
        EXPECT_EQ(w.slope, SlopeClass::Slow);
      }
    }
  }
}

} // namespace
} // namespace sct::ref
