// Decoder select lines and multi-slave behaviour at layer 0.
#include <gtest/gtest.h>

#include "../testbench.h"
#include "bus/memory_slave.h"
#include "ref/gl_bus.h"
#include "trace/replay_master.h"

namespace sct::ref {
namespace {

using bus::Kind;
using bus::SignalId;

struct SelWatcher : FrameListener {
  std::vector<std::uint64_t> selWhenValid;
  void onFrame(std::uint64_t, const bus::SignalFrame&,
               const bus::SignalFrame& next, const GlitchCounts&,
               const CycleEnergy&) override {
    if (next.get(SignalId::EB_AValid) == 1) {
      selWhenValid.push_back(next.get(SignalId::EB_Sel));
    }
  }
};

TEST(MultiSlaveTest, SelectLinesAreOneHotPerSlave) {
  sim::Kernel kernel;
  sim::Clock clk(kernel, "clk", 10);
  GlBus bus(clk, "gl", testbench::energyModel());
  bus::SlaveControl c0;
  c0.base = 0x0000;
  c0.size = 0x1000;
  bus::SlaveControl c1;
  c1.base = 0x1000;
  c1.size = 0x1000;
  bus::SlaveControl c2;
  c2.base = 0x2000;
  c2.size = 0x1000;
  bus::MemorySlave s0("s0", c0);
  bus::MemorySlave s1("s1", c1);
  bus::MemorySlave s2("s2", c2);
  bus.attach(s0);
  bus.attach(s1);
  bus.attach(s2);

  SelWatcher watcher;
  bus.addFrameListener(watcher);

  trace::BusTrace t;
  for (bus::Address a : {bus::Address{0x0010}, bus::Address{0x1010},
                         bus::Address{0x2010}, bus::Address{0x0020}}) {
    trace::TraceEntry e;
    e.kind = Kind::Read;
    e.address = a;
    t.append(e);
  }
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();

  ASSERT_EQ(watcher.selWhenValid.size(), 4u);
  EXPECT_EQ(watcher.selWhenValid[0], 0x1u);  // Slave 0.
  EXPECT_EQ(watcher.selWhenValid[1], 0x2u);  // Slave 1.
  EXPECT_EQ(watcher.selWhenValid[2], 0x4u);  // Slave 2.
  EXPECT_EQ(watcher.selWhenValid[3], 0x1u);  // Back to slave 0.
}

TEST(MultiSlaveTest, SameSlaveTrafficKeepsSelectQuiet) {
  // Repeated access to one slave: the select line holds its value, so
  // EB_Sel accumulates no transitions after the first assertion — the
  // behaviour the layer-2 model over-counts with its per-transaction
  // pulse.
  sim::Kernel kernel;
  sim::Clock clk(kernel, "clk", 10);
  GlBus bus(clk, "gl", testbench::energyModel());
  bus::MemorySlave s0("s0", testbench::fastCtl());
  bus.attach(s0);

  trace::BusTrace t;
  for (unsigned i = 0; i < 10; ++i) {
    trace::TraceEntry e;
    e.kind = Kind::Read;
    e.address = 0x100 + 4 * i;
    t.append(e);
  }
  trace::ReplayMaster m(clk, "m", bus, bus, t);
  m.runToCompletion();
  EXPECT_EQ(bus.energy().transitions[static_cast<std::size_t>(
                SignalId::EB_Sel)],
            1u);  // One rising transition, never released.
}

TEST(MultiSlaveTest, MixedWaitStatesInterleaveCorrectly) {
  // A fast and a slow slave serve interleaved transactions; results
  // must match a layer-1 run, with reordering across the slaves.
  const auto workload =
      trace::randomMix(17, 80, testbench::bothRegions(),
                       trace::MixRatios{}, 1);
  testbench::RefBench gl;
  trace::ReplayMaster m0(gl.clk, "m0", gl.bus, gl.bus, workload);
  m0.runToCompletion();
  testbench::Tl1Bench tl1;
  trace::ReplayMaster m1(tl1.clk, "m1", tl1.bus, tl1.bus, workload);
  m1.runToCompletion();
  for (std::size_t i = 0; i < workload.size(); ++i) {
    ASSERT_EQ(m0.requests()[i].data, m1.requests()[i].data) << i;
  }
}

} // namespace
} // namespace sct::ref
