#include "eh/field_profile.h"

#include <gtest/gtest.h>

namespace sct {
namespace {

TEST(FieldProfile, ConstantIsFlat) {
  eh::ConstantField f(2.5);
  EXPECT_DOUBLE_EQ(f.power_uW(0), 2.5);
  EXPECT_DOUBLE_EQ(f.power_uW(1'000'000), 2.5);
  EXPECT_EQ(f.name(), "constant");
}

TEST(FieldProfile, SquareBurstShape) {
  eh::SquareBurstField f(4.0, /*on=*/10, /*off=*/6);
  for (std::uint64_t c = 0; c < 10; ++c) EXPECT_EQ(f.power_uW(c), 4.0);
  for (std::uint64_t c = 10; c < 16; ++c) EXPECT_EQ(f.power_uW(c), 0.0);
  // Periodic.
  EXPECT_EQ(f.power_uW(16), 4.0);
  EXPECT_EQ(f.power_uW(16 + 9), 4.0);
  EXPECT_EQ(f.power_uW(16 + 10), 0.0);
}

TEST(FieldProfile, SquareBurstPhaseShifts) {
  eh::SquareBurstField f(4.0, 10, 6, /*phase=*/10);
  // Cycle 0 lands at pattern position 10: dead air.
  EXPECT_EQ(f.power_uW(0), 0.0);
  EXPECT_EQ(f.power_uW(6), 4.0);
}

TEST(FieldProfile, SwipeRampsHoldAndGaps) {
  eh::SwipeField f(8.0, /*ramp=*/4, /*hold=*/3, /*gap=*/5);
  EXPECT_EQ(f.period(), 4u + 3u + 4u + 5u);
  // Approach ramp: 0, 2, 4, 6.
  EXPECT_DOUBLE_EQ(f.power_uW(0), 0.0);
  EXPECT_DOUBLE_EQ(f.power_uW(1), 2.0);
  EXPECT_DOUBLE_EQ(f.power_uW(3), 6.0);
  // Hold.
  EXPECT_DOUBLE_EQ(f.power_uW(4), 8.0);
  EXPECT_DOUBLE_EQ(f.power_uW(6), 8.0);
  // Retreat ramp: 8, 6, 4, 2.
  EXPECT_DOUBLE_EQ(f.power_uW(7), 8.0);
  EXPECT_DOUBLE_EQ(f.power_uW(8), 6.0);
  EXPECT_DOUBLE_EQ(f.power_uW(10), 2.0);
  // Gap.
  EXPECT_DOUBLE_EQ(f.power_uW(11), 0.0);
  EXPECT_DOUBLE_EQ(f.power_uW(15), 0.0);
  // Next swipe.
  EXPECT_DOUBLE_EQ(f.power_uW(17), 2.0);
}

TEST(FieldProfile, NoisyIsDeterministicPerSeedAndCycle) {
  eh::NoisyField a(std::make_unique<eh::ConstantField>(2.0), 0.5, 42);
  eh::NoisyField b(std::make_unique<eh::ConstantField>(2.0), 0.5, 42);
  eh::NoisyField c(std::make_unique<eh::ConstantField>(2.0), 0.5, 43);
  bool anyDiffers = false;
  for (std::uint64_t cyc = 0; cyc < 256; ++cyc) {
    const double va = a.power_uW(cyc);
    // Bit-identical regardless of evaluation order or history: query b
    // out of order first.
    const double vb = b.power_uW(cyc);
    EXPECT_EQ(va, vb) << cyc;
    EXPECT_GE(va, 2.0 * 0.5);
    EXPECT_LE(va, 2.0 * 1.5);
    if (va != c.power_uW(cyc)) anyDiffers = true;
  }
  EXPECT_TRUE(anyDiffers) << "different seeds should differ somewhere";
  // Re-querying an old cycle gives the original value (stateless).
  EXPECT_EQ(a.power_uW(7), b.power_uW(7));
  EXPECT_EQ(a.name(), "noisy-constant");
}

TEST(FieldProfile, NoisyPreservesDeadAir) {
  eh::NoisyField f(std::make_unique<eh::SquareBurstField>(3.0, 4, 4), 0.9,
                   7);
  EXPECT_EQ(f.power_uW(5), 0.0);
}

TEST(FieldProfile, HarvestConversionFollowsRepoConvention) {
  // 1 fJ / 1 ps = 1 µW: one 30'000 ps cycle of 2 µW delivers 60'000 fJ.
  EXPECT_DOUBLE_EQ(eh::harvestPerCycle_fJ(2.0, 30'000), 60'000.0);
}

} // namespace
} // namespace sct
