// The intermittent-execution contracts:
//  * under an ample field the workload runs to completion with no
//    brownouts and matches a fully powered reference bit-for-bit,
//  * under a starving field the run browns out, checkpoints, replays,
//    and still produces the reference digest (forward progress),
//  * wall-cycle accounting partitions exactly into active + dead +
//    overhead,
//  * the whole attempt is bit-identical run-to-run (energy doubles
//    compared exactly), and
//  * a supply collapse with the detector disabled is a hard death.
#include "eh/intermittent_runner.h"

#include <gtest/gtest.h>

#include "bus/ec_signals.h"
#include "eh/workload.h"
#include "obs/stats.h"
#include "power/coeff_table.h"
#include "soc/smartcard.h"

namespace sct {
namespace {

power::SignalEnergyTable fixedTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  1.5 + 0.25 * static_cast<double>(i));
  }
  return t;
}

constexpr unsigned kBlocks = 4;

/// Runner config calibrated to the fixed test table. Its coefficients
/// produce only ~7 fJ of bus-interface energy per cycle (measured), so
/// with the default 0.5 µW static draw the chip consumes ~16k fJ/cycle
/// and a full 10 nF capacitor outlasts the entire 4-block workload
/// (~4.6k-cycle autonomy vs ~4.6k-cycle run — nothing ever browns
/// out). Raising the static draw to 3 µW puts the chip at ~91k
/// fJ/cycle — the characterized-table regime — so the default supply
/// reproduces the intended few-hundred-cycle-segment dynamics.
eh::RunnerConfig starvedConfig() {
  eh::RunnerConfig cfg;
  cfg.supply.idlePower_uW = 3.0;
  return cfg;
}

/// Fully powered reference: what the workload computes when energy is
/// never a constraint.
struct Reference {
  std::uint32_t progress;
  std::uint32_t digest;
  std::uint64_t simCycles;
};

Reference poweredReference(const power::SignalEnergyTable& table,
                           const soc::AssembledProgram& program) {
  eh::IntermittentRunner r(table, program);
  auto& soc = r.soc();
  std::uint64_t guard = 0;
  while (!soc.cpu().halted() && ++guard < 2'000'000) {
    soc.clock().runCycles(1);
  }
  EXPECT_TRUE(soc.cpu().halted()) << "reference did not finish";
  EXPECT_EQ(soc.ram().peekWord(soc::memmap::kRamBase + eh::kDoneOffset),
            eh::kDoneMagic);
  Reference ref;
  ref.progress =
      soc.ram().peekWord(soc::memmap::kRamBase + eh::kProgressOffset);
  ref.digest =
      soc.ram().peekWord(soc::memmap::kRamBase + eh::kDigestOffset);
  ref.simCycles = soc.clock().cycle();
  return ref;
}

void expectBitIdentical(const eh::RunResult& a, const eh::RunResult& b,
                        bool compareCkptDigest = true) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.wallCycles, b.wallCycles);
  EXPECT_EQ(a.activeCycles, b.activeCycles);
  EXPECT_EQ(a.deadCycles, b.deadCycles);
  EXPECT_EQ(a.overheadCycles, b.overheadCycles);
  EXPECT_EQ(a.replayedCycles, b.replayedCycles);
  EXPECT_EQ(a.simCycles, b.simCycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.brownouts, b.brownouts);
  EXPECT_EQ(a.backups, b.backups);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.hardDeaths, b.hardDeaths);
  // Energy doubles: exact bit patterns, not tolerances.
  EXPECT_EQ(a.backupEnergy_fJ, b.backupEnergy_fJ);
  EXPECT_EQ(a.restoreEnergy_fJ, b.restoreEnergy_fJ);
  EXPECT_EQ(a.harvested_fJ, b.harvested_fJ);
  EXPECT_EQ(a.consumed_fJ, b.consumed_fJ);
  EXPECT_EQ(a.finalStored_fJ, b.finalStored_fJ);
  EXPECT_EQ(a.checkpointBytes, b.checkpointBytes);
  if (compareCkptDigest) {
    EXPECT_EQ(a.checkpointDigest, b.checkpointDigest);
  }
  EXPECT_EQ(a.progressWord, b.progressWord);
  EXPECT_EQ(a.digestWord, b.digestWord);
  EXPECT_EQ(a.brownoutWallCycles, b.brownoutWallCycles);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].wallStart, b.segments[i].wallStart);
    EXPECT_EQ(a.segments[i].wallEnd, b.segments[i].wallEnd);
    EXPECT_EQ(a.segments[i].simStart, b.segments[i].simStart);
    EXPECT_EQ(a.segments[i].simEnd, b.segments[i].simEnd);
    EXPECT_EQ(a.segments[i].energy, b.segments[i].energy) << i;
  }
}

TEST(Intermittent, AmpleFieldRunsUninterrupted) {
  const power::SignalEnergyTable table = fixedTable();
  const soc::AssembledProgram program = eh::cryptoWorkload(kBlocks);
  const Reference ref = poweredReference(table, program);

  // 50 µW harvests 1.5e6 fJ per cycle against the ~9e4 fJ draw: the
  // capacitor never leaves the ceiling.
  eh::ConstantField field(50.0);
  eh::ThresholdScheme scheme;
  eh::IntermittentRunner runner(table, program);
  const eh::RunResult r = runner.run(field, scheme, starvedConfig());

  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.brownouts, 0u);
  EXPECT_EQ(r.backups, 0u);
  EXPECT_EQ(r.restores, 0u);
  EXPECT_EQ(r.hardDeaths, 0u);
  EXPECT_EQ(r.deadCycles, 0u);
  EXPECT_EQ(r.overheadCycles, 0u);
  EXPECT_EQ(r.replayedCycles, 0u);
  EXPECT_EQ(r.activeCycles, r.wallCycles);
  EXPECT_EQ(r.simCycles, ref.simCycles);
  EXPECT_EQ(r.progressWord, ref.progress);
  EXPECT_EQ(r.digestWord, ref.digest);
  EXPECT_EQ(r.progressWord, kBlocks);
  ASSERT_EQ(r.segments.size(), 1u);
  EXPECT_EQ(r.segments.front().wallStart, 0u);
  EXPECT_EQ(r.segments.front().wallEnd, r.wallCycles);
#if SCT_OBS_ENABLED
  EXPECT_GT(r.segments.front().energy.total, 0.0);
#endif
  EXPECT_GT(r.checkpointBytes, 0u);
  EXPECT_DOUBLE_EQ(r.dutyCycle(), 1.0);
}

TEST(Intermittent, StarvingFieldBrownsOutAndStillCompletes) {
  const power::SignalEnergyTable table = fixedTable();
  const soc::AssembledProgram program = eh::cryptoWorkload(kBlocks);
  const Reference ref = poweredReference(table, program);

  // Phase-shifted burst: the run starts in the 6000-cycle dark phase,
  // so the card must live off the capacitor (~800 cycles of autonomy
  // at the ~9e4 fJ/cycle draw), brown out mid-workload, checkpoint,
  // recharge, and finish during the 3 µW (9e4 fJ/cyc) on-phase.
  eh::SquareBurstField field(3.0, 6000, 6000, /*phase=*/6000);
  eh::ThresholdScheme scheme;
  eh::IntermittentRunner runner(table, program);
  const eh::RunResult r = runner.run(field, scheme, starvedConfig());

  EXPECT_TRUE(r.completed) << "wall=" << r.wallCycles
                           << " progress=" << r.progressWord;
  EXPECT_GE(r.brownouts, 1u);
  EXPECT_GE(r.backups, 1u);
  EXPECT_GE(r.restores, 1u);
  EXPECT_GT(r.deadCycles, 0u);
  EXPECT_GT(r.overheadCycles, 0u);
  EXPECT_GT(r.backupEnergy_fJ, 0.0);
  EXPECT_GT(r.restoreEnergy_fJ, 0.0);
  EXPECT_EQ(r.brownoutWallCycles.size(), r.brownouts);
  EXPECT_GE(r.segments.size(), 2u);
  // Forward progress is real: the interrupted run computes exactly the
  // powered reference's words.
  EXPECT_EQ(r.progressWord, ref.progress);
  EXPECT_EQ(r.digestWord, ref.digest);
  // Wall time strictly exceeds sim forward progress (replay + dark).
  EXPECT_GT(r.wallCycles, r.simCycles);
  EXPECT_LT(r.dutyCycle(), 1.0);
  EXPECT_GT(r.dutyCycle(), 0.0);
}

TEST(Intermittent, WallCycleAccountingPartitions) {
  const power::SignalEnergyTable table = fixedTable();
  const soc::AssembledProgram program = eh::cryptoWorkload(kBlocks);
  eh::SquareBurstField field(3.0, 6000, 6000, /*phase=*/6000);
  eh::ThresholdScheme scheme;
  eh::IntermittentRunner runner(table, program);
  const eh::RunResult r = runner.run(field, scheme, starvedConfig());
  EXPECT_EQ(r.activeCycles + r.deadCycles + r.overheadCycles,
            r.wallCycles);
  // Segments tile the powered time: sum of wall extents == active.
  std::uint64_t segWall = 0;
  for (const eh::Segment& s : r.segments) segWall += s.wallEnd - s.wallStart;
  EXPECT_LE(segWall, r.wallCycles);
}

TEST(Intermittent, RunToRunBitIdentity) {
  const power::SignalEnergyTable table = fixedTable();
  const soc::AssembledProgram program = eh::cryptoWorkload(kBlocks);
  eh::NoisyField field(
      std::make_unique<eh::SquareBurstField>(3.0, 6000, 6000, 6000), 0.3,
      2024);
  eh::QuiesceScheme scheme(3000);
  const eh::RunnerConfig cfg = starvedConfig();

  eh::IntermittentRunner r1(table, program);
  const eh::RunResult a = r1.run(field, scheme, cfg);
  eh::IntermittentRunner r2(table, program);
  const eh::RunResult b = r2.run(field, scheme, cfg);
  expectBitIdentical(a, b);
  EXPECT_TRUE(a.completed);
}

TEST(Intermittent, ChunkSizeDoesNotChangeTheRun) {
  // Event decisions are made per cycle inside the hook, so the outer
  // chunking granularity must be invisible in the result.
  const power::SignalEnergyTable table = fixedTable();
  const soc::AssembledProgram program = eh::cryptoWorkload(kBlocks);
  eh::SquareBurstField field(3.0, 6000, 6000, /*phase=*/6000);
  eh::ThresholdScheme scheme;

  eh::RunnerConfig big = starvedConfig();
  big.chunkCycles = 8192;
  eh::RunnerConfig small = starvedConfig();
  small.chunkCycles = 257;  // deliberately odd

  eh::IntermittentRunner r1(table, program);
  const eh::RunResult a = r1.run(field, scheme, big);
  eh::IntermittentRunner r2(table, program);
  const eh::RunResult b = r2.run(field, scheme, small);
  // The checkpoint digest is the one permitted chunk artifact: the
  // kernel section records its monotonic arm/dispatch counters, and
  // every runCycles() boundary re-arms the clock's activation, so the
  // snapshot's bookkeeping bytes count chunk boundaries. Restores are
  // unaffected (only the counters' relative order matters), and every
  // behavioral field above must still match exactly.
  expectBitIdentical(a, b, /*compareCkptDigest=*/false);
}

TEST(Intermittent, DeadFieldWithBlindDetectorIsAHardDeath) {
  const power::SignalEnergyTable table = fixedTable();
  const soc::AssembledProgram program = eh::cryptoWorkload(kBlocks);
  eh::ConstantField dark(0.0);
  eh::ThresholdScheme scheme;
  eh::RunnerConfig cfg = starvedConfig();
  cfg.brownout.debounceCycles = 1'000'000'000;  // detector never trips
  cfg.brownout.guardCycles = 0;
  // Even a full charge buys only ~1000 cycles at the ~9e4 fJ/cycle
  // draw — far short of the ~4.6k-cycle workload — so the supply
  // collapses mid-run with nothing saved.
  cfg.maxWallCycles = 100'000;  // the dark phase never ends

  eh::IntermittentRunner runner(table, program);
  const eh::RunResult r = runner.run(dark, scheme, cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_GE(r.hardDeaths, 1u);
  EXPECT_EQ(r.brownouts, 0u);
  EXPECT_EQ(r.backups, 0u);
  EXPECT_EQ(r.wallCycles, cfg.maxWallCycles);
  EXPECT_GT(r.deadCycles, 0u);
}

TEST(Intermittent, PublishRunObsExportsTheHeadlineCounters) {
  const power::SignalEnergyTable table = fixedTable();
  const soc::AssembledProgram program = eh::cryptoWorkload(kBlocks);
  eh::SquareBurstField field(3.0, 6000, 6000, /*phase=*/6000);
  eh::ThresholdScheme scheme;
  eh::IntermittentRunner runner(table, program);
  const eh::RunResult r = runner.run(field, scheme, starvedConfig());

  obs::StatsRegistry reg;
  eh::publishRunObs(r, reg);
#if SCT_OBS_ENABLED
  EXPECT_EQ(reg.counter("eh.brownouts").value(), r.brownouts);
  EXPECT_EQ(reg.counter("eh.dead_cycles").value(), r.deadCycles);
  EXPECT_EQ(reg.counter("eh.wall_cycles").value(), r.wallCycles);
  EXPECT_EQ(reg.counter("eh.completions").value(), 1u);
  EXPECT_EQ(reg.gauge("eh.backup_energy_fJ").value(), r.backupEnergy_fJ);
#else
  (void)reg;  // publishRunObs must at least be callable in OFF builds.
#endif
}

} // namespace
} // namespace sct
