#include "eh/supply.h"

#include <gtest/gtest.h>

#include "eh/backup_scheme.h"
#include "eh/brownout.h"
#include "power/budget.h"

namespace sct {
namespace {

constexpr std::uint64_t kPeriodPs = 30'000;

eh::SupplyConfig smallSupply() {
  eh::SupplyConfig c;
  c.capacitance_nF = 1.0;
  c.vMax = 5.0;       // capacity 12.5e6 fJ
  c.vOn = 4.0;        // 8.0e6 fJ
  c.vBrownout = 3.2;  // 5.12e6 fJ
  c.vDead = 2.6;      // 3.38e6 fJ
  c.idlePower_uW = 0.0;
  c.chipScale = 1.0;
  return c;
}

TEST(Supply, LevelsFollowHalfCVSquared) {
  const eh::SupplyConfig c = smallSupply();
  EXPECT_DOUBLE_EQ(c.capacity_fJ(), 12.5e6);
  EXPECT_DOUBLE_EQ(c.level_fJ(3.2), 5.12e6);
  eh::ConstantField f(0.0);
  eh::SupplyModel s(c, f, kPeriodPs);
  EXPECT_DOUBLE_EQ(s.stored_fJ(), 12.5e6);
  EXPECT_DOUBLE_EQ(s.brownoutLevel_fJ(), 5.12e6);
  EXPECT_DOUBLE_EQ(s.deadLevel_fJ(), 3.38e6);
  EXPECT_DOUBLE_EQ(s.restartLevel_fJ(), 8.0e6);
  EXPECT_DOUBLE_EQ(s.voltage(), 5.0);
}

TEST(Supply, HarvestThenDrainOrderAndClamps) {
  eh::SupplyConfig c = smallSupply();
  c.initialFraction = 0.5;
  eh::ConstantField f(2.0);  // 60'000 fJ per cycle in.
  eh::SupplyModel s(c, f, kPeriodPs);
  const double start = s.stored_fJ();
  EXPECT_DOUBLE_EQ(start, 6.25e6);

  s.stepOn(0, 10'000.0);  // chipScale 1, idle 0: drain == busEnergy
  EXPECT_DOUBLE_EQ(s.stored_fJ(), start + 60'000.0 - 10'000.0);
  EXPECT_DOUBLE_EQ(s.harvested_fJ(), 60'000.0);
  EXPECT_DOUBLE_EQ(s.consumed_fJ(), 10'000.0);

  s.stepOff(1);  // dark: harvest only
  EXPECT_DOUBLE_EQ(s.stored_fJ(), start + 2 * 60'000.0 - 10'000.0);

  // Ceiling clamp: harvest cannot exceed capacity, but harvested_fJ
  // keeps counting what the field delivered.
  eh::SupplyModel full(smallSupply(), f, kPeriodPs);
  full.stepOff(0);
  EXPECT_DOUBLE_EQ(full.stored_fJ(), full.capacity_fJ());
  EXPECT_DOUBLE_EQ(full.harvested_fJ(), 60'000.0);

  // Floor clamp: a lump drain larger than the store empties it.
  full.drain(1e9);
  EXPECT_DOUBLE_EQ(full.stored_fJ(), 0.0);
  EXPECT_TRUE(full.dead());
}

TEST(Supply, ThresholdPredicates) {
  eh::SupplyConfig c = smallSupply();
  eh::ConstantField f(0.0);
  eh::SupplyModel s(c, f, kPeriodPs);
  EXPECT_FALSE(s.belowBrownout());
  EXPECT_TRUE(s.aboveRestart());
  EXPECT_FALSE(s.dead());

  s.drain(s.stored_fJ() - s.brownoutLevel_fJ());  // exactly at warning
  EXPECT_TRUE(s.belowBrownout());
  EXPECT_FALSE(s.aboveRestart());
  EXPECT_FALSE(s.dead());

  s.drain(s.stored_fJ() - s.deadLevel_fJ());
  EXPECT_TRUE(s.dead());
}

TEST(Supply, RestartLevelIsRaisableAndClamped) {
  eh::SupplyConfig c = smallSupply();
  eh::ConstantField f(0.0);
  eh::SupplyModel s(c, f, kPeriodPs);
  s.setRestartLevel_fJ(9.0e6);
  EXPECT_DOUBLE_EQ(s.restartLevel_fJ(), 9.0e6);
  s.setRestartLevel_fJ(1e12);
  EXPECT_DOUBLE_EQ(s.restartLevel_fJ(), s.capacity_fJ());
}

TEST(Supply, ChipDrainAppliesScaleAndIdle) {
  eh::SupplyConfig c = smallSupply();
  c.chipScale = 120.0;
  c.idlePower_uW = 0.5;  // 15'000 fJ per 30'000 ps cycle
  eh::ConstantField f(0.0);
  eh::SupplyModel s(c, f, kPeriodPs);
  EXPECT_DOUBLE_EQ(s.chipDrain_fJ(300.0), 300.0 * 120.0 + 15'000.0);
}

TEST(Brownout, DebounceFiltersSingleDips) {
  eh::SupplyConfig c = smallSupply();
  c.initialFraction = 0.45;  // 5.625e6 fJ: just above brownout level
  eh::ConstantField charge(2.0);
  eh::SupplyModel s(c, charge, kPeriodPs);
  power::RollingCurrent load(power::contactless(), kPeriodPs, 1.0, 8);
  eh::BrownoutDetector det({/*debounce=*/3, /*guard=*/0});

  // One big drain dips below the warning level for a single cycle;
  // the field tops it back up before the streak reaches 3.
  std::uint64_t wall = 0;
  s.stepOn(wall++, 600'000.0);  // dip below 5.12e6
  ASSERT_TRUE(s.belowBrownout());
  EXPECT_FALSE(det.onCycle(s, load));
  s.stepOn(wall++, 0.0);  // +60k: back above
  ASSERT_FALSE(s.belowBrownout());
  EXPECT_FALSE(det.onCycle(s, load));
  EXPECT_EQ(det.trips(), 0u);

  // Sustained sag: three consecutive cycles below trips exactly once.
  s.drain(600'000.0);
  int fired = 0;
  for (int i = 0; i < 3; ++i) {
    s.stepOn(wall++, 70'000.0);  // net drain despite harvest
    if (det.onCycle(s, load)) ++fired;
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(det.trips(), 1u);
}

TEST(Brownout, PredictiveGuardTripsOnHighLoad) {
  eh::SupplyConfig c = smallSupply();
  c.initialFraction = 0.30;  // 3.75e6: above dead, below brownout
  eh::ConstantField dark(0.0);
  eh::SupplyModel s(c, dark, kPeriodPs);
  power::RollingCurrent load(power::contactless(), kPeriodPs, 1.0, 4);

  // Headroom above dead = 3.75e6 - 3.38e6 = 0.37e6 fJ.
  // At 10'000 fJ/cycle that is 37 cycles of life: a 100-cycle guard
  // must fire even though debounce is far from elapsed.
  eh::BrownoutDetector det({/*debounce=*/1'000'000, /*guard=*/100});
  load.addCycle(10'000.0);
  EXPECT_TRUE(det.onCycle(s, load));
  EXPECT_EQ(det.trips(), 1u);

  // Same supply, light load: 1'000 fJ/cycle -> 370 cycles of headroom,
  // comfortably over the guard; no trip.
  power::RollingCurrent light(power::contactless(), kPeriodPs, 1.0, 4);
  eh::BrownoutDetector det2({/*debounce=*/1'000'000, /*guard=*/100});
  light.addCycle(1'000.0);
  EXPECT_FALSE(det2.onCycle(s, light));

  // Guard disabled: never fires on load alone.
  eh::BrownoutDetector det3({/*debounce=*/1'000'000, /*guard=*/0});
  EXPECT_FALSE(det3.onCycle(s, load));
}

TEST(Brownout, RearmClearsStreak) {
  eh::SupplyConfig c = smallSupply();
  c.initialFraction = 0.35;  // below brownout from the start
  eh::ConstantField dark(0.0);
  eh::SupplyModel s(c, dark, kPeriodPs);
  power::RollingCurrent load(power::contactless(), kPeriodPs, 1.0, 4);
  eh::BrownoutDetector det({/*debounce=*/3, /*guard=*/0});
  EXPECT_FALSE(det.onCycle(s, load));
  EXPECT_FALSE(det.onCycle(s, load));
  det.rearm();  // restore happened; streak must restart from zero
  EXPECT_FALSE(det.onCycle(s, load));
  EXPECT_FALSE(det.onCycle(s, load));
  EXPECT_TRUE(det.onCycle(s, load));
}

TEST(BackupScheme, CostArithmetic) {
  eh::NvmCosts c;
  c.saveFixed_fJ = 1000.0;
  c.savePerByte_fJ = 2.0;
  c.saveFixedCycles = 10;
  c.saveBytesPerCycle = 64;
  c.restoreFixed_fJ = 500.0;
  c.restorePerByte_fJ = 1.0;
  c.restoreFixedCycles = 5;
  c.restoreBytesPerCycle = 128;

  const eh::BackupCosts s = eh::nvmSaveCosts(c, 130);
  EXPECT_DOUBLE_EQ(s.energy_fJ, 1000.0 + 2.0 * 130.0);
  EXPECT_EQ(s.cycles, 10u + 3u);  // ceil(130/64) = 3

  const eh::BackupCosts r = eh::nvmRestoreCosts(c, 256);
  EXPECT_DOUBLE_EQ(r.energy_fJ, 500.0 + 256.0);
  EXPECT_EQ(r.cycles, 5u + 2u);

  // Zero bytes still pays the fixed part.
  EXPECT_EQ(eh::nvmSaveCosts(c, 0).cycles, 10u);
  EXPECT_DOUBLE_EQ(eh::nvmSaveCosts(c, 0).energy_fJ, 1000.0);
}

TEST(BackupScheme, PolicyFlags) {
  eh::ThresholdScheme bec;
  EXPECT_EQ(bec.name(), "threshold");
  EXPECT_TRUE(bec.backupOnBrownout());
  EXPECT_EQ(bec.periodicInterval(), 0u);

  eh::QuiesceScheme clank(5000);
  EXPECT_EQ(clank.name(), "quiesce");
  EXPECT_FALSE(clank.backupOnBrownout());
  EXPECT_EQ(clank.periodicInterval(), 5000u);

  // Interval clamped to >= 1 so "periodic" never divides by zero.
  eh::QuiesceScheme degenerate(0);
  EXPECT_GE(degenerate.periodicInterval(), 1u);

  eh::ParametricScheme p("p1", eh::NvmCosts{}, true, 1234);
  EXPECT_EQ(p.name(), "p1");
  EXPECT_TRUE(p.backupOnBrownout());
  EXPECT_EQ(p.periodicInterval(), 1234u);
}

} // namespace
} // namespace sct
