// The sweep determinism headline (ISSUE 8 acceptance bar): the full
// scheme × profile grid produces BIT-IDENTICAL outcomes at threads=1
// and threads=N — brownout wall cycles, checkpoint digests, energy
// doubles, everything — and a fork-adopted variant equals the
// boot-per-variant reference (restore equivalence lifted to the
// intermittent layer).
#include "eh/sweep.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bus/ec_signals.h"
#include "power/coeff_table.h"

namespace sct {
namespace {

power::SignalEnergyTable fixedTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  1.5 + 0.25 * static_cast<double>(i));
  }
  return t;
}

constexpr unsigned kBlocks = 16;

/// Runner config calibrated to the fixed test table: its coefficients
/// give only ~7 fJ of bus energy per cycle (measured), so the static
/// draw is raised to 3 µW to put the chip at ~9e4 fJ/cycle — the
/// characterized-table regime — and the capacitor is halved so the
/// grid's ramping "swipe" profile browns out well inside the 16-block
/// main phase (~940 sim cycles) while "constant" still sustains.
eh::RunnerConfig testConfig() {
  eh::RunnerConfig cfg;
  cfg.supply.idlePower_uW = 3.0;
  cfg.supply.capacitance_nF = 5.0;
  return cfg;
}

void expectIdentical(const eh::SweepOutcome& a, const eh::SweepOutcome& b) {
  EXPECT_EQ(a.variant.scheme, b.variant.scheme);
  EXPECT_EQ(a.variant.profile, b.variant.profile);
  EXPECT_EQ(a.variant.seed, b.variant.seed);
  const eh::RunResult& x = a.result;
  const eh::RunResult& y = b.result;
  EXPECT_EQ(x.completed, y.completed);
  EXPECT_EQ(x.wallCycles, y.wallCycles);
  EXPECT_EQ(x.activeCycles, y.activeCycles);
  EXPECT_EQ(x.deadCycles, y.deadCycles);
  EXPECT_EQ(x.overheadCycles, y.overheadCycles);
  EXPECT_EQ(x.replayedCycles, y.replayedCycles);
  EXPECT_EQ(x.simCycles, y.simCycles);
  EXPECT_EQ(x.instructions, y.instructions);
  EXPECT_EQ(x.brownouts, y.brownouts);
  EXPECT_EQ(x.backups, y.backups);
  EXPECT_EQ(x.restores, y.restores);
  EXPECT_EQ(x.hardDeaths, y.hardDeaths);
  // Exact double bit patterns — the serve/ckpt determinism discipline.
  EXPECT_EQ(x.backupEnergy_fJ, y.backupEnergy_fJ);
  EXPECT_EQ(x.restoreEnergy_fJ, y.restoreEnergy_fJ);
  EXPECT_EQ(x.harvested_fJ, y.harvested_fJ);
  EXPECT_EQ(x.consumed_fJ, y.consumed_fJ);
  EXPECT_EQ(x.finalStored_fJ, y.finalStored_fJ);
  EXPECT_EQ(x.checkpointBytes, y.checkpointBytes);
  EXPECT_EQ(x.checkpointDigest, y.checkpointDigest);
  EXPECT_EQ(x.progressWord, y.progressWord);
  EXPECT_EQ(x.digestWord, y.digestWord);
  EXPECT_EQ(x.brownoutWallCycles, y.brownoutWallCycles);
  ASSERT_EQ(x.segments.size(), y.segments.size());
  for (std::size_t i = 0; i < x.segments.size(); ++i) {
    EXPECT_EQ(x.segments[i].wallStart, y.segments[i].wallStart);
    EXPECT_EQ(x.segments[i].wallEnd, y.segments[i].wallEnd);
    EXPECT_EQ(x.segments[i].simStart, y.segments[i].simStart);
    EXPECT_EQ(x.segments[i].simEnd, y.segments[i].simEnd);
    EXPECT_EQ(x.segments[i].energy, y.segments[i].energy);
  }
}

TEST(EhSweep, FactoriesKnowTheGridNames) {
  for (const char* p : {"constant", "burst", "swipe", "noisy"}) {
    SCOPED_TRACE(p);
    EXPECT_NE(eh::makeProfile(p, 1), nullptr);
  }
  for (const char* s : {"threshold", "quiesce", "parametric"}) {
    SCOPED_TRACE(s);
    EXPECT_NE(eh::makeScheme(s), nullptr);
  }
  EXPECT_THROW(eh::makeProfile("bogus", 0), std::invalid_argument);
  EXPECT_THROW(eh::makeScheme("bogus"), std::invalid_argument);

  const std::vector<eh::SweepVariant> grid = eh::defaultGrid();
  EXPECT_EQ(grid.size(), 12u);  // 3 schemes x 4 profiles
}

TEST(EhSweep, ThreadsOneVersusManyBitIdentical) {
  const power::SignalEnergyTable table = fixedTable();
  eh::SweepRunner sweep(table, kBlocks, testConfig());
  const std::vector<eh::SweepVariant> grid = eh::defaultGrid();

  const std::vector<eh::SweepOutcome> seq = sweep.run(grid, /*threads=*/1);
  const std::vector<eh::SweepOutcome> par = sweep.run(grid, /*threads=*/4);

  ASSERT_EQ(seq.size(), grid.size());
  ASSERT_EQ(par.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(grid[i].scheme + "/" + grid[i].profile);
    expectIdentical(seq[i], par[i]);
  }
  // The grid is not degenerate: at least one cell browned out and at
  // least one completed.
  bool anyBrownout = false;
  bool anyCompleted = false;
  for (const eh::SweepOutcome& o : seq) {
    anyBrownout = anyBrownout || o.result.brownouts > 0;
    anyCompleted = anyCompleted || o.result.completed;
  }
  EXPECT_TRUE(anyBrownout);
  EXPECT_TRUE(anyCompleted);
}

TEST(EhSweep, ForkAdoptedEqualsBootPerVariant) {
  const power::SignalEnergyTable table = fixedTable();
  eh::SweepRunner sweep(table, kBlocks, testConfig());

  // One cell per scheme, covering noisy (seeded) and plain profiles.
  const std::vector<eh::SweepVariant> cells = {
      {"threshold", "noisy", 77},
      {"quiesce", "burst", 0},
      {"parametric", "swipe", 0},
  };
  const std::vector<eh::SweepOutcome> forked = sweep.run(cells, 1);
  ASSERT_EQ(forked.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(cells[i].scheme + "/" + cells[i].profile);
    const eh::SweepOutcome booted = sweep.runFromBoot(cells[i]);
    expectIdentical(forked[i], booted);
  }
}

TEST(EhSweep, RepeatedSweepsAreReproducible) {
  const power::SignalEnergyTable table = fixedTable();
  const std::vector<eh::SweepVariant> cell = {{"threshold", "noisy", 9}};

  eh::SweepRunner s1(table, kBlocks, testConfig());
  eh::SweepRunner s2(table, kBlocks, testConfig());
  // Independent parents produce the same boot snapshot bytes...
  EXPECT_EQ(s1.snapshot().saveToBuffer(), s2.snapshot().saveToBuffer());
  // ...and the same sweep outcomes.
  const auto a = s1.run(cell, 1);
  const auto b = s2.run(cell, 2);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  expectIdentical(a[0], b[0]);
}

} // namespace
} // namespace sct
