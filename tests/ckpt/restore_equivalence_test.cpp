// The checkpoint subsystem's headline invariant: a run that is
// snapshotted at a quiesce point and restored into a freshly
// constructed, identically configured platform continues BIT-IDENTICAL
// to the uninterrupted run — elapsed cycles, read payloads, per-signal
// transition counts, bus statistics, model energy (exact double
// equality), ledger totals and the cycle-resolved power profile.
//
// Covered layers: TL1 (cycle-true bus + cycle-accurate power model +
// profile recorder + ledger), TL2 in both process modes (event-driven
// schedule and the per-cycle reference), and the adaptive-fidelity
// HybridBus with a harness-driven switch schedule. Snapshot points are
// found the way a real harness finds them: step one cycle at a time and
// attempt the save — non-quiesced cycles throw CheckpointError and the
// run simply continues.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "../testbench.h"
#include "bus/ec_signals.h"
#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "bus/tl2_bus.h"
#include "ckpt/checkpoint.h"
#include "hier/hybrid_bus.h"
#include "obs/ledger.h"
#include "power/profile.h"
#include "power/tl1_power_model.h"
#include "power/tl2_power_model.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct {
namespace {

using trace::BusTrace;

power::SignalEnergyTable distinctTable() {
  power::SignalEnergyTable t;
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    t.setCoeff_fJ(static_cast<bus::SignalId>(i),
                  1.5 + 0.25 * static_cast<double>(i));
  }
  return t;
}

trace::MixRatios fullMix() {
  trace::MixRatios mix;
  mix.instrFetch = 1;
  return mix;
}

// ---------------------------------------------------------------------------
// TL1

struct Tl1Platform {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  bus::Tl1Bus bus{clk, "ecbus"};
  bus::MemorySlave fast{"ram", testbench::fastCtl()};
  bus::MemorySlave waited{"eeprom", testbench::waitedCtl()};
  power::Tl1PowerModel pm{distinctTable()};
  obs::EnergyLedger ledger;
  power::PowerProfile profile{10};
  power::Tl1ProfileRecorder recorder{pm, profile};
  trace::ReplayMaster master;

  explicit Tl1Platform(const BusTrace& t)
      : master(clk, "master", bus, bus, t) {
    bus.attach(fast);
    bus.attach(waited);
    trace::fillRealistic(fast.data(), fast.sizeBytes(), 11);
    trace::fillRealistic(waited.data(), waited.sizeBytes(), 22);
    pm.attachLedger(ledger);
    bus.addObserver(pm);
    bus.addObserver(recorder);
  }

  void registerAll(ckpt::CheckpointRegistry& reg) {
    reg.add("kernel", kernel);
    reg.add("clk", clk);
    reg.add("ecbus", bus);
    reg.add("ram", fast);
    reg.add("eeprom", waited);
    reg.add("master", master);
    reg.add("pm", pm);
    reg.add("ledger", ledger);
    reg.add("profile", profile);
  }
};

struct Req1Snap {
  bus::BusStatus result = bus::BusStatus::Wait;
  int slave = -1;
  std::uint32_t waitCount = 0;
  std::uint64_t acceptCycle = 0;
  std::uint64_t finishCycle = 0;
  std::array<bus::Word, 4> data{};

  bool operator==(const Req1Snap&) const = default;
};

struct Tl1Result {
  std::uint64_t finalCycle = 0;
  trace::ReplayStats replay;
  bus::Tl1BusStats busStats;
  std::vector<Req1Snap> requests;
  std::array<std::uint64_t, bus::kSignalCount> transitions{};
  double pmTotal = 0.0;
  double pmLastCycle = 0.0;
  double ledgerTotal = 0.0;
  std::vector<double> ledgerByBundle;
  std::vector<power::PowerProfile::Sample> samples;
  std::uint64_t fastDigest = 0;
  std::uint64_t waitedDigest = 0;
};

Tl1Result collect(Tl1Platform& p) {
  Tl1Result r;
  r.finalCycle = p.clk.cycle();
  r.replay = p.master.stats();
  r.busStats = p.bus.stats();
  for (const bus::Tl1Request& q : p.master.requests()) {
    r.requests.push_back({q.result, q.slave, q.waitCount, q.acceptCycle,
                          q.finishCycle,
                          {q.data[0], q.data[1], q.data[2], q.data[3]}});
  }
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    r.transitions[i] = p.pm.transitions(static_cast<bus::SignalId>(i));
    r.ledgerByBundle.push_back(
        p.ledger.byBundle_fJ(static_cast<bus::SignalId>(i)));
  }
  r.pmTotal = p.pm.totalEnergy_fJ();
  r.pmLastCycle = p.pm.energyLastCycle_fJ();
  r.ledgerTotal = p.ledger.total_fJ();
  r.samples = p.profile.samples();
  r.fastDigest = p.fast.imageDigest();
  r.waitedDigest = p.waited.imageDigest();
  return r;
}

void expectTl1ReplayEqual(const trace::ReplayStats& a,
                          const trace::ReplayStats& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.issueStallCycles, b.issueStallCycles);
  EXPECT_EQ(a.finishCycle, b.finishCycle);
}

void expectTl1BusStatsEqual(const bus::Tl1BusStats& a,
                            const bus::Tl1BusStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.busyCycles, b.busyCycles);
  EXPECT_EQ(a.addrCycles, b.addrCycles);
  EXPECT_EQ(a.readBeats, b.readBeats);
  EXPECT_EQ(a.writeBeats, b.writeBeats);
  EXPECT_EQ(a.instrTransactions, b.instrTransactions);
  EXPECT_EQ(a.readTransactions, b.readTransactions);
  EXPECT_EQ(a.writeTransactions, b.writeTransactions);
  EXPECT_EQ(a.readBusErrors, b.readBusErrors);
  EXPECT_EQ(a.writeBusErrors, b.writeBusErrors);
  EXPECT_EQ(a.bytesRead, b.bytesRead);
  EXPECT_EQ(a.bytesWritten, b.bytesWritten);
}

void expectTl1Identical(const Tl1Result& restored,
                        const Tl1Result& uninterrupted) {
  EXPECT_EQ(restored.finalCycle, uninterrupted.finalCycle);
  expectTl1ReplayEqual(restored.replay, uninterrupted.replay);
  expectTl1BusStatsEqual(restored.busStats, uninterrupted.busStats);

  ASSERT_EQ(restored.requests.size(), uninterrupted.requests.size());
  for (std::size_t i = 0; i < uninterrupted.requests.size(); ++i) {
    EXPECT_EQ(restored.requests[i], uninterrupted.requests[i])
        << "request " << i;
  }
  EXPECT_EQ(restored.transitions, uninterrupted.transitions);
  EXPECT_EQ(restored.pmTotal, uninterrupted.pmTotal);
  EXPECT_EQ(restored.pmLastCycle, uninterrupted.pmLastCycle);
  EXPECT_EQ(restored.ledgerTotal, uninterrupted.ledgerTotal);
  EXPECT_EQ(restored.ledgerByBundle, uninterrupted.ledgerByBundle);

  ASSERT_EQ(restored.samples.size(), uninterrupted.samples.size());
  for (std::size_t i = 0; i < uninterrupted.samples.size(); ++i) {
    EXPECT_EQ(restored.samples[i].cycle, uninterrupted.samples[i].cycle)
        << "sample " << i;
    EXPECT_EQ(restored.samples[i].energy_fJ,
              uninterrupted.samples[i].energy_fJ)
        << "sample " << i;
  }
  EXPECT_EQ(restored.fastDigest, uninterrupted.fastDigest);
  EXPECT_EQ(restored.waitedDigest, uninterrupted.waitedDigest);
}

TEST(Tl1Restore, MidRunSnapshotContinuesBitIdentical) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Gaps up to 24 cycles: the waited slave's burst transactions take
    // ~15 cycles, so shorter gaps would keep the replay queue occupied
    // for the whole run and no mid-run quiesce point would ever appear.
    const BusTrace t = trace::randomMix(seed, 300, testbench::bothRegions(),
                                        fullMix(), /*issueGapMax=*/24);

    // Uninterrupted reference.
    Tl1Platform ref(t);
    ref.master.runToCompletion();
    ASSERT_TRUE(ref.master.done());
    const Tl1Result want = collect(ref);

    // Partial run to a mid-trace quiesce point.
    Tl1Platform part(t);
    ckpt::CheckpointRegistry saveReg;
    part.registerAll(saveReg);
    ckpt::Snapshot snap;
    std::string lastRefusal;
    while (true) {
      part.clk.runCycles(1);
      ASSERT_FALSE(part.master.done())
          << "snapshot point not mid-run; last refusal: " << lastRefusal;
      if (part.master.stats().completed < t.size() / 3) continue;
      try {
        snap = saveReg.saveAll();
        break;
      } catch (const ckpt::CheckpointError& e) {
        lastRefusal = e.what();
      }
    }

    // Restore into a fresh platform and continue.
    Tl1Platform cont(t);
    ckpt::CheckpointRegistry loadReg;
    cont.registerAll(loadReg);
    loadReg.loadAll(snap);
    EXPECT_EQ(cont.clk.cycle(), part.clk.cycle());
    cont.master.runToCompletion();
    ASSERT_TRUE(cont.master.done());
    expectTl1Identical(collect(cont), want);
  }
}

TEST(Tl1Restore, SnapshotIsSideEffectFree) {
  // Taking a snapshot must not perturb the run: a snapshotted-but-not-
  // restored run finishes exactly like one that never snapshotted.
  const BusTrace t = trace::randomMix(5, 250, testbench::bothRegions(),
                                      fullMix(), /*issueGapMax=*/2);
  Tl1Platform plain(t);
  plain.master.runToCompletion();
  const Tl1Result want = collect(plain);

  Tl1Platform probed(t);
  ckpt::CheckpointRegistry reg;
  probed.registerAll(reg);
  std::size_t taken = 0;
  while (!probed.master.done()) {
    probed.clk.runCycles(1);
    try {
      (void)reg.saveAll();
      ++taken;
    } catch (const ckpt::CheckpointError&) {
    }
  }
  EXPECT_GT(taken, 0u);
  expectTl1Identical(collect(probed), want);
}

TEST(Tl1Restore, RoundTripThroughDiskBytes) {
  // The same continuation, but through serialize() and deserialize() —
  // the on-disk byte format must carry every bit the in-memory
  // Snapshot does.
  const BusTrace t = trace::randomMix(9, 200, testbench::bothRegions(),
                                      fullMix(), /*issueGapMax=*/24);
  Tl1Platform ref(t);
  ref.master.runToCompletion();
  const Tl1Result want = collect(ref);

  Tl1Platform part(t);
  ckpt::CheckpointRegistry saveReg;
  part.registerAll(saveReg);
  ckpt::Snapshot snap;
  while (true) {
    part.clk.runCycles(1);
    ASSERT_FALSE(part.master.done());
    if (part.master.stats().completed < t.size() / 2) continue;
    try {
      snap = saveReg.saveAll();
      break;
    } catch (const ckpt::CheckpointError&) {
    }
  }
  const ckpt::Snapshot back = ckpt::Snapshot::deserialize(snap.serialize());

  Tl1Platform cont(t);
  ckpt::CheckpointRegistry loadReg;
  cont.registerAll(loadReg);
  loadReg.loadAll(back);
  cont.master.runToCompletion();
  expectTl1Identical(collect(cont), want);
}

// ---------------------------------------------------------------------------
// TL2 (event-driven and per-cycle process modes)

struct Tl2Platform {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  bus::Tl2Bus bus{clk, "ecbus_tl2"};
  bus::MemorySlave fast{"ram", testbench::fastCtl()};
  bus::MemorySlave waited{"eeprom", testbench::waitedCtl()};
  power::Tl2PowerModel pm{distinctTable()};
  obs::EnergyLedger ledger;
  trace::Tl2ReplayMaster master;

  Tl2Platform(const BusTrace& t, bool perCycle)
      : master(clk, "master", bus, t) {
    bus.setPerCycleProcess(perCycle);
    bus.attach(fast);
    bus.attach(waited);
    trace::fillRealistic(fast.data(), fast.sizeBytes(), 11);
    trace::fillRealistic(waited.data(), waited.sizeBytes(), 22);
    pm.attachLedger(ledger);
    bus.addObserver(pm);
  }

  void registerAll(ckpt::CheckpointRegistry& reg) {
    reg.add("kernel", kernel);
    reg.add("clk", clk);
    reg.add("ecbus", bus);
    reg.add("ram", fast);
    reg.add("eeprom", waited);
    reg.add("master", master);
    reg.add("pm", pm);
    reg.add("ledger", ledger);
  }
};

struct Req2Snap {
  bus::BusStatus result = bus::BusStatus::Wait;
  int slave = -1;
  unsigned addrCycles = 0;
  unsigned dataCycles = 0;
  std::uint64_t acceptCycle = 0;
  std::uint64_t finishCycle = 0;

  bool operator==(const Req2Snap&) const = default;
};

struct Tl2Result {
  std::uint64_t finalCycle = 0;
  trace::ReplayStats replay;
  bus::Tl2BusStats busStats;
  std::vector<Req2Snap> requests;
  std::vector<std::array<std::uint8_t, 16>> readData;
  std::vector<double> estTransitions;
  double pmTotal = 0.0;
  double ledgerTotal = 0.0;
  std::uint64_t fastDigest = 0;
  std::uint64_t waitedDigest = 0;
};

Tl2Result collect(Tl2Platform& p, const BusTrace& t) {
  Tl2Result r;
  r.finalCycle = p.clk.cycle();
  r.replay = p.master.stats();
  r.busStats = p.bus.stats();
  for (const bus::Tl2Request& q : p.master.requests()) {
    r.requests.push_back({q.result, q.slave, q.addrCycles, q.dataCycles,
                          q.acceptCycle, q.finishCycle});
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != bus::Kind::Write) r.readData.push_back(p.master.buffer(i));
  }
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    r.estTransitions.push_back(
        p.pm.estimatedTransitions(static_cast<bus::SignalId>(i)));
  }
  r.pmTotal = p.pm.totalEnergy_fJ();
  r.ledgerTotal = p.ledger.total_fJ();
  r.fastDigest = p.fast.imageDigest();
  r.waitedDigest = p.waited.imageDigest();
  return r;
}

void expectTl2Identical(const Tl2Result& restored,
                        const Tl2Result& uninterrupted) {
  EXPECT_EQ(restored.finalCycle, uninterrupted.finalCycle);
  EXPECT_EQ(restored.replay.completed, uninterrupted.replay.completed);
  EXPECT_EQ(restored.replay.errors, uninterrupted.replay.errors);
  EXPECT_EQ(restored.replay.issueStallCycles,
            uninterrupted.replay.issueStallCycles);
  EXPECT_EQ(restored.replay.finishCycle, uninterrupted.replay.finishCycle);

  EXPECT_EQ(restored.busStats.cycles, uninterrupted.busStats.cycles);
  EXPECT_EQ(restored.busStats.busyCycles, uninterrupted.busStats.busyCycles);
  EXPECT_EQ(restored.busStats.instrTransactions,
            uninterrupted.busStats.instrTransactions);
  EXPECT_EQ(restored.busStats.readTransactions,
            uninterrupted.busStats.readTransactions);
  EXPECT_EQ(restored.busStats.writeTransactions,
            uninterrupted.busStats.writeTransactions);
  EXPECT_EQ(restored.busStats.errors, uninterrupted.busStats.errors);
  EXPECT_EQ(restored.busStats.bytesRead, uninterrupted.busStats.bytesRead);
  EXPECT_EQ(restored.busStats.bytesWritten,
            uninterrupted.busStats.bytesWritten);

  ASSERT_EQ(restored.requests.size(), uninterrupted.requests.size());
  for (std::size_t i = 0; i < uninterrupted.requests.size(); ++i) {
    EXPECT_EQ(restored.requests[i], uninterrupted.requests[i])
        << "request " << i;
  }
  ASSERT_EQ(restored.readData.size(), uninterrupted.readData.size());
  for (std::size_t i = 0; i < uninterrupted.readData.size(); ++i) {
    EXPECT_EQ(restored.readData[i], uninterrupted.readData[i])
        << "read payload " << i;
  }
  EXPECT_EQ(restored.estTransitions, uninterrupted.estTransitions);
  EXPECT_EQ(restored.pmTotal, uninterrupted.pmTotal);
  EXPECT_EQ(restored.ledgerTotal, uninterrupted.ledgerTotal);
  EXPECT_EQ(restored.fastDigest, uninterrupted.fastDigest);
  EXPECT_EQ(restored.waitedDigest, uninterrupted.waitedDigest);
}

class Tl2RestoreModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(Tl2RestoreModeTest, MidRunSnapshotContinuesBitIdentical) {
  const bool perCycle = GetParam();
  for (const std::uint64_t seed : {3u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Wide gaps, for the same reason as the TL1 suite: the queue must
    // actually drain mid-run for a quiesce point to exist.
    const BusTrace t = trace::randomMix(seed, 300, testbench::bothRegions(),
                                        fullMix(), /*issueGapMax=*/24);

    Tl2Platform ref(t, perCycle);
    ref.master.runToCompletion();
    ASSERT_TRUE(ref.master.done());
    const Tl2Result want = collect(ref, t);

    Tl2Platform part(t, perCycle);
    ckpt::CheckpointRegistry saveReg;
    part.registerAll(saveReg);
    ckpt::Snapshot snap;
    std::string lastRefusal;
    while (true) {
      part.clk.runCycles(1);
      ASSERT_FALSE(part.master.done())
          << "snapshot point not mid-run; last refusal: " << lastRefusal;
      if (part.master.stats().completed < t.size() / 3) continue;
      try {
        snap = saveReg.saveAll();
        break;
      } catch (const ckpt::CheckpointError& e) {
        lastRefusal = e.what();
      }
    }

    // The restore target must be constructed in the same process mode.
    Tl2Platform cont(t, perCycle);
    ckpt::CheckpointRegistry loadReg;
    cont.registerAll(loadReg);
    loadReg.loadAll(snap);
    EXPECT_EQ(cont.clk.cycle(), part.clk.cycle());
    cont.master.runToCompletion();
    ASSERT_TRUE(cont.master.done());
    expectTl2Identical(collect(cont, t), want);
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessModes, Tl2RestoreModeTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "PerCycle" : "EventDriven";
                         });

// ---------------------------------------------------------------------------
// Hybrid (adaptive fidelity, harness-driven switch schedule)

struct SwitchEvent {
  std::uint64_t cycle;
  hier::Fidelity target;
};

struct HybridPlatform {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  hier::HybridBus hb{clk, "ecbus"};
  bus::MemorySlave fast{"ram", testbench::fastCtl()};
  bus::MemorySlave waited{"eeprom", testbench::waitedCtl()};
  power::Tl1PowerModel pm1{distinctTable()};
  power::Tl2PowerModel pm2{distinctTable()};
  obs::EnergyLedger ledger1;
  power::PowerProfile profile{10};
  power::Tl1ProfileRecorder recorder{pm1, profile};
  trace::ReplayMaster master;

  explicit HybridPlatform(const BusTrace& t)
      : master(clk, "master", hb, hb, t) {
    hb.attach(fast);
    hb.attach(waited);
    trace::fillRealistic(fast.data(), fast.sizeBytes(), 11);
    trace::fillRealistic(waited.data(), waited.sizeBytes(), 22);
    pm1.attachLedger(ledger1);
    hb.tl1().addObserver(pm1);
    hb.tl1().addObserver(recorder);
    hb.tl2().addObserver(pm2);
  }

  void registerAll(ckpt::CheckpointRegistry& reg) {
    reg.add("kernel", kernel);
    reg.add("clk", clk);
    reg.add("ecbus", hb);
    reg.add("ram", fast);
    reg.add("eeprom", waited);
    reg.add("master", master);
    reg.add("pm1", pm1);
    reg.add("pm2", pm2);
    reg.add("ledger1", ledger1);
    reg.add("profile", profile);
  }

  /// Drive to completion under `schedule` (absolute switch-request
  /// cycles). Entries at or before the current cycle are treated as
  /// already applied — which is exactly the restored-run situation: the
  /// pre-snapshot switch state travels inside the HybridBus section.
  void runWithSchedule(const std::vector<SwitchEvent>& schedule) {
    std::size_t next = 0;
    while (next < schedule.size() && schedule[next].cycle <= clk.cycle()) {
      ++next;
    }
    while (!master.done()) {
      clk.runCycles(1);
      while (next < schedule.size() && schedule[next].cycle <= clk.cycle()) {
        hb.requestSwitch(schedule[next].target);
        ++next;
      }
      hb.tryCompleteSwitch();
    }
  }
};

struct HybridResult {
  std::uint64_t finalCycle = 0;
  std::uint64_t switches = 0;
  trace::ReplayStats replay;
  std::vector<Req1Snap> requests;
  std::array<std::uint64_t, bus::kSignalCount> transitions{};
  double pm1Total = 0.0;
  double pm2Total = 0.0;
  double ledgerTotal = 0.0;
  std::vector<power::PowerProfile::Sample> samples;
  std::uint64_t fastDigest = 0;
  std::uint64_t waitedDigest = 0;
};

HybridResult collect(HybridPlatform& p) {
  HybridResult r;
  r.finalCycle = p.clk.cycle();
  r.switches = p.hb.switches();
  r.replay = p.master.stats();
  for (const bus::Tl1Request& q : p.master.requests()) {
    r.requests.push_back({q.result, q.slave, q.waitCount, q.acceptCycle,
                          q.finishCycle,
                          {q.data[0], q.data[1], q.data[2], q.data[3]}});
  }
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    r.transitions[i] = p.pm1.transitions(static_cast<bus::SignalId>(i));
  }
  r.pm1Total = p.pm1.totalEnergy_fJ();
  r.pm2Total = p.pm2.totalEnergy_fJ();
  r.ledgerTotal = p.ledger1.total_fJ();
  r.samples = p.profile.samples();
  r.fastDigest = p.fast.imageDigest();
  r.waitedDigest = p.waited.imageDigest();
  return r;
}

void expectHybridIdentical(const HybridResult& restored,
                           const HybridResult& uninterrupted) {
  EXPECT_EQ(restored.finalCycle, uninterrupted.finalCycle);
  EXPECT_EQ(restored.switches, uninterrupted.switches);
  expectTl1ReplayEqual(restored.replay, uninterrupted.replay);
  ASSERT_EQ(restored.requests.size(), uninterrupted.requests.size());
  for (std::size_t i = 0; i < uninterrupted.requests.size(); ++i) {
    EXPECT_EQ(restored.requests[i], uninterrupted.requests[i])
        << "request " << i;
  }
  EXPECT_EQ(restored.transitions, uninterrupted.transitions);
  EXPECT_EQ(restored.pm1Total, uninterrupted.pm1Total);
  EXPECT_EQ(restored.pm2Total, uninterrupted.pm2Total);
  EXPECT_EQ(restored.ledgerTotal, uninterrupted.ledgerTotal);
  ASSERT_EQ(restored.samples.size(), uninterrupted.samples.size());
  for (std::size_t i = 0; i < uninterrupted.samples.size(); ++i) {
    EXPECT_EQ(restored.samples[i].cycle, uninterrupted.samples[i].cycle)
        << "sample " << i;
    EXPECT_EQ(restored.samples[i].energy_fJ,
              uninterrupted.samples[i].energy_fJ)
        << "sample " << i;
  }
  EXPECT_EQ(restored.fastDigest, uninterrupted.fastDigest);
  EXPECT_EQ(restored.waitedDigest, uninterrupted.waitedDigest);
}

TEST(HybridRestore, MidRunSnapshotContinuesBitIdentical) {
  // The switch schedule puts TL1 and TL2 regions on both sides of the
  // snapshot point; the FidelityController is deliberately not part of
  // the snapshot, so the harness drives switches by absolute cycle and
  // the restored run re-applies only the post-snapshot entries.
  const BusTrace t = trace::randomMix(13, 400, testbench::bothRegions(),
                                      fullMix(), /*issueGapMax=*/24);
  const std::vector<SwitchEvent> schedule = {
      {300, hier::Fidelity::Tl1},
      {1800, hier::Fidelity::Tl2},
      {3600, hier::Fidelity::Tl1},
  };

  HybridPlatform ref(t);
  ref.runWithSchedule(schedule);
  ASSERT_TRUE(ref.master.done());
  const HybridResult want = collect(ref);
  ASSERT_GE(want.switches, 2u) << "schedule never actually switched";

  // Partial run: same loop, but after each cycle past the target try to
  // snapshot (the attempt itself also exercises HybridBus::saveState's
  // quiesce precondition on non-quiesced cycles).
  HybridPlatform part(t);
  ckpt::CheckpointRegistry saveReg;
  part.registerAll(saveReg);
  ckpt::Snapshot snap;
  {
    std::size_t next = 0;
    bool saved = false;
    while (!saved) {
      part.clk.runCycles(1);
      ASSERT_FALSE(part.master.done()) << "snapshot point not mid-run";
      while (next < schedule.size() &&
             schedule[next].cycle <= part.clk.cycle()) {
        part.hb.requestSwitch(schedule[next].target);
        ++next;
      }
      part.hb.tryCompleteSwitch();
      if (part.master.stats().completed < t.size() / 3) continue;
      try {
        snap = saveReg.saveAll();
        saved = true;
      } catch (const ckpt::CheckpointError&) {
      }
    }
  }

  HybridPlatform cont(t);
  ckpt::CheckpointRegistry loadReg;
  cont.registerAll(loadReg);
  loadReg.loadAll(snap);
  EXPECT_EQ(cont.clk.cycle(), part.clk.cycle());
  EXPECT_EQ(cont.hb.active(), part.hb.active());
  cont.runWithSchedule(schedule);
  ASSERT_TRUE(cont.master.done());
  expectHybridIdentical(collect(cont), want);
}

TEST(HybridRestore, SaveWhileBusyThrows) {
  // Dense traffic with no issue gaps: the first cycles after the run
  // starts are guaranteed non-quiesced, and saveAll must reject them
  // with a CheckpointError rather than serialize a half-transferred
  // state.
  const BusTrace t =
      trace::randomMix(21, 60, std::vector{testbench::waitedRegion()},
                       fullMix(), /*issueGapMax=*/0);
  HybridPlatform p(t);
  ckpt::CheckpointRegistry reg;
  p.registerAll(reg);
  p.hb.requestSwitch(hier::Fidelity::Tl1);
  p.hb.tryCompleteSwitch();
  p.clk.runCycles(3);
  ASSERT_FALSE(p.hb.quiesced());
  EXPECT_THROW((void)reg.saveAll(), ckpt::CheckpointError);
}

} // namespace
} // namespace sct
