// In-memory Snapshot round trip (saveToBuffer / loadFromBuffer).
//
// The serve instance pool restores thousands of sessions per second
// from one boot snapshot; a file round-trip per restore would dominate
// the recycle cost. These tests pin down that the in-memory buffer is
// BYTE-IDENTICAL to the on-disk format — the same bytes saveFile
// writes and loadFile parses — using both a freshly built SoC
// checkpoint and the checked-in golden boot file.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bus/tl1_bus.h"
#include "ckpt/checkpoint.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"

namespace sct {
namespace {

using Tl1Soc = soc::SmartCardSoC<bus::Tl1Bus>;

const std::string kGoldenPath =
    std::string(SCT_TEST_DATA_DIR) + "/ckpt/golden_boot.sctck";

std::vector<std::uint8_t> readFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return bytes;
}

ckpt::Snapshot bootSnapshot() {
  constexpr const char* kProgram = R"(
      li   $s2, 0x08000000
      addiu $t0, $zero, 123
      sw   $t0, 0($s2)
      break
  )";
  Tl1Soc soc{soc::SocConfig{}};
  soc.loadProgram(soc::assemble(kProgram, soc::memmap::kRomBase));
  EXPECT_TRUE(soc.run());
  return soc.checkpoint();
}

TEST(SnapshotBuffer, RoundTripPreservesEverySection) {
  const ckpt::Snapshot snap = bootSnapshot();
  const std::vector<std::uint8_t> buf = snap.saveToBuffer();
  const ckpt::Snapshot back = ckpt::Snapshot::loadFromBuffer(buf);

  ASSERT_EQ(back.sections().size(), snap.sections().size());
  for (std::size_t i = 0; i < snap.sections().size(); ++i) {
    EXPECT_EQ(back.sections()[i].tag, snap.sections()[i].tag);
    EXPECT_EQ(back.sections()[i].version, snap.sections()[i].version);
    EXPECT_EQ(back.sections()[i].payload, snap.sections()[i].payload);
  }
  // Re-serializing the parsed snapshot reproduces the identical bytes.
  EXPECT_EQ(back.saveToBuffer(), buf);
}

TEST(SnapshotBuffer, BufferBytesMatchOnDiskFormat) {
  const ckpt::Snapshot snap = bootSnapshot();
  const std::string path = ::testing::TempDir() + "sct_buffer_roundtrip.sctck";
  snap.saveFile(path);
  const std::vector<std::uint8_t> onDisk = readFileBytes(path);
  std::remove(path.c_str());

  ASSERT_FALSE(onDisk.empty());
  EXPECT_EQ(snap.saveToBuffer(), onDisk)
      << "saveToBuffer and saveFile diverged: the in-memory path is no "
         "longer the on-disk format";
}

TEST(SnapshotBuffer, GoldenFileLoadsFromRawBytes) {
  // The checked-in golden boot checkpoint must parse identically via
  // loadFile and via loadFromBuffer of the raw file bytes — the serve
  // pool adopts snapshots through the buffer path only.
  const std::vector<std::uint8_t> raw = readFileBytes(kGoldenPath);
  ASSERT_FALSE(raw.empty()) << "golden file missing: " << kGoldenPath;

  const ckpt::Snapshot viaFile = ckpt::Snapshot::loadFile(kGoldenPath);
  const ckpt::Snapshot viaBuffer = ckpt::Snapshot::loadFromBuffer(raw);

  ASSERT_EQ(viaBuffer.sections().size(), viaFile.sections().size());
  for (std::size_t i = 0; i < viaFile.sections().size(); ++i) {
    EXPECT_EQ(viaBuffer.sections()[i].tag, viaFile.sections()[i].tag);
    EXPECT_EQ(viaBuffer.sections()[i].payload,
              viaFile.sections()[i].payload);
  }
  EXPECT_EQ(viaBuffer.saveToBuffer(), raw)
      << "golden bytes did not survive a buffer round trip";
}

TEST(SnapshotBuffer, TruncatedBufferIsRejected) {
  const std::vector<std::uint8_t> buf = bootSnapshot().saveToBuffer();
  std::vector<std::uint8_t> cut(buf.begin(), buf.begin() + buf.size() / 2);
  EXPECT_THROW(ckpt::Snapshot::loadFromBuffer(cut), ckpt::CheckpointError);
}

} // namespace
} // namespace sct
