// On-disk checkpoint format stability, pinned by a golden file.
//
// tests/ckpt/golden_boot.sctck is the checkpoint of a deterministic
// SmartCardSoC boot (firmware below, run to halt). The test re-runs the
// boot in-process and requires the freshly produced snapshot to be
// byte-identical to the golden file — any accidental layout change in
// any component's saveState breaks this test instead of silently
// orphaning previously written checkpoints. Deliberate layout changes
// bump the component's kCkptVersion (making old files fail loudly with
// a version-skew CheckpointError, also tested here) and regenerate the
// golden with:
//   SCT_REGEN_GOLDEN=1 ./test_ckpt --gtest_filter='Golden*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "bus/tl1_bus.h"
#include "ckpt/checkpoint.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"

namespace sct {
namespace {

using Tl1Soc = soc::SmartCardSoC<bus::Tl1Bus>;

const std::string kGoldenPath =
    std::string(SCT_TEST_DATA_DIR) + "/ckpt/golden_boot.sctck";

bool regenRequested() {
  const char* env = std::getenv("SCT_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Deterministic boot firmware: greet over the UART, checksum the first
// ROM words into RAM, enable timer 0 (so the snapshot carries a LIVE
// peripheral that keeps counting after restore), halt.
constexpr const char* kBootProgram = R"(
    li   $s0, 0x10000200   # UART base
    addiu $t0, $zero, 0x42 # 'B'
    jal  putc
    addiu $t0, $zero, 0x54 # 'T'
    jal  putc
    li   $s1, 0x00000000   # ROM base
    addiu $t2, $zero, 0
    addiu $t3, $zero, 32
  sum:
    lw   $t4, 0($s1)
    addu $t2, $t2, $t4
    addiu $s1, $s1, 4
    addiu $t3, $t3, -1
    bne  $t3, $zero, sum
    li   $s2, 0x08000000   # RAM base
    sw   $t2, 0($s2)
    li   $s3, 0x10000100   # Timer 0 base
    addiu $t5, $zero, 1
    sw   $t5, 8($s3)       # CTRL.enable
    break
  putc:
    lw   $t1, 4($s0)       # STATUS
    andi $t1, $t1, 1
    beq  $t1, $zero, putc
    sw   $t0, 0($s0)
    jr   $ra
)";

/// Boot to halt; the halted core is deeply quiesced, so the checkpoint
/// precondition holds by construction.
void boot(Tl1Soc& soc) {
  soc.loadProgram(
      soc::assemble(kBootProgram, soc::memmap::kRomBase));
  ASSERT_TRUE(soc.run());
  ASSERT_FALSE(soc.cpu().faulted());
  ASSERT_EQ(soc.uart().transmitted(), "BT");
}

TEST(GoldenCheckpoint, BootSnapshotMatchesGoldenFile) {
  Tl1Soc soc{soc::SocConfig{}};
  boot(soc);
  const ckpt::Snapshot fresh = soc.checkpoint();

  if (regenRequested()) {
    fresh.saveFile(kGoldenPath);
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  ckpt::Snapshot golden;
  try {
    golden = ckpt::Snapshot::loadFile(kGoldenPath);
  } catch (const ckpt::CheckpointError& e) {
    FAIL() << e.what()
           << " — regenerate with SCT_REGEN_GOLDEN=1 if this is a new "
              "checkout";
  }

  // Byte-identical framing: same sections, same versions, same payloads.
  ASSERT_EQ(golden.sections().size(), fresh.sections().size());
  for (std::size_t i = 0; i < fresh.sections().size(); ++i) {
    const auto& g = golden.sections()[i];
    const auto& f = fresh.sections()[i];
    EXPECT_EQ(g.tag, f.tag) << "section " << i;
    EXPECT_EQ(g.version, f.version)
        << "section '" << f.tag
        << "': golden written by a different layout version";
    EXPECT_EQ(g.payload, f.payload)
        << "section '" << f.tag
        << "' layout drifted — bump its kCkptVersion and regenerate "
           "(SCT_REGEN_GOLDEN=1)";
  }
  EXPECT_EQ(golden.serialize(), fresh.serialize());
}

TEST(GoldenCheckpoint, GoldenRestoresAndContinues) {
  if (regenRequested()) GTEST_SKIP() << "regen run";

  // Reference: boot in-process and keep running 500 post-halt cycles
  // (the enabled timer keeps counting; the halted core sits still).
  Tl1Soc ref{soc::SocConfig{}};
  boot(ref);
  ref.clock().runCycles(500);

  // Restored platform: fresh SoC with the same firmware image, state
  // overwritten from the golden file, then the same 500 cycles.
  Tl1Soc soc{soc::SocConfig{}};
  soc.loadProgram(soc::assemble(kBootProgram, soc::memmap::kRomBase));
  const ckpt::Snapshot golden = ckpt::Snapshot::loadFile(kGoldenPath);
  soc.restore(golden);

  EXPECT_EQ(soc.uart().transmitted(), "BT");
  EXPECT_EQ(soc.cpu().pc(), ref.cpu().pc());
  EXPECT_TRUE(soc.cpu().halted());
  soc.clock().runCycles(500);

  EXPECT_EQ(soc.clock().cycle(), ref.clock().cycle());
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(soc.cpu().reg(i), ref.cpu().reg(i)) << "reg " << i;
  }
  EXPECT_EQ(soc.ram().peekWord(soc::memmap::kRamBase),
            ref.ram().peekWord(soc::memmap::kRamBase));
  EXPECT_EQ(soc.ram().imageDigest(), ref.ram().imageDigest());
  EXPECT_EQ(soc.rom().imageDigest(), ref.rom().imageDigest());
  EXPECT_EQ(soc.timer().count(), ref.timer().count());
  EXPECT_GT(soc.timer().count(), 0u) << "timer not live after restore";
  EXPECT_EQ(soc.cpu().stats().cycles, ref.cpu().stats().cycles);
  EXPECT_EQ(soc.cpu().stats().instructions, ref.cpu().stats().instructions);
}

TEST(GoldenCheckpoint, VersionSkewIsRejected) {
  if (regenRequested()) GTEST_SKIP() << "regen run";

  // A build whose CPU layout moved on (kCkptVersion + 1) must refuse
  // the old file by name, not misparse it.
  Tl1Soc soc{soc::SocConfig{}};
  soc.loadProgram(soc::assemble(kBootProgram, soc::memmap::kRomBase));
  const ckpt::Snapshot golden = ckpt::Snapshot::loadFile(kGoldenPath);

  ckpt::CheckpointRegistry reg;
  reg.add("kernel", soc.kernel());
  reg.add("clk", soc.clock());
  reg.add("ecbus", soc.bus());
  reg.add("rom", soc.rom());
  reg.add("ram", soc.ram());
  reg.add("eeprom", soc.eeprom());
  reg.add("flash", soc.flash());
  reg.add("irqc", soc.irqController());
  reg.add("timer0", soc.timer());
  reg.add("timer1", soc.timer2());
  reg.add("uart", soc.uart());
  reg.add("trng", soc.trng());
  reg.add("crypto", soc.crypto());
  reg.add("cpu", soc.cpu(), soc::MipsCore::kCkptVersion + 1);
  try {
    reg.loadAll(golden);
    FAIL() << "expected CheckpointError";
  } catch (const ckpt::CheckpointError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version skew"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cpu"), std::string::npos) << msg;
  }
}

} // namespace
} // namespace sct
