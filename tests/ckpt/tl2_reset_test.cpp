// Tl2Bus::reset() regression: after a reset, the bus is
// indistinguishable from one constructed at that instant. A workload
// replayed after reset must produce the same statistics, per-request
// timing, read payloads and memory effects as the same workload on a
// fresh platform — in both process modes, and through the
// Tl2MasterBridge (whose reset() is the companion teardown).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "../testbench.h"
#include "bus/memory_slave.h"
#include "bus/tl2_bridge.h"
#include "bus/tl2_bus.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct {
namespace {

using trace::BusTrace;

trace::MixRatios fullMix() {
  trace::MixRatios mix;
  mix.instrFetch = 1;
  return mix;
}

/// Back-to-back issue (every issueCycle == 0), so the replay schedule
/// is start-cycle independent: the same trace issues identically on a
/// fresh platform at cycle 0 and on a reset platform at cycle R.
BusTrace backToBack(std::uint64_t seed, std::size_t n) {
  return trace::randomMix(seed, n, testbench::bothRegions(), fullMix(),
                          /*issueGapMax=*/0);
}

struct Platform {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  bus::Tl2Bus bus{clk, "ecbus_tl2"};
  bus::MemorySlave fast{"ram", testbench::fastCtl()};
  bus::MemorySlave waited{"eeprom", testbench::waitedCtl()};

  explicit Platform(bool perCycle) {
    bus.setPerCycleProcess(perCycle);
    bus.attach(fast);
    bus.attach(waited);
    fillImages();
  }

  /// (Re)load the pristine memory contents, so a post-reset replay sees
  /// the same data a fresh platform would.
  void fillImages() {
    trace::fillRealistic(fast.data(), fast.sizeBytes(), 11);
    trace::fillRealistic(waited.data(), waited.sizeBytes(), 22);
  }
};

struct RunResult {
  bus::Tl2BusStats stats;
  trace::ReplayStats replay;
  std::vector<unsigned> addrCycles;
  std::vector<unsigned> dataCycles;
  std::vector<bus::BusStatus> results;
  std::vector<std::uint64_t> relAccept;  ///< acceptCycle - run base.
  std::vector<std::uint64_t> relFinish;
  std::vector<std::array<std::uint8_t, 16>> readData;
  std::uint64_t fastDigest = 0;
  std::uint64_t waitedDigest = 0;
};

/// Replay `t` on `p` from its current cycle; cycles are reported
/// relative to the run base so fresh and post-reset runs compare.
RunResult replay(Platform& p, const BusTrace& t) {
  const std::uint64_t base = p.clk.cycle();
  trace::Tl2ReplayMaster master(p.clk, "master", p.bus, t);
  master.runToCompletion();
  EXPECT_TRUE(master.done());
  RunResult r;
  r.stats = p.bus.stats();
  r.replay = master.stats();
  r.replay.finishCycle -= base;
  for (const bus::Tl2Request& q : master.requests()) {
    r.addrCycles.push_back(q.addrCycles);
    r.dataCycles.push_back(q.dataCycles);
    r.results.push_back(q.result);
    r.relAccept.push_back(q.acceptCycle - base);
    r.relFinish.push_back(q.finishCycle - base);
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != bus::Kind::Write) r.readData.push_back(master.buffer(i));
  }
  r.fastDigest = p.fast.imageDigest();
  r.waitedDigest = p.waited.imageDigest();
  return r;
}

void expectEqual(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.busyCycles, b.stats.busyCycles);
  EXPECT_EQ(a.stats.instrTransactions, b.stats.instrTransactions);
  EXPECT_EQ(a.stats.readTransactions, b.stats.readTransactions);
  EXPECT_EQ(a.stats.writeTransactions, b.stats.writeTransactions);
  EXPECT_EQ(a.stats.errors, b.stats.errors);
  EXPECT_EQ(a.stats.bytesRead, b.stats.bytesRead);
  EXPECT_EQ(a.stats.bytesWritten, b.stats.bytesWritten);
  EXPECT_EQ(a.replay.completed, b.replay.completed);
  EXPECT_EQ(a.replay.errors, b.replay.errors);
  EXPECT_EQ(a.replay.issueStallCycles, b.replay.issueStallCycles);
  EXPECT_EQ(a.replay.finishCycle, b.replay.finishCycle);
  EXPECT_EQ(a.addrCycles, b.addrCycles);
  EXPECT_EQ(a.dataCycles, b.dataCycles);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.relAccept, b.relAccept);
  EXPECT_EQ(a.relFinish, b.relFinish);
  EXPECT_EQ(a.readData, b.readData);
  EXPECT_EQ(a.fastDigest, b.fastDigest);
  EXPECT_EQ(a.waitedDigest, b.waitedDigest);
}

class Tl2ResetModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(Tl2ResetModeTest, ResetEquivalentToFreshConstruction) {
  const bool perCycle = GetParam();
  const BusTrace warmup = backToBack(100, 200);
  const BusTrace probe = backToBack(200, 250);

  // Fresh reference: only the probe workload, from construction.
  Platform fresh(perCycle);
  const RunResult want = replay(fresh, probe);

  // Warmed platform: run a different workload first, reset, restore the
  // memory images, replay the probe.
  Platform warmed(perCycle);
  (void)replay(warmed, warmup);
  ASSERT_TRUE(warmed.bus.idle());
  warmed.bus.reset();
  warmed.fillImages();

  // The reset zeroes the statistics immediately.
  EXPECT_EQ(warmed.bus.stats().cycles, 0u);
  EXPECT_EQ(warmed.bus.stats().busyCycles, 0u);
  EXPECT_EQ(warmed.bus.stats().transactions(), 0u);
  EXPECT_EQ(warmed.bus.stats().bytesRead, 0u);
  EXPECT_EQ(warmed.bus.stats().bytesWritten, 0u);

  const RunResult got = replay(warmed, probe);
  expectEqual(got, want);
}

TEST_P(Tl2ResetModeTest, RepeatedResetsStayEquivalent) {
  const bool perCycle = GetParam();
  const BusTrace probe = backToBack(300, 150);

  Platform fresh(perCycle);
  const RunResult want = replay(fresh, probe);

  Platform cycled(perCycle);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    if (round != 0) {
      cycled.bus.reset();
      cycled.fillImages();
    }
    const RunResult got = replay(cycled, probe);
    expectEqual(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessModes, Tl2ResetModeTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "PerCycle" : "EventDriven";
                         });

TEST(Tl2Reset, ResetWhileBusyThrows) {
  Platform p(/*perCycle=*/false);
  const BusTrace t = backToBack(400, 40);
  trace::Tl2ReplayMaster master(p.clk, "master", p.bus, t);
  master.runToCompletion(/*maxCycles=*/3);
  ASSERT_FALSE(p.bus.idle());
  EXPECT_THROW(p.bus.reset(), std::logic_error);
  // Drain, then the reset is legal again.
  master.runToCompletion();
  ASSERT_TRUE(p.bus.idle());
  EXPECT_NO_THROW(p.bus.reset());
}

TEST(Tl2Reset, BridgedResetEquivalentToFresh) {
  // The layer-1 view through the Tl2MasterBridge: bridge.reset() +
  // bus.reset() must equal a freshly bridged bus.
  const BusTrace probe = backToBack(500, 200);

  Platform fresh(/*perCycle=*/false);
  bus::Tl2MasterBridge freshBridge(fresh.bus);
  std::uint64_t wantFinish = 0;
  std::vector<bus::Word> wantWords;
  {
    trace::ReplayMaster m(fresh.clk, "m", freshBridge, freshBridge, probe);
    m.runToCompletion();
    EXPECT_TRUE(m.done());
    wantFinish = m.stats().finishCycle;
    for (const auto& q : m.requests()) wantWords.push_back(q.data[0]);
  }
  const bus::Tl2BusStats want = fresh.bus.stats();

  Platform warmed(/*perCycle=*/false);
  bus::Tl2MasterBridge bridge(warmed.bus);
  {
    const BusTrace warmup = backToBack(600, 120);
    trace::ReplayMaster m(warmed.clk, "m", bridge, bridge, warmup);
    m.runToCompletion();
    EXPECT_TRUE(m.done());
  }
  bridge.sync();
  ASSERT_TRUE(bridge.drained());
  ASSERT_TRUE(warmed.bus.idle());
  bridge.reset();
  warmed.bus.reset();
  warmed.fillImages();

  const std::uint64_t base = warmed.clk.cycle();
  std::vector<bus::Word> gotWords;
  trace::ReplayMaster m(warmed.clk, "m", bridge, bridge, probe);
  m.runToCompletion();
  EXPECT_TRUE(m.done());
  EXPECT_EQ(m.stats().finishCycle - base, wantFinish);
  for (const auto& q : m.requests()) gotWords.push_back(q.data[0]);
  EXPECT_EQ(gotWords, wantWords);

  const bus::Tl2BusStats got = warmed.bus.stats();
  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.busyCycles, want.busyCycles);
  EXPECT_EQ(got.transactions(), want.transactions());
  EXPECT_EQ(got.bytesRead, want.bytesRead);
  EXPECT_EQ(got.bytesWritten, want.bytesWritten);
}

} // namespace
} // namespace sct
