// Full-system checkpointing and the boot-once/fork-many driver.
//
// Three layers of confidence on the SmartCardSoC platform:
//   1. MemorySlave::imageDigest identity (the cheap comparator every
//      other suite leans on, including the copy-on-write path),
//   2. a MID-RUN snapshot — taken at the first quiesce point the
//      firmware happens to pass, not at a halt — restored into a fresh
//      SoC continues bit-identically to the uninterrupted run,
//   3. ForkRunner: a sweep that boots once and forks N configuration
//      variants produces exactly the results of N boot-from-scratch
//      jobs, sequentially and across worker threads.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "ckpt/checkpoint.h"
#include "ckpt/fork_runner.h"
#include "sim/rng.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"

namespace sct {
namespace {

using Tl1Soc = soc::SmartCardSoC<bus::Tl1Bus>;

// ---------------------------------------------------------------------
// imageDigest

bus::SlaveControl plainCtl(std::size_t size) {
  bus::SlaveControl c;
  c.base = 0;
  c.size = size;
  return c;
}

void fillPattern(std::uint8_t* d, std::size_t n, unsigned seed) {
  sim::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = static_cast<std::uint8_t>(rng.next());
  }
}

TEST(ImageDigest, EqualImagesEqualDigests) {
  bus::MemorySlave a("a", plainCtl(4096));
  bus::MemorySlave b("b", plainCtl(4096));
  EXPECT_EQ(a.imageDigest(), b.imageDigest());  // Both all-zero.

  fillPattern(a.data(), a.sizeBytes(), 7);
  fillPattern(b.data(), b.sizeBytes(), 7);
  EXPECT_EQ(a.imageDigest(), b.imageDigest());
  EXPECT_NE(a.imageDigest(), bus::MemorySlave("z", plainCtl(4096))
                                 .imageDigest());
}

TEST(ImageDigest, SensitiveToSingleByte) {
  bus::MemorySlave a("a", plainCtl(4096));
  fillPattern(a.data(), a.sizeBytes(), 3);
  const std::uint64_t before = a.imageDigest();
  a.data()[123] ^= 1;
  EXPECT_NE(a.imageDigest(), before);
  a.data()[123] ^= 1;
  EXPECT_EQ(a.imageDigest(), before);  // Deterministic, content-only.
}

TEST(ImageDigest, SharedImageMatchesPrototype) {
  static std::vector<std::uint8_t> proto(4096);
  fillPattern(proto.data(), proto.size(), 9);

  bus::MemorySlave cow("cow", plainCtl(proto.size()), proto.data());
  bus::MemorySlave plain("plain", plainCtl(proto.size()));
  fillPattern(plain.data(), plain.sizeBytes(), 9);
  EXPECT_EQ(cow.imageDigest(), plain.imageDigest());

  // The first mutation materializes a private copy; the digest tracks
  // the live image and the prototype stays untouched.
  cow.pokeWord(0, 0xDEADBEEF);
  plain.pokeWord(0, 0xDEADBEEF);
  EXPECT_EQ(cow.imageDigest(), plain.imageDigest());
  EXPECT_EQ(proto[0], static_cast<std::uint8_t>(sim::SplitMix64(9).next()));
}

// ---------------------------------------------------------------------
// Shared firmware: a boot phase (checksum EEPROM into RAM, greet over
// the UART, halt) and a parameterized sweep phase entered by resetting
// the core at the `phase2` label. The boot loop mixes cached ALU
// stretches with EEPROM loads and RAM stores, so the platform passes
// through mid-run quiesce points (cache-hit cycles with no outstanding
// bus transaction) — exactly what the snapshot tests need.
constexpr const char* kFirmware = R"(
    li    $s0, 0x0A000000   # EEPROM base
    li    $s2, 0x08000000   # RAM base
    addiu $t2, $zero, 0
    addiu $t3, $zero, 96    # iterations
  loop:
    lw    $t4, 0($s0)
    addu  $t2, $t2, $t4
    xor   $t2, $t2, $t3
    sll   $t5, $t2, 1
    addu  $t2, $t2, $t5
    sw    $t2, 4($s2)
    addiu $s0, $s0, 4
    addiu $t3, $t3, -1
    bne   $t3, $zero, loop
    li    $s1, 0x10000200   # UART base
    addiu $t0, $zero, 0x42  # 'B'
    jal   putc
    break
  putc:
    lw    $t1, 4($s1)       # STATUS
    andi  $t1, $t1, 1
    beq   $t1, $zero, putc
    sw    $t0, 0($s1)
    jr    $ra

  phase2:                   # sweep body: sum 1..param
    li    $s2, 0x08000000
    lw    $t3, 16($s2)      # parameter poked by the harness
    addiu $t2, $zero, 0
  ploop:
    addu  $t2, $t2, $t3
    addiu $t3, $t3, -1
    bne   $t3, $zero, ploop
    sw    $t2, 20($s2)
    break
)";

const soc::AssembledProgram& firmware() {
  static const soc::AssembledProgram prog =
      soc::assemble(kFirmware, soc::memmap::kRomBase);
  return prog;
}

void prepare(Tl1Soc& soc) {
  std::vector<std::uint8_t> eeprom(96 * 4);
  fillPattern(eeprom.data(), eeprom.size(), 5);
  soc.loadData(soc::memmap::kEepromBase, eeprom.data(), eeprom.size());
  soc.loadProgram(firmware());
}

/// Everything a run can be judged by; defaulted == makes the fork
/// comparisons one-liners.
struct SocResult {
  std::string transmitted;
  std::uint64_t clockCycle = 0;
  std::uint64_t pc = 0;
  std::vector<std::uint32_t> regs;
  std::uint64_t cpuCycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t ifetchStalls = 0;
  std::uint64_t loadStalls = 0;
  std::uint64_t storeStalls = 0;
  std::uint64_t busCycles = 0;
  std::uint64_t busBusy = 0;
  std::uint64_t busTransactions = 0;
  std::uint64_t ramDigest = 0;
  std::uint64_t eepromDigest = 0;
  std::uint32_t bootChecksum = 0;
  std::uint32_t sweepResult = 0;
  std::uint64_t timerTicks = 0;

  bool operator==(const SocResult&) const = default;
};

SocResult capture(Tl1Soc& soc) {
  SocResult r;
  r.transmitted = soc.uart().transmitted();
  r.clockCycle = soc.clock().cycle();
  r.pc = soc.cpu().pc();
  for (unsigned i = 0; i < 32; ++i) r.regs.push_back(soc.cpu().reg(i));
  r.cpuCycles = soc.cpu().stats().cycles;
  r.instructions = soc.cpu().stats().instructions;
  r.ifetchStalls = soc.cpu().stats().ifetchStallCycles;
  r.loadStalls = soc.cpu().stats().loadStallCycles;
  r.storeStalls = soc.cpu().stats().storeStallCycles;
  r.busCycles = soc.bus().stats().cycles;
  r.busBusy = soc.bus().stats().busyCycles;
  r.busTransactions = soc.bus().stats().transactions();
  r.ramDigest = soc.ram().imageDigest();
  r.eepromDigest = soc.eeprom().imageDigest();
  r.bootChecksum = soc.ram().peekWord(soc::memmap::kRamBase + 4);
  r.sweepResult = soc.ram().peekWord(soc::memmap::kRamBase + 20);
  r.timerTicks = soc.timer().ticks();
  return r;
}

// ---------------------------------------------------------------------
// Mid-run snapshot/restore

TEST(SocCheckpoint, MidRunSnapshotContinuesBitIdentical) {
  // Uninterrupted reference.
  Tl1Soc ref{soc::SocConfig{}};
  prepare(ref);
  ASSERT_TRUE(ref.run());
  ASSERT_FALSE(ref.cpu().faulted());
  ASSERT_EQ(ref.uart().transmitted(), "B");
  const SocResult want = capture(ref);

  // Interrupted run: step cycle by cycle, snapshot at the first quiesce
  // point the firmware passes after a short warmup. saveAll() throwing
  // CheckpointError on busy cycles is the designed behaviour.
  Tl1Soc part{soc::SocConfig{}};
  prepare(part);
  ckpt::Snapshot snap;
  bool taken = false;
  std::string lastRefusal;
  for (int i = 0; i < 20000 && !part.cpu().halted(); ++i) {
    part.clock().runCycles(1);
    if (part.clock().cycle() < 60) continue;
    try {
      snap = part.checkpoint();
      taken = true;
      break;
    } catch (const ckpt::CheckpointError& e) {
      lastRefusal = e.what();
    }
  }
  ASSERT_TRUE(taken) << "firmware never passed a quiesce point; last "
                        "refusal: "
                     << lastRefusal;
  ASSERT_FALSE(part.cpu().halted()) << "snapshot landed after the halt";

  // Restore into a fresh platform and let both finish.
  Tl1Soc cont{soc::SocConfig{}};
  prepare(cont);
  cont.restore(snap);
  EXPECT_EQ(cont.clock().cycle(), part.clock().cycle());
  EXPECT_EQ(cont.cpu().pc(), part.cpu().pc());

  ASSERT_TRUE(part.run());
  ASSERT_TRUE(cont.run());
  EXPECT_EQ(capture(part), want);
  EXPECT_EQ(capture(cont), want);
}

TEST(SocCheckpoint, SnapshotSurvivesDiskBytes) {
  // The same restore, but through serialize/deserialize — what the
  // golden file and any cross-process fork consumer exercise.
  Tl1Soc ref{soc::SocConfig{}};
  prepare(ref);
  ASSERT_TRUE(ref.run());
  const ckpt::Snapshot snap =
      ckpt::Snapshot::deserialize(ref.checkpoint().serialize());

  Tl1Soc back{soc::SocConfig{}};
  prepare(back);
  back.restore(snap);
  EXPECT_EQ(capture(back), capture(ref));
}

// ---------------------------------------------------------------------
// ForkRunner

constexpr std::size_t kVariants = 6;

std::uint32_t paramFor(std::size_t i) {
  return static_cast<std::uint32_t>(5 + 3 * i);
}

/// The per-variant configuration delta + measured phase: poke the sweep
/// parameter, restart the core at the sweep entry, run to halt.
void runVariantPhase(Tl1Soc& soc, std::size_t i) {
  soc.ram().pokeWord(soc::memmap::kRamBase + 16, paramFor(i));
  soc.cpu().reset(firmware().label("phase2"));
  ASSERT_TRUE(soc.run());
  ASSERT_FALSE(soc.cpu().faulted());
}

/// Reference job: pay for the whole boot, then the variant phase.
SocResult bootAndRunVariant(std::size_t i) {
  Tl1Soc soc{soc::SocConfig{}};
  prepare(soc);
  EXPECT_TRUE(soc.run());
  runVariantPhase(soc, i);
  return capture(soc);
}

TEST(ForkRunner, ForkedSweepMatchesBootPerJob) {
  ckpt::ForkRunner runner([] {
    Tl1Soc parent{soc::SocConfig{}};
    prepare(parent);
    EXPECT_TRUE(parent.run());
    return parent.checkpoint();
  });

  std::vector<SocResult> forked(kVariants);
  runner.runForks(kVariants, /*threads=*/1,
                  [&](const ckpt::Snapshot& snap, std::size_t i) {
                    Tl1Soc soc{soc::SocConfig{}};
                    prepare(soc);
                    soc.restore(snap);
                    runVariantPhase(soc, i);
                    forked[i] = capture(soc);
                  });

  for (std::size_t i = 0; i < kVariants; ++i) {
    SCOPED_TRACE("variant " + std::to_string(i));
    const SocResult want = bootAndRunVariant(i);
    EXPECT_EQ(forked[i], want);
    // The sweep phase really ran with the variant's own parameter.
    const std::uint32_t p = paramFor(i);
    EXPECT_EQ(want.sweepResult, p * (p + 1) / 2);
  }
}

TEST(ForkRunner, ThreadedForksMatchSequential) {
  ckpt::ForkRunner runner([] {
    Tl1Soc parent{soc::SocConfig{}};
    prepare(parent);
    EXPECT_TRUE(parent.run());
    return parent.checkpoint();
  });

  const auto sweep = [&](unsigned threads) {
    std::vector<SocResult> out(kVariants);
    runner.runForks(kVariants, threads,
                    [&](const ckpt::Snapshot& snap, std::size_t i) {
                      Tl1Soc soc{soc::SocConfig{}};
                      prepare(soc);
                      soc.restore(snap);
                      runVariantPhase(soc, i);
                      out[i] = capture(soc);
                    });
    return out;
  };

  const std::vector<SocResult> sequential = sweep(1);
  const std::vector<SocResult> threaded = sweep(4);
  EXPECT_EQ(threaded, sequential);
}

} // namespace
} // namespace sct
