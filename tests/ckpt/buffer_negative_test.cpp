// Negative paths of the in-memory Snapshot buffer API: every way a
// byte stream can be malformed must land in a CheckpointError with a
// message naming the problem — never silent corruption, never UB. The
// eh intermittent runner restores from these buffers thousands of
// times per sweep, so "garbage in, exception out" is a load-bearing
// contract, exercised here byte-surgically (bad magic, bad format
// version, truncation at every prefix, oversized/undersized section
// length fields, trailing garbage, and registry-level version skew
// through the buffer path).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"

namespace sct {
namespace {

/// A trivial checkpointable with a controllable payload.
struct Blob {
  static constexpr std::uint32_t kCkptVersion = 3;
  std::uint32_t a = 0x11112222;
  std::uint64_t b = 0x3333444455556666ULL;

  void saveState(ckpt::StateWriter& w) const {
    w.u32(a);
    w.u64(b);
  }
  void loadState(ckpt::StateReader& r) {
    a = r.u32();
    b = r.u64();
  }
};

std::vector<std::uint8_t> blobBuffer(Blob& blob) {
  ckpt::CheckpointRegistry reg;
  reg.add("blob", blob);
  return reg.saveAll().saveToBuffer();
}

/// EXPECT_THROW plus a substring check on the message.
template <typename Fn>
void expectRefusal(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected CheckpointError containing '" << needle << "'";
  } catch (const ckpt::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(SnapshotBufferNegative, BadMagicIsRejected) {
  Blob blob;
  std::vector<std::uint8_t> buf = blobBuffer(blob);
  buf[0] ^= 0xFF;
  expectRefusal([&] { ckpt::Snapshot::loadFromBuffer(buf); }, "bad magic");
}

TEST(SnapshotBufferNegative, UnsupportedFormatVersionIsRejected) {
  Blob blob;
  std::vector<std::uint8_t> buf = blobBuffer(blob);
  // The u32 after the 8-byte magic is the format version (LE).
  buf[8] = 0x7F;
  expectRefusal([&] { ckpt::Snapshot::loadFromBuffer(buf); },
                "unsupported checkpoint format version 127");
}

TEST(SnapshotBufferNegative, EveryTruncationPointIsRejected) {
  Blob blob;
  const std::vector<std::uint8_t> buf = blobBuffer(blob);
  // Chopping the stream anywhere short of complete must throw — the
  // parser may not read past the end or accept a partial section.
  for (std::size_t n = 0; n < buf.size(); ++n) {
    SCOPED_TRACE(n);
    const std::vector<std::uint8_t> cut(buf.begin(), buf.begin() + n);
    EXPECT_THROW(ckpt::Snapshot::loadFromBuffer(cut),
                 ckpt::CheckpointError);
  }
  // The full buffer parses (the loop above really covered everything).
  EXPECT_NO_THROW(ckpt::Snapshot::loadFromBuffer(buf));
}

TEST(SnapshotBufferNegative, CorruptedSectionLengthIsRejected) {
  Blob blob;
  std::vector<std::uint8_t> buf = blobBuffer(blob);
  // Locate the payload-length u32: magic(8) + format(4) + count(4) +
  // tag(str = u32 len + 4 chars "blob") + version(4).
  const std::size_t lenPos = 8 + 4 + 4 + (4 + 4) + 4;
  ASSERT_LT(lenPos + 4, buf.size());

  // Oversized: claims more payload bytes than the buffer holds.
  std::vector<std::uint8_t> oversized = buf;
  oversized[lenPos] = 0xFF;
  oversized[lenPos + 1] = 0xFF;
  expectRefusal([&] { ckpt::Snapshot::loadFromBuffer(oversized); },
                "truncated");

  // Undersized: the unclaimed payload tail becomes trailing garbage.
  std::vector<std::uint8_t> undersized = buf;
  undersized[lenPos] -= 1;
  expectRefusal([&] { ckpt::Snapshot::loadFromBuffer(undersized); },
                "trailing bytes");
}

TEST(SnapshotBufferNegative, TrailingGarbageIsRejected) {
  Blob blob;
  std::vector<std::uint8_t> buf = blobBuffer(blob);
  buf.push_back(0x00);
  expectRefusal([&] { ckpt::Snapshot::loadFromBuffer(buf); },
                "trailing bytes");
}

TEST(SnapshotBufferNegative, VersionSkewThroughTheBufferPath) {
  // A snapshot written by a "newer" component layout must be refused
  // by name when adopted through loadFromBuffer + loadAll.
  Blob writer;
  ckpt::CheckpointRegistry newer;
  newer.add("blob", writer, Blob::kCkptVersion + 1);
  const std::vector<std::uint8_t> buf = newer.saveAll().saveToBuffer();

  Blob reader;
  ckpt::CheckpointRegistry current;
  current.add("blob", reader);
  const ckpt::Snapshot snap = ckpt::Snapshot::loadFromBuffer(buf);
  expectRefusal([&] { current.loadAll(snap); }, "'blob' version skew");
}

TEST(SnapshotBufferNegative, MissingSectionAndShortPayloadAreNamed) {
  Blob blob;
  ckpt::CheckpointRegistry reg;
  reg.add("blob", blob);

  // A snapshot without the component's tag.
  ckpt::Snapshot empty;
  expectRefusal([&] { reg.loadAll(empty); },
                "no section for component 'blob'");

  // A section whose payload is one byte short: loadState runs off the
  // end and the reader reports the truncation, not garbage values.
  ckpt::Snapshot snap = reg.saveAll();
  ckpt::Snapshot shortPayload;
  std::vector<std::uint8_t> payload = snap.sections().front().payload;
  ASSERT_FALSE(payload.empty());
  payload.pop_back();
  shortPayload.addSection("blob", Blob::kCkptVersion, payload);
  expectRefusal([&] { reg.loadAll(shortPayload); }, "truncated");

  // A section with surplus payload: the component must consume its
  // bytes exactly, and the surplus is reported per component.
  ckpt::Snapshot longPayload;
  payload = snap.sections().front().payload;
  payload.push_back(0xAB);
  longPayload.addSection("blob", Blob::kCkptVersion, payload);
  expectRefusal([&] { reg.loadAll(longPayload); },
                "left 1 unread payload bytes");
}

} // namespace
} // namespace sct
