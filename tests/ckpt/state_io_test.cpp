// Unit tests for the checkpoint byte layer and the snapshot container:
// StateWriter/StateReader round-trips (bit-exact doubles included), the
// framed on-disk format, and the registry's failure modes — missing
// tags, version skew, leftover payload, truncation — each of which must
// surface as a catchable CheckpointError, never UB.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/state_io.h"

namespace sct::ckpt {
namespace {

TEST(StateIo, ScalarRoundTrip) {
  StateWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.b(true);
  w.b(false);
  w.str("ecbus");
  const std::uint8_t raw[3] = {1, 2, 3};
  w.bytes(raw, sizeof(raw));

  StateReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.str(), "ecbus");
  std::uint8_t out[3] = {};
  r.bytes(out, sizeof(out));
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
  EXPECT_TRUE(r.done());
}

TEST(StateIo, DoublesRoundTripBitExact) {
  // The restore-equivalence suite compares femtojoule accumulators with
  // operator==, so the encoding must preserve the exact bit pattern —
  // including -0.0 (sign distinguishes it from +0.0 only bitwise) and
  // NaN payloads (never equal by value).
  const double values[] = {
      0.0, -0.0, 1.0, -1.0, 0.1, 1e-300, 1e300,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::quiet_NaN(),
  };
  StateWriter w;
  for (const double v : values) w.f64(v);
  StateReader r(w.buffer());
  for (const double v : values) {
    const double back = r.f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(v));
  }
  EXPECT_TRUE(r.done());
}

TEST(StateIo, EncodingIsLittleEndian) {
  StateWriter w;
  w.u32(0x0A0B0C0D);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x0D);
  EXPECT_EQ(w.buffer()[1], 0x0C);
  EXPECT_EQ(w.buffer()[2], 0x0B);
  EXPECT_EQ(w.buffer()[3], 0x0A);
}

TEST(StateIo, TruncatedReadThrows) {
  StateWriter w;
  w.u16(7);
  StateReader r(w.buffer());
  EXPECT_THROW((void)r.u32(), CheckpointError);
  StateReader r2(w.buffer());
  (void)r2.u16();
  EXPECT_TRUE(r2.done());
  EXPECT_THROW((void)r2.u8(), CheckpointError);
}

TEST(StateIo, TruncatedStringThrows) {
  StateWriter w;
  w.u32(100);  // Length prefix promising more bytes than exist.
  w.u8('x');
  StateReader r(w.buffer());
  EXPECT_THROW((void)r.str(), CheckpointError);
}

TEST(Snapshot, SerializeDeserializeRoundTrip) {
  Snapshot snap;
  snap.addSection("clk", 1, {1, 2, 3});
  snap.addSection("bus", 3, {});
  snap.addSection("cpu", 2, {0xFF});

  const std::vector<std::uint8_t> bytes = snap.serialize();
  const Snapshot back = Snapshot::deserialize(bytes);
  ASSERT_EQ(back.sections().size(), 3u);
  const Snapshot::Section* clk = back.find("clk");
  ASSERT_NE(clk, nullptr);
  EXPECT_EQ(clk->version, 1u);
  EXPECT_EQ(clk->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  const Snapshot::Section* bus = back.find("bus");
  ASSERT_NE(bus, nullptr);
  EXPECT_EQ(bus->version, 3u);
  EXPECT_TRUE(bus->payload.empty());
  EXPECT_EQ(back.find("nope"), nullptr);
}

TEST(Snapshot, DuplicateTagRejected) {
  Snapshot snap;
  snap.addSection("clk", 1, {});
  EXPECT_THROW(snap.addSection("clk", 2, {}), CheckpointError);
}

TEST(Snapshot, BadMagicRejected) {
  Snapshot snap;
  snap.addSection("clk", 1, {9});
  std::vector<std::uint8_t> bytes = snap.serialize();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(Snapshot::deserialize(bytes), CheckpointError);
}

TEST(Snapshot, UnsupportedFormatVersionRejected) {
  Snapshot snap;
  snap.addSection("clk", 1, {9});
  std::vector<std::uint8_t> bytes = snap.serialize();
  bytes[sizeof(kMagic)] += 1;  // u32 format version, little-endian.
  try {
    Snapshot::deserialize(bytes);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("format version"),
              std::string::npos);
  }
}

TEST(Snapshot, TrailingBytesRejected) {
  Snapshot snap;
  snap.addSection("clk", 1, {9});
  std::vector<std::uint8_t> bytes = snap.serialize();
  bytes.push_back(0);
  EXPECT_THROW(Snapshot::deserialize(bytes), CheckpointError);
}

TEST(Snapshot, TruncatedFileRejected) {
  Snapshot snap;
  snap.addSection("clk", 1, {1, 2, 3, 4});
  std::vector<std::uint8_t> bytes = snap.serialize();
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW(Snapshot::deserialize(bytes), CheckpointError);
}

TEST(Snapshot, FileRoundTrip) {
  Snapshot snap;
  snap.addSection("clk", 1, {4, 5, 6});
  const std::string path =
      ::testing::TempDir() + "/sct_ckpt_file_roundtrip.sctck";
  snap.saveFile(path);
  const Snapshot back = Snapshot::loadFile(path);
  const Snapshot::Section* s = back.find("clk");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->payload, (std::vector<std::uint8_t>{4, 5, 6}));
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileThrows) {
  EXPECT_THROW(Snapshot::loadFile("/nonexistent/dir/x.sctck"),
               CheckpointError);
}

/// Minimal checkpointable value for registry tests.
struct Counter {
  static constexpr std::uint32_t kCkptVersion = 2;
  std::uint64_t value = 0;
  void saveState(StateWriter& w) const { w.u64(value); }
  void loadState(StateReader& r) { value = r.u64(); }
};

TEST(Registry, SaveAllLoadAllRoundTrip) {
  Counter a{.value = 7};
  Counter b{.value = 9};
  CheckpointRegistry reg;
  reg.add("a", a);
  reg.add("b", b);
  const Snapshot snap = reg.saveAll();

  Counter a2, b2;
  CheckpointRegistry reg2;
  reg2.add("a", a2);
  reg2.add("b", b2);
  reg2.loadAll(snap);
  EXPECT_EQ(a2.value, 7u);
  EXPECT_EQ(b2.value, 9u);
}

TEST(Registry, DuplicateComponentTagRejected) {
  Counter a, b;
  CheckpointRegistry reg;
  reg.add("a", a);
  EXPECT_THROW(reg.add("a", b), CheckpointError);
}

TEST(Registry, MissingSectionRejected) {
  Counter a;
  CheckpointRegistry reg;
  reg.add("a", a);
  const Snapshot snap = reg.saveAll();

  Counter a2, b2;
  CheckpointRegistry reg2;
  reg2.add("a", a2);
  reg2.add("b", b2);
  try {
    reg2.loadAll(snap);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("'b'"), std::string::npos);
  }
}

TEST(Registry, VersionSkewRejected) {
  Counter a;
  CheckpointRegistry reg;
  reg.add("a", a);  // Saved as kCkptVersion = 2.
  const Snapshot snap = reg.saveAll();

  Counter a2;
  CheckpointRegistry reg2;
  reg2.add("a", a2, /*version=*/3);  // This "build" expects v3.
  try {
    reg2.loadAll(snap);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version skew"), std::string::npos) << msg;
    EXPECT_NE(msg.find("v2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("v3"), std::string::npos) << msg;
  }
}

/// Reads one byte fewer than Counter writes: loadAll must flag the
/// leftover payload instead of silently accepting a layout drift.
struct ShortReader {
  static constexpr std::uint32_t kCkptVersion = 2;
  void saveState(StateWriter& w) const { w.u64(0); }
  void loadState(StateReader& r) { (void)r.u32(); }
};

TEST(Registry, LeftoverPayloadRejected) {
  Counter a{.value = 1};
  CheckpointRegistry reg;
  reg.add("a", a);
  const Snapshot snap = reg.saveAll();

  ShortReader s;
  CheckpointRegistry reg2;
  reg2.add("a", s);
  try {
    reg2.loadAll(snap);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("unread payload"),
              std::string::npos);
  }
}

} // namespace
} // namespace sct::ckpt
