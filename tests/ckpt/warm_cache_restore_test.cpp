// Checkpoint restore into a core with a warm decoded-block cache.
//
// The decoded-block cache is derived state: it is never serialized
// (MipsCore's section format predates it and must stay byte-stable),
// so loadState has to flush it. This test makes a missing flush
// actually observable: the restore target first runs a DIFFERENT
// program at the same addresses, so any decoded block surviving the
// restore would replay the wrong instructions. A mid-run snapshot
// (quiesce point found by stepping, like a real harness) is restored
// into that warm core, into a fresh core, and into a fresh core with
// the block cache disabled — all three continuations must be
// bit-identical to the uninterrupted parent run.
#include <gtest/gtest.h>

#include "../iss/iss_testutil.h"
#include "ckpt/checkpoint.h"
#include "soc/assembler.h"

namespace sct::soc {
namespace {

using isstest::Soc;
using isstest::configFor;
using isstest::expectIdenticalOutcome;

// Program A — the checkpointed workload: a long ALU loop (quiesced at
// almost every cycle once the icache is warm) with a result store.
constexpr const char* kProgramA = R"(
      li    $s0, 0x08000000
      li    $s1, 3000
      addiu $t0, $zero, 0
  loop:
      addu  $t0, $t0, $s1
      xor   $t0, $t0, $s1
      sll   $t1, $t0, 2
      or    $t0, $t0, $t1
      addiu $s1, $s1, -1
      bne   $s1, $zero, loop
      sw    $t0, 0($s0)
      break
)";

// Program B — different instructions at the same PCs, used only to
// warm the restore target's decoded blocks with wrong content.
constexpr const char* kProgramB = R"(
      li    $s0, 0x08000000
      li    $s1, 900
      addiu $t0, $zero, 1
  loop:
      ori   $t0, $t0, 0x15
      srl   $t2, $t0, 1
      addu  $t0, $t0, $t2
      subu  $t0, $t0, $s1
      addiu $s1, $s1, -1
      bne   $s1, $zero, loop
      sw    $t0, 4($s0)
      break
)";

TEST(WarmCacheRestore, MidRunSnapshotRestoresIdenticallyIntoWarmCore) {
  const AssembledProgram progA = assemble(kProgramA, memmap::kRomBase);
  const AssembledProgram progB = assemble(kProgramB, memmap::kRomBase);

  // Parent: run into the loop, snapshot at the first quiesce point
  // after warm-up, then continue uninterrupted to completion.
  Soc parent{configFor(true)};
  parent.loadProgram(progA);
  parent.clock().runCycles(400);
  ASSERT_FALSE(parent.cpu().halted());
  ASSERT_GT(parent.cpu().blockCacheStats().hits, 0u);  // Cache is warm.
  ckpt::Snapshot snap;
  for (int attempts = 0;; ++attempts) {
    ASSERT_LT(attempts, 64) << "no quiesce point found";
    try {
      snap = parent.checkpoint();
      break;
    } catch (const ckpt::CheckpointError&) {
      parent.clock().runCycles(1);
    }
  }
  ASSERT_TRUE(parent.run(2'000'000));
  ASSERT_FALSE(parent.cpu().faulted());

  // Warm target: fill its decoded blocks by running program B at the
  // same addresses, then restore the program-A snapshot into it. A
  // block surviving the restore would execute B's instructions.
  Soc warm{configFor(true)};
  warm.loadProgram(progB);
  ASSERT_TRUE(warm.run(2'000'000));
  const std::uint64_t buildsBefore = warm.cpu().blockCacheStats().builds;
  ASSERT_GT(buildsBefore, 0u);
  warm.restore(snap);
  ASSERT_FALSE(warm.cpu().halted());  // Snapshot was mid-run.
  ASSERT_TRUE(warm.run(2'000'000));
  expectIdenticalOutcome(warm, parent);
  // Flush evidence: the continuation had to rebuild its blocks.
  EXPECT_GT(warm.cpu().blockCacheStats().builds, buildsBefore);

  // Fresh target, cache enabled.
  Soc fresh{configFor(true)};
  fresh.restore(snap);
  ASSERT_TRUE(fresh.run(2'000'000));
  expectIdenticalOutcome(fresh, parent);

  // Fresh target, cache disabled: the restored continuation is also
  // equivalent across dispatch strategies.
  Soc plain{configFor(false)};
  plain.restore(snap);
  ASSERT_TRUE(plain.run(2'000'000));
  expectIdenticalOutcome(plain, parent);
  EXPECT_EQ(plain.cpu().blockCacheStats().hits, 0u);
}

} // namespace
} // namespace sct::soc
