#!/bin/sh
# Run the Table 3 simulation-performance benchmark and record the
# result as JSON for regression tracking.
#
#   scripts/bench_table3.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output-json = BENCH_table3.json (repo
# root). The google-benchmark `items_per_second` counter is
# transactions per second — the paper's kT/s metric. Compare the
# TL1_WithEstimation entry across commits to track hot-path
# performance.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_table3.json"}
bench="$build_dir/bench/table3_simperf"

if [ ! -x "$bench" ]; then
  echo "error: $bench not built — run: cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" --target table3_simperf" >&2
  exit 1
fi

# The paper-style factor table goes to stdout for the console; the
# machine-readable run lands in the JSON file.
"$bench" --benchmark_format=json --benchmark_out="$out" \
         --benchmark_out_format=json
echo "wrote $out"
