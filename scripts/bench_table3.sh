#!/bin/sh
# Run the Table 3 simulation-performance benchmark and record the
# result as JSON for regression tracking.
#
#   scripts/bench_table3.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output-json = BENCH_table3.json (repo
# root). The google-benchmark `items_per_second` counter is
# transactions per second — the paper's kT/s metric. Compare the
# TL1_WithEstimation entry across commits to track hot-path
# performance; the appended `speedup` object records the TL2-over-TL1
# throughput ratios (the transaction layer must be the fast layer).
#
# Extra benchmark flags pass through via SCT_BENCH_ARGS, e.g.
#   SCT_BENCH_ARGS=--benchmark_repetitions=5 scripts/bench_table3.sh
# Absolute numbers drift with host load; for an A/B comparison run two
# binaries back to back with repetitions and compare medians.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_table3.json"}
bench="$build_dir/bench/table3_simperf"

if [ ! -x "$bench" ]; then
  echo "error: $bench not built — run: cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" --target table3_simperf" >&2
  exit 1
fi

# The paper-style factor table goes to stdout for the console; the
# machine-readable run lands in the JSON file.
# shellcheck disable=SC2086  # SCT_BENCH_ARGS is intentionally split.
"$bench" --benchmark_format=json --benchmark_out="$out" \
         --benchmark_out_format=json ${SCT_BENCH_ARGS:-}

# Throughput numbers from an unoptimized binary are not regression
# data (the recorded baseline was once polluted by a debug capture).
# The guard keys on the JSON the run just produced: the bench binary
# self-reports its compile-time build type as the `sct_build_type`
# context key (see bench_util.h), so a stale CMake cache or a binary
# copied between trees cannot fool it. SCT_BENCH_ALLOW_NONRELEASE=1
# overrides for local experiments, loudly — the off-type tag stays in
# the JSON either way.
build_type=$(sed -n 's/.*"sct_build_type": *"\([a-z]*\)".*/\1/p' "$out" \
             | head -n 1)
[ -n "${build_type:-}" ] || build_type=unknown
if [ "$build_type" != "release" ]; then
  if [ "${SCT_BENCH_ALLOW_NONRELEASE:-0}" = "1" ]; then
    echo "WARNING: the bench binary reports sct_build_type='$build_type' —" \
         "numbers are not comparable to Release baselines (JSON tagged" \
         "accordingly)" >&2
  else
    rm -f "$out"
    echo "error: the bench binary reports sct_build_type='$build_type';" \
         "benchmark numbers require an optimized build (use cmake --preset" \
         "release, or set SCT_BENCH_ALLOW_NONRELEASE=1 to record anyway)" >&2
    exit 1
  fi
fi

# Identify the host the numbers came from — throughput figures are
# meaningless across machines without this.
cpu_model=$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo \
            2>/dev/null || true)
[ -n "${cpu_model:-}" ] || cpu_model=$(uname -m)
cxx=$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "$build_dir/CMakeCache.txt" \
      2>/dev/null | head -n 1)
if [ -n "${cxx:-}" ] && [ -x "$cxx" ]; then
  compiler=$("$cxx" --version 2>/dev/null | head -n 1)
else
  compiler=unknown
fi
git_sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo none)
run_date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Append the TL2/TL1 speedup ratios and the host context in
# machine-readable form (median items_per_second over repetition
# entries, aggregates excluded).
if command -v jq >/dev/null 2>&1; then
  tmp="$out.tmp"
  jq --arg cpu "$cpu_model" --arg compiler "$compiler" \
     --arg git_sha "$git_sha" --arg date "$run_date" \
     --arg build_type "$build_type" '
    def rate(n):
      [.benchmarks[]
       | select(.name == n and (.run_type // "iteration") != "aggregate")
       | .items_per_second]
      | sort | .[(length / 2) | floor];
    . + {speedup: {
      tl2_over_tl1_with_estimation:
        (rate("TL2_WithEstimation") / rate("TL1_WithEstimation")),
      tl2_over_tl1_without_estimation:
        (rate("TL2_WithoutEstimation") / rate("TL1_WithoutEstimation")),
      hybrid_over_tl1_spa:
        (rate("Hybrid_SpaDpa") / rate("TL1_SpaDpa")),
      fork_over_boot_sweep:
        (rate("Fork_Sweep") / rate("Boot_Sweep")),
      decoded_block_over_seed:
        (rate("ISS_DecodedBlocks") / rate("ISS_DecodeOnFetch"))
    }}
    + {host_context: {
        cpu_model: $cpu, compiler: $compiler,
        git_sha: $git_sha, date: $date, build_type: $build_type
    }}' "$out" > "$tmp" && mv "$tmp" "$out"
else
  echo "warning: jq not found — speedup/host_context not appended" >&2
fi
echo "wrote $out"
