#!/bin/sh
# Run the bus-encoding sweep benchmark and record the result as JSON
# for regression tracking.
#
#   scripts/bench_enc.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output-json = BENCH_enc.json (repo
# root). The google-benchmark `items_per_second` counter is codec x
# workload variants per second. The appended `speedup` object records
# the sweep runner's headline ratios:
#   fork_sweep_over_boot_sweep — what amortizing the boot prelude via
#     one ckpt::ForkRunner snapshot buys over booting a platform per
#     variant,
#   fork_threads_{2,4}_over_1 — sweep worker scaling, which can only
#     exceed ~1.0 when the host has free cores; read it against
#     host_context.num_cpus (a single-core container will honestly
#     report ~1.0 and that is not a regression).
#
# Extra benchmark flags pass through via SCT_BENCH_ARGS, e.g.
#   SCT_BENCH_ARGS=--benchmark_repetitions=5 scripts/bench_enc.sh
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_enc.json"}
bench="$build_dir/bench/enc_sweep_bench"

if [ ! -x "$bench" ]; then
  echo "error: $bench not built — run: cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" --target enc_sweep_bench (requires SCT_ENC=ON)" >&2
  exit 1
fi

# shellcheck disable=SC2086  # SCT_BENCH_ARGS is intentionally split.
"$bench" --benchmark_format=json --benchmark_out="$out" \
         --benchmark_out_format=json ${SCT_BENCH_ARGS:-}

# Same guard as bench_eh.sh: the binary self-reports its build type
# into the JSON context (`sct_build_type`), and only an optimized
# binary's numbers are recordable regression data.
build_type=$(sed -n 's/.*"sct_build_type": *"\([a-z]*\)".*/\1/p' "$out" \
             | head -n 1)
[ -n "${build_type:-}" ] || build_type=unknown
if [ "$build_type" != "release" ]; then
  if [ "${SCT_BENCH_ALLOW_NONRELEASE:-0}" = "1" ]; then
    echo "WARNING: the bench binary reports sct_build_type='$build_type' —" \
         "numbers are not comparable to Release baselines (JSON tagged" \
         "accordingly)" >&2
  else
    rm -f "$out"
    echo "error: the bench binary reports sct_build_type='$build_type';" \
         "benchmark numbers require an optimized build (use cmake --preset" \
         "release, or set SCT_BENCH_ALLOW_NONRELEASE=1 to record anyway)" >&2
    exit 1
  fi
fi

# Identify the host the numbers came from — sweep rates are
# meaningless across machines without this, and the thread-scaling
# ratios are meaningless without the core count.
cpu_model=$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo \
            2>/dev/null || true)
[ -n "${cpu_model:-}" ] || cpu_model=$(uname -m)
num_cpus=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)
cxx=$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "$build_dir/CMakeCache.txt" \
      2>/dev/null | head -n 1)
if [ -n "${cxx:-}" ] && [ -x "$cxx" ]; then
  compiler=$("$cxx" --version 2>/dev/null | head -n 1)
else
  compiler=unknown
fi
git_sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo none)
run_date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

if command -v jq >/dev/null 2>&1; then
  tmp="$out.tmp"
  jq --arg cpu "$cpu_model" --arg compiler "$compiler" \
     --arg git_sha "$git_sha" --arg date "$run_date" \
     --arg build_type "$build_type" --argjson num_cpus "$num_cpus" '
    def rate(n):
      [.benchmarks[]
       | select(.name == n and (.run_type // "iteration") != "aggregate")
       | .items_per_second]
      | sort | .[(length / 2) | floor];
    . + {speedup: {
      fork_sweep_over_boot_sweep:
        (rate("Enc_ForkSweep/threads:1/real_time") / rate("Enc_BootSweep")),
      fork_threads_2_over_1:
        (rate("Enc_ForkSweep/threads:2/real_time")
         / rate("Enc_ForkSweep/threads:1/real_time")),
      fork_threads_4_over_1:
        (rate("Enc_ForkSweep/threads:4/real_time")
         / rate("Enc_ForkSweep/threads:1/real_time"))
    }}
    + {host_context: {
        cpu_model: $cpu, num_cpus: $num_cpus, compiler: $compiler,
        git_sha: $git_sha, date: $date, build_type: $build_type
    }}' "$out" > "$tmp" && mv "$tmp" "$out"
else
  echo "warning: jq not found — speedup/host_context not appended" >&2
fi
echo "wrote $out"
