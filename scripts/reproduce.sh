#!/usr/bin/env sh
# One-shot reproduction: build, test, regenerate every table/figure.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
