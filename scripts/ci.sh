#!/bin/sh
# Full CI gate, runnable locally and on any runner with cmake + ninja:
#
#   scripts/ci.sh
#
# Pass 1 — the shipping configuration: Release (LTO) configure with
# warnings-as-errors, build everything (libraries, tests, benches), run
# the whole test suite, then smoke-run the Table 3 bench (tiny
# workload, minimal timing — proves the bench binary and its JSON
# output stay alive, measures nothing).
# Pass 2 — the same suite under AddressSanitizer + UndefinedBehavior-
# Sanitizer (the SCT_SANITIZE option; it disables LTO itself).
#
# Both passes use the presets in CMakePresets.json, so what CI checks
# is exactly what `cmake --preset release` gives a developer.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

run() {
  echo "==> $*"
  "$@"
}

for preset in release asan-ubsan; do
  run cmake --preset "$preset" -DSCT_WERROR=ON
  run cmake --build --preset "$preset" --parallel "$jobs"
  run ctest --preset "$preset" --parallel "$jobs"
  # The adaptive-fidelity equivalence suite is the gate for the hybrid
  # TL1/TL2 bus: run the `hier` label explicitly so a filter or preset
  # change can never silently drop it from the pass.
  run ctest --preset "$preset" -L hier --parallel "$jobs"
  # Same for the checkpoint/restore gate: restore-equivalence is what
  # makes fork-based exploration trustworthy.
  run ctest --preset "$preset" -L ckpt --parallel "$jobs"
  # And for the ISS decoded-block dispatch loop: the `iss` label runs
  # the block-cache equivalence and self-modifying-code suites, under
  # sanitizers in pass 2.
  run ctest --preset "$preset" -L iss --parallel "$jobs"
  # And for the card-farm serving subsystem: the `serve` label covers
  # the NDJSON protocol, golden-snapshot recycle bit-identity, the
  # threads=1 vs threads=N determinism headline, and the SIGTERM
  # mid-batch drain against the real daemon binary — the work-stealing
  # pool teardown must be sanitizer-clean in pass 2.
  run ctest --preset "$preset" -L serve --parallel "$jobs"
  # And for the intermittent-power subsystem: the `eh` label covers the
  # supply integrator, brownout detector, backup schemes, and the
  # threads=1 vs threads=N sweep bit-identity that makes backup-scheme
  # exploration trustworthy.
  run ctest --preset "$preset" -L eh --parallel "$jobs"
  # And for the side-channel subsystem: the `sca` label covers the
  # corpus format (golden bytes + negative paths), the coprocessor leak
  # model, and the attack headlines — unprotected key-byte recovery,
  # masked non-recovery, and the corpus/ranking bit-identity across
  # threads and chunk sizes.
  run ctest --preset "$preset" -L sca --parallel "$jobs"
  # And for the bus-encoding subsystem: the `enc` label covers the codec
  # round-trip algebra, the no-codec/identity byte-equivalence pin that
  # protects every pre-codec golden output, and the codec x workload
  # sweep's threads=1 vs threads=N bit-identity.
  run ctest --preset "$preset" -L enc --parallel "$jobs"
done

echo "==> bench smoke (tiny workload)"
run env SCT_BENCH_TINY=1 ./build/bench/table3_simperf \
  --benchmark_min_time=0.01
run env SCT_BENCH_TINY=1 ./build/bench/serve_throughput \
  --benchmark_min_time=0.01
run env SCT_BENCH_TINY=1 ./build/bench/eh_sweep_bench \
  --benchmark_min_time=0.01
run env SCT_BENCH_TINY=1 ./build/bench/sca_bench \
  --benchmark_min_time=0.01
run env SCT_BENCH_TINY=1 ./build/bench/enc_sweep_bench \
  --benchmark_min_time=0.01

echo "CI: both passes green"
