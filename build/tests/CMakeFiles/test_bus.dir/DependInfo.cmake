
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bus/decoder_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/decoder_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/decoder_test.cpp.o.d"
  "/root/repo/tests/bus/ec_signals_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/ec_signals_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/ec_signals_test.cpp.o.d"
  "/root/repo/tests/bus/ec_types_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/ec_types_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/ec_types_test.cpp.o.d"
  "/root/repo/tests/bus/fault_injection_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/fault_injection_test.cpp.o.d"
  "/root/repo/tests/bus/memory_slave_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/memory_slave_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/memory_slave_test.cpp.o.d"
  "/root/repo/tests/bus/protocol_sweep_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/protocol_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/protocol_sweep_test.cpp.o.d"
  "/root/repo/tests/bus/register_slave_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/register_slave_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/register_slave_test.cpp.o.d"
  "/root/repo/tests/bus/tl1_bus_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/tl1_bus_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/tl1_bus_test.cpp.o.d"
  "/root/repo/tests/bus/tl2_bridge_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/tl2_bridge_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/tl2_bridge_test.cpp.o.d"
  "/root/repo/tests/bus/tl2_bus_test.cpp" "tests/CMakeFiles/test_bus.dir/bus/tl2_bus_test.cpp.o" "gcc" "tests/CMakeFiles/test_bus.dir/bus/tl2_bus_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/sct_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sct_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
