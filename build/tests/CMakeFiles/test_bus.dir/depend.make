# Empty dependencies file for test_bus.
# This may be replaced when dependencies are built.
