file(REMOVE_RECURSE
  "CMakeFiles/test_bus.dir/bus/decoder_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/decoder_test.cpp.o.d"
  "CMakeFiles/test_bus.dir/bus/ec_signals_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/ec_signals_test.cpp.o.d"
  "CMakeFiles/test_bus.dir/bus/ec_types_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/ec_types_test.cpp.o.d"
  "CMakeFiles/test_bus.dir/bus/fault_injection_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/fault_injection_test.cpp.o.d"
  "CMakeFiles/test_bus.dir/bus/memory_slave_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/memory_slave_test.cpp.o.d"
  "CMakeFiles/test_bus.dir/bus/protocol_sweep_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/protocol_sweep_test.cpp.o.d"
  "CMakeFiles/test_bus.dir/bus/register_slave_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/register_slave_test.cpp.o.d"
  "CMakeFiles/test_bus.dir/bus/tl1_bus_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/tl1_bus_test.cpp.o.d"
  "CMakeFiles/test_bus.dir/bus/tl2_bridge_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/tl2_bridge_test.cpp.o.d"
  "CMakeFiles/test_bus.dir/bus/tl2_bus_test.cpp.o"
  "CMakeFiles/test_bus.dir/bus/tl2_bus_test.cpp.o.d"
  "test_bus"
  "test_bus.pdb"
  "test_bus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
