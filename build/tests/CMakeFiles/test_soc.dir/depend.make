# Empty dependencies file for test_soc.
# This may be replaced when dependencies are built.
