file(REMOVE_RECURSE
  "CMakeFiles/test_soc.dir/soc/apdu_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/apdu_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/assembler_directives_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/assembler_directives_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/assembler_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/assembler_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/cache_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/cache_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/cpu_random_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/cpu_random_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/cpu_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/cpu_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/interrupt_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/interrupt_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/isa_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/isa_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/peripherals_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/peripherals_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/smartcard_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/smartcard_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/sw_crypto_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/sw_crypto_test.cpp.o.d"
  "test_soc"
  "test_soc.pdb"
  "test_soc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
