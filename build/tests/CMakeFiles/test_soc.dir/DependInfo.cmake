
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/soc/apdu_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/apdu_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/apdu_test.cpp.o.d"
  "/root/repo/tests/soc/assembler_directives_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/assembler_directives_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/assembler_directives_test.cpp.o.d"
  "/root/repo/tests/soc/assembler_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/assembler_test.cpp.o.d"
  "/root/repo/tests/soc/cache_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/cache_test.cpp.o.d"
  "/root/repo/tests/soc/cpu_random_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/cpu_random_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/cpu_random_test.cpp.o.d"
  "/root/repo/tests/soc/cpu_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/cpu_test.cpp.o.d"
  "/root/repo/tests/soc/interrupt_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/interrupt_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/interrupt_test.cpp.o.d"
  "/root/repo/tests/soc/isa_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/isa_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/isa_test.cpp.o.d"
  "/root/repo/tests/soc/peripherals_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/peripherals_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/peripherals_test.cpp.o.d"
  "/root/repo/tests/soc/smartcard_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/smartcard_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/smartcard_test.cpp.o.d"
  "/root/repo/tests/soc/sw_crypto_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/sw_crypto_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/sw_crypto_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sct_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/sct_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sct_power.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sct_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
