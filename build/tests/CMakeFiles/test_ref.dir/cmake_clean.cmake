file(REMOVE_RECURSE
  "CMakeFiles/test_ref.dir/ref/energy_test.cpp.o"
  "CMakeFiles/test_ref.dir/ref/energy_test.cpp.o.d"
  "CMakeFiles/test_ref.dir/ref/gl_bus_test.cpp.o"
  "CMakeFiles/test_ref.dir/ref/gl_bus_test.cpp.o.d"
  "CMakeFiles/test_ref.dir/ref/multi_slave_test.cpp.o"
  "CMakeFiles/test_ref.dir/ref/multi_slave_test.cpp.o.d"
  "CMakeFiles/test_ref.dir/ref/parasitics_test.cpp.o"
  "CMakeFiles/test_ref.dir/ref/parasitics_test.cpp.o.d"
  "test_ref"
  "test_ref.pdb"
  "test_ref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
