# Empty compiler generated dependencies file for test_ref.
# This may be replaced when dependencies are built.
