file(REMOVE_RECURSE
  "CMakeFiles/test_power.dir/power/budget_test.cpp.o"
  "CMakeFiles/test_power.dir/power/budget_test.cpp.o.d"
  "CMakeFiles/test_power.dir/power/characterizer_test.cpp.o"
  "CMakeFiles/test_power.dir/power/characterizer_test.cpp.o.d"
  "CMakeFiles/test_power.dir/power/coeff_table_test.cpp.o"
  "CMakeFiles/test_power.dir/power/coeff_table_test.cpp.o.d"
  "CMakeFiles/test_power.dir/power/component_models_test.cpp.o"
  "CMakeFiles/test_power.dir/power/component_models_test.cpp.o.d"
  "CMakeFiles/test_power.dir/power/profile_test.cpp.o"
  "CMakeFiles/test_power.dir/power/profile_test.cpp.o.d"
  "CMakeFiles/test_power.dir/power/tl1_power_model_test.cpp.o"
  "CMakeFiles/test_power.dir/power/tl1_power_model_test.cpp.o.d"
  "CMakeFiles/test_power.dir/power/tl2_power_model_test.cpp.o"
  "CMakeFiles/test_power.dir/power/tl2_power_model_test.cpp.o.d"
  "test_power"
  "test_power.pdb"
  "test_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
