
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/power/budget_test.cpp" "tests/CMakeFiles/test_power.dir/power/budget_test.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/budget_test.cpp.o.d"
  "/root/repo/tests/power/characterizer_test.cpp" "tests/CMakeFiles/test_power.dir/power/characterizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/characterizer_test.cpp.o.d"
  "/root/repo/tests/power/coeff_table_test.cpp" "tests/CMakeFiles/test_power.dir/power/coeff_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/coeff_table_test.cpp.o.d"
  "/root/repo/tests/power/component_models_test.cpp" "tests/CMakeFiles/test_power.dir/power/component_models_test.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/component_models_test.cpp.o.d"
  "/root/repo/tests/power/profile_test.cpp" "tests/CMakeFiles/test_power.dir/power/profile_test.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/profile_test.cpp.o.d"
  "/root/repo/tests/power/tl1_power_model_test.cpp" "tests/CMakeFiles/test_power.dir/power/tl1_power_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/tl1_power_model_test.cpp.o.d"
  "/root/repo/tests/power/tl2_power_model_test.cpp" "tests/CMakeFiles/test_power.dir/power/tl2_power_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/tl2_power_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sct_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/sct_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sct_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
