# Empty dependencies file for test_jcvm.
# This may be replaced when dependencies are built.
