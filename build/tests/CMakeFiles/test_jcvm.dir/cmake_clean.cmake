file(REMOVE_RECURSE
  "CMakeFiles/test_jcvm.dir/jcvm/bytecode_profiler_test.cpp.o"
  "CMakeFiles/test_jcvm.dir/jcvm/bytecode_profiler_test.cpp.o.d"
  "CMakeFiles/test_jcvm.dir/jcvm/bytecode_test.cpp.o"
  "CMakeFiles/test_jcvm.dir/jcvm/bytecode_test.cpp.o.d"
  "CMakeFiles/test_jcvm.dir/jcvm/exploration_errors_test.cpp.o"
  "CMakeFiles/test_jcvm.dir/jcvm/exploration_errors_test.cpp.o.d"
  "CMakeFiles/test_jcvm.dir/jcvm/hw_stack_test.cpp.o"
  "CMakeFiles/test_jcvm.dir/jcvm/hw_stack_test.cpp.o.d"
  "CMakeFiles/test_jcvm.dir/jcvm/interpreter_test.cpp.o"
  "CMakeFiles/test_jcvm.dir/jcvm/interpreter_test.cpp.o.d"
  "CMakeFiles/test_jcvm.dir/jcvm/memory_manager_test.cpp.o"
  "CMakeFiles/test_jcvm.dir/jcvm/memory_manager_test.cpp.o.d"
  "CMakeFiles/test_jcvm.dir/jcvm/refinement_test.cpp.o"
  "CMakeFiles/test_jcvm.dir/jcvm/refinement_test.cpp.o.d"
  "test_jcvm"
  "test_jcvm.pdb"
  "test_jcvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jcvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
