
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/clock_reentrancy_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/clock_reentrancy_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/clock_reentrancy_test.cpp.o.d"
  "/root/repo/tests/sim/clock_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/clock_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/clock_test.cpp.o.d"
  "/root/repo/tests/sim/kernel_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/kernel_test.cpp.o.d"
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sim/time_module_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/time_module_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/time_module_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
