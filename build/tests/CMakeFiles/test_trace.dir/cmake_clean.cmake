file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/bus_trace_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/bus_trace_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/compress_gaps_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/compress_gaps_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/file_io_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/file_io_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/recorder_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/recorder_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/replay_master_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/replay_master_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/report_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/report_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/vcd_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/vcd_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/workloads_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/workloads_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
