
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/bus_trace_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/bus_trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/bus_trace_test.cpp.o.d"
  "/root/repo/tests/trace/compress_gaps_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/compress_gaps_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/compress_gaps_test.cpp.o.d"
  "/root/repo/tests/trace/file_io_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/file_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/file_io_test.cpp.o.d"
  "/root/repo/tests/trace/recorder_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/recorder_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/recorder_test.cpp.o.d"
  "/root/repo/tests/trace/replay_master_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/replay_master_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/replay_master_test.cpp.o.d"
  "/root/repo/tests/trace/report_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/report_test.cpp.o.d"
  "/root/repo/tests/trace/vcd_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/vcd_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/vcd_test.cpp.o.d"
  "/root/repo/tests/trace/workloads_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/sct_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sct_power.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sct_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
