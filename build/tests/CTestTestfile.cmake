# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_ref[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_soc[1]_include.cmake")
include("/root/repo/build/tests/test_jcvm[1]_include.cmake")
