# Empty dependencies file for sec43_exploration.
# This may be replaced when dependencies are built.
