file(REMOVE_RECURSE
  "CMakeFiles/sec43_exploration.dir/bench/sec43_exploration.cpp.o"
  "CMakeFiles/sec43_exploration.dir/bench/sec43_exploration.cpp.o.d"
  "bench/sec43_exploration"
  "bench/sec43_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
