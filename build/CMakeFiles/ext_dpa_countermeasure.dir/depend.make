# Empty dependencies file for ext_dpa_countermeasure.
# This may be replaced when dependencies are built.
