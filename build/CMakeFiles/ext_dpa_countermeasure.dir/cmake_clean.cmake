file(REMOVE_RECURSE
  "CMakeFiles/ext_dpa_countermeasure.dir/bench/ext_dpa_countermeasure.cpp.o"
  "CMakeFiles/ext_dpa_countermeasure.dir/bench/ext_dpa_countermeasure.cpp.o.d"
  "bench/ext_dpa_countermeasure"
  "bench/ext_dpa_countermeasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dpa_countermeasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
