# Empty compiler generated dependencies file for ablation_buscoding.
# This may be replaced when dependencies are built.
