file(REMOVE_RECURSE
  "CMakeFiles/ablation_buscoding.dir/bench/ablation_buscoding.cpp.o"
  "CMakeFiles/ablation_buscoding.dir/bench/ablation_buscoding.cpp.o.d"
  "bench/ablation_buscoding"
  "bench/ablation_buscoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buscoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
