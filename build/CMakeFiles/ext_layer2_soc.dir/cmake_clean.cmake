file(REMOVE_RECURSE
  "CMakeFiles/ext_layer2_soc.dir/bench/ext_layer2_soc.cpp.o"
  "CMakeFiles/ext_layer2_soc.dir/bench/ext_layer2_soc.cpp.o.d"
  "bench/ext_layer2_soc"
  "bench/ext_layer2_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_layer2_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
