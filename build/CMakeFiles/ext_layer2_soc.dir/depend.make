# Empty dependencies file for ext_layer2_soc.
# This may be replaced when dependencies are built.
