# Empty compiler generated dependencies file for ablation_sw_vs_hw.
# This may be replaced when dependencies are built.
