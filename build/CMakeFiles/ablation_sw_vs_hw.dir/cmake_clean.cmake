file(REMOVE_RECURSE
  "CMakeFiles/ablation_sw_vs_hw.dir/bench/ablation_sw_vs_hw.cpp.o"
  "CMakeFiles/ablation_sw_vs_hw.dir/bench/ablation_sw_vs_hw.cpp.o.d"
  "bench/ablation_sw_vs_hw"
  "bench/ablation_sw_vs_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sw_vs_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
