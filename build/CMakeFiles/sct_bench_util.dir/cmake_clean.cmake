file(REMOVE_RECURSE
  "CMakeFiles/sct_bench_util.dir/bench/bench_util.cpp.o"
  "CMakeFiles/sct_bench_util.dir/bench/bench_util.cpp.o.d"
  "libsct_bench_util.a"
  "libsct_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
