# Empty compiler generated dependencies file for sct_bench_util.
# This may be replaced when dependencies are built.
