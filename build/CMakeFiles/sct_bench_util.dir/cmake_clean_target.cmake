file(REMOVE_RECURSE
  "libsct_bench_util.a"
)
