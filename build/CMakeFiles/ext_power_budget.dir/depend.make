# Empty dependencies file for ext_power_budget.
# This may be replaced when dependencies are built.
