file(REMOVE_RECURSE
  "CMakeFiles/ext_power_budget.dir/bench/ext_power_budget.cpp.o"
  "CMakeFiles/ext_power_budget.dir/bench/ext_power_budget.cpp.o.d"
  "bench/ext_power_budget"
  "bench/ext_power_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_power_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
