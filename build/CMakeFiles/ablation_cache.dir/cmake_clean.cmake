file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache.dir/bench/ablation_cache.cpp.o"
  "CMakeFiles/ablation_cache.dir/bench/ablation_cache.cpp.o.d"
  "bench/ablation_cache"
  "bench/ablation_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
