file(REMOVE_RECURSE
  "CMakeFiles/fig6_sampling.dir/bench/fig6_sampling.cpp.o"
  "CMakeFiles/fig6_sampling.dir/bench/fig6_sampling.cpp.o.d"
  "bench/fig6_sampling"
  "bench/fig6_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
