# Empty dependencies file for fig6_sampling.
# This may be replaced when dependencies are built.
