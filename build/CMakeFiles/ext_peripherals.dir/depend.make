# Empty dependencies file for ext_peripherals.
# This may be replaced when dependencies are built.
