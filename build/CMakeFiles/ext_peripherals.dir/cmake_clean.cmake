file(REMOVE_RECURSE
  "CMakeFiles/ext_peripherals.dir/bench/ext_peripherals.cpp.o"
  "CMakeFiles/ext_peripherals.dir/bench/ext_peripherals.cpp.o.d"
  "bench/ext_peripherals"
  "bench/ext_peripherals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_peripherals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
