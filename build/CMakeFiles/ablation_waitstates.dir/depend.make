# Empty dependencies file for ablation_waitstates.
# This may be replaced when dependencies are built.
