file(REMOVE_RECURSE
  "CMakeFiles/ablation_waitstates.dir/bench/ablation_waitstates.cpp.o"
  "CMakeFiles/ablation_waitstates.dir/bench/ablation_waitstates.cpp.o.d"
  "bench/ablation_waitstates"
  "bench/ablation_waitstates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_waitstates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
