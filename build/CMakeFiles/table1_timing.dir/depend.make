# Empty dependencies file for table1_timing.
# This may be replaced when dependencies are built.
