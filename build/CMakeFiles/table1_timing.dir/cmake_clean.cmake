file(REMOVE_RECURSE
  "CMakeFiles/table1_timing.dir/bench/table1_timing.cpp.o"
  "CMakeFiles/table1_timing.dir/bench/table1_timing.cpp.o.d"
  "bench/table1_timing"
  "bench/table1_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
