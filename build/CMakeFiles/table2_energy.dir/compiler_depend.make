# Empty compiler generated dependencies file for table2_energy.
# This may be replaced when dependencies are built.
