file(REMOVE_RECURSE
  "CMakeFiles/table2_energy.dir/bench/table2_energy.cpp.o"
  "CMakeFiles/table2_energy.dir/bench/table2_energy.cpp.o.d"
  "bench/table2_energy"
  "bench/table2_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
