file(REMOVE_RECURSE
  "CMakeFiles/table3_simperf.dir/bench/table3_simperf.cpp.o"
  "CMakeFiles/table3_simperf.dir/bench/table3_simperf.cpp.o.d"
  "bench/table3_simperf"
  "bench/table3_simperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_simperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
