
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_simperf.cpp" "CMakeFiles/table3_simperf.dir/bench/table3_simperf.cpp.o" "gcc" "CMakeFiles/table3_simperf.dir/bench/table3_simperf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/sct_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/jcvm/CMakeFiles/sct_jcvm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sct_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/sct_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sct_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
