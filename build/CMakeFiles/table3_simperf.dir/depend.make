# Empty dependencies file for table3_simperf.
# This may be replaced when dependencies are built.
