file(REMOVE_RECURSE
  "CMakeFiles/ablation_vdd.dir/bench/ablation_vdd.cpp.o"
  "CMakeFiles/ablation_vdd.dir/bench/ablation_vdd.cpp.o.d"
  "bench/ablation_vdd"
  "bench/ablation_vdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
