# Empty dependencies file for ablation_vdd.
# This may be replaced when dependencies are built.
