file(REMOVE_RECURSE
  "libsct_soc.a"
)
