# Empty compiler generated dependencies file for sct_soc.
# This may be replaced when dependencies are built.
