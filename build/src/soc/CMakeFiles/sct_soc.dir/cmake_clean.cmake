file(REMOVE_RECURSE
  "CMakeFiles/sct_soc.dir/apdu.cpp.o"
  "CMakeFiles/sct_soc.dir/apdu.cpp.o.d"
  "CMakeFiles/sct_soc.dir/assembler.cpp.o"
  "CMakeFiles/sct_soc.dir/assembler.cpp.o.d"
  "CMakeFiles/sct_soc.dir/cache.cpp.o"
  "CMakeFiles/sct_soc.dir/cache.cpp.o.d"
  "CMakeFiles/sct_soc.dir/cpu.cpp.o"
  "CMakeFiles/sct_soc.dir/cpu.cpp.o.d"
  "CMakeFiles/sct_soc.dir/isa.cpp.o"
  "CMakeFiles/sct_soc.dir/isa.cpp.o.d"
  "CMakeFiles/sct_soc.dir/peripherals.cpp.o"
  "CMakeFiles/sct_soc.dir/peripherals.cpp.o.d"
  "CMakeFiles/sct_soc.dir/sw_crypto.cpp.o"
  "CMakeFiles/sct_soc.dir/sw_crypto.cpp.o.d"
  "libsct_soc.a"
  "libsct_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
