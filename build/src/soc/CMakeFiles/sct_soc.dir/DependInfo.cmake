
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/apdu.cpp" "src/soc/CMakeFiles/sct_soc.dir/apdu.cpp.o" "gcc" "src/soc/CMakeFiles/sct_soc.dir/apdu.cpp.o.d"
  "/root/repo/src/soc/assembler.cpp" "src/soc/CMakeFiles/sct_soc.dir/assembler.cpp.o" "gcc" "src/soc/CMakeFiles/sct_soc.dir/assembler.cpp.o.d"
  "/root/repo/src/soc/cache.cpp" "src/soc/CMakeFiles/sct_soc.dir/cache.cpp.o" "gcc" "src/soc/CMakeFiles/sct_soc.dir/cache.cpp.o.d"
  "/root/repo/src/soc/cpu.cpp" "src/soc/CMakeFiles/sct_soc.dir/cpu.cpp.o" "gcc" "src/soc/CMakeFiles/sct_soc.dir/cpu.cpp.o.d"
  "/root/repo/src/soc/isa.cpp" "src/soc/CMakeFiles/sct_soc.dir/isa.cpp.o" "gcc" "src/soc/CMakeFiles/sct_soc.dir/isa.cpp.o.d"
  "/root/repo/src/soc/peripherals.cpp" "src/soc/CMakeFiles/sct_soc.dir/peripherals.cpp.o" "gcc" "src/soc/CMakeFiles/sct_soc.dir/peripherals.cpp.o.d"
  "/root/repo/src/soc/sw_crypto.cpp" "src/soc/CMakeFiles/sct_soc.dir/sw_crypto.cpp.o" "gcc" "src/soc/CMakeFiles/sct_soc.dir/sw_crypto.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
