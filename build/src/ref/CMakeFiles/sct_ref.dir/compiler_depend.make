# Empty compiler generated dependencies file for sct_ref.
# This may be replaced when dependencies are built.
