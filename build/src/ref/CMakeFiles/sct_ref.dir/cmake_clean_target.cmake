file(REMOVE_RECURSE
  "libsct_ref.a"
)
