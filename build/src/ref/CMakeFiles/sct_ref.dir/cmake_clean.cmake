file(REMOVE_RECURSE
  "CMakeFiles/sct_ref.dir/energy.cpp.o"
  "CMakeFiles/sct_ref.dir/energy.cpp.o.d"
  "CMakeFiles/sct_ref.dir/gl_bus.cpp.o"
  "CMakeFiles/sct_ref.dir/gl_bus.cpp.o.d"
  "CMakeFiles/sct_ref.dir/parasitics.cpp.o"
  "CMakeFiles/sct_ref.dir/parasitics.cpp.o.d"
  "libsct_ref.a"
  "libsct_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
