
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ref/energy.cpp" "src/ref/CMakeFiles/sct_ref.dir/energy.cpp.o" "gcc" "src/ref/CMakeFiles/sct_ref.dir/energy.cpp.o.d"
  "/root/repo/src/ref/gl_bus.cpp" "src/ref/CMakeFiles/sct_ref.dir/gl_bus.cpp.o" "gcc" "src/ref/CMakeFiles/sct_ref.dir/gl_bus.cpp.o.d"
  "/root/repo/src/ref/parasitics.cpp" "src/ref/CMakeFiles/sct_ref.dir/parasitics.cpp.o" "gcc" "src/ref/CMakeFiles/sct_ref.dir/parasitics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
