file(REMOVE_RECURSE
  "CMakeFiles/sct_bus.dir/decoder.cpp.o"
  "CMakeFiles/sct_bus.dir/decoder.cpp.o.d"
  "CMakeFiles/sct_bus.dir/memory_slave.cpp.o"
  "CMakeFiles/sct_bus.dir/memory_slave.cpp.o.d"
  "CMakeFiles/sct_bus.dir/register_slave.cpp.o"
  "CMakeFiles/sct_bus.dir/register_slave.cpp.o.d"
  "CMakeFiles/sct_bus.dir/tl1_bus.cpp.o"
  "CMakeFiles/sct_bus.dir/tl1_bus.cpp.o.d"
  "CMakeFiles/sct_bus.dir/tl2_bridge.cpp.o"
  "CMakeFiles/sct_bus.dir/tl2_bridge.cpp.o.d"
  "CMakeFiles/sct_bus.dir/tl2_bus.cpp.o"
  "CMakeFiles/sct_bus.dir/tl2_bus.cpp.o.d"
  "libsct_bus.a"
  "libsct_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
