file(REMOVE_RECURSE
  "libsct_bus.a"
)
