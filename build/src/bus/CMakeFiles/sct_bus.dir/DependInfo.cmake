
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/decoder.cpp" "src/bus/CMakeFiles/sct_bus.dir/decoder.cpp.o" "gcc" "src/bus/CMakeFiles/sct_bus.dir/decoder.cpp.o.d"
  "/root/repo/src/bus/memory_slave.cpp" "src/bus/CMakeFiles/sct_bus.dir/memory_slave.cpp.o" "gcc" "src/bus/CMakeFiles/sct_bus.dir/memory_slave.cpp.o.d"
  "/root/repo/src/bus/register_slave.cpp" "src/bus/CMakeFiles/sct_bus.dir/register_slave.cpp.o" "gcc" "src/bus/CMakeFiles/sct_bus.dir/register_slave.cpp.o.d"
  "/root/repo/src/bus/tl1_bus.cpp" "src/bus/CMakeFiles/sct_bus.dir/tl1_bus.cpp.o" "gcc" "src/bus/CMakeFiles/sct_bus.dir/tl1_bus.cpp.o.d"
  "/root/repo/src/bus/tl2_bridge.cpp" "src/bus/CMakeFiles/sct_bus.dir/tl2_bridge.cpp.o" "gcc" "src/bus/CMakeFiles/sct_bus.dir/tl2_bridge.cpp.o.d"
  "/root/repo/src/bus/tl2_bus.cpp" "src/bus/CMakeFiles/sct_bus.dir/tl2_bus.cpp.o" "gcc" "src/bus/CMakeFiles/sct_bus.dir/tl2_bus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
