# Empty dependencies file for sct_bus.
# This may be replaced when dependencies are built.
