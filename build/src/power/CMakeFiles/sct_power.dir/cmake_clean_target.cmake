file(REMOVE_RECURSE
  "libsct_power.a"
)
