
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/budget.cpp" "src/power/CMakeFiles/sct_power.dir/budget.cpp.o" "gcc" "src/power/CMakeFiles/sct_power.dir/budget.cpp.o.d"
  "/root/repo/src/power/characterizer.cpp" "src/power/CMakeFiles/sct_power.dir/characterizer.cpp.o" "gcc" "src/power/CMakeFiles/sct_power.dir/characterizer.cpp.o.d"
  "/root/repo/src/power/coeff_table.cpp" "src/power/CMakeFiles/sct_power.dir/coeff_table.cpp.o" "gcc" "src/power/CMakeFiles/sct_power.dir/coeff_table.cpp.o.d"
  "/root/repo/src/power/component_models.cpp" "src/power/CMakeFiles/sct_power.dir/component_models.cpp.o" "gcc" "src/power/CMakeFiles/sct_power.dir/component_models.cpp.o.d"
  "/root/repo/src/power/profile.cpp" "src/power/CMakeFiles/sct_power.dir/profile.cpp.o" "gcc" "src/power/CMakeFiles/sct_power.dir/profile.cpp.o.d"
  "/root/repo/src/power/tl1_power_model.cpp" "src/power/CMakeFiles/sct_power.dir/tl1_power_model.cpp.o" "gcc" "src/power/CMakeFiles/sct_power.dir/tl1_power_model.cpp.o.d"
  "/root/repo/src/power/tl2_power_model.cpp" "src/power/CMakeFiles/sct_power.dir/tl2_power_model.cpp.o" "gcc" "src/power/CMakeFiles/sct_power.dir/tl2_power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/sct_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sct_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
