file(REMOVE_RECURSE
  "CMakeFiles/sct_power.dir/budget.cpp.o"
  "CMakeFiles/sct_power.dir/budget.cpp.o.d"
  "CMakeFiles/sct_power.dir/characterizer.cpp.o"
  "CMakeFiles/sct_power.dir/characterizer.cpp.o.d"
  "CMakeFiles/sct_power.dir/coeff_table.cpp.o"
  "CMakeFiles/sct_power.dir/coeff_table.cpp.o.d"
  "CMakeFiles/sct_power.dir/component_models.cpp.o"
  "CMakeFiles/sct_power.dir/component_models.cpp.o.d"
  "CMakeFiles/sct_power.dir/profile.cpp.o"
  "CMakeFiles/sct_power.dir/profile.cpp.o.d"
  "CMakeFiles/sct_power.dir/tl1_power_model.cpp.o"
  "CMakeFiles/sct_power.dir/tl1_power_model.cpp.o.d"
  "CMakeFiles/sct_power.dir/tl2_power_model.cpp.o"
  "CMakeFiles/sct_power.dir/tl2_power_model.cpp.o.d"
  "libsct_power.a"
  "libsct_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
