# Empty compiler generated dependencies file for sct_power.
# This may be replaced when dependencies are built.
