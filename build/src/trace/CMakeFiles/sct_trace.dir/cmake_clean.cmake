file(REMOVE_RECURSE
  "CMakeFiles/sct_trace.dir/bus_trace.cpp.o"
  "CMakeFiles/sct_trace.dir/bus_trace.cpp.o.d"
  "CMakeFiles/sct_trace.dir/replay_master.cpp.o"
  "CMakeFiles/sct_trace.dir/replay_master.cpp.o.d"
  "CMakeFiles/sct_trace.dir/report.cpp.o"
  "CMakeFiles/sct_trace.dir/report.cpp.o.d"
  "CMakeFiles/sct_trace.dir/vcd.cpp.o"
  "CMakeFiles/sct_trace.dir/vcd.cpp.o.d"
  "CMakeFiles/sct_trace.dir/workloads.cpp.o"
  "CMakeFiles/sct_trace.dir/workloads.cpp.o.d"
  "libsct_trace.a"
  "libsct_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
