# Empty dependencies file for sct_trace.
# This may be replaced when dependencies are built.
