
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/bus_trace.cpp" "src/trace/CMakeFiles/sct_trace.dir/bus_trace.cpp.o" "gcc" "src/trace/CMakeFiles/sct_trace.dir/bus_trace.cpp.o.d"
  "/root/repo/src/trace/replay_master.cpp" "src/trace/CMakeFiles/sct_trace.dir/replay_master.cpp.o" "gcc" "src/trace/CMakeFiles/sct_trace.dir/replay_master.cpp.o.d"
  "/root/repo/src/trace/report.cpp" "src/trace/CMakeFiles/sct_trace.dir/report.cpp.o" "gcc" "src/trace/CMakeFiles/sct_trace.dir/report.cpp.o.d"
  "/root/repo/src/trace/vcd.cpp" "src/trace/CMakeFiles/sct_trace.dir/vcd.cpp.o" "gcc" "src/trace/CMakeFiles/sct_trace.dir/vcd.cpp.o.d"
  "/root/repo/src/trace/workloads.cpp" "src/trace/CMakeFiles/sct_trace.dir/workloads.cpp.o" "gcc" "src/trace/CMakeFiles/sct_trace.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/sct_ref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
