file(REMOVE_RECURSE
  "libsct_trace.a"
)
