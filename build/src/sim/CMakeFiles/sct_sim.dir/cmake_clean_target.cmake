file(REMOVE_RECURSE
  "libsct_sim.a"
)
