file(REMOVE_RECURSE
  "CMakeFiles/sct_sim.dir/clock.cpp.o"
  "CMakeFiles/sct_sim.dir/clock.cpp.o.d"
  "CMakeFiles/sct_sim.dir/kernel.cpp.o"
  "CMakeFiles/sct_sim.dir/kernel.cpp.o.d"
  "libsct_sim.a"
  "libsct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
