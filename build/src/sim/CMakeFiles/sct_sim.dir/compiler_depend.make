# Empty compiler generated dependencies file for sct_sim.
# This may be replaced when dependencies are built.
