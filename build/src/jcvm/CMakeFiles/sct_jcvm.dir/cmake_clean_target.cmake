file(REMOVE_RECURSE
  "libsct_jcvm.a"
)
