file(REMOVE_RECURSE
  "CMakeFiles/sct_jcvm.dir/applets.cpp.o"
  "CMakeFiles/sct_jcvm.dir/applets.cpp.o.d"
  "CMakeFiles/sct_jcvm.dir/bytecode.cpp.o"
  "CMakeFiles/sct_jcvm.dir/bytecode.cpp.o.d"
  "CMakeFiles/sct_jcvm.dir/bytecode_profiler.cpp.o"
  "CMakeFiles/sct_jcvm.dir/bytecode_profiler.cpp.o.d"
  "CMakeFiles/sct_jcvm.dir/exploration.cpp.o"
  "CMakeFiles/sct_jcvm.dir/exploration.cpp.o.d"
  "CMakeFiles/sct_jcvm.dir/hw_stack.cpp.o"
  "CMakeFiles/sct_jcvm.dir/hw_stack.cpp.o.d"
  "CMakeFiles/sct_jcvm.dir/interpreter.cpp.o"
  "CMakeFiles/sct_jcvm.dir/interpreter.cpp.o.d"
  "CMakeFiles/sct_jcvm.dir/master_adapter.cpp.o"
  "CMakeFiles/sct_jcvm.dir/master_adapter.cpp.o.d"
  "CMakeFiles/sct_jcvm.dir/memory_manager.cpp.o"
  "CMakeFiles/sct_jcvm.dir/memory_manager.cpp.o.d"
  "libsct_jcvm.a"
  "libsct_jcvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_jcvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
