# Empty compiler generated dependencies file for sct_jcvm.
# This may be replaced when dependencies are built.
