
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jcvm/applets.cpp" "src/jcvm/CMakeFiles/sct_jcvm.dir/applets.cpp.o" "gcc" "src/jcvm/CMakeFiles/sct_jcvm.dir/applets.cpp.o.d"
  "/root/repo/src/jcvm/bytecode.cpp" "src/jcvm/CMakeFiles/sct_jcvm.dir/bytecode.cpp.o" "gcc" "src/jcvm/CMakeFiles/sct_jcvm.dir/bytecode.cpp.o.d"
  "/root/repo/src/jcvm/bytecode_profiler.cpp" "src/jcvm/CMakeFiles/sct_jcvm.dir/bytecode_profiler.cpp.o" "gcc" "src/jcvm/CMakeFiles/sct_jcvm.dir/bytecode_profiler.cpp.o.d"
  "/root/repo/src/jcvm/exploration.cpp" "src/jcvm/CMakeFiles/sct_jcvm.dir/exploration.cpp.o" "gcc" "src/jcvm/CMakeFiles/sct_jcvm.dir/exploration.cpp.o.d"
  "/root/repo/src/jcvm/hw_stack.cpp" "src/jcvm/CMakeFiles/sct_jcvm.dir/hw_stack.cpp.o" "gcc" "src/jcvm/CMakeFiles/sct_jcvm.dir/hw_stack.cpp.o.d"
  "/root/repo/src/jcvm/interpreter.cpp" "src/jcvm/CMakeFiles/sct_jcvm.dir/interpreter.cpp.o" "gcc" "src/jcvm/CMakeFiles/sct_jcvm.dir/interpreter.cpp.o.d"
  "/root/repo/src/jcvm/master_adapter.cpp" "src/jcvm/CMakeFiles/sct_jcvm.dir/master_adapter.cpp.o" "gcc" "src/jcvm/CMakeFiles/sct_jcvm.dir/master_adapter.cpp.o.d"
  "/root/repo/src/jcvm/memory_manager.cpp" "src/jcvm/CMakeFiles/sct_jcvm.dir/memory_manager.cpp.o" "gcc" "src/jcvm/CMakeFiles/sct_jcvm.dir/memory_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sct_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/sct_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sct_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
