file(REMOVE_RECURSE
  "CMakeFiles/trace_to_vcd.dir/trace_to_vcd.cpp.o"
  "CMakeFiles/trace_to_vcd.dir/trace_to_vcd.cpp.o.d"
  "trace_to_vcd"
  "trace_to_vcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_to_vcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
