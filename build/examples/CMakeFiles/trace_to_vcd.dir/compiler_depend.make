# Empty compiler generated dependencies file for trace_to_vcd.
# This may be replaced when dependencies are built.
