# Empty compiler generated dependencies file for soc_boot.
# This may be replaced when dependencies are built.
