file(REMOVE_RECURSE
  "CMakeFiles/soc_boot.dir/soc_boot.cpp.o"
  "CMakeFiles/soc_boot.dir/soc_boot.cpp.o.d"
  "soc_boot"
  "soc_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
