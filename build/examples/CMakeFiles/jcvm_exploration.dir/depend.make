# Empty dependencies file for jcvm_exploration.
# This may be replaced when dependencies are built.
