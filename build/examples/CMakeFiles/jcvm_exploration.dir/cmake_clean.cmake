file(REMOVE_RECURSE
  "CMakeFiles/jcvm_exploration.dir/jcvm_exploration.cpp.o"
  "CMakeFiles/jcvm_exploration.dir/jcvm_exploration.cpp.o.d"
  "jcvm_exploration"
  "jcvm_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jcvm_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
