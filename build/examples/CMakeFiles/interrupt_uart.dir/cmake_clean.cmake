file(REMOVE_RECURSE
  "CMakeFiles/interrupt_uart.dir/interrupt_uart.cpp.o"
  "CMakeFiles/interrupt_uart.dir/interrupt_uart.cpp.o.d"
  "interrupt_uart"
  "interrupt_uart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_uart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
