# Empty dependencies file for interrupt_uart.
# This may be replaced when dependencies are built.
