# Empty dependencies file for apdu_session.
# This may be replaced when dependencies are built.
