file(REMOVE_RECURSE
  "CMakeFiles/apdu_session.dir/apdu_session.cpp.o"
  "CMakeFiles/apdu_session.dir/apdu_session.cpp.o.d"
  "apdu_session"
  "apdu_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apdu_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
