# Empty dependencies file for spa_power_trace.
# This may be replaced when dependencies are built.
