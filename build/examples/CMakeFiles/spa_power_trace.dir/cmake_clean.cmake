file(REMOVE_RECURSE
  "CMakeFiles/spa_power_trace.dir/spa_power_trace.cpp.o"
  "CMakeFiles/spa_power_trace.dir/spa_power_trace.cpp.o.d"
  "spa_power_trace"
  "spa_power_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_power_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
