#include "bench_util.h"

#include <map>
#include <memory>
#include <mutex>

namespace sct::bench {

const std::uint8_t* realisticImage(std::size_t n, std::uint64_t seed) {
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, std::uint64_t>,
                  std::unique_ptr<std::uint8_t[]>>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[{n, seed}];
  if (!slot) {
    slot = std::make_unique<std::uint8_t[]>(n);
    trace::fillRealistic(slot.get(), n, seed);
  }
  return slot.get();
}

void prewarmSharedWorkloads() {
  (void)characterizedTable();
  (void)evaluationWorkload();
  (void)realisticImage(soc::memmap::kRomSize, 11);
  (void)realisticImage(soc::memmap::kFlashSize, 13);
}

const soc::AssembledProgram& workloadFirmware() {
  static const soc::AssembledProgram program = soc::assemble(R"(
  # Evaluation firmware: the kind of assembly test program the paper
  # traced on the RTL. Mixes fetch-heavy computation, flash->RAM block
  # copy, EEPROM programming, TRNG draws, UART output with status
  # polling, and a crypto-coprocessor operation.

    # --- Phase 1: computation (fetch/branch heavy) -------------------
    addiu $t0, $zero, 64
    addiu $t1, $zero, 0
  calc:
    addu  $t1, $t1, $t0
    sll   $t2, $t1, 1
    xor   $t1, $t1, $t2
    andi  $t1, $t1, 0x7FFF
    addiu $t0, $t0, -1
    bne   $t0, $zero, calc

    # --- Phase 2: copy 32 words flash -> RAM -------------------------
    li    $s0, 0x0C000100   # flash source
    li    $s1, 0x08000100   # RAM destination
    addiu $t0, $zero, 32
  copy:
    lw    $t2, 0($s0)
    sw    $t2, 0($s1)
    addiu $s0, $s0, 4
    addiu $s1, $s1, 4
    addiu $t0, $t0, -1
    bne   $t0, $zero, copy

    # --- Phase 3: program 8 words into EEPROM ------------------------
    li    $s0, 0x0A000040
    addiu $t0, $zero, 8
  eep:
    sll   $t2, $t0, 8
    or    $t2, $t2, $t0
    sw    $t2, 0($s0)
    addiu $s0, $s0, 4
    addiu $t0, $t0, -1
    bne   $t0, $zero, eep

    # --- Phase 4: TRNG draws ------------------------------------------
    li    $s0, 0x10000300
    addiu $t0, $zero, 4
    addiu $t3, $zero, 0
  rng:
    lw    $t2, 0($s0)
    xor   $t3, $t3, $t2
    addiu $t0, $t0, -1
    bne   $t0, $zero, rng
    li    $s1, 0x08000080
    sw    $t3, 0($s1)

    # --- Phase 5: UART output with status polling ---------------------
    li    $s0, 0x10000200
    addiu $t0, $zero, 0x42   # 'B'
    jal   putc
    addiu $t0, $zero, 0x55   # 'U'
    jal   putc
    addiu $t0, $zero, 0x53   # 'S'
    jal   putc
    j     crypto

  putc:
    lw    $t1, 4($s0)
    andi  $t1, $t1, 1
    beq   $t1, $zero, putc
    sw    $t0, 0($s0)
    jr    $ra

    # --- Phase 6: crypto coprocessor ----------------------------------
  crypto:
    li    $s0, 0x10000400
    li    $t0, 0x01234567
    sw    $t0, 0($s0)
    li    $t0, 0x89ABCDEF
    sw    $t0, 4($s0)
    li    $t0, 0xFEDCBA98
    sw    $t0, 8($s0)
    li    $t0, 0x76543210
    sw    $t0, 12($s0)
    li    $t0, 0xCAFEBABE
    sw    $t0, 0x10($s0)
    li    $t0, 0xDEADBEEF
    sw    $t0, 0x14($s0)
    addiu $t0, $zero, 1
    sw    $t0, 0x18($s0)
  busy:
    lw    $t1, 0x1C($s0)
    bne   $t1, $zero, busy
    lw    $t2, 0x10($s0)
    lw    $t3, 0x14($s0)
    li    $s1, 0x08000090
    sw    $t2, 0($s1)
    sw    $t3, 4($s1)
    break
  )",
                                                soc::memmap::kRomBase);
  return program;
}

const trace::BusTrace& firmwareTrace() {
  static const trace::BusTrace t = [] {
    soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
    trace::TraceRecorder recorder;
    card.bus().addObserver(recorder);
    card.loadProgram(workloadFirmware());
    card.run();
    return recorder.take();
  }();
  return t;
}

const trace::BusTrace& evaluationWorkload() {
  static const trace::BusTrace workload = [] {
    // EC-spec verification examples target RAM (zero-wait) and EEPROM
    // (waited) windows of the platform.
    trace::TargetRegion fast{soc::memmap::kRamBase, soc::memmap::kRamSize,
                             true, true, true};
    trace::TargetRegion waited{soc::memmap::kEepromBase,
                               soc::memmap::kEepromSize, true, true, true};
    trace::BusTrace all = trace::verificationTrace(fast, waited);

    trace::BusTrace fw = trace::compressGaps(firmwareTrace(), 6);
    all.append(fw, 200);
    const std::uint64_t fwEnd =
        fw.empty() ? 0 : fw.entries().back().issueCycle;

    trace::MixRatios mix;
    mix.instrFetch = 2;
    const auto regions = platformRegions();
    all.append(trace::randomMixStyled(555, 200, regions, mix, 1,
                                      trace::DataStyle::Realistic),
               200 + fwEnd + 100);
    return all;
  }();
  return workload;
}

const power::SignalEnergyTable& characterizedTable() {
  static const power::SignalEnergyTable table = [] {
    ReplayPlatform<ref::GlBus> platform(energyModel());
    power::Characterizer ch(energyModel());
    platform.ecbus.addFrameListener(ch);
    const auto regions = platformRegions();
    platform.replay(trace::characterizationTrace(1234, 1500, regions));
    return ch.buildTable();
  }();
  return table;
}

} // namespace sct::bench
