// Table 1 — "Timing error between the gate-level simulation,
// transaction level layer one bus model and the transaction level
// layer two model."
//
// Paper: gate-level 100 %, layer one 100 % (0 % error), layer two
// 100.5 % (+0.5 % error). Reproduced by replaying the evaluation
// workload (EC-spec verification examples + a bus trace recorded from
// firmware on the full SoC + a realistic random mix) on all three
// model layers and comparing cycle counts.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "trace/report.h"

int main() {
  using namespace sct;
  using bench::ReplayPlatform;

  const trace::BusTrace& workload = bench::evaluationWorkload();
  const auto& firmware = bench::workloadFirmware();

  ReplayPlatform<ref::GlBus> gl(bench::energyModel());
  gl.loadImage(firmware);
  const std::uint64_t cyclesGl = gl.replay(workload);

  ReplayPlatform<bus::Tl1Bus> tl1;
  tl1.loadImage(firmware);
  const std::uint64_t cyclesTl1 = tl1.replay(workload);

  ReplayPlatform<bus::Tl2Bus> tl2;
  tl2.loadImage(firmware);
  const std::uint64_t cyclesTl2 = tl2.replay(workload);

  std::printf("Table 1: timing error of the transaction-level models\n");
  std::printf("(workload: %zu transactions — EC verification suite + "
              "SoC firmware trace + random mix)\n\n",
              workload.size());

  const double base = static_cast<double>(cyclesGl);
  auto errorOf = [base](std::uint64_t cycles) {
    return (static_cast<double>(cycles) - base) / base;
  };

  trace::Table table({"Abstraction Level", "Cycles", "Relative", "Error"});
  table.addRow({"Gate-level model", std::to_string(cyclesGl), "100%", "-"});
  table.addRow({"Layer one model", std::to_string(cyclesTl1),
                trace::Table::pct(static_cast<double>(cyclesTl1) / base, 1),
                trace::Table::pct(errorOf(cyclesTl1), 2, true)});
  table.addRow({"Layer two model", std::to_string(cyclesTl2),
                trace::Table::pct(static_cast<double>(cyclesTl2) / base, 1),
                trace::Table::pct(errorOf(cyclesTl2), 2, true)});
  table.print(std::cout);

  std::printf("\nPaper reference: gate-level 100%%, layer one 100%% "
              "(0%% error), layer two 100.5%% (+0.5%% error).\n");
  return 0;
}
