// Extension — the whole SoC at layer-2 fidelity.
//
// Haverinen's layer 2 is meant for "hardware architectural performance
// and behavior analysis, HW/SW partitioning, or cycle performance
// estimation". With the layer bridge (bus/tl2_bridge.h) the complete
// smart card — core, caches, peripherals, firmware — runs on the
// layer-2 bus: same results, estimated timing, layer-2 energy. This
// bench compares full-system runs across the two layers, which is the
// fidelity/speed decision a user of this library faces.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "bus/tl2_bridge.h"
#include "power/tl1_power_model.h"
#include "power/tl2_power_model.h"
#include "soc/smartcard.h"
#include "trace/report.h"

int main() {
  using namespace sct;
  using Clock = std::chrono::steady_clock;

  const auto& table = bench::characterizedTable();
  const auto& firmware = bench::workloadFirmware();

  // --- Layer 1 SoC -----------------------------------------------------
  soc::SmartCardSoC<bus::Tl1Bus> l1{soc::SocConfig{}};
  power::Tl1PowerModel pm1(table);
  l1.bus().addObserver(pm1);
  l1.loadProgram(firmware);
  const auto w1 = Clock::now();
  const bool ok1 = l1.run();
  const double host1 =
      std::chrono::duration<double, std::milli>(Clock::now() - w1).count();

  // --- Layer 2 SoC (through the layer bridge) --------------------------
  soc::SmartCardSoC<bus::BridgedTl2Bus> l2{soc::SocConfig{}};
  power::Tl2PowerModel pm2(table);
  l2.bus().addObserver(pm2);
  l2.loadProgram(firmware);
  const auto w2 = Clock::now();
  const bool ok2 = l2.run();
  const double host2 =
      std::chrono::duration<double, std::milli>(Clock::now() - w2).count();

  std::printf("Extension: full-SoC simulation at both bus layers "
              "(evaluation firmware)\n\n");
  trace::Table t({"Layer", "Simulated cycles", "Bus txns",
                  "Energy estimate (pJ)", "Host time (ms)", "OK"});
  t.addRow({"layer 1 (cycle-true)",
            std::to_string(l1.cpu().stats().cycles),
            std::to_string(l1.bus().stats().transactions()),
            trace::Table::num(pm1.totalEnergy_fJ() / 1e3, 1),
            trace::Table::num(host1, 2), ok1 ? "yes" : "NO"});
  t.addRow({"layer 2 (estimated)",
            std::to_string(l2.cpu().stats().cycles),
            std::to_string(l2.bus().stats().transactions()),
            trace::Table::num(pm2.totalEnergy_fJ() / 1e3, 1),
            trace::Table::num(host2, 2), ok2 ? "yes" : "NO"});
  t.print(std::cout);

  const bool sameResult =
      l1.ram().peekWord(soc::memmap::kRamBase + 0x90) ==
          l2.ram().peekWord(soc::memmap::kRamBase + 0x90) &&
      l1.uart().transmitted() == l2.uart().transmitted();
  const double drift =
      100.0 * (static_cast<double>(l2.cpu().stats().cycles) -
               static_cast<double>(l1.cpu().stats().cycles)) /
      static_cast<double>(l1.cpu().stats().cycles);
  std::printf("\nfunctional results identical: %s; layer-2 cycle "
              "estimate drift: %+.1f%%\n",
              sameResult ? "yes" : "NO", drift);
  std::printf("The blocking core masks most of layer 2's speed advantage"
              " at\nsystem level; pure bus replays (Table 3) show its "
              "full throughput.\n");
  return 0;
}
