// Figure 6 — "Energy sampling using the implemented interface methods."
//
// The paper's scenario: three overlapping transactions (A-Phase 1..3,
// R-Phase 1, W-Phase 2, R-Phase 3) on the pipelined bus. The layer-2
// power interface has only the energy-since-last-call method and books
// energy when a *phase finishes*: sampling at t1 catches the early
// address phases, sampling at t2 catches later address phases plus the
// first data phases — and request 3's data phase is missing from both.
// Layer 1, by contrast, delivers a true cycle-accurate profile.
//
// This bench samples the layer-2 interval method every cycle, showing
// the energy arriving in phase-sized lumps at phase-completion times,
// next to the layer-1 per-cycle profile of the same scenario.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "power/profile.h"
#include "power/tl1_power_model.h"
#include "power/tl2_power_model.h"
#include "trace/report.h"

namespace {

sct::trace::BusTrace figureScenario() {
  using namespace sct;
  trace::BusTrace scenario;
  trace::TraceEntry r1;
  r1.kind = bus::Kind::Read;
  r1.address = soc::memmap::kEepromBase + 0x00;
  scenario.append(r1);
  trace::TraceEntry w2;
  w2.kind = bus::Kind::Write;
  w2.address = soc::memmap::kEepromBase + 0x10;
  w2.writeData[0] = 0xA5A5A5A5;
  scenario.append(w2);
  trace::TraceEntry r3;
  r3.kind = bus::Kind::Read;
  r3.address = soc::memmap::kEepromBase + 0x20;
  scenario.append(r3);
  return scenario;
}

std::string bar(double fJ) {
  return std::string(static_cast<std::size_t>(fJ / 800.0), '#');
}

} // namespace

int main() {
  using namespace sct;

  const auto& table = bench::characterizedTable();
  const trace::BusTrace scenario = figureScenario();

  // --- Layer 2: interval samples, one per cycle ----------------------
  bench::ReplayPlatform<bus::Tl2Bus> tl2;
  power::Tl2PowerModel pm2(table);
  tl2.ecbus.addObserver(pm2);
  trace::Tl2ReplayMaster m2(tl2.clk, "m2", tl2.ecbus, scenario);
  std::vector<double> lumps;
  while (!m2.done() && lumps.size() < 30) {
    tl2.clk.runCycles(1);
    lumps.push_back(pm2.energySinceLastCall_fJ());
  }

  // --- Layer 1: true per-cycle profile --------------------------------
  bench::ReplayPlatform<bus::Tl1Bus> tl1;
  power::Tl1PowerModel pm1(table);
  power::PowerProfile profile(30'000);
  power::Tl1ProfileRecorder rec(pm1, profile);
  tl1.ecbus.addObserver(pm1);
  tl1.ecbus.addObserver(rec);
  tl1.replay(scenario);

  std::printf("Figure 6: energy sampling granularity — layer 2 books\n"
              "energy at phase completions, layer 1 cycle by cycle\n\n");
  trace::Table t({"Cycle", "L2 lump (fJ)", "L2", "L1 cycle (fJ)", "L1"});
  const std::size_t rows =
      std::max(lumps.size(), profile.samples().size());
  for (std::size_t i = 0; i < rows; ++i) {
    const double l2 = i < lumps.size() ? lumps[i] : 0.0;
    const double l1 =
        i < profile.samples().size() ? profile.samples()[i].energy_fJ : 0.0;
    t.addRow({std::to_string(i + 1), trace::Table::num(l2, 1), bar(l2),
              trace::Table::num(l1, 1), bar(l1)});
  }
  t.print(std::cout);

  // --- The paper's t1/t2 illustration ---------------------------------
  bench::ReplayPlatform<bus::Tl2Bus> tl2b;
  power::Tl2PowerModel pm2b(table);
  tl2b.ecbus.addObserver(pm2b);
  trace::Tl2ReplayMaster m2b(tl2b.clk, "m2b", tl2b.ecbus, scenario);
  tl2b.clk.runCycles(2);
  const double t1 = pm2b.energySinceLastCall_fJ();
  tl2b.clk.runCycles(3);
  const double t2 = pm2b.energySinceLastCall_fJ();
  m2b.runToCompletion();
  const double rest = pm2b.energySinceLastCall_fJ();

  std::printf("\nCoarse sampling as in the paper's Figure 6:\n");
  std::printf("  energy(t1)        = %8.1f fJ  (early address phases)\n",
              t1);
  std::printf("  energy(t2)        = %8.1f fJ  (later address + first "
              "data phases)\n",
              t2);
  std::printf("  energy(after t2)  = %8.1f fJ  (the data phase missing "
              "at t2)\n",
              rest);
  std::printf("\nTotals: layer 1 = %.1f fJ, layer 2 = %.1f fJ\n",
              pm1.totalEnergy_fJ(), pm2.totalEnergy_fJ());
  return 0;
}
