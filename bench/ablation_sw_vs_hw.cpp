// Ablation — software cipher vs crypto coprocessor.
//
// The paper's opening motivation: "To reach performance goals while
// power consumption stays constant requires fast software code for
// execution at low clock frequencies. Algorithms with high
// computational effort, like cryptographic algorithms, are often
// supported by dedicated coprocessors. The chosen HW/SW interface to
// control these coprocessors influences both system performance and
// power consumption."
//
// This bench runs the same 16-round Feistel cipher (a) in software on
// the simulated core and (b) on the crypto coprocessor through its SFR
// interface, for increasing block counts, and reports cycles, bus
// transactions and estimated bus-interface energy.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "power/tl1_power_model.h"
#include "soc/smartcard.h"
#include "soc/sw_crypto.h"
#include "trace/report.h"

namespace {

using namespace sct;

struct Run {
  std::uint64_t cycles = 0;
  std::uint64_t busTxns = 0;
  double energy_fJ = 0.0;
  bool ok = false;
};

const std::uint32_t kKey[4] = {0x01234567, 0x89ABCDEF, 0xFEDCBA98,
                               0x76543210};

Run runSoftware(unsigned blocks, const power::SignalEnergyTable& table) {
  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  power::Tl1PowerModel pm(table);
  card.bus().addObserver(pm);
  card.loadProgram(soc::swEncryptProgram(blocks));
  for (unsigned i = 0; i < 4; ++i) {
    card.ram().pokeWord(soc::memmap::kRamBase + 4 * i, kKey[i]);
  }
  for (unsigned b = 0; b < 2 * blocks; ++b) {
    card.ram().pokeWord(soc::memmap::kRamBase + 0x20 + 4 * b,
                        0x1000 * (b + 1) + b);
  }
  Run r;
  r.ok = card.run(20'000'000) && !card.cpu().faulted();
  r.cycles = card.cpu().stats().cycles;
  r.busTxns = card.bus().stats().transactions();
  r.energy_fJ = pm.totalEnergy_fJ();
  // Verify one block against the reference cipher.
  std::uint32_t d0 = 0x1000 * 1 + 0;
  std::uint32_t d1 = 0x1000 * 2 + 1;
  soc::CryptoCoprocessor::encryptBlock(kKey, d0, d1);
  r.ok = r.ok && card.ram().peekWord(soc::memmap::kRamBase + 0x20) == d0 &&
         card.ram().peekWord(soc::memmap::kRamBase + 0x24) == d1;
  return r;
}

Run runHardware(unsigned blocks, const power::SignalEnergyTable& table) {
  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  power::Tl1PowerModel pm(table);
  card.bus().addObserver(pm);
  // Firmware: load key once, then per block: write DATA, start, poll
  // STATUS, read back, store to RAM.
  const std::string fw = R"(
    li   $s0, 0x10000400
    li   $s1, 0x08000000    # key source / data buffer in RAM
    lw   $t0, 0($s1)
    sw   $t0, 0($s0)
    lw   $t0, 4($s1)
    sw   $t0, 4($s0)
    lw   $t0, 8($s1)
    sw   $t0, 8($s0)
    lw   $t0, 12($s1)
    sw   $t0, 12($s0)
    li   $s2, 0x08000020    # block pointer
    addiu $s3, $zero, )" + std::to_string(blocks) + R"(
  block:
    lw   $t0, 0($s2)
    sw   $t0, 0x10($s0)
    lw   $t0, 4($s2)
    sw   $t0, 0x14($s0)
    addiu $t0, $zero, 1
    sw   $t0, 0x18($s0)
  busy:
    lw   $t1, 0x1C($s0)
    bne  $t1, $zero, busy
    lw   $t2, 0x10($s0)
    sw   $t2, 0($s2)
    lw   $t2, 0x14($s0)
    sw   $t2, 4($s2)
    addiu $s2, $s2, 8
    addiu $s3, $s3, -1
    bne  $s3, $zero, block
    break
  )";
  card.loadProgram(soc::assemble(fw, soc::memmap::kRomBase));
  for (unsigned i = 0; i < 4; ++i) {
    card.ram().pokeWord(soc::memmap::kRamBase + 4 * i, kKey[i]);
  }
  for (unsigned b = 0; b < 2 * blocks; ++b) {
    card.ram().pokeWord(soc::memmap::kRamBase + 0x20 + 4 * b,
                        0x1000 * (b + 1) + b);
  }
  Run r;
  r.ok = card.run(20'000'000) && !card.cpu().faulted();
  r.cycles = card.cpu().stats().cycles;
  r.busTxns = card.bus().stats().transactions();
  r.energy_fJ = pm.totalEnergy_fJ();
  std::uint32_t d0 = 0x1000 * 1 + 0;
  std::uint32_t d1 = 0x1000 * 2 + 1;
  soc::CryptoCoprocessor::encryptBlock(kKey, d0, d1);
  r.ok = r.ok && card.ram().peekWord(soc::memmap::kRamBase + 0x20) == d0 &&
         card.ram().peekWord(soc::memmap::kRamBase + 0x24) == d1;
  return r;
}

} // namespace

int main() {
  const auto& table = sct::bench::characterizedTable();

  std::printf("Ablation: software cipher vs crypto coprocessor\n"
              "(same 16-round Feistel cipher, same key and plaintexts; "
              "energy is the EC bus-interface estimate)\n\n");
  sct::trace::Table t({"Blocks", "Impl", "Cycles", "Cycles/blk",
                       "Bus txns", "Energy (pJ)", "pJ/blk", "OK"});
  for (unsigned blocks : {1u, 4u, 16u}) {
    const Run sw = runSoftware(blocks, table);
    const Run hw = runHardware(blocks, table);
    for (const auto& [name, r] : {std::pair{"software", sw},
                                  std::pair{"coprocessor", hw}}) {
      t.addRow({std::to_string(blocks), name, std::to_string(r.cycles),
                std::to_string(r.cycles / blocks),
                std::to_string(r.busTxns),
                sct::trace::Table::num(r.energy_fJ / 1e3, 1),
                sct::trace::Table::num(r.energy_fJ / 1e3 / blocks, 1),
                r.ok ? "yes" : "NO"});
    }
  }
  t.print(std::cout);

  const Run sw16 = runSoftware(16, table);
  const Run hw16 = runHardware(16, table);
  std::printf(
      "\nAt 16 blocks the coprocessor is %.1fx faster — but its SFR\n"
      "interface costs ~%llu bus transactions per block, so the *bus*\n"
      "energy share of the coprocessor (%.0f pJ) approaches or exceeds\n"
      "the cache-resident software's (%.0f pJ). The speed win is clear;\n"
      "the energy win depends entirely on the HW/SW interface — which\n"
      "is precisely what the paper's Section 4.3 exploration optimizes.\n",
      static_cast<double>(sw16.cycles) / static_cast<double>(hw16.cycles),
      static_cast<unsigned long long>(hw16.busTxns / 16),
      hw16.energy_fJ / 1e3, sw16.energy_fJ / 1e3);
  return 0;
}
