// Extension — early energy estimation for typical smart card
// components (the paper's Section 5 outlook: "We will extend this
// first model to allow an early energy estimation for several
// different typical smart card components, like random number
// generators, UARTs or timers").
//
// Firmware kernels exercising one peripheral each run on the full
// layer-1 SoC with the energy model attached; the harness reports the
// bus-interface energy and cycle cost per peripheral interaction.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "power/component_models.h"
#include "power/tl1_power_model.h"
#include "soc/smartcard.h"
#include "trace/report.h"

namespace {

using namespace sct;

struct KernelResult {
  std::uint64_t cycles = 0;
  std::uint64_t busTransactions = 0;
  double energy_fJ = 0.0;
  bool ok = false;
};

KernelResult runKernel(const char* source,
                       const power::SignalEnergyTable& table) {
  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  power::Tl1PowerModel pm(table);
  card.bus().addObserver(pm);
  card.loadProgram(soc::assemble(source, soc::memmap::kRomBase));
  KernelResult r;
  r.ok = card.run() && !card.cpu().faulted();
  r.cycles = card.cpu().stats().cycles;
  r.busTransactions = card.bus().stats().transactions();
  r.energy_fJ = pm.totalEnergy_fJ();
  return r;
}

} // namespace

int main() {
  const auto& table = bench::characterizedTable();

  struct Kernel {
    const char* name;
    const char* source;
  };
  const Kernel kernels[] = {
      {"baseline (compute only)", R"(
          addiu $t0, $zero, 200
        loop:
          addu $t1, $t1, $t0
          addiu $t0, $t0, -1
          bne $t0, $zero, loop
          break
      )"},
      {"timer (poll 40 ticks)", R"(
          li   $s0, 0x10000100
          addiu $t0, $zero, 40
          sw   $t0, 4($s0)     # COMPARE
          addiu $t0, $zero, 1
          sw   $t0, 8($s0)     # CTRL.enable
        poll:
          lw   $t1, 12($s0)
          beq  $t1, $zero, poll
          break
      )"},
      {"uart (print 8 bytes)", R"(
          li   $s0, 0x10000200
          addiu $t3, $zero, 8
        next:
          addiu $t0, $zero, 0x41
        wait:
          lw   $t1, 4($s0)
          andi $t1, $t1, 1
          beq  $t1, $zero, wait
          sw   $t0, 0($s0)
          addiu $t3, $t3, -1
          bne  $t3, $zero, next
          break
      )"},
      {"trng (draw 16 words)", R"(
          li   $s0, 0x10000300
          addiu $t3, $zero, 16
        draw:
          lw   $t1, 0($s0)
          xor  $t2, $t2, $t1
          addiu $t3, $t3, -1
          bne  $t3, $zero, draw
          break
      )"},
      {"crypto (2 block ops)", R"(
          li   $s0, 0x10000400
          addiu $t4, $zero, 2
        op:
          li   $t0, 0x13579BDF
          sw   $t0, 0($s0)
          sw   $t0, 4($s0)
          sw   $t0, 8($s0)
          sw   $t0, 12($s0)
          li   $t0, 0x2468ACE0
          sw   $t0, 0x10($s0)
          sw   $t0, 0x14($s0)
          addiu $t0, $zero, 1
          sw   $t0, 0x18($s0)
        busy:
          lw   $t1, 0x1C($s0)
          bne  $t1, $zero, busy
          lw   $t2, 0x10($s0)
          lw   $t3, 0x14($s0)
          addiu $t4, $t4, -1
          bne  $t4, $zero, op
          break
      )"},
  };

  std::printf("Extension: early energy estimation per smart-card "
              "peripheral\n(full layer-1 SoC, firmware kernels; energy "
              "is the EC bus-interface share)\n\n");
  sct::trace::Table t({"Kernel", "Cycles", "Bus txns", "Energy (pJ)",
                       "pJ/txn", "OK"});
  for (const Kernel& k : kernels) {
    const KernelResult r = runKernel(k.source, table);
    t.addRow({k.name, std::to_string(r.cycles),
              std::to_string(r.busTransactions),
              sct::trace::Table::num(r.energy_fJ / 1e3, 1),
              r.busTransactions
                  ? sct::trace::Table::num(
                        r.energy_fJ / 1e3 /
                            static_cast<double>(r.busTransactions),
                        2)
                  : "-",
              r.ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::printf(
      "\nStatus-polling peripherals (timer, UART, crypto) pay most of\n"
      "their energy in repeated SFR reads; the TRNG's cost is pure\n"
      "data transfer.\n");

  // --- Whole-SoC breakdown: bus interface + component models ---------
  std::printf("\nWhole-SoC energy breakdown for a mixed firmware run\n"
              "(bus-interface estimate + activity-based component "
              "models):\n\n");
  {
    soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
    power::Tl1PowerModel pm(table);
    card.bus().addObserver(pm);
    card.loadProgram(sct::bench::workloadFirmware());
    card.run();
    const auto report = power::SocEnergyReport::forSoc(card, pm);
    sct::trace::Table bd({"Component", "Energy (pJ)", "Share"});
    for (const auto& line : report.breakdown()) {
      bd.addRow({line.name, sct::trace::Table::num(line.energy_fJ / 1e3, 1),
                 sct::trace::Table::pct(line.share, 1)});
    }
    bd.addRow({"total",
               sct::trace::Table::num(report.totalEnergy_fJ() / 1e3, 1),
               "100.0%"});
    bd.print(std::cout);
  }
  std::printf(
      "\nThese per-component figures are the early estimates the\n"
      "paper's Section 5 extension asks for: component activity\n"
      "(operations, bytes, ticks) priced with per-event coefficients,\n"
      "on top of the hierarchical bus-interface estimate.\n");
  return 0;
}
