// Section 4.3 / Figure 7 — "Energy Optimization using Transaction Level
// Bus Models": HW/SW interface exploration for the Java Card VM's
// hardware stack.
//
// For each interface alternative (address map, SFR organization,
// transactions used, slave wait states) the same applets run through
// the refined model — interpreter → master adapter → energy-aware TL1
// bus → slave adapter → stack — and the harness reports cycles,
// transactions and estimated energy, which is exactly the evidence the
// exploration needs to pick the best interface.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "jcvm/applets.h"
#include "jcvm/exploration.h"
#include "sim/parallel_runner.h"
#include "trace/report.h"

int main() {
  using namespace sct;
  using jcvm::ExplorationResult;

  // Build every lazily-constructed shared input on the main thread; the
  // sweep below fans configurations out over a worker pool and shares
  // the table by const reference.
  bench::prewarmSharedWorkloads();
  const auto& table = bench::characterizedTable();
  const unsigned threads = sim::ParallelRunner::defaultThreadCount();
  std::printf("Exploration sweep on %u thread(s) (override with "
              "SCT_THREADS); results are collected in configuration\n"
              "order, so the tables are identical at any thread count.\n\n",
              threads);

  struct Workload {
    std::string name;
    jcvm::JcProgram program;
    std::vector<jcvm::JcShort> args;
  };
  const Workload workloads[] = {
      {"sum_loop(60)", jcvm::applets::sumLoop(), {60}},
      {"fibonacci(18)", jcvm::applets::fibonacci(), {18}},
      {"wallet(credit 75)", jcvm::applets::wallet(100, 30000), {1, 75}},
      {"array_checksum(16)", jcvm::applets::arrayChecksum(), {16}},
      {"gcd(252, 105)", jcvm::applets::gcd(), {252, 105}},
      {"bubble_sort(10)", jcvm::applets::bubbleSort(), {10, 4}},
  };

  for (const Workload& w : workloads) {
    const ExplorationResult functional =
        jcvm::evaluateFunctional(w.program, w.args);
    std::printf("Workload %s — result %d, %llu bytecodes, %llu stack "
                "operations\n\n",
                w.name.c_str(), functional.result,
                static_cast<unsigned long long>(functional.bytecodes),
                static_cast<unsigned long long>(functional.stackOps));

    trace::Table t({"Interface config", "Bus txns", "Bus cycles",
                    "Bytes", "Energy (pJ)", "fJ/bytecode", "OK"});
    const std::vector<jcvm::InterfaceConfig> space =
        jcvm::defaultConfigSpace();
    const std::vector<ExplorationResult> results =
        jcvm::evaluateInterfaces(w.program, w.args, space, table, threads);
    for (std::size_t i = 0; i < space.size(); ++i) {
      const jcvm::InterfaceConfig& cfg = space[i];
      const ExplorationResult& r = results[i];
      t.addRow({cfg.name, std::to_string(r.busTransactions),
                std::to_string(r.busCycles),
                std::to_string(r.bytesOnBus),
                trace::Table::num(r.energy_fJ / 1e3, 1),
                trace::Table::num(r.energyPerBytecode_fJ(), 1),
                r.ok && r.result == functional.result ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  // Per-bytecode energy attribution for one applet/interface pair:
  // the actionable form of the exploration data.
  std::printf("Per-bytecode energy attribution (sum_loop on the "
              "combined-register interface):\n\n");
  std::vector<jcvm::BytecodeEnergyProfiler::Entry> ranking;
  jcvm::InterfaceConfig combined;
  combined.organization = jcvm::SfrOrganization::Combined;
  jcvm::evaluateInterface(jcvm::applets::sumLoop(), {60}, combined, table,
                          &ranking);
  trace::Table bt({"Bytecode", "Executions", "Energy (pJ)", "fJ/exec"});
  for (const auto& e : ranking) {
    bt.addRow({std::string(jcvm::mnemonic(e.op)), std::to_string(e.count),
               trace::Table::num(e.energy_fJ / 1e3, 1),
               trace::Table::num(e.energyPerExecution_fJ(), 1)});
  }
  bt.print(std::cout);

  std::printf(
      "\nReading the tables: the register organization and the\n"
      "transactions used to access the SFRs change the energy and\n"
      "cycle cost of the same applet by integer factors — the basis\n"
      "for choosing the HW/SW interface (paper, Section 4.3). The\n"
      "bytecode ranking shows where that energy goes: stack-touching\n"
      "bytecodes pay for their bus transactions, locals are free.\n");
  return 0;
}
