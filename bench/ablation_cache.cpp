// Ablation — cache size vs bus energy.
//
// The paper's related work highlights "exploration and optimization of
// the bus system in combination with caches" (Givargis, Vahid, Henkel).
// This bench sweeps the core's I/D cache sizes and reports how the EC
// bus traffic — and with it the bus-interface energy — responds while
// the executed program stays identical.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "power/tl1_power_model.h"
#include "soc/smartcard.h"
#include "soc/sw_crypto.h"
#include "trace/report.h"

int main() {
  using namespace sct;

  const auto& table = bench::characterizedTable();
  // The software cipher: ~280 B of round-loop code plus a 256 B S-box
  // and key/data in RAM — a working set that straddles the small cache
  // sizes of real smart cards.
  const auto firmware = soc::swEncryptProgram(/*blocks=*/6);

  std::printf("Ablation: cache size vs bus traffic and energy "
              "(software cipher, 6 blocks, line = 16 B)\n\n");
  trace::Table t({"I$/D$ bytes", "Cycles", "CPI", "I$ hit", "D$ hit",
                  "Fetch bursts", "Bus txns", "Energy (pJ)"});

  for (std::size_t size : {256u, 512u, 1024u, 4096u, 8192u}) {
    soc::SocConfig cfg;
    cfg.cpu.icacheBytes = size;
    cfg.cpu.dcacheBytes = size;
    soc::SmartCardSoC<bus::Tl1Bus> card{cfg};
    power::Tl1PowerModel pm(table);
    card.bus().addObserver(pm);
    card.loadProgram(firmware);
    const std::uint32_t key[4] = {0xA1B2C3D4, 0x11223344, 0x55667788,
                                  0x99AABBCC};
    for (unsigned i = 0; i < 4; ++i) {
      card.ram().pokeWord(soc::memmap::kRamBase + 4 * i, key[i]);
    }
    for (unsigned b = 0; b < 12; ++b) {
      card.ram().pokeWord(soc::memmap::kRamBase + 0x20 + 4 * b,
                          0x1357 * (b + 1));
    }
    if (!card.run(20'000'000) || card.cpu().faulted()) {
      std::printf("run failed at cache size %zu!\n", size);
      return 1;
    }
    t.addRow({std::to_string(size),
              std::to_string(card.cpu().stats().cycles),
              trace::Table::num(card.cpu().stats().cpi(), 2),
              trace::Table::pct(card.cpu().icache().stats().hitRate(), 1),
              trace::Table::pct(card.cpu().dcache().stats().hitRate(), 1),
              std::to_string(card.bus().stats().instrTransactions),
              std::to_string(card.bus().stats().transactions()),
              trace::Table::num(pm.totalEnergy_fJ() / 1e3, 1)});
  }
  t.print(std::cout);

  std::printf(
      "\nSmaller caches turn conflict misses into 4-beat refill bursts:\n"
      "cycles and bus energy climb while the program is unchanged —\n"
      "the cache/bus co-exploration axis of the related work, available\n"
      "here at transaction-level cost.\n");
  return 0;
}
