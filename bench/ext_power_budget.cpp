// Extension — supply-budget check per deployment class.
//
// The paper's first motivation for power awareness: "the limitation of
// power consumption by different standards, for instance the GSM
// standard limits the [current] to 10 mA at 5 V supply. More critical
// is power consumption for contact-less smart cards that are supplied
// by RF field." This bench runs crypto firmware on the SoC, estimates
// the whole-chip power profile from the layer-1 bus-interface energy,
// and checks it against the three deployment classes.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "power/budget.h"
#include "power/profile.h"
#include "power/tl1_power_model.h"
#include "soc/smartcard.h"
#include "trace/report.h"

int main() {
  using namespace sct;

  const auto& table = bench::characterizedTable();

  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  power::Tl1PowerModel pm(table);
  power::PowerProfile profile(30'000);
  power::Tl1ProfileRecorder rec(pm, profile);
  card.bus().addObserver(pm);
  card.bus().addObserver(rec);
  card.loadProgram(bench::workloadFirmware());
  const bool ok = card.run();

  std::printf("Extension: supply-budget check for the evaluation "
              "firmware (%s, %zu cycles profiled)\n\n",
              ok ? "completed" : "FAILED",
              profile.size());

  trace::Table t({"Deployment class", "Budget (mA)", "Mean (mA)",
                  "Peak window (mA)", "Headroom", "Verdict"});
  for (const power::SupplySpec& spec :
       {power::gsm5V(), power::iso7816Class3V(), power::contactless()}) {
    // Bus interface ≈ 1/120 of chip power on the reference platform.
    power::BudgetChecker checker(spec, 120.0);
    const power::BudgetReport r = checker.check(profile, 64);
    t.addRow({spec.name, trace::Table::num(spec.maxCurrent_mA, 1),
              trace::Table::num(r.meanCurrent_mA, 4),
              trace::Table::num(r.peakCurrent_mA, 4),
              trace::Table::num(r.headroom, 0) + "x",
              r.ok() ? "within budget" : "VIOLATION"});
  }
  t.print(std::cout);

  std::printf(
      "\nThe contact interfaces have orders of magnitude of headroom at\n"
      "33 MHz; the contactless RF budget is the binding constraint —\n"
      "matching the paper's observation that power \"is more critical\n"
      "for contact-less smart cards\". Peak windows (not means) decide:\n"
      "bursty crypto traffic can violate a budget the average obeys.\n");
  return 0;
}
