// Ablation — slave wait states.
//
// The EC interface lets the slave insert wait states for address and
// data phases; DESIGN.md calls out the wait-state machinery as a core
// design choice of the bus models. This ablation sweeps the data-phase
// wait states of a memory slave and reports cycles and reference
// energy: wait cycles add baseline (leakage/clock) energy but no
// switching activity, so energy per transaction climbs while the
// transaction content stays constant — the cost of slow memories.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "power/tl1_power_model.h"
#include "trace/report.h"

int main() {
  using namespace sct;

  const auto& table = bench::characterizedTable();

  std::printf("Ablation: data-phase wait states of a memory slave\n");
  std::printf("(fixed workload: 400 mixed transactions)\n\n");

  trace::Table t({"Wait states", "Cycles", "Ref energy (pJ)",
                  "L1 estimate (pJ)", "L1 error", "pJ/transaction"});

  for (unsigned wait = 0; wait <= 8; wait += 2) {
    sim::Kernel kernel;
    sim::Clock clk(kernel, "clk", 10);

    ref::GlBus glbus(clk, "gl", bench::energyModel());
    bus::SlaveControl ctl;
    ctl.base = 0x0;
    ctl.size = 0x4000;
    ctl.readWait = wait;
    ctl.writeWait = wait;
    bus::MemorySlave mem("mem", ctl);
    trace::fillRealistic(mem.data(), mem.sizeBytes(), 21);
    glbus.attach(mem);

    const trace::TargetRegion region{0x0, 0x4000, true, true, true};
    trace::MixRatios mix;
    mix.instrFetch = 1;
    const auto workload = trace::randomMixStyled(
        42, 400, std::vector<trace::TargetRegion>{region}, mix, 0,
        trace::DataStyle::Realistic);

    trace::ReplayMaster master(clk, "m", glbus, glbus, workload);
    const std::uint64_t cycles = master.runToCompletion();
    const double refE = glbus.energy().total_fJ;

    // Layer-1 estimate on an identical platform.
    sim::Kernel k1;
    sim::Clock c1(k1, "clk", 10);
    bus::Tl1Bus tl1(c1, "tl1");
    bus::MemorySlave mem1("mem", ctl);
    trace::fillRealistic(mem1.data(), mem1.sizeBytes(), 21);
    tl1.attach(mem1);
    power::Tl1PowerModel pm(table);
    tl1.addObserver(pm);
    trace::ReplayMaster m1(c1, "m", tl1, tl1, workload);
    m1.runToCompletion();

    t.addRow({std::to_string(wait), std::to_string(cycles),
              trace::Table::num(refE / 1e3, 1),
              trace::Table::num(pm.totalEnergy_fJ() / 1e3, 1),
              trace::Table::pct(
                  (pm.totalEnergy_fJ() - refE) / refE, 1, true),
              trace::Table::num(refE / 1e3 / 400.0, 2)});
  }
  t.print(std::cout);
  std::printf(
      "\nWait states stretch the run and add baseline energy the\n"
      "transaction-level estimate cannot see: the layer-1 error grows\n"
      "more negative as the bus idles more — the Table 2 mechanism\n"
      "made visible.\n");
  return 0;
}
