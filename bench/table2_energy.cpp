// Table 2 — "Energy estimation error of the transaction level models
// compared to the gate-level energy estimation."
//
// Paper: gate-level 100, TL layer 1 92.1 (−7.8 %), TL layer 2 114.7
// (+14.7 %). Reproduced with coefficients characterized on a disjoint
// training workload (the paper's Diesel abstraction step), then
// estimating the evaluation workload at layers 1 and 2 against the
// layer-0 transition-resolved reference.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "power/tl1_power_model.h"
#include "power/tl2_power_model.h"
#include "trace/report.h"

int main() {
  using namespace sct;
  using bench::ReplayPlatform;

  const power::SignalEnergyTable& table = bench::characterizedTable();
  const trace::BusTrace& workload = bench::evaluationWorkload();
  const auto& firmware = bench::workloadFirmware();

  ReplayPlatform<ref::GlBus> gl(bench::energyModel());
  gl.loadImage(firmware);
  gl.replay(workload);
  const double refEnergy = gl.ecbus.energy().total_fJ;

  ReplayPlatform<bus::Tl1Bus> tl1;
  tl1.loadImage(firmware);
  power::Tl1PowerModel pm1(table);
  tl1.ecbus.addObserver(pm1);
  tl1.replay(workload);

  ReplayPlatform<bus::Tl2Bus> tl2;
  tl2.loadImage(firmware);
  power::Tl2PowerModel pm2(table);
  tl2.ecbus.addObserver(pm2);
  tl2.replay(workload);

  std::printf("Table 2: energy estimation error vs the gate-level "
              "reference\n");
  std::printf("(all values related to the gate-level estimation = 100)\n\n");

  auto relative = [refEnergy](double e) { return 100.0 * e / refEnergy; };
  auto error = [refEnergy](double e) { return (e - refEnergy) / refEnergy; };

  trace::Table t({"Abstraction Level", "Energy (nJ)", "Relative", "Error"});
  t.addRow({"Gate-level estimation",
            trace::Table::num(refEnergy / 1e6, 2), "100.0", "-"});
  t.addRow({"TL layer 1 estimation",
            trace::Table::num(pm1.totalEnergy_fJ() / 1e6, 2),
            trace::Table::num(relative(pm1.totalEnergy_fJ()), 1),
            trace::Table::pct(error(pm1.totalEnergy_fJ()), 1, true)});
  t.addRow({"TL layer 2 estimation",
            trace::Table::num(pm2.totalEnergy_fJ() / 1e6, 2),
            trace::Table::num(relative(pm2.totalEnergy_fJ()), 1),
            trace::Table::pct(error(pm2.totalEnergy_fJ()), 1, true)});
  t.print(std::cout);

  std::printf("\nPer-signal breakdown (reference energy and transition "
              "counts):\n\n");
  trace::Table breakdown(
      {"Signal", "Ref energy (pJ)", "Ref transitions", "Coefficient (fJ/t)",
       "L1 transitions", "L2 est. transitions"});
  const auto& acc = gl.ecbus.energy();
  for (const auto& info : bus::kSignalTable) {
    const auto i = static_cast<std::size_t>(info.id);
    breakdown.addRow({std::string(info.name),
                      trace::Table::num(acc.perSignal_fJ[i] / 1e3, 1),
                      std::to_string(acc.transitions[i]),
                      trace::Table::num(table.coeff_fJ(info.id), 1),
                      std::to_string(pm1.transitions(info.id)),
                      trace::Table::num(
                          pm2.estimatedTransitions(info.id), 0)});
  }
  breakdown.print(std::cout);
  std::printf("\nReference baseline (leakage/clock, invisible at TL): "
              "%.2f nJ over %llu cycles\n",
              acc.baseline_fJ / 1e6,
              static_cast<unsigned long long>(acc.cycles));
  std::printf("\nPaper reference: gate-level 100, TL layer 1 = 92.1 "
              "(-7.8%%), TL layer 2 = 114.7 (+14.7%%).\n");
  return 0;
}
