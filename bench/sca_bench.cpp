// Side-channel corpus throughput: attack viability is a trace-count
// problem, so the factory and the analyzer are measured in traces per
// second ("Hardware Accelerated Power Estimation" framing, PAPERS.md).
//
//   Sca_Generate/threads:N — corpus generation rate: boot-once
//                            snapshot, N workers forking measured
//                            encryptions (items = traces written).
//   Sca_Analyze            — CPA rate over a pre-generated corpus:
//                            chunked reads, 256-guess exact-integer
//                            moment accumulation (items = traces
//                            analyzed).
//   Sca_Recovery           — the headline quality numbers as counters:
//                            traces_to_recovery_unprotected (first
//                            rank-0 checkpoint that holds to the end)
//                            and traces_to_recovery_masked (0 = never
//                            recovered at the same corpus size — the
//                            countermeasure's margin).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "sca/analyzer.h"
#include "sca/corpus_runner.h"

namespace {

using namespace sct;

/// SCT_BENCH_TINY=1 shrinks the workload for CI smoke runs.
bool tinyMode() {
  const char* v = std::getenv("SCT_BENCH_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::uint64_t corpusTraces() { return tinyMode() ? 48u : 600u; }

std::string scratchPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

sca::CorpusConfig benchConfig(bool masked) {
  sca::CorpusConfig cfg;
  cfg.traces = corpusTraces();
  cfg.leak.maskRounds = masked;
  return cfg;
}

sca::AttackConfig recoveryAttack() {
  sca::AttackConfig cfg;
  for (std::uint64_t c = 50; c < corpusTraces(); c += 50) {
    cfg.rankCheckpoints.push_back(c);
  }
  return cfg;
}

void Sca_Generate(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const sca::CorpusRunner runner(bench::characterizedTable(),
                                 benchConfig(false));
  const std::string path = scratchPath("sca_bench_gen.sctcorp");
  std::uint64_t traces = 0;
  for (auto _ : state) {
    const sca::GenerateStats stats = runner.generate(path, threads);
    if (stats.traces != corpusTraces()) {
      state.SkipWithError("generation came up short");
    }
    traces += stats.traces;
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(static_cast<std::int64_t>(traces));
}
BENCHMARK(Sca_Generate)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void Sca_Analyze(benchmark::State& state) {
  const std::string path = scratchPath("sca_bench_analyze.sctcorp");
  sca::CorpusRunner(bench::characterizedTable(), benchConfig(false))
      .generate(path, 0);
  sca::AttackConfig cfg;
  cfg.threads = static_cast<unsigned>(state.range(0));
  const sca::DpaAnalyzer analyzer(cfg);
  std::uint64_t traces = 0;
  for (auto _ : state) {
    const sca::AttackResult r = analyzer.analyze(path);
    benchmark::DoNotOptimize(r.finalRank);
    traces += r.traces;
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(static_cast<std::int64_t>(traces));
}
BENCHMARK(Sca_Analyze)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void Sca_Recovery(benchmark::State& state) {
  const std::string unprot = scratchPath("sca_bench_unprot.sctcorp");
  const std::string masked = scratchPath("sca_bench_masked.sctcorp");
  const sca::DpaAnalyzer analyzer(recoveryAttack());
  std::uint64_t recUnprot = 0;
  std::uint64_t recMasked = 0;
  for (auto _ : state) {
    sca::CorpusRunner(bench::characterizedTable(), benchConfig(false))
        .generate(unprot, 0);
    sca::CorpusRunner(bench::characterizedTable(), benchConfig(true))
        .generate(masked, 0);
    recUnprot = sca::tracesToRecovery(analyzer.analyze(unprot));
    recMasked = sca::tracesToRecovery(analyzer.analyze(masked));
  }
  std::filesystem::remove(unprot);
  std::filesystem::remove(masked);
  state.counters["traces_to_recovery_unprotected"] =
      static_cast<double>(recUnprot);
  state.counters["traces_to_recovery_masked"] = static_cast<double>(recMasked);
  state.counters["corpus_traces"] = static_cast<double>(corpusTraces());
}
BENCHMARK(Sca_Recovery)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
  std::printf(
      "Side-channel corpus throughput: items_per_second is traces per\n"
      "second (generated for Sca_Generate, analyzed for Sca_Analyze).\n"
      "Sca_Recovery reports traces-to-recovery as counters; masked = 0\n"
      "means the countermeasure held at the full corpus size.\n\n");
  benchmark::AddCustomContext("sct_build_type", sct::bench::sctBuildType());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
