// Shared pieces of the benchmark harness: the characterized coefficient
// table, the replay platform (the smart-card memory map without the
// core, for feeding recorded traces to each model layer), and the
// evaluation workload — EC-specification verification sequences plus a
// bus trace recorded from firmware running on the full SoC, exactly the
// paper's "assembly language test program [...] traced [...] and used
// as input test sequences for the transaction level models".
#ifndef SCT_BENCH_BENCH_UTIL_H
#define SCT_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "bus/tl2_bus.h"
#include "power/characterizer.h"
#include "power/coeff_table.h"
#include "ref/energy.h"
#include "ref/gl_bus.h"
#include "ref/parasitics.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"
#include "trace/bus_trace.h"
#include "trace/recorder.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct::bench {

/// The benchmark binary's own build type, baked in at compile time.
/// Recorded into the google-benchmark JSON context (key
/// `sct_build_type`) so the guard in scripts/bench_*.sh can validate
/// the binary that actually produced the numbers — the CMake cache of
/// the build directory can lie (stale cache, binary copied between
/// trees); the binary cannot.
inline const char* sctBuildType() {
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  return "release";
#else
  return "debug";
#endif
}

inline const ref::ParasiticDb& parasitics() {
  static const ref::ParasiticDb db = ref::ParasiticDb::makeDefault();
  return db;
}

inline const ref::TransitionEnergyModel& energyModel() {
  static const ref::TransitionEnergyModel model(parasitics(),
                                                ref::ProcessParams{});
  return model;
}

/// Program-like image contents keyed by (size, seed), generated once and
/// memcpy'd into every ReplayPlatform after that. Benchmarks construct a
/// platform per iteration, and regenerating a 256 KiB ROM image with
/// trace::fillRealistic dominated the constructor; the cached copy is
/// byte-identical. Thread-safe (internal lock), so parallel workers can
/// build platforms concurrently.
const std::uint8_t* realisticImage(std::size_t n, std::uint64_t seed);

/// Touch every lazily-built static used by the bench/exploration
/// harness (characterized table, workload traces, cached images) so
/// they are constructed before worker threads spawn. Call once from the
/// main thread before fanning simulations out over a ParallelRunner.
void prewarmSharedWorkloads();

/// Smart-card memory map without the core: a replay target. The SFR
/// region is modeled as plain registers-as-memory so that replays are
/// deterministic across model layers.
template <typename BusT>
struct ReplayPlatform {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  BusT ecbus;
  bus::MemorySlave rom;
  bus::MemorySlave ram;
  bus::MemorySlave eeprom;
  bus::MemorySlave flash;
  bus::MemorySlave sfr;

  template <typename... BusArgs>
  explicit ReplayPlatform(BusArgs&&... busArgs)
      : ecbus(clk, "ecbus", std::forward<BusArgs>(busArgs)...),
        // Program-like ROM/flash contents so read data carries realistic
        // activity: copy-on-write views of cached prototype images
        // (contents identical to a per-platform fillRealistic), so a
        // platform built per benchmark iteration costs no image copy.
        rom("rom", romCtl(),
            realisticImage(static_cast<std::size_t>(soc::memmap::kRomSize),
                           11)),
        ram("ram", ramCtl()),
        eeprom("eeprom", eepromCtl()),
        flash("flash", flashCtl(),
              realisticImage(
                  static_cast<std::size_t>(soc::memmap::kFlashSize), 13)),
        sfr("sfr", sfrCtl()) {
    // Replay memories run at their advertised (specification) timing:
    // the verification sequences are spec examples. The dynamic-stretch
    // behaviour (which layer 2 cannot see) is exercised by the unit
    // tests and by the full-SoC benches instead.
    ecbus.attach(rom);
    ecbus.attach(ram);
    ecbus.attach(eeprom);
    ecbus.attach(flash);
    ecbus.attach(sfr);
  }

  /// Load the firmware image so replayed fetches return real code.
  void loadImage(const soc::AssembledProgram& p) {
    rom.load(p.origin, p.bytes(), p.byteSize());
  }

  /// Replay a trace to completion; returns elapsed cycles.
  std::uint64_t replay(const trace::BusTrace& t) {
    if constexpr (std::is_same_v<BusT, bus::Tl2Bus>) {
      trace::Tl2ReplayMaster master(clk, "master", ecbus, t);
      return master.runToCompletion();
    } else {
      trace::ReplayMaster master(clk, "master", ecbus, ecbus, t);
      return master.runToCompletion();
    }
  }

 private:
  static bus::SlaveControl romCtl() {
    bus::SlaveControl c;
    c.base = soc::memmap::kRomBase;
    c.size = soc::memmap::kRomSize;
    c.canWrite = false;
    return c;
  }
  static bus::SlaveControl ramCtl() {
    bus::SlaveControl c;
    c.base = soc::memmap::kRamBase;
    c.size = soc::memmap::kRamSize;
    return c;
  }
  static bus::SlaveControl eepromCtl() {
    bus::SlaveControl c;
    c.base = soc::memmap::kEepromBase;
    c.size = soc::memmap::kEepromSize;
    c.readWait = 1;
    c.writeWait = 3;
    return c;
  }
  static bus::SlaveControl flashCtl() {
    bus::SlaveControl c;
    c.base = soc::memmap::kFlashBase;
    c.size = soc::memmap::kFlashSize;
    c.readWait = 1;
    c.canWrite = false;
    return c;
  }
  static bus::SlaveControl sfrCtl() {
    bus::SlaveControl c;
    c.base = soc::memmap::kSfrBase;
    c.size = 0x1000;
    c.canExec = false;
    return c;
  }
};

/// Regions of the replay platform usable by random-mix generators.
inline std::vector<trace::TargetRegion> platformRegions() {
  using namespace soc::memmap;
  return {
      {kRomBase, kRomSize, true, false, true},
      {kRamBase, kRamSize, true, true, true},
      {kEepromBase, kEepromSize, true, true, true},
      {kFlashBase, kFlashSize, true, false, true},
  };
}

/// The assembly workload the evaluation traces: computation, flash →
/// RAM copy, EEPROM programming, SFR traffic (TRNG, UART, crypto).
const soc::AssembledProgram& workloadFirmware();

/// Bus trace of workloadFirmware() recorded on the full layer-1 SoC.
const trace::BusTrace& firmwareTrace();

/// Complete evaluation workload for Tables 1 and 2: verification suite
/// + recorded firmware trace + realistic random mix. A BusTrace is
/// plain immutable data once built; sharing it across replay workers by
/// const reference is safe provided it was constructed (first call)
/// before the workers spawn — see prewarmSharedWorkloads().
const trace::BusTrace& evaluationWorkload();

/// Coefficients characterized on the layer-0 platform with the dense
/// training mix (disjoint from the evaluation workload).
const power::SignalEnergyTable& characterizedTable();

} // namespace sct::bench

#endif // SCT_BENCH_BENCH_UTIL_H
