// Intermittent-power sweep throughput: what fork-based exploration
// buys for backup-scheme studies.
//
// A scheme x field grid re-runs the SAME transaction under different
// power conditions, so every variant shares the boot prelude. Two
// benchmark families measure what amortizing it is worth:
//
//   Eh_BootSweep           — the naive baseline: every variant boots
//                            its own platform to the prelude marker
//                            and then runs intermittently. One item =
//                            one variant.
//   Eh_ForkSweep/threads:N — the eh::SweepRunner path: boot ONE parent
//                            to the marker, snapshot, and run every
//                            variant from a restored fork
//                            (ckpt::ForkRunner). threads:1 isolates
//                            the amortization win (scripts/bench_eh.sh
//                            records it as fork_sweep_over_boot_sweep);
//                            higher counts add worker scaling, which
//                            needs free host cores to show — read it
//                            against host_context.num_cpus.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "eh/sweep.h"

namespace {

using namespace sct;

/// SCT_BENCH_TINY=1 shrinks the workload for CI smoke runs.
bool tinyMode() {
  const char* v = std::getenv("SCT_BENCH_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

unsigned blocks() { return tinyMode() ? 4u : 16u; }

const std::vector<eh::SweepVariant>& grid() {
  static const std::vector<eh::SweepVariant> g = [] {
    std::vector<eh::SweepVariant> full = eh::defaultGrid();
    if (tinyMode()) full.resize(4);
    return full;
  }();
  return g;
}

void Eh_BootSweep(benchmark::State& state) {
  const eh::SweepRunner sweep(bench::characterizedTable(), blocks());
  std::uint64_t variants = 0;
  for (auto _ : state) {
    for (const eh::SweepVariant& v : grid()) {
      const eh::SweepOutcome o = sweep.runFromBoot(v);
      if (!o.result.completed && o.result.progressWord == 0) {
        state.SkipWithError("variant made no progress");
      }
      benchmark::DoNotOptimize(o.result.consumed_fJ);
      ++variants;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(variants));
}
BENCHMARK(Eh_BootSweep)->Unit(benchmark::kMillisecond);

void Eh_ForkSweep(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const eh::SweepRunner sweep(bench::characterizedTable(), blocks());
  std::uint64_t variants = 0;
  for (auto _ : state) {
    const std::vector<eh::SweepOutcome> out = sweep.run(grid(), threads);
    for (const eh::SweepOutcome& o : out) {
      if (!o.result.completed && o.result.progressWord == 0) {
        state.SkipWithError("variant made no progress");
      }
      benchmark::DoNotOptimize(o.result.consumed_fJ);
    }
    variants += out.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(variants));
}
BENCHMARK(Eh_ForkSweep)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
  std::printf(
      "Intermittent-power sweep throughput: items_per_second is grid\n"
      "variants per second. Compare Eh_ForkSweep/threads:1 against\n"
      "Eh_BootSweep for the boot-amortization win; higher thread counts\n"
      "add worker scaling (needs free host cores to show).\n\n");
  benchmark::AddCustomContext("sct_build_type", sct::bench::sctBuildType());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
