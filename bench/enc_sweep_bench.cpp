// Codec x workload sweep throughput: what fork-based exploration buys
// for low-power bus-encoding studies.
//
// Every cell of the codec x workload grid replays the SAME boot
// prelude before its measured workload phase, so the sweep is exactly
// the amortizable shape ckpt::ForkRunner exists for. Two benchmark
// families measure what that is worth:
//
//   Enc_BootSweep           — the naive baseline: every variant boots
//                             its own platform and then replays its
//                             workload. One item = one variant.
//   Enc_ForkSweep/threads:N — the enc::SweepRunner path: boot ONE
//                             parent, snapshot, and run every variant
//                             from a restored fork. threads:1 isolates
//                             the amortization win (scripts/bench_enc.sh
//                             records it as fork_sweep_over_boot_sweep);
//                             higher counts add worker scaling, which
//                             needs free host cores to show — read it
//                             against host_context.num_cpus.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "enc/sweep.h"

namespace {

using namespace sct;

/// SCT_BENCH_TINY=1 shrinks the workload for CI smoke runs.
bool tinyMode() {
  const char* v = std::getenv("SCT_BENCH_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

const std::vector<enc::EncVariant>& grid() {
  static const std::vector<enc::EncVariant> g = [] {
    std::vector<enc::EncVariant> full = enc::defaultGrid();
    if (tinyMode()) full.resize(4);
    return full;
  }();
  return g;
}

void Enc_BootSweep(benchmark::State& state) {
  const enc::SweepRunner sweep(bench::characterizedTable());
  std::uint64_t variants = 0;
  for (auto _ : state) {
    for (const enc::EncVariant& v : grid()) {
      const enc::EncOutcome o = sweep.runFromBoot(v);
      if (o.transactions == 0) {
        state.SkipWithError("variant completed no transactions");
      }
      benchmark::DoNotOptimize(o.total_fJ);
      ++variants;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(variants));
}
BENCHMARK(Enc_BootSweep)->Unit(benchmark::kMillisecond);

void Enc_ForkSweep(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const enc::SweepRunner sweep(bench::characterizedTable());
  std::uint64_t variants = 0;
  for (auto _ : state) {
    const std::vector<enc::EncOutcome> out = sweep.run(grid(), threads);
    for (const enc::EncOutcome& o : out) {
      if (o.transactions == 0) {
        state.SkipWithError("variant completed no transactions");
      }
      benchmark::DoNotOptimize(o.total_fJ);
    }
    variants += out.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(variants));
}
BENCHMARK(Enc_ForkSweep)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
  std::printf(
      "Bus-encoding sweep throughput: items_per_second is codec x\n"
      "workload variants per second. Compare Enc_ForkSweep/threads:1\n"
      "against Enc_BootSweep for the boot-amortization win; higher\n"
      "thread counts add worker scaling (needs free host cores to\n"
      "show).\n\n");
  benchmark::AddCustomContext("sct_build_type", sct::bench::sctBuildType());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
