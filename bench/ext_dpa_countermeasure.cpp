// Extension — power-analysis countermeasure evaluation.
//
// The paper's security motivation: "Estimation of power consumption
// over time is important to reduce the probability of a successful
// power analysis attack." This bench uses the layer-1 cycle-accurate
// energy interface to evaluate a classic SPA/DPA countermeasure —
// random dummy bus traffic interleaved with the sensitive operation —
// before any silicon exists.
//
// Method: run crypto firmware with two plaintexts of extreme Hamming
// weights, compute the per-cycle |profile difference| an attacker
// would integrate, then repeat with TRNG-driven dummy accesses mixed
// into the data-loading phase and compare the leakage metrics.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "power/profile.h"
#include "power/tl1_power_model.h"
#include "soc/smartcard.h"
#include "trace/report.h"

namespace {

using namespace sct;

power::PowerProfile runFirmware(const std::string& d0, const std::string& d1,
                                bool masked,
                                const power::SignalEnergyTable& table) {
  soc::SmartCardSoC<bus::Tl1Bus> card{soc::SocConfig{}};
  power::Tl1PowerModel pm(table);
  power::PowerProfile profile(30'000);
  power::Tl1ProfileRecorder rec(pm, profile);
  card.bus().addObserver(pm);
  card.bus().addObserver(rec);

  // The countermeasure: before touching each sensitive data word, the
  // masked variant draws a TRNG word and writes it to a scratch SFR-free
  // RAM location — injecting data-independent bus activity between the
  // key-dependent transfers.
  const std::string dummy = masked ? R"(
    lw   $t6, 0($s2)      # TRNG draw
    sw   $t6, 0x40($s3)   # dummy RAM write
  )"
                                   : "\n";
  const std::string fw = std::string(R"(
    li   $s0, 0x10000400  # crypto
    li   $s2, 0x10000300  # TRNG
    li   $s3, 0x08000100  # scratch RAM
    li   $t0, 0x0F1E2D3C
    sw   $t0, 0($s0)
    li   $t0, 0x4B5A6978
    sw   $t0, 4($s0)
    li   $t0, 0x8796A5B4
    sw   $t0, 8($s0)
    li   $t0, 0xC3D2E1F0
    sw   $t0, 12($s0)
  )") + dummy + R"(
    li   $t0, )" + d0 + R"(
    sw   $t0, 0x10($s0)
  )" + dummy + R"(
    li   $t0, )" + d1 + R"(
    sw   $t0, 0x14($s0)
  )" + dummy + R"(
    addiu $t0, $zero, 1
    sw   $t0, 0x18($s0)
  busy:
    lw   $t1, 0x1C($s0)
    bne  $t1, $zero, busy
    lw   $t2, 0x10($s0)
    lw   $t3, 0x14($s0)
    break
  )";
  card.loadProgram(soc::assemble(fw, soc::memmap::kRomBase));
  card.run();
  return profile;
}

struct Leakage {
  double integratedDiff_fJ = 0.0;
  double peakDiff_fJ = 0.0;
};

Leakage leakageBetween(const power::PowerProfile& a,
                       const power::PowerProfile& b) {
  Leakage l;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d =
        a.samples()[i].energy_fJ - b.samples()[i].energy_fJ;
    const double ad = d > 0 ? d : -d;
    l.integratedDiff_fJ += ad;
    if (ad > l.peakDiff_fJ) l.peakDiff_fJ = ad;
  }
  return l;
}

} // namespace

int main() {
  const auto& table = bench::characterizedTable();

  const char* low0 = "0x00000000";
  const char* low1 = "0x00000001";
  const char* high0 = "0xFFFFFFFF";
  const char* high1 = "0xFFFFFFFE";

  const auto plainA = runFirmware(low0, low1, /*masked=*/false, table);
  const auto plainB = runFirmware(high0, high1, /*masked=*/false, table);
  const auto maskedA = runFirmware(low0, low1, /*masked=*/true, table);
  const auto maskedB = runFirmware(high0, high1, /*masked=*/true, table);

  const Leakage unprotected = leakageBetween(plainA, plainB);
  const Leakage protectedL = leakageBetween(maskedA, maskedB);

  std::printf("Extension: SPA/DPA countermeasure evaluation via the "
              "cycle-accurate layer-1 energy interface\n\n");
  trace::Table t({"Variant", "Cycles", "Integrated |diff| (pJ)",
                  "Peak |diff| (fJ)", "Profile variance (fJ^2)"});
  t.addRow({"unprotected", std::to_string(plainA.size()),
            trace::Table::num(unprotected.integratedDiff_fJ / 1e3, 1),
            trace::Table::num(unprotected.peakDiff_fJ, 0),
            trace::Table::num(plainA.energyVariance_fJ2(), 0)});
  t.addRow({"dummy-traffic masking", std::to_string(maskedA.size()),
            trace::Table::num(protectedL.integratedDiff_fJ / 1e3, 1),
            trace::Table::num(protectedL.peakDiff_fJ, 0),
            trace::Table::num(maskedA.energyVariance_fJ2(), 0)});
  t.print(std::cout);

  std::printf(
      "\nDummy TRNG traffic displaces and dilutes the key-dependent\n"
      "transfers. Note the cost: %zu extra cycles per operation. The\n"
      "point of the paper's cycle-accurate energy interface is that\n"
      "this security/energy/performance trade-off can be quantified\n"
      "at the transaction level, long before a power-analysis lab.\n",
      maskedA.size() - plainA.size());
  return 0;
}
