// Table 3 — "Simulation performance in executed bus transactions per
// second (T/s) for the transaction level models with and without
// energy estimation."
//
// Paper (kT/s): TL layer 1 = 85.3 with / 94.6 without estimation,
// TL layer 2 = 129.6 with / 145.8 without (factors 1 / 1.1 / 1.52 /
// 1.7). The test sequences contain "all combinations between single
// read, single write, burst read, and burst write transactions".
// Absolute rates depend on the host; the factors are the result.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "trace/report.h"

#include "bench_util.h"
#include "hier/fidelity_controller.h"
#include "hier/roi_trigger.h"
#include "power/tl1_power_model.h"
#include "power/tl2_power_model.h"

namespace {

using namespace sct;
using bench::ReplayPlatform;

/// SCT_BENCH_TINY=1 shrinks the workload for CI smoke runs: the point
/// there is "the bench still runs and reports", not a stable rate.
bool tinyMode() {
  const char* v = std::getenv("SCT_BENCH_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::size_t workloadCount() { return tinyMode() ? 200 : 4000; }

const trace::BusTrace& perfWorkload() {
  // All four transaction classes, back-to-back, as in Section 4.2.
  static const trace::BusTrace t = trace::randomMix(
      777, workloadCount(), bench::platformRegions(), trace::MixRatios{});
  return t;
}

const trace::BusTrace& idleGapWorkload() {
  // Same mix with up to 100 idle cycles between issues — firmware-like
  // bursts separated by compute. Not part of the paper's Table 3; it
  // exercises the event-driven TL2 dead-cycle warp, which back-to-back
  // traffic cannot.
  static const trace::BusTrace t = trace::randomMix(
      777, workloadCount(), bench::platformRegions(), trace::MixRatios{},
      100);
  return t;
}

const trace::BusTrace& spaWorkload() {
  // SPA-acquisition shape: short dense bursts into the crypto
  // coprocessor's SFR window separated by long idle stretches (the card
  // waiting for the next command). The bursts are the regions of
  // interest — well under 25% of the simulated cycles; the rest is dead
  // time an event-driven layer warps over but a cycle-true layer must
  // grind through.
  static const trace::BusTrace t = [] {
    trace::BusTrace trace;
    const std::size_t rounds = tinyMode() ? 12 : 240;
    constexpr std::uint64_t kGapCycles = 600;
    std::uint64_t cycle = 10;
    std::uint64_t v = 0x9E3779B97F4A7C15ull;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (bus::Address i = 0; i < 8; ++i) {  // Key + operand loads.
        trace::TraceEntry e;
        e.issueCycle = cycle++;
        e.kind = bus::Kind::Write;
        e.address = soc::memmap::kCryptoBase + 4 * i;
        v ^= v << 13;
        v ^= v >> 7;
        v ^= v << 17;
        e.writeData[0] = static_cast<bus::Word>(v);
        trace.append(e);
      }
      for (bus::Address i = 0; i < 4; ++i) {  // Result reads.
        trace::TraceEntry e;
        e.issueCycle = cycle++;
        e.kind = bus::Kind::Read;
        e.address = soc::memmap::kCryptoBase + 0x20 + 4 * i;
        trace.append(e);
      }
      cycle += kGapCycles;
    }
    return trace;
  }();
  return t;
}

void TL1_WithEstimation(benchmark::State& state) {
  const auto& workload = perfWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl1Bus> platform;
    power::Tl1PowerModel pm(table);
    platform.ecbus.addObserver(pm);
    platform.replay(workload);
    benchmark::DoNotOptimize(pm.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL1_WithoutEstimation(benchmark::State& state) {
  const auto& workload = perfWorkload();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl1Bus> platform;
    platform.replay(workload);
    benchmark::DoNotOptimize(platform.ecbus.stats().transactions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL2_WithEstimation(benchmark::State& state) {
  const auto& workload = perfWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl2Bus> platform;
    power::Tl2PowerModel pm(table);
    platform.ecbus.addObserver(pm);
    platform.replay(workload);
    benchmark::DoNotOptimize(pm.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL2_WithoutEstimation(benchmark::State& state) {
  const auto& workload = perfWorkload();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl2Bus> platform;
    platform.replay(workload);
    benchmark::DoNotOptimize(platform.ecbus.stats().transactions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL2_WithEstimation_IdleGaps(benchmark::State& state) {
  const auto& workload = idleGapWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl2Bus> platform;
    power::Tl2PowerModel pm(table);
    platform.ecbus.addObserver(pm);
    platform.replay(workload);
    benchmark::DoNotOptimize(pm.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL2_WithoutEstimation_IdleGaps(benchmark::State& state) {
  const auto& workload = idleGapWorkload();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl2Bus> platform;
    platform.replay(workload);
    benchmark::DoNotOptimize(platform.ecbus.stats().transactions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

// Pure layer-1 baseline over the SPA workload: the cycle-true bus
// grinds through every idle cycle between the bursts.
void TL1_SpaDpa(benchmark::State& state) {
  const auto& workload = spaWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl1Bus> platform;
    power::Tl1PowerModel pm(table);
    platform.ecbus.addObserver(pm);
    platform.replay(workload);
    benchmark::DoNotOptimize(pm.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

// Adaptive fidelity over the same SPA workload: an address watchpoint
// on the crypto SFR window pulls each burst into cycle-true TL1; the
// idle stretches run event-driven TL2 and warp over the dead cycles.
// The ROI traffic is still estimated with the layer-1 signal model.
void Hybrid_SpaDpa(benchmark::State& state) {
  const auto& workload = spaWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<hier::HybridBus> platform;
    power::Tl1PowerModel pm1(table);
    platform.ecbus.tl1().addObserver(pm1);
    power::Tl2PowerModel pm2(table);
    platform.ecbus.tl2().addObserver(pm2);
    hier::AddressWatchTrigger watch(
        {{soc::memmap::kCryptoBase, soc::memmap::kSfrWindow}},
        /*holdCycles=*/48);
    hier::FidelityController ctrl(platform.clk, platform.ecbus);
    ctrl.addTrigger(watch);
    ctrl.attachPower(pm1, pm2);
    platform.replay(workload);
    ctrl.finalize();
    benchmark::DoNotOptimize(pm1.totalEnergy_fJ() + pm2.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

// The layer-0 reference for context (the paper cites a ~100x TLM
// speed-up over RTL from related work; our layer 0 is itself a fast
// C++ model, so the gap is smaller but the ordering holds).
void Layer0_Reference(benchmark::State& state) {
  const auto& workload = perfWorkload();
  for (auto _ : state) {
    ReplayPlatform<ref::GlBus> platform(bench::energyModel());
    platform.replay(workload);
    benchmark::DoNotOptimize(platform.ecbus.energy().total_fJ);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

BENCHMARK(TL1_WithEstimation);
BENCHMARK(TL1_WithoutEstimation);
BENCHMARK(TL2_WithEstimation);
BENCHMARK(TL2_WithoutEstimation);
BENCHMARK(TL2_WithEstimation_IdleGaps);
BENCHMARK(TL2_WithoutEstimation_IdleGaps);
BENCHMARK(TL1_SpaDpa);
BENCHMARK(Hybrid_SpaDpa);
BENCHMARK(Layer0_Reference);

} // namespace

namespace {

/// Paper-shaped summary: measure each configuration directly and print
/// the Table 3 rows with factors relative to "TL1 with estimation".
void printPaperTable() {
  using Clock = std::chrono::steady_clock;
  const auto& workload = perfWorkload();
  const auto& table = bench::characterizedTable();

  auto rate = [&](auto&& runOnce) {
    // Warm up once, then time enough repetitions for a stable figure.
    runOnce();
    const auto start = Clock::now();
    int reps = 0;
    while (std::chrono::duration<double>(Clock::now() - start).count() <
           0.25) {
      runOnce();
      ++reps;
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    return static_cast<double>(reps) *
           static_cast<double>(workload.size()) / secs;
  };

  const double tl1WithE = rate([&] {
    ReplayPlatform<bus::Tl1Bus> p;
    power::Tl1PowerModel pm(table);
    p.ecbus.addObserver(pm);
    p.replay(workload);
  });
  const double tl1NoE = rate([&] {
    ReplayPlatform<bus::Tl1Bus> p;
    p.replay(workload);
  });
  const double tl2WithE = rate([&] {
    ReplayPlatform<bus::Tl2Bus> p;
    power::Tl2PowerModel pm(table);
    p.ecbus.addObserver(pm);
    p.replay(workload);
  });
  const double tl2NoE = rate([&] {
    ReplayPlatform<bus::Tl2Bus> p;
    p.replay(workload);
  });

  std::printf("\nTable 3 (paper shape): simulation performance in kT/s\n\n");
  trace::Table t({"Model", "with estimation kT/s", "Factor",
                  "without estimation kT/s", "Factor"});
  t.addRow({"TL Layer 1", trace::Table::num(tl1WithE / 1e3, 1), "1",
            trace::Table::num(tl1NoE / 1e3, 1),
            trace::Table::num(tl1NoE / tl1WithE, 2)});
  t.addRow({"TL Layer 2", trace::Table::num(tl2WithE / 1e3, 1),
            trace::Table::num(tl2WithE / tl1WithE, 2),
            trace::Table::num(tl2NoE / 1e3, 1),
            trace::Table::num(tl2NoE / tl1WithE, 2)});
  t.print(std::cout);
  std::printf("\nPaper reference (kT/s): TL1 85.3 / 94.6, TL2 129.6 / "
              "145.8 — factors 1 / 1.1 / 1.52 / 1.7.\n");
}

} // namespace

int main(int argc, char** argv) {
  std::printf(
      "Table 3: simulation performance (transactions per second).\n"
      "items_per_second below is the paper's T/s metric.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The timed paper-shape table is meaningless on a smoke workload.
  if (!tinyMode()) printPaperTable();
  return 0;
}
