// Table 3 — "Simulation performance in executed bus transactions per
// second (T/s) for the transaction level models with and without
// energy estimation."
//
// Paper (kT/s): TL layer 1 = 85.3 with / 94.6 without estimation,
// TL layer 2 = 129.6 with / 145.8 without (factors 1 / 1.1 / 1.52 /
// 1.7). The test sequences contain "all combinations between single
// read, single write, burst read, and burst write transactions".
// Absolute rates depend on the host; the factors are the result.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "trace/report.h"

#include "bench_util.h"
#include "ckpt/fork_runner.h"
#include "hier/fidelity_controller.h"
#include "hier/roi_trigger.h"
#include "power/tl1_power_model.h"
#include "power/tl2_power_model.h"
#include "soc/smartcard.h"

namespace {

using namespace sct;
using bench::ReplayPlatform;

/// SCT_BENCH_TINY=1 shrinks the workload for CI smoke runs: the point
/// there is "the bench still runs and reports", not a stable rate.
bool tinyMode() {
  const char* v = std::getenv("SCT_BENCH_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::size_t workloadCount() { return tinyMode() ? 200 : 4000; }

const trace::BusTrace& perfWorkload() {
  // All four transaction classes, back-to-back, as in Section 4.2.
  static const trace::BusTrace t = trace::randomMix(
      777, workloadCount(), bench::platformRegions(), trace::MixRatios{});
  return t;
}

const trace::BusTrace& idleGapWorkload() {
  // Same mix with up to 100 idle cycles between issues — firmware-like
  // bursts separated by compute. Not part of the paper's Table 3; it
  // exercises the event-driven TL2 dead-cycle warp, which back-to-back
  // traffic cannot.
  static const trace::BusTrace t = trace::randomMix(
      777, workloadCount(), bench::platformRegions(), trace::MixRatios{},
      100);
  return t;
}

const trace::BusTrace& spaWorkload() {
  // SPA-acquisition shape: short dense bursts into the crypto
  // coprocessor's SFR window separated by long idle stretches (the card
  // waiting for the next command). The bursts are the regions of
  // interest — well under 25% of the simulated cycles; the rest is dead
  // time an event-driven layer warps over but a cycle-true layer must
  // grind through.
  static const trace::BusTrace t = [] {
    trace::BusTrace trace;
    const std::size_t rounds = tinyMode() ? 12 : 240;
    constexpr std::uint64_t kGapCycles = 600;
    std::uint64_t cycle = 10;
    std::uint64_t v = 0x9E3779B97F4A7C15ull;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (bus::Address i = 0; i < 8; ++i) {  // Key + operand loads.
        trace::TraceEntry e;
        e.issueCycle = cycle++;
        e.kind = bus::Kind::Write;
        e.address = soc::memmap::kCryptoBase + 4 * i;
        v ^= v << 13;
        v ^= v >> 7;
        v ^= v << 17;
        e.writeData[0] = static_cast<bus::Word>(v);
        trace.append(e);
      }
      for (bus::Address i = 0; i < 4; ++i) {  // Result reads.
        trace::TraceEntry e;
        e.issueCycle = cycle++;
        e.kind = bus::Kind::Read;
        e.address = soc::memmap::kCryptoBase + 0x20 + 4 * i;
        trace.append(e);
      }
      cycle += kGapCycles;
    }
    return trace;
  }();
  return t;
}

void TL1_WithEstimation(benchmark::State& state) {
  const auto& workload = perfWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl1Bus> platform;
    power::Tl1PowerModel pm(table);
    platform.ecbus.addObserver(pm);
    platform.replay(workload);
    benchmark::DoNotOptimize(pm.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL1_WithoutEstimation(benchmark::State& state) {
  const auto& workload = perfWorkload();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl1Bus> platform;
    platform.replay(workload);
    benchmark::DoNotOptimize(platform.ecbus.stats().transactions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL2_WithEstimation(benchmark::State& state) {
  const auto& workload = perfWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl2Bus> platform;
    power::Tl2PowerModel pm(table);
    platform.ecbus.addObserver(pm);
    platform.replay(workload);
    benchmark::DoNotOptimize(pm.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL2_WithoutEstimation(benchmark::State& state) {
  const auto& workload = perfWorkload();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl2Bus> platform;
    platform.replay(workload);
    benchmark::DoNotOptimize(platform.ecbus.stats().transactions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL2_WithEstimation_IdleGaps(benchmark::State& state) {
  const auto& workload = idleGapWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl2Bus> platform;
    power::Tl2PowerModel pm(table);
    platform.ecbus.addObserver(pm);
    platform.replay(workload);
    benchmark::DoNotOptimize(pm.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

void TL2_WithoutEstimation_IdleGaps(benchmark::State& state) {
  const auto& workload = idleGapWorkload();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl2Bus> platform;
    platform.replay(workload);
    benchmark::DoNotOptimize(platform.ecbus.stats().transactions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

// Pure layer-1 baseline over the SPA workload: the cycle-true bus
// grinds through every idle cycle between the bursts.
void TL1_SpaDpa(benchmark::State& state) {
  const auto& workload = spaWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<bus::Tl1Bus> platform;
    power::Tl1PowerModel pm(table);
    platform.ecbus.addObserver(pm);
    platform.replay(workload);
    benchmark::DoNotOptimize(pm.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

// Adaptive fidelity over the same SPA workload: an address watchpoint
// on the crypto SFR window pulls each burst into cycle-true TL1; the
// idle stretches run event-driven TL2 and warp over the dead cycles.
// The ROI traffic is still estimated with the layer-1 signal model.
void Hybrid_SpaDpa(benchmark::State& state) {
  const auto& workload = spaWorkload();
  const auto& table = bench::characterizedTable();
  for (auto _ : state) {
    ReplayPlatform<hier::HybridBus> platform;
    power::Tl1PowerModel pm1(table);
    platform.ecbus.tl1().addObserver(pm1);
    power::Tl2PowerModel pm2(table);
    platform.ecbus.tl2().addObserver(pm2);
    hier::AddressWatchTrigger watch(
        {{soc::memmap::kCryptoBase, soc::memmap::kSfrWindow}},
        /*holdCycles=*/48);
    hier::FidelityController ctrl(platform.clk, platform.ecbus);
    ctrl.addTrigger(watch);
    ctrl.attachPower(pm1, pm2);
    platform.replay(workload);
    ctrl.finalize();
    benchmark::DoNotOptimize(pm1.totalEnergy_fJ() + pm2.totalEnergy_fJ());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

// ---------------------------------------------------------------------------
// Section 4.3 exploration cost: boot-per-job vs boot-once/fork-many.
//
// Every configuration sweep re-simulates the same applet under N
// interface variants, and each job pays the identical SoC boot prefix.
// Boot_Sweep is that naive shape; Fork_Sweep boots once, checkpoints at
// the quiesce point and restores the snapshot into each variant
// (src/ckpt). items_per_second counts completed variants, so the
// Fork_Sweep / Boot_Sweep ratio is the fork speed-up recorded by
// scripts/bench_table3.sh as speedup.fork_over_boot_sweep.

using SweepSoc = soc::SmartCardSoC<bus::Tl1Bus>;

// Boot: a long checksum grind over EEPROM (the shared prefix worth
// amortizing). phase2: the short per-variant measured phase.
constexpr const char* kSweepFirmware = R"(
    li    $s0, 0x0A000000   # EEPROM base
    li    $s2, 0x08000000   # RAM base
    addiu $t2, $zero, 0
    lw    $t6, 0($s2)       # boot iteration count, poked by the harness
  boot:
    lw    $t4, 0($s0)
    addu  $t2, $t2, $t4
    xor   $t2, $t2, $t6
    addiu $s0, $s0, 4
    andi  $t5, $s0, 0xFFC
    bne   $t5, $zero, nowrap
    li    $s0, 0x0A000000
  nowrap:
    addiu $t6, $t6, -1
    bne   $t6, $zero, boot
    sw    $t2, 4($s2)
    break

  phase2:
    li    $s2, 0x08000000
    lw    $t3, 16($s2)      # variant parameter
    addiu $t2, $zero, 0
  ploop:
    addu  $t2, $t2, $t3
    addiu $t3, $t3, -1
    bne   $t3, $zero, ploop
    sw    $t2, 20($s2)
    break
)";

const sct::soc::AssembledProgram& sweepFirmware() {
  static const auto prog =
      sct::soc::assemble(kSweepFirmware, soc::memmap::kRomBase);
  return prog;
}

std::size_t sweepVariants() { return tinyMode() ? 3 : 12; }

void bootSweepSoc(SweepSoc& s) {
  std::vector<std::uint8_t> eeprom(4096);
  for (std::size_t i = 0; i < eeprom.size(); ++i) {
    eeprom[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  s.loadData(soc::memmap::kEepromBase, eeprom.data(), eeprom.size());
  s.loadProgram(sweepFirmware());
  s.ram().pokeWord(soc::memmap::kRamBase,
                   tinyMode() ? 200 : 4000);  // Boot loop length.
  s.run();
}

void runSweepVariant(SweepSoc& s, std::size_t i) {
  s.ram().pokeWord(soc::memmap::kRamBase + 16,
                   static_cast<bus::Word>(8 + i));
  s.cpu().reset(sweepFirmware().label("phase2"));
  s.run();
  benchmark::DoNotOptimize(s.ram().peekWord(soc::memmap::kRamBase + 20));
}

void Boot_Sweep(benchmark::State& state) {
  const std::size_t variants = sweepVariants();
  for (auto _ : state) {
    for (std::size_t i = 0; i < variants; ++i) {
      SweepSoc s{soc::SocConfig{}};
      bootSweepSoc(s);
      runSweepVariant(s, i);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(variants));
}

void Fork_Sweep(benchmark::State& state) {
  const std::size_t variants = sweepVariants();
  for (auto _ : state) {
    ckpt::ForkRunner runner([] {
      SweepSoc parent{soc::SocConfig{}};
      bootSweepSoc(parent);
      return parent.checkpoint();
    });
    // Sequential forks: the ratio to Boot_Sweep isolates the amortized
    // boot, not thread-level parallelism (that is ParallelRunner's
    // business and already benchmarked by sec43_exploration).
    runner.runForks(variants, /*threads=*/1,
                    [](const ckpt::Snapshot& snap, std::size_t i) {
                      SweepSoc s{soc::SocConfig{}};
                      s.restore(snap);
                      runSweepVariant(s, i);
                    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(variants));
}

// ROADMAP item 2: the ISS dispatch loop itself. The same CPU-bound
// firmware (icache-resident ALU/branch kernel with a load/store per
// outer trip) runs once with the decoded-block frontend — the
// production default — and once with plain decode-on-fetch, the seed
// baseline. items_per_second counts executed instructions, and
// scripts/bench_table3.sh records the ratio as
// speedup.decoded_block_over_seed.
constexpr const char* kIssFirmware = R"(
    li    $s2, 0x08000000    # RAM base
    lw    $t9, 0($s2)        # outer trip count, poked by the harness
    addiu $t0, $zero, 0
    addiu $t1, $zero, 1
  outer:
    addiu $t3, $zero, 8
  inner:
    addu  $t0, $t0, $t1
    xor   $t1, $t1, $t0
    sll   $t4, $t0, 3
    srl   $t5, $t1, 2
    or    $t0, $t4, $t5
    slt   $t6, $t0, $t1
    addiu $t3, $t3, -1
    bne   $t3, $zero, inner
    lw    $t7, 4($s2)
    addu  $t0, $t0, $t7
    sw    $t0, 4($s2)
    addiu $t9, $t9, -1
    bne   $t9, $zero, outer
    sw    $t0, 8($s2)
    break
)";

const sct::soc::AssembledProgram& issFirmware() {
  static const auto prog =
      sct::soc::assemble(kIssFirmware, soc::memmap::kRomBase);
  return prog;
}

void runIssBench(benchmark::State& state, bool decodedBlocks) {
  std::int64_t instructions = 0;
  for (auto _ : state) {
    soc::SocConfig cfg;
    cfg.cpu.decodedBlockCache = decodedBlocks;
    SweepSoc s{cfg};
    s.loadProgram(issFirmware());
    s.ram().pokeWord(soc::memmap::kRamBase, tinyMode() ? 100 : 3000);
    s.run();
    benchmark::DoNotOptimize(s.ram().peekWord(soc::memmap::kRamBase + 8));
    instructions += static_cast<std::int64_t>(s.cpu().stats().instructions);
  }
  state.SetItemsProcessed(instructions);
}

void ISS_DecodedBlocks(benchmark::State& state) {
  runIssBench(state, /*decodedBlocks=*/true);
}

void ISS_DecodeOnFetch(benchmark::State& state) {
  runIssBench(state, /*decodedBlocks=*/false);
}

// The layer-0 reference for context (the paper cites a ~100x TLM
// speed-up over RTL from related work; our layer 0 is itself a fast
// C++ model, so the gap is smaller but the ordering holds).
void Layer0_Reference(benchmark::State& state) {
  const auto& workload = perfWorkload();
  for (auto _ : state) {
    ReplayPlatform<ref::GlBus> platform(bench::energyModel());
    platform.replay(workload);
    benchmark::DoNotOptimize(platform.ecbus.energy().total_fJ);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
}

BENCHMARK(TL1_WithEstimation);
BENCHMARK(TL1_WithoutEstimation);
BENCHMARK(TL2_WithEstimation);
BENCHMARK(TL2_WithoutEstimation);
BENCHMARK(TL2_WithEstimation_IdleGaps);
BENCHMARK(TL2_WithoutEstimation_IdleGaps);
BENCHMARK(TL1_SpaDpa);
BENCHMARK(Hybrid_SpaDpa);
BENCHMARK(Boot_Sweep);
BENCHMARK(Fork_Sweep);
BENCHMARK(ISS_DecodedBlocks);
BENCHMARK(ISS_DecodeOnFetch);
BENCHMARK(Layer0_Reference);

} // namespace

namespace {

/// Paper-shaped summary: measure each configuration directly and print
/// the Table 3 rows with factors relative to "TL1 with estimation".
void printPaperTable() {
  using Clock = std::chrono::steady_clock;
  const auto& workload = perfWorkload();
  const auto& table = bench::characterizedTable();

  auto rate = [&](auto&& runOnce) {
    // Warm up once, then time enough repetitions for a stable figure.
    runOnce();
    const auto start = Clock::now();
    int reps = 0;
    while (std::chrono::duration<double>(Clock::now() - start).count() <
           0.25) {
      runOnce();
      ++reps;
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    return static_cast<double>(reps) *
           static_cast<double>(workload.size()) / secs;
  };

  const double tl1WithE = rate([&] {
    ReplayPlatform<bus::Tl1Bus> p;
    power::Tl1PowerModel pm(table);
    p.ecbus.addObserver(pm);
    p.replay(workload);
  });
  const double tl1NoE = rate([&] {
    ReplayPlatform<bus::Tl1Bus> p;
    p.replay(workload);
  });
  const double tl2WithE = rate([&] {
    ReplayPlatform<bus::Tl2Bus> p;
    power::Tl2PowerModel pm(table);
    p.ecbus.addObserver(pm);
    p.replay(workload);
  });
  const double tl2NoE = rate([&] {
    ReplayPlatform<bus::Tl2Bus> p;
    p.replay(workload);
  });

  std::printf("\nTable 3 (paper shape): simulation performance in kT/s\n\n");
  trace::Table t({"Model", "with estimation kT/s", "Factor",
                  "without estimation kT/s", "Factor"});
  t.addRow({"TL Layer 1", trace::Table::num(tl1WithE / 1e3, 1), "1",
            trace::Table::num(tl1NoE / 1e3, 1),
            trace::Table::num(tl1NoE / tl1WithE, 2)});
  t.addRow({"TL Layer 2", trace::Table::num(tl2WithE / 1e3, 1),
            trace::Table::num(tl2WithE / tl1WithE, 2),
            trace::Table::num(tl2NoE / 1e3, 1),
            trace::Table::num(tl2NoE / tl1WithE, 2)});
  t.print(std::cout);
  std::printf("\nPaper reference (kT/s): TL1 85.3 / 94.6, TL2 129.6 / "
              "145.8 — factors 1 / 1.1 / 1.52 / 1.7.\n");
}

} // namespace

int main(int argc, char** argv) {
  std::printf(
      "Table 3: simulation performance (transactions per second).\n"
      "items_per_second below is the paper's T/s metric.\n\n");
  benchmark::AddCustomContext("sct_build_type", sct::bench::sctBuildType());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The timed paper-shape table is meaningless on a smoke workload.
  if (!tinyMode()) printPaperTable();
  return 0;
}
