// Ablation — supply voltage.
//
// Smart cards of the paper's era operated at 5 V / 3 V / 1.8 V supply
// classes (ISO 7816 class A/B/C). Switching energy scales with Vdd²;
// this ablation recharacterizes the platform at each voltage and
// replays the same workload, confirming that the whole estimation
// stack (reference model → characterization → layer-1 estimate)
// preserves the quadratic law and the relative estimation error.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "power/characterizer.h"
#include "power/tl1_power_model.h"
#include "sim/parallel_runner.h"
#include "trace/report.h"

int main() {
  using namespace sct;

  const auto workload = trace::randomMixStyled(
      2024, 400, bench::platformRegions(), trace::MixRatios{}, 1,
      trace::DataStyle::Realistic);
  const auto regions = bench::platformRegions();
  const auto training = trace::characterizationTrace(1234, 1000, regions);

  std::printf("Ablation: supply voltage (ISO 7816 class A/B/C)\n"
              "(fixed 400-transaction workload; coefficients "
              "recharacterized per voltage)\n\n");
  trace::Table t({"Vdd (V)", "Ref energy (pJ)", "Relative", "L1 est (pJ)",
                  "L1 error"});

  // Each voltage point (characterize → reference replay → estimate) is
  // an independent simulation; fan them out and report in sweep order.
  const double vdds[] = {5.0, 3.0, 1.8};
  struct Point {
    double refE = 0.0;
    double est = 0.0;
  };
  Point points[3];
  sim::ParallelRunner::runIndexed(3, 0, [&](std::size_t i) {
    const double vdd = vdds[i];
    ref::ProcessParams params;
    params.vdd = vdd;
    // Leakage scales roughly linearly with Vdd; keep the default's
    // proportionality to the 1.8 V setting.
    params.baselinePerCycle_fJ = 300.0 * (vdd / 1.8);
    const ref::TransitionEnergyModel model(bench::parasitics(), params);

    // Characterize at this voltage.
    bench::ReplayPlatform<ref::GlBus> trainer(model);
    power::Characterizer ch(model);
    trainer.ecbus.addFrameListener(ch);
    trainer.replay(training);
    const power::SignalEnergyTable table = ch.buildTable();

    // Reference + estimate on the evaluation workload.
    bench::ReplayPlatform<ref::GlBus> gl(model);
    gl.replay(workload);
    points[i].refE = gl.ecbus.energy().total_fJ;

    bench::ReplayPlatform<bus::Tl1Bus> tl1;
    power::Tl1PowerModel pm(table);
    tl1.ecbus.addObserver(pm);
    tl1.replay(workload);
    points[i].est = pm.totalEnergy_fJ();
  });

  const double refAt5V = points[0].refE;
  for (std::size_t i = 0; i < 3; ++i) {
    t.addRow({trace::Table::num(vdds[i], 1),
              trace::Table::num(points[i].refE / 1e3, 1),
              trace::Table::pct(points[i].refE / refAt5V, 1),
              trace::Table::num(points[i].est / 1e3, 1),
              trace::Table::pct((points[i].est - points[i].refE) /
                                    points[i].refE, 1, true)});
  }
  t.print(std::cout);

  std::printf(
      "\nSwitching energy follows Vdd^2 (3 V = %.0f%% of 5 V expected "
      "36%%,\n1.8 V expected 13%%). The layer-1 error shrinks toward "
      "zero at high\nvoltage: the unestimatable baseline grows only "
      "linearly with Vdd\nwhile the switching the coefficients capture "
      "grows quadratically.\n",
      100.0 * (3.0 * 3.0) / (5.0 * 5.0));
  return 0;
}
