// Card-farm serving throughput: what the sct_serve daemon buys.
//
// The daemon's speed claim is restore-recycle: boot ONE card to a
// golden quiesce snapshot, then serve every session by restoring that
// snapshot into a pooled instance instead of booting a card per
// session. Three benchmark families measure it:
//
//   Serve_BootPerSession   — the naive baseline: construct a full TL1
//                            platform and run one auth session from
//                            reset (the applet boots inside the first
//                            APDU exchange). One item = one session.
//   Serve_RestoreRecycle   — the daemon's path: one persistent
//                            instance, recycle from the golden
//                            snapshot + one auth session per
//                            iteration. The recycle/boot rate ratio is
//                            the headline (scripts/bench_serve.sh
//                            records it as restore_recycle_over_
//                            boot_per_session).
//   Serve_Throughput/workers:N — end-to-end engine rate in sessions
//                            per second (items_per_second) with a
//                            work-stealing pool of N workers serving a
//                            mixed-scenario batch. Real-time based:
//                            the sessions run on pool threads, not the
//                            benchmark thread. Scaling beyond 1 worker
//                            requires free host cores — the recorded
//                            JSON carries num_cpus so single-core
//                            hosts are not misread as a scaling
//                            regression.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serve/card_instance.h"
#include "serve/daemon.h"
#include "serve/scenario.h"

namespace {

using namespace sct;

/// SCT_BENCH_TINY=1 shrinks the workload for CI smoke runs.
bool tinyMode() {
  const char* v = std::getenv("SCT_BENCH_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

const std::vector<serve::Step>& authSteps() {
  static const std::vector<serve::Step> steps =
      serve::buildScenario("auth", 7);
  return steps;
}

const ckpt::Snapshot& goldenSnapshot() {
  static const ckpt::Snapshot golden =
      serve::CardInstance::bootGolden(bench::characterizedTable());
  return golden;
}

/// Mixed-scenario job batch (the same shape the engine determinism
/// test serves); one drain of this batch per throughput iteration.
std::vector<serve::Job> jobBatch() {
  std::vector<serve::Job> jobs;
  const char* names[] = {"auth", "wrong_pin", "challenge", "mixed"};
  const int count = tinyMode() ? 8 : 64;
  for (int i = 0; i < count; ++i) {
    serve::Job j;
    j.id = "b" + std::to_string(i);
    j.scenario = names[i % 4];
    j.seed = static_cast<std::uint64_t>(1000 + i);
    jobs.push_back(j);
  }
  return jobs;
}

void Serve_BootPerSession(benchmark::State& state) {
  const power::SignalEnergyTable& table = bench::characterizedTable();
  for (auto _ : state) {
    serve::CardInstance card(table);
    serve::SessionOutcome o = card.runSession(authSteps());
    if (!o.ok) state.SkipWithError("session failed");
    benchmark::DoNotOptimize(o.energy.total);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Serve_BootPerSession);

void Serve_RestoreRecycle(benchmark::State& state) {
  const power::SignalEnergyTable& table = bench::characterizedTable();
  const ckpt::Snapshot& golden = goldenSnapshot();
  serve::CardInstance card(table);
  for (auto _ : state) {
    card.recycle(golden);
    serve::SessionOutcome o = card.runSession(authSteps());
    if (!o.ok) state.SkipWithError("session failed");
    benchmark::DoNotOptimize(o.energy.total);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Serve_RestoreRecycle);

void Serve_Throughput(benchmark::State& state) {
  const unsigned workers = static_cast<unsigned>(state.range(0));
  serve::ServeEngine engine(bench::characterizedTable(), workers);
  const std::vector<serve::Job> jobs = jobBatch();
  std::uint64_t sessions = 0;
  const serve::ServeEngine::Sink sink = [](const std::string& line) {
    benchmark::DoNotOptimize(line.size());
  };
  for (auto _ : state) {
    for (const serve::Job& j : jobs) engine.submitJob(j, sink);
    engine.drain();
    sessions += jobs.size();
  }
  if (engine.errors() != 0) state.SkipWithError("engine reported errors");
  state.SetItemsProcessed(static_cast<std::int64_t>(sessions));
}
BENCHMARK(Serve_Throughput)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
  std::printf(
      "Card-farm serving throughput: items_per_second is sessions per\n"
      "second. Compare Serve_RestoreRecycle against Serve_BootPerSession\n"
      "for the snapshot-recycle win; Serve_Throughput/workers:N for\n"
      "dispatch scaling (needs free host cores to show).\n\n");
  benchmark::AddCustomContext("sct_build_type", sct::bench::sctBuildType());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
