// Ablation — bus width and address coding.
//
// The paper's related-work section notes that "most of the proposed bus
// optimization techniques are based on varying the bus width and bus
// coding scheme" (Benini et al.). This ablation quantifies both on our
// platform:
//  (a) address coding — binary vs Gray code on the 36-bit address bus
//      for a sequential instruction-fetch stream, evaluated analytically
//      with the characterized per-transition coefficient;
//  (b) data-path width — moving a 256-byte buffer over the bus as
//      byte / half-word / word / burst transactions, measured on the
//      layer-0 reference.
#include <array>
#include <bit>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "trace/report.h"

#if defined(SCT_HAVE_ENC)
#include "enc/codecs.h"
#include "power/tl1_power_model.h"
#endif

namespace {

std::uint64_t toGray(std::uint64_t v) { return v ^ (v >> 1); }

} // namespace

int main() {
  using namespace sct;

  const auto& table = bench::characterizedTable();
  const double coeffA = table.coeff_fJ(bus::SignalId::EB_A);

  // --- (a) Address coding on a sequential fetch stream ----------------
  std::printf("Ablation (a): address bus coding, sequential fetch "
              "stream of 1024 lines\n\n");
  std::uint64_t binaryTransitions = 0;
  std::uint64_t grayTransitions = 0;
  std::uint64_t prevBin = 0;
  std::uint64_t prevGray = 0;
  for (std::uint64_t i = 0; i < 1024; ++i) {
    const std::uint64_t addr = 0x1000 + i * 16;  // Line-sized steps.
    const std::uint64_t gray = toGray(addr >> 4) << 4;
    binaryTransitions += std::popcount(prevBin ^ addr);
    grayTransitions += std::popcount(prevGray ^ gray);
    prevBin = addr;
    prevGray = gray;
  }
  trace::Table coding({"Coding", "EB_A transitions", "Energy (pJ)",
                       "Relative"});
  const double eBin = static_cast<double>(binaryTransitions) * coeffA;
  const double eGray = static_cast<double>(grayTransitions) * coeffA;
  coding.addRow({"binary", std::to_string(binaryTransitions),
                 trace::Table::num(eBin / 1e3, 1), "100.0%"});
  coding.addRow({"gray", std::to_string(grayTransitions),
                 trace::Table::num(eGray / 1e3, 1),
                 trace::Table::pct(eGray / eBin, 1)});
  coding.print(std::cout);
  std::printf("\nGray coding toggles exactly one address bit per "
              "sequential step — the classic low-power bus encoding "
              "result.\n\n");

#if defined(SCT_HAVE_ENC)
  // --- (a') Cross-check: analytic counts vs the in-simulator codec ----
  // The counts above are pencil-and-paper; the enc subsystem drives the
  // same encoding through the real TL1 bus. Replaying the identical
  // fetch stream with (and without) the gray address codec installed
  // must reproduce the analytic EB_A transition counts EXACTLY — any
  // drift means the simulator's wire model and the paper math have
  // diverged, and the ablation's conclusions are void.
  {
    const auto fetchStream = [] {
      trace::BusTrace t;
      for (std::uint64_t i = 0; i < 1024; ++i) {
        trace::TraceEntry e;
        e.kind = bus::Kind::InstrFetch;
        e.address = 0x1000 + i * 16;  // Same stream as the table above.
        t.append(e);
      }
      return t;
    }();
    const auto simulatedEbA = [&](sct::bus::BusCodec* codec) {
      bench::ReplayPlatform<bus::Tl1Bus> platform;
      power::Tl1PowerModel pm(table);
      platform.ecbus.addObserver(pm);
      if (codec != nullptr) platform.ecbus.setCodec(codec);
      platform.replay(fetchStream);
      return pm.transitions(bus::SignalId::EB_A);
    };
    const std::uint64_t simBinary = simulatedEbA(nullptr);
    // Granularity 4 = the 16-byte fetch-line stride of the analytic
    // model above.
    enc::GrayAddressCodec gray(4);
    const std::uint64_t simGray = simulatedEbA(&gray);
    std::printf("Cross-check against the in-simulator codec (TL1 bus, "
                "enc::GrayAddressCodec):\n"
                "  binary: analytic %llu, simulated %llu\n"
                "  gray:   analytic %llu, simulated %llu\n\n",
                static_cast<unsigned long long>(binaryTransitions),
                static_cast<unsigned long long>(simBinary),
                static_cast<unsigned long long>(grayTransitions),
                static_cast<unsigned long long>(simGray));
    if (simBinary != binaryTransitions || simGray != grayTransitions) {
      std::fprintf(stderr, "FAIL: analytic and simulated EB_A transition "
                           "counts disagree\n");
      return 1;
    }
  }
#endif

  // --- (b) Data-path width for a 256-byte transfer --------------------
  std::printf("Ablation (b): moving 256 bytes RAM -> RAM, by access "
              "width\n\n");
  struct Variant {
    const char* name;
    bus::AccessSize size;
    std::uint8_t beats;
  };
  const Variant variants[] = {
      {"byte accesses", bus::AccessSize::Byte, 1},
      {"half-word accesses", bus::AccessSize::Half, 1},
      {"word accesses", bus::AccessSize::Word, 1},
      {"4-beat bursts", bus::AccessSize::Word, 4},
  };

  // One shared 256-byte payload so every variant moves identical data.
  std::array<bus::Word, 64> payload{};
  trace::fillRealistic(reinterpret_cast<std::uint8_t*>(payload.data()),
                       payload.size() * 4, 31);

  trace::Table width({"Transfer style", "Transactions", "Cycles",
                      "Energy (pJ)", "pJ/byte"});
  for (const Variant& v : variants) {
    bench::ReplayPlatform<ref::GlBus> platform(bench::energyModel());
    trace::BusTrace t;
    const unsigned step = v.beats > 1 ? 16 : static_cast<unsigned>(v.size);
    for (unsigned off = 0; off < 256; off += step) {
      trace::TraceEntry rd;
      rd.kind = bus::Kind::Read;
      rd.address = soc::memmap::kRamBase + 0x400 + off;
      rd.size = v.size;
      rd.beats = v.beats;
      t.append(rd);
      trace::TraceEntry wr;
      wr.kind = bus::Kind::Write;
      wr.address = soc::memmap::kRamBase + 0x800 + off;
      wr.size = v.size;
      wr.beats = v.beats;
      for (unsigned b = 0; b < v.beats; ++b) {
        wr.writeData[b] = payload[(off / 4 + b) % payload.size()];
      }
      t.append(wr);
    }
    const std::uint64_t cycles = platform.replay(t);
    width.addRow({v.name, std::to_string(t.size()),
                  std::to_string(cycles),
                  trace::Table::num(platform.ecbus.energy().total_fJ / 1e3,
                                    1),
                  trace::Table::num(
                      platform.ecbus.energy().total_fJ / 1e3 / 256.0, 2)});
  }
  width.print(std::cout);
  std::printf("\nWider transfers amortize address/control activity and "
              "baseline energy over more bytes; bursts add streaming on "
              "top — the bus-width lever of the related work.\n");
  return 0;
}
