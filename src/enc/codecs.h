// Concrete low-power bus codecs (ROADMAP item 4).
//
// Implementations of the bus::BusCodec interface, covering the codec
// families of the low-power encoding literature the repo tracks in
// PAPERS.md ("Optimal Memoryless Encoding for Low Power Off-Chip Data
// Buses"; Stan/Burleson's bus-invert):
//
//  * IdentityCodec      — plain binary wires; the do-nothing reference
//                         every equivalence test pins against.
//  * BusInvertCodec     — Stan/Burleson bus-invert per data channel: if
//                         more than half of the 32 data wires would
//                         toggle against the previously driven word,
//                         drive the complement and raise the channel's
//                         EB_Inv line. Stateful (remembers the last
//                         driven word per channel), so it checkpoints.
//  * GrayAddressCodec   — gray-codes the address bus above a
//                         configurable granularity; sequential streams
//                         (instruction fetch, memcpy bursts) then move
//                         exactly one EB_A wire per stride step.
//  * LimitedWeightCodec — memoryless limited-weight code: any data word
//                         with more than 16 ones is driven inverted, so
//                         every codeword has weight <= 16. A
//                         self-inverse, history-free map — the simplest
//                         member of the memoryless family.
//
// All codecs are exactly invertible; the bus routes slave decoding and
// master read results through decode(encode(x)), so the functional
// suites hold with any codec installed.
#ifndef SCT_ENC_CODECS_H
#define SCT_ENC_CODECS_H

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bus/bus_codec.h"
#include "bus/ec_types.h"
#include "ckpt/state_io.h"

namespace sct::enc {

/// Reflected binary (gray) code of `v`, and its inverse. toGray is
/// GF(2)-linear — toGray(x) ^ toGray(y) == toGray(x ^ y) — which is why
/// a +1 step moves exactly one wire and a +2^k step exactly two.
constexpr std::uint64_t toGray(std::uint64_t v) { return v ^ (v >> 1); }
constexpr std::uint64_t fromGray(std::uint64_t g) {
  std::uint64_t v = g;
  v ^= v >> 1;
  v ^= v >> 2;
  v ^= v >> 4;
  v ^= v >> 8;
  v ^= v >> 16;
  v ^= v >> 32;
  return v;
}

class IdentityCodec final : public bus::BusCodec {
 public:
  std::string_view name() const override { return "identity"; }
};

/// Stan/Burleson bus-invert, one independent history per data channel
/// (the EC read and write buses are separate wire sets).
class BusInvertCodec final : public bus::BusCodec {
 public:
  std::string_view name() const override { return "bus-invert"; }

  bus::EncodedWord encodeWrite(bus::Word payload) const override {
    return encodeAgainst(payload, lastWrite_);
  }
  void commitWrite(const bus::EncodedWord& e) override { lastWrite_ = e.wire; }
  bus::Word decodeWrite(const bus::EncodedWord& e) const override {
    return e.invert ? ~e.wire : e.wire;
  }

  bus::EncodedWord encodeRead(bus::Word payload) const override {
    return encodeAgainst(payload, lastRead_);
  }
  void commitRead(const bus::EncodedWord& e) override { lastRead_ = e.wire; }
  bus::Word decodeRead(const bus::EncodedWord& e) const override {
    return e.invert ? ~e.wire : e.wire;
  }

  bus::Word lastWrite() const { return lastWrite_; }
  bus::Word lastRead() const { return lastRead_; }

  static constexpr std::uint32_t kCkptVersion = 1;
  std::uint32_t ckptVersion() const override { return kCkptVersion; }
  void saveState(ckpt::StateWriter& w) const override {
    w.u32(lastWrite_);
    w.u32(lastRead_);
  }
  void loadState(ckpt::StateReader& r) override {
    lastWrite_ = r.u32();
    lastRead_ = r.u32();
  }

 private:
  static bus::EncodedWord encodeAgainst(bus::Word payload, bus::Word last) {
    // Invert when strictly more than half of the 32 wires would
    // toggle; at exactly half, plain binary wins (the EB_Inv line
    // itself may have to toggle, so ties must not invert).
    const unsigned toggles =
        static_cast<unsigned>(std::popcount(payload ^ last));
    if (toggles > 16) {
      return {static_cast<bus::Word>(~payload), true};
    }
    return {payload, false};
  }

  bus::Word lastWrite_ = 0;  ///< Word last driven on EB_WData.
  bus::Word lastRead_ = 0;   ///< Word last driven on EB_RData.
};

/// Gray-coded address bus. The low `granularityLog2` bits pass through
/// unchanged and only the line index above them is gray-coded:
/// sequential accesses with a 2^granularityLog2-byte stride then toggle
/// exactly ONE EB_A wire per step (full-address gray would toggle two,
/// because toGray(x << g) spreads a +1 line step over two bits).
/// Memoryless, address-phase only — the data buses pass through.
class GrayAddressCodec final : public bus::BusCodec {
 public:
  explicit GrayAddressCodec(unsigned granularityLog2)
      : g_(granularityLog2),
        mask_((std::uint64_t{1} << granularityLog2) - 1) {}

  std::string_view name() const override { return "gray-addr"; }

  std::uint64_t encodeAddress(bus::Address a) const override {
    return ((toGray(a >> g_) << g_) | (a & mask_)) & bus::kAddressMask;
  }
  bus::Address decodeAddress(std::uint64_t wire) const override {
    return ((fromGray(wire >> g_) << g_) | (wire & mask_)) &
           bus::kAddressMask;
  }

  unsigned granularityLog2() const { return g_; }

 private:
  unsigned g_;
  std::uint64_t mask_;
};

/// Memoryless limited-weight code on both data channels: words heavier
/// than 16 ones are driven inverted (EB_Inv raised), bounding every
/// codeword's weight at 16. History-free and self-inverse.
class LimitedWeightCodec final : public bus::BusCodec {
 public:
  std::string_view name() const override { return "limited-weight"; }

  bus::EncodedWord encodeWrite(bus::Word payload) const override {
    return encode(payload);
  }
  bus::Word decodeWrite(const bus::EncodedWord& e) const override {
    return e.invert ? ~e.wire : e.wire;
  }
  bus::EncodedWord encodeRead(bus::Word payload) const override {
    return encode(payload);
  }
  bus::Word decodeRead(const bus::EncodedWord& e) const override {
    return e.invert ? ~e.wire : e.wire;
  }

 private:
  static bus::EncodedWord encode(bus::Word payload) {
    if (std::popcount(payload) > 16) {
      return {static_cast<bus::Word>(~payload), true};
    }
    return {payload, false};
  }
};

/// The codec names the sweep grid iterates, in grid order.
const std::vector<std::string>& codecNames();

/// Factory over codecNames(). "gray-addr" uses word granularity
/// (granularityLog2 = 2), the natural choice for a 32-bit data bus.
/// Throws std::invalid_argument on unknown names.
std::unique_ptr<bus::BusCodec> makeCodec(const std::string& name);

} // namespace sct::enc

#endif // SCT_ENC_CODECS_H
