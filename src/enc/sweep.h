// Codec × workload exploration over ckpt::ForkRunner.
//
// Every variant of a codec sweep executes the identical boot prelude
// (firmware-style fetch/read warm-up over ROM and RAM) before the
// measured workload phase — the amortizable prefix ForkRunner exists
// for. One parent platform replays the boot trace to completion at a
// quiesce point and is snapshotted; each variant restores that snapshot
// into a fresh, identically constructed platform, installs its codec on
// the bus, and replays only its workload trace. Outcomes are energy
// deltas between the post-boot and post-workload obs-ledger snapshots
// (bit-stable: the restored start state is bit-identical on every
// worker), so the sweep output is bit-identical at any worker count.
//
// The clock checkpoint demands an exactly matching handler set between
// save and restore, so the replay master is constructed on both sides
// (bus process first, master second) but deliberately NOT checkpointed:
// it is per-variant configuration — each variant's master is built over
// its own workload trace, and workload traces issue back-to-back, so a
// restored clock at boot-end cycle N replays them identically to the
// boot-per-variant reference (runFromBoot, the equivalence baseline).
#ifndef SCT_ENC_SWEEP_H
#define SCT_ENC_SWEEP_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/fork_runner.h"
#include "enc/codecs.h"
#include "power/coeff_table.h"
#include "trace/bus_trace.h"

namespace sct::enc {

/// One cell of the sweep grid.
struct EncVariant {
  std::string codec;     ///< A codecNames() entry.
  std::string workload;  ///< A workloadNames() entry.
};

/// Energy delta of one variant's workload phase (boot excluded).
struct EncOutcome {
  EncVariant variant;
  std::uint64_t transactions = 0;
  std::uint64_t cycles = 0;  ///< Workload-phase bus cycles.
  double total_fJ = 0.0;     ///< Whole-interface energy (model total).
  double perTxn_fJ = 0.0;    ///< total_fJ / transactions.
  /// Ledger splits (SCT_OBS builds; zero with the hooks compiled out):
  double dataBus_fJ = 0.0;  ///< EB_RData + EB_WData + EB_Inv.
  double addrBus_fJ = 0.0;  ///< EB_A.
  /// Transition splits (always live — model counters):
  std::uint64_t dataTransitions = 0;  ///< EB_RData + EB_WData + EB_Inv.
  std::uint64_t addrTransitions = 0;  ///< EB_A.
};

/// The workload names the sweep grid iterates: "crypto" (write-heavy
/// random data — bus-invert's home turf), "jcvm" (fetch-heavy
/// program-like traffic), "memcpy" (sequential burst copies — gray
/// addressing's home turf).
const std::vector<std::string>& workloadNames();

/// The default codec × workload grid (every combination).
std::vector<EncVariant> defaultGrid();

class SweepRunner {
 public:
  /// Replays the boot prelude on the calling thread and keeps the
  /// snapshot; workload traces are generated eagerly here too, so
  /// run() workers only read shared immutable state. The coefficient
  /// table is copied — passing a temporary is fine.
  explicit SweepRunner(const power::SignalEnergyTable& table);

  /// Run every grid cell. threads follows ForkRunner semantics
  /// (0 = default pool, 1 = sequential reference order).
  std::vector<EncOutcome> run(const std::vector<EncVariant>& grid,
                              unsigned threads) const;

  /// The boot-per-variant reference: one platform boots, then a second
  /// master replays the workload with the codec installed. Bit-identical
  /// outcomes to run() (restore-equivalence); the bench baseline and
  /// the equivalence test.
  EncOutcome runFromBoot(const EncVariant& v) const;

  const ckpt::Snapshot& snapshot() const { return fork_.snapshot(); }
  const trace::BusTrace& workload(const std::string& name) const;

 private:
  EncOutcome runVariant(const ckpt::Snapshot& snap,
                        const EncVariant& v) const;

  power::SignalEnergyTable table_;
  trace::BusTrace bootTrace_;
  std::vector<std::pair<std::string, trace::BusTrace>> workloads_;
  ckpt::ForkRunner fork_;
};

} // namespace sct::enc

#endif // SCT_ENC_SWEEP_H
