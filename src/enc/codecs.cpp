#include "enc/codecs.h"

#include <stdexcept>

namespace sct::enc {

const std::vector<std::string>& codecNames() {
  static const std::vector<std::string> names{
      "identity", "bus-invert", "gray-addr", "limited-weight"};
  return names;
}

std::unique_ptr<bus::BusCodec> makeCodec(const std::string& name) {
  if (name == "identity") {
    return std::make_unique<IdentityCodec>();
  }
  if (name == "bus-invert") {
    return std::make_unique<BusInvertCodec>();
  }
  if (name == "gray-addr") {
    return std::make_unique<GrayAddressCodec>(/*granularityLog2=*/2);
  }
  if (name == "limited-weight") {
    return std::make_unique<LimitedWeightCodec>();
  }
  throw std::invalid_argument("unknown bus codec: " + name);
}

} // namespace sct::enc
