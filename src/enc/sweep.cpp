#include "enc/sweep.h"

#include <array>
#include <stdexcept>

#include "bus/memory_slave.h"
#include "bus/tl1_bus.h"
#include "ckpt/checkpoint.h"
#include "obs/ledger.h"
#include "power/tl1_power_model.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/random.h"
#include "trace/replay_master.h"
#include "trace/workloads.h"

namespace sct::enc {
namespace {

// Sweep-private memory map (independent of the soc platform: the sweep
// measures the bus + codec, not the card firmware).
constexpr bus::Address kRomBase = 0x0000'0000;
constexpr bus::Address kRomSize = 64 * 1024;
constexpr bus::Address kRamBase = 0x0010'0000;
constexpr bus::Address kRamSize = 64 * 1024;
constexpr bus::Address kEepromBase = 0x0020'0000;
constexpr bus::Address kEepromSize = 32 * 1024;
constexpr bus::Address kFlashBase = 0x0030'0000;
constexpr bus::Address kFlashSize = 64 * 1024;

bus::SlaveControl romCtl() {
  bus::SlaveControl c;
  c.base = kRomBase;
  c.size = kRomSize;
  c.canWrite = false;
  return c;
}

bus::SlaveControl ramCtl() {
  bus::SlaveControl c;
  c.base = kRamBase;
  c.size = kRamSize;
  c.canExec = false;
  return c;
}

bus::SlaveControl eepromCtl() {
  bus::SlaveControl c;
  c.base = kEepromBase;
  c.size = kEepromSize;
  c.addrWait = 1;
  c.readWait = 2;
  c.writeWait = 3;
  c.canExec = false;
  return c;
}

bus::SlaveControl flashCtl() {
  bus::SlaveControl c;
  c.base = kFlashBase;
  c.size = kFlashSize;
  c.readWait = 1;
  c.canWrite = false;
  return c;
}

// Shared prototype images: function-local statics, so fork workers read
// one immutable copy (MemorySlave stays copy-on-write against it). The
// RAM image is uniformly random — the crypto workload's reads must
// carry maximum switching activity for the bus-invert headline.
const std::vector<std::uint8_t>& romImage() {
  static const std::vector<std::uint8_t> img = [] {
    std::vector<std::uint8_t> b(kRomSize);
    trace::fillRealistic(b.data(), b.size(), 0xE0C1);
    return b;
  }();
  return img;
}

const std::vector<std::uint8_t>& ramImage() {
  static const std::vector<std::uint8_t> img = [] {
    std::vector<std::uint8_t> b(kRamSize);
    sim::Xoshiro256 rng(0xE0C2);
    for (std::size_t i = 0; i < b.size(); i += 8) {
      const std::uint64_t v = rng.next();
      for (std::size_t j = 0; j < 8 && i + j < b.size(); ++j) {
        b[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
      }
    }
    return b;
  }();
  return img;
}

const std::vector<std::uint8_t>& flashImage() {
  static const std::vector<std::uint8_t> img = [] {
    std::vector<std::uint8_t> b(kFlashSize);
    trace::fillRealistic(b.data(), b.size(), 0xE0C3);
    return b;
  }();
  return img;
}

// One sweep platform. Construction order fixes the clock handler ids
// (bus falling = 0, master rising = 1); the boot side and every variant
// construct identically, which is exactly what Clock::loadState demands.
// The master itself is NOT registered for checkpointing — it is
// per-variant configuration (each variant replays its own trace).
struct Platform {
  sim::Kernel kernel;
  sim::Clock clk{kernel, "clk", 10};
  bus::Tl1Bus bus{clk, "ecbus"};
  bus::MemorySlave rom;
  bus::MemorySlave ram;
  bus::MemorySlave eeprom;
  bus::MemorySlave flash;
  power::Tl1PowerModel pm;
  obs::EnergyLedger ledger;
  trace::ReplayMaster master;
  ckpt::CheckpointRegistry reg;

  Platform(const power::SignalEnergyTable& table, const trace::BusTrace& t)
      : rom("rom", romCtl(), romImage().data()),
        ram("ram", ramCtl(), ramImage().data()),
        eeprom("eeprom", eepromCtl()),
        flash("flash", flashCtl(), flashImage().data()),
        pm(table),
        master(clk, "master", bus, bus, t) {
    bus.attach(rom);
    bus.attach(ram);
    bus.attach(eeprom);
    bus.attach(flash);
    pm.attachLedger(ledger);
    bus.addObserver(pm);
    reg.add("kernel", kernel);
    reg.add("clk", clk);
    reg.add("ecbus", bus);
    reg.add("rom", rom);
    reg.add("ram", ram);
    reg.add("eeprom", eeprom);
    reg.add("flash", flash);
    reg.add("pm", pm);
    reg.add("ledger", ledger);
  }
};

trace::BusTrace makeBootTrace() {
  // Firmware-style warm-up: fetch-heavy program-like traffic over ROM
  // and RAM, the shared prefix every variant amortizes.
  const std::array<trace::TargetRegion, 2> regions{{
      {kRomBase, kRomSize, /*read=*/true, /*write=*/false, /*exec=*/true},
      {kRamBase, kRamSize, /*read=*/true, /*write=*/true, /*exec=*/false},
  }};
  trace::MixRatios mix;
  mix.singleRead = 2;
  mix.singleWrite = 1;
  mix.burstRead = 1;
  mix.burstWrite = 1;
  mix.instrFetch = 3;
  return trace::randomMixStyled(0xB007, 300, regions, mix,
                                /*issueGapMax=*/0,
                                trace::DataStyle::Realistic);
}

trace::BusTrace makeCryptoTrace() {
  // Write-heavy uniform-random data over the random-filled RAM: both
  // data buses see maximum switching activity — the workload where
  // bus-invert must measurably cut data-bus transition energy.
  const std::array<trace::TargetRegion, 1> regions{{
      {kRamBase, kRamSize, true, true, false},
  }};
  trace::MixRatios mix;
  mix.singleRead = 2;
  mix.singleWrite = 3;
  mix.burstRead = 1;
  mix.burstWrite = 2;
  mix.instrFetch = 0;
  return trace::randomMixStyled(0x51C7, 600, regions, mix, 0,
                                trace::DataStyle::Random);
}

trace::BusTrace makeJcvmTrace() {
  // Interpreter-flavoured: fetch-dominated program-like traffic over
  // ROM plus data traffic to RAM and the waited EEPROM.
  const std::array<trace::TargetRegion, 3> regions{{
      {kRomBase, kRomSize, true, false, true},
      {kRamBase, kRamSize, true, true, false},
      {kEepromBase, kEepromSize, true, true, false},
  }};
  trace::MixRatios mix;
  mix.singleRead = 2;
  mix.singleWrite = 1;
  mix.burstRead = 1;
  mix.burstWrite = 1;
  mix.instrFetch = 4;
  return trace::randomMixStyled(0x1C33, 600, regions, mix, 0,
                                trace::DataStyle::Realistic);
}

trace::BusTrace makeMemcpyTrace() {
  // Sequential block copy: 4-beat burst reads marching through flash,
  // paired with 4-beat burst writes marching through RAM — long
  // stride-16 address runs, gray addressing's home turf.
  trace::BusTrace t;
  sim::Xoshiro256 rng(0x3E3C);
  constexpr std::size_t kBlocks = 200;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    trace::TraceEntry rd;
    rd.kind = bus::Kind::Read;
    rd.address = kFlashBase + 16 * i;
    rd.beats = 4;
    t.append(rd);
    trace::TraceEntry wr;
    wr.kind = bus::Kind::Write;
    wr.address = kRamBase + 0x8000 + 16 * i;
    wr.beats = 4;
    for (unsigned b = 0; b < 4; ++b) {
      wr.writeData[b] = trace::realisticWord(rng);
    }
    t.append(wr);
  }
  return t;
}

/// Replay `master`'s trace on `p` and report the phase's energy delta.
EncOutcome measure(Platform& p, trace::ReplayMaster& master,
                   const EncVariant& v) {
  const obs::LedgerView start = p.ledger.view();
  const double startTotal_fJ = p.pm.totalEnergy_fJ();
  const std::uint64_t startTx = p.bus.stats().transactions();
  const std::uint64_t startCycle = p.clk.cycle();
  const std::uint64_t startData =
      p.pm.transitions(bus::SignalId::EB_RData) +
      p.pm.transitions(bus::SignalId::EB_WData) +
      p.pm.transitions(bus::SignalId::EB_Inv);
  const std::uint64_t startAddr = p.pm.transitions(bus::SignalId::EB_A);

  master.runToCompletion();

  const obs::LedgerView d = obs::delta(p.ledger.view(), start);
  EncOutcome out;
  out.variant = v;
  out.transactions = p.bus.stats().transactions() - startTx;
  out.cycles = p.clk.cycle() - startCycle;
  out.total_fJ = p.pm.totalEnergy_fJ() - startTotal_fJ;
  out.perTxn_fJ = out.transactions != 0
                      ? out.total_fJ / static_cast<double>(out.transactions)
                      : 0.0;
  const auto bundle = [&d](bus::SignalId id) {
    return d.byBundle[static_cast<std::size_t>(id)];
  };
  out.dataBus_fJ = bundle(bus::SignalId::EB_RData) +
                   bundle(bus::SignalId::EB_WData) +
                   bundle(bus::SignalId::EB_Inv);
  out.addrBus_fJ = bundle(bus::SignalId::EB_A);
  out.dataTransitions = p.pm.transitions(bus::SignalId::EB_RData) +
                        p.pm.transitions(bus::SignalId::EB_WData) +
                        p.pm.transitions(bus::SignalId::EB_Inv) - startData;
  out.addrTransitions = p.pm.transitions(bus::SignalId::EB_A) - startAddr;
  return out;
}

} // namespace

const std::vector<std::string>& workloadNames() {
  static const std::vector<std::string> names{"crypto", "jcvm", "memcpy"};
  return names;
}

std::vector<EncVariant> defaultGrid() {
  std::vector<EncVariant> grid;
  for (const std::string& c : codecNames()) {
    for (const std::string& w : workloadNames()) {
      grid.push_back(EncVariant{c, w});
    }
  }
  return grid;
}

SweepRunner::SweepRunner(const power::SignalEnergyTable& table)
    : table_(table),
      bootTrace_(makeBootTrace()),
      workloads_{{{"crypto", makeCryptoTrace()},
                  {"jcvm", makeJcvmTrace()},
                  {"memcpy", makeMemcpyTrace()}}},
      fork_([&] {
        Platform parent(table_, bootTrace_);
        parent.master.runToCompletion();
        return parent.reg.saveAll();
      }) {}

const trace::BusTrace& SweepRunner::workload(const std::string& name) const {
  for (const auto& [n, t] : workloads_) {
    if (n == name) return t;
  }
  throw std::invalid_argument("unknown sweep workload: " + name);
}

EncOutcome SweepRunner::runVariant(const ckpt::Snapshot& snap,
                                   const EncVariant& v) const {
  Platform p(table_, workload(v.workload));
  p.reg.loadAll(snap);
  const std::unique_ptr<bus::BusCodec> codec = makeCodec(v.codec);
  p.bus.setCodec(codec.get());
  return measure(p, p.master, v);
}

std::vector<EncOutcome> SweepRunner::run(const std::vector<EncVariant>& grid,
                                         unsigned threads) const {
  std::vector<EncOutcome> results(grid.size());
  fork_.runForks(grid.size(), threads,
                 [&](const ckpt::Snapshot& snap, std::size_t i) {
                   results[i] = runVariant(snap, grid[i]);
                 });
  return results;
}

EncOutcome SweepRunner::runFromBoot(const EncVariant& v) const {
  // Boot and workload share one platform: the boot master stays
  // registered (inert once done — the handler set must not shrink) and
  // a second master replays the workload, so the bus sees exactly the
  // request stream a restored variant sees.
  Platform p(table_, bootTrace_);
  p.master.runToCompletion();
  trace::ReplayMaster wl(p.clk, "wl", p.bus, p.bus, workload(v.workload));
  const std::unique_ptr<bus::BusCodec> codec = makeCodec(v.codec);
  p.bus.setCodec(codec.get());
  return measure(p, wl, v);
}

} // namespace sct::enc
