// One pooled card: a TL1 SmartCardSoC with its power model and energy
// ledger, recyclable from a shared golden boot snapshot.
//
// The serve daemon's whole speed story lives here. Booting a card —
// constructing the platform, loading the applet, running the card OS
// cold-boot prelude (RAM zeroization, EEPROM scan, crypto self-test;
// ~25k bus cycles) to its command-wait loop — costs an order of
// magnitude more than the short session it serves. Instead, ONE card
// boots to the wait loop, a
// snapshot is taken at a quiesce point (bootGolden), and every pooled
// instance restores that snapshot before each session (recycle). The
// snapshot deliberately carries TWO sections beyond the SoC's own
// fourteen: the Tl1 power model ("pm") and the energy ledger
// ("ledger"). Restoring them rewinds every floating-point accumulator
// to the identical boot-end bit pattern, so a session's energy delta
// is a subtraction of identical operands no matter which worker ran it
// or how many sessions the instance served before — the foundation of
// the threads=1 vs threads=N bit-identity contract.
//
// Thread model: a CardInstance is single-threaded (one per pool
// worker). The golden Snapshot is shared across workers by const
// reference — it is plain immutable data after bootGolden returns.
#ifndef SCT_SERVE_CARD_INSTANCE_H
#define SCT_SERVE_CARD_INSTANCE_H

#include <cstdint>
#include <string>
#include <vector>

#include "bus/tl1_bus.h"
#include "ckpt/checkpoint.h"
#include "obs/ledger.h"
#include "power/coeff_table.h"
#include "power/tl1_power_model.h"
#include "serve/scenario.h"
#include "soc/smartcard.h"

namespace sct::serve {

using Tl1Soc = soc::SmartCardSoC<bus::Tl1Bus>;

/// Everything a session produces. Doubles are exact accumulator
/// values; the JSON layer prints them losslessly.
struct SessionOutcome {
  bool ok = false;           ///< Every exchange completed (no timeout).
  bool expected = false;     ///< ...and every status word matched.
  std::vector<std::uint16_t> sw;  ///< Status word per step.
  std::uint64_t cycles = 0;  ///< Bus-clock cycles the session consumed.
  std::uint64_t instructions = 0;
  obs::LedgerView energy;    ///< Ledger delta over the session window.
  std::string error;         ///< Non-empty on failure.
};

class CardInstance {
 public:
  /// Builds the platform and loads the stock applet (PIN kCardPin).
  /// The instance is at reset — call recycle() with the golden
  /// snapshot before running sessions.
  explicit CardInstance(const power::SignalEnergyTable& table);

  CardInstance(const CardInstance&) = delete;
  CardInstance& operator=(const CardInstance&) = delete;

  /// Boot one card to the applet's command-wait loop and snapshot it
  /// at the first quiesce point (16 platform sections + pm + ledger).
  /// The warmup drives a complete GET CHALLENGE exchange first, which
  /// proves the command loop is live before the snapshot is taken.
  static ckpt::Snapshot bootGolden(const power::SignalEnergyTable& table);

  /// Rewind to the golden boot state: drain any in-flight bus/UART
  /// activity to a quiesce point, then restore every section. Safe on
  /// a freshly constructed instance and after any completed session
  /// (the end-of-session command halts the core). Throws
  /// ckpt::CheckpointError if the platform refuses to quiesce.
  void recycle(const ckpt::Snapshot& golden);

  /// Drive one scenario script against the card. The caller must have
  /// recycle()d since the previous session. Status-word mismatches are
  /// reported, not thrown; a transport timeout marks ok = false and
  /// stops the script.
  SessionOutcome runSession(const std::vector<Step>& steps,
                            std::uint64_t maxCyclesPerStep = 2'000'000);

  Tl1Soc& soc() { return soc_; }
  obs::EnergyLedger& ledger() { return ledger_; }

 private:
  void registerAll();

  Tl1Soc soc_;
  power::Tl1PowerModel pm_;
  obs::EnergyLedger ledger_;
  ckpt::CheckpointRegistry registry_;
};

} // namespace sct::serve

#endif // SCT_SERVE_CARD_INSTANCE_H
