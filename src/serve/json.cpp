#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sct::serve {

JsonValue JsonValue::makeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::makeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::makeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::makeArray() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::makeObject() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::asBool() const {
  if (kind_ != Kind::Bool) throw JsonError("JSON value is not a bool");
  return bool_;
}

double JsonValue::asNumber() const {
  if (kind_ != Kind::Number) throw JsonError("JSON value is not a number");
  return number_;
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::String) throw JsonError("JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::asArray() const {
  if (kind_ != Kind::Array) throw JsonError("JSON value is not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::asObject() const {
  if (kind_ != Kind::Object) throw JsonError("JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::vector<JsonValue>& JsonValue::mutableArray() {
  if (kind_ != Kind::Array) throw JsonError("JSON value is not an array");
  return array_;
}

std::map<std::string, JsonValue>& JsonValue::mutableObject() {
  if (kind_ != Kind::Object) throw JsonError("JSON value is not an object");
  return object_;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    skipWs();
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + what);
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                      ": unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeKeyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return JsonValue::makeString(parseString());
      case 't':
        if (!consumeKeyword("true")) fail("bad keyword");
        return JsonValue::makeBool(true);
      case 'f':
        if (!consumeKeyword("false")) fail("bad keyword");
        return JsonValue::makeBool(false);
      case 'n':
        if (!consumeKeyword("null")) fail("bad keyword");
        return JsonValue{};
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v = JsonValue::makeObject();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      skipWs();
      v.mutableObject()[std::move(key)] = parseValue();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v = JsonValue::makeArray();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      v.mutableArray().push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': appendCodepoint(out, parseHex4()); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned parseHex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return value;
  }

  static void appendCodepoint(std::string& out, unsigned cp) {
    // BMP only (no surrogate pairing) — the protocol never emits
    // non-BMP text; a lone surrogate encodes as-is (WTF-8 style)
    // rather than corrupting the rest of the line.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                           c == 'E' || c == '+' || c == '-';
      if (!numeric) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue::makeNumber(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace

JsonValue parseJson(std::string_view text) {
  return Parser(text).parseDocument();
}

void appendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void appendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

} // namespace sct::serve
