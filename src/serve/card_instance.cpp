#include "serve/card_instance.h"

#include "soc/apdu.h"

namespace sct::serve {

namespace {

// Cold-boot work a real card OS performs before answering to reset:
// RAM zeroization (a security requirement — no residue from the
// previous session's keys), an EEPROM filesystem header scan, a crypto
// coprocessor known-answer self-test, and TRNG warm-up draws. Runs
// once per cold boot, before the command loop; ~25k bus cycles. This
// is precisely the cost the golden-snapshot recycle amortizes away:
// bootGolden pays it once, every recycled session skips it, and the
// Serve_BootPerSession benchmark baseline pays it per session.
constexpr const char* kBootPrelude = R"(
    # -- card OS cold boot --------------------------------------------
    # 1. Zeroize the 8 KiB scratchpad RAM.
    li   $t0, 0x08000000
    li   $t1, 0x08002000
  boot_zram:
    sw   $zero, 0($t0)
    addiu $t0, $t0, 4
    bne  $t0, $t1, boot_zram

    # 2. EEPROM filesystem header scan: checksum the first 8 KiB
    #    (waited reads — EEPROM pays its read wait state per word).
    li   $t0, 0x0A000000
    li   $t1, 0x0A002000
    addiu $v0, $zero, 0
  boot_escan:
    lw   $t3, 0($t0)
    addu $v0, $v0, $t3
    addiu $t0, $t0, 4
    bne  $t0, $t1, boot_escan

    # 3. Crypto coprocessor known-answer self-test.
    li   $t0, 0x00112233
    sw   $t0, 0x00($s2)
    li   $t0, 0x44556677
    sw   $t0, 0x04($s2)
    li   $t0, 0x8899AABB
    sw   $t0, 0x08($s2)
    li   $t0, 0xCCDDEEFF
    sw   $t0, 0x0C($s2)
    li   $t0, 0x01234567
    sw   $t0, 0x10($s2)
    li   $t0, 0x89ABCDEF
    sw   $t0, 0x14($s2)
    addiu $t0, $zero, 1
    sw   $t0, 0x18($s2)
  boot_kat:
    lw   $t0, 0x1C($s2)
    bnez $t0, boot_kat
    lw   $t0, 0x10($s2)
    lw   $t1, 0x14($s2)

    # 4. TRNG warm-up draws.
    addiu $t2, $zero, 8
  boot_trng:
    lw   $t0, 0($s1)
    addiu $t2, $t2, -1
    bnez $t2, boot_trng
)";

const soc::AssembledProgram& applet() {
  static const soc::AssembledProgram prog =
      soc::apdu::cardApplet(kCardPin, kBootPrelude);
  return prog;
}

} // namespace

CardInstance::CardInstance(const power::SignalEnergyTable& table)
    : soc_(soc::SocConfig{}), pm_(table) {
  pm_.attachLedger(ledger_);
  soc_.bus().addObserver(pm_);
  // Restoring re-establishes each memory's baseline image first, so
  // the applet must be loaded before any restore — identically to how
  // the golden snapshot's source card was prepared.
  soc_.loadProgram(applet());
  registerAll();
}

void CardInstance::registerAll() {
  soc_.registerCheckpoint(registry_);
  registry_.add("pm", pm_);
  registry_.add("ledger", ledger_);
}

ckpt::Snapshot CardInstance::bootGolden(
    const power::SignalEnergyTable& table) {
  CardInstance card(table);
  Tl1Soc& soc = card.soc_;

  // Warmup: a full GET CHALLENGE round trip. When the response is
  // back, the applet has initialized and re-entered its command-wait
  // loop. (The draw consumes TRNG state before the snapshot, which is
  // fine — every session inherits the identical post-warmup state.)
  soc::apdu::Session<Tl1Soc> session(soc);
  soc::apdu::Command chal;
  chal.ins = soc::apdu::kInsGetChallenge;
  soc::apdu::Response r;
  if (!session.exchange(chal, 4, r) || r.sw != soc::apdu::kSwOk) {
    throw ckpt::CheckpointError(
        "CardInstance::bootGolden: warmup exchange failed (applet did not "
        "reach its command loop)");
  }

  // Hunt the first quiesce point: the wait loop alternates UART status
  // loads with cached ALU cycles, so cycles with nothing in flight
  // come around every few instructions. busQuiesced() is the cheap
  // pre-filter; saveAll() still validates the full platform predicate.
  std::string lastRefusal;
  for (int i = 0; i < 200000; ++i) {
    soc.clock().runCycles(1);
    if (!soc.cpu().busQuiesced() || soc.bus().outstandingTotal() != 0 ||
        soc.uart().txBusy()) {
      continue;
    }
    try {
      return card.registry_.saveAll();
    } catch (const ckpt::CheckpointError& e) {
      lastRefusal = e.what();
    }
  }
  throw ckpt::CheckpointError(
      "CardInstance::bootGolden: no quiesce point within 200000 cycles"
      + (lastRefusal.empty() ? std::string()
                             : "; last refusal: " + lastRefusal));
}

void CardInstance::recycle(const ckpt::Snapshot& golden) {
  // After a completed session the core is halted (CLA 0xFF) and only
  // the UART shifter may still be counting down; a fresh instance is
  // quiesced from the start. Drain whatever remains, then rewind.
  for (int i = 0; i < 100000; ++i) {
    if (soc_.cpu().busQuiesced() && soc_.bus().outstandingTotal() == 0 &&
        !soc_.uart().txBusy()) {
      break;
    }
    soc_.clock().runCycles(1);
  }
  registry_.loadAll(golden);
}

SessionOutcome CardInstance::runSession(const std::vector<Step>& steps,
                                        std::uint64_t maxCyclesPerStep) {
  SessionOutcome out;
  if (steps.empty()) {
    out.error = "empty scenario";
    return out;
  }

  const obs::LedgerView before = ledger_.view();
  const std::uint64_t startCycle = soc_.clock().cycle();
  const std::uint64_t startInstr = soc_.cpu().stats().instructions;

  soc::apdu::Session<Tl1Soc> session(soc_);
  out.ok = true;
  out.expected = true;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    soc::apdu::Response r;
    if (!session.exchange(steps[i].cmd, steps[i].expectData, r,
                          maxCyclesPerStep)) {
      out.ok = false;
      out.expected = false;
      out.error = "timeout at step " + std::to_string(i);
      break;
    }
    out.sw.push_back(r.sw);
    if (r.sw != steps[i].expectSw) out.expected = false;
  }

  // Settle the platform so the energy window closes at a quiesce point
  // (the ledger total and the deferred cycle sum agree there). The
  // final end-of-session command halted the core; only the UART
  // shifter can still be live.
  for (int i = 0; i < 100000; ++i) {
    if (soc_.cpu().busQuiesced() && soc_.bus().outstandingTotal() == 0 &&
        !soc_.uart().txBusy()) {
      break;
    }
    soc_.clock().runCycles(1);
  }

  out.cycles = soc_.clock().cycle() - startCycle;
  out.instructions = soc_.cpu().stats().instructions - startInstr;
  out.energy = obs::delta(ledger_.view(), before);
  return out;
}

} // namespace sct::serve
