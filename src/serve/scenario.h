// Named APDU session scenarios for the serve daemon.
//
// A serve job names a scenario instead of shipping raw APDU bytes: the
// daemon expands (name, seed) into a deterministic command script
// against the stock card applet (soc/apdu.h). The seed feeds a
// sim::Xoshiro256 so two jobs with the same (scenario, seed) are the
// same session byte-for-byte — the property the threads=1 vs threads=N
// determinism suite and the recycle bit-identity tests are built on —
// while a seed sweep still exercises varied data paths (different
// challenge payloads, different wrong-PIN guesses, different command
// mixes).
#ifndef SCT_SERVE_SCENARIO_H
#define SCT_SERVE_SCENARIO_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "soc/apdu.h"

namespace sct::serve {

/// The PIN burned into every pooled card's applet ROM (matches the
/// apdu unit-test card so host-side tooling can drive either).
inline constexpr std::uint8_t kCardPin[4] = {0x12, 0x34, 0x56, 0x78};

/// One APDU exchange plus what the host expects back. `expectData` is
/// the exact response payload size (the ISO transport here is
/// fixed-size per command), `expectSw` the status word a healthy card
/// must return — a mismatch marks the session failed but never aborts
/// it (the remaining script still runs, like a real terminal).
struct Step {
  soc::apdu::Command cmd;
  std::size_t expectData = 0;
  std::uint16_t expectSw = soc::apdu::kSwOk;
};

/// True if `name` is one of the scenarios below.
bool knownScenario(std::string_view name);

/// Expand a scenario into its command script. Every script ends with
/// the CLA 0xFF end-of-session command (the applet halts, which is
/// what parks the card at a quiesce point for recycling). Unknown
/// names return an empty script.
///
/// Catalog:
///   "auth"      — VERIFY(correct PIN), GET CHALLENGE, INTERNAL
///                 AUTHENTICATE over a seeded 8-byte challenge.
///   "wrong_pin" — VERIFY with a seeded wrong guess (63C0), then an
///                 INTERNAL AUTHENTICATE that must be refused (6982).
///   "challenge" — 2 + seed%3 GET CHALLENGE draws (TRNG traffic).
///   "mixed"     — 6 seeded draws over the primitives above, with the
///                 expected status tracking the verified state.
std::vector<Step> buildScenario(std::string_view name, std::uint64_t seed);

} // namespace sct::serve

#endif // SCT_SERVE_SCENARIO_H
