#include "serve/scenario.h"

#include "sim/random.h"

namespace sct::serve {

namespace {

using soc::apdu::Command;

Command verifyCmd(const std::uint8_t pin[4]) {
  Command c;
  c.ins = soc::apdu::kInsVerify;
  c.data.assign(pin, pin + 4);
  return c;
}

Command challengeCmd() {
  Command c;
  c.ins = soc::apdu::kInsGetChallenge;
  return c;
}

Command authCmd(sim::Xoshiro256& rng) {
  Command c;
  c.ins = soc::apdu::kInsInternalAuth;
  c.data.resize(8);
  for (std::uint8_t& b : c.data) {
    b = static_cast<std::uint8_t>(rng.below(256));
  }
  return c;
}

Command endCmd() {
  Command c;
  c.cla = soc::apdu::kClaEndSession;
  return c;
}

Step verifyRight() {
  return Step{verifyCmd(kCardPin), 0, soc::apdu::kSwOk};
}

Step verifyWrong(sim::Xoshiro256& rng) {
  std::uint8_t guess[4];
  for (std::uint8_t& b : guess) {
    b = static_cast<std::uint8_t>(rng.below(256));
  }
  // Make sure the seeded guess is actually wrong.
  if (guess[0] == kCardPin[0]) guess[0] ^= 0xFF;
  return Step{verifyCmd(guess), 0, soc::apdu::kSwPinWrong};
}

Step challenge() { return Step{challengeCmd(), 4, soc::apdu::kSwOk}; }

Step auth(sim::Xoshiro256& rng, bool verified) {
  if (verified) return Step{authCmd(rng), 8, soc::apdu::kSwOk};
  return Step{authCmd(rng), 0, soc::apdu::kSwNotVerified};
}

Step endSession() { return Step{endCmd(), 0, soc::apdu::kSwOk}; }

} // namespace

bool knownScenario(std::string_view name) {
  return name == "auth" || name == "wrong_pin" || name == "challenge" ||
         name == "mixed";
}

std::vector<Step> buildScenario(std::string_view name, std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  std::vector<Step> steps;

  if (name == "auth") {
    steps.push_back(verifyRight());
    steps.push_back(challenge());
    steps.push_back(auth(rng, /*verified=*/true));
  } else if (name == "wrong_pin") {
    steps.push_back(verifyWrong(rng));
    steps.push_back(auth(rng, /*verified=*/false));
  } else if (name == "challenge") {
    const std::uint64_t draws = 2 + seed % 3;
    for (std::uint64_t i = 0; i < draws; ++i) steps.push_back(challenge());
  } else if (name == "mixed") {
    bool verified = false;
    for (int i = 0; i < 6; ++i) {
      switch (rng.below(4)) {
        case 0:
          steps.push_back(verifyRight());
          verified = true;
          break;
        case 1:
          steps.push_back(verifyWrong(rng));
          // The applet clears its verified flag on any wrong guess.
          verified = false;
          break;
        case 2: steps.push_back(challenge()); break;
        default: steps.push_back(auth(rng, verified)); break;
      }
    }
  } else {
    return {};
  }

  steps.push_back(endSession());
  return steps;
}

} // namespace sct::serve
