#include "serve/daemon.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "bus/ec_signals.h"
#include "serve/json.h"

namespace sct::serve {

// ---------------------------------------------------------------------
// ServeEngine

ServeEngine::ServeEngine(const power::SignalEnergyTable& table,
                         unsigned workers)
    : table_(table),
      golden_(CardInstance::bootGolden(table_)),
      pool_(workers),
      instances_(pool_.threadCount()) {}

ServeEngine::~ServeEngine() { pool_.wait(); }

CardInstance& ServeEngine::instanceForThisWorker() {
  const unsigned w = pool_.currentWorker();
  std::unique_ptr<CardInstance>& slot = instances_.at(w);
  // Each slot is touched only by its own worker thread; lazy
  // construction needs no lock. Building the platform once per worker
  // (not per session) is most of what makes recycling cheap.
  if (!slot) slot = std::make_unique<CardInstance>(table_);
  return *slot;
}

void ServeEngine::emit(const Sink& sink, const std::string& line) {
  std::lock_guard<std::mutex> lock(emitMutex_);
  if (sink) sink(line);
}

void ServeEngine::submitLine(const std::string& line, Sink sink) {
  Job job;
  try {
    const JsonValue v = parseJson(line);
    if (!v.isObject()) throw JsonError("job line is not a JSON object");
    if (const JsonValue* id = v.find("id")) job.id = id->asString();
    if (const JsonValue* sc = v.find("scenario")) {
      job.scenario = sc->asString();
    }
    if (const JsonValue* seed = v.find("seed")) {
      job.seed = static_cast<std::uint64_t>(seed->asNumber());
    }
    if (const JsonValue* f = v.find("fidelity")) {
      job.fidelity = f->asString();
    }
  } catch (const JsonError& e) {
    errors_.fetch_add(1);
    emit(sink, errorLine(job.id, e.what()));
    return;
  }
  if (job.scenario.empty()) {
    errors_.fetch_add(1);
    emit(sink, errorLine(job.id, "missing \"scenario\""));
    return;
  }
  if (!knownScenario(job.scenario)) {
    errors_.fetch_add(1);
    emit(sink, errorLine(job.id, "unknown scenario \"" + job.scenario + "\""));
    return;
  }
  if (job.fidelity != "tl1") {
    errors_.fetch_add(1);
    emit(sink, errorLine(job.id, "unsupported fidelity \"" + job.fidelity +
                                     "\" (this farm serves tl1)"));
    return;
  }
  submitJob(std::move(job), std::move(sink));
}

void ServeEngine::submitJob(Job job, Sink sink) {
  pool_.submit([this, job = std::move(job), sink = std::move(sink)] {
    try {
      CardInstance& card = instanceForThisWorker();
      card.recycle(golden_);
      const SessionOutcome outcome =
          card.runSession(buildScenario(job.scenario, job.seed));
      completed_.fetch_add(1);
      emit(sink, resultLine(job, outcome));
    } catch (const std::exception& e) {
      errors_.fetch_add(1);
      emit(sink, errorLine(job.id, e.what()));
    }
  });
}

void ServeEngine::drain() { pool_.wait(); }

std::size_t ServeEngine::cancelPending() { return pool_.cancelPending(); }

std::string ServeEngine::resultLine(const Job& job,
                                    const SessionOutcome& o) {
  std::string s = "{\"event\":\"result\",\"id\":";
  appendJsonString(s, job.id);
  s += ",\"scenario\":";
  appendJsonString(s, job.scenario);
  s += ",\"seed\":" + std::to_string(job.seed);
  s += ",\"ok\":";
  s += o.ok ? "true" : "false";
  s += ",\"expected\":";
  s += o.expected ? "true" : "false";
  s += ",\"sw\":[";
  for (std::size_t i = 0; i < o.sw.size(); ++i) {
    char sw[8];
    std::snprintf(sw, sizeof(sw), "\"%04X\"", o.sw[i]);
    if (i != 0) s += ',';
    s += sw;
  }
  s += "],\"cycles\":" + std::to_string(o.cycles);
  s += ",\"instructions\":" + std::to_string(o.instructions);
  s += ",\"energy_fJ\":";
  appendJsonNumber(s, o.energy.total);
  s += ",\"by_class\":{";
  for (std::size_t i = 0; i < obs::kTxClassCount; ++i) {
    if (i != 0) s += ',';
    appendJsonString(s, obs::txClassName(static_cast<obs::TxClass>(i)));
    s += ':';
    appendJsonNumber(s, o.energy.byClass[i]);
  }
  s += "},\"by_bundle\":{";
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    if (i != 0) s += ',';
    appendJsonString(s, bus::signalName(static_cast<bus::SignalId>(i)));
    s += ':';
    appendJsonNumber(s, o.energy.byBundle[i]);
  }
  s += "},\"by_slave\":[";
  for (std::size_t i = 0; i < o.energy.bySlave.size(); ++i) {
    if (i != 0) s += ',';
    appendJsonNumber(s, o.energy.bySlave[i]);
  }
  s += "],\"by_master\":[";
  for (std::size_t i = 0; i < o.energy.byMaster.size(); ++i) {
    if (i != 0) s += ',';
    appendJsonNumber(s, o.energy.byMaster[i]);
  }
  s += ']';
  if (!o.error.empty()) {
    s += ",\"error\":";
    appendJsonString(s, o.error);
  }
  s += '}';
  return s;
}

std::string ServeEngine::errorLine(const std::string& id,
                                   const std::string& message) {
  std::string s = "{\"event\":\"error\",\"id\":";
  appendJsonString(s, id);
  s += ",\"error\":";
  appendJsonString(s, message);
  s += '}';
  return s;
}

// ---------------------------------------------------------------------
// Daemon front-ends

namespace {

/// Move complete lines out of `buf`, feeding each to `fn`.
template <typename Fn>
void drainLines(std::string& buf, Fn&& fn) {
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = buf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = buf.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = nl + 1;
    if (!line.empty()) fn(line);
  }
  buf.erase(0, start);
}

void writeLine(std::FILE* out, const std::string& line) {
  // One fwrite for the whole line + newline: a reader that catches the
  // stream mid-shutdown still sees only complete lines.
  std::string full = line;
  full.push_back('\n');
  std::fwrite(full.data(), 1, full.size(), out);
  std::fflush(out);
}

void writeSummary(std::FILE* out, const ServeEngine& engine,
                  std::size_t dropped) {
  std::string s = "{\"event\":\"done\",\"completed\":" +
                  std::to_string(engine.completed()) +
                  ",\"errors\":" + std::to_string(engine.errors()) +
                  ",\"dropped\":" + std::to_string(dropped) + "}";
  writeLine(out, s);
}

int runStdinDaemon(ServeEngine& engine, std::FILE* in, std::FILE* out,
                   const volatile std::sig_atomic_t* stop) {
  const ServeEngine::Sink sink = [out](const std::string& line) {
    writeLine(out, line);
  };

  const int fd = fileno(in);
  std::string buf;
  bool eof = false;
  while (!*stop && !eof) {
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    drainLines(buf, [&](const std::string& line) {
      engine.submitLine(line, sink);
    });
  }
  // A job file without a trailing newline still counts — but only on
  // EOF; on a signal the partial line was never a complete job.
  if (eof && !buf.empty()) engine.submitLine(buf, sink);

  const std::size_t dropped = *stop ? engine.cancelPending() : 0;
  engine.drain();
  writeSummary(out, engine, dropped);
  return 0;
}

struct SocketClient {
  int fd = -1;
  std::string inBuf;
  /// Cleared when the client disconnects; late results for its jobs
  /// are dropped instead of writing to a dead (possibly reused) fd.
  std::shared_ptr<std::atomic<bool>> open;
};

int runSocketDaemon(ServeEngine& engine, const std::string& path,
                    std::FILE* out,
                    const volatile std::sig_atomic_t* stop) {
  const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd < 0) {
    std::fprintf(stderr, "sct_serve: socket(): %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "sct_serve: socket path too long\n");
    ::close(listenFd);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listenFd, 8) < 0) {
    std::fprintf(stderr, "sct_serve: bind/listen(%s): %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listenFd);
    return 1;
  }

  std::vector<SocketClient> clients;
  while (!*stop) {
    std::vector<pollfd> fds;
    fds.push_back({listenFd, POLLIN, 0});
    for (const SocketClient& c : clients) fds.push_back({c.fd, POLLIN, 0});
    const int pr = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;

    if (fds[0].revents & POLLIN) {
      const int cfd = ::accept(listenFd, nullptr, nullptr);
      if (cfd >= 0) {
        SocketClient c;
        c.fd = cfd;
        c.open = std::make_shared<std::atomic<bool>>(true);
        clients.push_back(std::move(c));
        continue;  // Re-poll with the new fd included.
      }
    }

    for (std::size_t i = 0; i < clients.size();) {
      SocketClient& c = clients[i];
      const short revents = fds[i + 1].revents;
      bool dead = (revents & (POLLHUP | POLLERR)) != 0;
      if (!dead && (revents & POLLIN)) {
        char chunk[4096];
        const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
          c.inBuf.append(chunk, static_cast<std::size_t>(n));
          const int cfd = c.fd;
          const std::shared_ptr<std::atomic<bool>> open = c.open;
          drainLines(c.inBuf, [&](const std::string& line) {
            engine.submitLine(line, [cfd, open](const std::string& result) {
              if (!open->load()) return;
              std::string full = result;
              full.push_back('\n');
              // Best-effort: a client that vanished mid-session just
              // loses its line (MSG_NOSIGNAL keeps EPIPE an errno).
              const ssize_t rc =
                  ::send(cfd, full.data(), full.size(), MSG_NOSIGNAL);
              (void)rc;
            });
          });
        } else if (n == 0 || (n < 0 && errno != EINTR)) {
          dead = true;
        }
      }
      if (dead) {
        c.open->store(false);
        ::close(c.fd);
        clients.erase(clients.begin() + static_cast<long>(i));
        // fds is stale now; break to re-poll.
        break;
      }
      ++i;
    }
  }

  const std::size_t dropped = engine.cancelPending();
  engine.drain();
  for (SocketClient& c : clients) {
    c.open->store(false);
    ::close(c.fd);
  }
  ::close(listenFd);
  ::unlink(path.c_str());
  writeSummary(out, engine, dropped);
  return 0;
}

} // namespace

int runDaemon(const DaemonOptions& options,
              const power::SignalEnergyTable& table, std::FILE* in,
              std::FILE* out, const volatile std::sig_atomic_t* stop) {
  ServeEngine engine(table, options.workers);
  if (options.socketPath.empty()) {
    return runStdinDaemon(engine, in, out, stop);
  }
  return runSocketDaemon(engine, options.socketPath, out, stop);
}

} // namespace sct::serve
