// The card-farm serving engine and daemon front-ends.
//
// ServeEngine is the heart: it boots ONE card to a golden quiesce
// snapshot (CardInstance::bootGolden), keeps a lazily built pool of
// per-worker CardInstances, and dispatches session jobs over a
// sim::WorkStealingPool. Each job recycles its worker's instance from
// the golden snapshot (restore ≫ faster than booting, and it rewinds
// the power accumulators for bit-identical deltas), runs the scenario
// script, and streams one NDJSON result line through the job's sink
// as soon as it finishes. Sinks are invoked under one engine-wide
// mutex and emit a line atomically, so concurrent workers can never
// interleave partial lines — the shutdown regression test reads
// daemon output mid-kill and every line must still parse.
//
// The daemon front-ends (runDaemon) wrap the engine in a job source:
// newline-delimited JSON on stdin (job files, pipes) or a unix domain
// socket serving multiple concurrent clients, each getting its own
// results back. Both honor a caller-owned stop flag (set from
// SIGINT/SIGTERM handlers): pending jobs are cancelled, in-flight
// sessions drain, partial results flush, and a final summary line
// {"event":"done","completed":N,"dropped":M} precedes a clean exit.
//
// Job line:    {"id":"s1","scenario":"auth","seed":7,"fidelity":"tl1"}
// Result line: {"event":"result","id":"s1",...,"energy_fJ":...,
//               "by_class":{...},"by_bundle":{...},...}
// Error line:  {"event":"error","id":"s1","error":"..."}
//
// Only fidelity "tl1" is served: the golden snapshot is a TL1 platform
// image, and per-session energy attribution needs the cycle-accurate
// ledger hookup. Other fidelity strings yield an error line (the field
// exists so TL2 farms can slot in without a protocol change).
#ifndef SCT_SERVE_DAEMON_H
#define SCT_SERVE_DAEMON_H

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "power/coeff_table.h"
#include "serve/card_instance.h"
#include "sim/work_stealing.h"

namespace sct::serve {

/// One parsed session job.
struct Job {
  std::string id;
  std::string scenario;
  std::uint64_t seed = 0;
  std::string fidelity = "tl1";
};

class ServeEngine {
 public:
  /// Receives one complete result/error line (no trailing newline).
  /// Called under the engine's emit lock — implementations must not
  /// re-enter the engine.
  using Sink = std::function<void(const std::string& line)>;

  /// Boots the golden snapshot (the one full card boot the whole farm
  /// pays) and starts `workers` pool threads (0 picks the default).
  ServeEngine(const power::SignalEnergyTable& table, unsigned workers);
  ~ServeEngine();

  /// Parse one NDJSON job line and dispatch it. Malformed lines and
  /// unknown scenarios/fidelities produce an immediate error line on
  /// `sink`; valid jobs produce a result line when the session ends.
  void submitLine(const std::string& line, Sink sink);

  /// Dispatch an already validated job.
  void submitJob(Job job, Sink sink);

  /// Block until every dispatched session has finished.
  void drain();

  /// Drop not-yet-started jobs (graceful shutdown); returns how many.
  std::size_t cancelPending();

  std::uint64_t completed() const { return completed_.load(); }
  std::uint64_t errors() const { return errors_.load(); }
  unsigned workerCount() const { return pool_.threadCount(); }
  const ckpt::Snapshot& golden() const { return golden_; }

  /// The exact line a finished session emits (exposed for the
  /// determinism suite, which compares lines across thread counts).
  static std::string resultLine(const Job& job, const SessionOutcome& o);
  static std::string errorLine(const std::string& id,
                               const std::string& message);

 private:
  CardInstance& instanceForThisWorker();
  void emit(const Sink& sink, const std::string& line);

  power::SignalEnergyTable table_;
  ckpt::Snapshot golden_;
  sim::WorkStealingPool pool_;
  std::vector<std::unique_ptr<CardInstance>> instances_;
  std::mutex emitMutex_;
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
};

struct DaemonOptions {
  unsigned workers = 0;       ///< 0 → defaultThreadCount().
  std::string socketPath;     ///< Empty → read jobs from `in`.
};

/// Run a serve daemon until the job source ends or `*stop` becomes
/// non-zero. Stdin mode reads NDJSON jobs from `in` and writes results
/// to `out`; socket mode listens on options.socketPath, serves each
/// connected client its own results, and writes the final summary to
/// `out`. Returns the process exit code (0 on clean shutdown,
/// including signal-initiated drains).
int runDaemon(const DaemonOptions& options,
              const power::SignalEnergyTable& table, std::FILE* in,
              std::FILE* out, const volatile std::sig_atomic_t* stop);

} // namespace sct::serve

#endif // SCT_SERVE_DAEMON_H
