// Minimal JSON for the serve protocol (newline-delimited JSON jobs in,
// result lines out).
//
// The daemon cannot take a third-party JSON dependency (the toolchain
// image is frozen), and the protocol needs only the scalar subset:
// objects, arrays, strings, doubles, bools, null. The parser is a
// strict recursive-descent over one line; the writer escapes strings
// per RFC 8259 and prints doubles with %.17g so a value survives a
// parse→print round trip BIT-EXACT — the session determinism suite
// compares result lines as strings, which only works because the
// energy doubles are printed losslessly.
#ifndef SCT_SERVE_JSON_H
#define SCT_SERVE_JSON_H

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sct::serve {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed JSON value. Objects keep insertion order irrelevant
/// (std::map) — the protocol addresses fields by name only.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  static JsonValue makeBool(bool b);
  static JsonValue makeNumber(double d);
  static JsonValue makeString(std::string s);
  static JsonValue makeArray();
  static JsonValue makeObject();

  Kind kind() const { return kind_; }
  bool isObject() const { return kind_ == Kind::Object; }
  bool isString() const { return kind_ == Kind::String; }
  bool isNumber() const { return kind_ == Kind::Number; }

  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const std::vector<JsonValue>& asArray() const;
  const std::map<std::string, JsonValue>& asObject() const;

  /// Object field access; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  std::vector<JsonValue>& mutableArray();
  std::map<std::string, JsonValue>& mutableObject();

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse one complete JSON document; trailing non-whitespace or any
/// syntax error throws JsonError with an offset-bearing message.
JsonValue parseJson(std::string_view text);

/// Append `text` JSON-escaped (quotes included) to `out`.
void appendJsonString(std::string& out, std::string_view text);

/// Append a double formatted with %.17g — lossless for any finite
/// value; non-finite values (which valid sessions never produce)
/// degrade to null.
void appendJsonNumber(std::string& out, double value);

} // namespace sct::serve

#endif // SCT_SERVE_JSON_H
