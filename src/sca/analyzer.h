// The attack harness: correlation power analysis (CPA) and classic
// difference-of-means DPA over a trace corpus.
//
// The analyzer recovers one byte of the coprocessor's ROUND-0 key word
// (rk0 = key[0] ^ 0x9E3779B9 — the key-schedule constant is public, so
// rk0 gives key[0] directly) from nothing but plaintexts and power
// traces. The leakage model mirrors the device's Hamming-distance
// emission: in round 0 the state register pair (d0, d1) toggles to
// (d1, d0 ^ F(d1, rk0)) with F(r, rk) = rotl(S(r ^ rk), 5) ^ (r >> 3),
// so the right-half toggle count is
//     popcount( K  ^  rotl(S(d1 ^ rk0), 5) ),
//     K = d1 ^ d0 ^ (d1 >> 3)   (known per trace).
// Byte `i` of the S layer contributes its eight bits at rotated
// positions (8i + j + 5) mod 32 — a function of ONE key byte — and the
// other three bytes, the left-half toggle, the other 15 rounds, bus
// traffic and measurement noise are all uncorrelated with it. Guessing
// byte i of rk0 and correlating the predicted contribution against
// every sample point ranks the correct guess first once enough traces
// average the rest away. (A plain Hamming-weight-of-S-box model has
// provably zero covariance here: the XOR with the varying known K bits
// flips the prediction's sign trace by trace. The partial-HD model
// above is the one that works — this is what the harness demonstrates.)
//
// Determinism contract: all accumulation is EXACT integer arithmetic
// (the corpus samples are already fixed-point integers; hypotheses are
// small counts), so partial accumulators merge associatively and the
// ranking is bit-identical for ANY chunk size and ANY thread count.
// Scores are computed in floating point only at ranking time, from the
// exact integer moments. Traces stream through one bounded chunk at a
// time — corpora far larger than RAM analyze fine.
#ifndef SCT_SCA_ANALYZER_H
#define SCT_SCA_ANALYZER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sca/corpus.h"

namespace sct::sca {

enum class AttackMode {
  Cpa,               ///< Pearson correlation against the HD hypothesis.
  DifferenceOfMeans, ///< Kocher-style split on hypothesis >= 4 bits,
                     ///< scored as the standardized mean difference.
};

struct AttackConfig {
  /// Which byte of the round-0 key word to recover (0 = LSB .. 3).
  unsigned byteIndex = 0;
  AttackMode mode = AttackMode::Cpa;
  /// Traces decoded and held in memory at a time (out-of-core bound).
  std::uint64_t chunkTraces = 256;
  /// Worker threads per chunk (1 = sequential reference).
  unsigned threads = 1;
  /// Trace counts at which to record a rank-vs-traces point. The final
  /// trace count is always recorded; checkpoints past the corpus end
  /// are ignored. Checkpoint ranks are independent of chunkTraces.
  std::vector<std::uint64_t> rankCheckpoints;
};

/// One point of the rank-vs-trace-count curve.
struct RankPoint {
  std::uint64_t traces = 0;
  unsigned rank = 0;        ///< 0 = correct guess scored highest.
  unsigned bestGuess = 0;
  double bestScore = 0.0;
  double correctScore = 0.0;
};

struct AttackResult {
  std::vector<RankPoint> curve;     ///< Checkpoints, ascending traces.
  std::array<double, 256> scores{}; ///< Final per-guess scores.
  unsigned bestGuess = 0;
  unsigned correctGuess = 0;        ///< Ground truth (corpus metadata).
  unsigned finalRank = 0;
  std::uint64_t traces = 0;
};

class DpaAnalyzer {
 public:
  explicit DpaAnalyzer(const AttackConfig& cfg) : cfg_(cfg) {}

  AttackResult analyze(const std::string& corpusPath) const;

  /// The predicted byte-i round-0 contribution for `guess` (0..8 bits).
  static unsigned hypothesis(const TraceMeta& meta, unsigned byteIndex,
                             unsigned guess);

  /// Ground truth: byte `byteIndex` of rk0 = key[0] ^ 0x9E3779B9.
  static unsigned roundZeroKeyByte(const std::uint32_t key[4],
                                   unsigned byteIndex);

 private:
  AttackConfig cfg_;
};

/// Smallest checkpoint from which the rank is 0 at every later point
/// of the curve (0 = never recovered; returns 0 if the curve is empty
/// or the attack never converges).
std::uint64_t tracesToRecovery(const AttackResult& result);

} // namespace sct::sca

#endif // SCT_SCA_ANALYZER_H
