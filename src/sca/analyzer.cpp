#include "sca/analyzer.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/parallel_runner.h"
#include "soc/peripherals.h"

namespace sct::sca {

namespace {

std::uint32_t rotl32(std::uint32_t v, unsigned k) {
  return k == 0 ? v : (v << k) | (v >> (32 - k));
}

/// Exact integer moment sums. Element-wise addition is associative and
/// commutative over integers, so any partition of the trace stream
/// merges to the same accumulator — the root of the chunk-size and
/// thread-count independence contract.
struct Moments {
  std::uint64_t n = 0;
  std::array<std::uint64_t, 256> sumH{};
  std::array<std::uint64_t, 256> sumHH{};
  std::vector<std::int64_t> sumX;    ///< [sample]
  std::vector<std::int64_t> sumXX;   ///< [sample]
  std::vector<std::int64_t> sumHX;   ///< [guess * samples + sample]
  std::array<std::uint64_t, 256> n1{};  ///< DoM: traces in the "1" set.
  std::vector<std::int64_t> sum1X;   ///< DoM: [guess * samples + sample]

  explicit Moments(std::size_t samples)
      : sumX(samples, 0),
        sumXX(samples, 0),
        sumHX(256 * samples, 0),
        sum1X(256 * samples, 0) {}

  void addTrace(const TraceRecord& trace, unsigned byteIndex) {
    const std::size_t samples = sumX.size();
    ++n;
    for (std::size_t t = 0; t < samples; ++t) {
      const std::int64_t x = trace.samples[t];
      sumX[t] += x;
      sumXX[t] += x * x;
    }
    for (unsigned g = 0; g < 256; ++g) {
      const auto h = static_cast<std::int64_t>(
          DpaAnalyzer::hypothesis(trace.meta, byteIndex, g));
      sumH[g] += static_cast<std::uint64_t>(h);
      sumHH[g] += static_cast<std::uint64_t>(h * h);
      std::int64_t* hx = &sumHX[static_cast<std::size_t>(g) * samples];
      if (h != 0) {
        for (std::size_t t = 0; t < samples; ++t) {
          hx[t] += h * trace.samples[t];
        }
      }
      if (h >= 4) {
        ++n1[g];
        std::int64_t* ox = &sum1X[static_cast<std::size_t>(g) * samples];
        for (std::size_t t = 0; t < samples; ++t) ox[t] += trace.samples[t];
      }
    }
  }

  void merge(const Moments& o) {
    n += o.n;
    for (unsigned g = 0; g < 256; ++g) {
      sumH[g] += o.sumH[g];
      sumHH[g] += o.sumHH[g];
      n1[g] += o.n1[g];
    }
    for (std::size_t i = 0; i < sumX.size(); ++i) {
      sumX[i] += o.sumX[i];
      sumXX[i] += o.sumXX[i];
    }
    for (std::size_t i = 0; i < sumHX.size(); ++i) {
      sumHX[i] += o.sumHX[i];
      sum1X[i] += o.sum1X[i];
    }
  }
};

/// Max-over-samples Pearson |r| for one guess, from exact moments.
double cpaScore(const Moments& m, unsigned g) {
  const std::size_t samples = m.sumX.size();
  const double n = static_cast<double>(m.n);
  const double sh = static_cast<double>(m.sumH[g]);
  const double shh = static_cast<double>(m.sumHH[g]);
  const double varH = n * shh - sh * sh;
  if (varH <= 0.0) return 0.0;  // Constant hypothesis: no information.
  const std::int64_t* hx = &m.sumHX[static_cast<std::size_t>(g) * samples];
  double best = 0.0;
  for (std::size_t t = 0; t < samples; ++t) {
    const double sx = static_cast<double>(m.sumX[t]);
    const double varX =
        n * static_cast<double>(m.sumXX[t]) - sx * sx;
    if (varX <= 0.0) continue;  // Constant sample point.
    const double cov = n * static_cast<double>(hx[t]) - sh * sx;
    const double r = std::abs(cov) / std::sqrt(varH * varX);
    best = std::max(best, r);
  }
  return best;
}

/// Max-over-samples standardized difference of means for one guess:
/// |mean(set1) − mean(set0)| divided by its standard error under the
/// pooled per-sample variance. The raw difference would be dominated
/// by high-variance cycles (plaintext loads, ciphertext stores toggle
/// whole words); standardizing makes the quiet crypto-round cycles —
/// where the partition actually separates — carry the score. Every
/// input is an exact integer moment, so the value is bit-identical for
/// any chunk/thread split.
double domScore(const Moments& m, unsigned g) {
  const std::uint64_t n1 = m.n1[g];
  const std::uint64_t n0 = m.n - n1;
  if (n1 == 0 || n0 == 0) return 0.0;
  const std::size_t samples = m.sumX.size();
  const double n = static_cast<double>(m.n);
  const double splitSe =
      1.0 / static_cast<double>(n1) + 1.0 / static_cast<double>(n0);
  const std::int64_t* ox = &m.sum1X[static_cast<std::size_t>(g) * samples];
  double best = 0.0;
  for (std::size_t t = 0; t < samples; ++t) {
    const double sx = static_cast<double>(m.sumX[t]);
    const double varX =
        (n * static_cast<double>(m.sumXX[t]) - sx * sx) / (n * n);
    if (varX <= 0.0) continue;  // Constant sample point: no partition info.
    const double mean1 = static_cast<double>(ox[t]) / static_cast<double>(n1);
    const double mean0 =
        (sx - static_cast<double>(ox[t])) / static_cast<double>(n0);
    best = std::max(best, std::abs(mean1 - mean0) / std::sqrt(varX * splitSe));
  }
  return best;
}

RankPoint rankNow(const Moments& m, const AttackConfig& cfg,
                  unsigned correctGuess, std::array<double, 256>& scores) {
  for (unsigned g = 0; g < 256; ++g) {
    scores[g] = cfg.mode == AttackMode::Cpa ? cpaScore(m, g)
                                            : domScore(m, g);
  }
  RankPoint p;
  p.traces = m.n;
  p.correctScore = scores[correctGuess];
  // Rank = number of guesses strictly better, ties broken by guess
  // index (deterministic — no float-compare ambiguity at equality).
  unsigned rank = 0;
  unsigned best = 0;
  for (unsigned g = 0; g < 256; ++g) {
    if (scores[g] > scores[best]) best = g;
    if (g == correctGuess) continue;
    if (scores[g] > p.correctScore ||
        (scores[g] == p.correctScore && g < correctGuess)) {
      ++rank;
    }
  }
  p.rank = rank;
  p.bestGuess = best;
  p.bestScore = scores[best];
  return p;
}

} // namespace

unsigned DpaAnalyzer::hypothesis(const TraceMeta& meta, unsigned byteIndex,
                                 unsigned guess) {
  const std::uint32_t d0 = meta.plaintext[0];
  const std::uint32_t d1 = meta.plaintext[1];
  const std::uint32_t known = d1 ^ d0 ^ (d1 >> 3);
  const auto ptByte =
      static_cast<std::uint8_t>(d1 >> (8 * byteIndex));
  const std::uint8_t sout = soc::CryptoCoprocessor::sbox(
      static_cast<std::uint8_t>(ptByte ^ guess));
  // The S output byte sits at bits [8i, 8i+8) and the round function
  // rotates it left by 5; XOR with the known bits at the landed
  // positions predicts this byte's toggle contribution.
  const std::uint32_t landed =
      rotl32(static_cast<std::uint32_t>(sout) << (8 * byteIndex), 5);
  const std::uint32_t knownMask =
      rotl32(0xFFu << (8 * byteIndex), 5);
  return static_cast<unsigned>(std::popcount((known & knownMask) ^ landed));
}

unsigned DpaAnalyzer::roundZeroKeyByte(const std::uint32_t key[4],
                                       unsigned byteIndex) {
  const std::uint32_t rk0 = key[0] ^ 0x9E3779B9u;
  return static_cast<unsigned>(static_cast<std::uint8_t>(rk0 >> (8 * byteIndex)));
}

AttackResult DpaAnalyzer::analyze(const std::string& corpusPath) const {
  TraceCorpusReader reader(corpusPath);
  const CorpusHeader& hdr = reader.header();
  const std::size_t samples = hdr.samplesPerTrace;
  if (samples == 0) {
    throw CorpusError("corpus has zero samples per trace: " + corpusPath);
  }
  if (hdr.traceCount == 0) {
    throw CorpusError("corpus has no traces: " + corpusPath);
  }

  // Segment boundaries: chunk ends (the out-of-core read granularity)
  // unioned with the requested rank checkpoints, so checkpoint ranks
  // never depend on where chunks happen to fall.
  std::vector<std::uint64_t> checkpoints;
  for (const std::uint64_t c : cfg_.rankCheckpoints) {
    if (c >= 1 && c <= hdr.traceCount) checkpoints.push_back(c);
  }
  checkpoints.push_back(hdr.traceCount);
  std::sort(checkpoints.begin(), checkpoints.end());
  checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()),
                    checkpoints.end());

  const std::uint64_t chunk = cfg_.chunkTraces == 0 ? 256 : cfg_.chunkTraces;

  AttackResult result;
  Moments total(samples);
  std::vector<TraceRecord> buf;
  std::uint64_t done = 0;
  std::size_t nextCkpt = 0;
  bool haveTruth = false;

  while (done < hdr.traceCount) {
    std::uint64_t goal = std::min(done + chunk, hdr.traceCount);
    goal = std::min(goal, checkpoints[nextCkpt]);
    const auto count = static_cast<std::size_t>(goal - done);

    buf.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!reader.next(buf[i])) {
        throw CorpusError("corpus ended early: " + corpusPath);
      }
      if (buf[i].samples.size() != samples) {
        throw CorpusError("trace sample count mismatch: " + corpusPath);
      }
    }
    if (!haveTruth) {
      result.correctGuess = roundZeroKeyByte(buf[0].meta.key,
                                             cfg_.byteIndex);
      haveTruth = true;
    }

    // Fixed-size index slices per worker; partials merge in slice
    // order, so the grand total is the sequential sum regardless of
    // which worker finished first (and integer sums make even THAT
    // precaution redundant — it documents the intent).
    const unsigned threads = cfg_.threads == 0 ? 1 : cfg_.threads;
    const std::size_t slices =
        std::min<std::size_t>(threads, count) > 0
            ? std::min<std::size_t>(threads, count)
            : 1;
    const std::size_t per = (count + slices - 1) / slices;
    std::vector<Moments> partial(slices, Moments(samples));
    sim::ParallelRunner::runIndexed(
        slices, threads, [&](std::size_t s) {
          const std::size_t lo = s * per;
          const std::size_t hi = std::min(count, lo + per);
          for (std::size_t i = lo; i < hi; ++i) {
            partial[s].addTrace(buf[i], cfg_.byteIndex);
          }
        });
    for (const Moments& p : partial) total.merge(p);

    done = goal;
    if (done == checkpoints[nextCkpt]) {
      result.curve.push_back(
          rankNow(total, cfg_, result.correctGuess, result.scores));
      ++nextCkpt;
    }
  }

  TraceRecord spare;
  if (reader.next(spare)) {
    throw CorpusError("corpus longer than its header claims: " + corpusPath);
  }

  result.traces = total.n;
  const RankPoint& last = result.curve.back();
  result.bestGuess = last.bestGuess;
  result.finalRank = last.rank;
  return result;
}

std::uint64_t tracesToRecovery(const AttackResult& result) {
  std::uint64_t first = 0;
  for (auto it = result.curve.rbegin(); it != result.curve.rend(); ++it) {
    if (it->rank != 0) break;
    first = it->traces;
  }
  return first;
}

} // namespace sct::sca
