// The trace factory: boot once, fork thousands of measured encryptions.
//
// A side-channel corpus needs many traces of the SAME operation under
// varying plaintexts — and the platform boot prefix is identical every
// time. CorpusRunner reuses the ckpt::ForkRunner discipline: one
// parent SoC boots a tiny key-loading firmware to a `break` (halted =
// trivially quiesced) and is snapshotted WITH its power model; every
// trace then restores that snapshot into a fresh rig, pokes its
// plaintext into RAM, arms the ROI profiler, resets the core at the
// firmware's `main` label and runs one encryption. Per-trace inputs
// (plaintext, noise seed, mask seed) are pure functions of the corpus
// seeds and the trace index, workers encode their traces to bytes
// independently, and the writer appends the blobs in index order — so
// the corpus FILE is byte-identical for any SCT_THREADS value.
#ifndef SCT_SCA_CORPUS_RUNNER_H
#define SCT_SCA_CORPUS_RUNNER_H

#include <cstdint>
#include <string>

#include "ckpt/fork_runner.h"
#include "obs/stats.h"
#include "power/coeff_table.h"
#include "sca/corpus.h"
#include "soc/assembler.h"
#include "soc/peripherals.h"

namespace sct::sca {

struct CorpusConfig {
  /// Cipher key, loaded by the boot firmware (the attack's target).
  std::uint32_t key[4] = {0x00112233, 0x44556677, 0x8899AABB, 0xCCDDEEFF};
  std::uint64_t traces = 512;

  /// Plaintext i = hash64(plaintextSeed, i, 0/1) — uniform, reproducible.
  std::uint64_t plaintextSeed = 0x5CA0;
  /// Per-trace measurement-noise stream seed (hash64(noiseSeed, i)).
  std::uint64_t noiseSeed = 0xACC3;
  double noiseSigma_fJ = 2.0;

  /// Datapath leak model applied to every fork's coprocessor. With
  /// leak.maskRounds set, each trace gets a fresh mask stream
  /// (hash64(leak.maskSeed, i)) — a masked device re-randomizes per
  /// operation.
  soc::CryptoCoprocessor::LeakConfig leak{0.8, false, 0xD15C};

  std::uint32_t samplesPerTrace = 96;
  std::uint32_t quantDenom = 64;
  std::uint64_t holdCycles = 64;
  /// Traces per generation batch: bounds memory at
  /// batch × (encoded trace size), independent of corpus size.
  std::uint64_t batchTraces = 64;
};

struct GenerateStats {
  std::uint64_t traces = 0;
  std::uint64_t bytes = 0;  ///< Corpus file size.
};

/// Publish generation statistics as obs counters (serve/eh convention).
void publishGenerateObs(const GenerateStats& s, obs::StatsRegistry& reg);

class CorpusRunner {
 public:
  /// Boots the parent (runs the key-loading prelude to its `break`)
  /// and keeps the snapshot. The coefficient table is copied: a runner
  /// outlives any temporary it was constructed from.
  CorpusRunner(const power::SignalEnergyTable& table,
               const CorpusConfig& cfg);

  /// Generate cfg.traces traces into a corpus at `path`, fanning forks
  /// over `threads` workers (1 = sequential reference; the output file
  /// is byte-identical either way).
  GenerateStats generate(const std::string& path, unsigned threads) const;

  /// Run a single fork and return its decoded record (test hook — what
  /// generate() writes for index i, without touching disk).
  TraceRecord runOne(std::uint64_t index) const;

  const CorpusConfig& config() const { return cfg_; }

  /// The deterministic per-trace input derivations, exposed so tests
  /// and the analyzer-verification path can recompute ground truth.
  static void plaintextFor(const CorpusConfig& cfg, std::uint64_t index,
                           std::uint32_t pt[2]);
  static std::uint64_t noiseSeedFor(const CorpusConfig& cfg,
                                    std::uint64_t index);
  static std::uint64_t maskSeedFor(const CorpusConfig& cfg,
                                   std::uint64_t index);

 private:
  TraceRecord captureTrace(const ckpt::Snapshot& snap,
                           std::uint64_t index) const;

  power::SignalEnergyTable table_;
  CorpusConfig cfg_;
  soc::AssembledProgram program_;
  ckpt::ForkRunner fork_;
};

} // namespace sct::sca

#endif // SCT_SCA_CORPUS_RUNNER_H
