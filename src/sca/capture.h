// ROI-gated power capture for trace corpus generation.
//
// A corpus trace is NOT the whole run's power profile — it is a short,
// perfectly aligned window over the crypto operation. RoiProfiler
// attaches to the layer-1 bus as an observer (registered AFTER the
// power model, the Tl1ProfileRecorder discipline) and reuses
// hier::AddressWatchTrigger to find the window: every accepted address
// phase is fed to the trigger, and the first cycle the trigger arms —
// the firmware's first touch of the watched SFR window — starts a
// fixed-length capture of samplesPerTrace consecutive bus cycles.
// Because every fork replays the identical instruction sequence from
// the identical snapshot, that first touch lands on the same relative
// cycle in every trace: traces are aligned by construction, no
// resynchronization pass needed.
//
// Each captured sample is
//     bus energy (power model, this cycle)
//   + crypto internal datapath leak (CryptoCoprocessor leak model)
//   + deterministic measurement noise,
// quantized to fixed point (× quantDenom, llround). The noise is an
// Irwin–Hall (sum of four uniforms) approximation of Gaussian noise
// drawn statelessly from (noiseSeed, sample index) via sim::hash64 —
// a pure function, so a trace's bytes depend only on (snapshot,
// plaintext, noise seed) and never on scheduling.
#ifndef SCT_SCA_CAPTURE_H
#define SCT_SCA_CAPTURE_H

#include <cstdint>
#include <vector>

#include "bus/ec_interfaces.h"
#include "hier/roi_trigger.h"
#include "power/tl1_power_model.h"
#include "soc/peripherals.h"

namespace sct::sca {

struct CaptureConfig {
  /// Capture length from the first ROI hit (bus cycles = samples).
  std::uint32_t samplesPerTrace = 48;
  /// Trigger hold window (re-armed on every ROI access).
  std::uint64_t holdCycles = 64;
  /// Gaussian-ish measurement noise sigma, fJ (0 = noiseless).
  double noiseSigma_fJ = 0.0;
  /// Fixed-point denominator for quantization (sample = fJ × this).
  std::uint32_t quantDenom = 64;
};

class RoiProfiler final : public bus::Tl1Observer {
 public:
  /// Watches `windows` (typically the crypto SFR block). `pm` must be
  /// registered on the same bus BEFORE this observer so its energy for
  /// the cycle is final at our busCycleEnd.
  RoiProfiler(const power::Tl1PowerModel& pm,
              const soc::CryptoCoprocessor& crypto,
              std::vector<hier::AddressWatchTrigger::Window> windows,
              const CaptureConfig& cfg);

  /// Reset for the next trace: clears samples and arms the capture
  /// with this trace's noise seed.
  void beginTrace(std::uint64_t noiseSeed);

  bool started() const { return started_; }
  bool done() const {
    return started_ && samples_.size() == cfg_.samplesPerTrace;
  }
  const std::vector<std::int64_t>& samples() const { return samples_; }
  std::uint64_t roiHits() const { return trigger_.hits(); }

  // bus::Tl1Observer
  void busCycleBegin(std::uint64_t cycle) override { cycle_ = cycle; }
  void addressPhase(const bus::AddressPhaseInfo& info) override;
  void busCycleEnd(std::uint64_t cycle) override;

 private:
  double noise_fJ(std::uint64_t sampleIndex) const;

  const power::Tl1PowerModel& pm_;
  const soc::CryptoCoprocessor& crypto_;
  hier::AddressWatchTrigger trigger_;
  CaptureConfig cfg_;

  std::uint64_t cycle_ = 0;
  std::uint64_t noiseSeed_ = 0;
  bool started_ = false;
  std::vector<std::int64_t> samples_;
};

} // namespace sct::sca

#endif // SCT_SCA_CAPTURE_H
