#include "sca/capture.h"

#include <cmath>

#include "sim/rng.h"

namespace sct::sca {

RoiProfiler::RoiProfiler(const power::Tl1PowerModel& pm,
                         const soc::CryptoCoprocessor& crypto,
                         std::vector<hier::AddressWatchTrigger::Window> windows,
                         const CaptureConfig& cfg)
    : pm_(pm), crypto_(crypto),
      trigger_(std::move(windows), cfg.holdCycles), cfg_(cfg) {
  samples_.reserve(cfg_.samplesPerTrace);
}

void RoiProfiler::beginTrace(std::uint64_t noiseSeed) {
  noiseSeed_ = noiseSeed;
  started_ = false;
  samples_.clear();
}

void RoiProfiler::addressPhase(const bus::AddressPhaseInfo& info) {
  if (info.accepted && info.request != nullptr) {
    trigger_.onSubmit(*info.request, cycle_);
  }
}

void RoiProfiler::busCycleEnd(std::uint64_t cycle) {
  if (!started_) {
    // The tripping access arms the trigger on this very cycle (our
    // addressPhase ran before this callback), so the first ROI-touching
    // bus cycle is also the first sample.
    if (!trigger_.armed(cycle)) return;
    started_ = true;
  }
  if (samples_.size() >= cfg_.samplesPerTrace) return;
  const std::uint64_t idx = samples_.size();
  const double sample_fJ = pm_.energyLastCycle_fJ() +
                           crypto_.internalEnergyLastCycle_fJ() +
                           noise_fJ(idx);
  samples_.push_back(static_cast<std::int64_t>(
      std::llround(sample_fJ * static_cast<double>(cfg_.quantDenom))));
}

double RoiProfiler::noise_fJ(std::uint64_t sampleIndex) const {
  if (cfg_.noiseSigma_fJ == 0.0) return 0.0;
  // Irwin–Hall: the sum of four U(0,1) draws has mean 2 and variance
  // 1/3; (sum − 2)·√3 is then a cheap unit-variance Gaussian-ish
  // deviate, drawn statelessly so traces never share noise state.
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 4; ++k) {
    sum += sim::unitDouble(sim::hash64(noiseSeed_, sampleIndex, k));
  }
  return cfg_.noiseSigma_fJ * (sum - 2.0) * 1.7320508075688772;
}

} // namespace sct::sca
