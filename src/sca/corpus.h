// The trace corpus: the on-disk interchange format between the trace
// factory (sca::CorpusRunner) and the attack harness (sca::DpaAnalyzer).
//
// A corpus is a few thousand to a few million power traces of the SAME
// firmware sequence, one per (plaintext, noise seed) variant, each a
// fixed-length vector of per-cycle energy samples over the crypto ROI.
// Requirements that shaped the format:
//
//  * Out-of-core on both ends. The writer streams — one encoded trace
//    appended at a time, nothing buffered beyond the current record —
//    and the reader decodes one trace per next() call, so corpora far
//    larger than RAM analyze in bounded memory.
//  * Compact. Samples are fixed-point (energy_fJ × quantDenom, rounded
//    to integer) and delta-coded within a trace, then zigzag-varint
//    encoded: consecutive ROI cycles carry similar energy, so most
//    deltas fit one or two bytes (~3x smaller than raw f64 vectors).
//  * Versioned and refusing. Like the ckpt snapshot format: bad magic,
//    unsupported version, truncation anywhere, payload/sample-count
//    mismatches and trailing bytes all raise CorpusError with a
//    message naming the problem — never silent garbage (the golden
//    tiny-corpus test pins the byte layout; tests/sca exercises every
//    refusal path).
//  * Self-describing per trace. Key, plaintext, ciphertext and the
//    noise seed travel with each trace, so an analyzer can verify its
//    leakage model against ground truth and a corpus can mix keys.
//
// Layout (all little-endian):
//   "SCTCORP\n"            8-byte magic
//   u32 format version     (kCorpusFormatVersion)
//   u32 samplesPerTrace
//   u32 quantDenom         sample_fJ = quantized / quantDenom
//   u32 reserved (0)
//   u64 traceCount         (patched by the writer on close)
//   per trace:
//     u32 key[4], u32 plaintext[2], u32 ciphertext[2], u64 noiseSeed
//     u32 payloadBytes, then that many bytes of zigzag-varint deltas
//     decoding to exactly samplesPerTrace quantized samples.
#ifndef SCT_SCA_CORPUS_H
#define SCT_SCA_CORPUS_H

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace sct::sca {

/// Any malformed, truncated or version-skewed corpus lands here — a
/// catchable error with a human-readable message, never UB.
class CorpusError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kCorpusFormatVersion = 1;

struct CorpusHeader {
  std::uint32_t samplesPerTrace = 0;
  std::uint32_t quantDenom = 64;  ///< Fixed-point denominator (fJ⁻¹).
  std::uint64_t traceCount = 0;   ///< Filled by the reader / on close.
};

/// Per-trace metadata: everything the attack needs (plaintext) plus
/// the ground truth the tests verify against (key, ciphertext, seed).
struct TraceMeta {
  std::uint32_t key[4] = {};
  std::uint32_t plaintext[2] = {};
  std::uint32_t ciphertext[2] = {};
  std::uint64_t noiseSeed = 0;
};

struct TraceRecord {
  TraceMeta meta;
  /// Quantized samples (fixed-point: value / quantDenom = energy fJ).
  std::vector<std::int64_t> samples;
};

/// Encode one trace record to the exact bytes the writer appends
/// (exposed so corpus generation workers can encode in parallel and
/// the writer can append the blobs in index order — the foundation of
/// the bit-identical-across-SCT_THREADS contract).
std::vector<std::uint8_t> encodeTrace(const TraceRecord& record,
                                      std::uint32_t samplesPerTrace);

/// Streaming corpus writer. Writes the header on open (trace count 0),
/// appends traces one at a time, and patches the count on close().
class TraceCorpusWriter {
 public:
  TraceCorpusWriter(const std::string& path, const CorpusHeader& header);
  ~TraceCorpusWriter();

  TraceCorpusWriter(const TraceCorpusWriter&) = delete;
  TraceCorpusWriter& operator=(const TraceCorpusWriter&) = delete;

  void append(const TraceRecord& record);
  /// Append a blob produced by encodeTrace (worker-encoded path).
  void appendEncoded(const std::vector<std::uint8_t>& blob);

  /// Patch the trace count into the header and close the file.
  /// Idempotent; also run by the destructor.
  void close();

  std::uint64_t tracesWritten() const { return traces_; }
  std::uint64_t bytesWritten() const { return bytes_; }

 private:
  std::ofstream out_;
  std::string path_;
  CorpusHeader header_;
  std::uint64_t traces_ = 0;
  std::uint64_t bytes_ = 0;
  bool open_ = false;
};

/// Chunk-reading corpus decoder: one trace per next() call, bounded
/// memory regardless of corpus size.
class TraceCorpusReader {
 public:
  explicit TraceCorpusReader(const std::string& path);

  const CorpusHeader& header() const { return header_; }

  /// Decode the next trace into `out`. Returns false exactly once,
  /// after traceCount traces — at which point the file must end
  /// (trailing bytes are refused).
  bool next(TraceRecord& out);

  std::uint64_t tracesRead() const { return read_; }

 private:
  std::ifstream in_;
  std::string path_;
  CorpusHeader header_;
  std::uint64_t read_ = 0;
};

} // namespace sct::sca

#endif // SCT_SCA_CORPUS_H
