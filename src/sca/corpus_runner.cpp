#include "sca/corpus_runner.h"

#include <algorithm>
#include <vector>

#include "bus/tl1_bus.h"
#include "ckpt/checkpoint.h"
#include "power/tl1_power_model.h"
#include "sca/capture.h"
#include "sim/rng.h"
#include "soc/smartcard.h"

namespace sct::sca {

namespace {

using Tl1Soc = soc::SmartCardSoC<bus::Tl1Bus>;

/// The measured-encryption firmware. The prelude loads the session key
/// (immediates baked into the image — on a real card it would arrive
/// over the ISO 7816 link long before the attacker's window) and halts;
/// that halt is the fork point. `main` is the per-trace entry: one
/// plaintext from RAM, one coprocessor operation, ciphertext back to
/// RAM, then a padding loop so the bus keeps clocking until the ROI
/// capture window is guaranteed full.
soc::AssembledProgram buildFirmware(const std::uint32_t key[4]) {
  std::string src = R"(
    li    $s1, 0x08000000      # RAM base
    li    $s2, 0x10000400      # crypto SFR base
)";
  for (int k = 0; k < 4; ++k) {
    src += "    li    $t0, " + std::to_string(key[k]) + "\n";
    src += "    sw    $t0, " + std::to_string(4 * k) + "($s2)\n";
  }
  src += R"(
    break

  main:
    li    $s1, 0x08000000
    li    $s2, 0x10000400
    lw    $t0, 0x20($s1)
    sw    $t0, 0x10($s2)       # DATA0 <- plaintext[0]
    lw    $t0, 0x24($s1)
    sw    $t0, 0x14($s2)       # DATA1 <- plaintext[1]
    addiu $t0, $zero, 1
    sw    $t0, 0x18($s2)       # CTRL: encrypt
  cwait:
    lw    $t0, 0x1C($s2)
    bnez  $t0, cwait
    lw    $t0, 0x10($s2)
    sw    $t0, 0x28($s1)       # ciphertext[0]
    lw    $t0, 0x14($s2)
    sw    $t0, 0x2C($s1)       # ciphertext[1]
    li    $t1, 96
  pad:
    addiu $t1, $t1, -1
    bnez  $t1, pad
    break
)";
  return soc::assemble(src, soc::memmap::kRomBase);
}

CaptureConfig capFor(const CorpusConfig& cfg) {
  CaptureConfig cap;
  cap.samplesPerTrace = cfg.samplesPerTrace;
  cap.holdCycles = cfg.holdCycles;
  cap.noiseSigma_fJ = cfg.noiseSigma_fJ;
  cap.quantDenom = cfg.quantDenom;
  return cap;
}

/// One instrumented platform: SoC + power model + ROI profiler, with
/// the checkpoint registry covering the SoC's fourteen sections plus
/// "pm" (the CardInstance discipline — restoring the power model's
/// accumulators makes every fork's energy stream start from the
/// identical bit pattern). The profiler itself is NOT checkpointed:
/// it is per-trace scratch state, armed fresh by beginTrace().
struct TraceRig {
  Tl1Soc soc;
  power::Tl1PowerModel pm;
  RoiProfiler profiler;
  ckpt::CheckpointRegistry registry;

  TraceRig(const power::SignalEnergyTable& table,
           const soc::AssembledProgram& program, const CaptureConfig& cap)
      : soc(soc::SocConfig{}),
        pm(table),
        profiler(pm, soc.crypto(),
                 {{soc::memmap::kCryptoBase, soc::memmap::kSfrWindow}},
                 cap) {
    // Power model before profiler: the profiler reads the model's
    // per-cycle energy at busCycleEnd, which is only final if the
    // model's own busCycleEnd ran first.
    soc.bus().addObserver(pm);
    soc.bus().addObserver(profiler);
    soc.loadProgram(program);
    soc.registerCheckpoint(registry);
    registry.add("pm", pm);
  }
};

} // namespace

void publishGenerateObs(const GenerateStats& s, obs::StatsRegistry& reg) {
  reg.counter("sca.traces").add(s.traces);
  reg.counter("sca.corpus_bytes").add(s.bytes);
}

CorpusRunner::CorpusRunner(const power::SignalEnergyTable& table,
                           const CorpusConfig& cfg)
    : table_(table),
      cfg_(cfg),
      program_(buildFirmware(cfg.key)),
      fork_([&]() -> ckpt::Snapshot {
        TraceRig parent(table_, program_, capFor(cfg));
        if (!parent.soc.run(500'000)) {
          throw CorpusError(
              "CorpusRunner: boot firmware did not reach its fork point");
        }
        return parent.registry.saveAll();
      }) {}

void CorpusRunner::plaintextFor(const CorpusConfig& cfg, std::uint64_t index,
                                std::uint32_t pt[2]) {
  pt[0] = static_cast<std::uint32_t>(sim::hash64(cfg.plaintextSeed, index, 0));
  pt[1] = static_cast<std::uint32_t>(sim::hash64(cfg.plaintextSeed, index, 1));
}

std::uint64_t CorpusRunner::noiseSeedFor(const CorpusConfig& cfg,
                                         std::uint64_t index) {
  return sim::hash64(cfg.noiseSeed, index);
}

std::uint64_t CorpusRunner::maskSeedFor(const CorpusConfig& cfg,
                                        std::uint64_t index) {
  // A masked device draws fresh randomness per operation; each trace
  // gets its own mask stream so masks never repeat across the corpus.
  return sim::hash64(cfg.leak.maskSeed, index);
}

TraceRecord CorpusRunner::captureTrace(const ckpt::Snapshot& snap,
                                       std::uint64_t index) const {
  TraceRig rig(table_, program_, capFor(cfg_));
  rig.registry.loadAll(snap);

  TraceRecord rec;
  for (int k = 0; k < 4; ++k) rec.meta.key[k] = cfg_.key[k];
  plaintextFor(cfg_, index, rec.meta.plaintext);
  rec.meta.noiseSeed = noiseSeedFor(cfg_, index);

  rig.soc.ram().pokeWord(soc::memmap::kRamBase + 0x20, rec.meta.plaintext[0]);
  rig.soc.ram().pokeWord(soc::memmap::kRamBase + 0x24, rec.meta.plaintext[1]);

  soc::CryptoCoprocessor::LeakConfig leak = cfg_.leak;
  leak.maskSeed = maskSeedFor(cfg_, index);
  rig.soc.crypto().setLeakModel(leak);

  rig.profiler.beginTrace(rec.meta.noiseSeed);
  // reset() clears registers, pipeline and caches to their power-on
  // state — every fork enters `main` from the identical micro-state,
  // which is what makes traces align cycle-for-cycle.
  rig.soc.cpu().reset(program_.label("main"));
  if (!rig.soc.run(200'000)) {
    throw CorpusError("sca trace " + std::to_string(index) +
                      ": firmware did not halt");
  }
  if (!rig.profiler.done()) {
    throw CorpusError(
        "sca trace " + std::to_string(index) + ": ROI capture incomplete (" +
        std::to_string(rig.profiler.samples().size()) + " of " +
        std::to_string(cfg_.samplesPerTrace) + " samples)");
  }
  rec.meta.ciphertext[0] =
      rig.soc.ram().peekWord(soc::memmap::kRamBase + 0x28);
  rec.meta.ciphertext[1] =
      rig.soc.ram().peekWord(soc::memmap::kRamBase + 0x2C);
  rec.samples = rig.profiler.samples();
  return rec;
}

TraceRecord CorpusRunner::runOne(std::uint64_t index) const {
  return captureTrace(fork_.snapshot(), index);
}

GenerateStats CorpusRunner::generate(const std::string& path,
                                     unsigned threads) const {
  CorpusHeader hdr;
  hdr.samplesPerTrace = cfg_.samplesPerTrace;
  hdr.quantDenom = cfg_.quantDenom;
  TraceCorpusWriter writer(path, hdr);

  GenerateStats stats;
  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::uint64_t base = 0; base < cfg_.traces;
       base += cfg_.batchTraces) {
    const std::uint64_t n =
        std::min<std::uint64_t>(cfg_.batchTraces, cfg_.traces - base);
    blobs.assign(static_cast<std::size_t>(n), {});
    fork_.runForks(static_cast<std::size_t>(n), threads,
                   [&](const ckpt::Snapshot& snap, std::size_t i) {
                     blobs[i] = encodeTrace(
                         captureTrace(snap, base + i), cfg_.samplesPerTrace);
                   });
    // Index-ordered append: the file's bytes are independent of which
    // worker finished first.
    for (const std::vector<std::uint8_t>& b : blobs) writer.appendEncoded(b);
  }
  writer.close();
  stats.traces = writer.tracesWritten();
  stats.bytes = writer.bytesWritten();
  return stats;
}

} // namespace sct::sca
