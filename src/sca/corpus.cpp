#include "sca/corpus.h"

#include <cstring>

namespace sct::sca {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'T', 'C', 'O', 'R', 'P', '\n'};
/// Byte offset of the u64 trace count inside the header.
constexpr std::streamoff kCountOffset = 8 + 4 * 4;

void putU32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putVarint(std::vector<std::uint8_t>& b, std::uint64_t v) {
  while (v >= 0x80) {
    b.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  b.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

/// Little-endian field reads over an in-memory record block.
struct BlockReader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;

  void need(std::size_t k, const std::string& what) const {
    if (n - pos < k) {
      throw CorpusError("corpus trace record truncated reading " + what);
    }
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  }
};

} // namespace

std::vector<std::uint8_t> encodeTrace(const TraceRecord& record,
                                      std::uint32_t samplesPerTrace) {
  if (record.samples.size() != samplesPerTrace) {
    throw CorpusError("trace has " + std::to_string(record.samples.size()) +
                      " samples, corpus header says " +
                      std::to_string(samplesPerTrace));
  }
  std::vector<std::uint8_t> payload;
  payload.reserve(2 * record.samples.size());
  std::int64_t prev = 0;
  for (const std::int64_t s : record.samples) {
    putVarint(payload, zigzag(s - prev));
    prev = s;
  }

  std::vector<std::uint8_t> blob;
  blob.reserve(44 + payload.size());
  for (const std::uint32_t k : record.meta.key) putU32(blob, k);
  for (const std::uint32_t p : record.meta.plaintext) putU32(blob, p);
  for (const std::uint32_t c : record.meta.ciphertext) putU32(blob, c);
  putU64(blob, record.meta.noiseSeed);
  putU32(blob, static_cast<std::uint32_t>(payload.size()));
  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

// ---------------------------------------------------------------------------
// TraceCorpusWriter
// ---------------------------------------------------------------------------

TraceCorpusWriter::TraceCorpusWriter(const std::string& path,
                                     const CorpusHeader& header)
    : path_(path), header_(header) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) throw CorpusError("cannot open corpus for writing: " + path);
  std::vector<std::uint8_t> h;
  h.insert(h.end(), kMagic, kMagic + 8);
  putU32(h, kCorpusFormatVersion);
  putU32(h, header_.samplesPerTrace);
  putU32(h, header_.quantDenom);
  putU32(h, 0);  // reserved
  putU64(h, 0);  // trace count, patched on close
  out_.write(reinterpret_cast<const char*>(h.data()),
             static_cast<std::streamsize>(h.size()));
  bytes_ = h.size();
  open_ = true;
}

TraceCorpusWriter::~TraceCorpusWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() reports errors.
  }
}

void TraceCorpusWriter::append(const TraceRecord& record) {
  appendEncoded(encodeTrace(record, header_.samplesPerTrace));
}

void TraceCorpusWriter::appendEncoded(const std::vector<std::uint8_t>& blob) {
  if (!open_) throw CorpusError("corpus writer already closed: " + path_);
  out_.write(reinterpret_cast<const char*>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
  if (!out_) throw CorpusError("corpus write failed: " + path_);
  ++traces_;
  bytes_ += blob.size();
}

void TraceCorpusWriter::close() {
  if (!open_) return;
  open_ = false;
  out_.seekp(kCountOffset);
  std::vector<std::uint8_t> c;
  putU64(c, traces_);
  out_.write(reinterpret_cast<const char*>(c.data()), 8);
  out_.close();
  if (!out_ && traces_ > 0) {
    throw CorpusError("corpus close failed: " + path_);
  }
}

// ---------------------------------------------------------------------------
// TraceCorpusReader
// ---------------------------------------------------------------------------

TraceCorpusReader::TraceCorpusReader(const std::string& path) : path_(path) {
  in_.open(path, std::ios::binary);
  if (!in_) throw CorpusError("cannot open corpus: " + path);
  std::uint8_t h[8 + 4 * 4 + 8];
  in_.read(reinterpret_cast<char*>(h), sizeof h);
  if (in_.gcount() != static_cast<std::streamsize>(sizeof h)) {
    throw CorpusError("corpus header truncated: " + path);
  }
  if (std::memcmp(h, kMagic, 8) != 0) {
    throw CorpusError("bad magic — not a trace corpus: " + path);
  }
  BlockReader r{h + 8, sizeof h - 8};
  const std::uint32_t version = r.u32("format version");
  if (version != kCorpusFormatVersion) {
    throw CorpusError("unsupported corpus format version " +
                      std::to_string(version) + " (expected " +
                      std::to_string(kCorpusFormatVersion) + "): " + path);
  }
  header_.samplesPerTrace = r.u32("samplesPerTrace");
  header_.quantDenom = r.u32("quantDenom");
  r.u32("reserved");
  header_.traceCount = r.u64("traceCount");
  if (header_.quantDenom == 0) {
    throw CorpusError("corpus quantDenom is zero: " + path);
  }
}

bool TraceCorpusReader::next(TraceRecord& out) {
  if (read_ == header_.traceCount) {
    // The count is authoritative; anything after the last trace is
    // corruption (e.g. a writer that died before patching the count).
    if (in_.peek() != std::ifstream::traits_type::eof()) {
      throw CorpusError("trailing bytes after trace " +
                        std::to_string(read_) + ": " + path_);
    }
    return false;
  }

  std::uint8_t fixed[4 * 8 + 8 + 4];  // key+pt+ct (8 u32), seed, payloadLen
  in_.read(reinterpret_cast<char*>(fixed), sizeof fixed);
  if (in_.gcount() != static_cast<std::streamsize>(sizeof fixed)) {
    throw CorpusError("corpus truncated in trace " + std::to_string(read_) +
                      " metadata (header claims " +
                      std::to_string(header_.traceCount) + " traces): " +
                      path_);
  }
  BlockReader r{fixed, sizeof fixed};
  for (std::uint32_t& k : out.meta.key) k = r.u32("key");
  for (std::uint32_t& p : out.meta.plaintext) p = r.u32("plaintext");
  for (std::uint32_t& c : out.meta.ciphertext) c = r.u32("ciphertext");
  out.meta.noiseSeed = r.u64("noiseSeed");
  const std::uint32_t payloadBytes = r.u32("payloadBytes");

  std::vector<std::uint8_t> payload(payloadBytes);
  in_.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(payloadBytes));
  if (in_.gcount() != static_cast<std::streamsize>(payloadBytes)) {
    throw CorpusError("corpus truncated in trace " + std::to_string(read_) +
                      " samples: " + path_);
  }

  out.samples.clear();
  out.samples.reserve(header_.samplesPerTrace);
  std::size_t pos = 0;
  std::int64_t prev = 0;
  while (out.samples.size() < header_.samplesPerTrace) {
    std::uint64_t u = 0;
    int shift = 0;
    for (;;) {
      if (pos >= payload.size()) {
        throw CorpusError("corrupt sample stream in trace " +
                          std::to_string(read_) +
                          ": payload ends mid-varint: " + path_);
      }
      const std::uint8_t byte = payload[pos++];
      u |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) {
        throw CorpusError("corrupt sample stream in trace " +
                          std::to_string(read_) + ": varint overlong: " +
                          path_);
      }
    }
    prev += unzigzag(u);
    out.samples.push_back(prev);
  }
  if (pos != payload.size()) {
    throw CorpusError("corrupt sample stream in trace " +
                      std::to_string(read_) + ": " +
                      std::to_string(payload.size() - pos) +
                      " surplus payload bytes: " + path_);
  }
  ++read_;
  return true;
}

} // namespace sct::sca
