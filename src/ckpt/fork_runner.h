// Boot-once / fork-many exploration driver.
//
// The paper's Section 4.3 exploration re-simulates the same applet
// under dozens of interface configurations, and every job pays for the
// identical SoC boot prefix again. ForkRunner amortizes that prefix:
// one parent system boots to a quiesce point and is checkpointed; each
// configuration variant then restores the shared snapshot into a fresh
// system (copy-on-write memory images — a clean ROM/flash page never
// leaves the shared prototype) and runs only its own measured phase.
// Restore-equivalence (tests/ckpt) guarantees every fork continues
// bit-identically to a system that had executed the boot itself, so
// the sweep's results are unchanged — only the boot cost is paid once.
#ifndef SCT_CKPT_FORK_RUNNER_H
#define SCT_CKPT_FORK_RUNNER_H

#include <cstddef>
#include <functional>
#include <utility>

#include "ckpt/checkpoint.h"
#include "sim/parallel_runner.h"

namespace sct::ckpt {

class ForkRunner {
 public:
  /// Runs the boot phase once, on the calling thread, and keeps its
  /// snapshot. The callback builds the parent system, drives it to a
  /// quiesce point and returns CheckpointRegistry::saveAll(); any
  /// shared prototype images the parent's slaves read through must
  /// outlive the runner (see MemorySlave::saveState).
  explicit ForkRunner(const std::function<Snapshot()>& boot)
      : snapshot_(boot()) {}

  /// Adopt an existing snapshot (e.g. Snapshot::loadFile of a golden
  /// boot checkpoint) instead of booting.
  explicit ForkRunner(Snapshot snapshot) : snapshot_(std::move(snapshot)) {}

  /// Fan `count` variants out over `threads` workers (0 = default pool
  /// size, 1 = strictly sequential in-caller — the reference sweep
  /// order). Each variant receives the shared snapshot by const
  /// reference — Snapshot is immutable plain data, safe to share — and
  /// must construct its own system, loadAll() the snapshot, apply its
  /// configuration delta and run. Results are written into caller-owned
  /// slots keyed by the variant index, exactly the ParallelRunner
  /// discipline, so the collected output is deterministic regardless of
  /// scheduling.
  void runForks(
      std::size_t count, unsigned threads,
      const std::function<void(const Snapshot&, std::size_t)>& variant)
      const {
    const Snapshot& snap = snapshot_;
    sim::ParallelRunner::runIndexed(
        count, threads, [&](std::size_t i) { variant(snap, i); });
  }

  const Snapshot& snapshot() const { return snapshot_; }

 private:
  Snapshot snapshot_;
};

} // namespace sct::ckpt

#endif // SCT_CKPT_FORK_RUNNER_H
