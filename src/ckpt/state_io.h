// Byte-level state serialization for deterministic checkpoints.
//
// StateWriter/StateReader are deliberately header-only and dependency-
// free: every layer of the stack (sim, bus, power, soc, jcvm) includes
// this header to implement its `saveState`/`loadState` pair without
// linking against the ckpt library. The encoding is fixed little-endian
// regardless of host, so an on-disk snapshot is portable across
// machines; doubles round-trip through their IEEE-754 bit pattern, so
// restored energy accumulators are bit-identical to the values saved —
// a hard requirement for the restore-equivalence suite, which compares
// femtojoule totals with operator== rather than a tolerance.
#ifndef SCT_CKPT_STATE_IO_H
#define SCT_CKPT_STATE_IO_H

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sct::ckpt {

/// Any malformed, truncated or version-skewed snapshot lands here —
/// a catchable error with a human-readable message, never UB.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { putLe(v, 2); }
  void u32(std::uint32_t v) { putLe(v, 4); }
  void u64(std::uint64_t v) { putLe(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern: restores compare equal, -0.0 and NaN
  /// payloads included.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Length-prefixed string (u32 length + raw bytes).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void putLe(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class StateReader {
 public:
  StateReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit StateReader(const std::vector<std::uint8_t>& buf)
      : StateReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return takeLe(1) & 0xFFu; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(takeLe(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(takeLe(4)); }
  std::uint64_t u64() { return takeLe(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }
  double f64() { return std::bit_cast<double>(u64()); }

  void bytes(void* dst, std::size_t n) {
    need(n);
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw CheckpointError("checkpoint payload truncated: need " +
                            std::to_string(n) + " bytes, have " +
                            std::to_string(size_ - pos_));
    }
  }

  std::uint64_t takeLe(int n) {
    need(static_cast<std::size_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

} // namespace sct::ckpt

#endif // SCT_CKPT_STATE_IO_H
