#include "ckpt/checkpoint.h"

#include <cstdio>
#include <cstring>

namespace sct::ckpt {

void Snapshot::addSection(std::string tag, std::uint32_t version,
                          std::vector<std::uint8_t> payload) {
  for (const Section& s : sections_) {
    if (s.tag == tag) {
      throw CheckpointError("duplicate checkpoint section tag '" + tag +
                            "'");
    }
  }
  sections_.push_back(Section{std::move(tag), version, std::move(payload)});
}

const Snapshot::Section* Snapshot::find(std::string_view tag) const {
  for (const Section& s : sections_) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

std::vector<std::uint8_t> Snapshot::serialize() const {
  StateWriter w;
  w.bytes(kMagic, sizeof(kMagic));
  w.u32(kFormatVersion);
  w.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    w.str(s.tag);
    w.u32(s.version);
    w.u32(static_cast<std::uint32_t>(s.payload.size()));
    w.bytes(s.payload.data(), s.payload.size());
  }
  return w.take();
}

Snapshot Snapshot::deserialize(const std::uint8_t* data, std::size_t size) {
  StateReader r(data, size);
  char magic[sizeof(kMagic)];
  r.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError("not a checkpoint file (bad magic)");
  }
  const std::uint32_t format = r.u32();
  if (format != kFormatVersion) {
    throw CheckpointError(
        "unsupported checkpoint format version " + std::to_string(format) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        ")");
  }
  const std::uint32_t count = r.u32();
  Snapshot snap;
  for (std::uint32_t i = 0; i < count; ++i) {
    Section s;
    s.tag = r.str();
    s.version = r.u32();
    const std::uint32_t len = r.u32();
    s.payload.resize(len);
    r.bytes(s.payload.data(), len);
    snap.sections_.push_back(std::move(s));
  }
  if (!r.done()) {
    throw CheckpointError("trailing bytes after last checkpoint section");
  }
  return snap;
}

void Snapshot::saveFile(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw CheckpointError("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int closeErr = std::fclose(f);
  if (written != bytes.size() || closeErr != 0) {
    throw CheckpointError("short write to '" + path + "'");
  }
}

Snapshot Snapshot::loadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw CheckpointError("cannot open '" + path + "' for reading");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool readErr = std::ferror(f) != 0;
  std::fclose(f);
  if (readErr) {
    throw CheckpointError("read error on '" + path + "'");
  }
  return deserialize(bytes);
}

void CheckpointRegistry::addComponent(std::unique_ptr<Checkpointable> c) {
  for (const auto& existing : components_) {
    if (existing->tag() == c->tag()) {
      throw CheckpointError("component tag '" + std::string(c->tag()) +
                            "' registered twice");
    }
  }
  components_.push_back(std::move(c));
}

Snapshot CheckpointRegistry::saveAll() const {
  Snapshot snap;
  for (const auto& c : components_) {
    StateWriter w;
    c->save(w);
    snap.addSection(std::string(c->tag()), c->version(), w.take());
  }
  return snap;
}

void CheckpointRegistry::loadAll(const Snapshot& snap) {
  for (const auto& c : components_) {
    const Snapshot::Section* s = snap.find(c->tag());
    if (s == nullptr) {
      throw CheckpointError("snapshot has no section for component '" +
                            std::string(c->tag()) + "'");
    }
    if (s->version != c->version()) {
      throw CheckpointError(
          "component '" + std::string(c->tag()) + "' version skew: " +
          "snapshot has v" + std::to_string(s->version) +
          ", this build expects v" + std::to_string(c->version()));
    }
    StateReader r(s->payload.data(), s->payload.size());
    c->load(r);
    if (!r.done()) {
      throw CheckpointError("component '" + std::string(c->tag()) +
                            "' left " + std::to_string(r.remaining()) +
                            " unread payload bytes");
    }
  }
}

} // namespace sct::ckpt
