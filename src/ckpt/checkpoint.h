// Deterministic full-system checkpoint/restore.
//
// A Snapshot is an ordered list of tagged, versioned component
// sections; the CheckpointRegistry binds live simulation objects to
// those sections. Snapshots may only be taken at *quiesce points*
// (zero outstanding transfers per class, TL2 idle, bridge drained —
// the same predicate the hier subsystem uses for fidelity switches):
// at quiesce every pointer-carrying transient (request queues, bridge
// slots, masters' in-flight lists) is empty, so components serialize
// plain counters, stats and lazy bookkeeping only, and a restore into
// a freshly constructed system continues bit-identically — same
// cycles, payloads, per-signal transitions, stats and energy as the
// uninterrupted run.
//
// On-disk format (all little-endian):
//   magic "SCTCKPT\n" (8 bytes)
//   u32 format version (kFormatVersion)
//   u32 section count
//   per section: str tag, u32 component version, u32 payload length,
//                payload bytes
// Unknown tags, missing tags, version skew and truncation are rejected
// with a CheckpointError naming the offending component — never UB.
#ifndef SCT_CKPT_CHECKPOINT_H
#define SCT_CKPT_CHECKPOINT_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/state_io.h"

namespace sct::ckpt {

inline constexpr char kMagic[8] = {'S', 'C', 'T', 'C', 'K', 'P', 'T', '\n'};
inline constexpr std::uint32_t kFormatVersion = 1;

class Snapshot {
 public:
  struct Section {
    std::string tag;
    std::uint32_t version = 0;
    std::vector<std::uint8_t> payload;
  };

  void addSection(std::string tag, std::uint32_t version,
                  std::vector<std::uint8_t> payload);

  const Section* find(std::string_view tag) const;
  const std::vector<Section>& sections() const { return sections_; }
  bool empty() const { return sections_.empty(); }

  /// Serialize to the versioned on-disk byte format.
  std::vector<std::uint8_t> serialize() const;

  /// Parse, validating magic / format version / section framing.
  static Snapshot deserialize(const std::uint8_t* data, std::size_t size);
  static Snapshot deserialize(const std::vector<std::uint8_t>& buf) {
    return deserialize(buf.data(), buf.size());
  }

  void saveFile(const std::string& path) const;
  static Snapshot loadFile(const std::string& path);

  /// In-memory round trip: the exact bytes saveFile would write /
  /// loadFile would read, with no filesystem in the loop. The serve
  /// instance pool recycles through these (a restore must not pay a
  /// file round-trip per session), and tests use them to cross-check
  /// byte-identity against on-disk golden checkpoints.
  std::vector<std::uint8_t> saveToBuffer() const { return serialize(); }
  static Snapshot loadFromBuffer(const std::vector<std::uint8_t>& buf) {
    return deserialize(buf.data(), buf.size());
  }
  static Snapshot loadFromBuffer(const std::uint8_t* data,
                                 std::size_t size) {
    return deserialize(data, size);
  }

 private:
  std::vector<Section> sections_;
};

/// One checkpointable component: a stable tag, a layout version, and
/// the save/load pair. Core classes implement plain
/// `saveState(StateWriter&) const` / `loadState(StateReader&)` methods
/// (no vtable intrusion); the Component<T> adapter below lifts them
/// into this interface.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual std::string_view tag() const = 0;
  virtual std::uint32_t version() const = 0;
  virtual void save(StateWriter& w) const = 0;
  virtual void load(StateReader& r) = 0;
};

template <typename T>
class Component final : public Checkpointable {
 public:
  Component(std::string tag, std::uint32_t version, T& object)
      : tag_(std::move(tag)), version_(version), object_(&object) {}

  std::string_view tag() const override { return tag_; }
  std::uint32_t version() const override { return version_; }
  void save(StateWriter& w) const override { object_->saveState(w); }
  void load(StateReader& r) override { object_->loadState(r); }

 private:
  std::string tag_;
  std::uint32_t version_;
  T* object_;
};

/// Ordered collection of components. Registration order defines both
/// the section order in the snapshot and the load order on restore —
/// register the Kernel before the Clock(s) and the clocks before
/// anything that re-parks against them.
class CheckpointRegistry {
 public:
  /// Binds `object` under `tag`; uses T::kCkptVersion unless an
  /// explicit version is given (the override exists mostly for the
  /// version-skew tests).
  template <typename T>
  void add(std::string tag, T& object,
           std::uint32_t version = T::kCkptVersion) {
    addComponent(std::make_unique<Component<T>>(std::move(tag), version,
                                                object));
  }

  void addComponent(std::unique_ptr<Checkpointable> c);

  std::size_t size() const { return components_.size(); }

  /// Serialize every component, in registration order.
  Snapshot saveAll() const;

  /// Restore every registered component from `snap`. Every component
  /// must find its tag with an exactly matching version, and must
  /// consume its payload fully; anything else throws CheckpointError.
  void loadAll(const Snapshot& snap);

 private:
  std::vector<std::unique_ptr<Checkpointable>> components_;
};

} // namespace sct::ckpt

#endif // SCT_CKPT_CHECKPOINT_H
