#include "trace/workloads.h"

#include <cstring>
#include <stdexcept>

#include "sim/random.h"

namespace sct::trace {

using bus::AccessSize;
using bus::Address;
using bus::Kind;
using bus::Word;

namespace {

TraceEntry single(std::uint64_t cycle, Kind kind, Address addr,
                  Word data = 0, AccessSize size = AccessSize::Word) {
  TraceEntry e;
  e.issueCycle = cycle;
  e.kind = kind;
  e.address = addr;
  e.size = size;
  e.beats = 1;
  e.writeData[0] = data;
  return e;
}

TraceEntry burst(std::uint64_t cycle, Kind kind, Address addr,
                 std::array<Word, 4> data = {}) {
  TraceEntry e;
  e.issueCycle = cycle;
  e.kind = kind;
  e.address = addr;
  e.size = AccessSize::Word;
  e.beats = 4;
  e.writeData = data;
  return e;
}

/// Word-aligned address inside `r` with room for `bytes`.
Address pickAddress(sim::Xoshiro256& rng, const TargetRegion& r,
                    std::size_t bytes) {
  const Address span = r.size - bytes;
  return r.base + (rng.below(span / 4 + 1) * 4);
}

const TargetRegion* pickRegion(sim::Xoshiro256& rng,
                               std::span<const TargetRegion> regions,
                               Kind kind) {
  // Rejection sampling over the regions that allow this access class.
  for (int tries = 0; tries < 64; ++tries) {
    const TargetRegion& r = regions[rng.below(regions.size())];
    const bool ok = (kind == Kind::Read && r.read) ||
                    (kind == Kind::Write && r.write) ||
                    (kind == Kind::InstrFetch && r.exec);
    if (ok && r.size >= 16) return &r;
  }
  return nullptr;
}

} // namespace

std::vector<NamedTrace> verificationSuite(const TargetRegion& fast,
                                          const TargetRegion& waited) {
  std::vector<NamedTrace> suite;

  {  // Single read / write without wait states.
    BusTrace t;
    t.append(single(0, Kind::Read, fast.base + 0x10));
    t.append(single(4, Kind::Write, fast.base + 0x14, 0xA5A5A5A5));
    suite.push_back({"single_no_wait", t});
  }
  {  // Single read / write with wait states.
    BusTrace t;
    t.append(single(0, Kind::Read, waited.base + 0x20));
    t.append(single(8, Kind::Write, waited.base + 0x24, 0x0F0F0F0F));
    suite.push_back({"single_wait", t});
  }
  {  // Back-to-back reads.
    BusTrace t;
    for (unsigned i = 0; i < 6; ++i) {
      t.append(single(0, Kind::Read, fast.base + 4 * i));
    }
    suite.push_back({"back_to_back_read", t});
  }
  {  // Back-to-back writes.
    BusTrace t;
    for (unsigned i = 0; i < 6; ++i) {
      t.append(single(0, Kind::Write, fast.base + 0x40 + 4 * i,
                      0x11111111u * (i + 1)));
    }
    suite.push_back({"back_to_back_write", t});
  }
  {  // Read followed by write.
    BusTrace t;
    t.append(single(0, Kind::Read, waited.base + 0x30));
    t.append(single(0, Kind::Write, fast.base + 0x30, 0xDEADBEEF));
    suite.push_back({"read_then_write", t});
  }
  {  // Write followed by read with reordering: the read targets the
     // zero-wait slave and completes before the long write — the EC
     // interface's separate read/write paths allow that.
    BusTrace t;
    t.append(single(0, Kind::Write, waited.base + 0x40, 0xC0FFEE00));
    t.append(single(0, Kind::Read, fast.base + 0x40));
    suite.push_back({"write_then_read_reorder", t});
  }
  {  // Burst read and write.
    BusTrace t;
    t.append(burst(0, Kind::Read, fast.base + 0x80));
    t.append(burst(0, Kind::Write, fast.base + 0x90,
                   {0x01020304, 0x05060708, 0x090A0B0C, 0x0D0E0F10}));
    t.append(burst(12, Kind::Read, waited.base + 0x80));
    t.append(burst(12, Kind::Write, waited.base + 0x90,
                   {0xFFFF0000, 0x0000FFFF, 0xAAAA5555, 0x5555AAAA}));
    suite.push_back({"burst_read_write", t});
  }
  {  // Instruction fetch bursts (cache-line refills).
    BusTrace t;
    t.append(burst(0, Kind::InstrFetch, fast.base + 0x100));
    t.append(burst(0, Kind::InstrFetch, fast.base + 0x110));
    suite.push_back({"instr_fetch_burst", t});
  }
  {  // Sub-word accesses per the EC merge patterns.
    BusTrace t;
    t.append(single(0, Kind::Write, fast.base + 0x60, 0x000000AA,
                    AccessSize::Byte));
    t.append(single(0, Kind::Write, fast.base + 0x62, 0xBBCC0000,
                    AccessSize::Half));
    t.append(single(2, Kind::Read, fast.base + 0x61, 0, AccessSize::Byte));
    t.append(single(2, Kind::Read, fast.base + 0x62, 0, AccessSize::Half));
    suite.push_back({"subword_merge", t});
  }
  return suite;
}

BusTrace verificationTrace(const TargetRegion& fast,
                           const TargetRegion& waited) {
  BusTrace all;
  std::uint64_t offset = 0;
  for (const NamedTrace& nt : verificationSuite(fast, waited)) {
    all.append(nt.trace, offset);
    // Leave a drain gap between the examples so each starts on an idle
    // bus, as in the specification's stand-alone waveforms. The deepest
    // example (waited 4-beat burst) needs ~12 cycles end to end.
    offset += 16;
  }
  return all;
}

bus::Word realisticWord(sim::Xoshiro256& rng) {
  switch (rng.below(10)) {
    case 0:
    case 1:
    case 2:
    case 3:
      return static_cast<Word>(rng.below(256));  // Small constants.
    case 4:
    case 5:
      return 0;  // Zero-initialized data.
    case 6:
    case 7:
      // Pointers into the on-chip address space, word aligned.
      return static_cast<Word>(0x8000 + (rng.below(0x2000) & ~0x3ull));
    case 8:
      // Small bit masks (flag words).
      return static_cast<Word>(0xF) << (4 * rng.below(8));
    default:
      return rng.next32();  // Occasional high-entropy word.
  }
}

void fillRealistic(std::uint8_t* bytes, std::size_t n, std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  std::size_t off = 0;
  while (off + 4 <= n) {
    // A correlated run: base value stepped by a small stride, like an
    // instruction stream or an array of records.
    Word base = realisticWord(rng);
    const Word stride = static_cast<Word>(rng.below(3) * 4);
    const std::size_t runWords = 8 + rng.below(48);
    for (std::size_t i = 0; i < runWords && off + 4 <= n; ++i, off += 4) {
      Word w = base + static_cast<Word>(i) * stride;
      if (rng.chance(1, 8)) w ^= Word{0xFF} << (8 * rng.below(4));
      std::memcpy(bytes + off, &w, 4);
    }
  }
}

BusTrace randomMixStyled(std::uint64_t seed, std::size_t count,
                         std::span<const TargetRegion> regions,
                         const MixRatios& mix, unsigned issueGapMax,
                         DataStyle style) {
  if (regions.empty()) {
    throw std::invalid_argument("randomMix: no target regions");
  }
  const unsigned total = mix.singleRead + mix.singleWrite + mix.burstRead +
                         mix.burstWrite + mix.instrFetch;
  if (total == 0) {
    throw std::invalid_argument("randomMix: all mix weights are zero");
  }
  sim::Xoshiro256 rng(seed);
  BusTrace t;
  std::uint64_t cycle = 0;
  while (t.size() < count) {
    const unsigned pick = static_cast<unsigned>(rng.below(total));
    Kind kind;
    bool isBurst;
    if (pick < mix.singleRead) {
      kind = Kind::Read;
      isBurst = false;
    } else if (pick < mix.singleRead + mix.singleWrite) {
      kind = Kind::Write;
      isBurst = false;
    } else if (pick < mix.singleRead + mix.singleWrite + mix.burstRead) {
      kind = Kind::Read;
      isBurst = true;
    } else if (pick <
               mix.singleRead + mix.singleWrite + mix.burstRead +
                   mix.burstWrite) {
      kind = Kind::Write;
      isBurst = true;
    } else {
      kind = Kind::InstrFetch;
      isBurst = true;  // Fetches refill cache lines.
    }
    const TargetRegion* r = pickRegion(rng, regions, kind);
    if (r == nullptr) continue;
    TraceEntry e;
    e.issueCycle = cycle;
    e.kind = kind;
    e.beats = isBurst ? 4 : 1;
    e.size = AccessSize::Word;
    e.address = pickAddress(rng, *r, isBurst ? 16 : 4);
    if (kind == Kind::Write) {
      if (style == DataStyle::Realistic) {
        // Correlated beats, like storing an array slice.
        const Word base = realisticWord(rng);
        const Word stride = static_cast<Word>(rng.below(3) * 4);
        for (unsigned b = 0; b < e.beats; ++b) {
          e.writeData[b] = base + b * stride;
        }
      } else {
        for (unsigned b = 0; b < e.beats; ++b) e.writeData[b] = rng.next32();
      }
    }
    t.append(e);
    if (issueGapMax > 0) cycle += rng.below(issueGapMax + 1);
  }
  return t;
}

BusTrace randomMix(std::uint64_t seed, std::size_t count,
                   std::span<const TargetRegion> regions,
                   const MixRatios& mix, unsigned issueGapMax) {
  return randomMixStyled(seed, count, regions, mix, issueGapMax,
                         DataStyle::Random);
}

BusTrace compressGaps(const BusTrace& trace, std::uint64_t maxGap) {
  BusTrace out;
  std::uint64_t prevIn = 0;
  std::uint64_t prevOut = 0;
  for (TraceEntry e : trace.entries()) {
    const std::uint64_t gap =
        e.issueCycle >= prevIn ? e.issueCycle - prevIn : 0;
    prevIn = e.issueCycle;
    prevOut += gap > maxGap ? maxGap : gap;
    e.issueCycle = prevOut;
    out.append(e);
  }
  return out;
}

BusTrace characterizationTrace(std::uint64_t seed, std::size_t count,
                               std::span<const TargetRegion> regions) {
  MixRatios mix;
  mix.singleRead = 1;
  mix.singleWrite = 1;
  mix.burstRead = 1;
  mix.burstWrite = 1;
  mix.instrFetch = 1;
  return randomMix(seed, count, regions, mix, /*issueGapMax=*/0);
}

} // namespace sct::trace
