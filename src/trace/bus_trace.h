// Bus transaction traces.
//
// The paper's verification flow traces bus transactions from the RTL
// simulation of assembly test programs and replays them as "input test
// sequences for the transaction level models". BusTrace is that
// artifact: an ordered list of transactions with their earliest issue
// cycles, serializable to a line-based text format so traces can be
// recorded once and replayed against every model layer.
#ifndef SCT_TRACE_BUS_TRACE_H
#define SCT_TRACE_BUS_TRACE_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bus/ec_types.h"

namespace sct::trace {

struct TraceEntry {
  std::uint64_t issueCycle = 0;  ///< Earliest cycle to submit.
  bus::Kind kind = bus::Kind::Read;
  bus::Address address = 0;
  bus::AccessSize size = bus::AccessSize::Word;
  std::uint8_t beats = 1;
  std::array<bus::Word, bus::kMaxBurstBeats> writeData{};

  std::size_t byteCount() const {
    return beats > 1 ? std::size_t{4} * beats
                     : static_cast<std::size_t>(size);
  }

  bool operator==(const TraceEntry&) const = default;
};

class BusTrace {
 public:
  BusTrace() = default;

  void append(const TraceEntry& e) { entries_.push_back(e); }
  void append(const BusTrace& other, std::uint64_t cycleOffset = 0);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const TraceEntry& operator[](std::size_t i) const { return entries_[i]; }

  /// Totals for reporting.
  std::uint64_t totalBeats() const;
  std::uint64_t countOf(bus::Kind k) const;

  /// Text serialization: one transaction per line,
  /// "cycle kind addr size beats [w0 w1 w2 w3]".
  void save(std::ostream& os) const;
  static BusTrace load(std::istream& is);

  bool operator==(const BusTrace&) const = default;

 private:
  std::vector<TraceEntry> entries_;
};

} // namespace sct::trace

#endif // SCT_TRACE_BUS_TRACE_H
