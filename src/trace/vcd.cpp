#include "trace/vcd.h"

namespace sct::trace {

VcdWriter::VcdWriter(std::ostream& os, sim::Time clockPeriodPs,
                     std::string topName)
    : os_(os), period_(clockPeriodPs) {
  // Short identifier codes: one printable character per signal.
  for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
    codes_[i] = static_cast<char>('!' + i);
  }
  writeHeader(topName);
}

void VcdWriter::writeHeader(const std::string& topName) {
  os_ << "$timescale 1ps $end\n";
  os_ << "$scope module " << topName << " $end\n";
  for (const auto& info : bus::kSignalTable) {
    os_ << "$var wire " << info.width << ' '
        << codes_[static_cast<std::size_t>(info.id)] << ' ' << info.name;
    if (info.width > 1) os_ << " [" << info.width - 1 << ":0]";
    os_ << " $end\n";
  }
  os_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::emitValue(bus::SignalId id, std::uint64_t value) {
  const auto& info = bus::signalInfo(id);
  if (info.width == 1) {
    os_ << (value & 1) << codes_[static_cast<std::size_t>(id)] << '\n';
    return;
  }
  os_ << 'b';
  for (unsigned bit = info.width; bit-- > 0;) {
    os_ << ((value >> bit) & 1);
  }
  os_ << ' ' << codes_[static_cast<std::size_t>(id)] << '\n';
}

void VcdWriter::onFrame(std::uint64_t cycle, const bus::SignalFrame& prev,
                        const bus::SignalFrame& next,
                        const ref::GlitchCounts& /*glitches*/,
                        const ref::CycleEnergy& /*energy*/) {
  bool stamped = false;
  for (const auto& info : bus::kSignalTable) {
    const bool changed = prev.get(info.id) != next.get(info.id);
    if (!first_ && !changed) continue;
    if (!stamped) {
      os_ << '#' << cycle * period_ << '\n';
      stamped = true;
    }
    emitValue(info.id, next.get(info.id));
  }
  first_ = false;
  ++frames_;
}

} // namespace sct::trace
