// Workload generators.
//
// Two families, matching the paper's evaluation:
//  * verificationSuite(): the transaction examples of the EC interface
//    specification used for the first verification step — "single read
//    and write with and without wait states, back-to-back reads,
//    back-to-back writes, read followed by write and write followed by
//    read with reordering, and at last burst read and writes";
//  * randomMix(): "all combinations between single read, single write,
//    burst read, and burst write transactions" used for the simulation
//    performance measurements (Table 3) and for characterization.
#ifndef SCT_TRACE_WORKLOADS_H
#define SCT_TRACE_WORKLOADS_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bus/ec_types.h"
#include "sim/random.h"
#include "trace/bus_trace.h"

namespace sct::trace {

/// An address window the generator may target, mirroring the rights of
/// the slave that will decode it.
struct TargetRegion {
  bus::Address base = 0;
  bus::Address size = 0;
  bool read = true;
  bool write = true;
  bool exec = true;
};

struct NamedTrace {
  std::string name;
  BusTrace trace;
};

/// EC-specification verification examples. `fast` should map to a
/// zero-wait slave and `waited` to a slave with address/data wait
/// states; the suite exercises both.
std::vector<NamedTrace> verificationSuite(const TargetRegion& fast,
                                          const TargetRegion& waited);

/// Concatenation of the whole verification suite into one trace.
BusTrace verificationTrace(const TargetRegion& fast,
                           const TargetRegion& waited);

/// Relative weights of the four transaction classes (plus instruction
/// fetches, which ride the read path).
struct MixRatios {
  unsigned singleRead = 1;
  unsigned singleWrite = 1;
  unsigned burstRead = 1;
  unsigned burstWrite = 1;
  unsigned instrFetch = 0;
};

/// `count` random transactions over `regions`. Issue cycles advance by
/// a uniform random gap in [0, issueGapMax] between entries (0 = fully
/// back-to-back).
BusTrace randomMix(std::uint64_t seed, std::size_t count,
                   std::span<const TargetRegion> regions,
                   const MixRatios& mix = MixRatios{},
                   unsigned issueGapMax = 0);

/// Dense training workload for power characterization: equal class mix
/// including instruction fetches, back-to-back issue.
BusTrace characterizationTrace(std::uint64_t seed, std::size_t count,
                               std::span<const TargetRegion> regions);

/// How generated write data (and memory preloads) look.
enum class DataStyle {
  Random,     ///< Uniform 32-bit words (maximum switching activity).
  Realistic,  ///< Program-like: small constants, pointers, masks, and
              ///  strongly word-to-word correlated runs (arrays,
              ///  instruction streams) — the activity profile of real
              ///  smart-card firmware.
};

/// One program-like data word.
bus::Word realisticWord(sim::Xoshiro256& rng);

/// Fill `bytes` (interpreted as words) with program-like contents:
/// correlated runs with occasional new bases, exactly what a ROM/EEPROM
/// image looks like. Use before replaying energy workloads so read data
/// carries realistic switching activity.
void fillRealistic(std::uint8_t* bytes, std::size_t n, std::uint64_t seed);

/// randomMix with a choice of write-data style.
BusTrace randomMixStyled(std::uint64_t seed, std::size_t count,
                         std::span<const TargetRegion> regions,
                         const MixRatios& mix, unsigned issueGapMax,
                         DataStyle style);

/// Cap the issue gap between consecutive transactions at `maxGap`
/// cycles. Recorded firmware traces contain long idle spans (cache-hit
/// compute phases) that carry no bus information; compressing them
/// keeps a replayed test sequence representative of bus activity.
BusTrace compressGaps(const BusTrace& trace, std::uint64_t maxGap);

} // namespace sct::trace

#endif // SCT_TRACE_WORKLOADS_H
