// Trace-replay bus masters.
//
// ReplayMaster drives a recorded BusTrace into a layer-0 or layer-1 bus
// through the non-blocking EC master interfaces: transactions are
// issued in trace order on rising clock edges (respecting each entry's
// earliest issue cycle and a configurable in-flight window) and polled
// until Ok/Error — the same discipline the paper used to feed RTL-traced
// sequences into the transaction-level models. Tl2ReplayMaster is the
// layer-2 counterpart using pointer-passing block transactions.
#ifndef SCT_TRACE_REPLAY_MASTER_H
#define SCT_TRACE_REPLAY_MASTER_H

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "ckpt/state_io.h"
#include "obs/stats.h"
#include "sim/clock.h"
#include "sim/module.h"
#include "trace/bus_trace.h"

namespace sct::bus {
class Tl1Bus;
}

namespace sct::trace {

struct ReplayStats {
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t issueStallCycles = 0;  ///< Cycles the accept was refused.
  std::uint64_t finishCycle = 0;       ///< Cycle the last result arrived.
};

/// Publish one master's replay statistics into `reg` under "<prefix>.".
/// The master keeps these counts anyway; observability is a copy-out at
/// snapshot time, never a hot-path hook.
inline void publishReplayObs(obs::StatsRegistry& reg,
                             const std::string& prefix,
                             const ReplayStats& s) {
  reg.counter(prefix + ".completed").add(s.completed);
  reg.counter(prefix + ".errors").add(s.errors);
  reg.counter(prefix + ".issue_stall_cycles").add(s.issueStallCycles);
  reg.gauge(prefix + ".finish_cycle").set(static_cast<double>(s.finishCycle));
}

class ReplayMaster final : public sim::Module {
 public:
  /// `instrIf` and `dataIf` usually refer to the same bus object.
  /// `trace` is referenced, not copied, and must outlive the master —
  /// the rvalue overload is deleted so a temporary cannot bind here.
  ReplayMaster(sim::Clock& clock, std::string name, bus::EcInstrIf& instrIf,
               bus::EcDataIf& dataIf, const BusTrace& trace,
               unsigned maxInFlight = 8);
  ReplayMaster(sim::Clock&, std::string, bus::EcInstrIf&, bus::EcDataIf&,
               BusTrace&&, unsigned = 8) = delete;
  ~ReplayMaster() override;

  bool done() const { return stats_.completed == trace_.size(); }
  const ReplayStats& stats() const;

  /// Request payloads in trace order (read results, per-request
  /// cycles). Materialised as entries are issued — the vector holds
  /// every trace entry once the replay has completed.
  const std::vector<bus::Tl1Request>& requests() const { return requests_; }

  /// Run the clock until the whole trace has completed (or maxCycles
  /// elapsed). Returns elapsed cycles from the call.
  std::uint64_t runToCompletion(std::uint64_t maxCycles = 10'000'000);

  void publishObs(obs::StatsRegistry& reg) const {
    publishReplayObs(reg, name(), stats());
  }

  /// -- Checkpoint (see ckpt/checkpoint.h): only legal with nothing in
  /// flight (quiesced bus). Replay progress, the materialised request
  /// payloads (read results included) and the lazy stall bookkeeping
  /// travel; the restore target must be built over the same trace.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  void onRisingEdge();
  /// Park the handler until the next cycle anything can change, exactly
  /// like Tl2ReplayMaster::parkUntilNextWork — a no-op whenever either
  /// interface answers kFinishUnknown (a cycle-true Tl1Bus always does,
  /// so layer-1 replays keep the historical poll-every-cycle schedule
  /// bit-for-bit; a bridged event-driven layer-2 bus predicts finishes
  /// and the master sleeps through the dead cycles).
  void parkUntilNextWork(bool refused);
  /// Credit the stall cycles a parked handler skipped (see
  /// Tl2ReplayMaster::syncStalls).
  void syncStalls(std::uint64_t through) const;

  sim::Clock& clock_;
  sim::Clock::HandlerId handlerId_;
  bus::EcInstrIf& instrIf_;
  bus::EcDataIf& dataIf_;
  /// Set when both interfaces are the same concrete Tl1Bus (detected at
  /// construction): the per-cycle epoch probe and the issue calls then
  /// go through the final class directly — no virtual dispatch, no
  /// multiple-inheritance thunks. Behavior is identical to the generic
  /// path; this is purely a dispatch shortcut.
  bus::Tl1Bus* tl1_ = nullptr;
  unsigned maxInFlight_;
  bool stageGated_;  ///< Both interfaces publish the Finished stage.
  bool predictive_;  ///< Either interface may predict completions; when
                     ///  false the park/pump bookkeeping is skipped —
                     ///  the schedule is poll-every-cycle regardless.
  bool epochGated_;  ///< Stage-gated over epoch-keeping interfaces: the
                     ///  in-flight scan and refused-issue retry only run
                     ///  on cycles whose finishEpoch sum moved.
  /// Entry payloads, referenced in place (the trace outlives the
  /// master; see the constructor contract). Requests are built from it
  /// one by one as they are issued; requests_ is reserved to full size
  /// so in-flight pointers stay stable.
  std::span<const TraceEntry> trace_;
  std::vector<bus::Tl1Request> requests_;
  std::vector<bus::Tl1Request*> inFlight_;
  std::size_t nextIssue_ = 0;
  /// Last observed finishEpoch sum. Deliberately not checkpointed: a
  /// stale value costs at most one redundant in-flight scan (restores
  /// always land with nothing in flight), never a missed completion.
  std::uint64_t lastEpoch_ = 0;
  bool doneNotified_ = false;
  bool stallOpen_ = false;  ///< A refused issue is waiting; the handler
                            ///  is parked or epoch-gated meanwhile.
  mutable std::uint64_t stallSyncedThrough_ = 0;
  mutable ReplayStats stats_;
};

class Tl2ReplayMaster final : public sim::Module {
 public:
  /// See ReplayMaster: the trace is referenced, not copied, and must
  /// outlive the master.
  Tl2ReplayMaster(sim::Clock& clock, std::string name, bus::Tl2MasterIf& busIf,
                  const BusTrace& trace, unsigned maxInFlight = 8);
  Tl2ReplayMaster(sim::Clock&, std::string, bus::Tl2MasterIf&, BusTrace&&,
                  unsigned = 8) = delete;
  ~Tl2ReplayMaster() override;

  bool done() const { return stats_.completed == trace_.size(); }
  const ReplayStats& stats() const;
  /// Request payloads in trace order; materialised as entries are
  /// issued (complete once the replay has finished).
  const std::vector<bus::Tl2Request>& requests() const { return requests_; }

  /// Read-result bytes of entry `i` (valid after completion).
  const std::array<std::uint8_t, 16>& buffer(std::size_t i) const {
    return buffers_[i];
  }

  std::uint64_t runToCompletion(std::uint64_t maxCycles = 10'000'000);

  void publishObs(obs::StatsRegistry& reg) const {
    publishReplayObs(reg, name(), stats());
  }

  /// -- Checkpoint: see ReplayMaster. The result buffers travel too.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  void onRisingEdge();
  /// Park the handler until the next cycle anything can change (bus
  /// completion + 1, or the next issue cycle); no-op when the bus
  /// cannot predict completions. `refused` flags that this cycle's
  /// issue was refused by the bus (outstanding limit).
  void parkUntilNextWork(bool refused);
  /// Credit the stall cycles a parked handler skipped, up to and
  /// including cycle `through` (the per-cycle master counts one stall
  /// per rising edge while the refusal persists).
  void syncStalls(std::uint64_t through) const;

  sim::Clock& clock_;
  sim::Clock::HandlerId handlerId_;
  bus::Tl2MasterIf& busIf_;
  unsigned maxInFlight_;
  bool stageGated_;  ///< The interface publishes the Finished stage.
  /// See ReplayMaster: referenced entries, lazily materialised
  /// requests (reserved to full size, so pointers stay stable).
  std::span<const TraceEntry> trace_;
  std::vector<bus::Tl2Request> requests_;
  std::vector<std::array<std::uint8_t, 16>> buffers_;
  std::vector<bus::Tl2Request*> inFlight_;
  std::size_t nextIssue_ = 0;
  bool doneNotified_ = false;
  bool stallOpen_ = false;  ///< A refused issue is waiting, handler parked.
  mutable std::uint64_t stallSyncedThrough_ = 0;
  mutable ReplayStats stats_;
};

} // namespace sct::trace

#endif // SCT_TRACE_REPLAY_MASTER_H
