// Trace-replay bus masters.
//
// ReplayMaster drives a recorded BusTrace into a layer-0 or layer-1 bus
// through the non-blocking EC master interfaces: transactions are
// issued in trace order on rising clock edges (respecting each entry's
// earliest issue cycle and a configurable in-flight window) and polled
// until Ok/Error — the same discipline the paper used to feed RTL-traced
// sequences into the transaction-level models. Tl2ReplayMaster is the
// layer-2 counterpart using pointer-passing block transactions.
#ifndef SCT_TRACE_REPLAY_MASTER_H
#define SCT_TRACE_REPLAY_MASTER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "sim/clock.h"
#include "sim/module.h"
#include "trace/bus_trace.h"

namespace sct::trace {

struct ReplayStats {
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t issueStallCycles = 0;  ///< Cycles the accept was refused.
  std::uint64_t finishCycle = 0;       ///< Cycle the last result arrived.
};

class ReplayMaster final : public sim::Module {
 public:
  /// `instrIf` and `dataIf` usually refer to the same bus object.
  ReplayMaster(sim::Clock& clock, std::string name, bus::EcInstrIf& instrIf,
               bus::EcDataIf& dataIf, const BusTrace& trace,
               unsigned maxInFlight = 8);
  ~ReplayMaster() override;

  bool done() const { return stats_.completed == requests_.size(); }
  const ReplayStats& stats() const { return stats_; }

  /// Completed request payloads (read results, per-request cycles).
  const std::vector<bus::Tl1Request>& requests() const { return requests_; }

  /// Run the clock until the whole trace has completed (or maxCycles
  /// elapsed). Returns elapsed cycles from the call.
  std::uint64_t runToCompletion(std::uint64_t maxCycles = 10'000'000);

 private:
  void onRisingEdge();

  sim::Clock& clock_;
  sim::Clock::HandlerId handlerId_;
  bus::EcInstrIf& instrIf_;
  bus::EcDataIf& dataIf_;
  unsigned maxInFlight_;
  bool stageGated_;  ///< Both interfaces publish the Finished stage.
  std::vector<std::uint64_t> issueCycles_;
  std::vector<bus::Tl1Request> requests_;
  std::vector<bus::Tl1Request*> inFlight_;
  std::size_t nextIssue_ = 0;
  ReplayStats stats_;
};

class Tl2ReplayMaster final : public sim::Module {
 public:
  Tl2ReplayMaster(sim::Clock& clock, std::string name, bus::Tl2MasterIf& busIf,
                  const BusTrace& trace, unsigned maxInFlight = 8);
  ~Tl2ReplayMaster() override;

  bool done() const { return stats_.completed == requests_.size(); }
  const ReplayStats& stats() const { return stats_; }
  const std::vector<bus::Tl2Request>& requests() const { return requests_; }

  /// Read-result bytes of entry `i` (valid after completion).
  const std::array<std::uint8_t, 16>& buffer(std::size_t i) const {
    return buffers_[i];
  }

  std::uint64_t runToCompletion(std::uint64_t maxCycles = 10'000'000);

 private:
  void onRisingEdge();

  sim::Clock& clock_;
  sim::Clock::HandlerId handlerId_;
  bus::Tl2MasterIf& busIf_;
  unsigned maxInFlight_;
  bool stageGated_;  ///< The interface publishes the Finished stage.
  std::vector<std::uint64_t> issueCycles_;
  std::vector<bus::Tl2Request> requests_;
  std::vector<std::array<std::uint8_t, 16>> buffers_;
  std::vector<bus::Tl2Request*> inFlight_;
  std::size_t nextIssue_ = 0;
  ReplayStats stats_;
};

} // namespace sct::trace

#endif // SCT_TRACE_REPLAY_MASTER_H
