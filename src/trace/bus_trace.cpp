#include "trace/bus_trace.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sct::trace {

namespace {

std::string kindToken(bus::Kind k) {
  switch (k) {
    case bus::Kind::InstrFetch: return "I";
    case bus::Kind::Read: return "R";
    case bus::Kind::Write: return "W";
  }
  return "?";
}

bus::Kind kindFromToken(const std::string& t) {
  if (t == "I") return bus::Kind::InstrFetch;
  if (t == "R") return bus::Kind::Read;
  if (t == "W") return bus::Kind::Write;
  throw std::runtime_error("BusTrace: bad kind token '" + t + "'");
}

bus::AccessSize sizeFromInt(unsigned v) {
  switch (v) {
    case 1: return bus::AccessSize::Byte;
    case 2: return bus::AccessSize::Half;
    case 4: return bus::AccessSize::Word;
    default:
      throw std::runtime_error("BusTrace: bad access size");
  }
}

} // namespace

void BusTrace::append(const BusTrace& other, std::uint64_t cycleOffset) {
  for (TraceEntry e : other.entries_) {
    e.issueCycle += cycleOffset;
    entries_.push_back(e);
  }
}

std::uint64_t BusTrace::totalBeats() const {
  std::uint64_t n = 0;
  for (const TraceEntry& e : entries_) n += e.beats;
  return n;
}

std::uint64_t BusTrace::countOf(bus::Kind k) const {
  std::uint64_t n = 0;
  for (const TraceEntry& e : entries_) {
    if (e.kind == k) ++n;
  }
  return n;
}

void BusTrace::save(std::ostream& os) const {
  os << "# cycle kind addr size beats w0 w1 w2 w3\n";
  for (const TraceEntry& e : entries_) {
    os << e.issueCycle << ' ' << kindToken(e.kind) << ' ' << std::hex << "0x"
       << e.address << std::dec << ' ' << static_cast<unsigned>(e.size) << ' '
       << static_cast<unsigned>(e.beats);
    if (e.kind == bus::Kind::Write) {
      for (unsigned b = 0; b < e.beats; ++b) {
        os << ' ' << std::hex << "0x" << e.writeData[b] << std::dec;
      }
    }
    os << '\n';
  }
}

BusTrace BusTrace::load(std::istream& is) {
  BusTrace t;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceEntry e;
    std::string kind;
    unsigned size = 0;
    unsigned beats = 0;
    if (!(ls >> e.issueCycle >> kind >> std::hex >> e.address >> std::dec >>
          size >> beats)) {
      throw std::runtime_error("BusTrace: malformed line: " + line);
    }
    e.kind = kindFromToken(kind);
    e.size = sizeFromInt(size);
    if (beats == 0 || beats > bus::kMaxBurstBeats) {
      throw std::runtime_error("BusTrace: bad beat count");
    }
    e.beats = static_cast<std::uint8_t>(beats);
    if (e.kind == bus::Kind::Write) {
      for (unsigned b = 0; b < beats; ++b) {
        std::uint64_t w = 0;
        if (!(ls >> std::hex >> w >> std::dec)) {
          throw std::runtime_error("BusTrace: missing write data: " + line);
        }
        e.writeData[b] = static_cast<bus::Word>(w);
      }
    }
    t.append(e);
  }
  return t;
}

} // namespace sct::trace
