// Fixed-width table reporting for the benchmark harnesses, so every
// bench prints rows in the same shape as the paper's tables.
#ifndef SCT_TRACE_REPORT_H
#define SCT_TRACE_REPORT_H

#include <iosfwd>
#include <string>
#include <vector>

namespace sct::trace {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void addRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os) const;

  /// "12.3%" / "+12.3%" style percentage of a fraction (0.123 -> 12.3%).
  static std::string pct(double fraction, int precision = 1,
                         bool forceSign = false);

  /// Fixed-precision number.
  static std::string num(double value, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace sct::trace

#endif // SCT_TRACE_REPORT_H
