#include "trace/replay_master.h"

#include <algorithm>
#include <cstring>

#include "bus/tl1_bus.h"

namespace sct::trace {

using bus::BusStatus;
using bus::Kind;
using bus::Tl1Request;
using bus::Tl2Request;

namespace {

BusStatus invoke(bus::EcInstrIf& instrIf, bus::EcDataIf& dataIf,
                 Tl1Request& req) {
  switch (req.kind) {
    case Kind::InstrFetch: return instrIf.fetch(req);
    case Kind::Read: return dataIf.read(req);
    case Kind::Write: return dataIf.write(req);
  }
  return BusStatus::Error;
}

/// Devirtualized twin of invoke() for the common single-Tl1Bus case:
/// Tl1Bus is final, so these resolve to direct calls.
BusStatus invokeDirect(bus::Tl1Bus& b, Tl1Request& req) {
  switch (req.kind) {
    case Kind::InstrFetch: return b.fetch(req);
    case Kind::Read: return b.read(req);
    case Kind::Write: return b.write(req);
  }
  return BusStatus::Error;
}

BusStatus invoke(bus::Tl2MasterIf& busIf, Tl2Request& req) {
  return req.kind == Kind::Write ? busIf.write(req) : busIf.read(req);
}

bool finished(BusStatus s) {
  return s == BusStatus::Ok || s == BusStatus::Error;
}

} // namespace

// ---------------------------------------------------------------------------
// ReplayMaster (layers 0 and 1)
// ---------------------------------------------------------------------------

ReplayMaster::ReplayMaster(sim::Clock& clock, std::string name,
                           bus::EcInstrIf& instrIf, bus::EcDataIf& dataIf,
                           const BusTrace& trace, unsigned maxInFlight)
    : sim::Module(clock.kernel(), std::move(name)),
      clock_(clock),
      instrIf_(instrIf),
      dataIf_(dataIf),
      maxInFlight_(maxInFlight),
      stageGated_(instrIf.publishesStage() && dataIf.publishesStage()),
      predictive_(instrIf.predictsFinish() || dataIf.predictsFinish()),
      epochGated_(stageGated_ &&
                  instrIf.finishEpoch() != bus::kEpochUnknown &&
                  dataIf.finishEpoch() != bus::kEpochUnknown),
      trace_(trace.entries()) {
  // The trace is referenced in place (constructor contract: it outlives
  // the master); request payloads are materialised lazily, one per
  // entry as it is issued. reserve() to full size keeps in-flight
  // pointers stable.
  if (auto* b = dynamic_cast<bus::Tl1Bus*>(&instrIf); b != nullptr &&
      static_cast<bus::EcDataIf*>(b) == &dataIf) {
    tl1_ = b;  // Both interfaces are one Tl1Bus: direct-dispatch path.
  }
  requests_.reserve(trace_.size());
  inFlight_.reserve(maxInFlight_);
  handlerId_ = clock_.onRisingRaw(
      [](void* self) { static_cast<ReplayMaster*>(self)->onRisingEdge(); },
      this);
}

ReplayMaster::~ReplayMaster() { clock_.removeHandler(handlerId_); }

const ReplayStats& ReplayMaster::stats() const {
  // While parked on a refusal, credit the stall cycles the per-cycle
  // polling discipline would have counted so far.
  syncStalls(clock_.cycle());
  return stats_;
}

void ReplayMaster::syncStalls(std::uint64_t through) const {
  if (stallOpen_ && through > stallSyncedThrough_) {
    stats_.issueStallCycles += through - stallSyncedThrough_;
    stallSyncedThrough_ = through;
  }
}

void ReplayMaster::onRisingEdge() {
  const std::uint64_t cycle = clock_.cycle();
  // A stage-publishing adapter over an event-driven bus (the
  // Tl2MasterBridge) defers completion bookkeeping until asked;
  // querying the next finish publishes every stage transition due by
  // now, so the gates below read fresh stages. A cycle-true bus never
  // predicts (predictsFinish() false) and publishes stages from its own
  // process — no pump needed, no virtual calls spent.
  if (predictive_ && stageGated_ && !inFlight_.empty()) {
    instrIf_.nextFinishCycle();
    dataIf_.nextFinishCycle();
  }
  // Completion-epoch gate: while the interfaces' finishEpoch sum is
  // unchanged, no in-flight transaction can have reached Finished and
  // no outstanding slot can have freed — the Finished scan and a
  // pending refused issue are both guaranteed no-ops.
  bool mayComplete = true;
  if (epochGated_) {
    // Same change detection either way: with one underlying bus the
    // generic sum is exactly twice the direct read, so "moved" agrees.
    const std::uint64_t ep = tl1_ != nullptr
                                 ? tl1_->finishEpoch()
                                 : instrIf_.finishEpoch() + dataIf_.finishEpoch();
    mayComplete = ep != lastEpoch_;
    lastEpoch_ = ep;
  }
  if (stallOpen_) {
    if (!mayComplete && !inFlight_.empty()) {
      // The refusal can only clear once a completion frees its class
      // slot; nothing finished, so the retry would be refused again.
      // The skipped stall cycles are credited lazily (syncStalls).
      return;
    }
    // One stall per skipped rising edge; the retry below re-counts
    // this cycle if refused again.
    syncStalls(cycle - 1);
    stallOpen_ = false;
  }
  // Poll transactions in flight. When the bus publishes stage
  // transitions (publishesStage()), a payload whose public stage is
  // not Finished is still owned by the bus, and a Finished payload is
  // collected directly from the payload fields — the pickup poll of
  // every stage-publishing bus is exactly `result = req.result, stage
  // = Idle` (the publishesStage() contract), so no call is made at
  // all. Adapters that do not publish stages need every poll to pump
  // their lower transaction, so they are polled unconditionally.
  if (mayComplete) {
    for (auto it = inFlight_.begin(); it != inFlight_.end();) {
      Tl1Request& q = **it;
      if (stageGated_) {
        if (q.stage != bus::Tl1Stage::Finished) {
          ++it;
          continue;
        }
        q.stage = bus::Tl1Stage::Idle;
        ++stats_.completed;
        if (q.result == BusStatus::Error) ++stats_.errors;
        stats_.finishCycle = cycle;
        it = inFlight_.erase(it);
        continue;
      }
      const BusStatus s = invoke(instrIf_, dataIf_, q);
      if (finished(s)) {
        ++stats_.completed;
        if (s == BusStatus::Error) ++stats_.errors;
        stats_.finishCycle = cycle;
        it = inFlight_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Issue further transactions in trace order, materialising each
  // request from its trace entry on first touch.
  bool refused = false;
  while (nextIssue_ < trace_.size() &&
         trace_[nextIssue_].issueCycle <= cycle &&
         inFlight_.size() < maxInFlight_) {
    if (requests_.size() == nextIssue_) {
      const TraceEntry& e = trace_[nextIssue_];
      Tl1Request& r = requests_.emplace_back();
      r.kind = e.kind;
      r.address = e.address;
      r.size = e.size;
      r.beats = e.beats;
      r.data = e.writeData;
    }
    Tl1Request& req = requests_[nextIssue_];
    const BusStatus s = tl1_ != nullptr ? invokeDirect(*tl1_, req)
                                        : invoke(instrIf_, dataIf_, req);
    if (s == BusStatus::Request) {
      inFlight_.push_back(&req);
      ++nextIssue_;
    } else if (s == BusStatus::Error) {
      // Rejected at validation; counts as an immediately failed entry.
      ++stats_.completed;
      ++stats_.errors;
      stats_.finishCycle = cycle;
      ++nextIssue_;
    } else {
      ++stats_.issueStallCycles;
      stallSyncedThrough_ = cycle;
      refused = true;
      // Accept refused (outstanding limit); retry next cycle — or, on
      // an epoch-keeping bus, on the next cycle a completion occurs
      // (the stall accounting stays cycle-exact via syncStalls).
      if (epochGated_) stallOpen_ = true;
      break;
    }
  }
  if (done()) {
    if (!doneNotified_) {
      doneNotified_ = true;
      clock_.requestBreak();
    }
    if (predictive_ &&
        instrIf_.nextFinishCycle() != bus::kFinishUnknown &&
        dataIf_.nextFinishCycle() != bus::kFinishUnknown) {
      clock_.parkHandler(handlerId_, sim::Clock::kNeverWake);
    }
    return;
  }
  if (predictive_) parkUntilNextWork(refused);
}

void ReplayMaster::parkUntilNextWork(bool refused) {
  // See Tl2ReplayMaster::parkUntilNextWork — identical reasoning, over
  // the minimum of the two interfaces' predictions (they usually refer
  // to the same bus object; a duplicate sync is a cheap no-op).
  const std::uint64_t nfInstr = instrIf_.nextFinishCycle();
  if (nfInstr == bus::kFinishUnknown) return;  // Poll every cycle.
  const std::uint64_t nfData = dataIf_.nextFinishCycle();
  if (nfData == bus::kFinishUnknown) return;
  const std::uint64_t nf = std::min(nfInstr, nfData);
  std::uint64_t wake =
      (nf == bus::kFinishNone) ? sim::Clock::kNeverWake : nf + 1;
  if (refused) {
    stallOpen_ = true;
    // A refusal with nothing in flight is not waiting on a completion
    // (an adaptive-fidelity bus refuses new work while draining for a
    // layer switch) — retry every cycle instead of sleeping on a wake
    // that will never come.
    if (nf == bus::kFinishNone) wake = clock_.cycle() + 1;
  } else if (nextIssue_ < trace_.size() && inFlight_.size() < maxInFlight_) {
    wake = std::min(wake, trace_[nextIssue_].issueCycle);
  }
  if (wake > clock_.cycle() + 1) clock_.parkHandler(handlerId_, wake);
}

std::uint64_t ReplayMaster::runToCompletion(std::uint64_t maxCycles) {
  // One big runCycles() call per attempt: the handler requests a clock
  // break on the cycle the trace completes, so this sees the same
  // elapsed cycle count as stepping one cycle at a time — without
  // re-entering the run loop per cycle, and without defeating the
  // clock's dead-cycle warp.
  const std::uint64_t start = clock_.cycle();
  while (!done() && clock_.cycle() - start < maxCycles) {
    clock_.runCycles(maxCycles - (clock_.cycle() - start));
  }
  return clock_.cycle() - start;
}

void ReplayMaster::saveState(ckpt::StateWriter& w) const {
  if (!inFlight_.empty()) {
    throw ckpt::CheckpointError(
        "ReplayMaster::saveState: transactions in flight (snapshot only at "
        "quiesce points)");
  }
  // Stats are saved raw (without syncing open stalls): the lazy credit
  // depends only on stallSyncedThrough_ and the clock cycle, both of
  // which travel, so the restored master resumes the identical lazy
  // accounting.
  w.u64(static_cast<std::uint64_t>(trace_.size()));
  w.u64(static_cast<std::uint64_t>(nextIssue_));
  w.u64(static_cast<std::uint64_t>(requests_.size()));
  for (const Tl1Request& q : requests_) {
    for (const bus::Word v : q.data) w.u32(v);
    w.u8(static_cast<std::uint8_t>(q.result));
    w.u8(static_cast<std::uint8_t>(q.stage));
    w.u8(q.beatsDone);
    w.i64(q.slave);
    w.u32(q.waitCount);
    w.u64(q.acceptCycle);
    w.u64(q.finishCycle);
  }
  w.b(doneNotified_);
  w.b(stallOpen_);
  w.u64(stallSyncedThrough_);
  w.u64(stats_.completed);
  w.u64(stats_.errors);
  w.u64(stats_.issueStallCycles);
  w.u64(stats_.finishCycle);
}

void ReplayMaster::loadState(ckpt::StateReader& r) {
  if (!inFlight_.empty()) {
    throw ckpt::CheckpointError(
        "ReplayMaster::loadState: restore target has transactions in flight");
  }
  if (r.u64() != trace_.size()) {
    throw ckpt::CheckpointError(
        "ReplayMaster::loadState: trace length differs from the saved "
        "replay");
  }
  nextIssue_ = static_cast<std::size_t>(r.u64());
  // A refused issue leaves one request materialised ahead of
  // nextIssue_, so the count may exceed the issue cursor by one.
  const std::size_t count = static_cast<std::size_t>(r.u64());
  if (count > trace_.size() || count < nextIssue_ ||
      count > nextIssue_ + 1) {
    throw ckpt::CheckpointError(
        "ReplayMaster::loadState: corrupt request materialisation count");
  }
  requests_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const TraceEntry& e = trace_[i];
    Tl1Request& q = requests_.emplace_back();
    q.kind = e.kind;
    q.address = e.address;
    q.size = e.size;
    q.beats = e.beats;
    for (bus::Word& v : q.data) v = r.u32();
    q.result = static_cast<BusStatus>(r.u8());
    q.stage = static_cast<bus::Tl1Stage>(r.u8());
    q.beatsDone = r.u8();
    q.slave = static_cast<int>(r.i64());
    q.waitCount = r.u32();
    q.acceptCycle = r.u64();
    q.finishCycle = r.u64();
  }
  doneNotified_ = r.b();
  stallOpen_ = r.b();
  stallSyncedThrough_ = r.u64();
  stats_.completed = r.u64();
  stats_.errors = r.u64();
  stats_.issueStallCycles = r.u64();
  stats_.finishCycle = r.u64();
}

// ---------------------------------------------------------------------------
// Tl2ReplayMaster
// ---------------------------------------------------------------------------

Tl2ReplayMaster::Tl2ReplayMaster(sim::Clock& clock, std::string name,
                                 bus::Tl2MasterIf& busIf,
                                 const BusTrace& trace, unsigned maxInFlight)
    : sim::Module(clock.kernel(), std::move(name)),
      clock_(clock),
      busIf_(busIf),
      maxInFlight_(maxInFlight),
      stageGated_(busIf.publishesStage()),
      trace_(trace.entries()) {
  // Same reference-in-place-then-lazy-materialise construction as
  // ReplayMaster (see above). Buffers are resized up front
  // (value-initialised storage, cheap) so result pointers can be
  // handed out at issue time.
  requests_.reserve(trace_.size());
  buffers_.resize(trace_.size());
  inFlight_.reserve(maxInFlight_);
  handlerId_ = clock_.onRisingRaw(
      [](void* self) { static_cast<Tl2ReplayMaster*>(self)->onRisingEdge(); },
      this);
}

Tl2ReplayMaster::~Tl2ReplayMaster() { clock_.removeHandler(handlerId_); }

const ReplayStats& Tl2ReplayMaster::stats() const {
  // While parked on a refusal, credit the stall cycles the per-cycle
  // polling discipline would have counted so far.
  syncStalls(clock_.cycle());
  return stats_;
}

void Tl2ReplayMaster::syncStalls(std::uint64_t through) const {
  if (stallOpen_ && through > stallSyncedThrough_) {
    stats_.issueStallCycles += through - stallSyncedThrough_;
    stallSyncedThrough_ = through;
  }
}

void Tl2ReplayMaster::onRisingEdge() {
  const std::uint64_t cycle = clock_.cycle();
  if (stallOpen_) {
    // Woken at completion + 1: the refusal persisted through every
    // skipped rising edge (the outstanding slot only frees on the
    // completion's falling edge), so the per-cycle count is exactly one
    // stall per skipped cycle. The retry below re-counts this cycle if
    // it is refused again.
    syncStalls(cycle - 1);
    stallOpen_ = false;
  }
  // An event-driven bus without observers defers completion bookkeeping
  // until asked; querying the next finish publishes every stage
  // transition due by now, so the gate below reads fresh stages.
  if (stageGated_ && !inFlight_.empty()) busIf_.nextFinishCycle();
  // Same Finished-stage gate as ReplayMaster::onRisingEdge().
  for (auto it = inFlight_.begin(); it != inFlight_.end();) {
    if (stageGated_ && (*it)->stage != bus::Tl2Stage::Finished) {
      ++it;
      continue;
    }
    const BusStatus s = invoke(busIf_, **it);
    if (finished(s)) {
      ++stats_.completed;
      if (s == BusStatus::Error) ++stats_.errors;
      stats_.finishCycle = clock_.cycle();
      it = inFlight_.erase(it);
    } else {
      ++it;
    }
  }
  bool refused = false;
  while (nextIssue_ < trace_.size() &&
         trace_[nextIssue_].issueCycle <= clock_.cycle() &&
         inFlight_.size() < maxInFlight_) {
    if (requests_.size() == nextIssue_) {
      const TraceEntry& e = trace_[nextIssue_];
      Tl2Request& r = requests_.emplace_back();
      r.kind = e.kind;
      r.address = e.address;
      r.bytes = e.byteCount();
      r.data = buffers_[nextIssue_].data();
      if (e.kind == Kind::Write) {
        std::memcpy(r.data, e.writeData.data(), r.bytes);
      }
    }
    Tl2Request& req = requests_[nextIssue_];
    const BusStatus s = invoke(busIf_, req);
    if (s == BusStatus::Request) {
      inFlight_.push_back(&req);
      ++nextIssue_;
    } else if (s == BusStatus::Error) {
      ++stats_.completed;
      ++stats_.errors;
      stats_.finishCycle = clock_.cycle();
      ++nextIssue_;
    } else {
      ++stats_.issueStallCycles;
      stallSyncedThrough_ = cycle;
      refused = true;
      break;
    }
  }
  if (done()) {
    if (!doneNotified_) {
      doneNotified_ = true;
      clock_.requestBreak();
    }
    if (busIf_.nextFinishCycle() != bus::kFinishUnknown) {
      clock_.parkHandler(handlerId_, sim::Clock::kNeverWake);
    }
    return;
  }
  parkUntilNextWork(refused);
}

void Tl2ReplayMaster::parkUntilNextWork(bool refused) {
  const std::uint64_t nf = busIf_.nextFinishCycle();
  if (nf == bus::kFinishUnknown) return;  // Poll every cycle.
  // Wake-on-completion: nothing observable changes for this master
  // before the earliest completion is ready for pickup (finish + 1) or
  // the next trace entry becomes due — park until then. A refused
  // issue can only proceed once a completion frees its class slot, and
  // an in-flight transaction always has a predicted finish, so the
  // wake below is never kFinishNone while work remains.
  std::uint64_t wake =
      (nf == bus::kFinishNone) ? sim::Clock::kNeverWake : nf + 1;
  if (refused) {
    stallOpen_ = true;
  } else if (nextIssue_ < trace_.size() && inFlight_.size() < maxInFlight_) {
    wake = std::min(wake, trace_[nextIssue_].issueCycle);
  }
  // The handler just ran, so its stored wake is <= the current cycle;
  // when the target is simply "next cycle" leaving it untouched means
  // the same thing and saves the clock call (the dense-traffic case).
  if (wake > clock_.cycle() + 1) clock_.parkHandler(handlerId_, wake);
}

std::uint64_t Tl2ReplayMaster::runToCompletion(std::uint64_t maxCycles) {
  // See ReplayMaster::runToCompletion — with an event-driven bus both
  // the bus process and this master park between phase boundaries, so
  // the whole remaining budget runs in one warping runCycles() call.
  const std::uint64_t start = clock_.cycle();
  while (!done() && clock_.cycle() - start < maxCycles) {
    clock_.runCycles(maxCycles - (clock_.cycle() - start));
  }
  return clock_.cycle() - start;
}

void Tl2ReplayMaster::saveState(ckpt::StateWriter& w) const {
  if (!inFlight_.empty()) {
    throw ckpt::CheckpointError(
        "Tl2ReplayMaster::saveState: transactions in flight (snapshot only "
        "at quiesce points)");
  }
  w.u64(static_cast<std::uint64_t>(trace_.size()));
  w.u64(static_cast<std::uint64_t>(nextIssue_));
  w.u64(static_cast<std::uint64_t>(requests_.size()));
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const Tl2Request& q = requests_[i];
    w.bytes(buffers_[i].data(), buffers_[i].size());
    w.u8(static_cast<std::uint8_t>(q.result));
    w.u8(static_cast<std::uint8_t>(q.stage));
    w.i64(q.slave);
    w.u32(q.addrCyclesLeft);
    w.u32(q.dataCyclesLeft);
    w.u32(q.addrCycles);
    w.u32(q.dataCycles);
    w.u64(q.acceptCycle);
    w.u64(q.finishCycle);
    w.u64(q.addrDoneCycle);
    w.u64(q.dataDoneCycle);
  }
  w.b(doneNotified_);
  w.b(stallOpen_);
  w.u64(stallSyncedThrough_);
  w.u64(stats_.completed);
  w.u64(stats_.errors);
  w.u64(stats_.issueStallCycles);
  w.u64(stats_.finishCycle);
}

void Tl2ReplayMaster::loadState(ckpt::StateReader& r) {
  if (!inFlight_.empty()) {
    throw ckpt::CheckpointError(
        "Tl2ReplayMaster::loadState: restore target has transactions in "
        "flight");
  }
  if (r.u64() != trace_.size()) {
    throw ckpt::CheckpointError(
        "Tl2ReplayMaster::loadState: trace length differs from the saved "
        "replay");
  }
  nextIssue_ = static_cast<std::size_t>(r.u64());
  // See ReplayMaster::loadState: a refused issue may have materialised
  // one request ahead of the issue cursor.
  const std::size_t count = static_cast<std::size_t>(r.u64());
  if (count > trace_.size() || count < nextIssue_ ||
      count > nextIssue_ + 1) {
    throw ckpt::CheckpointError(
        "Tl2ReplayMaster::loadState: corrupt request materialisation count");
  }
  requests_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const TraceEntry& e = trace_[i];
    Tl2Request& q = requests_.emplace_back();
    q.kind = e.kind;
    q.address = e.address;
    q.bytes = e.byteCount();
    q.data = buffers_[i].data();
    r.bytes(buffers_[i].data(), buffers_[i].size());
    q.result = static_cast<BusStatus>(r.u8());
    q.stage = static_cast<bus::Tl2Stage>(r.u8());
    q.slave = static_cast<int>(r.i64());
    q.addrCyclesLeft = r.u32();
    q.dataCyclesLeft = r.u32();
    q.addrCycles = r.u32();
    q.dataCycles = r.u32();
    q.acceptCycle = r.u64();
    q.finishCycle = r.u64();
    q.addrDoneCycle = r.u64();
    q.dataDoneCycle = r.u64();
  }
  doneNotified_ = r.b();
  stallOpen_ = r.b();
  stallSyncedThrough_ = r.u64();
  stats_.completed = r.u64();
  stats_.errors = r.u64();
  stats_.issueStallCycles = r.u64();
  stats_.finishCycle = r.u64();
}

} // namespace sct::trace
