#include "trace/replay_master.h"

#include <algorithm>
#include <cstring>

namespace sct::trace {

using bus::BusStatus;
using bus::Kind;
using bus::Tl1Request;
using bus::Tl2Request;

namespace {

BusStatus invoke(bus::EcInstrIf& instrIf, bus::EcDataIf& dataIf,
                 Tl1Request& req) {
  switch (req.kind) {
    case Kind::InstrFetch: return instrIf.fetch(req);
    case Kind::Read: return dataIf.read(req);
    case Kind::Write: return dataIf.write(req);
  }
  return BusStatus::Error;
}

BusStatus invoke(bus::Tl2MasterIf& busIf, Tl2Request& req) {
  return req.kind == Kind::Write ? busIf.write(req) : busIf.read(req);
}

bool finished(BusStatus s) {
  return s == BusStatus::Ok || s == BusStatus::Error;
}

} // namespace

// ---------------------------------------------------------------------------
// ReplayMaster (layers 0 and 1)
// ---------------------------------------------------------------------------

ReplayMaster::ReplayMaster(sim::Clock& clock, std::string name,
                           bus::EcInstrIf& instrIf, bus::EcDataIf& dataIf,
                           const BusTrace& trace, unsigned maxInFlight)
    : sim::Module(clock.kernel(), std::move(name)),
      clock_(clock),
      instrIf_(instrIf),
      dataIf_(dataIf),
      maxInFlight_(maxInFlight),
      stageGated_(instrIf.publishesStage() && dataIf.publishesStage()) {
  // Built in place: the payload vector is the bulk of the master's
  // setup cost, and replay harnesses construct one master per run.
  const std::size_t n = trace.size();
  requests_.resize(n);
  issueCycles_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEntry& e = trace[i];
    Tl1Request& r = requests_[i];
    r.kind = e.kind;
    r.address = e.address;
    r.size = e.size;
    r.beats = e.beats;
    r.data = e.writeData;
    issueCycles_[i] = e.issueCycle;
  }
  handlerId_ = clock_.onRising([this] { onRisingEdge(); });
}

ReplayMaster::~ReplayMaster() { clock_.removeHandler(handlerId_); }

void ReplayMaster::onRisingEdge() {
  // Poll transactions in flight. When the bus publishes stage
  // transitions (publishesStage()), polling a request it still owns
  // returns Wait with no side effects, so the completion pickup is only
  // invoked once the payload's public stage says the result is ready —
  // the same protocol, minus a virtual call per in-flight transaction
  // per cycle. Adapters like Tl2MasterBridge need every poll to pump
  // their lower transaction, so they are polled unconditionally.
  for (auto it = inFlight_.begin(); it != inFlight_.end();) {
    if (stageGated_ && (*it)->stage != bus::Tl1Stage::Finished) {
      ++it;
      continue;
    }
    const BusStatus s = invoke(instrIf_, dataIf_, **it);
    if (finished(s)) {
      ++stats_.completed;
      if (s == BusStatus::Error) ++stats_.errors;
      stats_.finishCycle = clock_.cycle();
      it = inFlight_.erase(it);
    } else {
      ++it;
    }
  }
  // Issue further transactions in trace order.
  while (nextIssue_ < requests_.size() &&
         issueCycles_[nextIssue_] <= clock_.cycle() &&
         inFlight_.size() < maxInFlight_) {
    Tl1Request& req = requests_[nextIssue_];
    const BusStatus s = invoke(instrIf_, dataIf_, req);
    if (s == BusStatus::Request) {
      inFlight_.push_back(&req);
      ++nextIssue_;
    } else if (s == BusStatus::Error) {
      // Rejected at validation; counts as an immediately failed entry.
      ++stats_.completed;
      ++stats_.errors;
      stats_.finishCycle = clock_.cycle();
      ++nextIssue_;
    } else {
      ++stats_.issueStallCycles;
      break;  // Accept refused (outstanding limit); retry next cycle.
    }
  }
}

std::uint64_t ReplayMaster::runToCompletion(std::uint64_t maxCycles) {
  const std::uint64_t start = clock_.cycle();
  while (!done() && clock_.cycle() - start < maxCycles) clock_.runCycles(1);
  return clock_.cycle() - start;
}

// ---------------------------------------------------------------------------
// Tl2ReplayMaster
// ---------------------------------------------------------------------------

Tl2ReplayMaster::Tl2ReplayMaster(sim::Clock& clock, std::string name,
                                 bus::Tl2MasterIf& busIf,
                                 const BusTrace& trace, unsigned maxInFlight)
    : sim::Module(clock.kernel(), std::move(name)),
      clock_(clock),
      busIf_(busIf),
      maxInFlight_(maxInFlight),
      stageGated_(busIf.publishesStage()) {
  requests_.resize(trace.size());
  buffers_.resize(trace.size());
  issueCycles_.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEntry& e = trace[i];
    Tl2Request& r = requests_[i];
    r.kind = e.kind;
    r.address = e.address;
    r.bytes = e.byteCount();
    r.data = buffers_[i].data();
    if (e.kind == Kind::Write) {
      std::memcpy(buffers_[i].data(), e.writeData.data(), r.bytes);
    }
    issueCycles_.push_back(e.issueCycle);
  }
  handlerId_ = clock_.onRising([this] { onRisingEdge(); });
}

Tl2ReplayMaster::~Tl2ReplayMaster() { clock_.removeHandler(handlerId_); }

void Tl2ReplayMaster::onRisingEdge() {
  // Same Finished-stage gate as ReplayMaster::onRisingEdge().
  for (auto it = inFlight_.begin(); it != inFlight_.end();) {
    if (stageGated_ && (*it)->stage != bus::Tl2Stage::Finished) {
      ++it;
      continue;
    }
    const BusStatus s = invoke(busIf_, **it);
    if (finished(s)) {
      ++stats_.completed;
      if (s == BusStatus::Error) ++stats_.errors;
      stats_.finishCycle = clock_.cycle();
      it = inFlight_.erase(it);
    } else {
      ++it;
    }
  }
  while (nextIssue_ < requests_.size() &&
         issueCycles_[nextIssue_] <= clock_.cycle() &&
         inFlight_.size() < maxInFlight_) {
    Tl2Request& req = requests_[nextIssue_];
    const BusStatus s = invoke(busIf_, req);
    if (s == BusStatus::Request) {
      inFlight_.push_back(&req);
      ++nextIssue_;
    } else if (s == BusStatus::Error) {
      ++stats_.completed;
      ++stats_.errors;
      stats_.finishCycle = clock_.cycle();
      ++nextIssue_;
    } else {
      ++stats_.issueStallCycles;
      break;
    }
  }
}

std::uint64_t Tl2ReplayMaster::runToCompletion(std::uint64_t maxCycles) {
  const std::uint64_t start = clock_.cycle();
  while (!done() && clock_.cycle() - start < maxCycles) clock_.runCycles(1);
  return clock_.cycle() - start;
}

} // namespace sct::trace
