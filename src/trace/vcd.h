// VCD (value change dump) writer for the layer-0 reference bus.
//
// Attach a VcdWriter to a GlBus as a frame listener to obtain a
// standard VCD waveform of all EC interface signals, viewable in any
// waveform browser — the layer-0 equivalent of tracing the RTL
// simulation the paper characterized against.
#ifndef SCT_TRACE_VCD_H
#define SCT_TRACE_VCD_H

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "bus/ec_signals.h"
#include "ref/gl_bus.h"
#include "sim/time.h"

namespace sct::trace {

class VcdWriter final : public ref::FrameListener {
 public:
  /// Writes the VCD header immediately. `clockPeriodPs` scales the
  /// timestamps (one frame per clock cycle).
  VcdWriter(std::ostream& os, sim::Time clockPeriodPs,
            std::string topName = "ecbus");

  // ref::FrameListener
  void onFrame(std::uint64_t cycle, const bus::SignalFrame& prev,
               const bus::SignalFrame& next,
               const ref::GlitchCounts& glitches,
               const ref::CycleEnergy& energy) override;

  std::uint64_t framesWritten() const { return frames_; }

 private:
  void writeHeader(const std::string& topName);
  void emitValue(bus::SignalId id, std::uint64_t value);

  std::ostream& os_;
  sim::Time period_;
  std::array<char, bus::kSignalCount> codes_{};
  std::uint64_t frames_ = 0;
  bool first_ = true;
};

} // namespace sct::trace

#endif // SCT_TRACE_VCD_H
