// Bus transaction recorder.
//
// Attached to a layer-1 (or layer-0) bus as an observer, it records
// every accepted transaction into a BusTrace — the paper's flow of
// tracing the bus transactions of an assembly test program running on
// the RTL "and using them as input test sequences for the transaction
// level models". Issue cycles are normalized so that the first
// transaction starts at cycle 0.
#ifndef SCT_TRACE_RECORDER_H
#define SCT_TRACE_RECORDER_H

#include <cstdint>

#include "bus/ec_interfaces.h"
#include "trace/bus_trace.h"

namespace sct::trace {

class TraceRecorder final : public bus::Tl1Observer {
 public:
  void addressPhase(const bus::AddressPhaseInfo& info) override {
    if (!info.accepted || info.request == nullptr) return;
    const bus::Tl1Request& req = *info.request;
    if (!first_) {
      base_ = req.acceptCycle;
      first_ = true;
    }
    TraceEntry e;
    e.issueCycle = req.acceptCycle - base_;
    e.kind = req.kind;
    e.address = req.address;
    e.size = req.size;
    e.beats = req.beats;
    if (req.kind == bus::Kind::Write) e.writeData = req.data;
    trace_.append(e);
  }

  const BusTrace& trace() const { return trace_; }
  BusTrace take() { return std::move(trace_); }
  void clear() {
    trace_ = BusTrace{};
    first_ = false;
  }

 private:
  BusTrace trace_;
  std::uint64_t base_ = 0;
  bool first_ = false;
};

} // namespace sct::trace

#endif // SCT_TRACE_RECORDER_H
