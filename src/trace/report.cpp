#include "trace/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sct::trace {

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto printRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << '\n';
  };
  printRow(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) printRow(row);
}

std::string Table::pct(double fraction, int precision, bool forceSign) {
  std::ostringstream ss;
  if (forceSign && fraction >= 0) ss << '+';
  ss << std::fixed << std::setprecision(precision) << fraction * 100.0
     << '%';
  return ss.str();
}

std::string Table::num(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

} // namespace sct::trace
