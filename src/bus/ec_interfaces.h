// Abstract interfaces between masters, the bus models and slaves.
//
// The layer-1 bus exposes a dedicated instruction interface and a data
// interface to its single master (the paper's Figure 2); all methods
// are non-blocking and return a BusStatus. Slaves expose a beat-level
// data interface (invoked by the bus until it answers Ok or Error), a
// block interface used by the layer-2 model's pointer-passing transfers,
// and the slave control interface (address range, wait states, access
// rights) the bus samples each cycle as getSlaveState().
#ifndef SCT_BUS_EC_INTERFACES_H
#define SCT_BUS_EC_INTERFACES_H

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "bus/ec_request.h"
#include "bus/ec_types.h"

namespace sct::bus {

/// Instruction-fetch interface of the layer-1 bus (master side).
class EcInstrIf {
 public:
  virtual ~EcInstrIf() = default;
  /// Submit or poll an instruction fetch. Call every cycle with the same
  /// payload until Ok or Error is returned.
  virtual BusStatus fetch(Tl1Request& req) = 0;
  /// True if the implementation advances req.stage to Finished on its
  /// own (from its bus process) and treats polls of any other non-Idle
  /// stage as side-effect-free Waits. Masters may then skip the poll
  /// until the public stage field reads Finished — and, because every
  /// stage-publishing implementation serves the pickup poll of a
  /// Finished payload as exactly `result = req.result; req.stage =
  /// Idle; return result`, a master may collect a published result
  /// directly from the payload without the poll call. Adapters that
  /// need the poll itself to make progress keep the default false.
  virtual bool publishesStage() const { return false; }
  /// Static property: true if nextFinishCycle() can ever answer with a
  /// prediction (anything but kFinishUnknown) during this object's
  /// lifetime. When false, masters may skip the completion-prediction
  /// and park bookkeeping entirely and poll every cycle — the behaviour
  /// a kFinishUnknown answer mandates anyway.
  virtual bool predictsFinish() const { return false; }
  /// Wake-on-completion hint, mirroring Tl2MasterIf::nextFinishCycle():
  /// the earliest bus cycle at which any accepted transaction reaches
  /// stage Finished, kFinishNone when nothing is in flight, or
  /// kFinishUnknown when completions cannot be predicted — masters must
  /// then poll every cycle. Non-const on purpose: implementations
  /// backed by a lazy event-driven bus (Tl2MasterBridge) bring their
  /// published stages current from here.
  virtual std::uint64_t nextFinishCycle() { return kFinishUnknown; }
  /// Completion-epoch counter: increments every time any transaction
  /// submitted through this interface reaches stage Finished (and also
  /// whenever outstanding-slot occupancy can otherwise change, e.g. on
  /// abort). While the value is unchanged, a stage-gated master may
  /// skip both its in-flight Finished scan and the retry of an issue
  /// the bus previously refused for a full-slots condition — neither
  /// can make progress until a completion occurs. kEpochUnknown means
  /// the interface keeps no epoch; masters must poll every cycle.
  virtual std::uint64_t finishEpoch() const { return kEpochUnknown; }
};

/// Data read/write interface of the layer-1 bus (master side).
class EcDataIf {
 public:
  virtual ~EcDataIf() = default;
  virtual BusStatus read(Tl1Request& req) = 0;
  virtual BusStatus write(Tl1Request& req) = 0;
  /// See EcInstrIf::publishesStage().
  virtual bool publishesStage() const { return false; }
  /// See EcInstrIf::nextFinishCycle().
  virtual std::uint64_t nextFinishCycle() { return kFinishUnknown; }
  /// See EcInstrIf::predictsFinish().
  virtual bool predictsFinish() const { return false; }
  /// See EcInstrIf::finishEpoch().
  virtual std::uint64_t finishEpoch() const { return kEpochUnknown; }
};

/// Layer-2 master interface: one function for read access and one for
/// write access; parameters are the data pointer, the number of bytes,
/// the address, and an instruction bit (carried in req.kind).
class Tl2MasterIf {
 public:
  virtual ~Tl2MasterIf() = default;
  /// Submit or poll a transaction. A burst is a single transaction.
  virtual BusStatus read(Tl2Request& req) = 0;
  virtual BusStatus write(Tl2Request& req) = 0;
  /// See EcInstrIf::publishesStage() (here for Tl2Request::stage).
  virtual bool publishesStage() const { return false; }
  /// Wake-on-completion hint: the earliest bus cycle at which any
  /// accepted transaction will reach stage Finished, kFinishNone when
  /// nothing is in flight, or kFinishUnknown when the implementation
  /// cannot predict completions — masters must then poll every cycle.
  /// An event-driven bus answers from its phase schedule, letting
  /// masters park their clock handlers until the finish cycle + 1.
  virtual std::uint64_t nextFinishCycle() const { return kFinishUnknown; }
  /// See EcInstrIf::finishEpoch().
  virtual std::uint64_t finishEpoch() const { return kEpochUnknown; }
};

/// Slave-side interface shared by both bus layers.
class EcSlave {
 public:
  virtual ~EcSlave() = default;

  virtual std::string_view name() const = 0;

  /// Slave control interface: address range, wait states, access rights.
  /// The returned reference must stay valid (and refer to the same
  /// object) for the slave's lifetime: the bus controllers cache it at
  /// attach time and re-read it every cycle to snapshot the slave
  /// state without a virtual call. Mutating the referenced struct
  /// between cycles is allowed and is picked up by the next snapshot.
  virtual const SlaveControl& control() const = 0;

  /// Layer-1 beat transfer. May return Wait to stretch the data phase
  /// dynamically (beyond the static wait states in control()); must
  /// eventually return Ok or Error.
  virtual BusStatus readBeat(Address addr, AccessSize size, Word& out) = 0;
  virtual BusStatus writeBeat(Address addr, AccessSize size,
                              std::uint8_t byteEnables, Word in) = 0;

  /// Layer-2 block transfer (pointer passing). Returns false on error.
  virtual bool readBlock(Address addr, std::uint8_t* dst, std::size_t n) = 0;
  virtual bool writeBlock(Address addr, const std::uint8_t* src,
                          std::size_t n) = 0;
};

/// Information about an active address phase, published once per cycle
/// while the phase is active (wait cycles included).
struct AddressPhaseInfo {
  Address address = 0;
  Kind kind = Kind::Read;
  AccessSize size = AccessSize::Word;
  std::uint8_t beats = 1;
  std::uint8_t byteEnables = 0;
  int slave = -1;       ///< Decoded slave index, -1 on decode miss.
  bool accepted = false;  ///< True on the cycle the phase completes.
  bool error = false;     ///< Decode miss or access-right violation.
  const Tl1Request* request = nullptr;  ///< Transaction payload (for
                                        ///  recorders; may be null).
};

/// Information about a completed data beat. `data` is the word as
/// driven on the wires — when a low-power codec is installed on the
/// bus this is the *encoded* word, with `invert` carrying the codec's
/// EB_Inv sideband level for the channel; without a codec `data` is
/// the payload and `invert` stays false.
struct DataBeatInfo {
  Address address = 0;
  Kind kind = Kind::Read;
  Word data = 0;
  std::uint8_t byteEnables = 0;
  std::uint8_t beatIndex = 0;
  bool last = false;
  bool error = false;
  int slave = -1;
  bool invert = false;  ///< EB_Inv level driven for this channel.
};

class Tl1FrameEnergy;

/// Observer hook of the layer-1 bus. The layer-1 power model and the
/// transaction tracer attach here; callbacks fire from within the bus
/// process (falling clock edge), in phase order.
class Tl1Observer {
 public:
  virtual ~Tl1Observer() = default;
  virtual void busCycleBegin(std::uint64_t /*cycle*/) {}
  /// Fired every cycle the address phase drives the address bus.
  virtual void addressPhase(const AddressPhaseInfo& /*info*/) {}
  virtual void readBeat(const DataBeatInfo& /*info*/) {}
  virtual void writeBeat(const DataBeatInfo& /*info*/) {}
  virtual void busCycleEnd(std::uint64_t /*cycle*/) {}

  /// Fused drive path: an observer that is a thin shell around a
  /// bus::Tl1FrameEnergy engine can return it here. A bus that
  /// understands fusing (Tl1Bus) then drives the engine directly —
  /// non-virtually, with the engine's inline bodies visible at the
  /// call sites — instead of routing events through the virtual
  /// callbacks above, and MUST NOT also deliver those callbacks (the
  /// events would be double-counted). Publishers that do not know
  /// about fusing simply use the observer interface; both paths run
  /// the same engine code in the same order, so the results are
  /// bit-identical. Returning nullptr (the default) opts out.
  virtual Tl1FrameEnergy* fusedFrameEnergy() { return nullptr; }
};

/// Summary of a finished layer-2 phase. The layer-2 power model consumes
/// these; per the paper the entire address phase of a burst is estimated
/// at once, and likewise the read or write phase.
struct Tl2PhaseInfo {
  Kind kind = Kind::Read;
  Address address = 0;
  const std::uint8_t* data = nullptr;  ///< nullptr for the address phase.
  std::size_t bytes = 0;
  unsigned beats = 1;
  unsigned cycles = 1;  ///< Estimated length of the phase.
  int slave = -1;
  bool error = false;
};

/// Observer hook of the layer-2 bus.
class Tl2Observer {
 public:
  virtual ~Tl2Observer() = default;
  virtual void addressPhaseDone(const Tl2PhaseInfo& /*info*/) {}
  virtual void dataPhaseDone(const Tl2PhaseInfo& /*info*/) {}
};

} // namespace sct::bus

#endif // SCT_BUS_EC_INTERFACES_H
