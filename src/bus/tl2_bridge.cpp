#include "bus/tl2_bridge.h"

#include <cassert>

namespace sct::bus {

void Tl2MasterBridge::copyOut(Tl1Request& req, Slot& s, BusStatus status) {
  if (status == BusStatus::Ok && req.kind != Kind::Write) {
    if (req.burst() || req.size == AccessSize::Word) {
      std::memcpy(req.data.data(), s.buffer.data(), s.lower.bytes);
    } else {
      // The layer-1 read bus presents sub-word data on its natural
      // lanes; shift the byte-exact layer-2 payload into place.
      Word w = 0;
      std::memcpy(&w, s.buffer.data(), s.lower.bytes);
      const unsigned lane = static_cast<unsigned>(req.address & 0x3u);
      req.data[0] = w << (8 * lane);
    }
  }
  req.beatsDone = req.beats;
  req.result = status;
}

void Tl2MasterBridge::sync() {
  if (pending_.empty()) return;
  // An observer-free event-driven lower bus defers its completion
  // bookkeeping; asking for the next finish brings it current (O(1)
  // when it already is) before trusting the published stages.
  if (stagePublishing_) lower_.nextFinishCycle();
  for (auto it = pending_.begin(); it != pending_.end();) {
    Slot& s = it->second;
    if (s.lower.stage != Tl2Stage::Finished) {
      ++it;
      continue;
    }
    Tl1Request& req = *it->first;
    const BusStatus status = s.lower.kind == Kind::Write
                                 ? lower_.write(s.lower)
                                 : lower_.read(s.lower);
    copyOut(req, s, status);
    req.stage = Tl1Stage::Finished;
    it = pending_.erase(it);
  }
}

void Tl2MasterBridge::reset() {
  sync();
  // With an idle lower bus every slot's lower transaction has finished,
  // so sync() has posted all of them and released their slots. Anything
  // left would still be referenced by the lower bus and cannot be torn
  // down safely.
  assert(pending_.empty() && "reset() requires an idle lower bus");
  pending_.clear();
}

BusStatus Tl2MasterBridge::transport(Tl1Request& req) {
  auto it = pending_.find(&req);
  if (it == pending_.end()) {
    if (req.stage == Tl1Stage::Finished) {
      // sync() posted the result; this poll is the pickup.
      const BusStatus result = req.result;
      req.stage = Tl1Stage::Idle;
      return result;
    }
    // First call: validate like the layer-1 bus would, then open a
    // layer-2 transaction.
    if (req.stage != Tl1Stage::Idle) return BusStatus::Wait;
    const bool alignedOk =
        req.burst() ? (req.size == AccessSize::Word &&
                       isAligned(AccessSize::Word, req.address))
                    : isAligned(req.size, req.address);
    if (req.beats == 0 || req.beats > kMaxBurstBeats || !alignedOk ||
        (req.address & ~kAddressMask) != 0) {
      req.result = BusStatus::Error;
      return BusStatus::Error;
    }
    Slot slot;
    slot.lower.kind = req.kind;
    slot.lower.address = req.address;
    slot.lower.bytes = req.byteCount();
    if (req.kind == Kind::Write) {
      if (req.burst() || req.size == AccessSize::Word) {
        std::memcpy(slot.buffer.data(), req.data.data(),
                    slot.lower.bytes);
      } else {
        // Sub-word stores arrive lane-aligned on the layer-1 write bus;
        // extract the active lanes for the byte-exact layer-2 transfer.
        const unsigned lane = static_cast<unsigned>(req.address & 0x3u);
        std::memcpy(slot.buffer.data(),
                    reinterpret_cast<const std::uint8_t*>(
                        req.data.data()) +
                        lane,
                    slot.lower.bytes);
      }
    }
    auto [pos, inserted] = pending_.emplace(&req, std::move(slot));
    Slot& s = pos->second;
    s.lower.data = s.buffer.data();
    const BusStatus status = s.lower.kind == Kind::Write
                                 ? lower_.write(s.lower)
                                 : lower_.read(s.lower);
    if (status == BusStatus::Error) {
      pending_.erase(pos);
      req.result = BusStatus::Error;
      return BusStatus::Error;
    }
    if (status != BusStatus::Request) {
      // Accept refused (outstanding limit); retry transparently on the
      // next poll.
      pending_.erase(pos);
      return BusStatus::Wait;
    }
    req.stage = Tl1Stage::Requested;
    req.result = BusStatus::Wait;
    return BusStatus::Request;
  }

  if (req.stage == Tl1Stage::Idle) {
    // The master abandoned this payload (Tl1Request::reset()) while its
    // previous transaction was still in flight and is now re-submitting
    // the same object. Finish the abandoned lower transaction out
    // before accepting the payload anew — answering from the stale slot
    // would hand the master a result it never asked for.
    Slot& s = it->second;
    if (stagePublishing_ && s.lower.stage != Tl2Stage::Finished) {
      lower_.nextFinishCycle();
    }
    const BusStatus stale = s.lower.kind == Kind::Write
                                ? lower_.write(s.lower)
                                : lower_.read(s.lower);
    if (stale != BusStatus::Ok && stale != BusStatus::Error) {
      return BusStatus::Wait;  // Old transaction still draining.
    }
    pending_.erase(it);
    return transport(req);  // Re-enter as a fresh submit.
  }

  // Poll the lower transaction. When the lower bus publishes its stage
  // transitions (an event-driven Tl2Bus moves the payload to Finished
  // from its own process), a poll before that point is a guaranteed
  // side-effect-free Wait — skip the virtual round trip entirely; the
  // cycle-true master above polls every cycle regardless.
  Slot& s = it->second;
  if (stagePublishing_ && s.lower.stage != Tl2Stage::Finished) {
    // An observer-free event-driven lower bus defers its completion
    // bookkeeping; asking for the next finish brings it current (O(1)
    // when it already is) before trusting the published stage.
    lower_.nextFinishCycle();
    if (s.lower.stage != Tl2Stage::Finished) return BusStatus::Wait;
  }
  const BusStatus status = s.lower.kind == Kind::Write
                               ? lower_.write(s.lower)
                               : lower_.read(s.lower);
  if (status != BusStatus::Ok && status != BusStatus::Error) {
    return BusStatus::Wait;
  }
  copyOut(req, s, status);
  req.stage = Tl1Stage::Idle;
  pending_.erase(it);
  return status;
}

} // namespace sct::bus
