#include "bus/tl2_bus.h"

#include <algorithm>
#include <stdexcept>

namespace sct::bus {

Tl2Bus::Tl2Bus(sim::Clock& clock, std::string name)
    : sim::Module(clock.kernel(), std::move(name)), clock_(clock) {
  processId_ = clock_.onFalling([this] { busProcess(); });
}

Tl2Bus::~Tl2Bus() { clock_.removeHandler(processId_); }

void Tl2Bus::removeObserver(Tl2Observer& obs) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), &obs),
                   observers_.end());
}

BusStatus Tl2Bus::read(Tl2Request& req) {
  if (req.kind == Kind::Write) {
    throw std::logic_error(name() + ": write request on the read interface");
  }
  return submitOrPoll(req);
}

BusStatus Tl2Bus::write(Tl2Request& req) {
  if (req.kind != Kind::Write) {
    throw std::logic_error(name() + ": read request on the write interface");
  }
  return submitOrPoll(req);
}

bool Tl2Bus::validate(const Tl2Request& req) const {
  if (req.data == nullptr) return false;
  if ((req.address & ~kAddressMask) != 0) return false;
  switch (req.bytes) {
    case 1: return true;
    case 2: return (req.address & 0x1u) == 0;
    case 4:
    case 8:
    case 12:
    case 16: return (req.address & 0x3u) == 0;
    default: return false;
  }
}

unsigned& Tl2Bus::outstanding(Kind k) {
  switch (k) {
    case Kind::InstrFetch: return outstandingInstr_;
    case Kind::Read: return outstandingRead_;
    case Kind::Write: return outstandingWrite_;
  }
  return outstandingRead_;  // unreachable
}

BusStatus Tl2Bus::submitOrPoll(Tl2Request& req) {
  switch (req.stage) {
    case Tl2Stage::Idle: {
      if (!validate(req)) {
        req.result = BusStatus::Error;
        return BusStatus::Error;
      }
      if (outstanding(req.kind) >= kMaxOutstandingPerClass) {
        return BusStatus::Wait;
      }
      // Timing estimation happens at creation time: sample the decoded
      // slave's wait states now (paper, Section 3.2).
      req.slave = decoder_.decode(req.address);
      const unsigned beats = req.beatCount();
      if (req.slave >= 0) {
        const SlaveControl& c = decoder_.slave(req.slave).control();
        const bool allowed =
            c.allows(req.kind) && c.contains(req.address + req.bytes - 1);
        if (allowed) {
          req.addrCycles = c.addrWait + 1;
          const unsigned dataWait =
              req.kind == Kind::Write ? c.writeWait : c.readWait;
          req.dataCycles = dataWait + beats + c.burstBeatWait * (beats - 1);
        } else {
          req.slave = -1;  // Treated like a decode miss below.
        }
      }
      if (req.slave < 0) {
        req.addrCycles = 1;
        req.dataCycles = 0;
      }
      req.addrCyclesLeft = req.addrCycles;
      req.dataCyclesLeft = req.dataCycles;
      req.stage = Tl2Stage::Queued;
      req.result = BusStatus::Wait;
      req.acceptCycle = clock_.cycle();
      ++outstanding(req.kind);
      requestQueue_.push_back(&req);
      return BusStatus::Request;
    }
    case Tl2Stage::Finished: {
      const BusStatus result = req.result;
      req.stage = Tl2Stage::Idle;
      return result;
    }
    default:
      return BusStatus::Wait;
  }
}

bool Tl2Bus::idle() const {
  return requestQueue_.empty() && readQueue_.empty() && writeQueue_.empty() &&
         addrCurrent_ == nullptr && readCurrent_ == nullptr &&
         writeCurrent_ == nullptr;
}

void Tl2Bus::busProcess() {
  ++stats_.cycles;
  const bool busy = !idle();
  // Data units run before the address unit: a transaction leaving the
  // address phase this cycle is first served by an idle data unit in
  // the next cycle (the pipeline-fill estimation coarseness documented
  // in the header), while a backlogged data unit loses nothing.
  dataPhase(readCurrent_, readQueue_);
  dataPhase(writeCurrent_, writeQueue_);
  addressPhase();
  if (busy) ++stats_.busyCycles;
}

void Tl2Bus::finish(Tl2Request& req, BusStatus result) {
  req.result = result;
  req.stage = Tl2Stage::Finished;
  req.finishCycle = clock_.cycle();
  --outstanding(req.kind);
  switch (req.kind) {
    case Kind::InstrFetch: ++stats_.instrTransactions; break;
    case Kind::Read: ++stats_.readTransactions; break;
    case Kind::Write: ++stats_.writeTransactions; break;
  }
  if (result == BusStatus::Error) {
    ++stats_.errors;
  } else if (req.kind == Kind::Write) {
    stats_.bytesWritten += req.bytes;
  } else {
    stats_.bytesRead += req.bytes;
  }
}

void Tl2Bus::addressPhase() {
  if (addrCurrent_ == nullptr) {
    if (requestQueue_.empty()) return;
    addrCurrent_ = requestQueue_.front();
    requestQueue_.pop_front();
  }
  Tl2Request& req = *addrCurrent_;
  if (req.addrCyclesLeft > 0) --req.addrCyclesLeft;
  if (req.addrCyclesLeft > 0) return;

  // Address phase finishes this cycle.
  Tl2PhaseInfo info;
  info.kind = req.kind;
  info.address = req.address;
  info.bytes = req.bytes;
  info.beats = req.beatCount();
  info.cycles = req.addrCycles;
  info.slave = req.slave;
  info.error = req.slave < 0;
  for (Tl2Observer* obs : observers_) obs->addressPhaseDone(info);

  if (req.slave < 0) {
    finish(req, BusStatus::Error);
  } else {
    req.stage = Tl2Stage::DataWait;
    if (req.kind == Kind::Write) {
      writeQueue_.push_back(&req);
    } else {
      readQueue_.push_back(&req);
    }
  }
  addrCurrent_ = nullptr;
}

void Tl2Bus::dataPhase(Tl2Request*& current, std::deque<Tl2Request*>& queue) {
  if (current == nullptr) {
    if (queue.empty()) return;
    current = queue.front();
    queue.pop_front();
  }
  Tl2Request& req = *current;
  if (req.dataCyclesLeft > 0) --req.dataCyclesLeft;
  if (req.dataCyclesLeft > 0) return;

  // Data phase finishes this cycle: one pointer-passing block transfer.
  EcSlave& slave = decoder_.slave(req.slave);
  bool ok;
  if (req.kind == Kind::Write) {
    ok = slave.writeBlock(req.address, req.data, req.bytes);
  } else {
    ok = slave.readBlock(req.address, req.data, req.bytes);
  }

  Tl2PhaseInfo info;
  info.kind = req.kind;
  info.address = req.address;
  info.data = req.data;
  info.bytes = req.bytes;
  info.beats = req.beatCount();
  info.cycles = req.dataCycles;
  info.slave = req.slave;
  info.error = !ok;
  for (Tl2Observer* obs : observers_) obs->dataPhaseDone(info);

  finish(req, ok ? BusStatus::Ok : BusStatus::Error);
  current = nullptr;
}

} // namespace sct::bus
